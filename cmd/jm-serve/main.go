// jm-serve is the multi-tenant simulation daemon: it hosts many
// independent J-Machine sessions behind the HTTP/JSON API of
// internal/serve, with checkpoint-backed persistence.
//
// Every session lives in its own subdirectory of -dir (spec.json +
// state.ckpt + optional observability streams). At most -max-resident
// sessions are held in memory; the rest are parked as checkpoints and
// restored transparently on their next request. On SIGINT/SIGTERM the
// daemon drains in-flight requests and checkpoints every resident
// session, so a restart with the same -dir recovers all of them — and
// because a checkpoint is also committed after every mutating request,
// even kill -9 loses nothing past the last completed request (the
// serve_smoke.sh script exercises exactly that).
//
// Usage:
//
//	jm-serve [-addr 127.0.0.1:8034] [-dir jm-serve-state] [-max-resident 8]
//
// See docs/SERVE.md for the API reference.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"jmachine/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8034", "listen address")
	dir := flag.String("dir", "jm-serve-state", "session state directory (sessions found here are recovered)")
	maxResident := flag.Int("max-resident", serve.DefaultMaxResident,
		"sessions kept in memory; beyond this the least-recently-used is checkpointed to disk")
	flag.Parse()
	log.SetPrefix("jm-serve: ")
	log.SetFlags(0)

	g, err := serve.NewManager(*dir, *maxResident)
	if err != nil {
		log.Fatal(err)
	}
	if n := len(g.List()); n > 0 {
		log.Printf("recovered %d session(s) from %s", n, *dir)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(g)}
	drained := make(chan struct{})
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		log.Print("signal received: draining requests")
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("drain: %v", err)
		}
		close(drained)
	}()

	log.Printf("listening on %s (state dir %s, max %d resident)", *addr, *dir, *maxResident)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained
	// All handlers have returned: checkpoint every session and exit.
	if err := g.Shutdown(); err != nil {
		log.Fatalf("shutdown checkpoint: %v", err)
	}
	log.Printf("checkpointed %d session(s); bye", len(g.List()))
}
