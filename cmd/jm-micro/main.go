// jm-micro runs one micro-benchmark with adjustable parameters and
// prints its measurements: the communication and synchronization
// primitives of Section 3.
//
// Usage:
//
//	jm-micro -bench ping   [-k 8] [-target 7]
//	jm-micro -bench barrier [-nodes 64] [-inner 8]
//	jm-micro -bench bandwidth [-words 8] [-variant discard|imem|emem]
package main

import (
	"flag"
	"fmt"
	"log"

	"jmachine/internal/bench"
	"jmachine/internal/engine"
)

func main() {
	which := flag.String("bench", "ping", "micro-benchmark: ping, barrier, bandwidth")
	k := flag.Int("k", 8, "mesh edge length (ping)")
	target := flag.Int("target", 0, "target node id (ping)")
	nodes := flag.Int("nodes", 64, "machine size (barrier)")
	inner := flag.Int("inner", 8, "barriers per measurement (barrier)")
	words := flag.Int("words", 8, "message size in words (bandwidth)")
	variant := flag.String("variant", "discard", "receiver variant (bandwidth)")
	shards := flag.Int("shards", engine.DefaultShards(),
		"parallel-engine shards per machine (0 or 1 = sequential reference; results are byte-identical)")
	flag.Parse()

	switch *which {
	case "ping":
		cycles, err := bench.Ping(*k, *target, *shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ping to node %d on a %d^3 mesh: %d cycles round trip (%.2f µs)\n",
			*target, *k, cycles, bench.Micros(float64(cycles)))
	case "barrier":
		cycles, err := bench.MeasureBarrier(*nodes, *inner, *shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("barrier on %d nodes: %.1f cycles (%.2f µs)\n",
			*nodes, cycles, bench.Micros(cycles))
	case "bandwidth":
		rate, err := bench.Bandwidth(*variant, *words)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("terminal bandwidth, %d-word messages, %s: %.1f Mbits/s\n",
			*words, *variant, rate)
	default:
		log.Fatalf("unknown benchmark %q", *which)
	}
}
