// jm-load is the synthetic load generator for jm-serve: it creates N
// concurrent kv sessions on a running daemon, drives each one through
// a deterministic op stream (seeded per session, so the exact same
// traffic is reproducible forever), and reports wall-clock request
// latency percentiles, sustained requests/sec, and the in-simulation
// per-op latency distribution (inject → reply, in machine cycles).
//
// With -verify (the default) it then replays every session's op stream
// standalone — in-process, no daemon, no checkpoints — and compares
// StateDigests: the daemon must produce byte-identical machine state
// no matter how many tenants it interleaved or how often it evicted
// and restored the session. Any divergence is a hard failure.
//
// The report is written in the style of BENCH_engine.json (append-only
// history) to -out, default BENCH_serve.json.
//
// Usage:
//
//	jm-load [-addr 127.0.0.1:8034] [-sessions 32] [-requests 10000]
//	        [-batch 4] [-nodes 8] [-keys 32] [-gateways 4] [-conc 16]
//	        [-seed 1] [-verify] [-label name] [-out BENCH_serve.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jmachine/internal/bench"
	"jmachine/internal/serve"
)

// client is a thin JSON client for the jm-serve API.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// sessionRun is one session's generated stream and measured outcomes.
type sessionRun struct {
	id     string
	reqs   []serve.ReplayReq
	wallMs []float64 // per-request client latency
	cycles []int64   // per-op simulated latency
	errs   int64
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8034", "jm-serve address")
	sessions := flag.Int("sessions", 32, "concurrent sessions to create")
	requests := flag.Int("requests", 10000, "total kv requests across all sessions")
	batch := flag.Int("batch", 4, "ops per request")
	nodes := flag.Int("nodes", 8, "nodes per session machine (power of two)")
	keys := flag.Int("keys", 32, "key-space size per session")
	gateways := flag.Int("gateways", 4, "gateway nodes per session")
	shards := flag.Int("shards", 0, "engine shards per session (0/1 = sequential)")
	conc := flag.Int("conc", 16, "client goroutines (sessions driven concurrently)")
	seed := flag.Int64("seed", 1, "base op-stream seed (session i uses seed+i)")
	verify := flag.Bool("verify", true, "replay every stream standalone and compare digests")
	label := flag.String("label", "", "history label for this run")
	out := flag.String("out", "BENCH_serve.json", "report path (- for stdout)")
	flag.Parse()
	log.SetPrefix("jm-load: ")
	log.SetFlags(0)

	if *sessions < 1 || *requests < 1 || *batch < 1 {
		log.Fatal("-sessions, -requests, and -batch must be positive")
	}
	c := &client{base: "http://" + *addr, hc: &http.Client{}}
	if err := c.do("GET", "/v1/healthz", nil, nil); err != nil {
		log.Fatalf("daemon not reachable: %v", err)
	}

	spec := serve.Spec{
		Workload: "kv", Nodes: *nodes, Shards: *shards,
		Keys: *keys, Gateways: *gateways,
	}
	perSession := (*requests + *sessions - 1) / *sessions

	// Create the fleet and pre-generate every stream: session i's
	// traffic is GenOps(seed+i, ...), batched -batch ops per request.
	runs := make([]*sessionRun, *sessions)
	for i := range runs {
		var created struct {
			ID string `json:"id"`
		}
		if err := c.do("POST", "/v1/sessions", spec, &created); err != nil {
			log.Fatalf("create session %d: %v", i, err)
		}
		ops := serve.GenOps(*seed+int64(i), *keys, perSession**batch)
		r := &sessionRun{id: created.ID}
		for o := 0; o < len(ops); o += *batch {
			r.reqs = append(r.reqs, serve.ReplayReq{Ops: ops[o : o+*batch]})
		}
		runs[i] = r
	}
	log.Printf("created %d sessions (%d nodes, %d keys, %d gateways each); driving %d requests of %d ops",
		*sessions, *nodes, *keys, *gateways, perSession**sessions, *batch)

	// Drive. A session's requests are a stream and must stay in order,
	// so concurrency fans out across sessions: -conc workers pull whole
	// sessions off a queue.
	var done atomic.Int64
	queue := make(chan *sessionRun, len(runs))
	for _, r := range runs {
		queue <- r
	}
	close(queue)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range queue {
				for _, req := range r.reqs {
					var resp struct {
						Results []serve.KVResult `json:"results"`
					}
					t0 := time.Now()
					err := c.do("POST", "/v1/sessions/"+r.id+"/kv",
						map[string]any{"ops": req.Ops}, &resp)
					if err != nil {
						log.Printf("session %s: %v", r.id, err)
						r.errs++
						continue
					}
					r.wallMs = append(r.wallMs, float64(time.Since(t0).Microseconds())/1000)
					for _, res := range resp.Results {
						r.cycles = append(r.cycles, res.Latency)
					}
					if n := done.Add(1); n%1000 == 0 {
						log.Printf("%d/%d requests", n, perSession**sessions)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var allWall []float64
	var allCycles []int64
	var errs, reqsDone, opsDone int64
	for _, r := range runs {
		allWall = append(allWall, r.wallMs...)
		allCycles = append(allCycles, r.cycles...)
		errs += r.errs
		reqsDone += int64(len(r.wallMs))
		opsDone += int64(len(r.cycles))
	}
	res := bench.ServeResult{
		Sessions: *sessions, Requests: reqsDone, Ops: opsDone, Errors: errs,
		Nodes: *nodes, Keys: *keys, BatchSize: *batch, Conc: *conc,
		WallSeconds: wall,
		ReqPerSec:   float64(reqsDone) / wall,
		OpsPerSec:   float64(opsDone) / wall,
		WallP50Ms:   bench.PercentileF(allWall, 50),
		WallP90Ms:   bench.PercentileF(allWall, 90),
		WallP99Ms:   bench.PercentileF(allWall, 99),
		CycleP50:    bench.PercentileI(allCycles, 50),
		CycleP90:    bench.PercentileI(allCycles, 90),
		CycleP99:    bench.PercentileI(allCycles, 99),
		Verified:    -1,
	}
	log.Printf("%d requests (%d ops) in %.2fs: %.0f req/s, wall p50/p99 = %.2f/%.2f ms, cycle p50/p99 = %d/%d",
		reqsDone, opsDone, wall, res.ReqPerSec, res.WallP50Ms, res.WallP99Ms, res.CycleP50, res.CycleP99)

	if *verify {
		res.Verified = 0
		for i, r := range runs {
			var dig struct {
				Digest string `json:"digest"`
			}
			if err := c.do("GET", "/v1/sessions/"+r.id+"/digest", nil, &dig); err != nil {
				log.Fatalf("digest %s: %v", r.id, err)
			}
			_, want, err := serve.Replay(spec, r.reqs)
			if err != nil {
				log.Fatalf("standalone replay of session %d: %v", i, err)
			}
			if dig.Digest != fmt.Sprintf("%016x", want) {
				log.Printf("DIVERGENCE: session %s digest %s, standalone %016x", r.id, dig.Digest, want)
				continue
			}
			res.Verified++
		}
		log.Printf("verified %d/%d sessions against standalone replay", res.Verified, *sessions)
	}

	rep := &bench.ServeReport{
		Workload: fmt.Sprintf("jm-serve kv: %d sessions x %d-node machines, %d-op batches",
			*sessions, *nodes, *batch),
		Label:      *label,
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Notes: []string{
			"wall_* are client-observed request latencies (daemon + HTTP on this host)",
			"cycle_* are per-op inject-to-reply latencies in simulated machine cycles: host-independent",
			"verified_sessions counts daemon digests byte-identical to a standalone replay of the same stream (-1 = skipped)",
			"history carries one summary line per past run of this file",
		},
		Result: res,
	}
	if err := bench.WriteServeReport(rep, *out); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %s", *out)
	}
	if errs > 0 {
		log.Fatalf("%d requests failed", errs)
	}
	if *verify && res.Verified != *sessions {
		log.Fatalf("digest divergence: only %d/%d sessions verified", res.Verified, *sessions)
	}
}
