// jm-lint runs the determinism analyzer suite (internal/lint) over the
// simulation packages. It runs in two modes:
//
// Standalone (the canonical mode, used by scripts/check.sh and CI):
//
//	jm-lint ./internal/...
//	jm-lint -c maporder,stepconc ./internal/mdp ./internal/machine
//	jm-lint -list
//
// loads and type-checks the named packages fully offline (repository
// imports from the module tree, standard library from GOROOT source)
// and applies every analyzer across the whole package set at once, so
// cross-package reachability (digest roots in internal/stats calling
// into internal/mdp) is seen.
//
// As a go vet tool:
//
//	go vet -vettool=$(which jm-lint) ./internal/...
//
// jm-lint speaks enough of the vet driver protocol (-V=full and the
// JSON .cfg unit file) to run under go vet. In this mode each package
// is analyzed alone, so cross-package reachability degrades to the
// package at hand; standalone mode remains authoritative.
//
// Exit status is 1 if any diagnostic is reported, 2 on usage or load
// errors. Diagnostics and their suppression annotations are documented
// in docs/LINT.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"jmachine/internal/lint"
)

func main() {
	// Vet protocol: `go vet` probes the tool with -V=full, then invokes
	// it with a single *.cfg argument per package.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			// The vet driver caches on the tool's build ID: hash our own
			// executable, as x/tools' unitchecker does.
			printVersion()
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			// The vet driver asks for the tool's flag definitions as
			// JSON; jm-lint adds none.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetUnit(os.Args[1]))
		}
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("c", "", "comma-separated analyzer names or codes to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s  %s\n", a.Name, a.Code, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fatal(err)
	}
	prog, err := loader.LoadDirs(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(rel(modDir, d))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%02x", sum)
		}
	}
	fmt.Printf("jm-lint version devel comments-go-here buildID=%s\n", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jm-lint:", err)
	os.Exit(2)
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.Analyzers(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := lint.AnalyzerByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// rel shortens the diagnostic's filename to be module-relative for
// stable, readable output.
func rel(modDir string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(modDir, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

// ---- go vet unit mode ------------------------------------------------

// vetConfig is the unit description `go vet` hands to analysis tools
// (cmd/go's vetConfig struct, decoded from the .cfg JSON file).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jm-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "jm-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts output first: go vet requires the vetx file to exist even
	// when there is nothing to say (jm-lint exports no facts).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "jm-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "jm-lint:", err)
			return 2
		}
		files = append(files, f)
	}
	// Imports come from the compiler's export data, as recorded by the
	// driver in PackageFile (keyed by canonical path via ImportMap).
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
		Error:    func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "jm-lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	prog := lint.SinglePackageProgram(fset, cfg.ImportPath, cfg.Dir, tpkg, info, files)
	diags := lint.Run(prog, lint.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
