package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles jm-lint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "jm-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building jm-lint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestStandaloneFindings runs the built driver against a fixture module
// and checks the golden properties: exit status 1, one line per
// diagnostic, stable order, the expected codes.
func TestStandaloneFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool")
	}
	bin := buildTool(t)
	fixture := filepath.Join(repoRoot(t), "internal", "lint", "testdata", "src", "jml002")
	cmd := exec.Command(bin, ".")
	cmd.Dir = fixture
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on findings, got %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 diagnostics, got %d:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, "JML002") || !strings.HasPrefix(l, "a.go:") {
			t.Errorf("unexpected diagnostic line %q", l)
		}
	}
	if !strings.HasPrefix(lines[0], "a.go:8:") || !strings.HasPrefix(lines[1], "a.go:11:") {
		t.Errorf("diagnostics not in position order:\n%s", out)
	}
}

// TestStandaloneClean runs the driver over the real tree, as CI does.
func TestStandaloneClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool over the whole tree")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./internal/...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("jm-lint ./internal/... not clean: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("want no output when clean, got:\n%s", out)
	}
}

// TestVettoolProtocol exercises the go vet driver protocol end to end
// on one clean package.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/stats/")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
	// And the -V=full probe go vet depends on.
	probe := exec.Command(bin, "-V=full")
	pout, err := probe.Output()
	if err != nil || !strings.HasPrefix(string(pout), "jm-lint version") {
		t.Fatalf("-V=full probe: %v %q", err, pout)
	}
}
