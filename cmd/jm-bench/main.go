// jm-bench measures the parallel engine's wall-clock behaviour on the
// 512-node Figure 3 loaded-exchange workload and writes the results as
// JSON (the committed BENCH_engine.json). Each shard count runs the
// identical workload; the final machine-state digests must match the
// sequential reference, so the file doubles as a large-scale
// determinism check.
//
// Usage:
//
//	jm-bench [-nodes 512] [-warm 2000] [-measure 20000]
//	         [-shards 0,2,4,8] [-gobench file] [-out BENCH_engine.json]
//
// -gobench merges the `go test -bench` output of the testing.B suite
// (scripts/bench.sh produces it) into the JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"jmachine/internal/bench"
)

// goBenchLine is one parsed `go test -bench` result row.
type goBenchLine struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// report is the BENCH_engine.json schema.
type report struct {
	Workload     string                    `json:"workload"`
	HostCores    int                       `json:"host_cores"`
	GoMaxProcs   int                       `json:"gomaxprocs"`
	GoVersion    string                    `json:"go_version"`
	Notes        []string                  `json:"notes"`
	Probe        []bench.EngineProbeResult `json:"probe"`
	Speedup      map[string]float64        `json:"speedup_vs_sequential"`
	DigestsMatch bool                      `json:"digests_match"`
	GoBench      []goBenchLine             `json:"go_bench,omitempty"`
}

func main() {
	nodes := flag.Int("nodes", 512, "probe machine size")
	warm := flag.Int64("warm", 2000, "warm-up cycles before timing")
	measure := flag.Int64("measure", 20000, "measured cycles")
	shardList := flag.String("shards", "0,2,4,8", "comma-separated shard counts (0 = sequential)")
	gobench := flag.String("gobench", "", "`go test -bench` output file to merge")
	out := flag.String("out", "BENCH_engine.json", "output path (- for stdout)")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -shards entry %q: %v", f, err)
		}
		counts = append(counts, n)
	}

	rep := report{
		Workload:   fmt.Sprintf("fig3 loaded exchange, %d nodes, 8-word messages", *nodes),
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Notes: []string{
			"cycles_per_sec = measured cycles / wall seconds; ns/op in go_bench is ns per machine cycle",
			"state digests across shard counts must be equal (byte-identical simulation)",
			"speedup over the sequential loop requires >= 4 hardware threads; on fewer cores the rendezvous overhead dominates and the sequential reference is the right engine",
		},
		Speedup: map[string]float64{},
	}

	var seqRate float64
	rep.DigestsMatch = true
	for _, k := range counts {
		res, err := bench.EngineProbe(*nodes, k, *warm, *measure)
		if err != nil {
			log.Fatal(err)
		}
		rep.Probe = append(rep.Probe, res)
		fmt.Fprintf(os.Stderr, "probe nodes=%d shards=%d: %.0f cycles/sec (digest %#x)\n",
			res.Nodes, res.Shards, res.CyclesPerSec, res.Digest)
		if k <= 1 && seqRate == 0 {
			seqRate = res.CyclesPerSec
		}
		if res.Digest != rep.Probe[0].Digest {
			rep.DigestsMatch = false
		}
	}
	if seqRate > 0 {
		for _, res := range rep.Probe {
			if res.Shards > 1 {
				rep.Speedup[fmt.Sprintf("shards-%d", res.Shards)] = res.CyclesPerSec / seqRate
			}
		}
	}
	if !rep.DigestsMatch {
		log.Fatal("state digests diverged across shard counts — determinism violation")
	}

	if *gobench != "" {
		lines, err := parseGoBench(*gobench)
		if err != nil {
			log.Fatal(err)
		}
		rep.GoBench = lines
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// parseGoBench extracts "BenchmarkX-N  iters  ns/op" rows from a
// `go test -bench` output file.
func parseGoBench(path string) ([]goBenchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []goBenchLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, goBenchLine{Name: fields[0], Iterations: iters, NsPerOp: ns})
	}
	return out, sc.Err()
}
