// jm-bench measures the simulator's wall-clock behaviour on two
// 512-node workloads and writes the results as JSON (the committed
// BENCH_engine.json):
//
//   - the Figure 3 loaded exchange (every node firing 8-word messages),
//     stepped sequentially and under each shard count — the parallel
//     engine's benchmark; and
//   - the token-ring idle probe (all but a few nodes suspended on cfut
//     slots), run under the reference loop and the event-horizon fast
//     path — the active-set scheduler's benchmark; and
//   - the roofline probe (both fig3 shapes, interpreted and compiled),
//     which classifies each shape as dispatch-bound or memory-bound by
//     how much of its host time the compiled handler tier removes —
//     the compiled tier's benchmark; and
//   - the fusion probe (fig3 shapes plus the pingpong client, each run
//     with per-handler send-distance certificates and again under the
//     old whole-image NoSend licensing), which reports fused-instruction
//     share, window counts, and the window-end histogram — the effect
//     certifier's benchmark; and
//   - the rendezvous probe (token ring and pingpong under the
//     per-cycle and epoch-batched engine protocols) plus the
//     mesh-scaling probe (token rings at 2K–16K nodes) — the epoch
//     engine's benchmarks. Rendezvous counts are host-independent.
//
// Each run of the same workload must end in a byte-identical machine
// state, so the file doubles as a large-scale determinism check. Host
// parallelism (host_cores, gomaxprocs) is recorded because the engine
// numbers are meaningless without it; the fast-path ratio is
// host-independent. Re-running against an existing output file appends
// that file's summary to a history list instead of erasing it, so the
// committed JSON accumulates one entry per PR.
//
// Usage:
//
//	jm-bench [-nodes 512] [-warm 2000] [-measure 20000]
//	         [-shards 0,2,4,8] [-force-shards] [-idle-tokens 4]
//	         [-roofline] [-fusion] [-mesh 2048,4096,16384] [-mesh-cycles 2000]
//	         [-mesh-smoke] [-label name]
//	         [-gobench file] [-out BENCH_engine.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"jmachine/internal/bench"
	"jmachine/internal/ckpt"
)

// goBenchLine is one parsed `go test -bench` result row.
type goBenchLine struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// idleProbeRow is one idle-probe measurement plus its stepping mode.
type idleProbeRow struct {
	bench.EngineProbeResult
	Mode string `json:"mode"` // "reference" or "fast"
}

// historyEntry is the one-line summary of a past jm-bench run, carried
// forward each time the output file is regenerated.
type historyEntry struct {
	Label            string  `json:"label,omitempty"`
	HostCores        int     `json:"host_cores"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	GoVersion        string  `json:"go_version"`
	Fig3SeqRate      float64 `json:"fig3_seq_cycles_per_sec"`
	IdleRefRate      float64 `json:"idle_reference_cycles_per_sec,omitempty"`
	IdleFastRate     float64 `json:"idle_fast_cycles_per_sec,omitempty"`
	FastPathSpeedup  float64 `json:"fastpath_speedup_idle,omitempty"`
	BestShardSpeedup float64 `json:"best_shard_speedup,omitempty"`
	// CompiledSpeedup is the roofline probe's compiled/interpreted rate
	// ratio on the dispatch-bound fig3-compute shape.
	CompiledSpeedup float64 `json:"compiled_speedup_fig3_compute,omitempty"`
	// FusionShareGain is the fused-instruction share the per-handler
	// certificates add over the whole-image baseline on the resident
	// shape (send-free loop, sending image) — the certificates' win.
	FusionShareGain float64 `json:"fusion_share_gain_fig3_resident,omitempty"`
	// Rendezvous reductions (per-cycle count / epoch count) from the
	// rendezvous probe — host-independent, so history entries are
	// comparable across machines.
	IdleRendezvousReduction float64 `json:"idle_rendezvous_reduction,omitempty"`
	PingRendezvousReduction float64 `json:"ping_rendezvous_reduction,omitempty"`
	// MeshBytesPerNode is the largest mesh row's heap footprint.
	MeshNodes        int   `json:"mesh_nodes,omitempty"`
	MeshBytesPerNode int64 `json:"mesh_heap_bytes_per_node,omitempty"`
}

// report is the BENCH_engine.json schema.
type report struct {
	Workload   string   `json:"workload"`
	Label      string   `json:"label,omitempty"`
	HostCores  int      `json:"host_cores"`
	GoMaxProcs int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Notes      []string `json:"notes"`
	// Probe is the Figure 3 loaded exchange across shard counts; the
	// sequential rows run with the fast path on (its live-node overhead
	// on a saturated machine is part of the default configuration).
	Probe []bench.EngineProbeResult `json:"probe"`
	// IdleProbe is the token ring under reference and fast stepping.
	IdleProbe []idleProbeRow `json:"idle_probe,omitempty"`
	// Speedup compares sharded fig3 rows to the sequential one.
	Speedup map[string]float64 `json:"speedup_vs_sequential"`
	// FastPathSpeedup is the idle probe's fast/reference rate ratio on
	// the sequential loop: the event-horizon win, host-independent.
	FastPathSpeedup float64 `json:"fastpath_speedup_idle,omitempty"`
	// Roofline classifies both fig3 shapes as dispatch- or memory-bound
	// by the compiled tier's speedup; its digests_match covers the
	// compiled-vs-interpreted pairs.
	Roofline *bench.RooflineResult `json:"roofline,omitempty"`
	// Fusion compares the per-handler send-distance certificates against
	// the old whole-image NoSend licensing on each shape: fused share,
	// window counts, and the per-reason window-end histogram.
	Fusion *bench.FusionResult `json:"fusion,omitempty"`
	// Rendezvous compares the per-cycle and epoch-batched engine
	// protocols (equal digests enforced, counts host-independent).
	Rendezvous []bench.RendezvousResult `json:"rendezvous_probe,omitempty"`
	// MeshScaling is the large-mesh token-ring sweep.
	MeshScaling  []bench.MeshScalingResult `json:"mesh_scaling,omitempty"`
	DigestsMatch bool                      `json:"digests_match"`
	GoBench      []goBenchLine             `json:"go_bench,omitempty"`
	History      []historyEntry            `json:"history,omitempty"`
}

// summarize folds a report into its history line.
func (r *report) summarize() historyEntry {
	h := historyEntry{
		Label:           r.Label,
		HostCores:       r.HostCores,
		GoMaxProcs:      r.GoMaxProcs,
		GoVersion:       r.GoVersion,
		FastPathSpeedup: r.FastPathSpeedup,
	}
	for _, p := range r.Probe {
		if p.Shards <= 1 {
			h.Fig3SeqRate = p.CyclesPerSec
			break
		}
	}
	for _, p := range r.IdleProbe {
		if p.Shards > 1 {
			continue
		}
		switch p.Mode {
		case "reference":
			h.IdleRefRate = p.CyclesPerSec
		case "fast":
			h.IdleFastRate = p.CyclesPerSec
		}
	}
	for _, s := range r.Speedup {
		if s > h.BestShardSpeedup {
			h.BestShardSpeedup = s
		}
	}
	if r.Roofline != nil {
		h.CompiledSpeedup = r.Roofline.Speedup["fig3-compute"]
	}
	if r.Fusion != nil {
		h.FusionShareGain = r.Fusion.ShareGain["fig3-resident"]
	}
	for _, rv := range r.Rendezvous {
		switch rv.Workload {
		case "idle-ring":
			h.IdleRendezvousReduction = rv.Reduction
		case "pingpong":
			h.PingRendezvousReduction = rv.Reduction
		}
	}
	for _, ms := range r.MeshScaling {
		if ms.Nodes > h.MeshNodes {
			h.MeshNodes = ms.Nodes
			h.MeshBytesPerNode = ms.HeapBytesPerNode
		}
	}
	return h
}

func main() {
	nodes := flag.Int("nodes", 512, "probe machine size")
	warm := flag.Int64("warm", 2000, "warm-up cycles before timing")
	measure := flag.Int64("measure", 20000, "measured cycles")
	shardList := flag.String("shards", "0,2,4,8", "comma-separated shard counts (0 = sequential)")
	idleTokens := flag.Int("idle-tokens", 4, "tokens circulating in the idle probe ring")
	compiledFlag := flag.Bool("compiled", false, "install the compiled handler tier for the fig3 probe rows")
	roofline := flag.Bool("roofline", true, "run the compiled-tier roofline probe (both fig3 shapes, both tiers)")
	fusion := flag.Bool("fusion", true, "run the fusion-coverage probe (per-handler certificates vs whole-image licensing)")
	forceShards := flag.Bool("force-shards", false, "keep shard counts above the host's core count (skipped by default: oversubscribed rows measure scheduler thrash, not the engine)")
	rendezvous := flag.Bool("rendezvous", true, "run the rendezvous-reduction probe (per-cycle vs epoch protocol; deterministic)")
	meshList := flag.String("mesh", "2048,4096,16384", "comma-separated mesh sizes for the scaling probe (empty = off)")
	meshCycles := flag.Int64("mesh-cycles", 2000, "cycles per mesh-scaling row")
	meshShards := flag.Int("mesh-shards", 4, "shard count for the mesh-scaling rows")
	meshCheckMax := flag.Int("mesh-check-max", 4096, "digest-check mesh rows up to this size against a sequential reference run")
	meshSmoke := flag.Bool("mesh-smoke", false, "CI smoke: run only the rendezvous probe and one digest-checked 4096-node mesh row, print, and exit")
	label := flag.String("label", "", "history label for this run (e.g. a PR or commit name)")
	gobench := flag.String("gobench", "", "`go test -bench` output file to merge")
	out := flag.String("out", "BENCH_engine.json", "output path (- for stdout)")
	var cf ckpt.Flags
	cf.Register(flag.CommandLine,
		"write periodic fig3-probe checkpoints to this file (suffixed .s<shards> per row)")
	flag.Parse()
	if err := cf.Validate(); err != nil {
		log.Fatal(err)
	}

	if *meshSmoke {
		runMeshSmoke(*meshCycles)
		return
	}

	var counts []int
	for _, f := range strings.Split(*shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -shards entry %q: %v", f, err)
		}
		if n > runtime.NumCPU() && !*forceShards {
			fmt.Fprintf(os.Stderr, "skipping shards=%d: host has %d cores (use -force-shards to keep oversubscribed rows)\n",
				n, runtime.NumCPU())
			continue
		}
		counts = append(counts, n)
	}

	rep := report{
		Workload:   fmt.Sprintf("fig3 loaded exchange + idle token ring, %d nodes", *nodes),
		Label:      *label,
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Notes: []string{
			"cycles_per_sec = measured cycles / wall seconds; ns/op in go_bench is ns per machine cycle",
			"state digests within each workload must be equal (byte-identical simulation)",
			"speedup_vs_sequential (fig3, sharded engine) requires >= 4 hardware threads; on fewer cores the rendezvous overhead dominates",
			"fastpath_speedup_idle (token ring, event-horizon scheduler vs reference loop) is host-independent: it comes from not stepping parked nodes",
			"roofline classifies each fig3 shape by the compiled tier's speedup: dispatch-bound when removing instruction dispatch pays, memory-bound when host time lives in routers/queues/charge machinery the tier leaves to the interpreter",
			"fusion compares per-handler send-distance certificates against the old whole-image NoSend licensing: the fig3-resident shape (send-free loop, sending image) is where the certificates recover coverage; window_ends shows whether each shape is license-bound or code-bound",
			"history carries one summary line per past run of this file",
		},
		Speedup:      map[string]float64{},
		DigestsMatch: true,
	}
	if cores := runtime.NumCPU(); maxShards(counts) > cores {
		note := fmt.Sprintf("WARNING: host has %d cores but -shards requests up to %d; sharded rows oversubscribe the host and their speedups understate the engine",
			cores, maxShards(counts))
		fmt.Fprintln(os.Stderr, note)
		rep.Notes = append(rep.Notes, note)
	}

	// Figure 3 loaded exchange across shard counts.
	var seqRate float64
	for _, k := range counts {
		row := cf
		if cf.Path != "" {
			// One file per shard row: rows are independent runs, and a
			// resumed campaign must pair each row with its own state.
			row = cf.WithPath(fmt.Sprintf("%s.s%d", cf.Path, k))
		}
		res, err := bench.EngineProbeCkpt(*nodes, k, *warm, *measure, row.Path, row.Every, row.Resume, *compiledFlag)
		if err != nil {
			log.Fatal(err)
		}
		rep.Probe = append(rep.Probe, res)
		fmt.Fprintf(os.Stderr, "fig3 probe nodes=%d shards=%d: %.0f cycles/sec (digest %#x)\n",
			res.Nodes, res.Shards, res.CyclesPerSec, res.Digest)
		if k <= 1 && seqRate == 0 {
			seqRate = res.CyclesPerSec
		}
		if res.Digest != rep.Probe[0].Digest {
			rep.DigestsMatch = false
		}
	}
	if seqRate > 0 {
		for _, res := range rep.Probe {
			if res.Shards > 1 {
				rep.Speedup[fmt.Sprintf("shards-%d", res.Shards)] = res.CyclesPerSec / seqRate
			}
		}
	}

	// Idle token ring: reference loop, then the fast path, sequentially
	// and under the shard counts.
	type idleRun struct {
		mode      string
		reference bool
		shards    int
	}
	idleRuns := []idleRun{{"reference", true, 0}, {"fast", false, 0}}
	for _, k := range counts {
		if k > 1 {
			idleRuns = append(idleRuns, idleRun{"fast", false, k})
		}
	}
	var idleRef, idleFast float64
	for _, r := range idleRuns {
		res, err := bench.IdleProbe(*nodes, r.shards, r.reference, *idleTokens, *warm, *measure)
		if err != nil {
			log.Fatal(err)
		}
		rep.IdleProbe = append(rep.IdleProbe, idleProbeRow{EngineProbeResult: res, Mode: r.mode})
		fmt.Fprintf(os.Stderr, "idle probe nodes=%d mode=%s shards=%d: %.0f cycles/sec (digest %#x)\n",
			res.Nodes, r.mode, res.Shards, res.CyclesPerSec, res.Digest)
		if res.Digest != rep.IdleProbe[0].Digest {
			rep.DigestsMatch = false
		}
		if r.shards == 0 {
			if r.reference {
				idleRef = res.CyclesPerSec
			} else {
				idleFast = res.CyclesPerSec
			}
		}
	}
	if idleRef > 0 && idleFast > 0 {
		rep.FastPathSpeedup = idleFast / idleRef
		fmt.Fprintf(os.Stderr, "fast-path speedup on the idle ring: %.1fx\n", rep.FastPathSpeedup)
	}

	// Compiled-tier roofline: both fig3 shapes at both tiers, classified
	// by how much host time closure dispatch + fusion removes.
	if *roofline {
		res, err := bench.Roofline(*nodes, *warm, *measure)
		if err != nil {
			log.Fatal(err)
		}
		rep.Roofline = res
		for _, s := range []string{"fig3-compute", "fig3-exchange"} {
			fmt.Fprintf(os.Stderr, "roofline %s: compiled speedup %.2fx (%s)\n",
				s, res.Speedup[s], res.Bound[s])
		}
		if !res.DigestsMatch {
			rep.DigestsMatch = false
		}
	}
	// Fusion-coverage probe: per-handler send-distance certificates vs
	// the old whole-image NoSend licensing, per shape.
	if *fusion {
		res, err := bench.FusionProbe(*nodes, *warm+*measure)
		if err != nil {
			log.Fatal(err)
		}
		rep.Fusion = res
		for i := 0; i+1 < len(res.Rows); i += 2 {
			base, cert := res.Rows[i], res.Rows[i+1]
			fmt.Fprintf(os.Stderr, "fusion %s: fused share %.4f -> %.4f with certificates (gain %+.4f)\n",
				base.Shape, base.FusedShare, cert.FusedShare, res.ShareGain[base.Shape])
		}
		if !res.DigestsMatch {
			rep.DigestsMatch = false
		}
	}
	// Rendezvous-reduction probe: per-cycle vs epoch protocol on the
	// token ring and the pingpong, digests compared inside the probe.
	if *rendezvous {
		rv, err := bench.RendezvousProbe(64, 4, *idleTokens, 20000)
		if err != nil {
			log.Fatal(err)
		}
		rep.Rendezvous = rv
		for _, r := range rv {
			fmt.Fprintf(os.Stderr, "rendezvous %s: per-cycle %d, epoch %d (%.0fx reduction)\n",
				r.Workload, r.PerCycle, r.Epoch, r.Reduction)
		}
	}

	// Mesh-scaling sweep: large token rings under the epoch engine.
	if *meshList != "" {
		for _, f := range strings.Split(*meshList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("bad -mesh entry %q: %v", f, err)
			}
			res, err := bench.MeshScalingProbe(n, *meshShards, *idleTokens, *meshCycles, n <= *meshCheckMax)
			if err != nil {
				log.Fatal(err)
			}
			rep.MeshScaling = append(rep.MeshScaling, res)
			fmt.Fprintf(os.Stderr, "mesh probe nodes=%d shards=%d: %.0f cycles/sec, %d B/node heap, %d rendezvous (checked=%v)\n",
				res.Nodes, res.Shards, res.CyclesPerSec, res.HeapBytesPerNode, res.Rendezvous, res.Checked)
		}
	}

	if !rep.DigestsMatch {
		log.Fatal("state digests diverged across runs of the same workload — determinism violation")
	}

	if *gobench != "" {
		lines, err := parseGoBench(*gobench)
		if err != nil {
			log.Fatal(err)
		}
		rep.GoBench = lines
	}

	// Append, never erase: fold the previous file's summary (and its
	// accumulated history) into this report's history.
	if *out != "-" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old report
			if err := json.Unmarshal(prev, &old); err == nil {
				rep.History = append(old.History, old.summarize())
			} else {
				fmt.Fprintf(os.Stderr, "warning: %s exists but is not a jm-bench report (%v); history starts fresh\n", *out, err)
			}
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// runMeshSmoke is the CI entry point: the deterministic rendezvous
// probe (which fails on any per-cycle/epoch digest mismatch or a
// reduction below the committed 10x floor) and one digest-checked
// 4096-node mesh row. No file is written.
func runMeshSmoke(cycles int64) {
	rv, err := bench.RendezvousProbe(64, 4, 4, 20000)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rv {
		if r.Epoch != 0 && r.Reduction < 10 {
			log.Fatalf("rendezvous %s: reduction %.1fx below the 10x floor (per-cycle %d, epoch %d)",
				r.Workload, r.Reduction, r.PerCycle, r.Epoch)
		}
		fmt.Printf("rendezvous %s: per-cycle %d, epoch %d ok\n", r.Workload, r.PerCycle, r.Epoch)
	}
	res, err := bench.MeshScalingProbe(4096, 4, 4, cycles, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh 4096: digest %#x checked vs reference, %d B/node heap, %d rendezvous\n",
		res.Digest, res.HeapBytesPerNode, res.Rendezvous)
}

// maxShards returns the largest requested shard count.
func maxShards(counts []int) int {
	max := 0
	for _, k := range counts {
		if k > max {
			max = k
		}
	}
	return max
}

// parseGoBench extracts "BenchmarkX-N  iters  ns/op" rows from a
// `go test -bench` output file.
func parseGoBench(path string) ([]goBenchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []goBenchLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, goBenchLine{Name: fields[0], Iterations: iters, NsPerOp: ns})
	}
	return out, sc.Err()
}
