// jm-tables regenerates every table and figure of the paper's evaluation
// section and prints them as text.
//
// Usage:
//
//	jm-tables [-quick] [-paper] [-v] [-reference] [-exp fig2,tab1,...]
//
// Experiments: seq, fig2, tab1, fig3, fig4, tab2, tab3, fig5, fig6,
// tab4, tab5, ablate (default: all).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jmachine/internal/bench"
	"jmachine/internal/engine"
)

func main() {
	quick := flag.Bool("quick", false, "shrink machines and problem sizes")
	paper := flag.Bool("paper", false, "use the paper's exact problem sizes (slow)")
	verbose := flag.Bool("v", false, "print progress")
	plots := flag.Bool("plots", false, "render ASCII plots for the figures")
	exps := flag.String("exp", "all", "comma-separated experiment list")
	shards := flag.Int("shards", engine.DefaultShards(),
		"parallel-engine shards per machine (0 or 1 = sequential reference; results are byte-identical)")
	reference := flag.Bool("reference", false,
		"disable the event-horizon fast path (every-node-every-cycle stepping; results are byte-identical)")
	compiledTier := flag.Bool("compiled", false,
		"execute handlers through the compiled tier (results are byte-identical)")
	flag.Parse()

	o := bench.Options{Quick: *quick, PaperScale: *paper, Verbose: *verbose, Shards: *shards,
		Reference: *reference, Compiled: *compiledTier}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	type experiment struct {
		name string
		run  func() error
	}
	show := func(t fmt.Stringer) { fmt.Println(t.String()) }

	experiments := []experiment{
		{"seq", func() error {
			r, err := bench.SequentialRates(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"fig2", func() error {
			r, err := bench.Fig2(o)
			if err != nil {
				return err
			}
			show(r.Table())
			if *plots {
				fmt.Println(bench.Plot("Figure 2 (plot)", "hops", "RTT cycles", r.Series, 64, 18))
			}
			return nil
		}},
		{"tab1", func() error {
			r, err := bench.Table1(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"fig3", func() error {
			r, err := bench.Fig3(o)
			if err != nil {
				return err
			}
			for _, t := range r.Tables() {
				show(t)
			}
			if *plots {
				fmt.Println(bench.Plot("Figure 3 left (plot)", "bisection Mbits/s", "one-way latency (cycles)", r.Latency, 64, 18))
				fmt.Println(bench.Plot("Figure 3 right (plot)", "grain (cycles)", "efficiency", r.Efficiency, 64, 18))
			}
			return nil
		}},
		{"fig4", func() error {
			r, err := bench.Fig4(o)
			if err != nil {
				return err
			}
			show(r.Table())
			if *plots {
				fmt.Println(bench.Plot("Figure 4 (plot)", "message words", "Mbits/s", r.Series, 64, 18))
			}
			return nil
		}},
		{"tab2", func() error {
			r, err := bench.Table2(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"tab3", func() error {
			r, err := bench.Table3(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"fig5", func() error {
			r, err := bench.Fig5(o)
			if err != nil {
				return err
			}
			show(r.Table())
			if *plots {
				fmt.Println(bench.Plot("Figure 5 (plot)", "nodes", "speedup", r.Series, 64, 18))
			}
			return nil
		}},
		{"fig6", func() error {
			r, err := bench.Fig6(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"tab4", func() error {
			r, err := bench.Table4(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"tab5", func() error {
			r, err := bench.Table5(o)
			if err != nil {
				return err
			}
			show(r.Table())
			return nil
		}},
		{"ablate", func() error {
			for _, run := range []func(bench.Options) (*bench.AblationResult, error){
				bench.AblateDispatch, bench.AblateArbitration, bench.AblateQueueSize,
				bench.AblateFlowControl, bench.AblateNaming,
			} {
				r, err := run(o)
				if err != nil {
					return err
				}
				show(r.Table())
			}
			return nil
		}},
	}

	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
}
