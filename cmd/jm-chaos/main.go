// jm-chaos runs deterministic fault-injection campaigns against the
// simulated J-Machine and reports survival and degradation: whether
// the workload completed, at what cycle cost, and what the resilience
// machinery (checksums, return-to-sender, reliable delivery, the
// progress watchdog) did along the way. The same seed and flags always
// produce byte-identical output.
//
// Usage:
//
//	jm-chaos -workload pingpong -campaign 'seed=7;freeze@100:node=7,dur=5000;corrupt@1:node=0,word=1'
//	jm-chaos -workload barrier -nodes 8 -seed 42 -faults 6 -reliable
//	jm-chaos -workload all -seed 1 -reliable -watchdog 20000
//	jm-chaos -workload lcs -seed 3 -faults 4 -reliable -runs 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/ckpt"
	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

func main() {
	workload := flag.String("workload", "pingpong",
		"workload: pingpong, barrier, lcs, radix, nqueens, tsp, or all")
	nodes := flag.Int("nodes", 8, "machine size")
	campaignStr := flag.String("campaign", "",
		"explicit campaign in the chaos text format (overrides -seed/-faults)")
	seed := flag.Uint64("seed", 1, "random-campaign seed")
	faults := flag.Int("faults", 4, "random-campaign fault count")
	horizon := flag.Int64("horizon", 50_000, "random-campaign scheduling horizon in cycles")
	reliable := flag.Bool("reliable", false, "enable the ACK/retransmit reliable-delivery runtime")
	checksum := flag.Bool("checksum", true, "enable NI checksum protection")
	rts := flag.Bool("rts", true, "enable return-to-sender flow control")
	maxReturns := flag.Int("max-returns", 32, "refusal bound before the network drops (0 = unbounded)")
	watchdog := flag.Int64("watchdog", 100_000, "progress-watchdog window in cycles (0 = off)")
	budget := flag.Int64("budget", 4_000_000, "cycle budget per run")
	runs := flag.Int("runs", 1, "repeat count (identical output per run proves determinism)")
	shards := flag.Int("shards", engine.DefaultShards(),
		"parallel-engine shards per machine (0 or 1 = sequential reference; results are byte-identical)")
	compiledTier := flag.Bool("compiled", false,
		"execute handlers through the compiled tier (results are byte-identical)")
	var cf ckpt.Flags
	cf.Register(flag.CommandLine, "")
	flag.Parse()
	if err := cf.Validate(); err != nil {
		log.Fatal(err)
	}

	camp, err := buildCampaign(*campaignStr, *seed, *nodes, *horizon, *faults)
	if err != nil {
		log.Fatal(err)
	}
	rc := bench.ResilienceConfig{
		Nodes:      *nodes,
		Checksum:   *checksum,
		RTS:        *rts,
		MaxReturns: *maxReturns,
		Watchdog:   *watchdog,
		Reliable:   *reliable,
		Budget:     *budget,
		Shards:     *shards,
		Compiled:   *compiledTier,
		Ckpt:       cf.Path,
		CkptEvery:  cf.Every,
		Resume:     cf.Resume,
	}

	fmt.Printf("campaign: %s\n", camp.String())
	fmt.Printf("resilience: checksum=%v rts=%v max-returns=%d watchdog=%d reliable=%v\n\n",
		rc.Checksum, rc.RTS, rc.MaxReturns, rc.Watchdog, rc.Reliable)

	names := []string{*workload}
	if *workload == "all" {
		names = []string{"pingpong", "barrier", "lcs", "radix", "nqueens", "tsp"}
	}
	failed := false
	for r := 0; r < *runs; r++ {
		if *runs > 1 {
			fmt.Printf("=== run %d ===\n", r+1)
		}
		for _, name := range names {
			rcw := rc
			if rcw.Ckpt != "" && len(names) > 1 {
				rcw.Ckpt = rc.Ckpt + "." + name
			}
			res, err := runWorkload(name, camp, rcw)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			printResult(res)
			if !res.Completed {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// buildCampaign parses an explicit campaign or generates a seeded one.
func buildCampaign(explicit string, seed uint64, nodes int, horizon int64, faults int) (chaos.Campaign, error) {
	if explicit != "" {
		return chaos.ParseCampaign(explicit)
	}
	return chaos.RandomCampaign(seed, nodes, horizon, faults), nil
}

// runWorkload dispatches one workload under the campaign.
func runWorkload(name string, camp chaos.Campaign, rc bench.ResilienceConfig) (*bench.CampaignResult, error) {
	switch name {
	case "pingpong":
		return bench.PingCampaign(camp, rc)
	case "barrier":
		return bench.BarrierCampaign(camp, rc, 4)
	case "lcs":
		var h holder
		res, err := lcs.Run(rc.Nodes, lcs.Params{
			LenA: 64, LenB: 128, Setup: h.setup(camp, rc), PreRun: h.preRun(rc),
		})
		return h.collect("lcs", res.M, res.Cycles, err), nil
	case "radix":
		var h holder
		res, err := radix.Run(rc.Nodes, radix.Params{
			Keys: 512, Setup: h.setup(camp, rc), PreRun: h.preRun(rc),
		})
		return h.collect("radix", res.M, res.Cycles, err), nil
	case "nqueens":
		var h holder
		res, err := nqueens.Run(rc.Nodes, nqueens.Params{
			N: 6, SplitDepth: 2, Setup: h.setup(camp, rc), PreRun: h.preRun(rc),
		})
		return h.collect("nqueens", res.M, res.Cycles, err), nil
	case "tsp":
		var h holder
		res, err := tsp.Run(rc.Nodes, tsp.Params{
			Cities: 6, Setup: h.setup(camp, rc), PreRun: h.preRun(rc),
		})
		return h.collect("tsp", res.M, res.Cycles, err), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

// holder captures the chaos, reliable, and checkpoint layers attached
// through an application's Setup hook so the PreRun hook can restore
// and results can be collected afterwards.
type holder struct {
	inj    *chaos.Injector
	rel    *rt.Reliable
	eng    *engine.Engine
	layers *ckpt.Layers
}

// setup returns the Params.Setup hook applying the resilience switches
// and the campaign to an application-built machine.
func (h *holder) setup(camp chaos.Campaign, rc bench.ResilienceConfig) func(*machine.Machine, *rt.Runtime) {
	return func(m *machine.Machine, r *rt.Runtime) {
		if rc.Compiled {
			if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
				log.Fatalf("compiled.Attach: %v", err)
			}
		}
		m.Net.SetChecksum(rc.Checksum)
		m.Net.SetReturnToSender(rc.RTS)
		m.Net.SetMaxReturns(rc.MaxReturns)
		m.SetWatchdog(rc.Watchdog)
		if rc.Reliable {
			h.rel = rt.EnableReliable(r, rt.ReliableConfig{})
		}
		h.inj = chaos.Attach(m, camp)
		savers := []ckpt.Saver{r}
		if h.rel != nil {
			savers = append(savers, h.rel)
		}
		savers = append(savers, h.inj)
		h.layers = ckpt.Flags{Path: rc.Ckpt, Every: rc.CkptEvery, Resume: rc.Resume}.Attach(m, savers...)
		if rc.Shards > 1 {
			h.eng = engine.Attach(m, rc.Shards)
		}
	}
}

// preRun returns the Params.PreRun hook: restore-or-seed the
// checkpoint file (see ckpt.Layers.PreRun).
func (h *holder) preRun(rc bench.ResilienceConfig) func(*machine.Machine) error {
	return func(m *machine.Machine) error { return h.layers.PreRun() }
}

// collect folds an application run into a CampaignResult.
func (h *holder) collect(name string, m *machine.Machine, cycles int64, runErr error) *bench.CampaignResult {
	h.eng.Stop()
	res := &bench.CampaignResult{
		Workload:  name,
		Completed: runErr == nil,
		Err:       runErr,
		Cycles:    cycles,
	}
	if m != nil {
		res.Net = m.Net.Stats()
		res.WatchdogTrips = m.WatchdogTrips
		res.StateDigest = m.StateDigest()
	}
	if h.rel != nil {
		res.HasReliable = true
		res.Reliable = h.rel.Stats()
	}
	if h.inj != nil {
		res.ChaosReport = h.inj.Report()
	}
	return res
}

// printResult renders one workload outcome deterministically.
func printResult(r *bench.CampaignResult) {
	status := "COMPLETED"
	if !r.Completed {
		status = "FAILED"
	}
	fmt.Printf("%-8s %-9s cycles=%d", r.Workload, status, r.Cycles)
	if r.Completed && r.Value != 0 {
		fmt.Printf(" value=%d", r.Value)
	}
	fmt.Printf(" digest=%016x", r.StateDigest)
	fmt.Println()
	ns := r.Net
	fmt.Printf("  net: delivered=%d/%d returned=%d retransmits=%d dropped=%d corrupt=%d dup=%d stalls=%d\n",
		ns.DeliveredMsgs[0], ns.DeliveredMsgs[1], ns.ReturnedMsgs, ns.Retransmits,
		ns.DroppedMsgs, ns.CorruptDrops, ns.DupDrops, ns.StallsInjected)
	if r.HasReliable {
		rs := r.Reliable
		fmt.Printf("  reliable: tracked=%d acks=%d/%d retries=%d dup-acked=%d failures=%d\n",
			rs.Tracked, rs.AcksSent, rs.AcksReceived, rs.Retries, rs.DupAcked, rs.Failures)
	}
	if r.WatchdogTrips > 0 {
		fmt.Printf("  watchdog: trips=%d\n", r.WatchdogTrips)
	}
	if r.ChaosReport != "" {
		for _, line := range strings.Split(strings.TrimRight(r.ChaosReport, "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	if r.Err != nil {
		msg := r.Err.Error()
		// The watchdog error embeds the full diagnostic dump; indent it.
		for _, line := range strings.Split(msg, "\n") {
			fmt.Printf("  ! %s\n", line)
		}
	}
	fmt.Println()
}
