package main

import (
	"strings"
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
)

// TestCheckOutputShape pins the -check output format: findings print
// one per line as handler+offset@addr: CODE: message, and a clean
// program prints the instruction count summary with exit status 0.
func TestCheckOutputShape(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("h")
	b.MoveI(isa.R0, 0)
	b.Add(isa.R1, asm.Imm(1)) // ASM001: R1 undefined at dispatch
	b.Suspend()
	p := b.MustAssemble()

	var out strings.Builder
	if status := checkProgram(&out, "bad.j", p); status != 1 {
		t.Errorf("dirty program: status = %d, want 1", status)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "h+1@1: ASM001: ") {
		t.Errorf("finding line = %q, want handler+offset@addr: ASM001: prefix", out.String())
	}

	b = asm.NewBuilder()
	b.Label("h")
	b.MoveI(isa.R0, 0)
	b.Suspend()
	p = b.MustAssemble()

	out.Reset()
	if status := checkProgram(&out, "ok.j", p); status != 0 {
		t.Errorf("clean program: status = %d, want 0", status)
	}
	if got := out.String(); got != "ok.j: 2 instructions, check clean\n" {
		t.Errorf("clean summary = %q", got)
	}
}
