// jm-jc compiles a J-subset source file (see internal/jlang) and runs it
// on a simulated J-Machine.
//
// Usage:
//
//	jm-jc [-nodes N] [-all] [-listing] [-check] [-trace N] [-max cycles] prog.j
//
// The program's "main" boots on node 0 (or on every node with -all) and
// the machine runs until node 0 halts. Global variables and execution
// statistics are printed at exit.
//
// With -check the assembled program is run through the static MDP
// verifier (internal/asm.Check, see docs/LINT.md) instead of being
// executed: findings are printed one per line and the exit status is 1
// if any fire, 0 on a clean program.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"jmachine/internal/asm"
	"jmachine/internal/bench"
	"jmachine/internal/jlang"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/stats"
)

// checkProgram runs the static MDP verifier and prints the findings,
// one per line in handler+offset@addr: CODE: message form (see
// asm.Finding.String), or a clean summary. Returns the exit status.
func checkProgram(w io.Writer, name string, p *asm.Program) int {
	findings := asm.Check(p, rt.CheckAllowances()...)
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	if len(findings) > 0 {
		return 1
	}
	fmt.Fprintf(w, "%s: %d instructions, check clean\n", name, len(p.Instrs))
	return 0
}

func main() {
	nodes := flag.Int("nodes", 1, "machine size")
	all := flag.Bool("all", false, "boot main on every node (SPMD)")
	listing := flag.Bool("listing", false, "print the generated assembly")
	check := flag.Bool("check", false, "run the static MDP verifier instead of executing")
	traceN := flag.Int("trace", 0, "print the first N machine events per node")
	max := flag.Int64("max", 100_000_000, "cycle budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jm-jc [flags] prog.j")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	c, err := jlang.Compile(string(src))
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	if !c.Program.HasLabel("main") {
		log.Fatal("program has no func main()")
	}
	if *listing {
		fmt.Print(c.Program.Listing())
	}
	if *check {
		os.Exit(checkProgram(os.Stdout, flag.Arg(0), c.Program))
	}

	m, err := machine.New(machine.GridForNodes(*nodes), c.Program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
	var bufs = m.EnableTrace(4096)
	if *traceN == 0 {
		bufs = nil
		for _, n := range m.Nodes {
			n.Trace = nil
		}
	}
	if *all {
		rt.StartAll(m, c.Program, "main")
	} else {
		rt.StartNode(m, c.Program, 0, "main")
	}
	if err := m.RunUntilHalt(0, *max); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("halted after %d cycles (%.3f ms at 12.5 MHz) on %d nodes\n",
		m.Cycle(), bench.Micros(float64(m.Cycle()))/1000, m.NumNodes())
	names := make([]string, 0, len(c.Globals))
	for n := range c.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w, _ := m.Nodes[0].Mem.Read(c.Globals[n])
		fmt.Printf("  %s = %d\n", n, w.Data())
	}
	bd := m.Stats.Breakdown()
	fmt.Printf("instructions %d, threads %d; comp %.1f%% comm %.1f%% sync %.1f%% idle %.1f%%\n",
		m.Stats.Instrs(), m.Stats.Threads(),
		100*bd[stats.CatComp], 100*bd[stats.CatComm], 100*bd[stats.CatSync], 100*bd[stats.CatIdle])
	if bufs != nil {
		for id, b := range bufs {
			ev := b.Events()
			if len(ev) > *traceN {
				ev = ev[:*traceN]
			}
			for _, e := range ev {
				fmt.Printf("n%02d %s\n", id, e)
			}
		}
	}
}
