// jm-trace runs a workload on the simulated J-Machine with the
// observability layer attached and writes a Perfetto timeline
// (load it at https://ui.perfetto.dev) and/or a JSONL metrics stream.
//
// Attaching the recorder never changes simulation results: the final
// state digest printed here is byte-identical with tracing on or off,
// sequential or sharded (the engine equivalence suite enforces it).
//
// Usage:
//
//	jm-trace -perfetto trace.json                      # 64-node pingpong timeline
//	jm-trace -workload barrier -metrics m.jsonl -every 32
//	jm-trace -workload lcs -nodes 16 -shards 4 -perfetto t.json -perlink
package main

import (
	"flag"
	"fmt"
	"log"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/ckpt"
	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
)

func main() {
	workload := flag.String("workload", "pingpong",
		"workload: pingpong, barrier, lcs, radix, nqueens, or tsp")
	nodes := flag.Int("nodes", 64, "machine size")
	shards := flag.Int("shards", 1,
		"parallel-engine shards (0 or 1 = sequential reference; results are byte-identical)")
	perfetto := flag.String("perfetto", "", "Perfetto trace-event JSON output path")
	metrics := flag.String("metrics", "", "JSONL metric-snapshot output path")
	every := flag.Int("every", 64, "sampling period in cycles for counters and snapshots")
	perLink := flag.Bool("perlink", false, "add per-mesh-link occupancy counter tracks")
	budget := flag.Int64("budget", 4_000_000, "cycle budget for the micro-benchmarks")
	compiledTier := flag.Bool("compiled", false,
		"execute handlers through the compiled tier (results are byte-identical)")
	var cf ckpt.Flags
	cf.Register(flag.CommandLine, "")
	flag.Parse()

	if *perfetto == "" && *metrics == "" {
		log.Fatal("nothing to record: set -perfetto and/or -metrics")
	}
	if err := cf.Validate(); err != nil {
		log.Fatal(err)
	}
	o := &obs.Options{
		PerfettoPath: *perfetto,
		MetricsPath:  *metrics,
		Every:        *every,
		PerLink:      *perLink,
	}

	cycles, digest, err := run(*workload, *nodes, *shards, *budget, *compiledTier, o, cf)
	if err != nil {
		log.Fatalf("%s: %v", *workload, err)
	}
	fmt.Printf("%s: nodes=%d shards=%d cycles=%d digest=%016x\n",
		*workload, *nodes, *shards, cycles, digest)
	if *perfetto != "" {
		fmt.Printf("timeline: %s (open at https://ui.perfetto.dev)\n", *perfetto)
	}
	if *metrics != "" {
		fmt.Printf("metrics:  %s\n", *metrics)
	}
}

func run(workload string, nodes, shards int, budget int64, compiledTier bool, o *obs.Options, cf ckpt.Flags) (int64, uint64, error) {
	rc := bench.ResilienceConfig{
		Nodes:     nodes,
		Budget:    budget,
		Shards:    shards,
		Compiled:  compiledTier,
		Obs:       o,
		Ckpt:      cf.Path,
		CkptEvery: cf.Every,
		Resume:    cf.Resume,
	}
	switch workload {
	case "pingpong":
		res, err := bench.PingCampaign(chaos.Campaign{}, rc)
		return resultOf(res, err)
	case "barrier":
		res, err := bench.BarrierCampaign(chaos.Campaign{}, rc, 4)
		return resultOf(res, err)
	case "lcs":
		var h holder
		res, err := lcs.Run(nodes, lcs.Params{LenA: 64, LenB: 128, Setup: h.setup(shards, o, rc), PreRun: h.preRun(rc)})
		return h.finish(res.M, res.Cycles, err)
	case "radix":
		var h holder
		res, err := radix.Run(nodes, radix.Params{Keys: 512, Setup: h.setup(shards, o, rc), PreRun: h.preRun(rc)})
		return h.finish(res.M, res.Cycles, err)
	case "nqueens":
		var h holder
		res, err := nqueens.Run(nodes, nqueens.Params{N: 6, SplitDepth: 2, Setup: h.setup(shards, o, rc), PreRun: h.preRun(rc)})
		return h.finish(res.M, res.Cycles, err)
	case "tsp":
		var h holder
		res, err := tsp.Run(nodes, tsp.Params{Cities: 6, Setup: h.setup(shards, o, rc), PreRun: h.preRun(rc)})
		return h.finish(res.M, res.Cycles, err)
	default:
		return 0, 0, fmt.Errorf("unknown workload %q", workload)
	}
}

func resultOf(res *bench.CampaignResult, err error) (int64, uint64, error) {
	if err != nil {
		return 0, 0, err
	}
	if !res.Completed {
		return res.Cycles, res.StateDigest, res.Err
	}
	return res.Cycles, res.StateDigest, nil
}

// holder carries the recorder stop, engine, and checkpoint layers
// across an application's Setup hook so finish can tear them down
// before reading the digest.
type holder struct {
	stopObs func() error
	eng     *engine.Engine
	layers  *ckpt.Layers
}

func (h *holder) setup(shards int, o *obs.Options, rc bench.ResilienceConfig) func(*machine.Machine, *rt.Runtime) {
	return func(m *machine.Machine, r *rt.Runtime) {
		if rc.Compiled {
			if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
				log.Fatalf("compiled.Attach: %v", err)
			}
		}
		h.layers = ckpt.Flags{Path: rc.Ckpt, Every: rc.CkptEvery, Resume: rc.Resume}.Attach(m, r)
		h.stopObs = o.AttachTo(m)
		if shards > 1 {
			h.eng = engine.Attach(m, shards)
		}
	}
}

// preRun restore-or-seeds the checkpoint file (see ckpt.Layers.PreRun).
func (h *holder) preRun(rc bench.ResilienceConfig) func(*machine.Machine) error {
	return func(m *machine.Machine) error { return h.layers.PreRun() }
}

func (h *holder) finish(m *machine.Machine, cycles int64, runErr error) (int64, uint64, error) {
	h.eng.Stop()
	if h.stopObs != nil {
		if err := h.stopObs(); err != nil && runErr == nil {
			runErr = err
		}
	}
	var digest uint64
	if m != nil {
		digest = m.StateDigest()
	}
	return cycles, digest, runErr
}
