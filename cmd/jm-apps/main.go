// jm-apps runs one of the paper's macro-benchmark applications on a
// simulated machine and prints run time, correctness, and the Figure 6
// style cycle breakdown.
//
// Usage:
//
//	jm-apps -app lcs     [-nodes 64] [-lena 1024] [-lenb 4096]
//	jm-apps -app radix   [-nodes 64] [-keys 65536]
//	jm-apps -app nqueens [-nodes 64] [-n 13] [-depth 2]
//	jm-apps -app tsp     [-nodes 64] [-cities 14]
package main

import (
	"flag"
	"fmt"
	"log"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/ckpt"
	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/stats"
)

func main() {
	app := flag.String("app", "lcs", "application: lcs, radix, nqueens, tsp")
	nodes := flag.Int("nodes", 64, "machine size")
	lena := flag.Int("lena", 256, "LCS: length of the distributed string")
	lenb := flag.Int("lenb", 512, "LCS: length of the streamed string")
	keys := flag.Int("keys", 4096, "radix: number of keys")
	n := flag.Int("n", 9, "nqueens: board size")
	depth := flag.Int("depth", 2, "nqueens: breadth-first split depth")
	cities := flag.Int("cities", 9, "tsp: city count")
	seed := flag.Int64("seed", 11, "workload seed")
	shards := flag.Int("shards", engine.DefaultShards(),
		"parallel-engine shards per machine (0 or 1 = sequential reference; results are byte-identical)")
	compiledTier := flag.Bool("compiled", false,
		"execute handlers through the compiled tier (byte-identical to the interpreter)")
	var cf ckpt.Flags
	cf.Register(flag.CommandLine, "")
	flag.Parse()
	if err := cf.Validate(); err != nil {
		log.Fatal(err)
	}

	// setup attaches the checkpoint layer stack and the parallel engine
	// through each app's Setup hook; stop releases the engine workers
	// once the run returns. preRun restores (or seeds) the checkpoint
	// after the app's start-up, right before the run loop.
	var eng *engine.Engine
	var layers *ckpt.Layers
	setup := func(m *machine.Machine, r *rt.Runtime) {
		if *compiledTier {
			if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
				log.Fatalf("compiled.Attach: %v", err)
			}
		}
		layers = cf.Attach(m, r)
		if *shards > 1 {
			eng = engine.Attach(m, *shards)
		}
	}
	preRun := func(m *machine.Machine) error { return layers.PreRun() }
	stop := func() { eng.Stop() }

	var cycles int64
	var m *machine.Machine
	switch *app {
	case "lcs":
		params := lcs.Params{LenA: *lena, LenB: *lenb, Seed: *seed, Setup: setup, PreRun: preRun}
		r, err := lcs.Run(*nodes, params)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		a, b := params.Strings()
		fmt.Printf("LCS(%d×%d) = %d (reference %d)\n", *lena, *lenb, r.Length, lcs.Reference(a, b))
		cycles, m = r.Cycles, r.M
	case "radix":
		params := radix.Params{Keys: *keys, Seed: *seed, Setup: setup, PreRun: preRun}
		r, err := radix.Run(*nodes, params)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		ok := true
		want := radix.Reference(params.Input())
		for i := range want {
			if want[i] != r.Sorted[i] {
				ok = false
				break
			}
		}
		fmt.Printf("radix sort of %d keys: correct=%v\n", *keys, ok)
		cycles, m = r.Cycles, r.M
	case "nqueens":
		r, err := nqueens.Run(*nodes, nqueens.Params{N: *n, SplitDepth: *depth, Setup: setup, PreRun: preRun})
		stop()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-queens: %d solutions (reference %d) from %d tasks\n",
			*n, r.Solutions, nqueens.Reference(*n), r.Tasks)
		cycles, m = r.Cycles, r.M
	case "tsp":
		params := tsp.Params{Cities: *cities, Seed: *seed, Setup: setup, PreRun: preRun}
		r, err := tsp.Run(*nodes, params)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("TSP with %d cities: optimal tour %d (reference %d) over %d tasks\n",
			*cities, r.Best, tsp.Reference(params.Matrix()), r.Tasks)
		cycles, m = r.Cycles, r.M
	default:
		log.Fatalf("unknown application %q", *app)
	}

	fmt.Printf("run time: %d cycles = %.3f ms at 12.5 MHz on %d nodes\n",
		cycles, bench.Micros(float64(cycles))/1000, *nodes)
	bd := m.Stats.Breakdown()
	fmt.Printf("breakdown: comp %.1f%%  comm %.1f%%  sync %.1f%%  xlate %.1f%%  nnr %.1f%%  idle %.1f%%\n",
		100*bd[stats.CatComp], 100*bd[stats.CatComm], 100*bd[stats.CatSync],
		100*bd[stats.CatXlate], 100*bd[stats.CatNNR], 100*bd[stats.CatIdle])
	fmt.Printf("threads dispatched: %d, instructions: %d, send faults: %d\n",
		m.Stats.Threads(), m.Stats.Instrs(), m.Stats.SendFaults())
	fmt.Printf("state digest: %016x\n", m.StateDigest())
}
