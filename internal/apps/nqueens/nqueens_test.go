package nqueens

import (
	"testing"

	"jmachine/internal/stats"
)

// Known solution counts.
var known = map[int]int{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}

func TestReference(t *testing.T) {
	for n, want := range known {
		if got := Reference(n); got != want {
			t.Errorf("Reference(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestReferenceTasks(t *testing.T) {
	// Depth-1 expansion yields n tasks; depth-2 yields the number of
	// non-attacking 2-queen placements in the first two rows.
	if got := ReferenceTasks(6, 1); got != 6 {
		t.Errorf("tasks(6,1) = %d", got)
	}
	if got := ReferenceTasks(4, 2); got != 6 {
		// Row 0: 4 choices; row 1 excludes same column and diagonals.
		t.Errorf("tasks(4,2) = %d", got)
	}
}

func TestRunMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n, depth, nodes int
	}{
		{5, 1, 1},
		{6, 1, 2},
		{6, 2, 4},
		{7, 2, 8},
		{8, 2, 4},
	} {
		res, err := Run(tc.nodes, Params{N: tc.n, SplitDepth: tc.depth})
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if res.Solutions != known[tc.n] {
			t.Errorf("n=%d nodes=%d: solutions = %d, want %d", tc.n, tc.nodes, res.Solutions, known[tc.n])
		}
		if res.Tasks != ReferenceTasks(tc.n, tc.depth) {
			t.Errorf("n=%d: tasks = %d, want %d", tc.n, res.Tasks, ReferenceTasks(tc.n, tc.depth))
		}
	}
}

func TestThreadStatistics(t *testing.T) {
	// Table 4 shape: 8-word task messages, 3-word result messages,
	// coarse-grained task threads.
	res, err := Run(4, Params{N: 8, SplitDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	task := res.M.Stats.HandlerTotal(res.P.Entry(LTask))
	done := res.M.Stats.HandlerTotal(res.P.Entry(LDone))
	if task.Invocations != uint64(res.Tasks) {
		t.Errorf("task invocations = %d, want %d", task.Invocations, res.Tasks)
	}
	if avg := float64(task.MsgWords) / float64(task.Invocations); avg != 8 {
		t.Errorf("task message length = %.1f, want 8", avg)
	}
	if avg := float64(done.MsgWords) / float64(done.Invocations); avg != 3 {
		t.Errorf("done message length = %.1f, want 3", avg)
	}
	perTask := float64(task.Instrs) / float64(task.Invocations)
	if perTask < 100 {
		t.Errorf("task threads too short: %.0f instr", perTask)
	}
	t.Logf("8-queens depth 2: %d tasks, %.0f instr/task", res.Tasks, perTask)
}

func TestIdleFromImbalance(t *testing.T) {
	// With all work generated up-front and no load balancing, idle time
	// appears (15% in the paper's 64-node, 13-queens run).
	res, err := Run(8, Params{N: 8, SplitDepth: 1}) // 8 uneven tasks on 8 nodes
	if err != nil {
		t.Fatal(err)
	}
	idle := res.M.Stats.IdleFraction()
	if idle <= 0.01 {
		t.Errorf("idle fraction = %.3f, expected visible imbalance", idle)
	}
	t.Logf("idle fraction = %.2f", idle)
}

func TestSpeedupShape(t *testing.T) {
	params := Params{N: 8, SplitDepth: 2}
	c1, err := Run(1, params)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Run(8, params)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(c1.Cycles) / float64(c8.Cycles)
	if speedup < 2.5 {
		t.Errorf("8-node speedup = %.2f", speedup)
	}
	t.Logf("8-queens speedup on 8 nodes = %.2f", speedup)
}

func TestBreakdownMostlyCompute(t *testing.T) {
	// N-Queens performance is set by the problem, not the mechanisms:
	// compute and idle dominate; comm is negligible.
	res, err := Run(4, Params{N: 8, SplitDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	bd := res.M.Stats.Breakdown()
	if bd[stats.CatComp]+bd[stats.CatIdle] < 0.85 {
		t.Errorf("comp+idle = %.2f, expected dominance", bd[stats.CatComp]+bd[stats.CatIdle])
	}
	if bd[stats.CatComm] > 0.05 {
		t.Errorf("comm = %.2f, expected negligible", bd[stats.CatComm])
	}
}

func TestRunAtLargeMachines(t *testing.T) {
	// Node counts beyond the task count leave nodes without work but
	// must still terminate and count correctly.
	for _, nodes := range []int{32, 64} {
		res, err := Run(nodes, Params{N: 7, SplitDepth: 2})
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if res.Solutions != known[7] {
			t.Errorf("%d nodes: solutions = %d", nodes, res.Solutions)
		}
	}
}
