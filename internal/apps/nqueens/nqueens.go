// Package nqueens implements the paper's N-Queens macro-benchmark.
//
// N-Queens is a graph-search problem whose central challenge is
// controlling explosive parallelism. Following the paper, boards are
// expanded breadth-first to a split depth, producing coarse-grained
// tasks (8-word board messages) distributed round-robin across the
// machine; each task then performs a depth-first traversal of its
// subtree locally and reports its solution count in a 3-word result
// message. All work is generated at the start of the program, so the
// hardware message queue's limited buffering — and the resulting idle
// imbalance — appear exactly as the paper describes.
package nqueens

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Application memory layout: scalar fields as offsets from AppBase.
const (
	app           = rt.AppBase
	offN          = 0  // board size
	offFull       = 1  // (1<<n)-1
	offTaskIdx    = 2  // driver: tasks emitted so far
	offSolutions  = 3  // node 0: accumulated solutions
	offDone       = 4  // node 0: completed tasks
	offExpect     = 5  // node 0: total tasks (valid once offKnown)
	offKnown      = 6  // node 0: expansion complete
	offWorkers    = 7  // round-robin divisor (numNodes, or numNodes-1)
	offLocalCount = 8  // per-task solution counter
	offDrvStop    = 9  // driver DFS emit pointer
	offTskStop    = 10 // task DFS emit pointer
	offFirstWkr   = 11 // first worker id (1 when the driver is excluded)

	drvFrames = 80  // driver DFS stack (4 words per row)
	tskFrames = 144 // task DFS stack
	nodeTable = 256 // router addresses by node id (loader-initialized)
)

// Params sizes the problem. The paper solves 13 queens.
type Params struct {
	N int
	// SplitDepth is the breadth-first expansion depth (default 2). The
	// paper notes the expansion depth depends on machine and problem
	// size.
	SplitDepth int
	// Tune adjusts the machine configuration before construction
	// (ablation studies: queue sizes, timing).
	Tune func(*machine.Config)
	// ExcludeDriver dedicates node 0 to breadth-first distribution,
	// spreading tasks over nodes 1..N-1. With the driver free of task
	// work, the burst genuinely outruns the receivers — the regime in
	// which the hardware queue's 64-board limit binds.
	ExcludeDriver bool
	// Setup, when non-nil, runs after the runtime is attached and the
	// problem is loaded but before the machine starts — the hook where
	// cmd/jm-chaos attaches fault campaigns and resilience layers.
	Setup func(*machine.Machine, *rt.Runtime)
	// PreRun, when non-nil, runs after the start-up threads are queued,
	// immediately before the run loop — the hook where a checkpoint is
	// restored over the freshly built state. An error aborts the run.
	PreRun func(*machine.Machine) error
}

func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = 13
	}
	if p.SplitDepth == 0 {
		p.SplitDepth = 2
	}
	return p
}

// Reference counts solutions with the standard bitmask backtracker.
func Reference(n int) int {
	full := int32(1)<<uint(n) - 1
	var rec func(cols, d1, d2 int32) int
	rec = func(cols, d1, d2 int32) int {
		if cols == full {
			return 1
		}
		count := 0
		avail := ^(cols | d1 | d2) & full
		for avail != 0 {
			bit := avail & -avail
			avail ^= bit
			count += rec(cols|bit, (d1|bit)<<1&full, (d2|bit)>>1)
		}
		return count
	}
	return rec(0, 0, 0)
}

// ReferenceTasks returns the number of valid boards at the split depth
// (the task count the driver will emit).
func ReferenceTasks(n, depth int) int {
	full := int32(1)<<uint(n) - 1
	var rec func(cols, d1, d2 int32, row int) int
	rec = func(cols, d1, d2 int32, row int) int {
		if row == depth {
			return 1
		}
		count := 0
		avail := ^(cols | d1 | d2) & full
		for avail != 0 {
			bit := avail & -avail
			avail ^= bit
			count += rec(cols|bit, (d1|bit)<<1&full, (d2|bit)>>1, row+1)
		}
		return count
	}
	return rec(0, 0, 0, 0)
}

// Thread-class labels (Table 4: "NQueens" tasks and "NQDone" results).
const (
	LMain = "nq.main"
	LTask = "nq.task"
	LDone = "nq.done"
)

// emitDFS inlines the iterative bitmask DFS. A0 walks the frame stack
// (4 words per frame: cols, d1, d2, avail); when a placement reaches the
// stop pointer the emit code runs with ncols in R2, nd1 in R3, nd2 in
// R0. pre labels a unique prefix.
func emitDFS(b *asm.Builder, pre string, frameBase int32, stopOff int32, emit func(b *asm.Builder)) {
	loop, pop, expand, emitL, out := pre+".loop", pre+".pop", pre+".expand", pre+".emit", pre+".out"
	b.Label(loop).
		Move(isa.R0, asm.Mem(isa.A0, 3)). // avail
		Bf(isa.R0, pop).
		Move(isa.R1, asm.R(isa.R0)). // bit = avail & -avail
		Neg(isa.R1).
		And(isa.R1, asm.R(isa.R0)).
		Xor(isa.R0, asm.R(isa.R1)). // avail ^= bit
		St(isa.R0, asm.Mem(isa.A0, 3)).
		MoveI(isa.A1, app).
		Move(isa.R2, asm.Mem(isa.A0, 0)). // ncols = cols | bit
		Or(isa.R2, asm.R(isa.R1)).
		Move(isa.R3, asm.Mem(isa.A0, 1)). // nd1 = (d1|bit)<<1 & full
		Or(isa.R3, asm.R(isa.R1)).
		Lsh(isa.R3, asm.Imm(1)).
		And(isa.R3, asm.Mem(isa.A1, offFull)).
		Move(isa.R0, asm.Mem(isa.A0, 2)). // nd2 = (d2|bit)>>1
		Or(isa.R0, asm.R(isa.R1)).
		Ash(isa.R0, asm.Imm(-1)).
		// Placement complete: at the stop pointer, emit.
		Move(isa.R1, asm.R(isa.A0)).
		Eq(isa.R1, asm.Mem(isa.A1, stopOff)).
		Bt(isa.R1, emitL).
		// Push the child frame.
		Add(isa.A0, asm.Imm(4)).
		St(isa.R2, asm.Mem(isa.A0, 0)).
		St(isa.R3, asm.Mem(isa.A0, 1)).
		St(isa.R0, asm.Mem(isa.A0, 2)).
		Move(isa.R1, asm.R(isa.R2)). // avail = ~(c|d1|d2) & full
		Or(isa.R1, asm.R(isa.R3)).
		Or(isa.R1, asm.R(isa.R0)).
		Not(isa.R1).
		And(isa.R1, asm.Mem(isa.A1, offFull)).
		St(isa.R1, asm.Mem(isa.A0, 3)).
		Br(loop).
		Label(emitL)
	emit(b)
	b.Br(loop).
		Label(pop).
		Add(isa.A0, asm.Imm(-4)).
		Move(isa.R1, asm.R(isa.A0)).
		Lt(isa.R1, asm.Imm(frameBase)).
		Bf(isa.R1, loop).
		Label(out)
	_ = expand
}

// BuildProgram assembles the N-Queens program plus the runtime library.
func BuildProgram() *asm.Program {
	b := asm.NewBuilder()

	// nq.main: node 0 expands breadth-first and scatters tasks; other
	// nodes idle at background.
	b.Label(LMain).
		MoveI(isa.A2, 0).
		Move(isa.R1, asm.Mem(isa.A2, rt.AddrNodeID)).
		Bt(isa.R1, "nq.idle").
		// Root frame: empty board.
		MoveI(isa.A0, drvFrames).
		St(isa.ZERO, asm.Mem(isa.A0, 0)).
		St(isa.ZERO, asm.Mem(isa.A0, 1)).
		St(isa.ZERO, asm.Mem(isa.A0, 2)).
		MoveI(isa.A1, app).
		Move(isa.R1, asm.Mem(isa.A1, offFull)).
		St(isa.R1, asm.Mem(isa.A0, 3))
	emitDFS(b, "nq.drv", drvFrames, offDrvStop, func(b *asm.Builder) {
		// Send the board as a task: round-robin by task index over the
		// worker set.
		b.Move(isa.R1, asm.Mem(isa.A1, offTaskIdx)).
			Mod(isa.R1, asm.Mem(isa.A1, offWorkers)).
			Add(isa.R1, asm.Mem(isa.A1, offFirstWkr)).
			Add(isa.R1, asm.Imm(nodeTable)).
			MoveI(isa.RGN, 4). // node-address lookup = "NNR calc"
			Move(isa.A2, asm.R(isa.R1)).
			Send(asm.Mem(isa.A2, 0)).
			MoveI(isa.RGN, 0).
			MoveHdr(isa.R1, LTask, 8).
			Send(asm.R(isa.R1)).
			Send(asm.R(isa.R2)).
			Send(asm.R(isa.R3)).
			Send(asm.R(isa.R0)).
			Send(asm.Mem(isa.A1, offTaskIdx)). // task sequence number
			Send(asm.R(isa.ZERO)).
			Send(asm.R(isa.ZERO)).
			SendE(asm.R(isa.ZERO)).
			Move(isa.R1, asm.Mem(isa.A1, offTaskIdx)).
			Add(isa.R1, asm.Imm(1)).
			St(isa.R1, asm.Mem(isa.A1, offTaskIdx))
	})
	// Expansion complete: publish the task count, then check whether
	// all results already arrived.
	b.MoveI(isa.A1, app).
		Move(isa.R1, asm.Mem(isa.A1, offTaskIdx)).
		St(isa.R1, asm.Mem(isa.A1, offExpect)).
		MoveI(isa.R0, 1).
		St(isa.R0, asm.Mem(isa.A1, offKnown)).
		Move(isa.R0, asm.Mem(isa.A1, offDone)).
		Eq(isa.R0, asm.R(isa.R1)).
		Bf(isa.R0, "nq.idle").
		Halt().
		Label("nq.idle").
		Suspend()

	// nq.task: [hdr, cols, d1, d2, seq, 0, 0, 0] — depth-first search
	// of the subtree, entirely local. The paper's dominant thread class:
	// ~300,000 instructions for 13 queens on 64 nodes.
	b.Label(LTask).
		MoveI(isa.A1, app).
		St(isa.ZERO, asm.Mem(isa.A1, offLocalCount)).
		MoveI(isa.A0, tskFrames).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Move(isa.R1, asm.Mem(isa.A3, 2)).
		St(isa.R1, asm.Mem(isa.A0, 1)).
		Move(isa.R2, asm.Mem(isa.A3, 3)).
		St(isa.R2, asm.Mem(isa.A0, 2)).
		Or(isa.R0, asm.R(isa.R1)). // avail = ~(c|d1|d2) & full
		Or(isa.R0, asm.R(isa.R2)).
		Not(isa.R0).
		And(isa.R0, asm.Mem(isa.A1, offFull)).
		St(isa.R0, asm.Mem(isa.A0, 3))
	emitDFS(b, "nq.tsk", tskFrames, offTskStop, func(b *asm.Builder) {
		b.Move(isa.R1, asm.Mem(isa.A1, offLocalCount)).
			Add(isa.R1, asm.Imm(1)).
			St(isa.R1, asm.Mem(isa.A1, offLocalCount))
	})
	// Report the count to node 0 (3-word NQDone message).
	b.MoveI(isa.R1, 0).
		Wtag(isa.R1, asm.Imm(int32(word.TagNode))).
		Send(asm.R(isa.R1)).
		MoveHdr(isa.R1, LDone, 3).
		Send(asm.R(isa.R1)).
		MoveI(isa.A1, app).
		Send(asm.Mem(isa.A1, offLocalCount)).
		SendE(asm.Mem(isa.A3, 4)). // echo the task sequence number
		Suspend()

	// nq.done: [hdr, count, seq] — accumulate; halt when all tasks are
	// accounted for and expansion has finished.
	b.Label(LDone).
		MoveI(isa.A0, app).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A0, offSolutions)).
		St(isa.R0, asm.Mem(isa.A0, offSolutions)).
		Move(isa.R1, asm.Mem(isa.A0, offDone)).
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A0, offDone)).
		Move(isa.R2, asm.Mem(isa.A0, offKnown)).
		Bf(isa.R2, "nq.done.out").
		Eq(isa.R1, asm.Mem(isa.A0, offExpect)).
		Bf(isa.R1, "nq.done.out").
		Halt().
		Label("nq.done.out").
		Suspend()

	rt.BuildLib(b)
	return b.MustAssemble()
}

// Result reports one run.
type Result struct {
	Solutions int
	Tasks     int
	Cycles    int64
	M         *machine.Machine
	P         *asm.Program
}

// Run executes N-Queens on a machine of the given node count (a power
// of two, for the round-robin mask).
func Run(nodes int, params Params) (Result, error) {
	params = params.withDefaults()
	if nodes < 1 {
		return Result{}, fmt.Errorf("nqueens: invalid node count %d", nodes)
	}
	if params.SplitDepth < 1 || params.SplitDepth >= params.N {
		return Result{}, fmt.Errorf("nqueens: split depth %d out of range for n=%d", params.SplitDepth, params.N)
	}
	p := BuildProgram()
	cfg := machine.GridForNodes(nodes)
	if params.Tune != nil {
		params.Tune(&cfg)
	}
	m, err := machine.New(cfg, p)
	if err != nil {
		return Result{}, err
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())

	n, d := params.N, params.SplitDepth
	for _, nd := range m.Nodes {
		mm := nd.Mem
		set := func(off int32, v int32) {
			if err := mm.Write(app+off, word.Int(v)); err != nil {
				panic(err)
			}
		}
		set(offN, int32(n))
		set(offFull, int32(1)<<uint(n)-1)
		workers, first := nodes, 0
		if params.ExcludeDriver && nodes > 1 {
			workers, first = nodes-1, 1
		}
		set(offWorkers, int32(workers))
		set(offFirstWkr, int32(first))
		set(offDrvStop, drvFrames+int32(4*(d-1)))
		set(offTskStop, tskFrames+int32(4*(n-d-1)))
		for i := 0; i < nodes; i++ {
			mm.Write(nodeTable+int32(i), m.Net.NodeWord(i))
		}
	}

	if params.Setup != nil {
		params.Setup(m, r)
	}
	rt.StartAll(m, p, LMain)
	if params.PreRun != nil {
		if err := params.PreRun(m); err != nil {
			return Result{M: m, P: p}, err
		}
	}
	// Budget: the search tree for n queens, ~25 cycles per node visit.
	budget := int64(Reference(n))*2000/int64(nodes)*30 + 20_000_000
	if err := m.RunUntilHalt(0, budget); err != nil {
		return Result{Cycles: m.Cycle(), M: m, P: p}, err
	}
	sol, _ := m.Nodes[0].Mem.Read(app + offSolutions)
	tasks, _ := m.Nodes[0].Mem.Read(app + offExpect)
	return Result{
		Solutions: int(sol.Data()),
		Tasks:     int(tasks.Data()),
		Cycles:    m.Cycle(),
		M:         m, P: p,
	}, nil
}
