package tsp

import (
	"testing"
	"testing/quick"

	"jmachine/internal/stats"
)

func TestReferenceSmall(t *testing.T) {
	// A hand-checkable 4-city instance.
	d := [][]int32{
		{0, 1, 5, 4},
		{1, 0, 2, 6},
		{5, 2, 0, 3},
		{4, 6, 3, 0},
	}
	// Tours from 0: 0-1-2-3-0 = 1+2+3+4 = 10 (optimal).
	if got := Reference(d); got != 10 {
		t.Errorf("Reference = %d, want 10", got)
	}
}

func TestRunMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		cities, nodes int
	}{
		{5, 1},
		{6, 2},
		{7, 4},
		{8, 8},
	} {
		params := Params{Cities: tc.cities, Seed: int64(tc.cities)}
		want := Reference(params.Matrix())
		res, err := Run(tc.nodes, params)
		if err != nil {
			t.Fatalf("%d cities on %d nodes: %v", tc.cities, tc.nodes, err)
		}
		if res.Best != want {
			t.Errorf("%d cities on %d nodes: best = %d, want %d", tc.cities, tc.nodes, res.Best, want)
		}
	}
}

func TestRunProperty(t *testing.T) {
	f := func(seed int64) bool {
		params := Params{Cities: 6, Seed: seed}
		res, err := Run(4, params)
		if err != nil {
			return false
		}
		return res.Best == Reference(params.Matrix())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestXlateHeavy(t *testing.T) {
	// The CST style translates global names at every use: the xlate
	// count must be a large fraction of the instruction count (the
	// paper reports 5.1e8 xlates against 2.8e9 user instructions) and
	// the miss ratio insignificant.
	res, err := Run(4, Params{Cities: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	for _, n := range res.M.Nodes {
		s := n.Xl.Stats()
		hits += s.Hits
		misses += s.Misses
	}
	instrs := res.M.Stats.Instrs()
	ratio := float64(hits) / float64(instrs)
	if ratio < 0.02 {
		t.Errorf("xlates/instr = %.4f, expected heavy translation traffic", ratio)
	}
	if missRatio := float64(misses) / float64(hits+misses); missRatio > 0.01 {
		t.Errorf("xlate miss ratio = %.4f, expected insignificant", missRatio)
	}
	t.Logf("xlates = %d, instrs = %d (%.1f%%), misses = %d", hits, instrs, 100*ratio, misses)
}

func TestSyncOverheadFromYields(t *testing.T) {
	// The periodic null procedure call shows up as sync time; more
	// frequent yields mean more sync overhead.
	coarse, err := Run(2, Params{Cities: 7, Seed: 2, YieldEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(2, Params{Cities: 7, Seed: 2, YieldEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	sCoarse := coarse.M.Stats.Breakdown()[stats.CatSync]
	sFine := fine.M.Stats.Breakdown()[stats.CatSync]
	if sFine <= sCoarse {
		t.Errorf("sync share did not grow with yield frequency: %.3f vs %.3f", sCoarse, sFine)
	}
	t.Logf("sync share: yield=64 %.3f, yield=4 %.3f", sCoarse, sFine)
}

func TestLoadBalancingLimitsIdle(t *testing.T) {
	// Dynamic task redistribution keeps idle time low (3.8% in the
	// paper versus 15% for N-Queens). With variable-cost tasks on a
	// small machine the idle share should stay modest.
	res, err := Run(4, Params{Cities: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idle := res.M.Stats.IdleFraction()
	if idle > 0.35 {
		t.Errorf("idle fraction = %.3f, work redistribution ineffective", idle)
	}
	t.Logf("idle fraction = %.3f", idle)
}

func TestSpeedupShape(t *testing.T) {
	params := Params{Cities: 8, Seed: 4}
	c1, err := Run(1, params)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := Run(4, params)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(c1.Cycles) / float64(c4.Cycles)
	if speedup < 1.5 {
		t.Errorf("4-node speedup = %.2f", speedup)
	}
	t.Logf("TSP 8-city speedup on 4 nodes = %.2f", speedup)
}

func TestTaskEnumeration(t *testing.T) {
	p := Params{Cities: 14}
	if got := len(p.Tasks()); got != 13*12 {
		t.Errorf("task count = %d, want 156", got)
	}
}

func TestRunAtLargeMachines(t *testing.T) {
	params := Params{Cities: 7, Seed: 5}
	want := Reference(params.Matrix())
	for _, nodes := range []int{16, 32} {
		res, err := Run(nodes, params)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if res.Best != want {
			t.Errorf("%d nodes: best = %d, want %d", nodes, res.Best, want)
		}
	}
}
