// Package tsp implements the paper's Traveling Salesperson macro-
// benchmark in the Concurrent-Smalltalk style (package cst): all calls
// are message invocations, objects are reached through XLATEd global
// names on every use, long task threads suspend periodically so bound
// updates can be processed, and idle nodes redistribute incomplete tours
// with work-requesting messages.
//
// A task is a unique subpath of length two (beyond the start city); the
// tasks are initially distributed evenly over all the nodes. To process
// a task a node explores all tours containing the subpath in depth-first
// order, maintaining the shortest tour seen so far; subpaths longer than
// the current bound are pruned. Improved bounds are broadcast to every
// node. Pruning dominates the application's behaviour, which is what
// produces the paper's super-linear speedups on small machines.
package tsp

import (
	"fmt"
	"math/bits"
	"math/rand"

	"jmachine/internal/asm"
	"jmachine/internal/cst"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Object placement (internal memory).
const (
	workerBase = 1024
	matrixBase = 2048
	rowStride  = 16 // padded row stride: index = city<<4 | city2
	infinity   = 1 << 30
)

// Worker slot 0 holds the node's current best tour bound; slot 1 the
// DFS stack pointer of the active task.
const (
	wkBest = 0
	wkSP   = 1
)

// Params sizes the problem. The paper solves a 14-city configuration.
type Params struct {
	Cities int
	Seed   int64
	// YieldEvery is the number of candidate expansions between
	// voluntary suspensions (the periodic null procedure call).
	YieldEvery int
	// Setup, when non-nil, runs after the runtime is attached and the
	// problem is loaded but before the machine starts — the hook where
	// cmd/jm-chaos attaches fault campaigns and resilience layers.
	Setup func(*machine.Machine, *rt.Runtime)
	// PreRun, when non-nil, runs after the boot messages are queued,
	// immediately before the run loop — the hook where a checkpoint is
	// restored over the freshly built state. An error aborts the run.
	PreRun func(*machine.Machine) error
}

func (p Params) withDefaults() Params {
	if p.Cities == 0 {
		p.Cities = 14
	}
	if p.YieldEvery == 0 {
		p.YieldEvery = 16
	}
	return p
}

// Matrix generates the symmetric distance matrix.
func (p Params) Matrix() [][]int32 {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed + 3))
	d := make([][]int32, p.Cities)
	for i := range d {
		d[i] = make([]int32, p.Cities)
	}
	for i := 0; i < p.Cities; i++ {
		for j := i + 1; j < p.Cities; j++ {
			v := int32(1 + r.Intn(99))
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// Reference computes the optimal tour length with an exact
// branch-and-bound search (same pruning rule as the machine code).
func Reference(d [][]int32) int32 {
	n := len(d)
	full := int32(1)<<uint(n) - 1
	best := int32(infinity)
	var rec func(visited int32, last int, length int32)
	rec = func(visited int32, last int, length int32) {
		if visited == full {
			if t := length + d[last][0]; t < best {
				best = t
			}
			return
		}
		for c := 1; c < n; c++ {
			bit := int32(1) << uint(c)
			if visited&bit != 0 {
				continue
			}
			nl := length + d[last][c]
			if nl >= best {
				continue
			}
			rec(visited|bit, c, nl)
		}
	}
	rec(1, 0, 0)
	return best
}

// Task is an initial subpath: city 0 → A → B.
type Task struct {
	A, B int
	Seq  int
}

// Tasks enumerates the initial task set.
func (p Params) Tasks() []Task {
	p = p.withDefaults()
	var out []Task
	seq := 0
	for a := 1; a < p.Cities; a++ {
		for b := 1; b < p.Cities; b++ {
			if b == a {
				continue
			}
			out = append(out, Task{A: a, B: b, Seq: seq})
			seq++
		}
	}
	return out
}

// Thread-class labels.
const (
	LTask    = "tsp.task"
	LBound   = "tsp.bound"
	LDoneMsg = "tsp.done"
)

// BuildProgram assembles the TSP program: task code, handlers, the CST
// scheduler, and the runtime library.
func BuildProgram() *asm.Program {
	b := asm.NewBuilder()
	buildTask(b)
	buildHandlers(b)
	cst.BuildScheduler(b, cst.Config{TaskEntry: LTask})
	rt.BuildLib(b)
	return b.MustAssemble()
}

func buildTask(b *asm.Builder) {
	const (
		app = cst.App
		rec = cst.OffRec
	)

	// Task-invocation handler: [hdr, visited, last, len, seq]. The
	// prologue unpacks the method arguments into the context frame.
	b.Label(LTask)
	cst.EmitTaskPrologue(b)
	b.St(isa.ZERO, asm.Mem(isa.A2, wkSP)).
		MoveI(isa.R0, 1). // nextCity starts at city 1
		St(isa.R0, asm.Mem(isa.A1, rec+3)).
		Label(LTask + ".resume")

	// Main expansion loop. Every iteration re-establishes the object
	// descriptors through XLATE — the name is in the "context frame"
	// and the address register is reloaded after every suspension or
	// spill, which is where TSP's enormous xlate count comes from.
	b.Label("tsp.loop").
		MoveI(isa.A1, app).
		Xlate(isa.A2, asm.Mem(isa.A1, cst.OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A1, cst.OffYieldCtr)).
		Sub(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A1, cst.OffYieldCtr)).
		Bf(isa.R0, "tsp.yield").
		Move(isa.R1, asm.Mem(isa.A1, rec+3)). // c = nextCity
		Move(isa.R0, asm.R(isa.R1)).
		Ge(isa.R0, asm.Mem(isa.A1, cst.OffN)).
		Bt(isa.R0, "tsp.pop").
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A1, rec+3)).
		Sub(isa.R1, asm.Imm(1)).
		MoveI(isa.R2, 1). // bit = 1 << c
		Lsh(isa.R2, asm.R(isa.R1)).
		Move(isa.R0, asm.Mem(isa.A1, rec+0)).
		And(isa.R0, asm.R(isa.R2)).
		Bt(isa.R0, "tsp.loop"). // already visited
		Xlate(isa.A0, asm.Mem(isa.A1, cst.OffMatrixKey)).
		Move(isa.R0, asm.Mem(isa.A1, rec+1)). // idx = last<<4 | c
		Lsh(isa.R0, asm.Imm(4)).
		Or(isa.R0, asm.R(isa.R1)).
		Move(isa.R3, asm.MemR(isa.A0, isa.R0)). // d
		Add(isa.R3, asm.Mem(isa.A1, rec+2)).    // newLen
		Move(isa.R0, asm.R(isa.R3)).
		Ge(isa.R0, asm.Mem(isa.A2, wkBest)).
		Bt(isa.R0, "tsp.loop"). // prune
		Move(isa.R0, asm.Mem(isa.A1, rec+0)).
		Or(isa.R0, asm.R(isa.R2)). // newVisited
		Move(isa.R2, asm.R(isa.R0)).
		Eq(isa.R2, asm.Mem(isa.A1, cst.OffFull)).
		Bt(isa.R2, "tsp.close").
		// Push the parent frame into the worker object.
		Move(isa.R2, asm.Mem(isa.A2, wkSP)).
		Lsh(isa.R2, asm.Imm(2)).
		Add(isa.R2, asm.Imm(cst.WkFrames))
	for k := int32(0); k < 4; k++ {
		b.Move(isa.A0, asm.Mem(isa.A1, rec+k)).
			St(isa.A0, asm.MemR(isa.A2, isa.R2)).
			Add(isa.R2, asm.Imm(1))
	}
	b.Move(isa.A0, asm.Mem(isa.A2, wkSP)).
		Add(isa.A0, asm.Imm(1)).
		St(isa.A0, asm.Mem(isa.A2, wkSP)).
		// Active frame = the child.
		St(isa.R0, asm.Mem(isa.A1, rec+0)).
		St(isa.R1, asm.Mem(isa.A1, rec+1)).
		St(isa.R3, asm.Mem(isa.A1, rec+2)).
		MoveI(isa.R0, 1).
		St(isa.R0, asm.Mem(isa.A1, rec+3)).
		Br("tsp.loop")

	// Complete tour: close it back to city 0 and compare.
	b.Label("tsp.close").
		Move(isa.R0, asm.R(isa.R1)).
		Lsh(isa.R0, asm.Imm(4)).
		Move(isa.R2, asm.MemR(isa.A0, isa.R0)). // d[c][0]
		Add(isa.R3, asm.R(isa.R2)).
		Move(isa.R0, asm.R(isa.R3)).
		Lt(isa.R0, asm.Mem(isa.A2, wkBest)).
		Bf(isa.R0, "tsp.loop").
		St(isa.R3, asm.Mem(isa.A2, wkBest)).
		// Broadcast the improved bound to every other node.
		St(isa.ZERO, asm.Mem(isa.A1, cst.OffScratch)).
		Label("tsp.bcast").
		Move(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Move(isa.R2, asm.R(isa.R0)).
		Gt(isa.R2, asm.Mem(isa.A1, cst.OffNodesMask)).
		Bt(isa.R2, "tsp.loop").
		Move(isa.R2, asm.R(isa.R0)).
		Eq(isa.R2, asm.Mem(isa.A1, cst.OffMyID)).
		Bt(isa.R2, "tsp.bnext").
		MoveI(isa.RGN, 4).
		Add(isa.R0, asm.Imm(cst.NodeTable)).
		Move(isa.A0, asm.R(isa.R0)).
		Send(asm.Mem(isa.A0, 0)).
		MoveI(isa.RGN, 0).
		MoveHdr(isa.R1, LBound, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.R3)).
		Label("tsp.bnext").
		Move(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Br("tsp.bcast")

	// Pop a frame, or finish the task.
	b.Label("tsp.pop").
		Move(isa.R0, asm.Mem(isa.A2, wkSP)).
		Bf(isa.R0, "tsp.taskdone").
		Sub(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A2, wkSP)).
		Lsh(isa.R0, asm.Imm(2)).
		Add(isa.R0, asm.Imm(cst.WkFrames))
	for k := int32(0); k < 4; k++ {
		b.Move(isa.A0, asm.MemR(isa.A2, isa.R0)).
			St(isa.A0, asm.Mem(isa.A1, rec+k)).
			Add(isa.R0, asm.Imm(1))
	}
	b.Br("tsp.loop")

	// Task complete: report to node 0 and reschedule.
	b.Label("tsp.taskdone").
		MoveI(isa.R1, 0).
		Wtag(isa.R1, asm.Imm(int32(word.TagNode))).
		Send(asm.R(isa.R1)).
		MoveHdr(isa.R1, LDoneMsg, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.Mem(isa.A1, cst.OffCurSeq))
	cst.EmitFinish(b)

	// Voluntary suspension: the periodic null procedure call.
	b.Label("tsp.yield")
	cst.EmitYield(b)
}

func buildHandlers(b *asm.Builder) {
	// tsp.bound: [hdr, bound] — adopt a better bound.
	b.Label(LBound).
		MoveI(isa.A1, cst.App).
		Xlate(isa.A2, asm.Mem(isa.A1, cst.OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Move(isa.R1, asm.R(isa.R0)).
		Lt(isa.R1, asm.Mem(isa.A2, wkBest)).
		Bf(isa.R1, "tsp.bound.out").
		St(isa.R0, asm.Mem(isa.A2, wkBest)).
		Label("tsp.bound.out").
		Suspend()

	// tsp.done: [hdr, seq] — node 0 counts completions; when all tasks
	// are done it halts the machine.
	b.Label(LDoneMsg).
		MoveI(isa.A1, cst.App).
		Move(isa.R0, asm.Mem(isa.A1, cst.OffDone)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A1, cst.OffDone)).
		Move(isa.R1, asm.R(isa.R0)).
		Lt(isa.R1, asm.Mem(isa.A1, cst.OffTotal)).
		Bt(isa.R1, "tsp.done.out").
		// Broadcast halt, then stop.
		St(isa.ZERO, asm.Mem(isa.A1, cst.OffScratch)).
		Label("tsp.done.bcast").
		Move(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Move(isa.R2, asm.R(isa.R0)).
		Gt(isa.R2, asm.Mem(isa.A1, cst.OffNodesMask)).
		Bt(isa.R2, "tsp.done.halt").
		Move(isa.R2, asm.R(isa.R0)).
		Eq(isa.R2, asm.Mem(isa.A1, cst.OffMyID)).
		Bt(isa.R2, "tsp.done.next").
		Add(isa.R0, asm.Imm(cst.NodeTable)).
		Move(isa.A0, asm.R(isa.R0)).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, cst.LHalt, 1).
		SendE(asm.R(isa.R1)).
		Label("tsp.done.next").
		Move(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A1, cst.OffScratch)).
		Br("tsp.done.bcast").
		Label("tsp.done.halt").
		Halt().
		Label("tsp.done.out").
		Suspend()
}

// Result reports one run.
type Result struct {
	Best   int32
	Tasks  int
	Cycles int64
	M      *machine.Machine
	P      *asm.Program
	R      *rt.Runtime
}

// Run executes TSP on a machine of the given node count (a power of
// two).
func Run(nodes int, params Params) (Result, error) {
	return runCapped(nodes, params, 1<<36)
}

// runCapped is Run with an explicit cycle budget; on budget exhaustion
// the partial Result is returned alongside the error for diagnostics.
func runCapped(nodes int, params Params, budget int64) (Result, error) {
	params = params.withDefaults()
	if bits.OnesCount(uint(nodes)) != 1 {
		return Result{}, fmt.Errorf("tsp: nodes (%d) must be a power of two", nodes)
	}
	n := params.Cities
	if n < 4 || n > 16 {
		return Result{}, fmt.Errorf("tsp: cities %d out of range [4,16]", n)
	}
	d := params.Matrix()
	tasks := params.Tasks()

	p := BuildProgram()
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return Result{}, err
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())

	perNode := (len(tasks)+nodes-1)/nodes + 2
	workerLen := cst.WkStack + 4*perNode
	matrixLen := n * rowStride
	for id, nd := range m.Nodes {
		mm := nd.Mem
		set := func(addr int32, v int32) {
			if err := mm.Write(addr, word.Int(v)); err != nil {
				panic(err)
			}
		}
		set(cst.App+cst.OffN, int32(n))
		set(cst.App+cst.OffFull, int32(1)<<uint(n)-1)
		set(cst.App+cst.OffYieldK, int32(params.YieldEvery))
		set(cst.App+cst.OffTotal, int32(len(tasks)))
		set(cst.App+cst.OffDone, 0)
		set(workerBase+wkBest, infinity)
		set(workerBase+wkSP, 0)
		set(workerBase+cst.WkStackCount, 0)
		set(workerBase+cst.WkVictim, int32((id+1)%nodes))
		set(workerBase+cst.WkAttempts, 0)
		set(workerBase+cst.WkBusy, 0)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				set(matrixBase+int32(i*rowStride+j), d[i][j])
			}
		}
		cst.SetupNode(r, m, id, workerBase, workerLen, matrixBase, matrixLen)
	}
	for i, t := range tasks {
		visited := int32(1) | int32(1)<<uint(t.A) | int32(1)<<uint(t.B)
		length := d[0][t.A] + d[t.A][t.B]
		cst.PushTask(m, i%nodes, workerBase, [4]int32{visited, int32(t.B), length, int32(t.Seq)})
	}

	if params.Setup != nil {
		params.Setup(m, r)
	}
	if params.PreRun != nil {
		if err := params.PreRun(m); err != nil {
			return Result{M: m, P: p, R: r}, err
		}
	}
	// The scheduler boot messages were queued by SetupNode; just run.
	runErr := m.RunUntilHalt(0, budget)
	// The optimum ends up replicated; read node 0's bound.
	best, _ := m.Nodes[0].Mem.Read(workerBase + wkBest)
	return Result{
		Best:   best.Data(),
		Tasks:  len(tasks),
		Cycles: m.Cycle(),
		M:      m, P: p, R: r,
	}, runErr
}
