// Package radix implements the paper's Radix Sort macro-benchmark.
//
// Keys are sorted one 4-bit digit at a time with a stable three-phase
// counting sort. In the parallel version the data is distributed evenly;
// per-node counts are combined and initial offsets generated with a
// binary combining/distributing tree (a Blelloch scan over 16-element
// count vectors); and the reorder phase writes every key to its new slot
// as soon as the location is computed — one 3-word message per key, the
// "fine-grained style" that makes radix sort the paper's only
// application to stress the communication mechanisms. Its 4-instruction
// WriteData handler is Table 4's second thread class.
package radix

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Application memory layout: offsets from AppBase (addressed via A3 in
// the background Sort thread).
const (
	app          = rt.AppBase
	offKpn       = 0  // keys per node
	offNegLogKpn = 1  // -log2(kpn), for extracting the destination node
	offKpnMask   = 2  // kpn-1, for extracting the destination slot
	offDigit     = 3  // current digit
	offNegShift  = 4  // -(4*digit), for extracting the digit
	offWriteCnt  = 5  // keys received this iteration
	offSrc       = 6  // source buffer base (external memory)
	offDst       = 7  // destination buffer base
	offUpCnt     = 8  // combining-tree messages received
	offDownFlag  = 9  // distributing-tree prefix arrived
	offTrailOnes = 12 // r: levels at which this node combines
	offIsRoot    = 13 // 1 on node N-1 (the tree root)
	offDigits    = 14 // total digits D
	offUpTarget  = 15 // router address of the combine parent

	offCounts      = 16  // counts[16]
	offOffsets     = 32  // offsets[16] (scan result, then running offsets)
	offRetain      = 48  // retained left-subtree sums, 16 words per level
	offDownTargets = 208 // router addresses of distribute children, per level

	// nodeTable is an absolute internal-memory address: router-address
	// words for every node, indexed by node id (loader-initialized, as
	// the real machine's boot loader did). It sits above the
	// application's relative fields (which extend to app+offDownTargets
	// + log₂N ≈ address 280) so the two never collide at any size.
	nodeTable = 512
)

// Params sizes the problem. The paper sorts 65,536 28-bit keys, 4 bits
// at a time.
type Params struct {
	Keys  int
	Bits  int // key width (default 28)
	Radix int // bits per digit (fixed at 4 in this implementation)
	Seed  int64
	// Tune adjusts the machine configuration before construction
	// (ablation studies: router arbitration, queue sizes, timing).
	Tune func(*machine.Config)
	// Setup, when non-nil, runs after the runtime is attached and the
	// problem is loaded but before the machine starts — the hook where
	// cmd/jm-chaos attaches fault campaigns and resilience layers.
	Setup func(*machine.Machine, *rt.Runtime)
	// PreRun, when non-nil, runs after the start-up threads are queued,
	// immediately before the run loop — the hook where a checkpoint is
	// restored over the freshly built state. An error aborts the run.
	PreRun func(*machine.Machine) error
}

func (p Params) withDefaults() Params {
	if p.Keys == 0 {
		p.Keys = 65536
	}
	if p.Bits == 0 {
		p.Bits = 28
	}
	if p.Radix == 0 {
		p.Radix = 4
	}
	return p
}

// Digits returns the iteration count.
func (p Params) Digits() int {
	p = p.withDefaults()
	return (p.Bits + p.Radix - 1) / p.Radix
}

// Input generates the key set.
func (p Params) Input() []int32 {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed + 2))
	keys := make([]int32, p.Keys)
	for i := range keys {
		keys[i] = int32(r.Uint32() & (1<<uint(p.Bits) - 1))
	}
	return keys
}

// Reference sorts a copy of keys (stable, ascending).
func Reference(keys []int32) []int32 {
	out := make([]int32, len(keys))
	copy(out, keys)
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Thread-class labels (Table 4 rows: "Sort" is the background thread).
const (
	LSort  = "radix.sort"
	LWrite = "radix.write" // the 4-instruction WriteData handler
	LUp    = "radix.up"
	LDown  = "radix.down"
)

// BuildProgram assembles the radix-sort program plus the runtime library.
func BuildProgram() *asm.Program {
	b := asm.NewBuilder()
	buildSortThread(b)
	buildHandlers(b)
	rt.BuildLib(b)
	return b.MustAssemble()
}

// buildSortThread emits the background "Sort" thread: the outer loop
// that iterates the three phases across all digits.
func buildSortThread(b *asm.Builder) {
	b.Label(LSort).
		Bsr(isa.R3, rt.LBarInit).
		MoveI(isa.A3, app)

	// ---- per-digit loop ----
	b.Label("radix.iter").
		// negshift = -(4*digit)
		Move(isa.R0, asm.Mem(isa.A3, offDigit)).
		Lsh(isa.R0, asm.Imm(2)).
		Neg(isa.R0).
		St(isa.R0, asm.Mem(isa.A3, offNegShift))

	// ---- phase 1: count ----
	// Zero the count vector.
	b.MoveI(isa.A1, app+offCounts).
		MoveI(isa.R1, 16).
		Label("radix.zero").
		St(isa.ZERO, asm.Mem(isa.A1, 0)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.R1, asm.Imm(-1)).
		Bt(isa.R1, "radix.zero")
	// Scan local keys: counts[(key>>shift)&15]++.
	b.Move(isa.A0, asm.Mem(isa.A3, offSrc)).
		MoveI(isa.A1, app+offCounts).
		Move(isa.A2, asm.Mem(isa.A3, offKpn)).
		Move(isa.R2, asm.Mem(isa.A3, offNegShift)).
		Label("radix.count").
		Move(isa.R3, asm.Mem(isa.A0, 0)). // key (external memory)
		Ash(isa.R3, asm.R(isa.R2)).
		And(isa.R3, asm.Imm(15)).
		Move(isa.R1, asm.MemR(isa.A1, isa.R3)).
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.MemR(isa.A1, isa.R3)).
		Add(isa.A0, asm.Imm(1)).
		Add(isa.A2, asm.Imm(-1)).
		Bt(isa.A2, "radix.count")

	// ---- phase 2: combine/distribute tree ----
	// Wait for the r up-messages from our combining subtree.
	b.Label("radix.upwait").
		Move(isa.R0, asm.Mem(isa.A3, offUpCnt)).
		Lt(isa.R0, asm.Mem(isa.A3, offTrailOnes)).
		Bt(isa.R0, "radix.upwait").
		St(isa.ZERO, asm.Mem(isa.A3, offUpCnt)).
		Move(isa.R0, asm.Mem(isa.A3, offIsRoot)).
		Bt(isa.R0, "radix.root")
	// Non-root: send the combined counts up and await the prefix.
	b.Send(asm.Mem(isa.A3, offUpTarget)).
		MoveHdr(isa.R0, LUp, 18).
		Send(asm.R(isa.R0)).
		Send(asm.Mem(isa.A3, offTrailOnes)). // level
		MoveI(isa.A1, app+offCounts)
	for k := 0; k < 15; k++ {
		b.Send(asm.Mem(isa.A1, int32(k)))
	}
	b.SendE(asm.Mem(isa.A1, 15)).
		Label("radix.downwait").
		Move(isa.R0, asm.Mem(isa.A3, offDownFlag)).
		Bf(isa.R0, "radix.downwait").
		St(isa.ZERO, asm.Mem(isa.A3, offDownFlag)).
		Br("radix.distribute")
	// Root: offsets = exclusive scan over bucket totals.
	b.Label("radix.root").
		MoveI(isa.A1, app+offCounts).
		MoveI(isa.A2, app+offOffsets).
		MoveI(isa.R0, 0).
		MoveI(isa.R2, 16).
		Label("radix.rootscan").
		St(isa.R0, asm.Mem(isa.A2, 0)).
		Add(isa.R0, asm.Mem(isa.A1, 0)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.A2, asm.Imm(1)).
		Add(isa.R2, asm.Imm(-1)).
		Bt(isa.R2, "radix.rootscan")
	// Distribute: for l = r-1 .. 0, send the prefix down, then fold in
	// the retained left-subtree sums.
	b.Label("radix.distribute").
		Move(isa.R2, asm.Mem(isa.A3, offTrailOnes)).
		Label("radix.downloop").
		Add(isa.R2, asm.Imm(-1)).
		Move(isa.R0, asm.R(isa.R2)).
		Lt(isa.R0, asm.Imm(0)).
		Bt(isa.R0, "radix.reorder").
		MoveI(isa.A1, app+offDownTargets).
		Send(asm.MemR(isa.A1, isa.R2)).
		MoveHdr(isa.R0, LDown, 18).
		Send(asm.R(isa.R0)).
		Send(asm.R(isa.R2)). // level
		MoveI(isa.A1, app+offOffsets)
	for k := 0; k < 15; k++ {
		b.Send(asm.Mem(isa.A1, int32(k)))
	}
	b.SendE(asm.Mem(isa.A1, 15)).
		// offsets += retain[l]
		Move(isa.R0, asm.R(isa.R2)).
		Lsh(isa.R0, asm.Imm(4)).
		Add(isa.R0, asm.Imm(app+offRetain)).
		Move(isa.A2, asm.R(isa.R0)).
		MoveI(isa.A1, app+offOffsets).
		MoveI(isa.R0, 16).
		Label("radix.fold").
		Move(isa.R1, asm.Mem(isa.A2, 0)).
		Add(isa.R1, asm.Mem(isa.A1, 0)).
		St(isa.R1, asm.Mem(isa.A1, 0)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.A2, asm.Imm(1)).
		Add(isa.R0, asm.Imm(-1)).
		Bt(isa.R0, "radix.fold").
		Br("radix.downloop")

	// ---- phase 3: reorder ----
	// Every key is sent to its new home the moment its slot is known.
	b.Label("radix.reorder").
		Move(isa.A0, asm.Mem(isa.A3, offSrc)).
		MoveI(isa.A1, app+offOffsets).
		Move(isa.A2, asm.Mem(isa.A3, offKpn)).
		Move(isa.R2, asm.Mem(isa.A3, offNegShift)).
		Label("radix.rloop").
		Move(isa.R3, asm.Mem(isa.A0, 0)). // key
		Move(isa.R0, asm.R(isa.R3)).
		Ash(isa.R0, asm.R(isa.R2)).
		And(isa.R0, asm.Imm(15)).               // digit value v
		Move(isa.R1, asm.MemR(isa.A1, isa.R0)). // g = offsets[v]
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.MemR(isa.A1, isa.R0)).
		Sub(isa.R1, asm.Imm(1)).
		// destination node and slot
		Move(isa.R0, asm.R(isa.R1)).
		Ash(isa.R0, asm.Mem(isa.A3, offNegLogKpn)).
		And(isa.R1, asm.Mem(isa.A3, offKpnMask)).
		Add(isa.R0, asm.Imm(nodeTable)).
		MoveI(isa.RGN, 4). // node-address lookup = "NNR calc"
		Move(isa.A1, asm.R(isa.R0)).
		Move(isa.R0, asm.Mem(isa.A1, 0)). // router address
		MoveI(isa.RGN, 0).
		MoveI(isa.A1, app+offOffsets).
		Send(asm.R(isa.R0)).
		MoveHdr(isa.R0, LWrite, 3).
		Send(asm.R(isa.R0)).
		Send2E(isa.R1, asm.R(isa.R3)). // [slot, key]
		Add(isa.A0, asm.Imm(1)).
		Add(isa.A2, asm.Imm(-1)).
		Bt(isa.A2, "radix.rloop")

	// ---- iteration epilogue ----
	// Wait for exactly kpn keys to arrive, reset, swap buffers, barrier.
	b.Label("radix.wwait").
		Move(isa.R0, asm.Mem(isa.A3, offWriteCnt)).
		Lt(isa.R0, asm.Mem(isa.A3, offKpn)).
		Bt(isa.R0, "radix.wwait").
		St(isa.ZERO, asm.Mem(isa.A3, offWriteCnt)).
		Move(isa.R0, asm.Mem(isa.A3, offSrc)).
		Move(isa.R1, asm.Mem(isa.A3, offDst)).
		St(isa.R1, asm.Mem(isa.A3, offSrc)).
		St(isa.R0, asm.Mem(isa.A3, offDst)).
		Bsr(isa.R3, rt.LBarrier).
		MoveI(isa.A3, app). // restore after subroutine clobbers
		Move(isa.R0, asm.Mem(isa.A3, offDigit)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A3, offDigit)).
		Lt(isa.R0, asm.Mem(isa.A3, offDigits)).
		Bt(isa.R0, "radix.iter").
		// Done: node 0 halts the run; the rest idle.
		MoveI(isa.A2, 0).
		Move(isa.R1, asm.Mem(isa.A2, rt.AddrNodeID)).
		Bt(isa.R1, "radix.rest").
		Halt().
		Label("radix.rest").
		Suspend()
}

// buildHandlers emits the three message handlers.
func buildHandlers(b *asm.Builder) {
	// radix.write: [hdr, slot, key] — the fine-grained remote write.
	b.Label(LWrite).
		Move(isa.R0, asm.Mem(isa.A3, 1)). // slot
		Move(isa.R1, asm.Mem(isa.A3, 2)). // key
		MoveI(isa.A0, app).
		Move(isa.A1, asm.Mem(isa.A0, offDst)).
		St(isa.R1, asm.MemR(isa.A1, isa.R0)).
		Move(isa.R2, asm.Mem(isa.A0, offWriteCnt)).
		Add(isa.R2, asm.Imm(1)).
		St(isa.R2, asm.Mem(isa.A0, offWriteCnt)).
		Suspend()

	// radix.up: [hdr, level, V0..V15] — combine a subtree's counts,
	// retaining the received vector for the distribute phase.
	b.Label(LUp).
		Move(isa.R0, asm.Mem(isa.A3, 1)). // level
		Lsh(isa.R0, asm.Imm(4)).
		Add(isa.R0, asm.Imm(app+offRetain)).
		Move(isa.A0, asm.R(isa.R0)).
		MoveI(isa.A1, app+offCounts).
		MoveI(isa.R3, 2). // message word index
		Label("radix.up.loop").
		Move(isa.R2, asm.MemR(isa.A3, isa.R3)).
		St(isa.R2, asm.Mem(isa.A0, 0)).
		Add(isa.R2, asm.Mem(isa.A1, 0)).
		St(isa.R2, asm.Mem(isa.A1, 0)).
		Add(isa.A0, asm.Imm(1)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.R3, asm.Imm(1)).
		Move(isa.R2, asm.R(isa.R3)).
		Lt(isa.R2, asm.Imm(18)).
		Bt(isa.R2, "radix.up.loop").
		MoveI(isa.A0, app).
		Move(isa.R0, asm.Mem(isa.A0, offUpCnt)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A0, offUpCnt)).
		Suspend()

	// radix.down: [hdr, level, P0..P15] — receive the prefix.
	b.Label(LDown).
		MoveI(isa.A1, app+offOffsets).
		MoveI(isa.R3, 2).
		Label("radix.down.loop").
		Move(isa.R2, asm.MemR(isa.A3, isa.R3)).
		St(isa.R2, asm.Mem(isa.A1, 0)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.R3, asm.Imm(1)).
		Move(isa.R2, asm.R(isa.R3)).
		Lt(isa.R2, asm.Imm(18)).
		Bt(isa.R2, "radix.down.loop").
		MoveI(isa.A0, app).
		MoveI(isa.R0, 1).
		St(isa.R0, asm.Mem(isa.A0, offDownFlag)).
		Suspend()
}

// Result reports one run.
type Result struct {
	Sorted []int32
	Cycles int64
	M      *machine.Machine
	P      *asm.Program
}

// Run executes radix sort on a machine of the given node count. Keys and
// nodes must be powers of two with nodes ≤ keys.
func Run(nodes int, params Params) (Result, error) {
	params = params.withDefaults()
	keys := params.Input()
	if bits.OnesCount(uint(nodes)) != 1 || bits.OnesCount(uint(params.Keys)) != 1 {
		return Result{}, fmt.Errorf("radix: keys (%d) and nodes (%d) must be powers of two", params.Keys, nodes)
	}
	if params.Keys%nodes != 0 {
		return Result{}, fmt.Errorf("radix: %d keys not divisible by %d nodes", params.Keys, nodes)
	}
	kpn := params.Keys / nodes
	digits := params.Digits()

	p := BuildProgram()
	cfg := machine.GridForNodes(nodes)
	// Buffers must fit: 2*kpn words of external memory per node.
	if need := 2 * kpn; need > 61440 {
		cfg.Mem.EmemWords = need + 4096
	}
	if params.Tune != nil {
		params.Tune(&cfg)
	}
	m, err := machine.New(cfg, p)
	if err != nil {
		return Result{}, err
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())

	logKpn := bits.TrailingZeros(uint(kpn))
	for id, n := range m.Nodes {
		mm := n.Mem
		srcBase := int32(mm.ImemWords())
		dstBase := srcBase + int32(kpn)
		set := func(off int32, v int32) {
			if err := mm.Write(app+off, word.Int(v)); err != nil {
				panic(err)
			}
		}
		set(offKpn, int32(kpn))
		set(offNegLogKpn, int32(-logKpn))
		set(offKpnMask, int32(kpn-1))
		set(offDigit, 0)
		set(offWriteCnt, 0)
		set(offSrc, srcBase)
		set(offDst, dstBase)
		set(offUpCnt, 0)
		set(offDownFlag, 0)
		r := trailingOnes(id)
		set(offTrailOnes, int32(r))
		set(offIsRoot, boolInt(id == nodes-1))
		set(offDigits, int32(digits))
		if id != nodes-1 {
			mm.Write(app+offUpTarget, m.Net.NodeWord(id+(1<<r)))
		}
		for l := 0; l < r; l++ {
			mm.Write(app+offDownTargets+int32(l), m.Net.NodeWord(id-(1<<l)))
		}
		for i := 0; i < nodes; i++ {
			mm.Write(nodeTable+int32(i), m.Net.NodeWord(i))
		}
		for i := 0; i < kpn; i++ {
			mm.Write(srcBase+int32(i), word.Int(keys[id*kpn+i]))
		}
	}

	if params.Setup != nil {
		params.Setup(m, r)
	}
	rt.StartAll(m, p, LSort)
	if params.PreRun != nil {
		if err := params.PreRun(m); err != nil {
			return Result{M: m, P: p}, err
		}
	}
	budget := int64(digits)*int64(kpn)*120 + 2_000_000
	if err := m.RunUntilHalt(0, budget); err != nil {
		return Result{Cycles: m.Cycle(), M: m, P: p}, err
	}
	if err := m.RunQuiescent(1_000_000); err != nil {
		return Result{Cycles: m.Cycle(), M: m, P: p}, err
	}

	out := make([]int32, 0, params.Keys)
	for id, n := range m.Nodes {
		base, _ := n.Mem.Read(app + offSrc) // final data sits in "src" after the last swap
		for i := 0; i < kpn; i++ {
			w, err := n.Mem.Read(base.Data() + int32(i))
			if err != nil {
				return Result{}, fmt.Errorf("radix: node %d slot %d: %w", id, i, err)
			}
			out = append(out, w.Data())
		}
	}
	return Result{Sorted: out, Cycles: m.Cycle(), M: m, P: p}, nil
}

func trailingOnes(id int) int {
	r := 0
	for id&1 == 1 {
		r++
		id >>= 1
	}
	return r
}

func boolInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
