package radix

import (
	"testing"
	"testing/quick"

	"jmachine/internal/stats"
)

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortSmallSingleNode(t *testing.T) {
	params := Params{Keys: 64, Bits: 12, Seed: 1}
	res, err := Run(1, params)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(params.Input())
	if !equal(res.Sorted, want) {
		t.Fatalf("sorted output wrong:\n got %v\nwant %v", res.Sorted[:16], want[:16])
	}
}

func TestSortAcrossMachineSizes(t *testing.T) {
	params := Params{Keys: 256, Bits: 16, Seed: 3}
	want := Reference(params.Input())
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		res, err := Run(nodes, params)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if !equal(res.Sorted, want) {
			t.Fatalf("%d nodes: output not sorted correctly", nodes)
		}
	}
}

func TestSortAtLargeMachines(t *testing.T) {
	// Regression: node counts above 16 exercise deeper combining trees
	// and more distribute-table entries (a memory-map collision once
	// corrupted the tree targets at 32 nodes).
	params := Params{Keys: 2048, Bits: 12, Seed: 7}
	want := Reference(params.Input())
	for _, nodes := range []int{32, 64, 128} {
		res, err := Run(nodes, params)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if !equal(res.Sorted, want) {
			t.Fatalf("%d nodes: output wrong", nodes)
		}
	}
}

func TestSortProperty(t *testing.T) {
	// Output is sorted and a permutation of the input for random seeds.
	f := func(seed int64) bool {
		params := Params{Keys: 128, Bits: 16, Seed: seed}
		res, err := Run(4, params)
		if err != nil {
			return false
		}
		return equal(res.Sorted, Reference(params.Input()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestWriteHandlerStats(t *testing.T) {
	// Table 4: one WriteData message per key per digit, 3 words each,
	// a handful of instructions per thread.
	params := Params{Keys: 256, Bits: 16, Seed: 2}
	res, err := Run(4, params)
	if err != nil {
		t.Fatal(err)
	}
	h := res.M.Stats.HandlerTotal(res.P.Entry(LWrite))
	want := uint64(params.Keys * params.Digits())
	if h.Invocations != want {
		t.Errorf("WriteData invocations = %d, want %d", h.Invocations, want)
	}
	if avg := float64(h.MsgWords) / float64(h.Invocations); avg != 3 {
		t.Errorf("WriteData message length = %.1f, want 3", avg)
	}
	perThread := float64(h.Instrs) / float64(h.Invocations)
	if perThread < 4 || perThread > 12 {
		t.Errorf("WriteData instr/thread = %.1f, want a handful", perThread)
	}
}

func TestSpeedupShape(t *testing.T) {
	params := Params{Keys: 512, Bits: 16, Seed: 5}
	c1, err := Run(1, params)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Run(8, params)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(c1.Cycles) / float64(c8.Cycles)
	if speedup < 2 {
		t.Errorf("8-node speedup = %.2f, want > 2", speedup)
	}
	t.Logf("radix 8-node speedup on 512 keys = %.2f", speedup)
}

func TestCommBreakdownSignificant(t *testing.T) {
	// Radix sort is the paper's only application that stresses the
	// communication mechanisms: comm cycles must be a visible fraction.
	params := Params{Keys: 512, Bits: 16, Seed: 4}
	res, err := Run(8, params)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.M.Stats.Breakdown()
	if bd[stats.CatComm] < 0.02 {
		t.Errorf("comm share = %.3f, expected visible communication", bd[stats.CatComm])
	}
	t.Logf("breakdown: comp=%.2f comm=%.2f sync=%.2f idle=%.2f",
		bd[stats.CatComp], bd[stats.CatComm], bd[stats.CatSync], bd[stats.CatIdle])
}

func TestTrailingOnes(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 0, 3: 2, 7: 3, 8: 0, 11: 2, 15: 4}
	for id, want := range cases {
		if got := trailingOnes(id); got != want {
			t.Errorf("trailingOnes(%d) = %d, want %d", id, got, want)
		}
	}
}
