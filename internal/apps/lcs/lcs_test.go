package lcs

import (
	"testing"
	"testing/quick"

	"jmachine/internal/stats"
)

func TestReferenceKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 3},
		{"abc", "def", 0},
		{"abcbdab", "bdcaba", 4},
		{"AGGTAB", "GXTXAYB", 4},
	}
	for _, c := range cases {
		if got := Reference([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Reference(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRunMatchesReferenceSmall(t *testing.T) {
	params := Params{LenA: 32, LenB: 48, Seed: 7}
	a, b := params.Strings()
	want := Reference(a, b)
	for _, nodes := range []int{1, 2, 4, 8} {
		res, err := Run(nodes, params)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if res.Length != want {
			t.Errorf("%d nodes: LCS = %d, want %d", nodes, res.Length, want)
		}
	}
}

func TestRunProperty(t *testing.T) {
	// The simulated machine agrees with the reference DP for arbitrary
	// seeds and a node count that divides LenA.
	f := func(seed int64) bool {
		params := Params{LenA: 16, LenB: 24, Seed: seed}
		a, b := params.Strings()
		res, err := Run(4, params)
		if err != nil {
			return false
		}
		return res.Length == Reference(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupShape(t *testing.T) {
	// More nodes means fewer cycles on a fixed problem, with reasonable
	// efficiency at modest scale.
	params := Params{LenA: 64, LenB: 128, Seed: 3}
	c1, err := Run(1, params)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Run(8, params)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(c1.Cycles) / float64(c8.Cycles)
	if speedup < 3 {
		t.Errorf("8-node speedup = %.2f, want > 3", speedup)
	}
	t.Logf("8-node speedup on 64x128 = %.2f", speedup)
}

func TestThreadStatistics(t *testing.T) {
	// Table 4 shape: the NxtChar handler is invoked LenB times per node
	// (every message visits every node), message length 3.
	params := Params{LenA: 32, LenB: 40, Seed: 1}
	const nodes = 4
	res, err := Run(nodes, params)
	if err != nil {
		t.Fatal(err)
	}
	h := res.M.Stats.HandlerTotal(res.P.Entry(LNxtChar))
	wantInvocations := uint64(params.LenB * nodes)
	if h.Invocations != wantInvocations {
		t.Errorf("NxtChar invocations = %d, want %d", h.Invocations, wantInvocations)
	}
	if avg := float64(h.MsgWords) / float64(h.Invocations); avg != 3 {
		t.Errorf("NxtChar message length = %.1f, want 3", avg)
	}
	// Instructions per thread: prologue+epilogue plus ~12/char over 8
	// chars — tens of instructions.
	perThread := float64(h.Instrs) / float64(h.Invocations)
	if perThread < 40 || perThread > 200 {
		t.Errorf("NxtChar instr/thread = %.0f", perThread)
	}
}

func TestHandlerOverheadGrowsWithMachineSize(t *testing.T) {
	// The paper: handler entry/exit overhead grows from 9% (64 nodes)
	// to 33% (512) as blocks shrink. Verify the trend: cycles per
	// NxtChar thread shrink sublinearly as blocks shrink.
	params := Params{LenA: 64, LenB: 64, Seed: 2}
	r2, err := Run(2, params) // 32 chars/node
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(16, params) // 4 chars/node
	if err != nil {
		t.Fatal(err)
	}
	per2 := float64(r2.M.Stats.HandlerTotal(r2.P.Entry(LNxtChar)).Instrs) / float64(params.LenB*2)
	per16 := float64(r16.M.Stats.HandlerTotal(r16.P.Entry(LNxtChar)).Instrs) / float64(params.LenB*16)
	// 8x fewer chars per block must NOT give 8x fewer instructions —
	// the fixed prologue/epilogue dominates small blocks.
	if per2/per16 >= 8 {
		t.Errorf("no fixed overhead visible: %.1f vs %.1f instr/thread", per2, per16)
	}
	if per2 <= per16 {
		t.Errorf("larger blocks should mean longer threads: %.1f vs %.1f", per2, per16)
	}
}

func TestIdleAndBreakdown(t *testing.T) {
	params := Params{LenA: 64, LenB: 96, Seed: 5}
	res, err := Run(8, params)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.M.Stats.Breakdown()
	if bd[stats.CatComp] <= 0 {
		t.Error("no compute cycles attributed")
	}
	if bd[stats.CatIdle] <= 0 {
		t.Error("systolic skew should produce idle cycles")
	}
	sum := 0.0
	for _, v := range bd {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
}

func TestRunAtLargeMachines(t *testing.T) {
	params := Params{LenA: 128, LenB: 64, Seed: 9}
	a, b := params.Strings()
	want := Reference(a, b)
	for _, nodes := range []int{32, 128} {
		res, err := Run(nodes, params)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if res.Length != want {
			t.Errorf("%d nodes: LCS = %d, want %d", nodes, res.Length, want)
		}
	}
}
