// Package lcs implements the paper's Longest Common Subsequence
// macro-benchmark.
//
// One source string (A) is distributed evenly across the nodes; the other
// (B) is placed on node 0 and its characters are passed across the nodes
// in a systolic fashion, one character per 3-word message. Each message
// handler has a fixed prologue (indexing into the match state), a loop
// over the node's block of characters, and an epilogue that forwards the
// partial result — exactly the structure whose entry/exit overhead the
// paper shows growing from 9% to 33% as the machine scales from 64 to
// 512 nodes. The program is written directly in (simulated) assembly, as
// the original was.
//
// The single-node run of the same program serves as the sequential base
// case: with the whole of A on one node the per-message overhead is
// amortized over the full block and the code degenerates to the plain
// dynamic program.
package lcs

import (
	"fmt"
	"math/rand"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Application memory layout (word addresses in internal memory).
const (
	addrNext      = rt.AppBase + 0 // router address of the next node
	addrBlockLen  = rt.AppBase + 1 // characters of string A held here
	addrCarryPrev = rt.AppBase + 2 // L[i0-1][j-1] from the previous step
	addrMsgCount  = rt.AppBase + 3 // messages processed (last node only)
	addrLenB      = rt.AppBase + 4 // total characters of string B
	addrIsLast    = rt.AppBase + 5 // 1 on the last node
	addrResult    = rt.AppBase + 6 // final LCS length (node 0)
	addrBIdx      = rt.AppBase + 7 // driver progress through string B
	addrBBase     = rt.AppBase + 8 // address of string B (node 0)
	addrChars     = rt.AppBase + 16
	// col (the match column, blockLen words) follows chars; string B
	// follows col on node 0, spilling to external memory when large.
)

// Params sizes the problem. The paper studies LenA=1024, LenB=4096.
type Params struct {
	LenA, LenB int
	Seed       int64
	Alphabet   int // distinct characters (default 4)

	// Setup, when non-nil, runs after the runtime is attached and the
	// problem is loaded but before the machine starts — the hook where
	// cmd/jm-chaos attaches fault campaigns and resilience layers.
	Setup func(*machine.Machine, *rt.Runtime)
	// PreRun, when non-nil, runs after the start-up threads are queued,
	// immediately before the run loop — the hook where a checkpoint is
	// restored over the freshly built state. An error aborts the run.
	PreRun func(*machine.Machine) error
}

func (p Params) withDefaults() Params {
	if p.LenA == 0 {
		p.LenA = 1024
	}
	if p.LenB == 0 {
		p.LenB = 4096
	}
	if p.Alphabet == 0 {
		p.Alphabet = 4
	}
	return p
}

// Strings generates the two input strings deterministically from Seed.
func (p Params) Strings() (a, b []byte) {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed + 1))
	a = make([]byte, p.LenA)
	b = make([]byte, p.LenB)
	for i := range a {
		a[i] = byte(r.Intn(p.Alphabet))
	}
	for i := range b {
		b[i] = byte(r.Intn(p.Alphabet))
	}
	return a, b
}

// Reference computes the LCS length with the standard dynamic program.
func Reference(a, b []byte) int {
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for j := 1; j <= len(b); j++ {
		for i := 1; i <= len(a); i++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[i] = prev[i-1] + 1
			case cur[i-1] >= prev[i]:
				cur[i] = cur[i-1]
			default:
				cur[i] = prev[i]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}

// Thread-class labels (Table 4 rows).
const (
	LNxtChar = "lcs.nxtchar" // the dominant message handler ("NxtChar")
	LStartUp = "lcs.startup" // node 0's generator thread ("StartUp")
	LDone    = "lcs.done"
)

// BuildProgram assembles the LCS program plus the runtime library.
func BuildProgram() *asm.Program {
	b := asm.NewBuilder()

	// lcs.startup: node 0's background thread. It emits one 3-word
	// message per character of B — to itself, as in the paper — and
	// relies on background priority (runs only when the queues are
	// empty) for flow control: "these messages appear one at a time".
	b.Label(LStartUp).
		MoveI(isa.A0, addrBIdx).
		Move(isa.R2, asm.Mem(isa.A0, 0)). // j
		MoveI(isa.A1, addrLenB).
		Move(isa.R0, asm.R(isa.R2)).
		Ge(isa.R0, asm.Mem(isa.A1, 0)).
		Bt(isa.R0, "lcs.startup.done").
		MoveI(isa.A2, addrBBase).
		Move(isa.A1, asm.Mem(isa.A2, 0)).       // base of string B
		Move(isa.R1, asm.MemR(isa.A1, isa.R2)). // b_j
		Send(asm.R(isa.NNR)).                   // to self
		MoveHdr(isa.R0, LNxtChar, 3).
		Send(asm.R(isa.R0)).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.ZERO)). // carry into node 0 is always 0
		Add(isa.R2, asm.Imm(1)).
		MoveI(isa.A0, addrBIdx).
		St(isa.R2, asm.Mem(isa.A0, 0)).
		Br(LStartUp).
		Label("lcs.startup.done").
		Suspend()

	// lcs.nxtchar: [hdr, b_j, carry] — the systolic step.
	b.Label(LNxtChar).
		// Prologue: load state and swap the diagonal carry.
		MoveI(isa.A2, rt.AppBase).
		Move(isa.R2, asm.Mem(isa.A3, 1)). // b_j
		Move(isa.R0, asm.Mem(isa.A3, 2)). // left = L[i0-1][j]
		Move(isa.R1, asm.Mem(isa.A2, 2)). // diag = carryPrev
		St(isa.R0, asm.Mem(isa.A2, 2)).   // carryPrev = left
		MoveI(isa.A0, addrChars).
		Move(isa.A1, asm.Mem(isa.A2, 1)). // blockLen
		Add(isa.A1, asm.Imm(addrChars)).  // A1 = &col[0]
		Move(isa.A2, asm.Mem(isa.A2, 1)). // countdown
		Label("lcs.loop").
		Move(isa.R3, asm.R(isa.R2)).
		Eq(isa.R3, asm.Mem(isa.A0, 0)). // a_i == b_j?
		Bf(isa.R3, "lcs.nomatch").
		Move(isa.R3, asm.R(isa.R1)). // new = diag + 1
		Add(isa.R3, asm.Imm(1)).
		Br("lcs.store").
		Label("lcs.nomatch").
		Move(isa.R3, asm.R(isa.R0)). // new = max(left, up)
		Ge(isa.R3, asm.Mem(isa.A1, 0)).
		Bt(isa.R3, "lcs.useleft").
		Move(isa.R3, asm.Mem(isa.A1, 0)).
		Br("lcs.store").
		Label("lcs.useleft").
		Move(isa.R3, asm.R(isa.R0)).
		Label("lcs.store").
		Move(isa.R1, asm.Mem(isa.A1, 0)). // diag = old col[i]
		St(isa.R3, asm.Mem(isa.A1, 0)).   // col[i] = new
		Move(isa.R0, asm.R(isa.R3)).      // left = new
		Add(isa.A0, asm.Imm(1)).
		Add(isa.A1, asm.Imm(1)).
		Add(isa.A2, asm.Imm(-1)).
		Bt(isa.A2, "lcs.loop").
		// Epilogue: forward the partial result or finish.
		MoveI(isa.A2, rt.AppBase).
		Move(isa.R1, asm.Mem(isa.A2, 5)). // isLast
		Bt(isa.R1, "lcs.last").
		Send(asm.Mem(isa.A2, 0)). // next node
		MoveHdr(isa.R1, LNxtChar, 3).
		Send(asm.R(isa.R1)).
		Send(asm.R(isa.R2)).  // b_j travels on
		SendE(asm.R(isa.R0)). // carry = L[iend][j]
		Suspend().
		Label("lcs.last").
		Move(isa.R1, asm.Mem(isa.A2, 3)). // message count
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A2, 3)).
		Move(isa.R3, asm.R(isa.R1)).
		Lt(isa.R3, asm.Mem(isa.A2, 4)). // count < LenB?
		Bt(isa.R3, "lcs.out").
		// All of B processed: deliver the result to node 0.
		MoveI(isa.R1, 0).
		Wtag(isa.R1, asm.Imm(int32(word.TagNode))). // node (0,0,0)
		Send(asm.R(isa.R1)).
		MoveHdr(isa.R1, LDone, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.R0)).
		Label("lcs.out").
		Suspend()

	// lcs.done: [hdr, length] — record the answer and halt node 0.
	b.Label(LDone).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		MoveI(isa.A0, addrResult).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()

	rt.BuildLib(b)
	return b.MustAssemble()
}

// Result reports one run.
type Result struct {
	Length int
	Cycles int64
	M      *machine.Machine
	P      *asm.Program
}

// Run executes LCS on a machine of the given node count. LenA must be
// divisible by the node count.
func Run(nodes int, params Params) (Result, error) {
	params = params.withDefaults()
	if params.LenA%nodes != 0 {
		return Result{}, fmt.Errorf("lcs: LenA %d not divisible by %d nodes", params.LenA, nodes)
	}
	a, bs := params.Strings()
	block := params.LenA / nodes

	p := BuildProgram()
	cfg := machine.GridForNodes(nodes)
	m, err := machine.New(cfg, p)
	if err != nil {
		return Result{}, err
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())

	for id, n := range m.Nodes {
		mm := n.Mem
		next := (id + 1) % nodes
		load := func(addr int32, w word.Word) {
			if err := mm.Write(addr, w); err != nil {
				panic(err)
			}
		}
		load(addrNext, m.Net.NodeWord(next))
		load(addrBlockLen, word.Int(int32(block)))
		load(addrCarryPrev, word.Int(0))
		load(addrMsgCount, word.Int(0))
		load(addrLenB, word.Int(int32(params.LenB)))
		load(addrIsLast, word.Bool(id == nodes-1))
		load(addrBIdx, word.Int(0))
		for i := 0; i < block; i++ {
			load(addrChars+int32(i), word.Sym(int32(a[id*block+i])))
			load(addrChars+int32(block+i), word.Int(0)) // col
		}
		if id == 0 {
			bBase := addrChars + int32(2*block)
			if int(bBase)+params.LenB > mm.ImemWords() {
				bBase = int32(mm.ImemWords()) // spill B to external memory
			}
			load(addrBBase, word.Int(bBase))
			for j, c := range bs {
				load(bBase+int32(j), word.Sym(int32(c)))
			}
		}
	}

	if params.Setup != nil {
		params.Setup(m, r)
	}
	rt.StartNode(m, p, 0, LStartUp)
	if params.PreRun != nil {
		if err := params.PreRun(m); err != nil {
			return Result{M: m, P: p}, err
		}
	}
	// Budget: the DP is LenA×LenB steps at ~16 cycles, plus slack.
	budget := int64(params.LenA)*int64(params.LenB)*32/int64(nodes) + 5_000_000
	if err := m.RunUntilHalt(0, budget); err != nil {
		// Partial result: the machine is preserved so callers (the chaos
		// driver) can inspect where the run stood at the failure.
		return Result{Cycles: m.Cycle(), M: m, P: p}, err
	}
	res, _ := m.Nodes[0].Mem.Read(addrResult)
	return Result{Length: int(res.Data()), Cycles: m.Cycle(), M: m, P: p}, nil
}
