package engine_test

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
)

func haltProg() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").Halt()
	return b.MustAssemble()
}

func TestDefaultShards(t *testing.T) {
	if engine.DefaultShards() < 1 {
		t.Fatalf("DefaultShards() = %d", engine.DefaultShards())
	}
}

func TestAttachClamp(t *testing.T) {
	m := machine.MustNew(machine.GridForNodes(8), haltProg())
	eng := engine.Attach(m, 100)
	defer eng.Stop()
	if got := eng.Shards(); got != 8 {
		t.Errorf("Attach(m8, 100).Shards() = %d, want 8", got)
	}
}

func TestAttachSequentialNoOp(t *testing.T) {
	m := machine.MustNew(machine.GridForNodes(8), haltProg())
	eng := engine.Attach(m, 1)
	if got := eng.Shards(); got != 1 {
		t.Errorf("Attach(m, 1).Shards() = %d, want 1", got)
	}
	// Stop on the no-op engine, twice, and on a nil engine: all safe.
	eng.Stop()
	eng.Stop()
	var nilEng *engine.Engine
	nilEng.Stop()
	// The machine still steps sequentially.
	m.Nodes[0].StartBackground(0)
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
}

func TestStopRestoresSequential(t *testing.T) {
	m := machine.MustNew(machine.GridForNodes(8), haltProg())
	eng := engine.Attach(m, 4)
	if got := eng.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	m.StepN(3)
	eng.Stop()
	eng.Stop() // idempotent
	// After Stop the sequential loop owns the machine again.
	m.Nodes[0].StartBackground(0)
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRunsTrivialProgram(t *testing.T) {
	seq := machine.MustNew(machine.GridForNodes(8), haltProg())
	seq.Nodes[0].StartBackground(0)
	if err := seq.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}

	par := machine.MustNew(machine.GridForNodes(8), haltProg())
	eng := engine.Attach(par, 4)
	defer eng.Stop()
	par.Nodes[0].StartBackground(0)
	if err := par.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
	if seq.Cycle() != par.Cycle() || seq.StateDigest() != par.StateDigest() {
		t.Errorf("trivial program diverged: seq (cycle %d, %#x) vs par (cycle %d, %#x)",
			seq.Cycle(), seq.StateDigest(), par.Cycle(), par.StateDigest())
	}
}
