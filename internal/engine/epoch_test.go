package engine_test

// The epoch-batching contract: the engine's scheduling policy — epoch
// batching (the default), the eager variant that engages the fleet for
// any multi-shard activity, and the legacy per-cycle protocol — is
// purely a wall-clock knob. Every policy must produce byte-identical
// machine states on every workload, under chaos, across shard counts;
// only the rendezvous count may move, and on idle-dominated workloads
// it must drop by at least an order of magnitude. Mid-epoch
// checkpoints must restore reference-exact: a resumed run lands on the
// same digest an uninterrupted one reaches.

import (
	"path/filepath"
	"strings"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/trace"
)

// epCfg is one engine scheduling policy in the epoch sweep.
type epCfg struct {
	name string
	cfg  engine.Config
}

// epPolicies is the policy dimension: the legacy per-cycle protocol,
// epoch batching with the inline threshold disabled (every multi-shard
// cycle pays a rendezvous, but single-shard cycles still run inline),
// and the default epoch policy.
var epPolicies = []epCfg{
	{"percycle", engine.Config{PerCycle: true}},
	{"eager", engine.Config{ParallelWork: 1}},
	{"epoch", engine.Config{}},
}

// epochCampaignEquiv runs one campaign workload sequentially, then
// under every policy × shard count, requiring identical summaries.
func epochCampaignEquiv(t *testing.T, name string, run func(c epCfg, shards int) (*bench.CampaignResult, error)) {
	t.Helper()
	ref, err := run(epCfg{}, 0)
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}
	want := sumOf(ref)
	for _, c := range epPolicies {
		for _, k := range shardCounts {
			res, err := run(c, k)
			if err != nil {
				t.Fatalf("%s %s/shards-%d: %v", name, c.name, k, err)
			}
			if got := sumOf(res); got != want {
				t.Errorf("%s %s/shards-%d diverged:\n  seq: %+v\n  got: %+v",
					name, c.name, k, want, got)
			}
		}
	}
}

// TestEpochEquivPingChaos and ...BarrierChaos sweep the policy matrix
// with the chaos injector and the reliable-delivery runtime in the
// loop: freeze/thaw and retransmit actions unpark nodes out of band,
// which is exactly what the engine's WakeSeq invalidation must catch.
func TestEpochEquivPingChaos(t *testing.T) {
	camp := chaos.RandomCampaign(7, 8, 4000, 4)
	epochCampaignEquiv(t, camp.Name+"/ping", func(c epCfg, shards int) (*bench.CampaignResult, error) {
		return bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:        8,
			Checksum:     true,
			RTS:          true,
			Reliable:     true,
			Watchdog:     50_000,
			Budget:       300_000,
			Shards:       shards,
			PerCycle:     c.cfg.PerCycle,
			ParallelWork: c.cfg.ParallelWork,
		})
	})
}

func TestEpochEquivBarrierChaos(t *testing.T) {
	camp := chaos.RandomCampaign(8, 8, 4000, 3)
	epochCampaignEquiv(t, camp.Name+"/barrier", func(c epCfg, shards int) (*bench.CampaignResult, error) {
		return bench.BarrierCampaign(camp, bench.ResilienceConfig{
			Nodes:        8,
			Checksum:     true,
			RTS:          true,
			Reliable:     true,
			Watchdog:     50_000,
			Budget:       300_000,
			Shards:       shards,
			PerCycle:     c.cfg.PerCycle,
			ParallelWork: c.cfg.ParallelWork,
		}, 2)
	})
}

// epochSetup returns an app Setup hook attaching the engine under one
// policy, plus the stop function.
func epochSetup(c epCfg, shards int) (func(*machine.Machine, *rt.Runtime), func()) {
	var eng *engine.Engine
	setup := func(m *machine.Machine, _ *rt.Runtime) { eng = engine.AttachCfg(m, shards, c.cfg) }
	return setup, func() { eng.Stop() }
}

// epochAppEquiv runs one application through the policy × shards
// matrix against its sequential reference.
func epochAppEquiv(t *testing.T, name string, run func(c epCfg, shards int) (appOut, error)) {
	t.Helper()
	want, err := run(epCfg{}, 0)
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}
	for _, c := range epPolicies {
		for _, k := range shardCounts {
			got, err := run(c, k)
			if err != nil {
				t.Fatalf("%s %s/shards-%d: %v", name, c.name, k, err)
			}
			if got != want {
				t.Errorf("%s %s/shards-%d diverged:\n  seq: %+v\n  got: %+v",
					name, c.name, k, want, got)
			}
		}
	}
}

func TestEpochEquivLCS(t *testing.T) {
	epochAppEquiv(t, "lcs", func(c epCfg, shards int) (appOut, error) {
		p := lcs.Params{LenA: 32, LenB: 48, Seed: 3}
		var stop func()
		if shards > 0 {
			p.Setup, stop = epochSetup(c, shards)
			defer stop()
		}
		r, err := lcs.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Length), 0},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEpochEquivRadix(t *testing.T) {
	// radix's scatter phase runs the machine-wide unpark path
	// (RunWhile re-entry) that the epoch cache must observe.
	epochAppEquiv(t, "radix", func(c epCfg, shards int) (appOut, error) {
		p := radix.Params{Keys: 128, Bits: 12, Seed: 3}
		var stop func()
		if shards > 0 {
			p.Setup, stop = epochSetup(c, shards)
			defer stop()
		}
		r, err := radix.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		var sum int64
		for i, v := range r.Sorted {
			sum += int64(i+1) * int64(v)
		}
		return appOut{
			vals:   [2]int64{sum, int64(len(r.Sorted))},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEpochEquivNQueens(t *testing.T) {
	epochAppEquiv(t, "nqueens", func(c epCfg, shards int) (appOut, error) {
		p := nqueens.Params{N: 5, SplitDepth: 2}
		var stop func()
		if shards > 0 {
			p.Setup, stop = epochSetup(c, shards)
			defer stop()
		}
		r, err := nqueens.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Solutions), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEpochEquivTSP(t *testing.T) {
	epochAppEquiv(t, "tsp", func(c epCfg, shards int) (appOut, error) {
		p := tsp.Params{Cities: 6, Seed: 3}
		var stop func()
		if shards > 0 {
			p.Setup, stop = epochSetup(c, shards)
			defer stop()
		}
		r, err := tsp.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Best), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

// TestRendezvousReduction pins the acceptance floor: on the idle token
// ring and the pingpong, epoch batching must cut the rendezvous count
// at least 10x against the per-cycle protocol at the same digest. The
// probe is fully deterministic (counts are functions of simulated
// state only) and itself fails on any digest mismatch.
func TestRendezvousReduction(t *testing.T) {
	results, err := bench.RendezvousProbe(64, 4, 4, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.DigestsMatch {
			t.Errorf("%s: per-cycle and epoch digests differ", r.Workload)
		}
		if r.Epoch != 0 && r.Reduction < 10 {
			t.Errorf("%s: rendezvous reduction %.1fx below the 10x floor (per-cycle %d, epoch %d)",
				r.Workload, r.Reduction, r.PerCycle, r.Epoch)
		}
		if r.PerCycle == 0 {
			t.Errorf("%s: per-cycle run reported zero rendezvous", r.Workload)
		}
	}
}

// TestMidEpochCkptResume proves checkpoints taken inside an epoch (the
// ping is idle-dominated, so under the default policy its whole run is
// a handful of epochs) restore reference-exact: the writing run, the
// resumed run, and the sequential reference all land on one summary.
func TestMidEpochCkptResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	run := func(shards int, ckpt string, resume bool) (*bench.CampaignResult, error) {
		return bench.PingCampaign(chaos.Campaign{Name: "quiet"}, bench.ResilienceConfig{
			Nodes:     8,
			Watchdog:  50_000,
			Budget:    300_000,
			Shards:    shards,
			Ckpt:      ckpt,
			CkptEvery: 64,
			Resume:    resume,
		})
	}
	ref, err := run(0, "", false)
	if err != nil {
		t.Fatal(err)
	}
	want := sumOf(ref)
	wrote, err := run(4, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumOf(wrote); got != want {
		t.Errorf("checkpoint-writing epoch run diverged:\n  seq: %+v\n  got: %+v", want, got)
	}
	resumed, err := run(4, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumOf(resumed); got != want {
		t.Errorf("resumed epoch run diverged:\n  seq: %+v\n  got: %+v", want, got)
	}
}

// TestWorkerPanicRecovery forces a panic on a worker goroutine's slab
// (the observer tap fires during the node phase) and requires the
// engine to re-raise it on the coordinator with the shard attributed,
// rather than deadlocking the barrier.
func TestWorkerPanicRecovery(t *testing.T) {
	m := machine.MustNew(machine.GridForNodes(8), haltProg())
	eng := engine.AttachCfg(m, 4, engine.Config{PerCycle: true})
	defer eng.Stop()
	last := m.NumNodes() - 1 // in shard 3's slab, stepped by worker 3
	m.Nodes[last].StartBackground(0)
	m.Nodes[last].Watch = func(trace.Event) { panic("tap boom") }
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was not re-raised on the coordinator")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "shard 3") || !strings.Contains(msg, "tap boom") {
			t.Errorf("re-raised panic %v does not attribute shard 3 / original message", r)
		}
	}()
	m.StepN(10)
	t.Fatal("StepN returned despite a worker panic")
}
