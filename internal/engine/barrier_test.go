package engine

// White-box tests for the sense-reversing spin barrier: the abandon
// path is the engine's only defence against a panicking shard wedging
// the other workers, so it gets direct coverage here in addition to
// the end-to-end panic test in epoch_test.go.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpinBarrierRounds drives several goroutines through repeated
// waits: every round must release all parties exactly once.
func TestSpinBarrierRounds(t *testing.T) {
	const n, rounds = 4, 50
	var b spinBarrier
	b.init(n)
	var passed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.wait()
				passed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := passed.Load(); got != n*rounds {
		t.Fatalf("passed %d waits, want %d", got, n*rounds)
	}
}

// TestSpinBarrierAbandon blocks n-1 waiters, abandons the barrier from
// the party that would have completed it, and requires every waiter —
// current and future — to return instead of spinning forever.
func TestSpinBarrierAbandon(t *testing.T) {
	const n = 4
	var b spinBarrier
	b.init(n)
	released := make(chan struct{}, n)
	for w := 0; w < n-1; w++ {
		go func() {
			b.wait()
			released <- struct{}{}
		}()
	}
	// Give the waiters time to block: none may pass before abandon.
	select {
	case <-released:
		t.Fatal("a waiter passed an incomplete barrier")
	case <-time.After(10 * time.Millisecond):
	}
	b.abandon()
	for w := 0; w < n-1; w++ {
		select {
		case <-released:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter still blocked after abandon")
		}
	}
	// A dead barrier must never block again (workers unwind through
	// their remaining phase waits after a shard panics).
	done := make(chan struct{})
	go func() {
		b.wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait blocked on an abandoned barrier")
	}
}
