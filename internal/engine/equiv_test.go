package engine_test

// The determinism contract: a machine stepped by the parallel engine
// must be byte-identical to the sequential reference loop, cycle for
// cycle. The tests here run the same workload with Shards=0 (the
// reference) and a spread of shard counts, and compare cycle counts,
// workload results, network statistics, and the full machine state
// digest (machine.StateDigest folds every router buffer, memory word,
// queue, and counter). Any divergence — a reordered hook, a phit that
// crossed a shard boundary a cycle early — shows up as a digest
// mismatch.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/network"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
)

// shardCounts is the sweep required by the equivalence contract; 1 is
// the engine's no-op form, 7 deliberately mis-divides an 8-node mesh.
var shardCounts = []int{1, 2, 4, 7}

// runSum is a comparable summary of a campaign run.
type runSum struct {
	completed bool
	errStr    string
	cycles    int64
	value     int64
	trips     uint64
	net       network.Stats
	digest    uint64
}

func sumOf(r *bench.CampaignResult) runSum {
	s := runSum{
		completed: r.Completed,
		cycles:    r.Cycles,
		value:     r.Value,
		trips:     r.WatchdogTrips,
		net:       r.Net,
		digest:    r.StateDigest,
	}
	if r.Err != nil {
		s.errStr = r.Err.Error()
	}
	return s
}

// campaignEquiv runs one campaign workload sequentially and under every
// shard count and requires identical summaries.
func campaignEquiv(t *testing.T, name string, run func(shards int) (*bench.CampaignResult, error)) {
	t.Helper()
	ref, err := run(0)
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}
	want := sumOf(ref)
	for _, k := range shardCounts {
		res, err := run(k)
		if err != nil {
			t.Fatalf("%s shards=%d: %v", name, k, err)
		}
		if got := sumOf(res); got != want {
			t.Errorf("%s shards=%d diverged:\n  seq: %+v\n  par: %+v", name, k, want, got)
		}
	}
}

// TestEquivPingChaos runs the ping campaign under three seeded random
// fault schedules with the full resilience stack on. This is both the
// micro-benchmark equivalence check and the chaos-campaign one: the
// injector's stalls, freezes, corruptions and the reliable-delivery
// retransmissions must all land on the same cycles under sharding.
func TestEquivPingChaos(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		camp := chaos.RandomCampaign(seed, 8, 4000, 4)
		run := func(shards int) (*bench.CampaignResult, error) {
			return bench.PingCampaign(camp, bench.ResilienceConfig{
				Nodes:    8,
				Checksum: true,
				RTS:      true,
				Reliable: true,
				Watchdog: 50_000,
				Budget:   300_000,
				Shards:   shards,
			})
		}
		campaignEquiv(t, camp.Name+"/ping", run)
	}
}

// TestEquivBarrierChaos is the barrier analogue of TestEquivPingChaos.
func TestEquivBarrierChaos(t *testing.T) {
	for _, seed := range []uint64{4, 5, 6} {
		camp := chaos.RandomCampaign(seed, 8, 4000, 3)
		run := func(shards int) (*bench.CampaignResult, error) {
			return bench.BarrierCampaign(camp, bench.ResilienceConfig{
				Nodes:    8,
				Checksum: true,
				RTS:      true,
				Reliable: true,
				Watchdog: 50_000,
				Budget:   300_000,
				Shards:   shards,
			}, 2)
		}
		campaignEquiv(t, camp.Name+"/barrier", run)
	}
}

// TestEquivNoProgress wedges the ping: the checksum drops the
// corrupted request and nothing retransmits it, so the client suspends
// forever. The watchdog must trip on the same cycle with the same
// diagnostic under every shard count.
func TestEquivNoProgress(t *testing.T) {
	camp := chaos.Campaign{Name: "corrupt-wedge", Events: []chaos.Event{
		{Kind: chaos.CorruptMsg, Cycle: 1, Node: 0, Word: 1},
	}}
	run := func(shards int) (*bench.CampaignResult, error) {
		return bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:    8,
			Checksum: true,
			Watchdog: 5_000,
			Budget:   200_000,
			Shards:   shards,
		})
	}
	ref, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	var np machine.ErrNoProgress
	if !errors.As(ref.Err, &np) {
		t.Fatalf("sequential run did not wedge: err=%v", ref.Err)
	}
	campaignEquiv(t, "corrupt-wedge/ping", run)
}

// appOut is a comparable summary of an application run.
type appOut struct {
	vals   [2]int64
	cycles int64
	digest uint64
}

// engineSetup returns an app Setup hook that attaches the parallel
// engine, plus the matching stop function (nil-safe when the hook
// never ran or the count degenerated to sequential).
func engineSetup(shards int) (func(*machine.Machine, *rt.Runtime), func()) {
	var eng *engine.Engine
	setup := func(m *machine.Machine, _ *rt.Runtime) { eng = engine.Attach(m, shards) }
	stop := func() { eng.Stop() }
	return setup, stop
}

// appEquiv runs one application sequentially and under every shard
// count and requires identical results and machine digests.
func appEquiv(t *testing.T, name string, run func(shards int) (appOut, error)) {
	t.Helper()
	want, err := run(0)
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}
	for _, k := range shardCounts {
		got, err := run(k)
		if err != nil {
			t.Fatalf("%s shards=%d: %v", name, k, err)
		}
		if got != want {
			t.Errorf("%s shards=%d diverged:\n  seq: %+v\n  par: %+v", name, k, want, got)
		}
	}
}

func TestEquivLCS(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		appEquiv(t, "lcs", func(shards int) (appOut, error) {
			p := lcs.Params{LenA: 32, LenB: 48, Seed: seed}
			var stop func()
			if shards > 0 {
				p.Setup, stop = engineSetup(shards)
				defer stop()
			}
			r, err := lcs.Run(8, p)
			if err != nil {
				return appOut{}, err
			}
			return appOut{
				vals:   [2]int64{int64(r.Length), 0},
				cycles: r.Cycles,
				digest: r.M.StateDigest(),
			}, nil
		})
	}
}

func TestEquivRadix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		appEquiv(t, "radix", func(shards int) (appOut, error) {
			p := radix.Params{Keys: 128, Bits: 12, Seed: seed}
			var stop func()
			if shards > 0 {
				p.Setup, stop = engineSetup(shards)
				defer stop()
			}
			r, err := radix.Run(8, p)
			if err != nil {
				return appOut{}, err
			}
			var sum int64
			for i, v := range r.Sorted {
				sum += int64(i+1) * int64(v)
			}
			return appOut{
				vals:   [2]int64{sum, int64(len(r.Sorted))},
				cycles: r.Cycles,
				digest: r.M.StateDigest(),
			}, nil
		})
	}
}

func TestEquivNQueens(t *testing.T) {
	// nqueens is deterministic with no seed parameter; vary the board
	// and split depth instead.
	cases := []nqueens.Params{
		{N: 5, SplitDepth: 1},
		{N: 5, SplitDepth: 2},
		{N: 6, SplitDepth: 2},
	}
	for _, base := range cases {
		base := base
		appEquiv(t, "nqueens", func(shards int) (appOut, error) {
			p := base
			var stop func()
			if shards > 0 {
				p.Setup, stop = engineSetup(shards)
				defer stop()
			}
			r, err := nqueens.Run(8, p)
			if err != nil {
				return appOut{}, err
			}
			return appOut{
				vals:   [2]int64{int64(r.Solutions), int64(r.Tasks)},
				cycles: r.Cycles,
				digest: r.M.StateDigest(),
			}, nil
		})
	}
}

// --- observability equivalence -------------------------------------
//
// The observability layer (internal/obs) is a pure tap: attaching it
// must leave machine.StateDigest() byte-identical to an unobserved run,
// and the exported timeline/metrics must themselves be byte-identical
// across shard counts. These tests run each workload unobserved and
// sequential as the reference, then observed — at the default sampling
// period and sampling every cycle — under the full shard sweep.

// obsEvery lists the sampling periods the equivalence sweep covers:
// the default period and the worst case of sampling every cycle.
func obsEvery() []int {
	if testing.Short() {
		return []int{64}
	}
	return []int{64, 1}
}

// obsFiles is the observed-run output captured for byte comparison.
type obsFiles struct {
	perfetto []byte
	metrics  []byte
}

func newObsOptions(t *testing.T, every int) (*obs.Options, func() obsFiles) {
	t.Helper()
	dir := t.TempDir()
	o := &obs.Options{
		PerfettoPath: filepath.Join(dir, "t.json"),
		MetricsPath:  filepath.Join(dir, "m.jsonl"),
		Every:        every,
	}
	read := func() obsFiles {
		pb, err := os.ReadFile(o.PerfettoPath)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(o.MetricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return obsFiles{perfetto: pb, metrics: mb}
	}
	return o, read
}

// obsEquivCampaign checks one campaign workload: observed runs must
// match the unobserved sequential reference exactly, and the exported
// files must not depend on the shard count.
func obsEquivCampaign(t *testing.T, name string, run func(shards int, o *obs.Options) (*bench.CampaignResult, error)) {
	t.Helper()
	ref, err := run(0, nil)
	if err != nil {
		t.Fatalf("%s: unobserved sequential run: %v", name, err)
	}
	want := sumOf(ref)
	for _, every := range obsEvery() {
		var ref obsFiles
		for _, k := range append([]int{0}, shardCounts...) {
			o, read := newObsOptions(t, every)
			res, err := run(k, o)
			if err != nil {
				t.Fatalf("%s shards=%d every=%d: %v", name, k, every, err)
			}
			if got := sumOf(res); got != want {
				t.Errorf("%s shards=%d every=%d: observed run diverged from unobserved reference:\n  ref: %+v\n  got: %+v",
					name, k, every, want, got)
			}
			files := read()
			if ref.perfetto == nil {
				ref = files
				continue
			}
			if !bytes.Equal(files.perfetto, ref.perfetto) {
				t.Errorf("%s shards=%d every=%d: timeline bytes differ from sequential", name, k, every)
			}
			if !bytes.Equal(files.metrics, ref.metrics) {
				t.Errorf("%s shards=%d every=%d: metrics bytes differ from sequential", name, k, every)
			}
		}
	}
}

// TestEquivObservedPing exercises the full event surface — chaos
// faults, checksum drops, retransmissions — with the recorder on.
func TestEquivObservedPing(t *testing.T) {
	camp := chaos.RandomCampaign(1, 8, 4000, 4)
	obsEquivCampaign(t, "obs/ping", func(shards int, o *obs.Options) (*bench.CampaignResult, error) {
		return bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:    8,
			Checksum: true,
			RTS:      true,
			Reliable: true,
			Watchdog: 50_000,
			Budget:   300_000,
			Shards:   shards,
			Obs:      o,
		})
	})
}

func TestEquivObservedBarrier(t *testing.T) {
	obsEquivCampaign(t, "obs/barrier", func(shards int, o *obs.Options) (*bench.CampaignResult, error) {
		return bench.BarrierCampaign(chaos.Campaign{}, bench.ResilienceConfig{
			Nodes:  8,
			Budget: 300_000,
			Shards: shards,
			Obs:    o,
		}, 2)
	})
}

// TestEquivObservedLCS covers the application path, where the recorder
// and engine attach through the app's Setup hook.
func TestEquivObservedLCS(t *testing.T) {
	base := lcs.Params{LenA: 32, LenB: 48, Seed: 1}
	refRun, err := lcs.Run(8, base)
	if err != nil {
		t.Fatal(err)
	}
	want := appOut{
		vals:   [2]int64{int64(refRun.Length), 0},
		cycles: refRun.Cycles,
		digest: refRun.M.StateDigest(),
	}
	for _, every := range obsEvery() {
		var ref obsFiles
		for _, k := range append([]int{0}, shardCounts...) {
			o, read := newObsOptions(t, every)
			var stopObs func() error
			var eng *engine.Engine
			p := base
			p.Setup = func(m *machine.Machine, _ *rt.Runtime) {
				stopObs = o.AttachTo(m)
				if k > 0 {
					eng = engine.Attach(m, k)
				}
			}
			r, err := lcs.Run(8, p)
			eng.Stop()
			if cerr := stopObs(); cerr != nil {
				t.Fatalf("lcs shards=%d every=%d: obs close: %v", k, every, cerr)
			}
			if err != nil {
				t.Fatalf("lcs shards=%d every=%d: %v", k, every, err)
			}
			got := appOut{
				vals:   [2]int64{int64(r.Length), 0},
				cycles: r.Cycles,
				digest: r.M.StateDigest(),
			}
			if got != want {
				t.Errorf("lcs shards=%d every=%d: observed run diverged:\n  ref: %+v\n  got: %+v",
					k, every, want, got)
			}
			files := read()
			if ref.perfetto == nil {
				ref = files
				continue
			}
			if !bytes.Equal(files.perfetto, ref.perfetto) {
				t.Errorf("lcs shards=%d every=%d: timeline bytes differ from sequential", k, every)
			}
			if !bytes.Equal(files.metrics, ref.metrics) {
				t.Errorf("lcs shards=%d every=%d: metrics bytes differ from sequential", k, every)
			}
		}
	}
}

func TestEquivTSP(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		appEquiv(t, "tsp", func(shards int) (appOut, error) {
			p := tsp.Params{Cities: 6, Seed: seed}
			var stop func()
			if shards > 0 {
				p.Setup, stop = engineSetup(shards)
				defer stop()
			}
			r, err := tsp.Run(8, p)
			if err != nil {
				return appOut{}, err
			}
			return appOut{
				vals:   [2]int64{int64(r.Best), int64(r.Tasks)},
				cycles: r.Cycles,
				digest: r.M.StateDigest(),
			}, nil
		})
	}
}
