// Package engine runs a machine's cycle loop in parallel by spatially
// sharding the 3-D mesh across host goroutines.
//
// Each shard owns a contiguous slab of node ids — their routers,
// processors, memories, and queues — and steps them concurrently with
// the other shards. The J-Machine's mesh has a conservative lookahead
// of one cycle (a phit injected at cycle t cannot reach a neighbouring
// router before t+1), so shards only need to exchange boundary phits
// and cross-shard hook events at a per-cycle rendezvous, and the
// result is byte-identical to the sequential reference loop: same
// cycle counts, same statistics, same watchdog and chaos behaviour.
// See docs/ENGINE.md for the determinism argument and the phase
// protocol.
//
// Usage:
//
//	eng := engine.Attach(m, shards) // replaces m's cycle stepper
//	defer eng.Stop()                // release the worker goroutines
//	m.RunUntilHalt(0, budget)       // all run loops work unchanged
package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"jmachine/internal/machine"
	"jmachine/internal/network"
)

// DefaultShards returns the shard count used when a caller passes 0:
// GOMAXPROCS, the number of OS threads Go will actually run.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// Engine steps a machine with one goroutine per shard. The goroutine
// calling Machine.Step acts as shard 0's worker and coordinates the
// per-cycle phases; shards 1..n-1 run on persistent workers that park
// between cycles.
type Engine struct {
	m  *machine.Machine
	sr *network.ShardRun

	start   []chan struct{} // per-worker cycle release, workers 1..n-1
	done    chan struct{}   // one token per finished worker per cycle
	quit    chan struct{}
	bar     spinBarrier
	panics  []atomic.Value // per-shard panic capture
	stopped bool

	// skipNet, decided by the coordinator each cycle before the workers
	// are released (the release channel send publishes it), elides the
	// network phases while the mesh is empty: stepping an empty mesh
	// touches nothing, so snapshot/step/commit and their barriers are
	// pure overhead. Shares the machine's event-horizon gate so a
	// reference-mode machine keeps the full phase protocol.
	skipNet bool
}

// Attach partitions m across shards goroutines and installs the
// parallel stepper. shards <= 0 selects DefaultShards(); the count is
// clamped to the node count. With an effective count of 1 no stepper
// is installed and the machine keeps its sequential loop — the
// returned Engine is then a no-op whose Stop still works, so callers
// need no special casing.
func Attach(m *machine.Machine, shards int) *Engine {
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards > m.NumNodes() {
		shards = m.NumNodes()
	}
	if shards <= 1 {
		return &Engine{m: m}
	}
	e := &Engine{
		m:      m,
		sr:     network.NewShardRun(m.Net, shards),
		done:   make(chan struct{}, shards),
		quit:   make(chan struct{}),
		panics: make([]atomic.Value, shards),
	}
	n := e.sr.Shards()
	e.bar.init(n)
	e.start = make([]chan struct{}, n)
	for w := 1; w < n; w++ {
		e.start[w] = make(chan struct{}, 1)
		go e.worker(w)
	}
	m.SetStepper(e)
	return e
}

// Shards returns the effective shard count (1 = sequential).
func (e *Engine) Shards() int {
	if e.sr == nil {
		return 1
	}
	return e.sr.Shards()
}

// Stop restores the machine's sequential stepper and releases the
// worker goroutines. Safe to call once the run loops have returned;
// idempotent and nil-safe (a sequential run may never have built an
// engine).
func (e *Engine) Stop() {
	if e == nil || e.sr == nil || e.stopped {
		return
	}
	e.stopped = true
	e.m.SetStepper(nil)
	close(e.quit)
}

// StepCycle advances network and nodes one cycle. The machine has
// already advanced its cycle counter and run the cycle hooks (chaos
// injection, reliable-delivery timers) on this goroutine.
func (e *Engine) StepCycle(m *machine.Machine) {
	if e.sr == nil {
		panic("engine: StepCycle on a stopped or sequential engine")
	}
	e.sr.Begin()
	e.skipNet = m.FastPathActive() && m.Net.Quiet()
	if e.skipNet {
		// The mesh is provably empty and its phases are elided, so the
		// quiet certification for the compiled tier's fusion rule is
		// made here, before the workers are released (the release send
		// publishes it).
		m.PublishNetQuiet()
	}
	n := e.sr.Shards()
	for w := 1; w < n; w++ {
		e.start[w] <- struct{}{}
	}
	e.runShard(0)
	for w := 1; w < n; w++ {
		<-e.done
	}
	for s := 0; s < n; s++ {
		if p := e.panics[s].Load(); p != nil {
			panic(p)
		}
	}
}

// worker parks between cycles and steps one shard per release.
func (e *Engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.runShard(s)
			e.done <- struct{}{}
		}
	}
}

// runShard drives shard s through one cycle's phases. A panic inside
// a phase (a routing bug, a program fault) is captured and re-raised
// on the coordinator; the worker still reaches every barrier so the
// other shards do not deadlock.
func (e *Engine) runShard(s int) {
	defer func() {
		if r := recover(); r != nil {
			e.panics[s].Store(fmt.Sprintf("engine: shard %d: %v", s, r))
			// The stepping goroutines are barrier-synchronized; after
			// a panic this shard's remaining phases are skipped, so
			// release the others rather than wedging them.
			e.bar.abandon()
		}
	}()
	if !e.skipNet {
		// Phase 1: freeze boundary input-buffer occupancies.
		e.sr.Snapshot(s)
		e.bar.wait()
		// Phase 2: step this slab's routers, staging boundary crossings.
		e.sr.StepShard(s)
		e.bar.wait()
		// Phase 3: one goroutine lands staged phits and replays hooks,
		// then certifies (or not) network quiescence for the compiled
		// tier — the same deterministic point the sequential loop uses,
		// published to the other shards by the phase barrier.
		if s == 0 {
			e.sr.Commit()
			e.m.PublishNetQuiet()
		}
		e.bar.wait()
	}
	// Phase 4: step this slab's processors (active-set aware).
	lo, hi := e.sr.NodeRange(s)
	e.m.StepNodeRange(lo, hi)
}

// spinBarrier is a sense-reversing barrier over atomics: cheap on
// multicore (short spins between phases that are microseconds apart),
// and still correct on a single hardware thread thanks to the
// runtime.Gosched fallback. The atomics also give the race detector
// the happens-before edges that make the phase protocol checkable.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
	dead  atomic.Bool
}

func (b *spinBarrier) init(n int) {
	b.n = int32(n)
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if b.dead.Load() {
			return
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// abandon releases all current and future waiters after a shard
// panics, converting a would-be deadlock into an orderly shutdown.
func (b *spinBarrier) abandon() {
	b.dead.Store(true)
	b.gen.Add(1)
}
