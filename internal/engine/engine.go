// Package engine runs a machine's cycle loop in parallel by spatially
// sharding the 3-D mesh across host goroutines.
//
// Each shard owns a contiguous slab of node ids — their routers,
// processors, memories, and queues — and steps them concurrently with
// the other shards. The J-Machine's mesh has a conservative lookahead
// of one cycle (a phit injected at cycle t cannot reach a neighbouring
// router before t+1), so shards only need to exchange boundary phits
// and cross-shard hook events at a per-cycle rendezvous, and the
// result is byte-identical to the sequential reference loop: same
// cycle counts, same statistics, same watchdog and chaos behaviour.
//
// Cycles are epoch-batched: the engine tracks per-shard activity — the
// network's phit/outbox load ledger (ShardRun.Load), live node counts
// and parked wake times from the event-horizon scheduler — and while
// the machine's work is localized or small, the coordinator steps just
// the active slabs inline through the same staged phase protocol,
// touching no barrier at all. The worker fleet (one rendezvous per
// cycle) is engaged only when at least two shards are active and the
// total work clears Config.ParallelWork. An epoch is a maximal run of
// barrier-free inline cycles; on mostly-idle meshes (a token ring, a
// pingpong pair) epochs span the whole run and the rendezvous count
// drops to ~0. See docs/ENGINE.md for the determinism argument and
// the phase protocol.
//
// Usage:
//
//	eng := engine.Attach(m, shards) // replaces m's cycle stepper
//	defer eng.Stop()                // release the worker goroutines
//	m.RunUntilHalt(0, budget)       // all run loops work unchanged
package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"jmachine/internal/machine"
	"jmachine/internal/network"
)

// DefaultShards returns the shard count used when a caller passes 0:
// GOMAXPROCS, the number of OS threads Go will actually run.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// DefaultParallelWork is the work estimate (live nodes + buffered
// phits + queued outbox messages) above which a multi-shard cycle is
// worth a worker rendezvous. Below it the coordinator steps the active
// slabs inline: a three-barrier rendezvous costs on the order of a few
// dozen node steps, so tiny cycles are cheaper single-threaded.
const DefaultParallelWork = 64

// Config tunes the engine's scheduling policy. The zero value selects
// epoch batching with the default threshold. Every knob is a pure
// function of simulated state, so digests and statistics are identical
// across settings — only wall-clock time and the rendezvous count move.
type Config struct {
	// PerCycle forces the legacy protocol: every cycle engages the
	// worker fleet, barriers included. The probes use it to measure the
	// rendezvous reduction; it is also the clearest setting under the
	// race detector.
	PerCycle bool
	// ParallelWork overrides DefaultParallelWork (0 keeps the default).
	// Tests set it to 1 to force the parallel path on small meshes.
	ParallelWork int
}

// Engine steps a machine with one goroutine per shard. The goroutine
// calling Machine.Step acts as shard 0's worker and coordinates the
// per-cycle phases; shards 1..n-1 run on persistent workers that park
// between cycles.
type Engine struct {
	m   *machine.Machine
	sr  *network.ShardRun
	cfg Config

	start   []chan struct{} // per-worker cycle release, workers 1..n-1
	done    chan struct{}   // one token per finished worker per cycle
	quit    chan struct{}
	bar     spinBarrier
	panics  []atomic.Value // per-shard panic capture
	stopped bool

	// skipNet, decided by the coordinator each cycle before the workers
	// are released (the release channel send publishes it), elides the
	// network phases while the mesh is empty: stepping an empty mesh
	// touches nothing, so snapshot/step/commit and their barriers are
	// pure overhead. Shares the machine's event-horizon gate so a
	// reference-mode machine keeps the full phase protocol.
	skipNet bool

	// Per-shard activity cache for epoch batching. live and minWake
	// come from the node-phase sweep (StepNodeRangeInfo) of whichever
	// cycle last stepped the shard — each worker writes only its own
	// slot, ordered before the coordinator's read by the done-channel
	// drain. seq is the machine WakeSeq generation the cache reflects;
	// when the machine reports out-of-band changes (host injection,
	// chaos, restore) the cache is rebuilt from NodeActivity and the
	// network ledger is rescanned.
	live     []int
	minWake  []int64
	isActive []bool
	active   []int // scratch: this cycle's active shard ids
	seq      uint64
	scanned  bool

	// rendezvous counts the cycles that engaged the worker fleet. It is
	// a pure function of simulated state, shard count, and Config —
	// never of host speed or core count — so probe runs can compare it
	// across machines.
	rendezvous int64
}

// Attach partitions m across shards goroutines and installs the
// parallel stepper with the default (epoch-batched) policy. shards <= 0
// selects DefaultShards(); the count is clamped to the node count. With
// an effective count of 1 no stepper is installed and the machine keeps
// its sequential loop — the returned Engine is then a no-op whose Stop
// still works, so callers need no special casing.
func Attach(m *machine.Machine, shards int) *Engine {
	return AttachCfg(m, shards, Config{})
}

// AttachCfg is Attach with an explicit scheduling policy.
func AttachCfg(m *machine.Machine, shards int, cfg Config) *Engine {
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards > m.NumNodes() {
		shards = m.NumNodes()
	}
	if cfg.ParallelWork <= 0 {
		cfg.ParallelWork = DefaultParallelWork
	}
	if shards <= 1 {
		return &Engine{m: m, cfg: cfg}
	}
	e := &Engine{
		m:      m,
		sr:     network.NewShardRun(m.Net, shards),
		cfg:    cfg,
		done:   make(chan struct{}, shards),
		quit:   make(chan struct{}),
		panics: make([]atomic.Value, shards),
	}
	n := e.sr.Shards()
	e.bar.init(n)
	e.start = make([]chan struct{}, n)
	e.live = make([]int, n)
	e.minWake = make([]int64, n)
	e.isActive = make([]bool, n)
	e.active = make([]int, 0, n)
	for w := 1; w < n; w++ {
		e.start[w] = make(chan struct{}, 1)
		go e.worker(w)
	}
	m.SetStepper(e)
	return e
}

// Shards returns the effective shard count (1 = sequential).
func (e *Engine) Shards() int {
	if e.sr == nil {
		return 1
	}
	return e.sr.Shards()
}

// Rendezvous returns how many cycles have engaged the worker-fleet
// barrier protocol since Attach. Under the epoch policy inline cycles
// cost none; under PerCycle every cycle counts one. The value depends
// only on simulated state, the shard count, and Config — never on host
// speed or core count — so it is comparable across machines and is the
// probe suite's measure of synchronization cost. Nil-safe; a
// sequential engine reports 0.
func (e *Engine) Rendezvous() int64 {
	if e == nil {
		return 0
	}
	return e.rendezvous
}

// Stop restores the machine's sequential stepper and releases the
// worker goroutines. Safe to call once the run loops have returned;
// idempotent and nil-safe (a sequential run may never have built an
// engine).
func (e *Engine) Stop() {
	if e == nil || e.sr == nil || e.stopped {
		return
	}
	e.stopped = true
	e.m.SetStepper(nil)
	e.sr.Close()
	close(e.quit)
}

// StepCycle advances network and nodes one cycle. The machine has
// already advanced its cycle counter and run the cycle hooks (chaos
// injection, reliable-delivery timers) on this goroutine.
func (e *Engine) StepCycle(m *machine.Machine) {
	if e.sr == nil {
		panic("engine: StepCycle on a stopped or sequential engine")
	}
	if e.cfg.PerCycle {
		e.stepParallel(m)
		return
	}
	if !e.scanned || m.WakeSeq() != e.seq {
		e.rescan(m)
	}
	// Classify shard activity for this cycle. A shard is active iff its
	// network ledger shows buffered phits or queued outbox messages, or
	// its slab has live (unparked or wake-pending) nodes, or a parked
	// node's wake cycle has come due. An inactive shard's network phase
	// and node phase are both no-ops, so skipping it is exact.
	cyc := m.Cycle()
	n := e.sr.Shards()
	e.active = e.active[:0]
	work := int64(0)
	for s := 0; s < n; s++ {
		on := e.sr.Load(s) > 0 || e.live[s] > 0 || e.minWake[s] <= cyc
		e.isActive[s] = on
		if on {
			e.active = append(e.active, s)
			work += int64(e.live[s]) + e.sr.Load(s)
		}
	}
	if len(e.active) >= 2 && work >= int64(e.cfg.ParallelWork) {
		e.stepParallel(m)
		return
	}
	e.stepInline(m)
}

// stepInline advances one cycle on the coordinator alone: the same
// staged phases as the parallel protocol (snapshot, step, commit,
// quiet certification, node phase), serialized over just the active
// shards, with zero barriers. Every shard's boundary buffers are still
// snapshotted — an active shard's staged push into an idle neighbour
// reads that buffer's frozen occupancy — but only active slabs step,
// which is exact: an idle slab's routers all hit the empty fast path
// and its parked nodes are all before their wake cycles.
func (e *Engine) stepInline(m *machine.Machine) {
	e.sr.Begin()
	seq0 := m.WakeSeq()
	if m.FastPathActive() && m.Net.Quiet() {
		m.PublishNetQuiet()
	} else {
		n := e.sr.Shards()
		for s := 0; s < n; s++ {
			e.sr.Snapshot(s)
		}
		for _, s := range e.active {
			e.sr.StepShard(s)
		}
		e.sr.Commit()
		m.PublishNetQuiet()
	}
	for _, s := range e.active {
		lo, hi := e.sr.NodeRange(s)
		e.live[s], e.minWake[s] = m.StepNodeRangeInfo(lo, hi)
	}
	if m.WakeSeq() != seq0 {
		// A commit-phase hook (a reliable-delivery failure action, say)
		// unparked nodes out of band. Any shard that thereby became
		// live must still step its node phase this cycle, exactly as
		// the reference sweep would.
		for s := 0; s < len(e.isActive); s++ {
			if e.isActive[s] {
				continue
			}
			lo, hi := e.sr.NodeRange(s)
			if live, _ := m.NodeActivity(lo, hi); live > 0 {
				e.live[s], e.minWake[s] = m.StepNodeRangeInfo(lo, hi)
			}
		}
	}
	e.seq = m.WakeSeq()
}

// stepParallel advances one cycle with the full worker fleet — one
// rendezvous. Used for every cycle under Config.PerCycle and for
// high-work multi-shard cycles under the epoch policy.
func (e *Engine) stepParallel(m *machine.Machine) {
	e.rendezvous++
	e.sr.Begin()
	e.skipNet = m.FastPathActive() && m.Net.Quiet()
	if e.skipNet {
		// The mesh is provably empty and its phases are elided, so the
		// quiet certification for the compiled tier's fusion rule is
		// made here, before the workers are released (the release send
		// publishes it).
		m.PublishNetQuiet()
	}
	n := e.sr.Shards()
	for w := 1; w < n; w++ {
		e.start[w] <- struct{}{}
	}
	e.runShard(0)
	for w := 1; w < n; w++ {
		<-e.done
	}
	for s := 0; s < n; s++ {
		if p := e.panics[s].Load(); p != nil {
			panic(p)
		}
	}
	e.seq = m.WakeSeq()
}

// rescan rebuilds the activity cache from scratch: the network ledger
// from router occupancy and outbox queues, the node summaries from the
// park table. Runs at the first stepped cycle and whenever the machine
// reports out-of-band activity changes (WakeSeq moved: host injection,
// chaos actions, checkpoint restore, bulk unpark).
func (e *Engine) rescan(m *machine.Machine) {
	e.sr.RescanLoad()
	for s := 0; s < e.sr.Shards(); s++ {
		lo, hi := e.sr.NodeRange(s)
		e.live[s], e.minWake[s] = m.NodeActivity(lo, hi)
	}
	e.seq = m.WakeSeq()
	e.scanned = true
}

// worker parks between cycles and steps one shard per release.
func (e *Engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.runShard(s)
			e.done <- struct{}{}
		}
	}
}

// runShard drives shard s through one cycle's phases. A panic inside
// a phase (a routing bug, a program fault) is captured and re-raised
// on the coordinator; the worker still reaches every barrier so the
// other shards do not deadlock.
func (e *Engine) runShard(s int) {
	defer func() {
		if r := recover(); r != nil {
			e.panics[s].Store(fmt.Sprintf("engine: shard %d: %v", s, r))
			// The stepping goroutines are barrier-synchronized; after
			// a panic this shard's remaining phases are skipped, so
			// release the others rather than wedging them.
			e.bar.abandon()
		}
	}()
	if !e.skipNet {
		// Phase 1: freeze boundary input-buffer occupancies.
		e.sr.Snapshot(s)
		e.bar.wait()
		// Phase 2: step this slab's routers, staging boundary crossings.
		e.sr.StepShard(s)
		e.bar.wait()
		// Phase 3: one goroutine lands staged phits and replays hooks,
		// then certifies (or not) network quiescence for the compiled
		// tier — the same deterministic point the sequential loop uses,
		// published to the other shards by the phase barrier.
		if s == 0 {
			e.sr.Commit()
			e.m.PublishNetQuiet()
		}
		e.bar.wait()
	}
	// Phase 4: step this slab's processors (active-set aware), keeping
	// the shard's activity summary current for the epoch scheduler.
	lo, hi := e.sr.NodeRange(s)
	e.live[s], e.minWake[s] = e.m.StepNodeRangeInfo(lo, hi)
}

// spinBarrier is a sense-reversing barrier over atomics: cheap on
// multicore (short spins between phases that are microseconds apart),
// and still correct on a single hardware thread thanks to the
// runtime.Gosched fallback. The atomics also give the race detector
// the happens-before edges that make the phase protocol checkable.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
	dead  atomic.Bool
}

func (b *spinBarrier) init(n int) {
	b.n = int32(n)
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if b.dead.Load() {
			return
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// abandon releases all current and future waiters after a shard
// panics, converting a would-be deadlock into an orderly shutdown.
func (b *spinBarrier) abandon() {
	b.dead.Store(true)
	b.gen.Add(1)
}
