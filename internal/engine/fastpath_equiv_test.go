package engine_test

// The event-horizon contract: a machine allowed to park idle nodes and
// bulk-skip quiescent spans (the default) must be byte-identical to the
// every-node-every-cycle reference loop, sequentially and under every
// shard count — same cycle counts, same workload results, same
// statistics, same machine digest. This file sweeps all six workloads
// (the chaos-campaign ping and barrier plus the four applications)
// through the full reference × fast × shards matrix required by the
// acceptance criteria; equiv_test.go's obs helpers prove the recorder
// pins the machine without disturbing the digest.

import (
	"bytes"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
)

// fpConfig is one run mode in the reference-vs-fast sweep.
type fpConfig struct {
	name      string
	reference bool // force the reference loop (fast path off)
	shards    int  // 0 = sequential, >1 = parallel engine
}

// fpSweep is the acceptance matrix: the reference loop sequential and
// sharded, then the event-horizon fast path sequential and across the
// engine's shard sweep (7 deliberately mis-divides an 8-node mesh).
var fpSweep = []fpConfig{
	{"ref/seq", true, 0},
	{"ref/shards-4", true, 4},
	{"fast/seq", false, 0},
	{"fast/shards-1", false, 1},
	{"fast/shards-2", false, 2},
	{"fast/shards-4", false, 4},
	{"fast/shards-7", false, 7},
}

// fastPathCampaignEquiv runs one campaign workload through the sweep,
// with the first (reference, sequential) entry as the baseline.
func fastPathCampaignEquiv(t *testing.T, name string, run func(c fpConfig) (*bench.CampaignResult, error)) {
	t.Helper()
	ref, err := run(fpSweep[0])
	if err != nil {
		t.Fatalf("%s %s: %v", name, fpSweep[0].name, err)
	}
	want := sumOf(ref)
	for _, c := range fpSweep[1:] {
		res, err := run(c)
		if err != nil {
			t.Fatalf("%s %s: %v", name, c.name, err)
		}
		if got := sumOf(res); got != want {
			t.Errorf("%s %s diverged from the reference loop:\n  ref: %+v\n  got: %+v",
				name, c.name, want, got)
		}
	}
}

// TestFastPathEquivPing and ...Barrier put the chaos injector in the
// loop: its stalls, freezes, and corruptions must land on the same
// cycles whether the idle spans between them are stepped or skipped
// (the injector publishes its next event through a horizon hook).
func TestFastPathEquivPing(t *testing.T) {
	camp := chaos.RandomCampaign(2, 8, 4000, 4)
	fastPathCampaignEquiv(t, camp.Name+"/ping", func(c fpConfig) (*bench.CampaignResult, error) {
		return bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:     8,
			Checksum:  true,
			RTS:       true,
			Reliable:  true,
			Watchdog:  50_000,
			Budget:    300_000,
			Shards:    c.shards,
			Reference: c.reference,
		})
	})
}

func TestFastPathEquivBarrier(t *testing.T) {
	camp := chaos.RandomCampaign(5, 8, 4000, 3)
	fastPathCampaignEquiv(t, camp.Name+"/barrier", func(c fpConfig) (*bench.CampaignResult, error) {
		return bench.BarrierCampaign(camp, bench.ResilienceConfig{
			Nodes:     8,
			Checksum:  true,
			RTS:       true,
			Reliable:  true,
			Watchdog:  50_000,
			Budget:    300_000,
			Shards:    c.shards,
			Reference: c.reference,
		}, 2)
	})
}

// fastPathSetup returns an app Setup hook applying one sweep entry,
// plus the matching stop function (nil-safe).
func fastPathSetup(c fpConfig) (func(*machine.Machine, *rt.Runtime), func()) {
	var eng *engine.Engine
	setup := func(m *machine.Machine, _ *rt.Runtime) {
		if c.reference {
			m.SetFastPath(false)
		}
		if c.shards > 1 {
			eng = engine.Attach(m, c.shards)
		}
	}
	return setup, func() { eng.Stop() }
}

// fastPathAppEquiv runs one application through the sweep.
func fastPathAppEquiv(t *testing.T, name string, run func(c fpConfig) (appOut, error)) {
	t.Helper()
	want, err := run(fpSweep[0])
	if err != nil {
		t.Fatalf("%s %s: %v", name, fpSweep[0].name, err)
	}
	for _, c := range fpSweep[1:] {
		got, err := run(c)
		if err != nil {
			t.Fatalf("%s %s: %v", name, c.name, err)
		}
		if got != want {
			t.Errorf("%s %s diverged from the reference loop:\n  ref: %+v\n  got: %+v",
				name, c.name, want, got)
		}
	}
}

func TestFastPathEquivLCS(t *testing.T) {
	fastPathAppEquiv(t, "lcs", func(c fpConfig) (appOut, error) {
		p := lcs.Params{LenA: 32, LenB: 48, Seed: 2}
		var stop func()
		p.Setup, stop = fastPathSetup(c)
		defer stop()
		r, err := lcs.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Length), 0},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestFastPathEquivRadix(t *testing.T) {
	fastPathAppEquiv(t, "radix", func(c fpConfig) (appOut, error) {
		p := radix.Params{Keys: 128, Bits: 12, Seed: 2}
		var stop func()
		p.Setup, stop = fastPathSetup(c)
		defer stop()
		r, err := radix.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		var sum int64
		for i, v := range r.Sorted {
			sum += int64(i+1) * int64(v)
		}
		return appOut{
			vals:   [2]int64{sum, int64(len(r.Sorted))},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestFastPathEquivNQueens(t *testing.T) {
	fastPathAppEquiv(t, "nqueens", func(c fpConfig) (appOut, error) {
		p := nqueens.Params{N: 5, SplitDepth: 2}
		var stop func()
		p.Setup, stop = fastPathSetup(c)
		defer stop()
		r, err := nqueens.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Solutions), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestFastPathEquivTSP(t *testing.T) {
	fastPathAppEquiv(t, "tsp", func(c fpConfig) (appOut, error) {
		p := tsp.Params{Cities: 6, Seed: 2}
		var stop func()
		p.Setup, stop = fastPathSetup(c)
		defer stop()
		r, err := tsp.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Best), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

// TestFastPathEquivObservedPing attaches the recorder on top of the
// sweep. The recorder registers a legacy per-cycle hook, which pins the
// machine to single-cycle mode — so observed fast-path runs must
// degrade to the reference loop and the exported files must come out
// byte-identical in every mode.
func TestFastPathEquivObservedPing(t *testing.T) {
	camp := chaos.RandomCampaign(3, 8, 4000, 4)
	run := func(c fpConfig, o *obs.Options) (*bench.CampaignResult, error) {
		return bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:     8,
			Checksum:  true,
			RTS:       true,
			Reliable:  true,
			Watchdog:  50_000,
			Budget:    300_000,
			Shards:    c.shards,
			Reference: c.reference,
			Obs:       o,
		})
	}
	ref, err := run(fpSweep[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sumOf(ref)
	var refFiles obsFiles
	for _, c := range []fpConfig{fpSweep[0], {"fast/seq", false, 0}, {"fast/shards-4", false, 4}} {
		o, read := newObsOptions(t, 64)
		res, err := run(c, o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := sumOf(res); got != want {
			t.Errorf("%s: observed run diverged:\n  ref: %+v\n  got: %+v", c.name, want, got)
		}
		files := read()
		if refFiles.perfetto == nil {
			refFiles = files
			continue
		}
		if !bytes.Equal(files.perfetto, refFiles.perfetto) {
			t.Errorf("%s: timeline bytes differ from reference", c.name)
		}
		if !bytes.Equal(files.metrics, refFiles.metrics) {
			t.Errorf("%s: metrics bytes differ from reference", c.name)
		}
	}
}
