package bench

import (
	"fmt"
	"math"
	"strings"
)

// plotMarks are the per-series glyphs, in series order.
var plotMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders a family of series as an ASCII scatter chart with linear
// axes — enough to eyeball the shapes the paper's figures show (knees,
// crossovers, saturation) straight from a terminal.
func Plot(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			points++
		}
	}
	if points == 0 {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := plotMarks[si%len(plotMarks)]
		for _, p := range s.Points {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - r
			if grid[row][c] == ' ' || grid[row][c] == mark {
				grid[row][c] = mark
			} else {
				grid[row][c] = '?' // collision between series
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	yHi := trimFloat(maxY)
	yLo := trimFloat(minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yHi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	lo, hi := trimFloat(minX), trimFloat(maxX)
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&sb, "%s  %s%s%s  (%s)\n", strings.Repeat(" ", margin), lo, strings.Repeat(" ", gap), hi, xlabel)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", plotMarks[si%len(plotMarks)], s.Label))
	}
	fmt.Fprintf(&sb, "%s  y: %s;  %s\n", strings.Repeat(" ", margin), ylabel, strings.Join(legend, "   "))
	return sb.String()
}
