package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/baseline"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// Tab3Result holds barrier times per machine size.
type Tab3Result struct {
	Nodes    []int
	Measured []float64 // µs per barrier on the simulator
	Rows     []baseline.BarrierRow
}

// barrierBench builds the barrier measurement program: every node runs
// `inner` barriers back-to-back; node 0 records timestamps before and
// after, then halts.
func barrierBenchProgram(inner int) *asm.Program {
	b := asm.NewBuilder()
	bb := b.Label("main").
		Bsr(isa.R3, rt.LBarInit).
		// One warm-up barrier aligns all nodes before timing.
		Bsr(isa.R3, rt.LBarrier).
		MoveI(isa.A2, rt.AppBase).
		Move(isa.R0, asm.R(isa.CYC)).
		St(isa.R0, asm.Mem(isa.A2, 1)). // start timestamp
		MoveI(isa.R0, int32(inner)).
		St(isa.R0, asm.Mem(isa.A2, 2))
	bb.Label("main.loop").
		Bsr(isa.R3, rt.LBarrier).
		MoveI(isa.A2, rt.AppBase).
		Move(isa.R0, asm.Mem(isa.A2, 2)).
		Sub(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A2, 2)).
		Bt(isa.R0, "main.loop").
		Move(isa.R0, asm.R(isa.CYC)).
		St(isa.R0, asm.Mem(isa.A2, 3)). // end timestamp
		MoveI(isa.A1, 0).
		Move(isa.R1, asm.Mem(isa.A1, rt.AddrNodeID)).
		Bt(isa.R1, "main.rest").
		Halt().
		Label("main.rest").
		Suspend()
	rt.BuildLib(b)
	return b.MustAssemble()
}

// MeasureBarrier returns the time per barrier, in cycles, on an N-node
// machine: the mean over `inner` back-to-back barriers after a warm-up
// barrier, timed from the point the thread calls the routine to the
// point it resumes (the paper's definition). shards > 1 steps the
// machine with the parallel engine.
func MeasureBarrier(nodes, inner, shards int) (float64, error) {
	p := barrierBenchProgram(inner)
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	defer (Options{Shards: shards}).attachEngine(m)()
	rt.StartAll(m, p, "main")
	if err := m.RunUntilHalt(0, 50_000_000); err != nil {
		return 0, err
	}
	start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 1)
	end, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
	return float64(end.Data()-start.Data()) / float64(inner), nil
}

// Table3 measures the scan-style software barrier across machine sizes
// and lays the results beside the published figures for EM4, the KSR-1,
// the iPSC/860, and the Delta.
func Table3(o Options) (*Tab3Result, error) {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	if o.Quick {
		sizes = []int{2, 4, 8, 16}
	}
	res := &Tab3Result{Rows: baseline.Table3Published()}
	for _, n := range sizes {
		cycles, err := MeasureBarrier(n, 8, o.Shards)
		if err != nil {
			return nil, fmt.Errorf("barrier at %d nodes: %w", n, err)
		}
		res.Nodes = append(res.Nodes, n)
		res.Measured = append(res.Measured, Micros(cycles))
		o.progress("tab3 n=%d barrier=%.1f cycles (%.2f µs)", n, cycles, Micros(cycles))
	}
	return res, nil
}

// Table renders Table 3.
func (r *Tab3Result) Table() *Table {
	t := &Table{
		Title:   "Table 3: Software barrier synchronization (µs)",
		Columns: []string{"Nodes", "J (measured)", "J (paper)", "EM4", "KSR", "IPSC/860", "Delta"},
	}
	pub := make(map[int]baseline.BarrierRow)
	for _, row := range r.Rows {
		pub[row.Nodes] = row
	}
	cell := func(m map[string]float64, key string) string {
		if v, ok := m[key]; ok {
			return fmt.Sprintf("%.1f", v)
		}
		return "-"
	}
	for i, n := range r.Nodes {
		row := pub[n]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", r.Measured[i]),
			cell(row.Micros, "J"),
			cell(row.Micros, "EM4"),
			cell(row.Micros, "KSR"),
			cell(row.Micros, "IPSC/860"),
			cell(row.Micros, "Delta"),
		})
	}
	t.Notes = append(t.Notes, "comparison columns are the published figures the paper cites")
	return t
}
