package bench

// Fusion-coverage probe for the compiled tier's certificate-driven
// windows: three fig3 shapes run with the per-handler send-distance
// certificates live and again under the old whole-image licensing
// (the pre-certificate `NoSend` boolean: a send-free image fused to
// the full horizon, any image with a SEND anywhere was pinned to the
// fixed seven-cycle quiet window). The stripped baseline reproduces
// that exactly — SendDist removed when the image sends, kept when it
// is send-free — so the per-shape fused-instruction share difference
// is precisely what the certificates buy. Digest equality between the
// paired runs re-proves that the licensing mode never changes results.

import (
	"fmt"

	"jmachine/internal/compiled"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// FusionRow is one (shape, licensing mode) measurement.
type FusionRow struct {
	Shape     string `json:"shape"`
	Certified bool   `json:"certified"` // per-handler SendDist vs whole-image baseline
	Nodes     int    `json:"nodes"`
	Cycles    int64  `json:"cycles"`

	Instrs      int64   `json:"instrs"`
	FusedInstrs int64   `json:"fused_instrs"`
	FusedShare  float64 `json:"fused_share"` // fused / retired instructions

	// Boundary accounting (mdp.FusionStats, summed over the mesh).
	Boundaries      int64            `json:"boundaries"`
	InterpNoClosure int64            `json:"interp_no_closure"`
	InterpBailed    int64            `json:"interp_bailed"`
	NoLicense       int64            `json:"no_license"`
	Windows         int64            `json:"windows"`
	MeanWindow      float64          `json:"mean_window_instrs"` // instructions per window incl. the boundary
	WindowEnds      map[string]int64 `json:"window_ends"`        // why windows stopped extending

	Digest uint64 `json:"state_digest"`
}

// FusionResult is the full probe: rows plus the per-shape share gain.
type FusionResult struct {
	Rows []FusionRow `json:"rows"`
	// ShareGain maps shape to certified fused share minus baseline
	// fused share: the coverage the per-handler certificates add over
	// the whole-image licensing.
	ShareGain    map[string]float64 `json:"fused_share_gain"`
	DigestsMatch bool               `json:"digests_match"`
}

// fusionResidentMachine builds the probe's third shape: the fig3
// calibration loop running with the full runtime library resident. The
// image contains SEND instructions (the rt-lib and boot handlers) so
// the old whole-image NoSend license never applied, but the loop every
// node actually executes is send-free — the shape whose fusion coverage
// the per-handler certificates exist to recover.
func fusionResidentMachine(nodes int) (*machine.Machine, error) {
	const idleIters = 16
	p := buildFig3Program(8, false, 1<<30)
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return nil, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	for _, n := range m.Nodes {
		n.Mem.Write(rt.AppBase+fig3OffMask, word.Int(fig3TableSize-1))
		n.Mem.Write(rt.AppBase+fig3OffIdle, word.Int(int32(idleIters)))
		n.Mem.Write(rt.AppBase+fig3OffSkew, word.Int(0))
	}
	rt.StartAll(m, p, "main")
	return m, nil
}

// fusionPingMachine builds the Figure 2 ping client: node 0 runs one
// null RPC against the farthest node while the rest of the mesh idles.
func fusionPingMachine(nodes int) (*machine.Machine, error) {
	p := buildMicroProgram(buildPingClient)
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return nil, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	if err := m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(m.NumNodes()-1)); err != nil {
		return nil, err
	}
	rt.StartNode(m, p, 0, "main")
	return m, nil
}

// fusionMachine builds one probe shape.
func fusionMachine(shape string, nodes int) (*machine.Machine, error) {
	switch shape {
	case "fig3-compute":
		return rooflineMachine(false, nodes, false)
	case "fig3-exchange":
		return rooflineMachine(true, nodes, false)
	case "fig3-resident":
		return fusionResidentMachine(nodes)
	case "pingpong":
		return fusionPingMachine(nodes)
	}
	return nil, fmt.Errorf("unknown fusion shape %q", shape)
}

// fusionRun measures one shape under one licensing mode from boot.
func fusionRun(shape string, nodes int, certified bool, cycles int64) (FusionRow, error) {
	m, err := fusionMachine(shape, nodes)
	if err != nil {
		return FusionRow{}, err
	}
	cp, err := compiled.Compile(m.Node(0).Prog)
	if err != nil {
		return FusionRow{}, err
	}
	if !certified {
		// Whole-image baseline: an image with any SEND lost its whole
		// certificate; a send-free image kept the full-horizon license
		// (all-InfDist distances publish the same NoEvent horizon).
		imageSends := false
		for _, d := range cp.SendDist {
			if d == 0 {
				imageSends = true
				break
			}
		}
		if imageSends {
			stripped := *cp
			stripped.SendDist = nil
			cp = &stripped
		}
	}
	m.SetCompiled(cp)
	m.StepN(cycles)
	if err := m.FatalErr(); err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s (certified=%v): %w", shape, certified, err)
	}
	instrs := int64(0)
	for _, n := range m.Nodes {
		instrs += int64(n.Stats.Instrs)
	}
	fs := m.FusionStats()
	row := FusionRow{
		Shape:           shape,
		Certified:       certified,
		Nodes:           nodes,
		Cycles:          cycles,
		Instrs:          instrs,
		FusedInstrs:     fs.Fused,
		Boundaries:      fs.Boundaries,
		InterpNoClosure: fs.InterpNoClosure,
		InterpBailed:    fs.InterpBailed,
		NoLicense:       fs.NoLicense,
		Windows:         fs.Windows,
		WindowEnds:      map[string]int64{},
		Digest:          m.StateDigest(),
	}
	if instrs > 0 {
		row.FusedShare = float64(fs.Fused) / float64(instrs)
	}
	if fs.Windows > 0 {
		row.MeanWindow = float64(fs.Windows+fs.Fused) / float64(fs.Windows)
	}
	for i, name := range mdp.FuseEndReasonNames {
		row.WindowEnds[name] = fs.End[i]
	}
	return row, nil
}

// FusionProbe runs the three fig3 shapes under both licensing modes.
// The paired runs of a shape must end in byte-identical machine states.
func FusionProbe(nodes int, cycles int64) (*FusionResult, error) {
	res := &FusionResult{
		ShareGain:    map[string]float64{},
		DigestsMatch: true,
	}
	for _, shape := range []string{"fig3-compute", "fig3-resident", "fig3-exchange", "pingpong"} {
		base, err := fusionRun(shape, nodes, false, cycles)
		if err != nil {
			return nil, err
		}
		cert, err := fusionRun(shape, nodes, true, cycles)
		if err != nil {
			return nil, err
		}
		if base.Digest != cert.Digest {
			res.DigestsMatch = false
		}
		res.ShareGain[shape] = cert.FusedShare - base.FusedShare
		res.Rows = append(res.Rows, base, cert)
	}
	return res, nil
}
