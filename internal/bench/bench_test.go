package bench

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestFig2Calibration(t *testing.T) {
	r, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Base latency near the paper's 43 cycles.
	if r.SelfPingCycles < 33 || r.SelfPingCycles > 55 {
		t.Errorf("self-ping = %d cycles, want ≈43", r.SelfPingCycles)
	}
	// Round-trip slope of 2 cycles/hop.
	if r.SlopePerHop < 1.9 || r.SlopePerHop > 2.1 {
		t.Errorf("slope = %.2f, want 2", r.SlopePerHop)
	}
	// Remote reads: external memory costs more, and more words cost
	// more. Compare the curves at distance 0.
	at0 := func(i int) float64 { return r.Series[i].Points[0].Y }
	ping, r1i, r1e, r6i, r6e := at0(0), at0(1), at0(2), at0(3), at0(4)
	if !(ping < r1i && r1i < r1e && r1i < r6i && r6i < r6e) {
		t.Errorf("latency ordering wrong: ping=%v r1i=%v r1e=%v r6i=%v r6e=%v",
			ping, r1i, r1e, r6i, r6e)
	}
	// Emem adds ~6 cycles/word in the remote-read server.
	if d := r1e - r1i; d < 4 || d > 9 {
		t.Errorf("Read1 Emem-Imem = %.0f, want ≈6", d)
	}
	if d := r6e - r6i; d < 28 || d > 44 {
		t.Errorf("Read6 Emem-Imem = %.0f, want ≈36", d)
	}
	if !strings.Contains(r.Table().String(), "Ping") {
		t.Error("table missing Ping column")
	}
}

func TestTable1Calibration(t *testing.T) {
	r, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	var measured float64
	var perByte float64
	for _, row := range r.Rows {
		if row.Measured {
			measured = row.CyclesPer
			perByte = row.CyclesByte
		}
	}
	// The paper reports 11 cycles/message and 0.5 cycles/byte; the
	// published comparators are one to two orders of magnitude worse.
	if measured < 7 || measured > 16 {
		t.Errorf("measured overhead = %.1f cycles/msg, want ≈11", measured)
	}
	if perByte < 0.3 || perByte > 0.7 {
		t.Errorf("measured per-byte = %.2f cycles, want ≈0.5", perByte)
	}
	if ratio := 460 / measured; ratio < 25 {
		t.Errorf("nCUBE/2 AM overhead only %.0fx worse", ratio)
	}
}

func TestTable2Calibration(t *testing.T) {
	r, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Success 2/5, Failure 6/7, Write 4/6, Restart 0/0.
	within := func(got, want, tol int64) bool { return got >= want-tol && got <= want+tol }
	if !within(r.Tags[0], 2, 0) || !within(r.NoTags[0], 5, 1) {
		t.Errorf("Success = %d/%d, want 2/5", r.Tags[0], r.NoTags[0])
	}
	if !within(r.Tags[1], 6, 0) || !within(r.NoTags[1], 7, 1) {
		t.Errorf("Failure = %d/%d, want 6/7", r.Tags[1], r.NoTags[1])
	}
	if !within(r.Tags[2], 4, 0) || !within(r.NoTags[2], 6, 1) {
		t.Errorf("Write = %d/%d, want 4/6", r.Tags[2], r.NoTags[2])
	}
	// Hardware tags must never be slower than the software protocol.
	for i := range r.Tags {
		if r.Tags[i] > r.NoTags[i] {
			t.Errorf("%s: tags (%d) slower than no-tags (%d)", tab2Events[i], r.Tags[i], r.NoTags[i])
		}
	}
}

func TestTable3Calibration(t *testing.T) {
	r, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Measured barrier times grow with machine size and stay within the
	// paper's order of magnitude (4.4 µs at 2 nodes, 11.7 at 16).
	if r.Measured[0] < 2 || r.Measured[0] > 9 {
		t.Errorf("2-node barrier = %.1f µs, want ≈4.4", r.Measured[0])
	}
	last := len(r.Measured) - 1
	if r.Measured[last] <= r.Measured[0] {
		t.Error("barrier time does not grow with machine size")
	}
	if r.Measured[last] > 30 {
		t.Errorf("16-node barrier = %.1f µs, want ≈11.7", r.Measured[last])
	}
	// Contemporary machines are one to two orders of magnitude slower.
	if r.Measured[0] > 60.0/5 {
		t.Error("KSR comparison no longer an order of magnitude")
	}
}

func TestFig4Calibration(t *testing.T) {
	r, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	discard := r.Series[0]
	last := discard.Points[len(discard.Points)-1]
	peak := last.Y
	// ~90% of the eventual peak with messages as short as 8 words.
	var at8, at2 float64
	for _, p := range discard.Points {
		if p.X == 8 {
			at8 = p.Y
		}
		if p.X == 2 {
			at2 = p.Y
		}
	}
	if at8 < 0.85*peak {
		t.Errorf("8-word bandwidth %.0f < 85%% of peak %.0f", at8, peak)
	}
	// Two-word messages achieve more than half of the eventual peak.
	if at2 < 0.5*peak {
		t.Errorf("2-word bandwidth %.0f < half of peak %.0f", at2, peak)
	}
	// Copy variants are slower, Emem slowest.
	for i, p := range r.Series[1].Points {
		e := r.Series[2].Points[i]
		if p.Y > discard.Points[i].Y+1 || e.Y > p.Y+1 {
			t.Errorf("ordering at %d words: discard=%.0f imem=%.0f emem=%.0f",
				int(p.X), discard.Points[i].Y, p.Y, e.Y)
		}
	}
}

func TestSequentialRatesCalibration(t *testing.T) {
	r, err := SequentialRates(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakMIPS < 10 || r.PeakMIPS > 12.6 {
		t.Errorf("peak = %.1f MIPS, want ≈12.5", r.PeakMIPS)
	}
	if r.TypicalMIPS < 4 || r.TypicalMIPS > 8 {
		t.Errorf("typical = %.1f MIPS, want ≈5.5", r.TypicalMIPS)
	}
	if r.ExternalMIPS >= 2 {
		t.Errorf("external = %.1f MIPS, want <2", r.ExternalMIPS)
	}
}

func TestFig5SpeedupShape(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		last := s.Points[len(s.Points)-1]
		if last.Y < 1.5 {
			t.Errorf("%s: final speedup %.2f", s.Label, last.Y)
		}
		if s.Points[0].Y != 1 {
			t.Errorf("%s: base speedup %.2f != 1", s.Label, s.Points[0].Y)
		}
	}
}

func TestFig6Breakdown(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 4 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for i, app := range r.Apps {
		sum := 0.0
		for _, v := range r.Breakdown[i] {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %.3f", app, sum)
		}
	}
}

func TestTable4Statistics(t *testing.T) {
	r, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 3 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, app := range r.Apps {
		for _, c := range app.Classes {
			if c.Threads == 0 {
				t.Errorf("%s/%s: zero threads", app.Name, c.Name)
			}
		}
	}
	// Shape: NxtChar messages are 3 words; Write messages are 3 words.
	if got := r.Apps[0].Classes[0].MsgLength; got != 3 {
		t.Errorf("NxtChar msg length = %.1f", got)
	}
	if got := r.Apps[2].Classes[1].MsgLength; got != 3 {
		t.Errorf("Write msg length = %.1f", got)
	}
	// N-Queens tasks are 8-word messages and coarse-grained.
	if got := r.Apps[1].Classes[0].MsgLength; got != 8 {
		t.Errorf("NQueens msg length = %.1f", got)
	}
	if r.Apps[1].Classes[0].InstrThread < 100 {
		t.Error("NQueens threads should be coarse")
	}
}

func TestTable5Components(t *testing.T) {
	r, err := Table5(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.UserThreads == 0 || r.OSThreads == 0 {
		t.Fatalf("thread split: user=%d os=%d", r.UserThreads, r.OSThreads)
	}
	if r.Xlates == 0 {
		t.Error("no xlates recorded")
	}
	// User threads run the long DFS slices; OS threads are short.
	if r.UserPerThread <= r.OSPerThread {
		t.Errorf("user threads (%.0f instr) not longer than OS (%.0f)",
			r.UserPerThread, r.OSPerThread)
	}
	if !strings.Contains(r.Table().String(), "xlate") {
		t.Error("table missing xlate rows")
	}
}

func TestFig3LoadCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 sweep is slow")
	}
	r, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Latency) != 4 {
		t.Fatalf("series = %d", len(r.Latency))
	}
	for i, s := range r.Latency {
		lo, hi := s.Points[len(s.Points)-1], s.Points[0]
		// Long messages must show contention at full load; short
		// messages self-throttle on the round-trip wait and stay nearly
		// flat (as the paper's 2-word curve does at low traffic).
		if i >= 2 && hi.Y <= lo.Y {
			t.Errorf("%s: no contention growth (%.1f at load vs %.1f idle)", s.Label, hi.Y, lo.Y)
		}
		if hi.Y < lo.Y-8 {
			t.Errorf("%s: latency fell under load (%.1f vs %.1f)", s.Label, hi.Y, lo.Y)
		}
		if lo.Y <= 0 {
			t.Errorf("%s: non-positive zero-load latency", s.Label)
		}
	}
	// Efficiency rises with grain size.
	for _, s := range r.Efficiency {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y <= first.Y {
			t.Errorf("%s: efficiency not rising with grain", s.Label)
		}
		if last.Y < 0.5 {
			t.Errorf("%s: coarse-grain efficiency %.2f < 50%%", s.Label, last.Y)
		}
	}
}
