package bench

// Glue between the experiment drivers and the parallel engine plus the
// observability layer: every machine an experiment runs goes through
// one of these two helpers so Options.Shards and Options.Obs reach it
// uniformly.

import (
	"fmt"
	"os"

	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// attachEngine installs the observability recorder (when configured)
// and the parallel engine (when o.Shards > 1) on m, returning the
// matching stop function (a no-op when neither applies). Callers defer
// the stop so worker goroutines are released — and trace files drained
// and closed — when the run returns.
func (o Options) attachEngine(m *machine.Machine) func() {
	_, stop := o.attachEngineRv(m)
	return stop
}

// attachEngineRv is attachEngine exposing the engine handle, for
// probes that read the rendezvous counter before stopping. The handle
// is nil when o.Shards <= 1.
func (o Options) attachEngineRv(m *machine.Machine) (*engine.Engine, func()) {
	if o.Reference {
		m.SetFastPath(false)
	}
	o.attachCompiled(m)
	stopObs := o.Obs.AttachTo(m)
	if o.Shards <= 1 {
		return nil, func() { reportObsErr(stopObs()) }
	}
	eng := engine.AttachCfg(m, o.Shards, o.engineCfg())
	return eng, func() {
		eng.Stop()
		reportObsErr(stopObs())
	}
}

func (o Options) engineCfg() engine.Config {
	return engine.Config{PerCycle: o.PerCycle, ParallelWork: o.ParallelWork}
}

// engineHook returns an application Setup hook attaching the recorder
// and parallel engine, plus the stop function to call once the app's
// Run returns. With sharding and observability both off the hook is
// nil, leaving the app's Params exactly as a sequential caller would
// build them.
func (o Options) engineHook() (func(*machine.Machine, *rt.Runtime), func()) {
	if o.Shards <= 1 && o.Obs == nil && !o.Reference && !o.Compiled {
		return nil, func() {}
	}
	var eng *engine.Engine
	stopObs := func() error { return nil }
	setup := func(m *machine.Machine, _ *rt.Runtime) {
		if o.Reference {
			m.SetFastPath(false)
		}
		o.attachCompiled(m)
		stopObs = o.Obs.AttachTo(m)
		if o.Shards > 1 {
			eng = engine.AttachCfg(m, o.Shards, o.engineCfg())
		}
	}
	return setup, func() {
		if eng != nil {
			eng.Stop()
		}
		reportObsErr(stopObs())
	}
}

// attachCompiled installs the compiled handler tier when Options
// requests it. Every workload this package runs passes the static
// verifier (TestAsmCheckWorkloads enforces it), so a translation
// failure here is a programming error and panics loudly rather than
// silently falling back to the interpreter — a fallback would turn the
// compiled-tier equivalence smoke into a tautology.
func (o Options) attachCompiled(m *machine.Machine) {
	if !o.Compiled {
		return
	}
	if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
		panic(fmt.Sprintf("bench: compiled tier: %v", err))
	}
}

// reportObsErr surfaces trace-file write failures without failing the
// experiment: observability is a tap, never a result dependency.
func reportObsErr(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
	}
}
