package bench

// Glue between the experiment drivers and the parallel engine: every
// machine an experiment runs goes through one of these two helpers so
// Options.Shards reaches it uniformly.

import (
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// attachEngine installs the parallel engine on m when o.Shards > 1 and
// returns the matching stop function (a no-op otherwise). Callers
// defer the stop so the worker goroutines are released when the run
// returns.
func (o Options) attachEngine(m *machine.Machine) func() {
	if o.Shards <= 1 {
		return func() {}
	}
	eng := engine.Attach(m, o.Shards)
	return eng.Stop
}

// engineHook returns an application Setup hook attaching the parallel
// engine, plus the stop function to call once the app's Run returns.
// With sharding off the hook is nil, leaving the app's Params exactly
// as a sequential caller would build them.
func (o Options) engineHook() (func(*machine.Machine, *rt.Runtime), func()) {
	if o.Shards <= 1 {
		return nil, func() {}
	}
	var eng *engine.Engine
	setup := func(m *machine.Machine, _ *rt.Runtime) { eng = engine.Attach(m, o.Shards) }
	return setup, func() { eng.Stop() }
}
