package bench

import (
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	s := []Series{
		{Label: "up", Points: []Point{{0, 0}, {5, 5}, {10, 10}}},
		{Label: "down", Points: []Point{{0, 10}, {5, 5}, {10, 0}}},
	}
	out := Plot("test", "x", "y", s, 20, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "10") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	// The crossing point is shared: either glyph or the collision mark.
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if out := Plot("none", "x", "y", nil, 20, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	// Single point: degenerate ranges must not divide by zero.
	out := Plot("one", "x", "y", []Series{{Label: "p", Points: []Point{{3, 7}}}}, 20, 8)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := Plot("t", "x", "y", []Series{{Label: "p", Points: []Point{{0, 0}, {1, 1}}}}, 1, 1)
	if len(out) == 0 {
		t.Error("empty output")
	}
}
