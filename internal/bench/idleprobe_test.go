package bench

import "testing"

// TestIdleProbeEquivalence re-proves the determinism contract on the
// probe itself: reference loop, fast path, and sharded fast path must
// end the same (nodes, tokens, warm, measure) run in byte-identical
// machine states.
func TestIdleProbeEquivalence(t *testing.T) {
	const (
		nodes   = 16
		tokens  = 2
		warm    = 500
		measure = 3000
	)
	ref, err := IdleProbe(nodes, 0, true, tokens, warm, measure)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		shards    int
		reference bool
	}{
		{"fast/seq", 0, false},
		{"fast/shards-4", 4, false},
		{"ref/shards-4", 4, true},
	}
	for _, c := range cases {
		got, err := IdleProbe(nodes, c.shards, c.reference, tokens, warm, measure)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Digest != ref.Digest {
			t.Errorf("%s: digest %#x, reference %#x", c.name, got.Digest, ref.Digest)
		}
	}
}
