package bench

// EngineProbe is the wall-clock harness behind scripts/bench.sh: the
// Figure 3 loaded-exchange workload (every node firing 8-word messages
// at random partners) stepped for a fixed cycle count, sequentially or
// sharded, with wall time and a state digest recorded. Digest equality
// across shard counts re-proves the determinism contract at benchmark
// scale; the cycles/sec ratio is the engine's speedup.

import (
	"fmt"
	"math/rand"
	"time"

	"jmachine/internal/ckpt"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// EngineProbeResult is one (machine size, shard count) measurement.
type EngineProbeResult struct {
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`             // 0 = sequential reference
	Compiled     bool    `json:"compiled,omitempty"` // compiled handler tier installed
	Cycles       int64   `json:"cycles"`             // measured cycles (after warm-up)
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Digest       uint64  `json:"state_digest"` // machine state at the end
	// Rendezvous counts worker-fleet engagements over the whole run
	// (warm-up included). Unlike the wall-clock fields it is a pure
	// function of the simulated state and the engine configuration —
	// host-independent, so it is comparable across machines and
	// regressions in epoch batching show up as exact count changes.
	// Zero when sequential.
	Rendezvous int64 `json:"rendezvous"`
}

// EngineProbe steps the loaded-exchange workload for measure cycles
// after warm warm-up cycles and reports the wall-clock rate. Runs with
// the same (nodes, warm, measure) and different shard counts end in
// byte-identical machine states, so their digests must match.
func EngineProbe(nodes, shards int, warm, measure int64) (EngineProbeResult, error) {
	return EngineProbeCkpt(nodes, shards, warm, measure, "", 0, false, false)
}

// EngineProbeCkpt is EngineProbe with an optional checkpoint file:
// when ckptPath is non-empty the run writes a crash-consistent
// checkpoint every `every` cycles, and with resume set it restores the
// file first and steps only the cycles that remain. StepN boundaries
// are synchronization points, so splitting the run across processes is
// digest-neutral: a resumed probe ends in the byte-identical machine
// state an uninterrupted one reaches. The reported rate covers the
// measured cycles this process actually stepped. compiled installs the
// compiled handler tier (Options.Compiled) — the digest contract is
// unchanged, so compiled and interpreted runs must also match.
func EngineProbeCkpt(nodes, shards int, warm, measure int64, ckptPath string, every int64, resume bool, compiled bool) (EngineProbeResult, error) {
	const words = 8
	const idleIters = 16
	p := buildFig3Program(words, true, 1<<30)
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return EngineProbeResult{}, err
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	var cw *ckpt.Checkpointer
	if ckptPath != "" {
		cw = ckpt.AttachWriter(m, ckptPath, every, r)
	}
	eng, stopEng := (Options{Shards: shards, Compiled: compiled}).attachEngineRv(m)
	defer stopEng()
	rnd := rand.New(rand.NewSource(3))
	period := 4*idleIters + 120
	for _, n := range m.Nodes {
		n.Mem.Write(rt.AppBase+fig3OffMask, word.Int(fig3TableSize-1))
		n.Mem.Write(rt.AppBase+fig3OffIdle, word.Int(int32(idleIters)))
		n.Mem.Write(rt.AppBase+fig3OffSkew, word.Int(int32(rnd.Intn(period/2+1))))
		for i := 0; i < fig3TableSize; i++ {
			n.Mem.Write(fig3TableBase+int32(i), m.Net.NodeWord(rnd.Intn(m.NumNodes())))
		}
	}
	rt.StartAll(m, p, "main")
	if ckptPath != "" {
		if resume {
			if err := ckpt.RestoreFile(ckptPath, m, r); err != nil {
				return EngineProbeResult{}, err
			}
		} else if err := cw.WriteNow(); err != nil {
			return EngineProbeResult{}, err
		}
	}
	total := warm + measure
	warmLeft := warm - m.Cycle()
	if warmLeft > 0 {
		m.StepN(warmLeft)
	}
	measured := total - m.Cycle()
	if measured < 0 {
		measured = 0
	}
	start := time.Now() //jm:wallclock host-rate probe: wall time is reported, never fed back into the simulation
	m.StepN(measured)
	wall := time.Since(start).Seconds() //jm:wallclock host-rate probe
	if err := m.FatalErr(); err != nil {
		return EngineProbeResult{}, fmt.Errorf("probe (shards=%d): %w", shards, err)
	}
	rate := 0.0
	if wall > 0 {
		rate = float64(measured) / wall
	}
	return EngineProbeResult{
		Nodes:        nodes,
		Shards:       shards,
		Compiled:     compiled,
		Cycles:       measured,
		WallSeconds:  wall,
		CyclesPerSec: rate,
		Digest:       m.StateDigest(),
		Rendezvous:   eng.Rendezvous(),
	}, nil
}
