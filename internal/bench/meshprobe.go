package bench

// Mesh-scaling and rendezvous probes for the epoch-batched engine.
//
// MeshScalingProbe instantiates token-ring machines at 2K–16K nodes —
// sizes the per-cycle snapshot/step/commit protocol could not step at
// a usable rate and the dense per-node allocation could not afford —
// and reports cycles/sec, heap bytes per node, and the engine's
// rendezvous count. RendezvousProbe isolates the batching win itself:
// the same workload stepped under the per-cycle protocol and under
// epoch batching, with digests compared (the protocols must be
// byte-identical) and the two rendezvous counts reported. Both counts
// are pure functions of the simulated state and the engine
// configuration, so unlike the wall-clock rates they are
// host-independent and belong in the committed BENCH_engine.json.

import (
	"fmt"
	"runtime"
	"time"

	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// RendezvousResult compares the per-cycle and epoch protocols on one
// workload: identical digests, counted rendezvous.
type RendezvousResult struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
	Cycles   int64  `json:"cycles"`
	// PerCycle and Epoch are the worker-fleet engagement counts under
	// the two protocols; PerCycle equals Cycles by construction.
	PerCycle int64 `json:"rendezvous_per_cycle"`
	Epoch    int64 `json:"rendezvous_epoch"`
	// Reduction is PerCycle/Epoch (∞ encoded as 0 Epoch; callers
	// treat Epoch == 0 as an unbounded win).
	Reduction    float64 `json:"reduction,omitempty"`
	Digest       uint64  `json:"state_digest"`
	DigestsMatch bool    `json:"digests_match"`
}

// runIdleRendezvous steps the token ring under one engine protocol and
// returns the rendezvous count and final digest.
func runIdleRendezvous(nodes, shards int, perCycle bool, tokens int, cycles int64) (int64, uint64, error) {
	m, eng, stop, err := newIdleRing(Options{Shards: shards, PerCycle: perCycle}, nodes, tokens)
	if err != nil {
		return 0, 0, err
	}
	defer stop()
	m.StepN(cycles)
	if err := m.FatalErr(); err != nil {
		return 0, 0, err
	}
	return eng.Rendezvous(), m.StateDigest(), nil
}

// runPingRendezvous runs the Figure 2 ping (node 0 to the farthest
// node, round trip) under one engine protocol for a fixed cycle count
// and returns the rendezvous count and final digest. A single message
// in flight is the maximally-localized workload: at most one shard has
// network work at any instant, so epoch batching should touch the
// barrier almost never.
func runPingRendezvous(nodes, shards int, perCycle bool, cycles int64) (int64, uint64, error) {
	p := buildMicroProgram(buildPingClient)
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return 0, 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	eng, stop := Options{Shards: shards, PerCycle: perCycle}.attachEngineRv(m)
	defer stop()
	if err := m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(m.NumNodes()-1)); err != nil {
		return 0, 0, err
	}
	rt.StartNode(m, p, 0, "main")
	m.StepN(cycles)
	if err := m.FatalErr(); err != nil {
		return 0, 0, err
	}
	return eng.Rendezvous(), m.StateDigest(), nil
}

// RendezvousProbe measures the epoch protocol's rendezvous reduction
// on the idle token ring and the pingpong workload at a fixed shard
// count. Entirely deterministic: no wall-clock measurement is taken,
// and a digest mismatch between the protocols is an error, not a
// result.
func RendezvousProbe(nodes, shards int, tokens int, cycles int64) ([]RendezvousResult, error) {
	if shards < 2 {
		return nil, fmt.Errorf("rendezvous probe: need shards >= 2, got %d", shards)
	}
	type workload struct {
		name string
		run  func(perCycle bool) (int64, uint64, error)
	}
	workloads := []workload{
		{"idle-ring", func(pc bool) (int64, uint64, error) {
			return runIdleRendezvous(nodes, shards, pc, tokens, cycles)
		}},
		{"pingpong", func(pc bool) (int64, uint64, error) {
			return runPingRendezvous(nodes, shards, pc, cycles)
		}},
	}
	var out []RendezvousResult
	for _, w := range workloads {
		pcCount, pcDigest, err := w.run(true)
		if err != nil {
			return nil, fmt.Errorf("rendezvous probe %s (per-cycle): %w", w.name, err)
		}
		epCount, epDigest, err := w.run(false)
		if err != nil {
			return nil, fmt.Errorf("rendezvous probe %s (epoch): %w", w.name, err)
		}
		r := RendezvousResult{
			Workload:     w.name,
			Nodes:        nodes,
			Shards:       shards,
			Cycles:       cycles,
			PerCycle:     pcCount,
			Epoch:        epCount,
			Digest:       epDigest,
			DigestsMatch: pcDigest == epDigest,
		}
		if epCount > 0 {
			r.Reduction = float64(pcCount) / float64(epCount)
		}
		if !r.DigestsMatch {
			return nil, fmt.Errorf("rendezvous probe %s: per-cycle digest %#x != epoch digest %#x",
				w.name, pcDigest, epDigest)
		}
		out = append(out, r)
	}
	return out, nil
}

// MeshScalingResult is one (mesh size, shard count) scaling row.
type MeshScalingResult struct {
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`
	Cycles       int64   `json:"cycles"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Rendezvous   int64   `json:"rendezvous"`
	// HeapBytesPerNode is the host heap growth from instantiating the
	// machine (GC-settled before and after), divided by the node
	// count: the compact-state footprint. Host-dependent only through
	// the allocator; the dominant term is the simulator's own data.
	HeapBytesPerNode int64 `json:"heap_bytes_per_node"`
	// MemImageBytesPerNode is the per-node simulated-memory footprint
	// (page table plus materialized pages, mem.Memory.HeapBytes) —
	// fully deterministic, the direct measure of lazy paging.
	MemImageBytesPerNode int64  `json:"mem_image_bytes_per_node"`
	Digest               uint64 `json:"state_digest"`
	// Checked records that a sequential reference run of the same
	// workload reproduced Digest exactly.
	Checked bool `json:"digest_checked"`
}

// meshRun builds a token ring of the given size, steps it, and reports
// the digest plus (when timed) the stepping rate. Returns heap growth
// from instantiation when measureHeap is set.
func meshRun(nodes, shards int, tokens int, cycles int64, measureHeap bool) (MeshScalingResult, error) {
	var before runtime.MemStats
	if measureHeap {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	m, eng, stop, err := newIdleRing(Options{Shards: shards}, nodes, tokens)
	if err != nil {
		return MeshScalingResult{}, err
	}
	defer stop()
	res := MeshScalingResult{Nodes: nodes, Shards: shards, Cycles: cycles}
	if measureHeap {
		var after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			res.HeapBytesPerNode = int64(after.HeapAlloc-before.HeapAlloc) / int64(nodes)
		}
	}
	var image int64
	for _, n := range m.Nodes {
		image += n.Mem.HeapBytes()
	}
	res.MemImageBytesPerNode = image / int64(nodes)
	start := time.Now() //jm:wallclock mesh-scaling probe: wall time is reported, never fed back into the simulation
	m.StepN(cycles)
	res.WallSeconds = time.Since(start).Seconds() //jm:wallclock mesh-scaling probe
	if err := m.FatalErr(); err != nil {
		return MeshScalingResult{}, fmt.Errorf("mesh probe (nodes=%d shards=%d): %w", nodes, shards, err)
	}
	if res.WallSeconds > 0 {
		res.CyclesPerSec = float64(cycles) / res.WallSeconds
	}
	res.Rendezvous = eng.Rendezvous()
	res.Digest = m.StateDigest()
	return res, nil
}

// MeshScalingProbe runs the token ring at large mesh sizes (the
// 2K/4K/16K sweep behind BENCH_engine.json's mesh_scaling section).
// check re-runs the workload on the sequential reference loop and
// requires digest equality — at 16K nodes that roughly doubles the
// probe's runtime, so CI's smoke checks a mid-size mesh only.
func MeshScalingProbe(nodes, shards int, tokens int, cycles int64, check bool) (MeshScalingResult, error) {
	res, err := meshRun(nodes, shards, tokens, cycles, true)
	if err != nil {
		return MeshScalingResult{}, err
	}
	if check {
		ref, err := meshRun(nodes, 0, tokens, cycles, false)
		if err != nil {
			return MeshScalingResult{}, fmt.Errorf("mesh probe reference run: %w", err)
		}
		if ref.Digest != res.Digest {
			return MeshScalingResult{}, fmt.Errorf("mesh probe (nodes=%d shards=%d): digest %#x != reference %#x",
				nodes, shards, res.Digest, ref.Digest)
		}
		res.Checked = true
	}
	return res, nil
}
