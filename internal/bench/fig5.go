package bench

import (
	"fmt"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/machine"
)

// appPoint is one application run at one machine size.
type appPoint struct {
	Nodes  int
	Cycles int64
	M      *machine.Machine
}

// appRunner runs one macro-benchmark at a node count.
type appRunner struct {
	Name string
	Run  func(nodes int) (appPoint, error)
}

// Application problem sizes per experiment scale. Sizes hold constant
// across machine sizes, as in the paper; the defaults are chosen so a
// 64-node machine is well loaded (hundreds of tasks, thousands of keys)
// while the full sweep still runs in seconds. EXPERIMENTS.md records
// the exact parameters of each published run.

func lcsParams(o Options) lcs.Params {
	switch {
	case o.PaperScale:
		return lcs.Params{LenA: 1024, LenB: 4096, Seed: 11}
	case o.Quick:
		return lcs.Params{LenA: 64, LenB: 128, Seed: 11}
	default:
		return lcs.Params{LenA: 1024, LenB: 1024, Seed: 11}
	}
}

func radixParams(o Options) radix.Params {
	switch {
	case o.PaperScale:
		return radix.Params{Keys: 65536, Bits: 28, Seed: 11}
	case o.Quick:
		return radix.Params{Keys: 512, Bits: 16, Seed: 11}
	default:
		return radix.Params{Keys: 8192, Bits: 28, Seed: 11}
	}
}

func nqParams(o Options) nqueens.Params {
	switch {
	case o.PaperScale:
		// Depth 3 yields 1,066 tasks for 13 queens — the paper reports
		// 1,030 NQueens threads.
		return nqueens.Params{N: 13, SplitDepth: 3}
	case o.Quick:
		return nqueens.Params{N: 7, SplitDepth: 2}
	default:
		return nqueens.Params{N: 10, SplitDepth: 3}
	}
}

func tspParams(o Options) tsp.Params {
	switch {
	case o.PaperScale:
		return tsp.Params{Cities: 14, Seed: 11}
	case o.Quick:
		return tsp.Params{Cities: 7, Seed: 11}
	default:
		return tsp.Params{Cities: 10, Seed: 11}
	}
}

// appRunners returns the four applications at the selected scale.
func appRunners(o Options) []appRunner {
	lcsP := lcsParams(o)
	radixP := radixParams(o)
	nqP := nqParams(o)
	tspP := tspParams(o)
	return []appRunner{
		{Name: "LCS", Run: func(n int) (appPoint, error) {
			p := lcsP
			setup, stop := o.engineHook()
			p.Setup = setup
			r, err := lcs.Run(n, p)
			stop()
			if err != nil {
				return appPoint{}, err
			}
			return appPoint{Nodes: n, Cycles: r.Cycles, M: r.M}, nil
		}},
		{Name: "Radix Sort", Run: func(n int) (appPoint, error) {
			p := radixP
			setup, stop := o.engineHook()
			p.Setup = setup
			r, err := radix.Run(n, p)
			stop()
			if err != nil {
				return appPoint{}, err
			}
			return appPoint{Nodes: n, Cycles: r.Cycles, M: r.M}, nil
		}},
		{Name: "N-Queens", Run: func(n int) (appPoint, error) {
			p := nqP
			setup, stop := o.engineHook()
			p.Setup = setup
			r, err := nqueens.Run(n, p)
			stop()
			if err != nil {
				return appPoint{}, err
			}
			return appPoint{Nodes: n, Cycles: r.Cycles, M: r.M}, nil
		}},
		{Name: "TSP", Run: func(n int) (appPoint, error) {
			p := tspP
			setup, stop := o.engineHook()
			p.Setup = setup
			r, err := tsp.Run(n, p)
			stop()
			if err != nil {
				return appPoint{}, err
			}
			return appPoint{Nodes: n, Cycles: r.Cycles, M: r.M}, nil
		}},
	}
}

// Fig5Result holds the speedup curves.
type Fig5Result struct {
	Series []Series // speedup vs nodes, per application
}

// Fig5 runs each application across machine sizes at a fixed problem
// size and reports speedup over the single-node run. For LCS, Radix
// Sort, and N-Queens the one-node run degenerates to the sequential
// algorithm (message overhead is amortized); for TSP the base is the
// parallel code on one node, exactly as in the paper.
func Fig5(o Options) (*Fig5Result, error) {
	maxNodes := 64
	if o.Quick {
		maxNodes = 16
	}
	if o.PaperScale {
		maxNodes = 512
	}
	var sizes []int
	for n := 1; n <= maxNodes; n *= 2 {
		sizes = append(sizes, n)
	}
	res := &Fig5Result{}
	apps := appRunners(o)
	type job struct{ ai, si int }
	var jobs []job
	cycles := make([][]int64, len(apps))
	errs := make([][]error, len(apps))
	for ai := range apps {
		cycles[ai] = make([]int64, len(sizes))
		errs[ai] = make([]error, len(sizes))
		for si := range sizes {
			jobs = append(jobs, job{ai, si})
		}
	}
	// Every (application, machine size) point is an independent run.
	runParallel(len(jobs), func(j int) {
		ai, si := jobs[j].ai, jobs[j].si
		pt, err := apps[ai].Run(sizes[si])
		if err != nil {
			errs[ai][si] = err
			return
		}
		cycles[ai][si] = pt.Cycles
		o.progress("fig5 %s n=%d cycles=%d", apps[ai].Name, sizes[si], pt.Cycles)
	})
	for ai, app := range apps {
		s := Series{Label: app.Name}
		for si, n := range sizes {
			if err := errs[ai][si]; err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", app.Name, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: float64(cycles[ai][0]) / float64(cycles[ai][si])})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Table renders Figure 5.
func (r *Fig5Result) Table() *Table {
	t := SeriesTable("Figure 5: application speedup vs machine size", "nodes", "speedup", r.Series)
	t.Notes = append(t.Notes, "problem size held constant; base case is the 1-node run")
	return t
}
