package bench

import (
	"fmt"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/stats"
)

// ThreadClassRow is one thread class of Table 4.
type ThreadClassRow struct {
	Name        string
	Threads     uint64
	KInstr      float64
	InstrThread float64
	MsgLength   float64
}

// Tab4App is one application column of Table 4.
type Tab4App struct {
	Name      string
	RunTimeMs float64
	Classes   []ThreadClassRow
}

// Tab4Result holds application statistics for the assembly and Tuned-J
// applications, as in Table 4.
type Tab4Result struct {
	Nodes int
	Apps  []Tab4App
}

// Table4 runs LCS, N-Queens, and Radix Sort on a 64-node machine and
// reports, for each application's two major thread classes: invocation
// count, instructions executed, average thread length, and invoking
// message length. Background driver threads (StartUp, Sort) have no
// invoking message; their message length is reported as the paper's
// value of the boot convention (1).
func Table4(o Options) (*Tab4Result, error) {
	nodes := 64
	if o.Quick {
		nodes = 8
	}
	res := &Tab4Result{Nodes: nodes}

	classRow := func(name string, h stats.HandlerStats) ThreadClassRow {
		row := ThreadClassRow{
			Name:    name,
			Threads: h.Invocations,
			KInstr:  float64(h.Instrs) / 1000,
		}
		if h.Invocations > 0 {
			row.InstrThread = float64(h.Instrs) / float64(h.Invocations)
			row.MsgLength = float64(h.MsgWords) / float64(h.Invocations)
		}
		return row
	}

	// LCS.
	lcsP := lcsParams(o)
	setup, stop := o.engineHook()
	lcsP.Setup = setup
	lr, err := lcs.Run(nodes, lcsP)
	stop()
	if err != nil {
		return nil, err
	}
	startup := classRow("StartUp", lr.M.Stats.HandlerTotal(-1))
	startup.Threads = 1 // node 0's single generator thread
	startup.InstrThread = startup.KInstr * 1000
	startup.MsgLength = 1
	res.Apps = append(res.Apps, Tab4App{
		Name:      "LCS",
		RunTimeMs: Micros(float64(lr.Cycles)) / 1000,
		Classes: []ThreadClassRow{
			classRow("NxtChar", lr.M.Stats.HandlerTotal(lr.P.Entry(lcs.LNxtChar))),
			startup,
		},
	})
	o.progress("tab4 LCS done")

	// N-Queens.
	nqP := nqParams(o)
	setup, stop = o.engineHook()
	nqP.Setup = setup
	nr, err := nqueens.Run(nodes, nqP)
	stop()
	if err != nil {
		return nil, err
	}
	res.Apps = append(res.Apps, Tab4App{
		Name:      "NQueens",
		RunTimeMs: Micros(float64(nr.Cycles)) / 1000,
		Classes: []ThreadClassRow{
			classRow("NQueens", nr.M.Stats.HandlerTotal(nr.P.Entry(nqueens.LTask))),
			classRow("NQDone", nr.M.Stats.HandlerTotal(nr.P.Entry(nqueens.LDone))),
		},
	})
	o.progress("tab4 NQueens done")

	// Radix Sort.
	radixP := radixParams(o)
	setup, stop = o.engineHook()
	radixP.Setup = setup
	rr, err := radix.Run(nodes, radixP)
	stop()
	if err != nil {
		return nil, err
	}
	sort := classRow("Sort", rr.M.Stats.HandlerTotal(-1))
	sort.Threads = uint64(nodes) // one background Sort thread per node
	sort.InstrThread = sort.KInstr * 1000 / float64(nodes)
	sort.MsgLength = 1
	res.Apps = append(res.Apps, Tab4App{
		Name:      "RadixSort",
		RunTimeMs: Micros(float64(rr.Cycles)) / 1000,
		Classes: []ThreadClassRow{
			sort,
			classRow("Write", rr.M.Stats.HandlerTotal(rr.P.Entry(radix.LWrite))),
		},
	})
	o.progress("tab4 Radix done")
	return res, nil
}

// Table renders Table 4.
func (r *Tab4Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Table 4: application statistics (%d nodes)", r.Nodes),
		Columns: []string{"App", "RunTime ms", "Thread", "#Threads", "#K Instr", "Instr/Thread", "Msg Length"},
	}
	for _, app := range r.Apps {
		for i, c := range app.Classes {
			name, rtime := "", ""
			if i == 0 {
				name = app.Name
				rtime = fmt.Sprintf("%.2f", app.RunTimeMs)
			}
			t.Rows = append(t.Rows, []string{
				name, rtime, c.Name,
				fmt.Sprintf("%d", c.Threads),
				fmt.Sprintf("%.1f", c.KInstr),
				fmt.Sprintf("%.0f", c.InstrThread),
				fmt.Sprintf("%.1f", c.MsgLength),
			})
		}
	}
	return t
}
