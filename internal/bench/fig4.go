package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// Figure 4: the maximum data-transfer rate sustainable between two
// adjacent nodes versus message size. The source generates dummy data
// directly from the register file; the destination handler either
// discards the message, copies it into internal memory, or copies it
// into external memory. The copy variants run slower than the 0.5
// words/cycle delivery rate, so the queue backs up and the network
// applies back-pressure — the rate mismatch the radix-sort discussion
// describes.

// buildFig4Program assembles a sender streaming `count` messages of
// `words` words to the node at AppBase, and the three receiver variants.
func buildFig4Program(words, count int) *asm.Program {
	b := asm.NewBuilder()
	payload := words - 1 // words after the header

	for _, v := range []string{"discard", "imem", "emem"} {
		b.Label("main."+v).
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R3, asm.Mem(isa.A0, 0)). // destination, kept in a register
			MoveHdr(isa.R1, "fig4."+v, words).
			MoveI(isa.R0, 0x5A5).
			MoveI(isa.R2, int32(count)).
			Label("loop." + v).
			Send(asm.R(isa.R3))
		if payload == 0 {
			b.SendE(asm.R(isa.R1)) // header-only message
		} else {
			b.Send(asm.R(isa.R1))
			for i := 0; i < payload/2; i++ {
				if 2*i+2 == payload {
					b.Send2E(isa.R0, asm.R(isa.R0))
				} else {
					b.Send2(isa.R0, asm.R(isa.R0))
				}
			}
			if payload%2 == 1 {
				b.SendE(asm.R(isa.R0))
			}
		}
		b.Sub(isa.R2, asm.Imm(1)).
			Bt(isa.R2, "loop."+v).
			Halt()
	}

	// Receivers.
	b.Label("fig4.discard").
		Suspend()

	copyBody := func(name string, base int32) {
		loop := name + ".loop"
		b.Label(name).
			MoveI(isa.A0, base).
			MoveI(isa.R3, 1).
			Label(loop).
			Move(isa.R0, asm.MemR(isa.A3, isa.R3)).
			St(isa.R0, asm.Mem(isa.A0, 0)).
			Add(isa.A0, asm.Imm(1)).
			Add(isa.R3, asm.Imm(1)).
			Move(isa.R1, asm.R(isa.R3)).
			Lt(isa.R1, asm.Imm(int32(words))).
			Bt(isa.R1, loop).
			Suspend()
	}
	copyBody("fig4.imem", imemAddr())
	copyBody("fig4.emem", ememAddr())

	rt.BuildLib(b)
	return b.MustAssemble()
}

// Fig4Result holds the terminal-bandwidth curves.
type Fig4Result struct {
	Series []Series // Mbits/s vs message size, per variant
}

// Fig4 sweeps message sizes 2..16 words for the three variants.
func Fig4(o Options) (*Fig4Result, error) {
	count := 300
	if o.Quick {
		count = 100
	}
	sizes := []int{2, 3, 4, 6, 8, 12, 16}
	res := &Fig4Result{}
	for _, variant := range []string{"discard", "imem", "emem"} {
		s := Series{Label: map[string]string{
			"discard": "Discard Data", "imem": "Copy to Imem", "emem": "Copy to Emem",
		}[variant]}
		for _, words := range sizes {
			rate, err := runFig4Point(variant, words, count)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(words), Y: rate})
			o.progress("fig4 %s L=%d rate=%.0f Mb/s", variant, words, rate)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runFig4Point(variant string, words, count int) (float64, error) {
	p := buildFig4Program(words, count)
	m, err := machine.New(machine.Grid(2, 1, 1), p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	rt.StartNode(m, p, 0, "main."+variant)
	max := int64(count) * int64(words) * 200
	err = m.RunWhile(func(m *machine.Machine) bool {
		return m.Net.Stats().DeliveredMsgs[0] < uint64(count)
	}, max)
	if err != nil {
		return 0, fmt.Errorf("fig4 %s L=%d: %w", variant, words, err)
	}
	bits := float64(count) * float64(words) * 36
	return Mbits(bits / float64(m.Cycle())), nil
}

// Table renders Figure 4.
func (r *Fig4Result) Table() *Table {
	t := SeriesTable("Figure 4: terminal network bandwidth (Mbits/s) vs message size (words)",
		"words", "Mbits/s", r.Series)
	t.Notes = append(t.Notes,
		"channel peak is 225 Mbits/s (0.5 words/cycle); the paper reports ~90% of peak at 8 words for Discard")
	return t
}
