package bench

// Chaos-campaign entry points: the Figure 2 ping and Table 3 barrier
// micro-benchmarks re-run under a fault schedule, with the resilience
// machinery (checksums, return-to-sender, reliable delivery, the
// progress watchdog) switched on or off. cmd/jm-chaos drives these to
// measure survival and degradation.

import (
	"jmachine/internal/asm"
	"jmachine/internal/chaos"
	"jmachine/internal/ckpt"
	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/network"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
)

// ResilienceConfig selects the protection layers for a campaign run.
type ResilienceConfig struct {
	Nodes       int   // machine size (default 8)
	Checksum    bool  // NI checksum word + delivery-port verification
	RTS         bool  // return-to-sender flow control
	MaxReturns  int   // bound on refusals before the network drops (0 = unbounded)
	Watchdog    int64 // progress-watchdog window in cycles (0 = off)
	Reliable    bool  // ACK/timeout/retransmit runtime (rt.EnableReliable)
	ReliableCfg rt.ReliableConfig
	Budget      int64 // cycle budget (default 2,000,000)
	// Shards > 1 steps the machine with the parallel engine; 0 or 1
	// keeps the sequential reference loop. Results are byte-identical
	// either way (the equivalence suite enforces it).
	Shards int
	// Reference disables the event-horizon fast path (active-set
	// scheduling and bulk idle-skip), forcing the every-node-every-cycle
	// reference loop. Results are byte-identical either way; the flag
	// exists so the equivalence suite can prove it.
	Reference bool
	// Compiled installs the compiled handler tier (internal/compiled).
	// Byte-identical results either way, like Shards and Reference.
	Compiled bool
	// PerCycle forces the engine's per-cycle rendezvous protocol
	// (epoch batching off); ParallelWork overrides the inline/parallel
	// work threshold (0 = engine default). Both are digest-neutral
	// wall-clock knobs, mirrored from bench.Options.
	PerCycle     bool
	ParallelWork int
	// Obs, when non-nil, streams a Perfetto timeline and metric
	// snapshots from the campaign machine (see internal/obs). Purely a
	// tap: the StateDigest in the result is unchanged by it.
	Obs *obs.Options
	// Ckpt, when non-empty, periodically writes a crash-consistent
	// checkpoint of the complete run state (machine, runtime, reliable
	// protocol, chaos cursor) to this path.
	Ckpt string
	// CkptEvery is the checkpoint period in cycles (default 65536).
	CkptEvery int64
	// Resume restores Ckpt over the freshly built machine before the
	// run loop starts; the run then continues exactly where the
	// checkpointed one stood.
	Resume bool
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Budget <= 0 {
		c.Budget = 2_000_000
	}
	return c
}

// machineConfig translates the resilience switches into a machine config.
func (c ResilienceConfig) machineConfig() machine.Config {
	cfg := machine.GridForNodes(c.Nodes)
	cfg.Net.Checksum = c.Checksum
	cfg.Net.ReturnToSender = c.RTS
	cfg.Net.MaxReturns = c.MaxReturns
	cfg.Watchdog = c.Watchdog
	return cfg
}

// CampaignResult reports one workload run under a fault campaign.
type CampaignResult struct {
	Workload  string
	Completed bool  // the workload reached its normal end
	Err       error // the surfaced error otherwise (watchdog, fatal, budget)
	Cycles    int64 // machine cycles consumed
	Value     int64 // workload metric: ping RTT or cycles/barrier

	Net           network.Stats
	WatchdogTrips uint64
	HasReliable   bool
	Reliable      rt.ReliableStats
	ChaosReport   string
	// StateDigest folds the machine's final state (machine.StateDigest)
	// so sequential and sharded runs can be compared byte-for-byte.
	StateDigest uint64
}

// prepare builds a machine for a campaign run and attaches the runtime,
// the optional reliable-delivery layer, the chaos injector, the
// checkpoint writer, the observability recorder, and — when
// rc.Shards > 1 — the parallel engine. The caller must defer the
// returned stop (which releases the engine workers and drains the
// recorder's trace files) and invoke preRun after the workload's
// start-up, immediately before the run loop: it restores the
// checkpoint when rc.Resume is set.
func prepare(camp chaos.Campaign, rc ResilienceConfig, p *asm.Program) (*machine.Machine, *rt.Reliable, *chaos.Injector, func(), func() error, error) {
	m, err := machine.New(rc.machineConfig(), p)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if rc.Reference {
		m.SetFastPath(false)
	}
	if rc.Compiled {
		if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
			return nil, nil, nil, nil, nil, err
		}
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	var rel *rt.Reliable
	if rc.Reliable {
		rel = rt.EnableReliable(r, rc.ReliableCfg)
	}
	inj := chaos.Attach(m, camp)
	savers := []ckpt.Saver{r}
	if rel != nil {
		savers = append(savers, rel)
	}
	savers = append(savers, inj)
	layers := ckpt.Flags{Path: rc.Ckpt, Every: rc.CkptEvery, Resume: rc.Resume}.Attach(m, savers...)
	stopObs := rc.Obs.AttachTo(m)
	var eng *engine.Engine
	if rc.Shards > 1 {
		eng = engine.AttachCfg(m, rc.Shards,
			engine.Config{PerCycle: rc.PerCycle, ParallelWork: rc.ParallelWork})
	}
	stop := func() {
		eng.Stop()
		reportObsErr(stopObs())
	}
	return m, rel, inj, stop, layers.PreRun, nil
}

// collect folds the run outcome into a CampaignResult.
func collect(name string, m *machine.Machine, rel *rt.Reliable, inj *chaos.Injector, runErr error, value int64) *CampaignResult {
	res := &CampaignResult{
		Workload:      name,
		Completed:     runErr == nil,
		Err:           runErr,
		Cycles:        m.Cycle(),
		Value:         value,
		Net:           m.Net.Stats(),
		WatchdogTrips: m.WatchdogTrips,
		ChaosReport:   inj.Report(),
		StateDigest:   m.StateDigest(),
	}
	if rel != nil {
		res.HasReliable = true
		res.Reliable = rel.Stats()
	}
	return res
}

// PingCampaign runs the Figure 2 ping client from node 0 to the
// farthest node under the fault campaign. Value is the measured
// round-trip time in cycles when the run completes.
func PingCampaign(camp chaos.Campaign, rc ResilienceConfig) (*CampaignResult, error) {
	rc = rc.withDefaults()
	p := buildMicroProgram(buildPingClient)
	m, rel, inj, stop, preRun, err := prepare(camp, rc, p)
	if err != nil {
		return nil, err
	}
	defer stop()
	target := m.NumNodes() - 1
	if err := m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(target)); err != nil {
		return nil, err
	}
	rt.StartNode(m, p, 0, "main")
	if err := preRun(); err != nil {
		return nil, err
	}
	runErr := m.RunWhile(func(m *machine.Machine) bool {
		w, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
		return !w.Truthy()
	}, rc.Budget)
	var rtt int64
	if runErr == nil {
		flag, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
		start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
		rtt = int64(flag.Data() - start.Data())
	}
	return collect("pingpong", m, rel, inj, runErr, rtt), nil
}

// BarrierCampaign runs inner back-to-back barriers on every node under
// the fault campaign. Value is cycles per barrier when the run
// completes.
func BarrierCampaign(camp chaos.Campaign, rc ResilienceConfig, inner int) (*CampaignResult, error) {
	rc = rc.withDefaults()
	if inner <= 0 {
		inner = 4
	}
	p := barrierBenchProgram(inner)
	m, rel, inj, stop, preRun, err := prepare(camp, rc, p)
	if err != nil {
		return nil, err
	}
	defer stop()
	rt.StartAll(m, p, "main")
	if err := preRun(); err != nil {
		return nil, err
	}
	runErr := m.RunUntilHalt(0, rc.Budget)
	var per int64
	if runErr == nil {
		start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 1)
		end, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
		per = int64(end.Data()-start.Data()) / int64(inner)
	}
	return collect("barrier", m, rel, inj, runErr, per), nil
}
