package bench

import (
	"strconv"
	"testing"
)

func TestAblateNaming(t *testing.T) {
	r, err := AblateNaming(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	per := func(i int) float64 {
		v, _ := strconv.ParseFloat(r.Rows[i][2], 64)
		return v
	}
	soft, table, xl, tlb := per(0), per(1), per(2), per(3)
	// The critique's ordering: software index arithmetic is the most
	// expensive by a wide margin; hardware translation mechanisms beat
	// it; a 1-cycle TLB beats the 3-cycle xlate.
	if soft < 4*table || soft < 3*xl {
		t.Errorf("software conversion not dominant: soft=%.1f table=%.1f xlate=%.1f", soft, table, xl)
	}
	if tlb >= xl {
		t.Errorf("TLB (%.1f) not faster than xlate (%.1f)", tlb, xl)
	}
}
