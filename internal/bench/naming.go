package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// AblateNaming quantifies the critique's naming complaint: "some
// applications spend considerable time converting virtual addresses or
// linear node indices to router addresses. Automatic translation ...
// could be implemented with a pair of TLBs." Four ways to turn a linear
// node index into a router address are timed:
//
//   - software arithmetic (the runtime's id2node: divide/modulo chain),
//   - a memory-resident table (what the tuned applications do),
//   - the XLATE name cache at its 3-cycle hit cost,
//   - a hypothetical 1-cycle translation TLB (XLATE retimed).
func AblateNaming(o Options) (*AblationResult, error) {
	const conversions = 256
	res := &AblationResult{
		Title:   "Ablation: linear node index → router address (256 conversions)",
		Columns: []string{"Mechanism", "total cycles", "cycles/conversion"},
	}

	type method struct {
		name  string
		build func(b *asm.Builder)
		tune  func(cfg *machine.Config)
		setup func(m *machine.Machine, r *rt.Runtime)
	}

	// The counter lives in A1: the software-arithmetic subroutine
	// clobbers all the data registers.
	loopAround := func(body func(b *asm.Builder)) func(b *asm.Builder) {
		return func(b *asm.Builder) {
			b.Label("main").
				MoveI(isa.A1, conversions).
				Label("loop")
			body(b)
			b.Add(isa.A1, asm.Imm(-1)).
				Bt(isa.A1, "loop").
				Halt()
		}
	}

	methods := []method{
		{
			name: "software arithmetic (rt.id2node)",
			build: loopAround(func(b *asm.Builder) {
				b.Move(isa.R0, asm.R(isa.A1)).
					Bsr(isa.R3, rt.LId2Node)
			}),
		},
		{
			name: "memory table",
			build: loopAround(func(b *asm.Builder) {
				b.Move(isa.R0, asm.R(isa.A1)).
					MoveI(isa.A0, 512).
					Move(isa.R0, asm.MemR(isa.A0, isa.R0))
			}),
			setup: func(m *machine.Machine, r *rt.Runtime) {
				for i := 0; i <= conversions; i++ {
					m.Nodes[0].Mem.Write(512+int32(i), m.Net.NodeWord(i%m.NumNodes()))
				}
			},
		},
		{
			name: "XLATE name cache (3 cycles)",
			build: loopAround(func(b *asm.Builder) {
				b.Move(isa.R0, asm.R(isa.A1)).
					Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
					Xlate(isa.A0, asm.R(isa.R0))
			}),
			setup: func(m *machine.Machine, r *rt.Runtime) {
				for i := 0; i <= conversions; i++ {
					r.DefineName(0, word.New(word.TagPtr, int32(i)),
						m.Net.NodeWord(i%m.NumNodes()))
				}
			},
		},
		{
			name: "translation TLB (1 cycle, critique proposal)",
			build: loopAround(func(b *asm.Builder) {
				b.Move(isa.R0, asm.R(isa.A1)).
					Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
					Xlate(isa.A0, asm.R(isa.R0))
			}),
			tune: func(cfg *machine.Config) { cfg.MDP.Timing.Xlate = 1 },
			setup: func(m *machine.Machine, r *rt.Runtime) {
				for i := 0; i <= conversions; i++ {
					r.DefineName(0, word.New(word.TagPtr, int32(i)),
						m.Net.NodeWord(i%m.NumNodes()))
				}
			},
		},
	}

	for _, meth := range methods {
		b := asm.NewBuilder()
		meth.build(b)
		rt.BuildLib(b)
		p, err := b.Assemble()
		if err != nil {
			return nil, err
		}
		// A 4×4×4 mesh gives the divide chain realistic divisors and
		// the tables 64 distinct addresses.
		cfg := machine.Cube(4)
		if meth.tune != nil {
			meth.tune(&cfg)
		}
		m, err := machine.New(cfg, p)
		if err != nil {
			return nil, err
		}
		r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
		if meth.setup != nil {
			meth.setup(m, r)
		}
		rt.StartNode(m, p, 0, "main")
		if err := m.RunUntilHalt(0, 1_000_000); err != nil {
			return nil, fmt.Errorf("%s: %w", meth.name, err)
		}
		res.Rows = append(res.Rows, []string{
			meth.name,
			fmt.Sprintf("%d", m.Cycle()),
			fmt.Sprintf("%.1f", float64(m.Cycle())/conversions),
		})
		o.progress("ablate naming %s: %.1f cycles/conv", meth.name, float64(m.Cycle())/conversions)
	}
	res.Notes = append(res.Notes,
		"each row includes ~5 cycles/iteration of loop overhead",
		"cache-conflict misses on the xlate variants refill from the memory-resident table")
	return res, nil
}
