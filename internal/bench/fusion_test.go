package bench

import "testing"

// TestFusionProbe checks the probe's two load-bearing claims: the
// licensing mode never changes machine state (paired digests match),
// and on the sending shape the per-handler certificates strictly
// increase the fused-instruction share over the whole-image baseline
// — the coverage win the certificates exist to deliver.
func TestFusionProbe(t *testing.T) {
	res, err := FusionProbe(16, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DigestsMatch {
		t.Error("certified and baseline runs diverged")
	}
	for _, r := range res.Rows {
		t.Logf("%-13s certified=%-5v share=%.4f windows=%d mean=%.1f ends=%v nolicense=%d",
			r.Shape, r.Certified, r.FusedShare, r.Windows, r.MeanWindow, r.WindowEnds, r.NoLicense)
		if r.Instrs == 0 || r.Boundaries == 0 {
			t.Errorf("%s certified=%v: vacuous run (%d instrs, %d boundaries)",
				r.Shape, r.Certified, r.Instrs, r.Boundaries)
		}
	}
	// The resident shape — send-free loop, sending image — is where the
	// per-handler certificates recover real coverage; the gain must be
	// substantial, not a rounding artifact.
	if gain := res.ShareGain["fig3-resident"]; gain < 0.05 {
		t.Errorf("fig3-resident fused-share gain = %.4f, want >= 0.05", gain)
	}
	if gain := res.ShareGain["fig3-exchange"]; gain < 0 {
		t.Errorf("fig3-exchange fused-share gain = %.4f, want >= 0", gain)
	}
	// The send-free shape is licensed identically either way: a
	// send-free image kept its full-horizon license under the old
	// whole-image rule too.
	if gain := res.ShareGain["fig3-compute"]; gain != 0 {
		t.Errorf("fig3-compute fused-share gain = %.4f, want 0", gain)
	}
}
