package bench

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// Micro-benchmark client programs. Each client runs on node 0, issues
// one remote operation against a target node held at AppBase, and
// suspends; the runtime's ack/reply handler timestamps completion in
// AddrFlag. Departure is timestamped at AppBase+3 so round-trip times
// are exact (not quantized by a polling loop).

// buildPingClient emits "main": a null RPC — two-word request, one-word
// acknowledgement (the Figure 2 "Ping" line).
func buildPingClient(b *asm.Builder) {
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Move(isa.R2, asm.R(isa.CYC)).
		St(isa.R2, asm.Mem(isa.A0, 3)).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, rt.LPing, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.NNR)).
		Suspend()
}

// buildReadClient emits "main": a remote read of 1 or 6 words (handler
// selects which) from the address held at AppBase+1.
func buildReadClient(handler string) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R2, asm.R(isa.CYC)).
			St(isa.R2, asm.Mem(isa.A0, 3)).
			Send(asm.Mem(isa.A0, 0)).
			MoveHdr(isa.R1, handler, 3).
			Send(asm.R(isa.R1)).
			Send(asm.Mem(isa.A0, 1)).
			SendE(asm.R(isa.NNR)).
			Suspend()
	}
}

// buildMicroProgram assembles a client plus the runtime library.
func buildMicroProgram(build func(b *asm.Builder)) *asm.Program {
	b := asm.NewBuilder()
	build(b)
	rt.BuildLib(b)
	return b.MustAssemble()
}

// runRoundTrip boots the client on node 0 of a machine, targeting the
// given node, and returns the measured round-trip cycles. shards > 1
// steps the machine with the parallel engine.
func runRoundTrip(p *asm.Program, cfg machine.Config, target int,
	setup func(m *machine.Machine), shards int) (int64, error) {
	m, err := machine.New(cfg, p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	defer (Options{Shards: shards}).attachEngine(m)()
	if err := m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(target)); err != nil {
		return 0, err
	}
	if setup != nil {
		setup(m)
	}
	rt.StartNode(m, p, 0, "main")
	err = m.RunWhile(func(m *machine.Machine) bool {
		w, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
		return !w.Truthy()
	}, 1_000_000)
	if err != nil {
		return 0, err
	}
	flag, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
	start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
	return int64(flag.Data() - start.Data()), nil
}

// hopTargets returns, for each distance 0..max, a node id at exactly
// that Manhattan distance from node 0 on the given mesh.
func hopTargets(m *machine.Machine, max int) []int {
	var out []int
	for d := 0; d <= max; d++ {
		found := -1
		for id := 0; id < m.NumNodes() && found < 0; id++ {
			x, y, z := m.Net.NodeCoords(id)
			if x+y+z == d {
				found = id
			}
		}
		if found < 0 {
			break
		}
		out = append(out, found)
	}
	return out
}

// ememAddr returns an address in external memory for a machine config.
func ememAddr() int32 { return 8192 }

// imemAddr returns an address in internal memory.
func imemAddr() int32 { return 600 }
