// Package bench regenerates every table and figure of the paper's
// evaluation. Each experiment builds the same workload the paper
// describes, runs it on the simulated J-Machine, and prints rows or
// series in the paper's units (cycles, microseconds at 12.5 MHz,
// Mbits/second). Comparison columns for other machines come from the
// published figures in package baseline, exactly as the paper used them.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"jmachine/internal/mdp"
	"jmachine/internal/obs"
)

// Options tunes experiment scale. The defaults run in seconds on a
// workstation; Paper-scale runs use the paper's exact parameters and
// take correspondingly longer.
type Options struct {
	// Quick shrinks machines and problem sizes for smoke tests.
	Quick bool
	// PaperScale uses the paper's exact problem sizes (512-node
	// machines, 64K keys, 13 queens, 14 cities).
	PaperScale bool
	// Verbose prints progress as points complete.
	Verbose  bool
	Progress func(format string, args ...any)
	// Shards > 1 steps each simulated machine with the parallel engine
	// (internal/engine); 0 or 1 keeps the sequential reference loop.
	// Results are byte-identical either way — the engine equivalence
	// suite enforces it — so this is purely a wall-clock knob. It
	// composes with runParallel: independent experiment points still
	// fan out across GOMAXPROCS, and each machine additionally steps
	// on Shards goroutines. Machines smaller than the shard count
	// clamp; the tiny one- and two-node rigs (tab1, tab2, fig4, seq)
	// stay sequential, where the engine could only add rendezvous
	// overhead.
	Shards int
	// Reference disables the event-horizon fast path on every machine
	// the experiment steps, forcing the every-node-every-cycle loop.
	// Like Shards, it is purely a wall-clock knob: results are
	// byte-identical either way (the fast-path equivalence suite
	// enforces it), which scripts/check.sh re-proves on the Table 4/5
	// outputs.
	Reference bool
	// Obs, when non-nil, attaches the observability recorder
	// (internal/obs) to every machine the experiment steps: Perfetto
	// timelines and metric snapshots stream to the configured files.
	// Attaching never changes results — machine.StateDigest() is
	// byte-identical with it on or off (enforced by the engine
	// equivalence suite). Experiments that build several machines get
	// numbered output files (trace.json, trace.json.2, …).
	Obs *obs.Options
	// Compiled installs the compiled handler tier (internal/compiled,
	// docs/COMPILED.md) on every machine the experiment steps. Like
	// Shards and Reference it is purely a wall-clock knob: the compiled
	// tier's equivalence suite proves digests and observation traces
	// byte-identical with it on or off.
	Compiled bool
	// PerCycle forces the parallel engine's per-cycle rendezvous
	// protocol (every cycle releases the worker fleet), disabling epoch
	// batching. Digest-neutral like the other engine knobs; exists so
	// the rendezvous probes can measure the batching win and the
	// equivalence suites can pin the older protocol.
	PerCycle bool
	// ParallelWork overrides the engine's inline/parallel work
	// threshold (engine.Config.ParallelWork); 0 keeps the default.
	// ParallelWork = 1 engages the worker fleet for any multi-shard
	// activity, which the tests use to force the parallel path.
	ParallelWork int
}

func (o Options) progress(format string, args ...any) {
	if o.Verbose {
		if o.Progress != nil {
			o.Progress(format, args...)
		} else {
			fmt.Printf(format+"\n", args...)
		}
	}
}

// Micros converts cycles to microseconds at the 12.5 MHz clock.
func Micros(cycles float64) float64 { return mdp.CyclesToMicros(cycles) }

// Mbits converts bits-per-cycle to Mbits/second at the 12.5 MHz clock.
func Mbits(bitsPerCycle float64) float64 { return bitsPerCycle * mdp.ClockHz / 1e6 }

// Series is one labelled curve of (x, y) points.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Table renders labelled rows with a fixed column layout.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// SeriesTable renders a family of curves as columns of (x, y) pairs.
func SeriesTable(title string, xlabel, ylabel string, series []Series) *Table {
	t := &Table{Title: title, Columns: []string{xlabel}}
	for _, s := range series {
		t.Columns = append(t.Columns, s.Label)
	}
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	_ = ylabel
	return t
}

// runParallel executes fn(0..n-1) across up to GOMAXPROCS workers.
// Simulated machines are single-goroutine, so independent experiment
// points parallelize perfectly.
func runParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
