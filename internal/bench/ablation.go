package bench

import (
	"fmt"

	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/network"
	"jmachine/internal/rt"
)

// Ablation studies for the design choices the paper's critique singles
// out. Each varies one mechanism and re-measures the experiment it
// affects most directly.

// AblationResult is a generic labelled-row result.
type AblationResult struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Table converts the result for printing.
func (a *AblationResult) Table() *Table {
	return &Table{Title: a.Title, Columns: a.Columns, Rows: a.Rows, Notes: a.Notes}
}

// AblateDispatch contrasts the MDP's 4-cycle hardware dispatch with an
// interrupt-style software dispatch (tens of cycles, as on the machines
// of Table 1): its effect on the null-RPC round trip and the barrier.
func AblateDispatch(o Options) (*AblationResult, error) {
	res := &AblationResult{
		Title:   "Ablation: hardware vs software message dispatch",
		Columns: []string{"Dispatch", "self-ping RTT (cycles)", "16-node barrier (µs)"},
	}
	for _, v := range []struct {
		name     string
		dispatch int32
	}{
		{"hardware (4 cycles)", 4},
		{"software (30 cycles)", 30},
	} {
		p := buildMicroProgram(buildPingClient)
		cfg := machine.Grid(1, 1, 1)
		cfg.MDP.Timing = timingWithDispatch(v.dispatch)
		rtt, err := runRoundTrip(p, cfg, 0, nil, 0)
		if err != nil {
			return nil, err
		}
		bar, err := measureBarrierCfg(16, 8, v.dispatch)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			v.name, fmt.Sprintf("%d", rtt), fmt.Sprintf("%.1f", Micros(bar)),
		})
		o.progress("ablate dispatch=%d rtt=%d barrier=%.0f", v.dispatch, rtt, bar)
	}
	res.Notes = append(res.Notes,
		"every message pays the dispatch twice per round trip and once per barrier wave")
	return res, nil
}

func timingWithDispatch(d int32) mdp.Timing {
	t := mdp.DefaultTiming()
	t.Dispatch = d
	return t
}

func measureBarrierCfg(nodes, inner int, dispatch int32) (float64, error) {
	p := barrierBenchProgram(inner)
	cfg := machine.GridForNodes(nodes)
	cfg.MDP.Timing = timingWithDispatch(dispatch)
	m, err := machine.New(cfg, p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	rt.StartAll(m, p, "main")
	if err := m.RunUntilHalt(0, 50_000_000); err != nil {
		return 0, err
	}
	start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 1)
	end, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
	return float64(end.Data()-start.Data()) / float64(inner), nil
}

// AblateArbitration contrasts the MDP router's fixed-priority output
// arbitration with round-robin under saturating random traffic. The
// paper observed that "arbitration for output channels occurs at a fixed
// priority and nodes may be unable to inject a message into the network
// for an arbitrarily long period of time during periods of high
// congestion", with per-node fault rates skewed by up to two orders of
// magnitude; round-robin removes the starvation.
func AblateArbitration(o Options) (*AblationResult, error) {
	k := 8
	warm, measure := int64(20_000), int64(40_000)
	if o.Quick {
		k = 4
		warm, measure = 10_000, 20_000
	}
	res := &AblationResult{
		Title:   "Ablation: router output arbitration (saturating random traffic)",
		Columns: []string{"Arbitration", "msgs/node (mean)", "min", "max", "starved nodes", "send-fault cycles"},
	}
	for _, v := range []struct {
		name string
		arb  network.Arbitration
	}{
		{"fixed priority (MDP)", network.FixedPriority},
		{"round robin", network.RoundRobin},
	} {
		st, err := runArbitrationPoint(k, v.arb, warm, measure)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			v.name,
			fmt.Sprintf("%.1f", st.mean),
			fmt.Sprintf("%d", st.min),
			fmt.Sprintf("%d", st.max),
			fmt.Sprintf("%d", st.starved),
			fmt.Sprintf("%d", st.faultCycles),
		})
		o.progress("ablate arb=%s mean=%.1f min=%d max=%d starved=%d",
			v.name, st.mean, st.min, st.max, st.starved)
	}
	res.Notes = append(res.Notes,
		"every node streams 3-word messages at the mesh centre at full rate",
		"starved = nodes making under a tenth of the mean progress; wormhole",
		"channel ownership, not just port arbitration, causes the lockout, so",
		"round-robin alone does not cure it — the return-to-sender protocol does")
	return res, nil
}

// runArbitrationPoint drives a sustained hotspot — every node streams
// 3-word messages at the mesh centre as fast as injection allows — and
// returns per-node progress statistics. Under fixed-priority output
// arbitration the ports closest in priority order keep winning the
// contended channels and distant nodes starve.
// arbStats summarizes per-node progress under the hotspot.
type arbStats struct {
	mean        float64
	min, max    int64
	starved     int
	faultCycles uint64
}

func runArbitrationPoint(k int, arb network.Arbitration, warm, measure int64) (arbStats, error) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A2, rt.AppBase).
		Label("loop").
		Send(asm.Mem(isa.A2, 1)). // the hotspot node
		MoveHdr(isa.R1, "sink", 3).
		Send(asm.R(isa.R1)).
		Send2E(isa.R0, asm.R(isa.ZERO)).
		Move(isa.R1, asm.Mem(isa.A2, fig3OffIters)).
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A2, fig3OffIters)).
		Br("loop")
	b.Label("sink").Suspend()
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		return arbStats{}, err
	}
	cfg := machine.Cube(k)
	cfg.Net.Arbitration = arb
	m, err := machine.New(cfg, p)
	if err != nil {
		return arbStats{}, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	centre := m.Net.NodeID(k/2, k/2, k/2)
	for id, n := range m.Nodes {
		n.Mem.Write(rt.AppBase+1, m.Net.NodeWord(centre))
		if id != centre {
			rt.StartNode(m, p, id, "main")
		}
	}
	m.StepN(warm)
	before := make([]int64, m.NumNodes())
	for i, n := range m.Nodes {
		w, _ := n.Mem.Read(rt.AppBase + fig3OffIters)
		before[i] = int64(w.Data())
	}
	m.StepN(measure)
	if err := m.FatalErr(); err != nil {
		return arbStats{}, err
	}
	st := arbStats{min: 1 << 62}
	var total int64
	deltas := make([]int64, 0, m.NumNodes()-1)
	for i, n := range m.Nodes {
		if i == centre {
			continue
		}
		w, _ := n.Mem.Read(rt.AppBase + fig3OffIters)
		d := int64(w.Data()) - before[i]
		deltas = append(deltas, d)
		total += d
		if d < st.min {
			st.min = d
		}
		if d > st.max {
			st.max = d
		}
		st.faultCycles += n.Stats.SendFaultCycles
	}
	st.mean = float64(total) / float64(len(deltas))
	for _, d := range deltas {
		if float64(d) < st.mean/10 {
			st.starved++
		}
	}
	return st, nil
}

// AblateQueueSize varies the hardware message-queue capacity under the
// radix-sort reorder phase, where every node simultaneously streams
// 3-word WriteData messages at the whole machine. Undersized queues
// push the burst back into the network as delivery stalls and send
// faults — the flow-control problem the paper's critique discusses.
func AblateQueueSize(o Options) (*AblationResult, error) {
	res := &AblationResult{
		Title:   "Ablation: hardware queue capacity (radix-sort reorder burst)",
		Columns: []string{"Queue (words)", "cycles", "send-fault cycles", "delivery stalls"},
	}
	nodes, keys := 16, 4096
	if o.Quick {
		nodes, keys = 8, 1024
	}
	// The reorder traffic is partly self-clocking — senders are
	// preempted by their own write handlers — so only severely
	// undersized queues expose the back-pressure. The floor is the
	// 18-word combining-tree message: a queue cannot deliver a message
	// longer than itself.
	for _, capWords := range []int{18, 32, 64, 512} {
		cw := capWords
		r, err := radix.Run(nodes, radix.Params{
			Keys: keys, Bits: 16, Seed: 11,
			Tune: func(c *machine.Config) { c.QueueCap = [2]int{cw, 256} },
		})
		if err != nil {
			return nil, err
		}
		var faultCycles uint64
		for _, ns := range r.M.Stats.Nodes {
			faultCycles += ns.SendFaultCycles
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", cw),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", faultCycles),
			fmt.Sprintf("%d", r.M.Net.Stats().DeliveryStalls),
		})
		o.progress("ablate qcap=%d cycles=%d faults=%d", cw, r.Cycles, faultCycles)
	}
	res.Notes = append(res.Notes,
		"undersized queues turn the reorder burst into network back-pressure and injection stalls")
	return res, nil
}

// AblateFlowControl contrasts three answers to a queue that cannot hold
// the N-Queens task burst: plain wormhole back-pressure (the MDP),
// return-to-sender flow control (the critique's proposal), and the
// software queue-overflow handler that relocates messages to external
// memory. The paper notes the software handler "is relatively expensive
// and intended for transient traffic overruns".
func AblateFlowControl(o Options) (*AblationResult, error) {
	res := &AblationResult{
		Title:   "Ablation: flow control under the N-Queens task burst (8 nodes, 64-word queues)",
		Columns: []string{"Mechanism", "cycles", "send-fault cycles", "returned msgs", "overflow relocations"},
	}
	// A shallow split with a dedicated distribution node emits the
	// whole burst before any worker finishes its first task: ~90 boards
	// over 7 workers exceed the 64-word queues (8 boards each).
	const n = 10
	run := func(name string, tune func(*machine.Config)) error {
		r, err := nqueens.Run(8, nqueens.Params{
			N: n, SplitDepth: 2, ExcludeDriver: true, Tune: tune,
		})
		if err != nil {
			return err
		}
		var faultCycles, overflow uint64
		for _, ns := range r.M.Stats.Nodes {
			faultCycles += ns.SendFaultCycles
			overflow += ns.OverflowFaults
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", faultCycles),
			fmt.Sprintf("%d", r.M.Net.Stats().ReturnedMsgs),
			fmt.Sprintf("%d", overflow),
		})
		o.progress("ablate flow=%s cycles=%d", name, r.Cycles)
		return nil
	}
	small := func(c *machine.Config) { c.QueueCap = [2]int{64, 256} }
	if err := run("back-pressure (MDP)", small); err != nil {
		return nil, err
	}
	if err := run("return-to-sender", func(c *machine.Config) {
		small(c)
		c.Net.ReturnToSender = true
	}); err != nil {
		return nil, err
	}
	if err := run("software overflow handler", func(c *machine.Config) {
		small(c)
		c.MDP.SoftQueue = mdp.SoftQueueConfig{Enable: true}
	}); err != nil {
		return nil, err
	}
	return res, nil
}
