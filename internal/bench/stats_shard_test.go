package bench

// Cross-shard statistics aggregation: the per-node stats.Node counters
// are folded into machine-wide figures (per-Cat cycle totals, Table 4's
// per-thread-class rows, Table 5's user/OS split) on the coordinator.
// Sharded stepping must produce exactly the same aggregates as the
// sequential reference — not merely close, since every counter is part
// of the determinism contract.

import (
	"reflect"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/stats"
)

var statShardCounts = []int{1, 2, 4}

func TestTable4CrossShard(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-shard table sweep is slow")
	}
	ref, err := Table4(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range statShardCounts {
		got, err := Table4(Options{Quick: true, Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: Table 4 diverged from sequential:\n  seq: %+v\n  par: %+v", k, ref, got)
		}
	}
}

func TestTable5CrossShard(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-shard table sweep is slow")
	}
	ref, err := Table5(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range statShardCounts {
		got, err := Table5(Options{Quick: true, Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: Table 5 diverged from sequential:\n  seq: %+v\n  par: %+v", k, ref, got)
		}
	}
}

// catTotals is the complete per-category cycle fold plus the other
// machine-wide stat aggregates.
type catTotals struct {
	cats    [stats.NumCats]int64
	instrs  uint64
	threads uint64
	sendF   uint64
	xlateF  uint64
}

func foldStats(m *stats.Machine) catTotals {
	var ct catTotals
	for c := stats.Cat(0); c < stats.NumCats; c++ {
		ct.cats[c] = m.Cycles(c)
	}
	ct.instrs = m.Instrs()
	ct.threads = m.Threads()
	ct.sendF = m.SendFaults()
	ct.xlateF = m.XlateFaults()
	return ct
}

// TestCatTotalsCrossShard folds the per-node Cat attribution of an LCS
// run under each shard count and requires identical totals, and that
// the per-node attribution always covers exactly nodes × cycles.
func TestCatTotalsCrossShard(t *testing.T) {
	run := func(shards int) (*stats.Machine, int64, int) {
		p := lcs.Params{LenA: 24, LenB: 36, Seed: 9}
		var eng *engine.Engine
		if shards > 0 {
			p.Setup = func(m *machine.Machine, _ *rt.Runtime) { eng = engine.Attach(m, shards) }
		}
		r, err := lcs.Run(8, p)
		eng.Stop()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return r.M.Stats, r.M.Cycle(), r.M.NumNodes()
	}
	refStats, refCycles, nodes := run(0)
	want := foldStats(refStats)
	var total int64
	for _, c := range want.cats {
		total += c
	}
	// Every node-cycle is attributed to exactly one category, except
	// that a node's final HALT cycle goes uncharged — so the fold may
	// fall short by at most one cycle per node.
	if full := refCycles * int64(nodes); total > full || total < full-int64(nodes) {
		t.Errorf("attribution incomplete: %d cat-cycles over %d node-cycles",
			total, full)
	}
	for _, k := range statShardCounts {
		st, cycles, _ := run(k)
		if cycles != refCycles {
			t.Errorf("shards=%d: cycles %d != %d", k, cycles, refCycles)
		}
		if got := foldStats(st); got != want {
			t.Errorf("shards=%d: stat totals diverged:\n  seq: %+v\n  par: %+v", k, want, got)
		}
		// The per-node vectors must match too, not just the fold.
		for i := range st.Nodes {
			if st.Nodes[i].Cycles != refStats.Nodes[i].Cycles {
				t.Errorf("shards=%d node %d: per-Cat cycles diverged: %v vs %v",
					k, i, st.Nodes[i].Cycles, refStats.Nodes[i].Cycles)
			}
		}
	}
}
