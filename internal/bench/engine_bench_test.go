package bench

// testing.B benchmarks for the parallel engine, run by scripts/bench.sh
// (never by plain `go test`). ns/op is nanoseconds per machine cycle.

import (
	"fmt"
	"testing"

	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// benchStep measures the per-cycle stepping cost of a barrier-loop
// machine of the given size under the given shard count.
func benchStep(b *testing.B, nodes, shards int) {
	p := barrierBenchProgram(1 << 28) // loops for far longer than any run
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		b.Fatal(err)
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	defer (Options{Shards: shards}).attachEngine(m)()
	rt.StartAll(m, p, "main")
	m.StepN(1000) // warm: the barrier waves are in flight
	b.ResetTimer()
	m.StepN(int64(b.N))
}

// benchIdleStep measures the per-cycle cost of the token-ring idle
// workload (internal/bench/idleprobe.go): nearly every node suspended
// on a cfut slot. This is the shape the event-horizon fast path is
// for, so it is benchmarked under both stepping modes.
func benchIdleStep(b *testing.B, nodes, shards int, reference bool) {
	m, _, stop, err := newIdleRing(Options{Shards: shards, Reference: reference}, nodes, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	m.StepN(1000) // warm: every waiting node has suspended
	b.ResetTimer()
	m.StepN(int64(b.N))
}

// benchCompiledStep measures the per-cycle cost of the roofline probe's
// send-free fig3-compute shape — the dispatch-bound calibration loop —
// under the interpreter and the compiled handler tier. On the compiled
// side the no-send certificate lets fusion windows span the whole StepN
// horizon (docs/COMPILED.md).
func benchCompiledStep(b *testing.B, nodes int, comp bool) {
	m, err := rooflineMachine(false, nodes, comp)
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(2000) // warm: every node is deep in the calibration loop
	b.ResetTimer()
	m.StepN(int64(b.N))
}

func BenchmarkEngine(b *testing.B) {
	for _, nodes := range []int{64, 512} {
		for _, shards := range []int{0, 2, 4, 8} {
			name := fmt.Sprintf("n%d/seq", nodes)
			if shards > 1 {
				name = fmt.Sprintf("n%d/shards-%d", nodes, shards)
			}
			b.Run(name, func(b *testing.B) { benchStep(b, nodes, shards) })
		}
	}
	for _, mode := range []struct {
		name      string
		shards    int
		reference bool
	}{
		{"idle-n512/reference", 0, true},
		{"idle-n512/fast", 0, false},
		{"idle-n512/fast-shards-4", 4, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchIdleStep(b, 512, mode.shards, mode.reference)
		})
	}
	for _, tier := range []struct {
		name string
		comp bool
	}{
		{"compute-n512/interpreted", false},
		{"compute-n512/compiled", true},
	} {
		b.Run(tier.name, func(b *testing.B) {
			benchCompiledStep(b, 512, tier.comp)
		})
	}
}
