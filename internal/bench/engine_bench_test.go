package bench

// testing.B benchmarks for the parallel engine, run by scripts/bench.sh
// (never by plain `go test`). ns/op is nanoseconds per machine cycle.

import (
	"fmt"
	"testing"

	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// benchStep measures the per-cycle stepping cost of a barrier-loop
// machine of the given size under the given shard count.
func benchStep(b *testing.B, nodes, shards int) {
	p := barrierBenchProgram(1 << 28) // loops for far longer than any run
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		b.Fatal(err)
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	defer (Options{Shards: shards}).attachEngine(m)()
	rt.StartAll(m, p, "main")
	m.StepN(1000) // warm: the barrier waves are in flight
	b.ResetTimer()
	m.StepN(int64(b.N))
}

func BenchmarkEngine(b *testing.B) {
	for _, nodes := range []int{64, 512} {
		for _, shards := range []int{0, 2, 4, 8} {
			name := fmt.Sprintf("n%d/seq", nodes)
			if shards > 1 {
				name = fmt.Sprintf("n%d/shards-%d", nodes, shards)
			}
			b.Run(name, func(b *testing.B) { benchStep(b, nodes, shards) })
		}
	}
}
