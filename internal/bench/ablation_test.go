package bench

import (
	"strconv"
	"testing"
)

func TestAblateDispatch(t *testing.T) {
	r, err := AblateDispatch(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	hw, _ := strconv.Atoi(r.Rows[0][1])
	sw, _ := strconv.Atoi(r.Rows[1][1])
	// A round trip dispatches twice, so +26 cycles of dispatch cost
	// must add ~52 cycles of RTT.
	if sw-hw < 40 {
		t.Errorf("software dispatch RTT delta = %d, want ≈52", sw-hw)
	}
	hwBar, _ := strconv.ParseFloat(r.Rows[0][2], 64)
	swBar, _ := strconv.ParseFloat(r.Rows[1][2], 64)
	if swBar <= hwBar {
		t.Error("software dispatch should slow the barrier")
	}
}

func TestAblateArbitration(t *testing.T) {
	r, err := AblateArbitration(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's lockout: under sustained hotspot congestion some
	// nodes are unable to inject for arbitrarily long. Starved nodes
	// must appear under the MDP's fixed-priority arbitration, and the
	// congestion must surface as send-fault back-pressure.
	starved, _ := strconv.Atoi(r.Rows[0][4])
	if starved == 0 {
		t.Error("no starved nodes under fixed priority")
	}
	faults, _ := strconv.Atoi(r.Rows[0][5])
	if faults == 0 {
		t.Error("no send-fault cycles under hotspot congestion")
	}
}

func TestAblateQueueSize(t *testing.T) {
	r, err := AblateQueueSize(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The tiny queue must induce back-pressure (delivery stalls) that
	// the big queue avoids, and the run must slow down accordingly.
	smallStalls, _ := strconv.Atoi(r.Rows[0][3])
	bigStalls, _ := strconv.Atoi(r.Rows[len(r.Rows)-1][3])
	if smallStalls <= bigStalls {
		t.Errorf("delivery stalls: small queue %d, big queue %d", smallStalls, bigStalls)
	}
	// Runtime must never improve with a smaller queue (the stalls are
	// often fully absorbed by the self-clocked reorder phase, so
	// equality is expected at modest scale).
	smallCyc, _ := strconv.Atoi(r.Rows[0][1])
	bigCyc, _ := strconv.Atoi(r.Rows[len(r.Rows)-1][1])
	if smallCyc < bigCyc {
		t.Errorf("cycles: small queue %d faster than big queue %d", smallCyc, bigCyc)
	}
}

func TestAblateFlowControl(t *testing.T) {
	r, err := AblateFlowControl(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Each mechanism completes and exhibits its signature: the RTS row
	// records returns, the overflow row records relocations.
	rts, _ := strconv.Atoi(r.Rows[1][3])
	ovf, _ := strconv.Atoi(r.Rows[2][4])
	if rts == 0 {
		t.Error("return-to-sender recorded no returns")
	}
	if ovf == 0 {
		t.Error("overflow handler recorded no relocations")
	}
}
