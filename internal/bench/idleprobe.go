package bench

// IdleProbe is the sync-heavy wall-clock harness: a token ring over
// cfut suspends. Every node blocks reading a presence-tagged slot; the
// holder of a token re-arms its slot, forwards the token to its ring
// successor's synchronizing-write handler, and suspends again. At any
// instant all but a handful of nodes are idle — the Figure 6 shape for
// synchronization-bound programs — which is exactly the case the
// event-horizon fast path exists for: the scheduler parks the waiting
// nodes and only touches the token holders. The reference loop steps
// all N nodes every cycle regardless, so the cycles/sec ratio between
// the two modes is the fast path's speedup.

import (
	"fmt"
	"time"

	"jmachine/internal/asm"
	"jmachine/internal/engine"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

const (
	idleOffSlot  = 0 // cfut slot the token lands in
	idleOffCount = 1 // visits this node has forwarded
	idleOffNext  = 2 // router word of the ring successor
)

// buildIdleRingProgram assembles the token-ring loop.
func buildIdleRingProgram() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Label("main.loop").
		Move(isa.R0, asm.Mem(isa.A0, idleOffSlot)). // suspends: slot is cfut
		// Re-arm the slot for the token's next visit.
		MoveI(isa.R1, 0).
		Wtag(isa.R1, asm.Imm(int32(word.TagCfut))).
		St(isa.R1, asm.Mem(isa.A0, idleOffSlot)).
		// Count the visit.
		Move(isa.R2, asm.Mem(isa.A0, idleOffCount)).
		Add(isa.R2, asm.Imm(1)).
		St(isa.R2, asm.Mem(isa.A0, idleOffCount)).
		// Forward the token to the successor's writesync handler.
		Move(isa.R1, asm.Mem(isa.A0, idleOffNext)).
		Send(asm.R(isa.R1)).
		MoveHdr(isa.R1, "pass", 2).
		Send2E(isa.R1, asm.R(isa.R0)).
		Br("main.loop")
	b.Label("pass").
		MoveI(isa.A0, rt.AppBase).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Bsr(isa.R3, rt.LWriteSync).
		Suspend()
	rt.BuildLib(b)
	return b.MustAssemble()
}

// newIdleRing builds and seeds a token-ring machine. The returned stop
// function releases the engine workers (no-op when sequential).
func newIdleRing(o Options, nodes, tokens int) (*machine.Machine, *engine.Engine, func(), error) {
	if tokens < 1 {
		tokens = 1
	}
	p := buildIdleRingProgram()
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return nil, nil, nil, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	eng, stop := o.attachEngineRv(m)
	for i, n := range m.Nodes {
		if err := n.Mem.FillCfut(rt.AppBase+idleOffSlot, 1); err != nil {
			stop()
			return nil, nil, nil, err
		}
		if err := n.Mem.Write(rt.AppBase+idleOffNext, m.Net.NodeWord((i+1)%nodes)); err != nil {
			stop()
			return nil, nil, nil, err
		}
	}
	rt.StartAll(m, p, "main")
	for k := 0; k < tokens; k++ {
		seed := m.Nodes[k*nodes/tokens]
		seed.Queues[0].Push(word.MsgHeader(p.Entry("pass"), 2))
		seed.Queues[0].Push(word.Int(1))
	}
	return m, eng, stop, nil
}

// IdleProbe runs the token ring for measure cycles after warm warm-up
// cycles. reference forces the every-node-every-cycle loop; tokens is
// the number of tokens seeded evenly around the ring (1 = maximally
// idle). Runs with the same (nodes, tokens, warm, measure) must end in
// byte-identical machine states whatever the mode or shard count.
func IdleProbe(nodes, shards int, reference bool, tokens int, warm, measure int64) (EngineProbeResult, error) {
	m, eng, stop, err := newIdleRing(Options{Shards: shards, Reference: reference}, nodes, tokens)
	if err != nil {
		return EngineProbeResult{}, err
	}
	defer stop()
	m.StepN(warm)
	start := time.Now() //jm:wallclock host-rate probe: wall time is reported, never fed back into the simulation
	m.StepN(measure)
	wall := time.Since(start).Seconds() //jm:wallclock host-rate probe
	if err := m.FatalErr(); err != nil {
		return EngineProbeResult{}, fmt.Errorf("idle probe (shards=%d): %w", shards, err)
	}
	var visits int64
	for _, n := range m.Nodes {
		w, _ := n.Mem.Read(rt.AppBase + idleOffCount)
		visits += int64(w.Data())
	}
	if visits == 0 {
		return EngineProbeResult{}, fmt.Errorf("idle probe (shards=%d): token never moved", shards)
	}
	return EngineProbeResult{
		Nodes:        nodes,
		Shards:       shards,
		Cycles:       measure,
		WallSeconds:  wall,
		CyclesPerSec: float64(measure) / wall,
		Digest:       m.StateDigest(),
		Rendezvous:   eng.Rendezvous(),
	}, nil
}
