package bench

import (
	"fmt"
	"math/rand"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Figure 3: every node repeats a loop that selects a random destination,
// sends an L-word message, waits for an L-word acknowledgement, and then
// idles for w cycles to simulate computation. The idle duration sets the
// offered load. A base case with no messages calibrates the loop's own
// cost, exactly as in the paper; one-way latency is the round-trip
// residue divided by two.
//
// Acknowledgements travel at priority 1 — the mechanism the MDP provides
// to keep reply traffic from deadlocking against request traffic.

const (
	fig3TableBase = 3000 // random-destination table (node words)
	fig3TableSize = 256

	fig3OffMask  = 0 // table index mask
	fig3OffIdle  = 1 // idle-loop iterations
	fig3OffIters = 2 // completed exchanges
	fig3OffFlag  = 3 // ack-arrived flag
	fig3OffSkew  = 4 // start-up delay iterations (decorrelates phases)
)

// buildFig3Program assembles the exchange loop for message length words;
// withSends=false builds the base-case loop used for calibration, which
// halts after haltAfter iterations so the loop's deterministic cost can
// be measured exactly (haltAfter=0 runs forever).
func buildFig3Program(words int, withSends bool, haltAfter int32) *asm.Program {
	b := fig3Builder(words, withSends, haltAfter)
	rt.BuildLib(b)
	return b.MustAssemble()
}

// buildFig3Standalone is the base case alone: the calibration loop with
// no echo/ack handlers and no runtime library, so the assembled image
// contains no SEND instruction at all. The compiled tier's no-send
// certificate therefore holds, which is exactly what the roofline
// probe's dispatch-bound shape measures (fusion windows bounded only by
// the run loop's horizon, not the quiet rule's delivery lookahead).
func buildFig3Standalone(haltAfter int32) *asm.Program {
	return fig3Builder(8, false, haltAfter).MustAssemble()
}

// fig3Builder emits the loop (and, for the loaded variant, its message
// handlers) into a fresh builder.
func fig3Builder(words int, withSends bool, haltAfter int32) *asm.Builder {
	b := asm.NewBuilder()
	app := int32(rt.AppBase)

	bb := b.Label("main").
		MoveI(isa.A2, app).
		MoveI(isa.R2, 0). // table index
		// Start-up skew: nodes begin at random phases so per-iteration
		// averages are free of lockstep truncation bias.
		Move(isa.R3, asm.Mem(isa.A2, fig3OffSkew)).
		Bf(isa.R3, "loop").
		Label("skew").
		Sub(isa.R3, asm.Imm(1)).
		Bt(isa.R3, "skew")
	bb.Label("loop").
		St(isa.ZERO, asm.Mem(isa.A2, fig3OffFlag)).
		MoveI(isa.A0, fig3TableBase).
		Move(isa.R0, asm.MemR(isa.A0, isa.R2))
	if withSends {
		b.Send(asm.R(isa.R0)).
			MoveHdr(isa.R1, "fig3.echo", int(words)).
			Send(asm.R(isa.R1))
		if words == 2 {
			b.SendE(asm.R(isa.NNR))
		} else {
			b.Send(asm.R(isa.NNR))
			for i := 0; i < words-3; i++ {
				b.Send(asm.R(isa.ZERO))
			}
			b.SendE(asm.R(isa.ZERO))
		}
		b.Label("spin").
			Move(isa.R1, asm.Mem(isa.A2, fig3OffFlag)).
			Bf(isa.R1, "spin")
	}
	b.Move(isa.R3, asm.Mem(isa.A2, fig3OffIdle)).
		Bf(isa.R3, "afteridle").
		Label("idle").
		Sub(isa.R3, asm.Imm(1)).
		Bt(isa.R3, "idle").
		Label("afteridle").
		Add(isa.R2, asm.Imm(1)).
		And(isa.R2, asm.Mem(isa.A2, fig3OffMask)).
		Move(isa.R1, asm.Mem(isa.A2, fig3OffIters)).
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A2, fig3OffIters))
	// Both variants share the loop closing so their costs match cycle
	// for cycle; the loaded runs pass an unreachable halt count.
	b.Lt(isa.R1, asm.Imm(haltAfter)).
		Bt(isa.R1, "loop").
		Halt()
	if !withSends {
		// The base case never invokes the handlers; omitting them keeps
		// the standalone image send-free.
		return b
	}

	// fig3.echo: [hdr, sender, pads...] — return an L-word ack at
	// priority 1.
	b.Label("fig3.echo").
		Send1(asm.Mem(isa.A3, 1)).
		MoveHdr(isa.R1, "fig3.ack", int(words)).
		Send1(asm.R(isa.R1))
	for i := 0; i < words-2; i++ {
		b.Send1(asm.R(isa.ZERO))
	}
	b.SendE1(asm.R(isa.ZERO)).
		Suspend()

	// fig3.ack: [hdr, pads...] — raise the client's flag.
	b.Label("fig3.ack").
		MoveI(isa.A0, app).
		MoveI(isa.R0, 1).
		St(isa.R0, asm.Mem(isa.A0, fig3OffFlag)).
		Suspend()
	return b
}

// fig3Point is one measured load point.
type fig3Point struct {
	Words        int
	IdleIters    int
	LatencyCyc   float64 // one-way, paper's method
	TrafficMbits float64 // bisection traffic
	Exchanges    int64
	Efficiency   float64 // computation fraction of total time
	GrainCycles  float64
}

// runFig3Point runs one (L, w) configuration and the matching base
// case. shards > 1 steps the loaded k×k×k machine with the parallel
// engine (the single-node base case always runs sequentially).
func runFig3Point(k, words, idleIters int, warm, measure int64, seed int64, shards int) (fig3Point, error) {
	// Base case: the loop without messages is deterministic, so its
	// per-iteration cost is measured exactly on a single node that
	// halts after a fixed iteration count.
	const baseIters = 200
	baseIter, err := func() (float64, error) {
		p := buildFig3Program(words, false, baseIters)
		m, err := machine.New(machine.Grid(1, 1, 1), p)
		if err != nil {
			return 0, err
		}
		rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
		m.Nodes[0].Mem.Write(rt.AppBase+fig3OffMask, word.Int(fig3TableSize-1))
		m.Nodes[0].Mem.Write(rt.AppBase+fig3OffIdle, word.Int(int32(idleIters)))
		rt.StartNode(m, p, 0, "main")
		if err := m.RunUntilHalt(0, int64(baseIters)*(4*int64(idleIters)+200)+10000); err != nil {
			return 0, err
		}
		return float64(m.Cycle()) / baseIters, nil
	}()
	if err != nil {
		return fig3Point{}, err
	}

	// Loaded case: all nodes exchange with random partners.
	p := buildFig3Program(words, true, 1<<30)
	m, err := machine.New(machine.Cube(k), p)
	if err != nil {
		return fig3Point{}, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	defer (Options{Shards: shards}).attachEngine(m)()
	r := rand.New(rand.NewSource(seed))
	period := 4*idleIters + 120
	for _, n := range m.Nodes {
		n.Mem.Write(rt.AppBase+fig3OffMask, word.Int(fig3TableSize-1))
		n.Mem.Write(rt.AppBase+fig3OffIdle, word.Int(int32(idleIters)))
		n.Mem.Write(rt.AppBase+fig3OffSkew, word.Int(int32(r.Intn(period/2+1))))
		for i := 0; i < fig3TableSize; i++ {
			n.Mem.Write(fig3TableBase+int32(i), m.Net.NodeWord(r.Intn(m.NumNodes())))
		}
	}
	rt.StartAll(m, p, "main")
	m.StepN(warm)
	startIters := totalIters(m)
	startStats := m.Net.Stats()
	m.StepN(measure)
	if err := m.FatalErr(); err != nil {
		return fig3Point{}, err
	}
	loaded := float64(totalIters(m)-startIters) / float64(m.NumNodes())
	endStats := m.Net.Stats()
	// Per-direction bisection traffic, matching the paper's 14.4 Gb/s
	// capacity convention (64 channels × 225 Mb/s each way).
	bisectBits := float64(endStats.BisectionPhits-startStats.BisectionPhits) * 18 / 2
	cycles := float64(measure)
	if loaded == 0 {
		return fig3Point{}, fmt.Errorf("fig3: no iterations completed (L=%d w=%d)", words, idleIters)
	}
	loadedIter := cycles / loaded // full exchange cycles per iteration
	latency := (loadedIter - baseIter) / 2
	grain := baseIter
	return fig3Point{
		Words:        words,
		IdleIters:    idleIters,
		LatencyCyc:   latency,
		TrafficMbits: Mbits(bisectBits / cycles),
		Exchanges:    int64(loaded),
		Efficiency:   grain / loadedIter,
		GrainCycles:  grain,
	}, nil
}

func totalIters(m *machine.Machine) int64 {
	var t int64
	for _, n := range m.Nodes {
		w, _ := n.Mem.Read(rt.AppBase + fig3OffIters)
		t += int64(w.Data())
	}
	return t
}

// Fig3Result holds both panels of Figure 3.
type Fig3Result struct {
	Latency    []Series // one-way latency (cycles) vs bisection Mbits/s
	Efficiency []Series // processor efficiency vs grain size (cycles)
	// SaturationMbits estimates where the 16-word curve saturates.
	SaturationMbits float64
}

// Fig3 sweeps idle time for message lengths 2, 4, 8, and 16 words.
func Fig3(o Options) (*Fig3Result, error) {
	k := 8
	warm, measure := int64(30_000), int64(60_000)
	idles := []int{0, 8, 16, 32, 64, 128, 256, 512, 1024}
	if o.Quick {
		k = 4
		warm, measure = 10_000, 25_000
		idles = []int{0, 16, 64, 256, 1024}
	}
	res := &Fig3Result{}
	lengths := []int{2, 4, 8, 16}
	type job struct{ li, wi int }
	points := make([][]fig3Point, len(lengths))
	errs := make([][]error, len(lengths))
	var jobs []job
	for li := range lengths {
		points[li] = make([]fig3Point, len(idles))
		errs[li] = make([]error, len(idles))
		for wi := range idles {
			jobs = append(jobs, job{li, wi})
		}
	}
	// Every point is an independent machine, so sweep them in parallel.
	runParallel(len(jobs), func(j int) {
		li, wi := jobs[j].li, jobs[j].wi
		words, w := lengths[li], idles[wi]
		// Long idle loops need longer windows so enough exchanges
		// complete for stable per-iteration averages.
		win := measure
		if need := int64(40 * (2*w + 300)); need > win {
			win = need
		}
		pt, err := runFig3Point(k, words, w, warm, win, int64(words*1000+w), o.Shards)
		points[li][wi], errs[li][wi] = pt, err
		if err == nil {
			o.progress("fig3 L=%d w=%d traffic=%.0f Mb/s latency=%.1f eff=%.2f",
				words, w, pt.TrafficMbits, pt.LatencyCyc, pt.Efficiency)
		}
	})
	for li, words := range lengths {
		lat := Series{Label: fmt.Sprintf("%d words", words)}
		eff := Series{Label: fmt.Sprintf("%d words", words)}
		for wi := range idles {
			if err := errs[li][wi]; err != nil {
				return nil, err
			}
			pt := points[li][wi]
			lat.Points = append(lat.Points, Point{X: pt.TrafficMbits, Y: pt.LatencyCyc})
			eff.Points = append(eff.Points, Point{X: pt.GrainCycles, Y: pt.Efficiency})
		}
		res.Latency = append(res.Latency, lat)
		res.Efficiency = append(res.Efficiency, eff)
	}
	// Saturation: the highest traffic any 16-word point reaches.
	for _, p := range res.Latency[3].Points {
		if p.X > res.SaturationMbits {
			res.SaturationMbits = p.X
		}
	}
	return res, nil
}

// Tables renders both panels.
func (r *Fig3Result) Tables() []*Table {
	left := SeriesTable("Figure 3 (left): one-way latency (cycles) vs bisection traffic (Mbits/s)",
		"Mbits/s", "cycles", r.Latency)
	left.Notes = append(left.Notes,
		fmt.Sprintf("peak measured bisection traffic %.0f Mbits/s (paper: saturation ≈6000 of 14400 peak)", r.SaturationMbits))
	right := SeriesTable("Figure 3 (right): processor efficiency vs grain size (cycles)",
		"grain", "efficiency", r.Efficiency)
	return []*Table{left, right}
}
