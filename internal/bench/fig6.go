package bench

import (
	"fmt"

	"jmachine/internal/stats"
)

// Fig6Result holds the per-application cycle breakdown (Figure 6).
type Fig6Result struct {
	Apps      []string
	Breakdown [][stats.NumCats]float64
	Nodes     int
}

// Fig6 runs each application on a 64-node machine (the paper's
// configuration for this figure) and attributes every node-cycle to one
// of the Figure 6 categories: computation, communication,
// synchronization, xlate, NNR calculation, and idle.
func Fig6(o Options) (*Fig6Result, error) {
	nodes := 64
	if o.Quick {
		nodes = 8
	}
	res := &Fig6Result{Nodes: nodes}
	for _, app := range appRunners(o) {
		pt, err := app.Run(nodes)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		res.Apps = append(res.Apps, app.Name)
		res.Breakdown = append(res.Breakdown, pt.M.Stats.Breakdown())
		o.progress("fig6 %s done (%d cycles)", app.Name, pt.Cycles)
	}
	return res, nil
}

// Table renders Figure 6 as percentage rows.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: breakdown of time per application (%d nodes, %% of node-cycles)", r.Nodes),
		Columns: []string{"Application", "comp", "comm", "sync", "xlate", "NNR", "idle"},
	}
	order := []stats.Cat{stats.CatComp, stats.CatComm, stats.CatSync, stats.CatXlate, stats.CatNNR, stats.CatIdle}
	for i, app := range r.Apps {
		row := []string{app}
		for _, c := range order {
			row = append(row, fmt.Sprintf("%.1f", 100*r.Breakdown[i][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
