package bench

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// SeqResult holds the sequential execution rates of Section 2.1: peak
// 12.5 MIPS (one instruction per cycle), a typical ~5.5 MIPS with code
// and data in internal memory, and under 2 MIPS with everything in
// external memory.
type SeqResult struct {
	PeakMIPS     float64
	TypicalMIPS  float64
	ExternalMIPS float64
}

// buildMixed emits a representative instruction blend: memory operands,
// stores, branches, and arithmetic, in the proportions of a compiled
// inner loop.
func buildMixed(b *asm.Builder, iters int32, dataAddr int32) {
	b.Label("main").
		MoveI(isa.A0, 0).
		Move(isa.A0, asm.Imm(dataAddr)).
		MoveI(isa.R2, iters).
		Label("loop").
		Move(isa.R0, asm.Mem(isa.A0, 0)). // load
		Add(isa.R0, asm.Imm(3)).
		Move(isa.R1, asm.Mem(isa.A0, 1)). // load
		Mul(isa.R1, asm.R(isa.R0)).
		St(isa.R1, asm.Mem(isa.A0, 2)). // store
		Move(isa.R3, asm.R(isa.R1)).
		And(isa.R3, asm.Imm(7)).
		Bf(isa.R3, "skip"). // data-dependent branch
		Xor(isa.R0, asm.R(isa.R1)).
		Label("skip").
		Sub(isa.R2, asm.Imm(1)).
		Bt(isa.R2, "loop").
		Halt()
}

// SequentialRates measures the three regimes.
func SequentialRates(o Options) (*SeqResult, error) {
	run := func(build func(b *asm.Builder), codeEmem bool) (float64, error) {
		b := asm.NewBuilder()
		build(b)
		rt.BuildLib(b)
		p, err := b.Assemble()
		if err != nil {
			return 0, err
		}
		cfg := machine.Grid(1, 1, 1)
		cfg.MDP.CodeInEmem = codeEmem
		m, err := machine.New(cfg, p)
		if err != nil {
			return 0, err
		}
		rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
		for i := int32(0); i < 8; i++ {
			m.Nodes[0].Mem.Write(imemAddr()+i, word.Int(i+1))
			m.Nodes[0].Mem.Write(ememAddr()+i, word.Int(i+1))
		}
		rt.StartNode(m, p, 0, "main")
		if err := m.RunUntilHalt(0, 10_000_000); err != nil {
			return 0, err
		}
		instr := float64(m.Stats.Nodes[0].Instrs)
		cycles := float64(m.Cycle())
		return instr / cycles * 12.5, nil
	}

	res := &SeqResult{}
	var err error
	// Peak: straight-line register arithmetic.
	res.PeakMIPS, err = run(func(b *asm.Builder) {
		b.Label("main").MoveI(isa.R2, 500).
			Label("l")
		for i := 0; i < 20; i++ {
			b.Add(isa.R0, asm.R(isa.R1))
		}
		b.Sub(isa.R2, asm.Imm(1)).Bt(isa.R2, "l").Halt()
	}, false)
	if err != nil {
		return nil, err
	}
	res.TypicalMIPS, err = run(func(b *asm.Builder) { buildMixed(b, 2000, imemAddr()) }, false)
	if err != nil {
		return nil, err
	}
	res.ExternalMIPS, err = run(func(b *asm.Builder) { buildMixed(b, 2000, ememAddr()) }, true)
	if err != nil {
		return nil, err
	}
	o.progress("seq peak=%.1f typical=%.1f external=%.1f MIPS",
		res.PeakMIPS, res.TypicalMIPS, res.ExternalMIPS)
	return res, nil
}

// Table renders the Section 2.1 rates.
func (r *SeqResult) Table() *Table {
	return &Table{
		Title:   "Section 2.1: sequential execution rates (MIPS at 12.5 MHz)",
		Columns: []string{"Regime", "Measured", "Paper"},
		Rows: [][]string{
			{"Peak (register operands)", trimFloat(r.PeakMIPS), "12.5"},
			{"Typical (code+data internal)", trimFloat(r.TypicalMIPS), "5.5"},
			{"Code+data external", trimFloat(r.ExternalMIPS), "<2"},
		},
	}
}
