package bench

import "jmachine/internal/machine"

// Ping measures one round trip from node 0 to target on a k×k×k mesh:
// a 2-word request answered by a 1-word acknowledgement (the Figure 2
// null RPC). shards > 1 steps the machine with the parallel engine
// (byte-identical measurement, shorter wall clock).
func Ping(k, target, shards int) (int64, error) {
	p := buildMicroProgram(buildPingClient)
	return runRoundTrip(p, machine.Cube(k), target, nil, shards)
}

// Bandwidth measures the sustained node-to-node data rate in Mbits/s
// for the given message size and receiver variant ("discard", "imem",
// or "emem") — one point of Figure 4.
func Bandwidth(variant string, words int) (float64, error) {
	return runFig4Point(variant, words, 300)
}
