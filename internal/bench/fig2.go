package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Fig2Result holds the round-trip-latency-versus-distance curves of
// Figure 2 plus the base-latency decomposition quoted in the text.
type Fig2Result struct {
	Series []Series // cycles vs hops: Ping, Read1 Imem/Emem, Read6 Imem/Emem
	// SelfPingCycles is the 0-hop ping RTT (the paper's 43-cycle base).
	SelfPingCycles int64
	// SlopePerHop is the fitted round-trip slope (the paper's 2).
	SlopePerHop float64
}

// Fig2 measures round-trip latency of null RPCs versus distance on an
// unloaded machine: Ping (2-word request, 1-word ack) and remote reads
// of 1 or 6 words from internal or external memory (3-word request, 2-
// or 7-word reply).
func Fig2(o Options) (*Fig2Result, error) {
	k := 8
	if o.Quick {
		k = 4
	}
	cfg := machine.Cube(k)
	maxHops := 3 * (k - 1)

	// Probe targets once.
	probe := machine.MustNew(cfg, buildMicroProgram(buildPingClient))
	targets := hopTargets(probe, maxHops)

	res := &Fig2Result{}

	ping := buildMicroProgram(buildPingClient)
	read1 := buildMicroProgram(buildReadClient(rt.LRRead1))
	read6 := buildMicroProgram(buildReadClient(rt.LRRead6))

	runSeries := func(label string, p *asm.Program, addr int32, words int) (Series, error) {
		s := Series{Label: label}
		for d, target := range targets {
			cycles, err := runRoundTrip(p, cfg, target, func(m *machine.Machine) {
				if addr >= 0 {
					m.Nodes[0].Mem.Write(rt.AppBase+1, word.Int(addr))
					for i := 0; i < words; i++ {
						m.Nodes[target].Mem.Write(addr+int32(i), word.Int(int32(i)))
					}
				}
			}, o.Shards)
			if err != nil {
				return s, fmt.Errorf("%s at %d hops: %w", label, d, err)
			}
			s.Points = append(s.Points, Point{X: float64(d), Y: float64(cycles)})
			o.progress("fig2 %s d=%d rtt=%d", label, d, cycles)
		}
		return s, nil
	}

	for _, v := range []struct {
		label string
		prog  *asm.Program
		addr  int32
		words int
	}{
		{"Ping", ping, -1, 0},
		{"Read 1 (Imem)", read1, imemAddr(), 1},
		{"Read 1 (Emem)", read1, ememAddr(), 1},
		{"Read 6 (Imem)", read6, imemAddr(), 6},
		{"Read 6 (Emem)", read6, ememAddr(), 6},
	} {
		s, err := runSeries(v.label, v.prog, v.addr, v.words)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}

	pingSeries := res.Series[0]
	res.SelfPingCycles = int64(pingSeries.Points[0].Y)
	n := len(pingSeries.Points)
	res.SlopePerHop = (pingSeries.Points[n-1].Y - pingSeries.Points[0].Y) /
		(pingSeries.Points[n-1].X - pingSeries.Points[0].X)
	return res, nil
}

// Table renders the figure as a data table.
func (r *Fig2Result) Table() *Table {
	t := SeriesTable("Figure 2: Round-trip latency vs distance (cycles)",
		"hops", "cycles", r.Series)
	t.Notes = append(t.Notes,
		fmt.Sprintf("self-ping base latency %d cycles (paper: 43)", r.SelfPingCycles),
		fmt.Sprintf("round-trip slope %.2f cycles/hop (paper: 2)", r.SlopePerHop))
	return t
}
