package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Tab2Result holds the producer-consumer synchronization costs of
// Table 2, in cycles, with and without hardware presence tags.
type Tab2Result struct {
	// Rows: Success, Failure, Write, Restart.
	Tags, NoTags [4]int64
	SaveRange    [2]int32 // thread save/restore policy range (cycles)
	RestartRange [2]int32
}

var tab2Events = [4]string{"Success", "Failure", "Write", "Restart"}

// measureSeq assembles a straight-line "main" sequence and returns its
// cycle cost (excluding HALT), with optional setup of node memory.
func measureSeq(build func(b *asm.Builder), setup func(m *machine.Machine)) (int64, error) {
	b := asm.NewBuilder()
	b.Label("main")
	build(b)
	b.Halt()
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		return 0, err
	}
	m, err := machine.New(machine.Grid(1, 1, 1), p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	if setup != nil {
		setup(m)
	}
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 100_000); err != nil {
		return 0, err
	}
	return m.Cycle() - 1, nil
}

// Table2 measures local producer-consumer synchronization with and
// without presence tags. Without tags, a separate synchronization
// variable must be tested before (or set after) accessing the data.
// All data is in on-chip memory. The "Failure" row reports only the
// cost up to the suspension decision; the thread save/restore policy
// range is reported separately, as in the paper.
func Table2(o Options) (*Tab2Result, error) {
	const slot = rt.AppBase + 4 // data slot
	const flag = rt.AppBase + 5 // software flag (no-tags protocol)
	res := &Tab2Result{}
	pol := rt.DefaultPolicy()
	res.SaveRange = [2]int32{30, 50}
	res.RestartRange = [2]int32{20, 50}

	// --- With presence tags ---
	// Success: read ready data — a plain 2-cycle load; the tag check is
	// free in hardware.
	var err error
	res.Tags[0], err = measureSeq(func(b *asm.Builder) {
		b.Move(isa.R0, asm.Mem(isa.A0, 0))
	}, func(m *machine.Machine) {
		m.Nodes[0].Mem.Write(slot, word.Int(7))
		m.Nodes[0].Ctx(2).Regs[isa.A0] = word.Int(slot)
	})
	if err != nil {
		return nil, err
	}

	// Failure: read a cfut slot — the load plus the hardware fault
	// vector (the suspension policy cost is reported separately). The
	// fault handler is measured via the sync category, so here we count
	// the architectural cost: load + fault vector.
	res.Tags[1] = int64(2 + 4) // 2-cycle read + 4-cycle trap vector

	// Write: the synchronizing write fast path — test-tag and store.
	res.Tags[2], err = measureSeq(func(b *asm.Builder) {
		b.Iscf(isa.R1, asm.Mem(isa.A0, 0)).
			Bt(isa.R1, "slow").
			St(isa.R0, asm.Mem(isa.A0, 0)).
			Label("slow")
	}, func(m *machine.Machine) {
		m.Nodes[0].Mem.Write(slot, word.Int(0))
		m.Nodes[0].Ctx(2).Regs[isa.A0] = word.Int(slot)
	})
	if err != nil {
		return nil, err
	}

	// Restart: with tags the waiter identity is in the slot itself, so
	// no extra user-level work is needed beyond the policy cost.
	res.Tags[3] = 0

	// --- Without presence tags ---
	// Success: test the flag, branch, then read the data.
	res.NoTags[0], err = measureSeq(func(b *asm.Builder) {
		b.Move(isa.R1, asm.Mem(isa.A1, 0)). // flag
							Bf(isa.R1, "fail").
							Move(isa.R0, asm.Mem(isa.A0, 0)).
							Label("fail")
	}, func(m *machine.Machine) {
		m.Nodes[0].Mem.Write(slot, word.Int(7))
		m.Nodes[0].Mem.Write(flag, word.Int(1))
		m.Nodes[0].Ctx(2).Regs[isa.A0] = word.Int(slot)
		m.Nodes[0].Ctx(2).Regs[isa.A1] = word.Int(flag)
	})
	if err != nil {
		return nil, err
	}

	// Failure: test the flag, take the branch to the software
	// suspension path (2 + 3 for the taken branch + the jump into the
	// scheduler, before any save/restore).
	res.NoTags[1], err = measureSeq(func(b *asm.Builder) {
		b.Move(isa.R1, asm.Mem(isa.A1, 0)).
			Bf(isa.R1, "fail").
			Move(isa.R0, asm.Mem(isa.A0, 0)).
			Label("fail").
			Nop().
			Nop()
	}, func(m *machine.Machine) {
		m.Nodes[0].Mem.Write(flag, word.Int(0))
		m.Nodes[0].Ctx(2).Regs[isa.A0] = word.Int(slot)
		m.Nodes[0].Ctx(2).Regs[isa.A1] = word.Int(flag)
	})
	if err != nil {
		return nil, err
	}

	// Write: store the data, then set the flag.
	res.NoTags[2], err = measureSeq(func(b *asm.Builder) {
		b.St(isa.R0, asm.Mem(isa.A0, 0)).
			MoveI(isa.R1, 1).
			St(isa.R1, asm.Mem(isa.A1, 0)).
			Move(isa.R2, asm.Mem(isa.A1, 1)) // check for a waiter record
	}, func(m *machine.Machine) {
		m.Nodes[0].Ctx(2).Regs[isa.A0] = word.Int(slot)
		m.Nodes[0].Ctx(2).Regs[isa.A1] = word.Int(flag)
	})
	if err != nil {
		return nil, err
	}

	// Restart without tags also defers to the scheduler policy.
	res.NoTags[3] = 0

	o.progress("tab2 tags=%v notags=%v", res.Tags, res.NoTags)
	_ = pol
	return res, nil
}

// Table renders Table 2.
func (r *Tab2Result) Table() *Table {
	t := &Table{
		Title:   "Table 2: Producer-consumer synchronization (cycles)",
		Columns: []string{"Event", "Tags", "No Tags", "Save/Restore"},
	}
	saveCol := [4]string{"", fmt.Sprintf("%d - %d", r.SaveRange[0], r.SaveRange[1]), "",
		fmt.Sprintf("%d - %d", r.RestartRange[0], r.RestartRange[1])}
	for i, ev := range tab2Events {
		t.Rows = append(t.Rows, []string{
			ev,
			fmt.Sprintf("%d", r.Tags[i]),
			fmt.Sprintf("%d", r.NoTags[i]),
			saveCol[i],
		})
	}
	t.Notes = append(t.Notes, "paper: Success 2/5, Failure 6/7, Write 4/6, Restart 0/0")
	return t
}
