package bench

// Roofline-style stepping probe for the compiled handler tier, built
// on the Figure 3 workload itself: the fig3 compute loop (the paper's
// base-case calibration shape, no messages) and the fig3 loaded
// exchange run interpreted and compiled, and the compiled/interpreted
// rate ratio classifies each shape. Closure dispatch and fusion only
// help cycles that retire instructions, so the compute shape — a
// send-free image on which fusion windows span the whole horizon — is
// where the tier's speedup shows ("dispatch-bound"), while the loaded
// exchange spends most host time stepping routers, delivery queues,
// and memory-system charge machinery the compiled tier deliberately
// never touches ("memory-bound"): its ratio stays near 1 no matter how
// fast handler code gets. Digest equality between each pair of runs
// re-proves the equivalence contract at benchmark scale.

import (
	"fmt"
	"math/rand"
	"time"

	"jmachine/internal/asm"
	"jmachine/internal/compiled"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// RooflineRow is one (shape, tier) measurement.
type RooflineRow struct {
	Shape         string  `json:"shape"`
	Compiled      bool    `json:"compiled"`
	Nodes         int     `json:"nodes"`
	Cycles        int64   `json:"cycles"`
	WallSeconds   float64 `json:"wall_seconds"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	InstrPerCycle float64 `json:"instr_per_cycle"` // boundary density per node-cycle
	FusedInstrs   int64   `json:"fused_instrs"`    // compiled tier only
	Digest        uint64  `json:"state_digest"`
}

// RooflineResult is the full probe: rows plus the per-shape
// compiled/interpreted ratio and classification.
type RooflineResult struct {
	Rows []RooflineRow `json:"rows"`
	// Speedup maps shape to compiled rate / interpreted rate.
	Speedup map[string]float64 `json:"compiled_speedup"`
	// Bound maps shape to its classification. The compiled tier removes
	// exactly one cost — per-instruction dispatch — and leaves the
	// memory-system machinery (routers moving phits, delivery queues,
	// charge accounting) untouched, so the tier's own speedup is the
	// measurement: a shape it accelerates by >= rooflineDispatchBound
	// was "dispatch-bound", and one it cannot accelerate spends its
	// host time in the machinery and is "memory-bound". Instruction
	// density (InstrPerCycle) is reported alongside as context but is
	// not the classifier — the loaded exchange retires plenty of
	// spin-loop instructions while its wall clock goes to the mesh.
	Bound        map[string]string `json:"bound"`
	DigestsMatch bool              `json:"digests_match"`
}

// rooflineDispatchBound is the classification threshold: removing
// dispatch must buy at least this ratio for dispatch to have been the
// binding cost.
const rooflineDispatchBound = 1.5

// rooflineMachine builds one fig3 machine. The compute shape is the
// paper's base-case calibration loop assembled standalone — no message
// handlers, no runtime library, hence a send-free image on which the
// compiled tier's no-send certificate holds — with a small idle count
// so the loop stays boundary-dense. The exchange shape is EngineProbe's
// loaded configuration with the full runtime.
func rooflineMachine(sends bool, nodes int, comp bool) (*machine.Machine, error) {
	const words = 8
	const idleIters = 16
	var p *asm.Program
	if sends {
		p = buildFig3Program(words, true, 1<<30)
	} else {
		p = buildFig3Standalone(1 << 30)
	}
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		return nil, err
	}
	if sends {
		rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	}
	if comp {
		var allow []asm.Allowance
		if sends {
			allow = rt.CheckAllowances()
		}
		if err := compiled.Attach(m, allow...); err != nil {
			return nil, err
		}
	}
	rnd := rand.New(rand.NewSource(3))
	period := 4*idleIters + 120
	for _, n := range m.Nodes {
		n.Mem.Write(rt.AppBase+fig3OffMask, word.Int(fig3TableSize-1))
		n.Mem.Write(rt.AppBase+fig3OffIdle, word.Int(int32(idleIters)))
		n.Mem.Write(rt.AppBase+fig3OffSkew, word.Int(int32(rnd.Intn(period/2+1))))
		for i := 0; i < fig3TableSize; i++ {
			n.Mem.Write(fig3TableBase+int32(i), m.Net.NodeWord(rnd.Intn(m.NumNodes())))
		}
	}
	if sends {
		rt.StartAll(m, p, "main")
	} else {
		entry := p.Entry("main")
		for _, n := range m.Nodes {
			n.StartBackground(entry)
		}
	}
	return m, nil
}

// rooflineShape runs one shape at both tiers.
func rooflineShape(shape string, sends bool, nodes int, warm, measure int64) ([]RooflineRow, error) {
	var rows []RooflineRow
	for _, comp := range []bool{false, true} {
		m, err := rooflineMachine(sends, nodes, comp)
		if err != nil {
			return nil, err
		}
		m.StepN(warm)
		instrs0 := int64(0)
		for _, n := range m.Nodes {
			instrs0 += int64(n.Stats.Instrs)
		}
		start := time.Now() //jm:wallclock host-rate probe: wall time is reported, never fed back into the simulation
		m.StepN(measure)
		wall := time.Since(start).Seconds() //jm:wallclock host-rate probe
		if err := m.FatalErr(); err != nil {
			return nil, fmt.Errorf("roofline %s (compiled=%v): %w", shape, comp, err)
		}
		instrs := int64(0)
		for _, n := range m.Nodes {
			instrs += int64(n.Stats.Instrs)
		}
		rate := 0.0
		if wall > 0 {
			rate = float64(measure) / wall
		}
		rows = append(rows, RooflineRow{
			Shape:         shape,
			Compiled:      comp,
			Nodes:         nodes,
			Cycles:        measure,
			WallSeconds:   wall,
			CyclesPerSec:  rate,
			InstrPerCycle: float64(instrs-instrs0) / float64(measure*int64(nodes)),
			FusedInstrs:   m.FusedInstructions(),
			Digest:        m.StateDigest(),
		})
	}
	return rows, nil
}

// Roofline runs both fig3 shapes at both tiers and folds the
// classification. The interpreted and compiled run of a shape must end
// in byte-identical machine states.
func Roofline(nodes int, warm, measure int64) (*RooflineResult, error) {
	res := &RooflineResult{
		Speedup:      map[string]float64{},
		Bound:        map[string]string{},
		DigestsMatch: true,
	}
	shapes := []struct {
		name  string
		sends bool
	}{
		{"fig3-compute", false},
		{"fig3-exchange", true},
	}
	for _, s := range shapes {
		rows, err := rooflineShape(s.name, s.sends, nodes, warm, measure)
		if err != nil {
			return nil, err
		}
		itp, cpl := rows[0], rows[1]
		if itp.Digest != cpl.Digest {
			res.DigestsMatch = false
		}
		if itp.CyclesPerSec > 0 {
			res.Speedup[s.name] = cpl.CyclesPerSec / itp.CyclesPerSec
		}
		if res.Speedup[s.name] >= rooflineDispatchBound {
			res.Bound[s.name] = "dispatch-bound"
		} else {
			res.Bound[s.name] = "memory-bound"
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}
