package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ServeResult is one load-generation run against a jm-serve daemon:
// wall-clock service metrics plus the in-simulation latency
// distribution harvested from the KV mailbox timestamps.
type ServeResult struct {
	Sessions  int   `json:"sessions"`
	Requests  int64 `json:"requests"` // completed KV batches
	Ops       int64 `json:"ops"`      // individual puts/gets
	Errors    int64 `json:"errors"`
	Nodes     int   `json:"nodes_per_session"`
	Keys      int   `json:"keys_per_session"`
	BatchSize int   `json:"batch_size"`
	Conc      int   `json:"client_concurrency"`

	WallSeconds float64 `json:"wall_seconds"`
	ReqPerSec   float64 `json:"requests_per_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`

	// Request wall-clock latency (client-observed, milliseconds).
	WallP50Ms float64 `json:"wall_p50_ms"`
	WallP90Ms float64 `json:"wall_p90_ms"`
	WallP99Ms float64 `json:"wall_p99_ms"`

	// Per-op latency in machine cycles (inject → reply landed), from
	// the KV mailbox arrival stamps: host-independent.
	CycleP50 int64 `json:"cycle_p50"`
	CycleP90 int64 `json:"cycle_p90"`
	CycleP99 int64 `json:"cycle_p99"`

	// Verified counts sessions whose final digest matched a standalone
	// replay of the same op stream; -1 when verification was skipped.
	Verified int `json:"verified_sessions"`
}

// ServeHistoryEntry is the one-line summary of a past jm-load run.
type ServeHistoryEntry struct {
	Label     string  `json:"label,omitempty"`
	Sessions  int     `json:"sessions"`
	Requests  int64   `json:"requests"`
	ReqPerSec float64 `json:"requests_per_sec"`
	WallP99Ms float64 `json:"wall_p99_ms"`
	CycleP99  int64   `json:"cycle_p99"`
	Verified  int     `json:"verified_sessions"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Workload   string              `json:"workload"`
	Label      string              `json:"label,omitempty"`
	HostCores  int                 `json:"host_cores"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	GoVersion  string              `json:"go_version"`
	Notes      []string            `json:"notes"`
	Result     ServeResult         `json:"result"`
	History    []ServeHistoryEntry `json:"history,omitempty"`
}

// Summarize folds a report into its history line.
func (r *ServeReport) Summarize() ServeHistoryEntry {
	return ServeHistoryEntry{
		Label:     r.Label,
		Sessions:  r.Result.Sessions,
		Requests:  r.Result.Requests,
		ReqPerSec: r.Result.ReqPerSec,
		WallP99Ms: r.Result.WallP99Ms,
		CycleP99:  r.Result.CycleP99,
		Verified:  r.Result.Verified,
	}
}

// WriteServeReport writes the report to path ("-" for stdout),
// folding any existing report at that path into the history list —
// append, never erase, same as BENCH_engine.json.
func WriteServeReport(rep *ServeReport, path string) error {
	if path != "-" {
		if prev, err := os.ReadFile(path); err == nil {
			var old ServeReport
			if err := json.Unmarshal(prev, &old); err == nil {
				rep.History = append(old.History, old.Summarize())
			} else {
				fmt.Fprintf(os.Stderr, "warning: %s exists but is not a jm-load report (%v); history starts fresh\n", path, err)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// PercentileF returns the p-th percentile (0 < p <= 100) of xs by the
// nearest-rank method. xs is sorted in place. Zero-length input yields 0.
func PercentileF(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	idx := int(float64(len(xs))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

// PercentileI is PercentileF over int64 samples.
func PercentileI(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	idx := int(float64(len(xs))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}
