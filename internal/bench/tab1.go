package bench

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/baseline"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/stats"
)

// Tab1Result holds the measured J-Machine one-way overheads alongside
// the published comparison rows.
type Tab1Result struct {
	Rows []baseline.MessageOverhead
	// SendCycles and ReceiveCycles decompose the measured t_s.
	SendCycles, ReceiveCycles float64
}

// Table1 measures the J-Machine's asynchronous one-way message overhead:
// the fixed processor cost to format-and-inject plus the cost to dispatch
// and absorb a message, and the per-byte injection cost. Network transit
// latency is excluded, as in the paper.
func Table1(o Options) (*Tab1Result, error) {
	const msgs = 200

	// Sender/receiver overhead: node 0 sends `msgs` header-only
	// messages, spaced by an idle loop so injection never back-pressures;
	// node 1's sink handler just consumes them. The sender's comm cycles
	// per message are the send overhead; the receiver's sync cycles per
	// message are the dispatch/absorb overhead.
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R2, msgs).
		Label("loop").
		MoveI(isa.A0, rt.AppBase).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, "sink", 1).
		SendE(asm.R(isa.R1)).
		MoveI(isa.R0, 20). // spacing: ~40 idle-loop cycles
		Label("gap").
		Sub(isa.R0, asm.Imm(1)).
		Bt(isa.R0, "gap").
		Sub(isa.R2, asm.Imm(1)).
		Bt(isa.R2, "loop").
		Halt()
	b.Label("sink").
		Suspend()
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	m, err := machine.New(machine.Grid(2, 1, 1), p)
	if err != nil {
		return nil, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 10_000_000); err != nil {
		return nil, err
	}
	if err := m.RunQuiescent(100_000); err != nil {
		return nil, err
	}
	send := float64(m.Stats.Nodes[0].Cycles[stats.CatComm]) / msgs
	recv := float64(m.Stats.Nodes[1].Cycles[stats.CatSync]) / msgs

	// Per-byte cost: the serialization rate of the channel, from the
	// one-way delivery-time difference between 16- and 2-word messages
	// (36-bit words = 4.5 bytes).
	lat2, err := oneWayLatency(2)
	if err != nil {
		return nil, err
	}
	lat16, err := oneWayLatency(16)
	if err != nil {
		return nil, err
	}
	perByte := float64(lat16-lat2) / (14 * 4.5)

	ts := send + recv
	measured := baseline.MessageOverhead{
		Machine:    "J-Machine (measured)",
		MicrosPer:  Micros(ts),
		MicrosByte: Micros(perByte),
		CyclesPer:  ts,
		CyclesByte: perByte,
		Measured:   true,
	}
	rows := baseline.Table1Published()
	rows = append(rows, baseline.Table1JMachinePaper(), measured)
	o.progress("tab1 send=%.1f recv=%.1f perByte=%.2f", send, recv, perByte)
	return &Tab1Result{Rows: rows, SendCycles: send, ReceiveCycles: recv}, nil
}

// oneWayLatency measures enqueue-to-delivery time for one L-word message
// between adjacent nodes.
func oneWayLatency(words int) (int64, error) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, "sink", words).
		Send(asm.R(isa.R1))
	for i := 0; i < words-2; i++ {
		b.Send(asm.R(isa.ZERO))
	}
	b.SendE(asm.R(isa.ZERO)).
		Halt()
	b.Label("sink").Suspend()
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		return 0, err
	}
	m, err := machine.New(machine.Grid(2, 1, 1), p)
	if err != nil {
		return 0, err
	}
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 100_000); err != nil {
		return 0, err
	}
	if err := m.RunQuiescent(100_000); err != nil {
		return 0, err
	}
	st := m.Net.Stats()
	return int64(st.MeanLatency(0)), nil
}

// Table renders Table 1.
func (r *Tab1Result) Table() *Table {
	t := &Table{
		Title:   "Table 1: One-way message overhead",
		Columns: []string{"Machine", "ts µs/msg", "tb µs/byte", "cycles/msg", "cycles/byte"},
	}
	for _, row := range r.Rows {
		name := row.Machine
		if row.Blocking {
			name += " *"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", row.MicrosPer),
			fmt.Sprintf("%.3f", row.MicrosByte),
			fmt.Sprintf("%.1f", row.CyclesPer),
			fmt.Sprintf("%.2f", row.CyclesByte),
		})
	}
	t.Notes = append(t.Notes,
		"* blocking send/receive",
		fmt.Sprintf("measured split: send %.1f cycles, receive %.1f cycles", r.SendCycles, r.ReceiveCycles),
		"published rows are the literature figures the paper compares against")
	return t
}
