package bench

import (
	"errors"
	"fmt"
	"testing"

	"jmachine/internal/chaos"
	"jmachine/internal/machine"
)

// acceptanceCampaign corrupts the first data message out of node 0 and
// freezes a mid-machine node for a stretch — the issue's reference
// fault mix.
func acceptanceCampaign(t *testing.T) chaos.Campaign {
	t.Helper()
	c, err := chaos.ParseCampaign(
		"name=acceptance;seed=7;corrupt@1:node=0,word=1,mask=16;freeze@1000:node=5,dur=4000")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignWithoutReliableTripsWatchdog(t *testing.T) {
	// Checksum drops the corrupted ping; with nothing retransmitting it
	// the client suspends forever. The watchdog must convert that wedge
	// into ErrNoProgress with a non-empty diagnostic dump.
	res, err := PingCampaign(acceptanceCampaign(t), ResilienceConfig{
		Checksum: true, RTS: true, MaxReturns: 32,
		Watchdog: 5_000, Budget: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("corrupted ping completed without reliable delivery")
	}
	var np machine.ErrNoProgress
	if !errors.As(res.Err, &np) {
		t.Fatalf("expected ErrNoProgress, got %v", res.Err)
	}
	if np.Diag == nil || len(np.Diag.Suspect) == 0 {
		t.Fatal("diagnostic dump is empty")
	}
	if res.WatchdogTrips != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", res.WatchdogTrips)
	}
	if res.Net.CorruptDrops == 0 {
		t.Error("the corruption was never applied")
	}
	if res.Cycles >= 200_000 {
		t.Error("watchdog did not save the cycle budget")
	}
}

func TestCampaignWithReliableCompletes(t *testing.T) {
	rc := ResilienceConfig{
		Checksum: true, RTS: true, MaxReturns: 32,
		Watchdog: 100_000, Reliable: true, Budget: 2_000_000,
	}
	camp := acceptanceCampaign(t)

	ping, err := PingCampaign(camp, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !ping.Completed {
		t.Fatalf("pingpong failed under reliable delivery: %v", ping.Err)
	}
	if ping.Reliable.Retries == 0 {
		t.Error("the corrupt drop was never retransmitted")
	}

	bar, err := BarrierCampaign(camp, rc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bar.Completed {
		t.Fatalf("barrier failed under reliable delivery: %v", bar.Err)
	}
	// The driver halts as soon as the last barrier releases, so the
	// final few acks may still be in flight — but nothing may have
	// been abandoned, and the overwhelming majority must have retired.
	if bar.Reliable.Failures != 0 {
		t.Errorf("barrier run abandoned %d messages", bar.Reliable.Failures)
	}
	if bar.Reliable.Tracked == 0 || bar.Reliable.AcksReceived < bar.Reliable.Tracked-4 {
		t.Errorf("acks %d/%d tracked", bar.Reliable.AcksReceived, bar.Reliable.Tracked)
	}
}

func TestCampaignRunsAreDeterministic(t *testing.T) {
	rc := ResilienceConfig{
		Checksum: true, RTS: true, MaxReturns: 32,
		Watchdog: 100_000, Reliable: true, Budget: 2_000_000,
	}
	camp := chaos.RandomCampaign(11, 8, 50_000, 6)
	render := func() string {
		res, err := PingCampaign(camp, rc)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %d %d %+v %+v %q",
			res.Completed, res.Cycles, res.Value, res.Net, res.Reliable, res.ChaosReport)
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two identical runs diverged:\n%s\n%s", a, b)
	}
}
