package bench

import (
	"fmt"

	"jmachine/internal/apps/tsp"
	"jmachine/internal/cst"
	"jmachine/internal/rt"
)

// Tab5Result holds the major components of cost for TSP (Table 5),
// split between user code (the task-processing, bound-distributing, and
// completion threads) and the operating system (the COSMOS-style
// scheduler, work redistribution, and runtime services).
type Tab5Result struct {
	Nodes         int
	RunTimeMs     float64
	UserThreads   uint64
	OSThreads     uint64
	UserInstrs    uint64
	OSInstrs      uint64
	Xlates        uint64
	XlateFaults   uint64
	UserPerThread float64
	OSPerThread   float64
	UserMsgLen    float64
	OSMsgLen      float64
}

// Table5 runs TSP and decomposes its cost: user threads are the
// method-invocation handlers (task slices, continuations, bound updates,
// completion reports); the operating system is the scheduler, work
// redistribution, and runtime-library handlers.
func Table5(o Options) (*Tab5Result, error) {
	nodes := 64
	params := tspParams(o)
	if o.Quick {
		nodes = 8
		params = tsp.Params{Cities: 8, Seed: 11}
	}
	setup, stop := o.engineHook()
	params.Setup = setup
	res, err := tsp.Run(nodes, params)
	stop()
	if err != nil {
		return nil, err
	}
	m, p := res.M, res.P

	user := []string{tsp.LTask, cst.LCont, tsp.LBound, tsp.LDoneMsg}
	os := []string{cst.LSched, cst.LRequest, cst.LGrant, cst.LNoWork, cst.LHalt, rt.LRestore}

	sum := func(labels []string) (threads, instrs, msgWords uint64) {
		for _, l := range labels {
			if !p.HasLabel(l) {
				continue
			}
			h := m.Stats.HandlerTotal(p.Entry(l))
			threads += h.Invocations
			instrs += h.Instrs
			msgWords += h.MsgWords
		}
		return
	}
	ut, ui, uw := sum(user)
	ot, oi, ow := sum(os)

	var xlates uint64
	for _, n := range m.Nodes {
		xlates += n.Xl.Stats().Hits + n.Xl.Stats().Misses
	}

	out := &Tab5Result{
		Nodes:       nodes,
		RunTimeMs:   Micros(float64(res.Cycles)) / 1000,
		UserThreads: ut, OSThreads: ot,
		UserInstrs: ui, OSInstrs: oi,
		Xlates:      xlates,
		XlateFaults: m.Stats.XlateFaults(),
	}
	if ut > 0 {
		out.UserPerThread = float64(ui) / float64(ut)
		out.UserMsgLen = float64(uw) / float64(ut)
	}
	if ot > 0 {
		out.OSPerThread = float64(oi) / float64(ot)
		out.OSMsgLen = float64(ow) / float64(ot)
	}
	o.progress("tab5 done: %d user threads, %d OS threads", ut, ot)
	return out, nil
}

// Table renders Table 5.
func (r *Tab5Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Table 5: major components of cost for TSP (%d nodes)", r.Nodes),
		Columns: []string{"Metric", "User", "O/S"},
		Rows: [][]string{
			{"Run Time (msec)", fmt.Sprintf("%.2f", r.RunTimeMs), ""},
			{"# Threads (Msgs)", fmt.Sprintf("%d", r.UserThreads), fmt.Sprintf("%d", r.OSThreads)},
			{"# Instructions", fmt.Sprintf("%d", r.UserInstrs), fmt.Sprintf("%d", r.OSInstrs)},
			{"# xlates", fmt.Sprintf("%d", r.Xlates), ""},
			{"# xlate Faults", fmt.Sprintf("%d", r.XlateFaults), ""},
			{"Instr/Thread (mean)", fmt.Sprintf("%.0f", r.UserPerThread), fmt.Sprintf("%.0f", r.OSPerThread)},
			{"Avg Msg Length", fmt.Sprintf("%.1f", r.UserMsgLen), fmt.Sprintf("%.1f", r.OSMsgLen)},
		},
	}
	t.Notes = append(t.Notes,
		"user = task/bound/result threads entered via the scheduler; O/S = work redistribution and runtime services")
	return t
}
