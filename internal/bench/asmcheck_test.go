package bench

import (
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/asm"
	"jmachine/internal/rt"
)

// TestAsmCheckWorkloads sweeps the static MDP verifier (asm.Check,
// docs/LINT.md) over every workload program: the four macro-benchmark
// applications plus the two micro-benchmark programs built in this
// package. New handlers added to any workload are verified by default.
func TestAsmCheckWorkloads(t *testing.T) {
	programs := []struct {
		name string
		prog *asm.Program
	}{
		{"lcs", lcs.BuildProgram()},
		{"radix", radix.BuildProgram()},
		{"nqueens", nqueens.BuildProgram()},
		{"tsp", tsp.BuildProgram()},
		{"pingpong", buildMicroProgram(buildPingClient)},
		{"barrier", barrierBenchProgram(4)},
	}
	for _, tc := range programs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, f := range asm.Check(tc.prog, rt.CheckAllowances()...) {
				t.Errorf("%s: %s", tc.name, f)
			}
		})
	}
}
