package network

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jmachine/internal/queue"
	"jmachine/internal/word"
)

// Arbitration selects how competing inputs win an output channel.
type Arbitration int

const (
	// FixedPriority arbitrates in fixed input-port order, as the MDP
	// router did. Under congestion some nodes can be locked out for
	// arbitrarily long — the unfairness the paper measured in radix sort.
	FixedPriority Arbitration = iota
	// RoundRobin rotates the winning input each cycle (fairness ablation).
	RoundRobin
)

// DefaultOutboxWords is the default per-priority injection buffer
// capacity in words. SEND instructions fault (and retry) when a message
// would overflow it — the network back-pressure the paper describes.
const DefaultOutboxWords = 32

// DefaultLaunchCycles is the network-interface pipeline latency between
// a completed send and the message's first phit entering the router —
// calibrated so a node's self-ping round trip lands at the paper's 43
// cycles (24 of network, 19 of thread execution).
const DefaultLaunchCycles = 3

// Config describes a mesh.
type Config struct {
	DimX, DimY, DimZ int
	OutboxWords      int // injection capacity per node per priority
	LaunchCycles     int // NI latency from send completion to first phit (-1 = none)
	Arbitration      Arbitration
	// ReturnToSender enables the flow-control protocol from the paper's
	// critique: a message whose destination queue cannot hold it is
	// drained at the delivery port and sent back to its source, which
	// retransmits it after RTSBackoff cycles. This keeps a stopped
	// receiver from blocking the network, at the cost of retry traffic.
	ReturnToSender bool
	// RTSBackoff is the retransmission delay in cycles (default 64).
	RTSBackoff int
	// MaxReturns bounds how many times a message may be refused before
	// the delivery port discards it instead of turning it around again
	// (0 = unbounded, the historical behaviour). Bounding converts the
	// livelock of a permanently-full receiver into a counted drop that
	// higher layers (rt.Reliable) can surface as an error.
	MaxReturns int
	// Checksum makes every injected message carry a checksum word (two
	// extra phits) that the delivery port verifies; corrupted worms are
	// drained and counted in Stats.CorruptDrops rather than delivered.
	// Without it, in-flight corruption is silently delivered.
	Checksum bool
}

func (c Config) withDefaults() Config {
	if c.DimX == 0 {
		c.DimX = 1
	}
	if c.DimY == 0 {
		c.DimY = 1
	}
	if c.DimZ == 0 {
		c.DimZ = 1
	}
	if c.OutboxWords == 0 {
		c.OutboxWords = DefaultOutboxWords
	}
	if c.LaunchCycles == 0 {
		c.LaunchCycles = DefaultLaunchCycles
	} else if c.LaunchCycles < 0 {
		c.LaunchCycles = 0
	}
	if c.RTSBackoff == 0 {
		c.RTSBackoff = 64
	}
	return c
}

// outbox is the per-node, per-priority injection queue: complete messages
// awaiting streaming into the router's local input port.
type outbox struct {
	msgs    []*Message
	phitIdx int32 // next phit of msgs[0] to inject
	words   int   // payload words across all queued messages
}

// Stats accumulates network-wide counters.
type Stats struct {
	Cycles         int64
	PhitHops       uint64 // phit-link traversals (mesh links only)
	BisectionPhits uint64 // phits crossing the mid-X plane, both directions
	DeliveredMsgs  [2]uint64
	DeliveredWords [2]uint64
	LatencySum     [2]uint64 // enqueue→final-word-delivered, in cycles
	DeliveryStalls uint64    // cycles a completed word waited on a full queue
	ReturnedMsgs   uint64    // messages refused and sent back (return-to-sender)
	Retransmits    uint64    // returned messages re-injected at their source
	DroppedMsgs    uint64    // messages discarded after exceeding MaxReturns
	CorruptDrops   uint64    // messages discarded on checksum failure
	DupDrops       uint64    // messages discarded by the delivery filter
	StallsInjected uint64    // phit moves blocked by an injected link stall
}

// BisectionBits returns the bisection traffic in bits, per direction
// (18 bits per phit; BisectionPhits counts both directions, while the
// paper's 14.4 Gbits/sec capacity figure is per direction: 64 channels
// at 0.5 words/cycle).
func (s Stats) BisectionBits() float64 { return float64(s.BisectionPhits) * 18 / 2 }

// MeanLatency returns the average message latency at priority pri.
func (s Stats) MeanLatency(pri int) float64 {
	if s.DeliveredMsgs[pri] == 0 {
		return 0
	}
	return float64(s.LatencySum[pri]) / float64(s.DeliveredMsgs[pri])
}

// Network is a DimX×DimY×DimZ mesh of wormhole routers with one delivery
// queue pair per node.
type Network struct {
	cfg     Config
	routers []router
	nbr     [][6]int32 // neighbour node index per direction, -1 at edges
	queues  [][2]*queue.Queue
	out     [][2]outbox
	rr      []uint8 // round-robin scan offsets
	cycle   int64
	midX    int8
	stats   Stats

	// In-flight accounting for O(1) quiescence checks. actPhits counts
	// phits buffered in routers (== the sum of router occ between
	// cycles): +1 when a phit enters at feedInjection, -1 when one
	// retires at the delivery port; mesh hops are pop+push neutral. In
	// parallel mode the deltas accumulate per shard and fold at commit.
	// actMsgs counts messages queued in outboxes; it is atomic because
	// Inject runs on the node-stepping goroutines while the injection
	// feed runs in the network phases.
	actPhits int64
	actMsgs  atomic.Int64

	// wakeFn, when non-nil, is told that a completed word entered node
	// id's delivery queue this cycle, so an active-set scheduler can
	// wake a parked node. Called from the goroutine stepping the node's
	// own router (node i and router i always share a shard).
	wakeFn func(node int)

	// loadFn, when non-nil, is told that a message was injected at node
	// id's outbox, so the parallel engine's per-shard activity ledger
	// can charge the node's shard. Called from the goroutine stepping
	// the injecting node (node i and outbox i always share a shard) or
	// from the coordinator between cycles (host injection).
	loadFn func(node int)

	// Fault-injection and delivery hooks (see Add*/Set* below). All are
	// optional; the hot paths pay only a nil/len check.
	injectFns  []func(node int, m *Message, cycle int64)
	deliverFns []func(node int, m *Message, cycle int64)
	dropFns    []func(node int, m *Message, reason DropReason, cycle int64)
	stallFn    func(node, port int, cycle int64) bool
	filterFn   func(node int, m *Message, cycle int64) bool
}

// New builds a mesh. queues supplies each node's priority-0 and
// priority-1 delivery queues, indexed by node id = x + DimX·(y + DimY·z).
func New(cfg Config, queues [][2]*queue.Queue) (*Network, error) {
	cfg = cfg.withDefaults()
	nodes := cfg.DimX * cfg.DimY * cfg.DimZ
	if len(queues) != nodes {
		return nil, fmt.Errorf("network: %d queue pairs for %d nodes", len(queues), nodes)
	}
	n := &Network{
		cfg:     cfg,
		routers: make([]router, nodes),
		nbr:     make([][6]int32, nodes),
		queues:  queues,
		out:     make([][2]outbox, nodes),
		rr:      make([]uint8, nodes),
		midX:    int8(cfg.DimX / 2),
	}
	for z := 0; z < cfg.DimZ; z++ {
		for y := 0; y < cfg.DimY; y++ {
			for x := 0; x < cfg.DimX; x++ {
				id := n.NodeID(x, y, z)
				n.routers[id].init(x, y, z)
				nb := &n.nbr[id]
				for d := 0; d < 6; d++ {
					nb[d] = -1
				}
				if x+1 < cfg.DimX {
					nb[PortXP] = int32(n.NodeID(x+1, y, z))
				}
				if x > 0 {
					nb[PortXM] = int32(n.NodeID(x-1, y, z))
				}
				if y+1 < cfg.DimY {
					nb[PortYP] = int32(n.NodeID(x, y+1, z))
				}
				if y > 0 {
					nb[PortYM] = int32(n.NodeID(x, y-1, z))
				}
				if z+1 < cfg.DimZ {
					nb[PortZP] = int32(n.NodeID(x, y, z+1))
				}
				if z > 0 {
					nb[PortZM] = int32(n.NodeID(x, y, z-1))
				}
			}
		}
	}
	return n, nil
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.routers) }

// Dims returns the mesh dimensions.
func (n *Network) Dims() (x, y, z int) { return n.cfg.DimX, n.cfg.DimY, n.cfg.DimZ }

// NodeID maps coordinates to a node id.
func (n *Network) NodeID(x, y, z int) int {
	return x + n.cfg.DimX*(y+n.cfg.DimY*z)
}

// NodeCoords maps a node id to coordinates.
func (n *Network) NodeCoords(id int) (x, y, z int) {
	x = id % n.cfg.DimX
	id /= n.cfg.DimX
	return x, id % n.cfg.DimY, id / n.cfg.DimY
}

// NodeWord returns the node-tagged router address of a node id.
func (n *Network) NodeWord(id int) word.Word {
	x, y, z := n.NodeCoords(id)
	return word.Node(x, y, z)
}

// NodeFromWord resolves a node-tagged router address to a node id, or -1
// if the coordinates fall outside the mesh.
func (n *Network) NodeFromWord(w word.Word) int {
	x, y, z := w.NodeXYZ()
	if x >= n.cfg.DimX || y >= n.cfg.DimY || z >= n.cfg.DimZ {
		return -1
	}
	return n.NodeID(x, y, z)
}

// OutboxFree returns the free injection capacity, in words, at a node
// and priority. The processor's SEND instructions fault while a message
// would not fit.
func (n *Network) OutboxFree(node, pri int) int {
	return n.cfg.OutboxWords - n.out[node][pri].words
}

// Inject queues a complete message for transmission from node. The
// caller must have confirmed capacity via OutboxFree. delay defers the
// first phit by that many extra cycles (e.g. the memory latency of the
// send instruction's final operand).
func (n *Network) Inject(node int, m *Message, delay int32) {
	if n.cfg.Checksum {
		m.StampChecksum()
	}
	for _, fn := range n.injectFns {
		fn(node, m, n.cycle)
	}
	ob := &n.out[node][m.Pri]
	m.EnqueueCycle = n.cycle + int64(delay)
	ob.msgs = append(ob.msgs, m)
	ob.words += len(m.Words)
	n.actMsgs.Add(1)
	if n.loadFn != nil {
		n.loadFn(node)
	}
}

// AddInjectFn registers an observer called for every message handed to
// the network by a sender (not for internal return-to-sender requeues).
// Observers may mutate NI metadata: the chaos injector arms in-flight
// corruption here and the reliable-delivery runtime assigns sequence
// numbers. Hooks run in registration order.
func (n *Network) AddInjectFn(fn func(node int, m *Message, cycle int64)) {
	n.injectFns = append(n.injectFns, fn)
}

// AddDeliverFn registers an observer called when a message's tail enters
// its destination queue.
func (n *Network) AddDeliverFn(fn func(node int, m *Message, cycle int64)) {
	n.deliverFns = append(n.deliverFns, fn)
}

// AddDropFn registers an observer called when the network permanently
// discards a message (checksum failure, MaxReturns exhaustion, or the
// delivery filter).
func (n *Network) AddDropFn(fn func(node int, m *Message, reason DropReason, cycle int64)) {
	n.dropFns = append(n.dropFns, fn)
}

// SetStallFn installs the link-fault oracle: when it reports true for a
// (node, output port) pair, no phit crosses that channel this cycle.
// PortLocal covers both delivery and injection at the node. Used by the
// chaos injector to model stalled or broken links.
func (n *Network) SetStallFn(fn func(node, port int, cycle int64) bool) {
	n.stallFn = fn
}

// SetFilterFn installs the delivery filter: consulted at the head phit
// of every arriving message, a true return drains the worm without
// delivering it (counted in Stats.DupDrops). The reliable-delivery
// runtime suppresses duplicate retransmissions here.
func (n *Network) SetFilterFn(fn func(node int, m *Message, cycle int64) bool) {
	n.filterFn = fn
}

// SetChecksum toggles NI checksum protection after construction (safe
// before traffic starts; in-flight unstamped messages are unaffected
// because verification is skipped for messages without a stamp).
func (n *Network) SetChecksum(on bool) { n.cfg.Checksum = on }

// SetReturnToSender toggles return-to-sender flow control after
// construction.
func (n *Network) SetReturnToSender(on bool) { n.cfg.ReturnToSender = on }

// SetMaxReturns adjusts the refusal bound after construction.
func (n *Network) SetMaxReturns(k int) { n.cfg.MaxReturns = k }

// LaunchLatency returns the configured NI launch latency in cycles.
func (n *Network) LaunchLatency() int { return n.cfg.LaunchCycles }

// RouterOcc returns the number of phits buffered in node id's router —
// nonzero at quiescence indicates a wedged worm.
func (n *Network) RouterOcc(id int) int { return int(n.routers[id].occ) }

// LinkOcc returns the number of phits buffered in node id's input
// buffer for port (both priorities): the occupancy of the channel
// arriving from the neighbour in direction port, or of the injection
// path for PortLocal. Observability samples these as per-link counter
// tracks; reads must happen between cycles (on the coordinator), where
// both engines leave the buffers quiescent.
func (n *Network) LinkOcc(id, port int) int {
	r := &n.routers[id]
	return int(r.in[0][port].n) + int(r.in[1][port].n)
}

// OutboxDepth returns the number of messages queued for injection at a
// node and priority.
func (n *Network) OutboxDepth(node, pri int) int { return len(n.out[node][pri].msgs) }

// Pending reports whether any message traffic is still in flight
// anywhere in the network (buffers or outboxes). O(1): maintained
// incrementally at injection and retirement (TestPendingCounterMatchesScan
// cross-checks it against a full scan).
func (n *Network) Pending() bool {
	return n.actPhits != 0 || n.actMsgs.Load() != 0
}

// pendingScan is the reference O(nodes) implementation of Pending,
// kept for the counter cross-check test.
func (n *Network) pendingScan() bool {
	for i := range n.routers {
		if n.routers[i].occ > 0 {
			return true
		}
		if len(n.out[i][0].msgs) > 0 || len(n.out[i][1].msgs) > 0 {
			return true
		}
	}
	return false
}

// Quiet reports an empty network: no buffered phits, no queued
// messages. While quiet, Step degenerates to a cycle-counter increment
// (every router takes the empty fast path), which is what SkipCycles
// batches.
func (n *Network) Quiet() bool { return !n.Pending() }

// SkipCycles advances the network clock k cycles without stepping.
// Callers must hold the Quiet invariant for the whole window: stepping
// an empty mesh touches nothing but the cycle counter, so the jump is
// byte-identical to k empty Step calls.
func (n *Network) SkipCycles(k int64) { n.cycle += k }

// SetWakeFn installs the delivery wake callback (see wakeFn).
func (n *Network) SetWakeFn(fn func(node int)) { n.wakeFn = fn }

// msgPool recycles Message objects (and their payload buffers)
// acquired via NewMessage, so the steady-state send path allocates
// nothing. Only leased messages are recycled: callers that build a
// Message by hand may legitimately keep a pointer past delivery
// (latency tests poll DeliverCycle), so those are never pooled.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage leases a zeroed Message from the recycling pool. The
// payload slice keeps its capacity (append reuses it); every other
// field reads as freshly allocated. The network reclaims the message
// when it permanently retires — delivered or dropped, after the hooks
// have run — so the caller must not retain it past injection.
func NewMessage() *Message {
	m := msgPool.Get().(*Message)
	*m = Message{Words: m.Words[:0], pooled: true}
	return m
}

// release returns a leased message to the pool at terminal retirement.
// No-op for hand-built messages.
func (n *Network) release(m *Message) {
	if !m.pooled {
		return
	}
	m.pooled = false
	msgPool.Put(m)
}

// Stats returns accumulated counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.Cycles = n.cycle
	return s
}

// stepCtx carries the state sinks for one stepping pass: the stats
// struct to charge (the network's own in sequential mode, a shard-local
// copy in parallel mode) and, when non-nil, the shard whose boundary
// pushes and hook events must be staged for the commit phase.
type stepCtx struct {
	st *Stats
	sh *shard
	// dPhits receives the pass's in-flight phit delta: the network's
	// own counter in sequential mode, a shard-local accumulator folded
	// at commit in parallel mode.
	dPhits *int64
	// dMsgs, when non-nil, receives the pass's outbox message-count
	// delta (feed completions and return/retransmit requeues) for the
	// per-shard activity ledger; nil in sequential mode.
	dMsgs *int64
}

// Step advances the network one cycle: injection feeds, phit movement,
// and delivery, honouring priority-1 channel preference. This is the
// sequential reference loop; ShardRun (shard.go) steps the same cycle
// function over disjoint node ranges in parallel with byte-identical
// results.
func (n *Network) Step() {
	n.cycle++
	ctx := stepCtx{st: &n.stats, dPhits: &n.actPhits}
	for v := 1; v >= 0; v-- {
		n.stepRange(0, len(n.routers), v, n.cycle, ctx)
	}
}

// stepRange steps routers [lo,hi) at priority v. The skip fast-path
// uses effOcc — start-of-cycle occupancy minus this cycle's pops — so
// that same-cycle pushes from neighbours (whose visibility depends on
// sweep order and shard boundaries) never affect which routers run.
func (n *Network) stepRange(lo, hi, v int, cyc int64, ctx stepCtx) {
	for ri := lo; ri < hi; ri++ {
		r := &n.routers[ri]
		ob := &n.out[ri][v]
		if r.effOcc(cyc) == 0 && len(ob.msgs) == 0 {
			continue
		}
		n.stepRouter(ri, r, v, cyc, ctx)
		n.feedInjection(ri, r, ob, v, cyc, ctx)
	}
}

// stepRouter attempts to advance the head phit of each input buffer at
// priority v.
func (n *Network) stepRouter(ri int, r *router, v int, cyc int64, ctx stepCtx) {
	start := 0
	if n.cfg.Arbitration == RoundRobin {
		start = int(n.rr[ri]) % NumPorts
		if v == 0 { // advance once per cycle, after both priority passes
			n.rr[ri]++
		}
	}
	for k := 0; k < NumPorts; k++ {
		q := (start + k) % NumPorts
		b := &r.in[v][q]
		if b.empty() {
			continue
		}
		head := b.peek()
		if head.arrived >= cyc {
			continue // entered this cycle; moves next cycle at the earliest
		}
		out := r.inRoute[v][q]
		if out == noPort {
			out = r.route(head.m)
			if r.outOwner[v][out] != noPort {
				continue // output channel held by another worm
			}
			r.outOwner[v][out] = int8(q)
			r.inRoute[v][q] = out
		}
		if r.linkStamp[out] == cyc {
			continue // physical channel already used this cycle
		}
		if n.stallFn != nil && n.stallFn(ri, int(out), cyc) {
			ctx.st.StallsInjected++
			continue // injected link fault holds the channel
		}
		if out == PortLocal {
			n.deliverPhit(ri, r, v, q, b, cyc, ctx)
			continue
		}
		nb := n.nbr[ri][out]
		if nb < 0 {
			// e-cube can never route off the mesh edge; treat as a
			// wedged-worm bug rather than silently dropping traffic.
			panic(fmt.Sprintf("network: route off mesh edge at node %d port %d", ri, out))
		}
		nbuf := &n.routers[nb].in[v][opposite[out]]
		remote := ctx.sh != nil && (int(nb) < ctx.sh.lo || int(nb) >= ctx.sh.hi)
		var occStart int
		if remote {
			// The consuming shard owns nbuf's n/popStamp; use the
			// occupancy it snapshotted at the cycle start, which equals
			// the reconstruction below.
			occStart = int(nbuf.snapOcc)
		} else {
			occStart = int(nbuf.n)
			if nbuf.popStamp == cyc {
				occStart++
			}
		}
		if occStart >= bufCap {
			continue // downstream buffer full at cycle start
		}
		p := b.pop()
		b.popStamp = cyc
		r.occ--
		r.linkStamp[out] = cyc
		p.arrived = cyc
		if remote {
			// Cross-shard boundary: stage the push; the commit phase
			// applies it after every shard has finished stepping. The
			// phit could not have moved again this cycle anyway.
			ctx.sh.pushes = append(ctx.sh.pushes,
				stagedPush{nb: nb, v: int8(v), port: int8(opposite[out]), p: p})
		} else {
			nbuf.push(p)
			n.routers[nb].notePush(cyc)
		}
		ctx.st.PhitHops++
		if (out == PortXP && r.x == n.midX-1) || (out == PortXM && r.x == n.midX) {
			ctx.st.BisectionPhits++
		}
		if p.isTail() {
			r.outOwner[v][out] = noPort
			r.inRoute[v][q] = noPort
		}
	}
}

// deliverPhit retires the head phit of input q into the local delivery
// queue. Even phits (first half of a word) are absorbed freely; odd
// phits complete a word, which must be accepted by the queue.
//
// At the head phit the port decides the worm's fate: a homecoming
// refused message is drained for retransmission; a corrupted message
// (checksum mismatch) is drained and dropped; the delivery filter may
// drop duplicates; and with return-to-sender flow control a message that
// would not fit in the destination queue is drained and turned around —
// or dropped once it has been refused MaxReturns times.
func (n *Network) deliverPhit(ri int, r *router, v, q int, b *buf, cyc int64, ctx stepCtx) {
	head := b.peek()
	m := head.m
	if head.idx == 0 && !m.absorb {
		switch {
		case n.cfg.ReturnToSender && m.Returning:
			m.absorb = true // arriving back home: drain and requeue
		case !m.CheckOK():
			m.absorb, m.drop = true, true
			m.dropReason = DropCorrupt
			ctx.st.CorruptDrops++
		case n.filterFn != nil && n.filterFn(ri, m, cyc):
			m.absorb, m.drop = true, true
			m.dropReason = DropFiltered
			ctx.st.DupDrops++
		case n.cfg.ReturnToSender &&
			n.queues[ri][v].Free() < len(m.Words) && n.queues[ri][v].Cap() >= len(m.Words):
			if n.cfg.MaxReturns > 0 && int(m.Returns) >= n.cfg.MaxReturns {
				m.absorb, m.drop = true, true
				m.dropReason = DropMaxReturns
				ctx.st.DroppedMsgs++
			} else {
				m.absorb = true // refuse: drain and turn around
			}
		}
	}
	if m.absorb {
		n.absorbPhit(ri, r, v, q, b, cyc, ctx)
		return
	}
	w, complete := head.payloadWord()
	if complete {
		if !n.queues[ri][v].Push(w) {
			ctx.st.DeliveryStalls++
			return // queue full; back-pressure into the network
		}
		if n.wakeFn != nil {
			n.wakeFn(ri)
		}
	}
	p := b.pop()
	b.popStamp = cyc
	r.occ--
	r.linkStamp[PortLocal] = cyc
	*ctx.dPhits--
	if complete {
		ctx.st.DeliveredWords[v]++
	}
	if p.isTail() {
		p.m.DeliverCycle = cyc
		ctx.st.DeliveredMsgs[v]++
		ctx.st.LatencySum[v] += uint64(cyc - p.m.EnqueueCycle)
		r.outOwner[v][PortLocal] = noPort
		r.inRoute[v][q] = noPort
		if ctx.sh != nil {
			// Hooks may mutate state shared across shards (reliable-
			// delivery maps, ack injection at arbitrary nodes); stage
			// the event for single-threaded replay at commit.
			ctx.sh.events = append(ctx.sh.events, hookEvent{node: int32(ri), m: p.m})
		} else {
			for _, fn := range n.deliverFns {
				fn(ri, p.m, cyc)
			}
			n.release(p.m)
		}
	}
}

// absorbPhit drains one phit of a refused, corrupted, filtered, or
// homecoming worm at the delivery port. At the tail the message is
// either discarded (drop set) or re-injected: back toward the source
// (refusal) or toward its true destination after the backoff
// (retransmission).
func (n *Network) absorbPhit(ri int, r *router, v, q int, b *buf, cyc int64, ctx stepCtx) {
	p := b.pop()
	b.popStamp = cyc
	r.occ--
	r.linkStamp[PortLocal] = cyc
	*ctx.dPhits--
	if !p.isTail() {
		return
	}
	m := p.m
	r.outOwner[v][PortLocal] = noPort
	r.inRoute[v][q] = noPort
	m.absorb = false
	if m.drop {
		m.drop = false
		if ctx.sh != nil {
			ctx.sh.events = append(ctx.sh.events,
				hookEvent{drop: true, node: int32(ri), reason: m.dropReason, m: m})
		} else {
			for _, fn := range n.dropFns {
				fn(ri, m, m.dropReason, cyc)
			}
			n.release(m)
		}
		return
	}
	ob := &n.out[ri][v]
	if m.Returning {
		// Home again: restore the true destination and retransmit
		// after the backoff.
		m.Returning = false
		m.DestX, m.DestY, m.DestZ = m.origX, m.origY, m.origZ
		m.EnqueueCycle = cyc + int64(n.cfg.RTSBackoff)
		ctx.st.Retransmits++
	} else {
		// Refused: turn the message around toward its source.
		m.Returning = true
		m.Returns++
		m.origX, m.origY, m.origZ = m.DestX, m.DestY, m.DestZ
		sx, sy, sz := n.NodeCoords(int(m.Src))
		m.DestX, m.DestY, m.DestZ = int8(sx), int8(sy), int8(sz)
		m.EnqueueCycle = cyc
		ctx.st.ReturnedMsgs++
	}
	// Hardware-level requeue: bypasses the injection capacity check
	// (the words were already accounted to this node's outbox only if
	// it was the original sender; returns ride free).
	ob.msgs = append(ob.msgs, m)
	ob.words += len(m.Words)
	n.actMsgs.Add(1)
	if ctx.dMsgs != nil {
		*ctx.dMsgs++
	}
}

// feedInjection streams the node's next outgoing phit at priority v into
// the router's local input buffer, one phit per cycle.
func (n *Network) feedInjection(ri int, r *router, ob *outbox, v int, cyc int64, ctx stepCtx) {
	if len(ob.msgs) == 0 {
		return
	}
	if n.stallFn != nil && n.stallFn(ri, PortLocal, cyc) {
		ctx.st.StallsInjected++
		return // injected NI fault: nothing enters the router
	}
	b := &r.in[v][PortLocal]
	occStart := int(b.n)
	if b.popStamp == cyc {
		occStart++
	}
	if occStart >= bufCap {
		return
	}
	m := ob.msgs[0]
	if ob.phitIdx == 0 && cyc < m.EnqueueCycle+int64(n.cfg.LaunchCycles) {
		return // network-interface launch latency
	}
	b.push(phitRef{m: m, idx: ob.phitIdx, arrived: cyc})
	r.notePush(cyc)
	*ctx.dPhits++
	ob.phitIdx++
	if ob.phitIdx == m.WirePhits() {
		ob.msgs = ob.msgs[1:]
		ob.words -= len(m.Words)
		ob.phitIdx = 0
		n.actMsgs.Add(-1)
		if ctx.dMsgs != nil {
			*ctx.dMsgs--
		}
	}
}
