package network

import (
	"testing"

	"jmachine/internal/queue"
)

func makeNetCfg(t *testing.T, cfg Config, qcap int) (*Network, [][2]*queue.Queue) {
	t.Helper()
	queues := make([][2]*queue.Queue, cfg.DimX*cfg.DimY*cfg.DimZ)
	for i := range queues {
		queues[i] = [2]*queue.Queue{queue.New(qcap), queue.New(qcap)}
	}
	n, err := New(cfg, queues)
	if err != nil {
		t.Fatal(err)
	}
	return n, queues
}

func TestChecksumCatchesCorruption(t *testing.T) {
	n, queues := makeNetCfg(t, Config{DimX: 4, DimY: 1, DimZ: 1, Checksum: true}, 16)

	// A clean message passes checksum verification and is delivered.
	clean := msgTo(n, 2, 0, 4)
	n.Inject(0, clean, 0)
	runUntilDelivered(t, n, queues[2][0], 200)
	queues[2][0].PopTo(nil)

	// A corrupted payload word flips on the wire; the head-phit check
	// at the destination drains the worm without queueing any of it.
	bad := msgTo(n, 2, 0, 4)
	bad.CorruptWord, bad.CorruptMask = 1, 0x4
	var dropped []DropReason
	n.AddDropFn(func(node int, m *Message, reason DropReason, cycle int64) {
		dropped = append(dropped, reason)
	})
	n.Inject(0, bad, 0)
	for c := 0; c < 200; c++ {
		n.Step()
	}
	if queues[2][0].Used() != 0 {
		t.Errorf("corrupt message reached the queue: %d words", queues[2][0].Used())
	}
	if got := n.Stats().CorruptDrops; got != 1 {
		t.Errorf("CorruptDrops = %d, want 1", got)
	}
	if len(dropped) != 1 || dropped[0] != DropCorrupt {
		t.Errorf("drop hook saw %v, want [%v]", dropped, DropCorrupt)
	}
}

func TestChecksumCleanWithoutCorruption(t *testing.T) {
	// Checksum on, nothing corrupted: random traffic must be unaffected
	// apart from the two extra wire phits per message.
	n, queues := makeNetCfg(t, Config{DimX: 2, DimY: 2, DimZ: 1, Checksum: true}, 16)
	const msgs = 12
	for i := 0; i < msgs; i++ {
		m := msgTo(n, i%4, 0, 3)
		m.Src = int32((i + 1) % 4)
		n.Inject(int((i+1)%4), m, 0)
	}
	for c := 0; c < 2000; c++ {
		n.Step()
	}
	got := 0
	for i := range queues {
		got += queues[i][0].Messages()
	}
	if got != msgs {
		t.Errorf("delivered %d of %d with checksum enabled", got, msgs)
	}
	if n.Stats().CorruptDrops != 0 {
		t.Errorf("spurious corrupt drops: %d", n.Stats().CorruptDrops)
	}
}

func TestMaxReturnsBoundsRefusalLivelock(t *testing.T) {
	// A receiver that never drains with unbounded return-to-sender
	// bounces traffic forever; MaxReturns converts the livelock into a
	// counted drop that the sender's runtime can observe.
	n, _ := makeNetCfg(t, Config{
		DimX: 4, DimY: 1, DimZ: 1,
		ReturnToSender: true, RTSBackoff: 10, MaxReturns: 3,
	}, 8)
	var reasons []DropReason
	n.AddDropFn(func(node int, m *Message, reason DropReason, cycle int64) {
		reasons = append(reasons, reason)
	})
	const sent = 6
	for i := 0; i < sent; i++ {
		m := msgTo(n, 2, 0, 4)
		m.Src = 0
		n.Inject(0, m, 0)
	}
	// Never pop queues[2]: it holds 2 messages; the other 4 bounce
	// until each exhausts its 3 returns.
	for c := 0; c < 20000; c++ {
		n.Step()
	}
	if got := n.Stats().DroppedMsgs; got != sent-2 {
		t.Errorf("DroppedMsgs = %d, want %d", got, sent-2)
	}
	for _, r := range reasons {
		if r != DropMaxReturns {
			t.Errorf("unexpected drop reason %v", r)
		}
	}
	if len(reasons) != sent-2 {
		t.Errorf("drop hook fired %d times, want %d", len(reasons), sent-2)
	}
}

func TestStallFnFreezesLink(t *testing.T) {
	// Baseline latency without the fault.
	n, queues := makeNetCfg(t, Config{DimX: 4, DimY: 1, DimZ: 1}, 16)
	n.Inject(0, msgTo(n, 3, 0, 3), 0)
	base := runUntilDelivered(t, n, queues[3][0], 500)

	// Same route with every port of node 1 stalled for 100 cycles.
	n2, queues2 := makeNetCfg(t, Config{DimX: 4, DimY: 1, DimZ: 1}, 16)
	n2.SetStallFn(func(node, port int, cycle int64) bool {
		return node == 1 && cycle < 100
	})
	n2.Inject(0, msgTo(n2, 3, 0, 3), 0)
	faulted := runUntilDelivered(t, n2, queues2[3][0], 1000)
	if faulted <= base {
		t.Errorf("stalled delivery took %d cycles, baseline %d", faulted, base)
	}
	if n2.Stats().StallsInjected == 0 {
		t.Error("no stalls recorded")
	}
}

func TestFilterFnDropsDuplicates(t *testing.T) {
	n, queues := makeNetCfg(t, Config{DimX: 2, DimY: 1, DimZ: 1}, 16)
	n.SetFilterFn(func(node int, m *Message, cycle int64) bool {
		return m.Seq == 7 // pretend seq 7 was already seen
	})
	dup := msgTo(n, 1, 0, 3)
	dup.Seq = 7
	fresh := msgTo(n, 1, 0, 3)
	fresh.Seq = 8
	n.Inject(0, dup, 0)
	n.Inject(0, fresh, 0)
	for c := 0; c < 300; c++ {
		n.Step()
	}
	if got := queues[1][0].Messages(); got != 1 {
		t.Errorf("delivered %d messages, want 1 (duplicate filtered)", got)
	}
	if n.Stats().DupDrops != 1 {
		t.Errorf("DupDrops = %d, want 1", n.Stats().DupDrops)
	}
}

func TestSettersAfterConstruction(t *testing.T) {
	n, queues := makeNetCfg(t, Config{DimX: 2, DimY: 1, DimZ: 1}, 16)
	n.SetChecksum(true)
	n.SetReturnToSender(true)
	n.SetMaxReturns(5)
	bad := msgTo(n, 1, 0, 3)
	bad.CorruptWord, bad.CorruptMask = 1, 0x4
	n.Inject(0, bad, 0)
	for c := 0; c < 200; c++ {
		n.Step()
	}
	if queues[1][0].Used() != 0 || n.Stats().CorruptDrops != 1 {
		t.Errorf("post-construction checksum not effective: used=%d corrupt=%d",
			queues[1][0].Used(), n.Stats().CorruptDrops)
	}
}
