// Package network simulates the J-Machine's 3-D mesh interconnect at the
// phit level.
//
// Messages are routed with deterministic e-cube wormhole routing: a
// message fully traverses the X dimension, then Y, then Z, then is
// delivered. Channels carry one phit (half of a 36-bit word) per cycle,
// giving the paper's channel bandwidth of 0.5 words/cycle, and a head
// phit advances one hop per cycle, giving the minimum latency of 1
// cycle/hop. Two message priorities share each physical link; priority 1
// receives preference during channel arbitration. Output-channel
// arbitration among competing inputs is at a fixed priority — the source
// of the injection unfairness the paper observed in radix sort — with a
// round-robin option for the fairness ablation.
package network

import "jmachine/internal/word"

// Message is one network message: destination coordinates plus payload
// words (header first). On the wire the message is preceded by a
// destination word, so a message of L words occupies 2·(L+1) phits.
type Message struct {
	DestX, DestY, DestZ int8
	Pri                 int8
	Src                 int32 // source node id, for statistics and return-to-sender
	Words               []word.Word

	// EnqueueCycle is the cycle at which injection was requested (SENDE
	// retired); DeliverCycle is when the last word entered the
	// destination queue. Both are maintained by the network for latency
	// statistics.
	EnqueueCycle int64
	DeliverCycle int64

	// Return-to-sender flow control (the paper's critique proposes it:
	// "a 'return-to-sender' protocol that refuses messages when the
	// queue is above a certain threshold by returning them to the
	// sending node"). Returning marks a refused message on its way
	// back; absorb marks a worm being drained at a delivery port
	// without entering the queue.
	Returning bool
	absorb    bool
	Returns   int32 // times this message has been refused
	// origX/Y/Z preserve the true destination while the message is on
	// its way back to the sender.
	origX, origY, origZ int8

	// Seq is a network-interface sequence number used by the reliable-
	// delivery runtime (package rt): zero means untracked. Ctl marks
	// protocol control traffic (acknowledgements) that must not itself
	// be tracked. Both are side-band NI metadata, not wire words.
	Seq int32
	Ctl bool

	// Checksum protection. When Config.Checksum is enabled the sender's
	// network interface stamps Check over the payload and the message
	// carries one extra checksum word on the wire (two phits); the
	// delivery port verifies it and discards corrupted worms.
	HasCheck bool
	Check    uint32

	// CorruptWord/CorruptMask model a transient in-flight bit flip
	// injected by package chaos: while the message is on the wire, the
	// payload word at index CorruptWord reads XOR CorruptMask. A zero
	// mask means the message is clean. Retransmitted copies are fresh
	// sends and do not inherit the fault.
	CorruptWord int32
	CorruptMask uint32

	// drop marks a worm being drained for permanent discard (checksum
	// failure, duplicate suppression, or exceeding MaxReturns).
	drop       bool
	dropReason DropReason

	// pooled marks a message leased from the recycling pool via
	// NewMessage; the network returns it there when it permanently
	// retires. Hand-built messages (tests, external injectors) stay
	// un-pooled and may be inspected after delivery. Not part of the
	// state digest: it is allocator bookkeeping, invisible on the wire.
	pooled bool
}

// DropReason classifies why the network permanently discarded a message.
type DropReason uint8

const (
	// DropCorrupt: the delivery port's checksum verification failed.
	DropCorrupt DropReason = iota
	// DropMaxReturns: a refused message exceeded Config.MaxReturns.
	DropMaxReturns
	// DropFiltered: the delivery filter hook refused the message
	// (duplicate suppression by the reliable-delivery runtime).
	DropFiltered
)

var dropNames = [...]string{"corrupt", "max-returns", "filtered"}

// String names the drop reason.
func (r DropReason) String() string {
	if int(r) < len(dropNames) {
		return dropNames[r]
	}
	return "drop?"
}

// WirePhits returns the number of phits the message occupies on a
// channel: two per payload word, two for the destination word, two
// framing phits (the hardware's route/length control phits), and two
// more for the checksum word when checksum protection is on.
func (m *Message) WirePhits() int32 {
	n := int32(2*len(m.Words) + 4)
	if m.HasCheck {
		n += 2
	}
	return n
}

// payloadBase returns the phit index of the first payload phit: the
// checksum word (when present) rides between the framing phits and the
// payload, so it is verified before any payload word is committed.
func (m *Message) payloadBase() int32 {
	if m.HasCheck {
		return 6
	}
	return 4
}

// WireWord returns payload word i as it reads on the wire, with any
// in-flight corruption applied.
func (m *Message) WireWord(i int) word.Word {
	w := m.Words[i]
	if m.CorruptMask != 0 && int(m.CorruptWord) == i {
		w ^= word.Word(m.CorruptMask)
	}
	return w
}

// checksum folds payload words into a 32-bit check value (a simple
// multiply-rotate hash standing in for the CRC a real NI would use).
// The read function selects clean memory words (sender stamp) or wire
// words with corruption applied (receiver verify).
func checksum(m *Message, read func(int) word.Word) uint32 {
	var h uint64 = 0x9E3779B97F4A7C15
	for i := range m.Words {
		h ^= uint64(read(i))
		h *= 0x100000001B3
		h ^= h >> 29
	}
	return uint32(h) ^ uint32(h>>32)
}

// StampChecksum records the sender-side checksum over the clean payload
// (called at injection when Config.Checksum is on): the NI reads the
// words from memory, so any in-flight corruption happens after the
// stamp regardless of when the fault was armed.
func (m *Message) StampChecksum() {
	m.HasCheck = true
	m.Check = checksum(m, func(i int) word.Word { return m.Words[i] })
}

// CheckOK verifies the stamped checksum against the wire words.
func (m *Message) CheckOK() bool {
	return !m.HasCheck || checksum(m, m.WireWord) == m.Check
}

// phitRef locates one phit of an in-flight message.
type phitRef struct {
	m       *Message
	idx     int32 // 0,1 = destination word; 2,3 = framing; then payload (see payloadBase)
	arrived int64 // cycle the phit entered its current buffer
}

// isTail reports whether the phit is the message's last.
func (p phitRef) isTail() bool { return p.idx == p.m.WirePhits()-1 }

// payloadWord returns (word, true) when the phit completes a payload
// word at the delivery port; destination, framing, and checksum phits
// yield false.
func (p phitRef) payloadWord() (word.Word, bool) {
	base := p.m.payloadBase()
	if p.idx&1 == 0 || p.idx < base+1 {
		return 0, false
	}
	return p.m.WireWord(int((p.idx - base - 1) / 2)), true
}
