// Package network simulates the J-Machine's 3-D mesh interconnect at the
// phit level.
//
// Messages are routed with deterministic e-cube wormhole routing: a
// message fully traverses the X dimension, then Y, then Z, then is
// delivered. Channels carry one phit (half of a 36-bit word) per cycle,
// giving the paper's channel bandwidth of 0.5 words/cycle, and a head
// phit advances one hop per cycle, giving the minimum latency of 1
// cycle/hop. Two message priorities share each physical link; priority 1
// receives preference during channel arbitration. Output-channel
// arbitration among competing inputs is at a fixed priority — the source
// of the injection unfairness the paper observed in radix sort — with a
// round-robin option for the fairness ablation.
package network

import "jmachine/internal/word"

// Message is one network message: destination coordinates plus payload
// words (header first). On the wire the message is preceded by a
// destination word, so a message of L words occupies 2·(L+1) phits.
type Message struct {
	DestX, DestY, DestZ int8
	Pri                 int8
	Src                 int32 // source node id, for statistics and return-to-sender
	Words               []word.Word

	// EnqueueCycle is the cycle at which injection was requested (SENDE
	// retired); DeliverCycle is when the last word entered the
	// destination queue. Both are maintained by the network for latency
	// statistics.
	EnqueueCycle int64
	DeliverCycle int64

	// Return-to-sender flow control (the paper's critique proposes it:
	// "a 'return-to-sender' protocol that refuses messages when the
	// queue is above a certain threshold by returning them to the
	// sending node"). Returning marks a refused message on its way
	// back; absorb marks a worm being drained at a delivery port
	// without entering the queue.
	Returning bool
	absorb    bool
	Returns   int32 // times this message has been refused
	// origX/Y/Z preserve the true destination while the message is on
	// its way back to the sender.
	origX, origY, origZ int8
}

// WirePhits returns the number of phits the message occupies on a
// channel: two per payload word, two for the destination word, and two
// framing phits (the hardware's route/length control phits).
func (m *Message) WirePhits() int32 { return int32(2*len(m.Words) + 4) }

// phitRef locates one phit of an in-flight message.
type phitRef struct {
	m       *Message
	idx     int32 // 0,1 = destination word; 2,3 = framing; 4+2k,5+2k = payload word k
	arrived int64 // cycle the phit entered its current buffer
}

// isTail reports whether the phit is the message's last.
func (p phitRef) isTail() bool { return p.idx == p.m.WirePhits()-1 }

// payloadWord returns (word, true) when the phit completes a payload
// word at the delivery port; destination and framing phits yield false.
func (p phitRef) payloadWord() (word.Word, bool) {
	if p.idx&1 == 0 || p.idx < 5 {
		return 0, false
	}
	return p.m.Words[(p.idx-5)/2], true
}
