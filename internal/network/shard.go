package network

// Sharded mesh stepping.
//
// The mesh has a conservative lookahead of one cycle: a phit pushed
// into a neighbouring router at cycle t cannot move again before t+1,
// and every admission decision is made against start-of-cycle buffer
// occupancy (reconstructed via popStamp, or frozen in snapOcc across
// shard boundaries). Partitioning the routers into contiguous node-id
// slabs therefore lets each slab step a full cycle concurrently: the
// only cross-slab effects — boundary phit pushes and delivery/drop
// hook invocations — are staged during the parallel phase and applied
// by a single goroutine at the commit rendezvous, in exactly the order
// the sequential sweep would have produced them. See docs/ENGINE.md
// for the full determinism argument.

// stagedPush is a boundary phit crossing into another shard, recorded
// during the parallel phase and applied at commit. Each input buffer
// has a single producer and each physical link carries at most one
// phit per cycle (linkStamp), so staged pushes never conflict and
// their application order is immaterial.
type stagedPush struct {
	nb   int32 // destination node id
	v    int8  // priority
	port int8  // destination input port
	p    phitRef
}

// hookEvent is a deferred deliver/drop hook invocation. Hooks can
// touch cross-shard state (the reliable-delivery runtime's maps, ack
// injection into any node's outbox), so in parallel mode they are
// replayed single-threaded at commit, in the sequential sweep's order:
// all priority-1 events in ascending router id, then all priority-0.
type hookEvent struct {
	drop   bool
	node   int32
	reason DropReason
	m      *Message
}

// shard is one contiguous slab of routers stepped by a single
// goroutine, with its staging areas and a private Stats delta folded
// into the network's at every commit.
type shard struct {
	lo, hi int // node id range [lo, hi)

	// snapBufs lists this slab's input buffers whose producing
	// neighbour lives in another shard; Snapshot freezes their
	// occupancy before any shard starts popping.
	snapBufs []*buf

	stats   Stats
	dPhits  int64 // in-flight phit delta, folded into actPhits at commit
	dMsgs   int64 // outbox message delta, folded into the activity ledger
	pushes  []stagedPush
	events  []hookEvent
	v0Start int // index in events where the priority-0 pass begins
}

// ShardRun partitions the mesh into k contiguous node-id slabs for
// parallel stepping. The caller (internal/engine) drives one cycle as:
//
//	Begin()                  // coordinator: advance the cycle counter
//	Snapshot(s)              // each shard, in parallel
//	— barrier —
//	StepShard(s)             // each shard, in parallel
//	— barrier —
//	Commit()                 // one goroutine
//
// The network's own Step must not be called while a ShardRun is
// driving it. Results are byte-identical to sequential stepping for
// any k ≥ 1 and any partition.
type ShardRun struct {
	n      *Network
	shards []shard

	// Activity ledger for epoch batching (internal/engine): netLoad[s]
	// counts the phits buffered in shard s's routers plus the messages
	// queued in its outboxes. A shard with netLoad zero has no network
	// work at all — stepping it is a no-op — so the engine can skip it
	// without touching the barrier. Maintained incrementally: stepping
	// deltas fold in at Commit, boundary pushes transfer load between
	// shards, and injections outside the stepping phases arrive through
	// the network's loadFn callback.
	netLoad []int64
	shardOf []int32 // node id -> owning shard
}

// NewShardRun builds a k-way partition. k is clamped to [1, nodes].
// Requires a non-zero launch latency: with LaunchCycles == 0 a message
// injected by a commit-phase hook (a reliable-delivery ack) could
// start flowing in its injection cycle under the sequential sweep but
// not under staged replay.
func NewShardRun(n *Network, k int) *ShardRun {
	if n.cfg.LaunchCycles <= 0 {
		panic("network: sharded stepping requires LaunchCycles >= 1")
	}
	nodes := len(n.routers)
	if k < 1 {
		k = 1
	}
	if k > nodes {
		k = nodes
	}
	sr := &ShardRun{
		n:       n,
		shards:  make([]shard, k),
		netLoad: make([]int64, k),
		shardOf: make([]int32, nodes),
	}
	for s := 0; s < k; s++ {
		sh := &sr.shards[s]
		sh.lo, sh.hi = s*nodes/k, (s+1)*nodes/k
		for ri := sh.lo; ri < sh.hi; ri++ {
			sr.shardOf[ri] = int32(s)
			for q := 0; q < 6; q++ {
				// Input port q is fed by the neighbour in direction q.
				f := n.nbr[ri][q]
				if f >= 0 && (int(f) < sh.lo || int(f) >= sh.hi) {
					sh.snapBufs = append(sh.snapBufs,
						&n.routers[ri].in[0][q], &n.routers[ri].in[1][q])
				}
			}
		}
	}
	sr.RescanLoad()
	n.loadFn = sr.noteInject
	return sr
}

// Close detaches the run from the network (the injection callback in
// particular), so a ShardRun can be replaced without leaking load
// charges into a stale ledger.
func (sr *ShardRun) Close() {
	if sr.n.loadFn != nil {
		sr.n.loadFn = nil
	}
}

// Load returns shard s's activity-ledger entry: buffered phits plus
// queued outbox messages. Zero means stepping the shard is a no-op.
func (sr *ShardRun) Load(s int) int64 { return sr.netLoad[s] }

// RescanLoad rebuilds the activity ledger from router occupancy and
// outbox queue lengths (attach time and checkpoint restore).
func (sr *ShardRun) RescanLoad() {
	n := sr.n
	for s := range sr.shards {
		sh := &sr.shards[s]
		var load int64
		for ri := sh.lo; ri < sh.hi; ri++ {
			load += int64(n.routers[ri].occ)
			load += int64(len(n.out[ri][0].msgs) + len(n.out[ri][1].msgs))
		}
		sr.netLoad[s] = load
	}
}

// noteInject charges an injected message to the owning shard. Installed
// as the network's loadFn: called either from the goroutine stepping
// the injecting node (sends during the node phase) or from the
// coordinator between cycles (host injection, commit-phase ack hooks),
// never concurrently for the same shard.
func (sr *ShardRun) noteInject(node int) {
	sr.netLoad[sr.shardOf[node]]++
}

// Shards returns the partition size.
func (sr *ShardRun) Shards() int { return len(sr.shards) }

// NodeRange returns shard s's node id range [lo, hi).
func (sr *ShardRun) NodeRange(s int) (lo, hi int) {
	return sr.shards[s].lo, sr.shards[s].hi
}

// Begin advances the network's cycle counter (the coordinator calls it
// once per cycle, before releasing the shards).
func (sr *ShardRun) Begin() { sr.n.cycle++ }

// Snapshot freezes the start-of-cycle occupancy of shard s's boundary
// input buffers. Runs in parallel across shards; each shard touches
// only buffers it consumes, before any shard pops anything.
func (sr *ShardRun) Snapshot(s int) {
	for _, b := range sr.shards[s].snapBufs {
		b.snapOcc = b.n
	}
}

// StepShard steps shard s's routers through one cycle, staging
// boundary pushes and hook events. Runs in parallel across shards
// after all snapshots are taken.
func (sr *ShardRun) StepShard(s int) {
	sh := &sr.shards[s]
	sh.pushes = sh.pushes[:0]
	sh.events = sh.events[:0]
	n := sr.n
	cyc := n.cycle
	ctx := stepCtx{st: &sh.stats, sh: sh, dPhits: &sh.dPhits, dMsgs: &sh.dMsgs}
	n.stepRange(sh.lo, sh.hi, 1, cyc, ctx)
	sh.v0Start = len(sh.events)
	n.stepRange(sh.lo, sh.hi, 0, cyc, ctx)
}

// Commit completes the cycle after every shard has finished stepping:
// it lands the staged boundary phits, folds the shard-local stats into
// the network's, and replays the deferred deliver/drop hooks in the
// sequential sweep's order. Must run on a single goroutine while the
// others wait.
func (sr *ShardRun) Commit() {
	n := sr.n
	cyc := n.cycle
	for i := range sr.shards {
		sh := &sr.shards[i]
		for _, sp := range sh.pushes {
			n.routers[sp.nb].in[sp.v][sp.port].push(sp.p)
			n.routers[sp.nb].occ++
			// Boundary crossing: the phit left shard i's routers during
			// the parallel phase and lands in its neighbour's now.
			sr.netLoad[i]--
			sr.netLoad[sr.shardOf[sp.nb]]++
		}
		n.stats.add(&sh.stats)
		sh.stats = Stats{}
		n.actPhits += sh.dPhits
		sr.netLoad[i] += sh.dPhits + sh.dMsgs
		sh.dPhits = 0
		sh.dMsgs = 0
	}
	// Priority-1 events of every shard (shards are ordered by node id,
	// so concatenation preserves ascending router order), then
	// priority-0 — exactly the sequential sweep's hook order.
	for i := range sr.shards {
		sh := &sr.shards[i]
		for _, ev := range sh.events[:sh.v0Start] {
			sr.fire(ev, cyc)
		}
	}
	for i := range sr.shards {
		sh := &sr.shards[i]
		for _, ev := range sh.events[sh.v0Start:] {
			sr.fire(ev, cyc)
		}
	}
	// Staging is consumed here, not lazily at the next StepShard: under
	// epoch batching a shard can sit out whole cycles, and a stale
	// staging area must not replay at a later commit.
	for i := range sr.shards {
		sh := &sr.shards[i]
		sh.pushes = sh.pushes[:0]
		sh.events = sh.events[:0]
		sh.v0Start = 0
	}
}

func (sr *ShardRun) fire(ev hookEvent, cyc int64) {
	n := sr.n
	if ev.drop {
		for _, fn := range n.dropFns {
			fn(int(ev.node), ev.m, ev.reason, cyc)
		}
		n.release(ev.m)
		return
	}
	for _, fn := range n.deliverFns {
		fn(int(ev.node), ev.m, cyc)
	}
	n.release(ev.m)
}

// add folds a per-cycle stats delta into s. All fields are commutative
// sums, so the fold order never affects the totals.
func (s *Stats) add(d *Stats) {
	s.PhitHops += d.PhitHops
	s.BisectionPhits += d.BisectionPhits
	for v := 0; v < 2; v++ {
		s.DeliveredMsgs[v] += d.DeliveredMsgs[v]
		s.DeliveredWords[v] += d.DeliveredWords[v]
		s.LatencySum[v] += d.LatencySum[v]
	}
	s.DeliveryStalls += d.DeliveryStalls
	s.ReturnedMsgs += d.ReturnedMsgs
	s.Retransmits += d.Retransmits
	s.DroppedMsgs += d.DroppedMsgs
	s.CorruptDrops += d.CorruptDrops
	s.DupDrops += d.DupDrops
	s.StallsInjected += d.StallsInjected
}
