package network

// State digesting for the engine equivalence suite: a 64-bit FNV-style
// fold over the network's complete dynamic state, so sequential and
// sharded runs can be compared byte-for-byte without serializing
// anything. Within-cycle scratch fields (pushStamp/pushedNew, snapOcc)
// are excluded: they are dead between cycles and legitimately differ
// between the two engines, which never read them across a cycle
// boundary.

// digestMix folds one value into a running 64-bit digest.
func digestMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// digest folds the message's full wire-visible and NI state.
func (m *Message) digest(h uint64) uint64 {
	h = digestMix(h, uint64(uint8(m.DestX))|uint64(uint8(m.DestY))<<8|
		uint64(uint8(m.DestZ))<<16|uint64(uint8(m.Pri))<<24)
	h = digestMix(h, uint64(uint32(m.Src)))
	h = digestMix(h, uint64(len(m.Words)))
	for _, w := range m.Words {
		h = digestMix(h, uint64(w))
	}
	h = digestMix(h, uint64(m.EnqueueCycle))
	h = digestMix(h, uint64(m.DeliverCycle))
	var flags uint64
	if m.Returning {
		flags |= 1
	}
	if m.absorb {
		flags |= 2
	}
	if m.drop {
		flags |= 4
	}
	if m.Ctl {
		flags |= 8
	}
	if m.HasCheck {
		flags |= 16
	}
	h = digestMix(h, flags|uint64(m.dropReason)<<8)
	h = digestMix(h, uint64(uint32(m.Returns)))
	h = digestMix(h, uint64(uint8(m.origX))|uint64(uint8(m.origY))<<8|uint64(uint8(m.origZ))<<16)
	h = digestMix(h, uint64(uint32(m.Seq)))
	h = digestMix(h, uint64(m.Check))
	h = digestMix(h, uint64(uint32(m.CorruptWord))|uint64(m.CorruptMask)<<32)
	return h
}

// digest folds the buffer's logical contents (head-ordered, not raw
// ring slots) and its pop stamp.
func (b *buf) digest(h uint64) uint64 {
	h = digestMix(h, uint64(b.n))
	h = digestMix(h, uint64(b.popStamp))
	for i := 0; i < int(b.n); i++ {
		p := &b.slots[(int(b.head)+i)%bufCap]
		h = digestMix(h, uint64(uint32(p.idx)))
		h = digestMix(h, uint64(p.arrived))
		h = p.m.digest(h)
	}
	return h
}

// digest folds the stats counters.
func (s *Stats) digest(h uint64) uint64 {
	h = digestMix(h, uint64(s.Cycles))
	h = digestMix(h, s.PhitHops)
	h = digestMix(h, s.BisectionPhits)
	for v := 0; v < 2; v++ {
		h = digestMix(h, s.DeliveredMsgs[v])
		h = digestMix(h, s.DeliveredWords[v])
		h = digestMix(h, s.LatencySum[v])
	}
	h = digestMix(h, s.DeliveryStalls)
	h = digestMix(h, s.ReturnedMsgs)
	h = digestMix(h, s.Retransmits)
	h = digestMix(h, s.DroppedMsgs)
	h = digestMix(h, s.CorruptDrops)
	h = digestMix(h, s.DupDrops)
	h = digestMix(h, s.StallsInjected)
	return h
}

// StateDigest folds the network's complete dynamic state — cycle,
// every router's buffers, worm bookkeeping and link stamps, every
// outbox, and the accumulated stats — into a 64-bit digest. Two runs
// with equal digests at the same cycle have byte-identical network
// state.
func (n *Network) StateDigest() uint64 {
	h := uint64(0xcbf29ce484222325)
	h = digestMix(h, uint64(n.cycle))
	for ri := range n.routers {
		r := &n.routers[ri]
		h = digestMix(h, uint64(uint32(r.occ)))
		for v := 0; v < 2; v++ {
			for q := 0; q < NumPorts; q++ {
				h = digestMix(h, uint64(uint8(r.outOwner[v][q]))|uint64(uint8(r.inRoute[v][q]))<<8)
				h = r.in[v][q].digest(h)
			}
		}
		for q := 0; q < NumPorts; q++ {
			h = digestMix(h, uint64(r.linkStamp[q]))
		}
		h = digestMix(h, uint64(n.rr[ri]))
		for v := 0; v < 2; v++ {
			ob := &n.out[ri][v]
			h = digestMix(h, uint64(len(ob.msgs))|uint64(uint32(ob.phitIdx))<<32)
			h = digestMix(h, uint64(ob.words))
			for _, m := range ob.msgs {
				h = m.digest(h)
			}
		}
	}
	st := n.Stats()
	return st.digest(h)
}
