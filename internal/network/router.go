package network

// Port numbering. Inputs: the six mesh directions plus local injection.
// Outputs: the six mesh directions plus local delivery. A message enters
// on the input port opposite to the output port its upstream router used.
const (
	PortXP    = iota // +X
	PortXM           // -X
	PortYP           // +Y
	PortYM           // -Y
	PortZP           // +Z
	PortZM           // -Z
	PortLocal        // injection (input) / delivery (output)
	NumPorts
)

// opposite maps an output direction to the neighbour's input port.
var opposite = [6]int{PortXM, PortXP, PortYM, PortYP, PortZM, PortZP}

// bufCap is the per-input-buffer capacity in phits. A word and a half
// of elasticity per channel is faithful to the MDP's router and
// reproduces the paper's observation that random traffic saturates the
// network at under half the bisection capacity.
const bufCap = 3

// buf is a fixed-capacity ring of in-flight phits. Each buffer has
// exactly one producer (the upstream link or the local outbox) and one
// consumer, so a popStamp suffices to reconstruct the occupancy at the
// start of the cycle: producers admit a phit only if space existed then,
// keeping throughput independent of router sweep order.
type buf struct {
	slots    [bufCap]phitRef
	head     int8
	n        int8
	popStamp int64 // cycle of the most recent pop

	// snapOcc is the occupancy recorded by ShardRun.Snapshot at the
	// start of the cycle. A producer in a different shard cannot use the
	// popStamp reconstruction — n and popStamp are concurrently mutated
	// by the consuming shard — so it admits phits against this frozen
	// value instead, which equals exactly what the reconstruction would
	// have computed. Unused in sequential stepping.
	snapOcc int8
}

func (b *buf) empty() bool { return b.n == 0 }

func (b *buf) push(p phitRef) {
	b.slots[(int(b.head)+int(b.n))%bufCap] = p
	b.n++
}

func (b *buf) peek() *phitRef { return &b.slots[b.head] }

func (b *buf) pop() phitRef {
	p := b.slots[b.head]
	b.head = (b.head + 1) % bufCap
	b.n--
	return p
}

const noPort = int8(-1)

// router is one node's wormhole router: per priority, an input buffer
// per input port, ownership of each output port, and the output port
// assigned to the worm currently flowing through each input.
type router struct {
	x, y, z int8

	in       [2][NumPorts]buf
	outOwner [2][NumPorts]int8 // input port owning the output, or noPort
	inRoute  [2][NumPorts]int8 // output port assigned to this input's worm

	// linkStamp[o] == current cycle when output o's physical channel has
	// already carried a phit this cycle (shared across priorities).
	linkStamp [NumPorts]int64

	// occ counts phits buffered here plus pending local work; zero means
	// the router can be skipped entirely this cycle.
	occ int32

	// pushStamp/pushedNew track phits pushed into this router during the
	// current cycle (by neighbours or the local outbox). The stepping
	// skip check subtracts them from occ so that whether a same-cycle
	// push has already landed — which depends on sweep order in the
	// sequential loop and on shard boundaries in the parallel engine —
	// never changes which routers are stepped. The resulting effective
	// occupancy, start-of-cycle phits minus this cycle's pops, is
	// identical in both engines.
	pushStamp int64
	pushedNew int32
}

// notePush records a phit entering the router this cycle (it cannot
// move until the next one, so the skip check must not count it).
func (r *router) notePush(cyc int64) {
	if r.pushStamp != cyc {
		r.pushStamp, r.pushedNew = cyc, 0
	}
	r.pushedNew++
	r.occ++
}

// effOcc returns the router's phit occupancy excluding phits that
// arrived this cycle: start-of-cycle occupancy minus this cycle's pops.
func (r *router) effOcc(cyc int64) int32 {
	o := r.occ
	if r.pushStamp == cyc {
		o -= r.pushedNew
	}
	return o
}

func (r *router) init(x, y, z int) {
	r.x, r.y, r.z = int8(x), int8(y), int8(z)
	for v := 0; v < 2; v++ {
		for p := 0; p < NumPorts; p++ {
			r.outOwner[v][p] = noPort
			r.inRoute[v][p] = noPort
		}
	}
}

// route computes the e-cube output port for m at this router: correct X,
// then Y, then Z, then deliver.
func (r *router) route(m *Message) int8 {
	switch {
	case m.DestX > r.x:
		return PortXP
	case m.DestX < r.x:
		return PortXM
	case m.DestY > r.y:
		return PortYP
	case m.DestY < r.y:
		return PortYM
	case m.DestZ > r.z:
		return PortZP
	case m.DestZ < r.z:
		return PortZM
	default:
		return PortLocal
	}
}
