package network

// Cross-checks for the O(1) Pending() fast path: the incremental
// in-flight counters (actPhits, actMsgs) must agree with the full
// router/outbox scan they replaced at every cycle of a random traffic
// mix, and must return exactly to zero once the mesh drains. Both the
// sequential Step loop and the sharded Snapshot/StepShard/Commit
// protocol are exercised — the shards accumulate phit deltas locally
// and fold them at Commit, which is a separate code path.

import (
	"math/rand"
	"testing"
)

// pendingCheck asserts counter and scan agree right now.
func pendingCheck(t *testing.T, n *Network, cycle int) {
	t.Helper()
	if got, want := n.Pending(), n.pendingScan(); got != want {
		t.Fatalf("cycle %d: Pending()=%v but scan says %v (actPhits=%d actMsgs=%d)",
			cycle, got, want, n.actPhits, n.actMsgs.Load())
	}
}

// randomTraffic injects a random message roughly every third cycle:
// random source, destination (self-sends included), priority, length,
// and injection delay.
func randomTraffic(r *rand.Rand, n *Network, nodes int) {
	if r.Intn(3) != 0 {
		return
	}
	dst := r.Intn(nodes)
	m := msgTo(n, dst, r.Intn(2), 1+r.Intn(6))
	n.Inject(r.Intn(nodes), m, int32(r.Intn(3)))
}

func TestPendingCounterMatchesScan(t *testing.T) {
	const nodes = 16
	n, _ := makeNet(t, 4, 4, 1, 1<<14)
	r := rand.New(rand.NewSource(7))
	pendingCheck(t, n, -1)
	for c := 0; c < 3000; c++ {
		randomTraffic(r, n, nodes)
		n.Step()
		pendingCheck(t, n, c)
	}
	for c := 0; c < 20_000 && n.Pending(); c++ {
		n.Step()
	}
	pendingCheck(t, n, -2)
	if n.Pending() {
		t.Fatal("network did not drain")
	}
	if n.actPhits != 0 || n.actMsgs.Load() != 0 {
		t.Fatalf("drained network left residue: actPhits=%d actMsgs=%d",
			n.actPhits, n.actMsgs.Load())
	}
}

func TestPendingCounterMatchesScanSharded(t *testing.T) {
	const nodes = 16
	n, _ := makeNet(t, 4, 4, 1, 1<<14)
	sr := NewShardRun(n, 4)
	r := rand.New(rand.NewSource(11))
	step := func() {
		sr.Begin()
		for s := 0; s < sr.Shards(); s++ {
			sr.Snapshot(s)
		}
		for s := 0; s < sr.Shards(); s++ {
			sr.StepShard(s)
		}
		sr.Commit()
	}
	for c := 0; c < 3000; c++ {
		randomTraffic(r, n, nodes)
		step()
		pendingCheck(t, n, c)
	}
	for c := 0; c < 20_000 && n.Pending(); c++ {
		step()
	}
	if n.Pending() || n.actPhits != 0 || n.actMsgs.Load() != 0 {
		t.Fatalf("drained network left residue: actPhits=%d actMsgs=%d",
			n.actPhits, n.actMsgs.Load())
	}
}
