package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jmachine/internal/queue"
	"jmachine/internal/word"
)

func makeNet(t *testing.T, x, y, z int, qcap int) (*Network, [][2]*queue.Queue) {
	if t != nil {
		t.Helper()
	}
	queues := make([][2]*queue.Queue, x*y*z)
	for i := range queues {
		queues[i] = [2]*queue.Queue{queue.New(qcap), queue.New(qcap)}
	}
	n, err := New(Config{DimX: x, DimY: y, DimZ: z}, queues)
	if err != nil {
		t.Fatal(err)
	}
	return n, queues
}

func msgTo(n *Network, dst int, pri int, payload int) *Message {
	x, y, z := n.NodeCoords(dst)
	words := make([]word.Word, payload)
	words[0] = word.MsgHeader(1, payload)
	for i := 1; i < payload; i++ {
		words[i] = word.Int(int32(i * 100))
	}
	return &Message{DestX: int8(x), DestY: int8(y), DestZ: int8(z), Pri: int8(pri), Words: words}
}

func runUntilDelivered(t *testing.T, n *Network, q *queue.Queue, max int) int {
	t.Helper()
	for c := 0; c < max; c++ {
		if q.HeadReady() {
			return c
		}
		n.Step()
	}
	t.Fatalf("message not delivered within %d cycles", max)
	return 0
}

func TestSingleHopDelivery(t *testing.T) {
	n, qs := makeNet(t, 4, 1, 1, 64)
	m := msgTo(n, 1, 0, 2)
	n.Inject(0, m, 0)
	cycles := runUntilDelivered(t, n, qs[1][0], 100)
	// 2-word message = 6 phits; pipeline injection + 1 hop + delivery.
	if cycles < 6 || cycles > 20 {
		t.Errorf("1-hop 2-word delivery = %d cycles", cycles)
	}
	q := qs[1][0]
	if q.HeadLen() != 2 || q.WordAt(1).Data() != 100 {
		t.Errorf("delivered message corrupt: len=%d w1=%v", q.HeadLen(), q.WordAt(1))
	}
	if n.Stats().DeliveredMsgs[0] != 1 {
		t.Errorf("DeliveredMsgs = %d", n.Stats().DeliveredMsgs[0])
	}
}

func TestLatencySlopeOneCyclePerHop(t *testing.T) {
	// Minimum latency is 1 cycle/hop: increasing distance by one hop
	// adds exactly one cycle on an unloaded network.
	lat := make([]int64, 7)
	for d := 1; d <= 7; d++ {
		n, _ := makeNet(t, 8, 1, 1, 64)
		m := msgTo(n, d, 0, 2)
		n.Inject(0, m, 0)
		for m.DeliverCycle == 0 {
			n.Step()
		}
		lat[d-1] = m.DeliverCycle - m.EnqueueCycle
	}
	for d := 1; d < 7; d++ {
		if lat[d]-lat[d-1] != 1 {
			t.Errorf("slope at hop %d: %d -> %d", d, lat[d-1], lat[d])
		}
	}
}

func TestSerializationTwoCyclesPerWord(t *testing.T) {
	// Channel bandwidth is 0.5 words/cycle: each extra payload word adds
	// two cycles to the tail's arrival.
	var prev int64
	for L := 2; L <= 16; L *= 2 {
		n, _ := makeNet(t, 2, 1, 1, 64)
		m := msgTo(n, 1, 0, L)
		n.Inject(0, m, 0)
		for m.DeliverCycle == 0 {
			n.Step()
		}
		lat := m.DeliverCycle - m.EnqueueCycle
		if prev != 0 {
			extraWords := int64(L / 2)
			if lat-prev != 2*extraWords {
				t.Errorf("L=%d: latency %d, prev %d, want +%d", L, lat, prev, 2*extraWords)
			}
		}
		prev = lat
	}
}

func TestECubeRouteLengthProperty(t *testing.T) {
	// Delivery time on an unloaded mesh grows exactly with Manhattan
	// distance (e-cube is minimal), message content survives, and every
	// message is delivered exactly once.
	f := func(sx, sy, sz, dx, dy, dz uint8) bool {
		const k = 4
		src := [3]int{int(sx) % k, int(sy) % k, int(sz) % k}
		dst := [3]int{int(dx) % k, int(dy) % k, int(dz) % k}
		n, qs := makeNet(nil, k, k, k, 64)
		s := n.NodeID(src[0], src[1], src[2])
		d := n.NodeID(dst[0], dst[1], dst[2])
		m := msgTo(n, d, 0, 2)
		n.Inject(s, m, 0)
		for i := 0; i < 500 && m.DeliverCycle == 0; i++ {
			n.Step()
		}
		if m.DeliverCycle == 0 {
			return false
		}
		manhattan := abs(src[0]-dst[0]) + abs(src[1]-dst[1]) + abs(src[2]-dst[2])
		lat := m.DeliverCycle - m.EnqueueCycle
		base := lat - int64(manhattan)
		// The distance-independent part must be constant: re-derive it
		// for distance 0 and compare.
		n2, _ := makeNet(nil, k, k, k, 64)
		m2 := msgTo(n2, s, 0, 2)
		n2.Inject(s, m2, 0)
		for i := 0; i < 500 && m2.DeliverCycle == 0; i++ {
			n2.Step()
		}
		return qs[d][0].HeadReady() && base == m2.DeliverCycle-m2.EnqueueCycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestPriorityPreference(t *testing.T) {
	// Two messages contending for the same path: the priority-1 message
	// must not be delayed behind priority-0 bulk traffic.
	n, _ := makeNet(t, 8, 1, 1, 256)
	bulk := msgTo(n, 7, 0, 16)
	pri := msgTo(n, 7, 1, 2)
	n.Inject(0, bulk, 0)
	n.Inject(0, pri, 0)
	for pri.DeliverCycle == 0 || bulk.DeliverCycle == 0 {
		n.Step()
		if n.Stats().Cycles > 1000 {
			t.Fatal("messages stuck")
		}
	}
	if pri.DeliverCycle >= bulk.DeliverCycle {
		t.Errorf("priority 1 delivered at %d, after bulk at %d", pri.DeliverCycle, bulk.DeliverCycle)
	}
}

func TestBackpressureNoLoss(t *testing.T) {
	// A tiny destination queue forces delivery stalls; popping the queue
	// must eventually drain every message intact.
	n, qs := makeNet(t, 2, 1, 1, 8)
	const sent = 10
	for i := 0; i < sent; i++ {
		m := msgTo(n, 1, 0, 4)
		m.Words[1] = word.Int(int32(i))
		n.Inject(0, m, 0)
	}
	// Let the 8-word queue fill (two 4-word messages) before draining,
	// forcing the network to hold the rest back.
	for c := 0; c < 100; c++ {
		n.Step()
	}
	got := 0
	for c := 0; c < 5000 && got < sent; c++ {
		n.Step()
		if qs[1][0].HeadReady() {
			if qs[1][0].WordAt(1).Data() != int32(got) {
				t.Fatalf("message %d out of order: %v", got, qs[1][0].WordAt(1))
			}
			qs[1][0].Pop()
			got++
		}
	}
	if got != sent {
		t.Fatalf("delivered %d of %d", got, sent)
	}
	if n.Stats().DeliveryStalls == 0 {
		t.Error("expected delivery stalls with a tiny queue")
	}
}

func TestBisectionAccounting(t *testing.T) {
	n, _ := makeNet(t, 4, 1, 1, 64)
	m := msgTo(n, 3, 0, 2) // crosses the mid-X plane (x=1 -> x=2)
	n.Inject(0, m, 0)
	for m.DeliverCycle == 0 {
		n.Step()
	}
	if got := n.Stats().BisectionPhits; got != uint64(m.WirePhits()) {
		t.Errorf("bisection phits = %d, want %d", got, m.WirePhits())
	}

	n2, _ := makeNet(t, 4, 1, 1, 64)
	m2 := msgTo(n2, 1, 0, 2) // stays left of the plane
	n2.Inject(0, m2, 0)
	for m2.DeliverCycle == 0 {
		n2.Step()
	}
	if got := n2.Stats().BisectionPhits; got != 0 {
		t.Errorf("non-crossing message counted %d bisection phits", got)
	}
}

func TestOutboxCapacity(t *testing.T) {
	n, _ := makeNet(t, 2, 1, 1, 64)
	free := n.OutboxFree(0, 0)
	if free != DefaultOutboxWords {
		t.Fatalf("initial OutboxFree = %d", free)
	}
	m := msgTo(n, 1, 0, 8)
	n.Inject(0, m, 0)
	if n.OutboxFree(0, 0) != free-8 {
		t.Errorf("OutboxFree after inject = %d", n.OutboxFree(0, 0))
	}
	for m.DeliverCycle == 0 {
		n.Step()
	}
	if n.OutboxFree(0, 0) != free {
		t.Errorf("OutboxFree after drain = %d", n.OutboxFree(0, 0))
	}
}

func TestNodeAddressing(t *testing.T) {
	n, _ := makeNet(t, 4, 3, 2, 16)
	for id := 0; id < n.Nodes(); id++ {
		x, y, z := n.NodeCoords(id)
		if n.NodeID(x, y, z) != id {
			t.Fatalf("coords round trip failed for %d", id)
		}
		if n.NodeFromWord(n.NodeWord(id)) != id {
			t.Fatalf("word round trip failed for %d", id)
		}
	}
	if n.NodeFromWord(word.Node(9, 0, 0)) != -1 {
		t.Error("out-of-mesh word resolved")
	}
}

func TestRandomTrafficAllDelivered(t *testing.T) {
	// Saturating random traffic: every injected message is delivered
	// exactly once, in spite of contention and wormhole blocking.
	n, qs := makeNet(t, 3, 3, 3, 4096)
	r := rand.New(rand.NewSource(1))
	const per = 20
	sent := 0
	for id := 0; id < n.Nodes(); id++ {
		for k := 0; k < per; k++ {
			m := msgTo(n, r.Intn(n.Nodes()), 0, 2+r.Intn(6))
			n.Inject(id, m, 0)
			sent++
		}
	}
	for c := 0; c < 100000 && n.Pending(); c++ {
		n.Step()
	}
	if n.Pending() {
		t.Fatal("network did not drain")
	}
	var got uint64
	for _, q := range qs {
		got += q[0].Stats().Delivered
	}
	if got != uint64(sent) {
		t.Fatalf("delivered %d of %d", got, sent)
	}
}

func TestReturnToSender(t *testing.T) {
	// A stopped receiver with a tiny queue: without RTS the traffic
	// wedges in the network; with RTS refused messages bounce home and
	// retry, and the network around the hotspot stays clear.
	queues := make([][2]*queue.Queue, 4)
	for i := range queues {
		queues[i] = [2]*queue.Queue{queue.New(8), queue.New(8)}
	}
	n, err := New(Config{DimX: 4, DimY: 1, DimZ: 1, ReturnToSender: true, RTSBackoff: 20}, queues)
	if err != nil {
		t.Fatal(err)
	}
	const sent = 6
	for i := 0; i < sent; i++ {
		m := msgTo(n, 2, 0, 4)
		m.Words[1] = word.Int(int32(i))
		m.Src = 0
		n.Inject(0, m, 0)
	}
	// Let the queue fill (2 messages) and the rest bounce.
	for c := 0; c < 400; c++ {
		n.Step()
	}
	if n.Stats().ReturnedMsgs == 0 {
		t.Fatal("no messages were returned")
	}
	// While the receiver is stopped, traffic THROUGH the congested
	// region must still flow: node 0 -> node 3 passes node 2's router.
	through := msgTo(n, 3, 0, 2)
	n.Inject(0, through, 0)
	for c := 0; c < 400 && through.DeliverCycle == 0; c++ {
		n.Step()
	}
	if through.DeliverCycle == 0 {
		t.Fatal("through-traffic blocked despite return-to-sender")
	}
	// Drain the receiver: every refused message eventually arrives,
	// exactly once each.
	got := 0
	for c := 0; c < 20000 && got < sent; c++ {
		n.Step()
		if queues[2][0].HeadReady() {
			queues[2][0].Pop()
			got++
		}
	}
	if got != sent {
		t.Fatalf("delivered %d of %d after draining", got, sent)
	}
	if n.Stats().Retransmits == 0 {
		t.Error("no retransmissions recorded")
	}
}

func TestReturnToSenderRandomTrafficDeliversAll(t *testing.T) {
	// Property: with RTS enabled, tiny queues, and random traffic that
	// is drained slowly, every message is still delivered exactly once
	// (returns + retransmissions conserve messages).
	queues := make([][2]*queue.Queue, 8)
	for i := range queues {
		queues[i] = [2]*queue.Queue{queue.New(12), queue.New(12)}
	}
	n, err := New(Config{DimX: 8, DimY: 1, DimZ: 1, ReturnToSender: true, RTSBackoff: 16}, queues)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	const sent = 120
	for i := 0; i < sent; i++ {
		src := r.Intn(8)
		m := msgTo(n, r.Intn(8), 0, 3)
		m.Src = int32(src)
		n.Inject(src, m, 0)
	}
	var got uint64
	for c := 0; c < 400_000 && got < sent; c++ {
		n.Step()
		if c%7 == 0 { // slow consumers
			for i := range queues {
				if queues[i][0].HeadReady() {
					queues[i][0].Pop()
					got++
				}
			}
		}
	}
	for i := range queues {
		for queues[i][0].HeadReady() {
			queues[i][0].Pop()
			got++
		}
	}
	if got != sent {
		t.Fatalf("delivered %d of %d (returns=%d retransmits=%d)",
			got, sent, n.Stats().ReturnedMsgs, n.Stats().Retransmits)
	}
}
