package network

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/word"
)

// Checkpoint serialization. In-flight messages are shared by pointer
// between router buffers (one phitRef per buffered phit) and outboxes
// (a message being streamed sits in msgs[0] while its head phits are
// already in the mesh), so the codec first builds a message table —
// every distinct in-flight *Message in a deterministic walk order —
// and then encodes buffers and outboxes as indices into it. Restore
// rebuilds the table with fresh un-pooled messages and re-links the
// same sharing structure.

// saveMessage serializes every wire-visible and NI field (the same set
// Message.digest folds; pooled is allocator bookkeeping and is not
// restored — restored messages are hand-built and never re-pooled).
func saveMessage(e *wire.Encoder, m *Message) {
	e.U8(uint8(m.DestX))
	e.U8(uint8(m.DestY))
	e.U8(uint8(m.DestZ))
	e.U8(uint8(m.Pri))
	e.I32(m.Src)
	e.Int(len(m.Words))
	for _, w := range m.Words {
		e.U64(uint64(w))
	}
	e.I64(m.EnqueueCycle)
	e.I64(m.DeliverCycle)
	e.Bool(m.Returning)
	e.Bool(m.absorb)
	e.I32(m.Returns)
	e.U8(uint8(m.origX))
	e.U8(uint8(m.origY))
	e.U8(uint8(m.origZ))
	e.I32(m.Seq)
	e.Bool(m.Ctl)
	e.Bool(m.HasCheck)
	e.U32(m.Check)
	e.I32(m.CorruptWord)
	e.U32(m.CorruptMask)
	e.Bool(m.drop)
	e.U8(uint8(m.dropReason))
}

func restoreMessage(d *wire.Decoder) *Message {
	m := &Message{}
	m.DestX = int8(d.U8())
	m.DestY = int8(d.U8())
	m.DestZ = int8(d.U8())
	m.Pri = int8(d.U8())
	m.Src = d.I32()
	nw := d.Count(8)
	m.Words = make([]word.Word, nw)
	for i := range m.Words {
		m.Words[i] = word.Word(d.U64())
	}
	m.EnqueueCycle = d.I64()
	m.DeliverCycle = d.I64()
	m.Returning = d.Bool()
	m.absorb = d.Bool()
	m.Returns = d.I32()
	m.origX = int8(d.U8())
	m.origY = int8(d.U8())
	m.origZ = int8(d.U8())
	m.Seq = d.I32()
	m.Ctl = d.Bool()
	m.HasCheck = d.Bool()
	m.Check = d.U32()
	m.CorruptWord = d.I32()
	m.CorruptMask = d.U32()
	m.drop = d.Bool()
	m.dropReason = DropReason(d.U8())
	return m
}

// collectMessages walks every buffer slot (logical order) and outbox in
// index order, assigning each distinct in-flight message a table index.
func (n *Network) collectMessages() (table []*Message, index map[*Message]int) {
	index = make(map[*Message]int)
	add := func(m *Message) {
		if _, ok := index[m]; !ok {
			index[m] = len(table)
			table = append(table, m)
		}
	}
	for ri := range n.routers {
		r := &n.routers[ri]
		for v := 0; v < 2; v++ {
			for q := 0; q < NumPorts; q++ {
				b := &r.in[v][q]
				for i := 0; i < int(b.n); i++ {
					add(b.slots[(int(b.head)+i)%bufCap].m)
				}
			}
		}
	}
	for ri := range n.out {
		for v := 0; v < 2; v++ {
			for _, m := range n.out[ri][v].msgs {
				add(m)
			}
		}
	}
	return table, index
}

// SaveState serializes the network's complete dynamic state: cycle,
// the in-flight message table, every router's buffers, worm ownership
// and link stamps, every outbox, the round-robin offsets, the
// incremental in-flight counters, and the accumulated stats.
// Within-cycle scratch (pushStamp/pushedNew, snapOcc) is dead between
// cycles and deliberately excluded, matching StateDigest.
func (n *Network) SaveState(e *wire.Encoder) {
	e.Int(len(n.routers))
	e.I64(n.cycle)
	table, index := n.collectMessages()
	e.Int(len(table))
	for _, m := range table {
		saveMessage(e, m)
	}
	for ri := range n.routers {
		r := &n.routers[ri]
		e.I32(r.occ)
		for v := 0; v < 2; v++ {
			for q := 0; q < NumPorts; q++ {
				e.U8(uint8(r.outOwner[v][q]))
				e.U8(uint8(r.inRoute[v][q]))
				b := &r.in[v][q]
				e.U8(uint8(b.n))
				e.I64(b.popStamp)
				for i := 0; i < int(b.n); i++ {
					p := &b.slots[(int(b.head)+i)%bufCap]
					e.U32(uint32(index[p.m]))
					e.I32(p.idx)
					e.I64(p.arrived)
				}
			}
		}
		for q := 0; q < NumPorts; q++ {
			e.I64(r.linkStamp[q])
		}
		e.U8(n.rr[ri])
		for v := 0; v < 2; v++ {
			ob := &n.out[ri][v]
			e.Int(len(ob.msgs))
			for _, m := range ob.msgs {
				e.U32(uint32(index[m]))
			}
			e.I32(ob.phitIdx)
			e.Int(ob.words)
		}
	}
	e.I64(n.actPhits)
	e.I64(n.actMsgs.Load())
	n.saveStats(e)
}

func (n *Network) saveStats(e *wire.Encoder) {
	s := &n.stats
	e.U64(s.PhitHops)
	e.U64(s.BisectionPhits)
	for v := 0; v < 2; v++ {
		e.U64(s.DeliveredMsgs[v])
		e.U64(s.DeliveredWords[v])
		e.U64(s.LatencySum[v])
	}
	e.U64(s.DeliveryStalls)
	e.U64(s.ReturnedMsgs)
	e.U64(s.Retransmits)
	e.U64(s.DroppedMsgs)
	e.U64(s.CorruptDrops)
	e.U64(s.DupDrops)
	e.U64(s.StallsInjected)
}

func (n *Network) restoreStats(d *wire.Decoder) {
	s := &n.stats
	s.PhitHops = d.U64()
	s.BisectionPhits = d.U64()
	for v := 0; v < 2; v++ {
		s.DeliveredMsgs[v] = d.U64()
		s.DeliveredWords[v] = d.U64()
		s.LatencySum[v] = d.U64()
	}
	s.DeliveryStalls = d.U64()
	s.ReturnedMsgs = d.U64()
	s.Retransmits = d.U64()
	s.DroppedMsgs = d.U64()
	s.CorruptDrops = d.U64()
	s.DupDrops = d.U64()
	s.StallsInjected = d.U64()
}

// RestoreState rebuilds the network in place: router and outbox arrays
// are mutated, never reallocated, because the parallel engine's shards
// hold references into them. Buffers land rebased to ring offset zero,
// which is unobservable (all access is logical from head).
func (n *Network) RestoreState(d *wire.Decoder) error {
	if r := d.Int(); r != len(n.routers) {
		return fmt.Errorf("network: checkpoint has %d routers, machine has %d", r, len(n.routers))
	}
	n.cycle = d.I64()
	nm := d.Count(1)
	table := make([]*Message, nm)
	for i := range table {
		table[i] = restoreMessage(d)
		if err := d.Err(); err != nil {
			return err
		}
	}
	msgAt := func(i uint32) (*Message, error) {
		if int(i) >= len(table) {
			return nil, fmt.Errorf("network: message index %d out of range (%d in table)", i, len(table))
		}
		return table[i], nil
	}
	for ri := range n.routers {
		r := &n.routers[ri]
		r.occ = d.I32()
		for v := 0; v < 2; v++ {
			for q := 0; q < NumPorts; q++ {
				r.outOwner[v][q] = int8(d.U8())
				r.inRoute[v][q] = int8(d.U8())
				b := &r.in[v][q]
				cnt := int(int8(d.U8()))
				if cnt < 0 || cnt > bufCap {
					return fmt.Errorf("network: buffer occupancy %d out of range", cnt)
				}
				b.head = 0
				b.n = int8(cnt)
				b.popStamp = d.I64()
				b.snapOcc = 0
				for i := 0; i < cnt; i++ {
					m, err := msgAt(d.U32())
					if err != nil {
						return err
					}
					b.slots[i] = phitRef{m: m, idx: d.I32(), arrived: d.I64()}
				}
				for i := cnt; i < bufCap; i++ {
					b.slots[i] = phitRef{}
				}
			}
		}
		for q := 0; q < NumPorts; q++ {
			r.linkStamp[q] = d.I64()
		}
		r.pushStamp, r.pushedNew = 0, 0
		n.rr[ri] = d.U8()
		for v := 0; v < 2; v++ {
			ob := &n.out[ri][v]
			cnt := d.Count(4)
			msgs := ob.msgs[:0]
			for i := 0; i < cnt; i++ {
				m, err := msgAt(d.U32())
				if err != nil {
					return err
				}
				msgs = append(msgs, m)
			}
			ob.msgs = msgs
			ob.phitIdx = d.I32()
			ob.words = d.Int()
		}
	}
	n.actPhits = d.I64()
	n.actMsgs.Store(d.I64())
	n.restoreStats(d)
	return d.Err()
}
