package mdp

import (
	"jmachine/internal/isa"
	"jmachine/internal/mem"
	"jmachine/internal/network"
	"jmachine/internal/stats"
	"jmachine/internal/trace"
	"jmachine/internal/word"
)

// execResult reports one instruction's outcome: cycles consumed, the
// statistics category they belong to, the next IP, or a fault.
type execResult struct {
	cost   int32
	cat    stats.Cat
	nextIP int32
	fault  *Fault
}

func (n *Node) res(cost int32, cat stats.Cat, next int32) execResult {
	return execResult{cost: cost, cat: cat, nextIP: next}
}

func faultRes(k FaultKind, addr int32, v word.Word) execResult {
	return execResult{cost: 0, fault: &Fault{Kind: k, Addr: addr, Val: v}}
}

// readReg reads a register code, including the shared specials.
func (n *Node) readReg(ctx *Context, r isa.Reg) word.Word {
	if r < 8 {
		return ctx.Regs[r]
	}
	switch r {
	case isa.NNR:
		return n.nnr
	case isa.QLEN:
		return word.Int(int32(n.Queues[0].Used()))
	case isa.PRI:
		switch n.cur {
		case LvlP1:
			return word.Int(1)
		case LvlBG:
			return word.Int(2)
		default:
			return word.Int(0)
		}
	case isa.CYC:
		return word.Int(int32(n.cycle))
	case isa.RGN:
		return word.Int(int32(n.region))
	default: // ZERO and reserved codes
		return word.Int(0)
	}
}

// writeReg writes a register code; writes to read-only specials are
// discarded, and RGN adjusts statistics attribution.
func (n *Node) writeReg(ctx *Context, r isa.Reg, w word.Word) {
	if r < 8 {
		ctx.Regs[r] = w
		return
	}
	if r == isa.RGN {
		if w.Data() == int32(stats.CatNNR) {
			n.region = stats.CatNNR
		} else {
			n.region = stats.CatComp
		}
	}
}

// presence checks a word against the presence tags. Consuming uses fault
// on both cfut and fut; copying uses (MOVE, SEND, ENTER values) fault
// only on cfut — futures are first-class and may be copied freely.
func presence(w word.Word, consuming bool) *Fault {
	switch w.Tag() {
	case word.TagCfut:
		return &Fault{Kind: FaultCfut, Addr: -1, Val: w}
	case word.TagFut:
		if consuming {
			return &Fault{Kind: FaultFut, Addr: -1, Val: w}
		}
	}
	return nil
}

// memRef is a resolved memory operand.
type memRef struct {
	queue    bool // reference into the current message via A3
	pri      int  // queue priority when queue
	addr     int32
	internal bool
}

// resolveMem resolves a ModeMem/ModeMemReg operand through its address
// register: raw integer addresses, segment descriptors (bounds-checked),
// or message-relative references (TagMsg in an address register).
func (n *Node) resolveMem(ctx *Context, op isa.Operand) (memRef, *Fault) {
	base := ctx.Regs[op.Reg]
	off := op.Imm
	if op.Mode == isa.ModeMemReg {
		idx := ctx.Regs[op.Idx]
		if f := presence(idx, true); f != nil {
			return memRef{}, f
		}
		off = idx.Data()
	}
	switch base.Tag() {
	case word.TagMsg:
		pri := int(base.Data() & 1)
		q := n.Queues[pri]
		if !q.HeadReady() || off < 0 || int(off) >= q.HeadLen() {
			return memRef{}, &Fault{Kind: FaultBounds, Addr: off, Val: base}
		}
		return memRef{queue: true, pri: pri, addr: off}, nil
	case word.TagAddr:
		addr, err := mem.SegAddr(base, off)
		if err != nil {
			return memRef{}, &Fault{Kind: FaultBounds, Addr: off, Val: base}
		}
		return memRef{addr: addr, internal: n.Mem.IsInternal(addr)}, nil
	case word.TagInt, word.TagIP:
		addr := base.Data() + off
		if addr < 0 || int(addr) >= n.Mem.Size() {
			return memRef{}, &Fault{Kind: FaultBounds, Addr: addr, Val: base}
		}
		return memRef{addr: addr, internal: n.Mem.IsInternal(addr)}, nil
	case word.TagCfut:
		return memRef{}, &Fault{Kind: FaultCfut, Addr: -1, Val: base}
	case word.TagFut:
		return memRef{}, &Fault{Kind: FaultFut, Addr: -1, Val: base}
	default:
		return memRef{}, &Fault{Kind: FaultBadTag, Addr: -1, Val: base}
	}
}

// loadCost returns the extra cycles of reading through ref.
func (n *Node) loadCost(ref memRef) int32 {
	t := &n.Cfg.Timing
	switch {
	case ref.queue:
		return t.QueueLoad
	case ref.internal:
		return t.ImemLoad
	default:
		return t.EmemLoad
	}
}

// readOperand evaluates operand op. raw suppresses presence faults (tag
// inspection); consuming selects the stricter presence rule.
func (n *Node) readOperand(ctx *Context, op isa.Operand, consuming, raw bool) (word.Word, int32, *Fault) {
	switch op.Mode {
	case isa.ModeReg:
		w := n.readReg(ctx, op.Reg)
		if !raw {
			if f := presence(w, consuming); f != nil {
				return 0, 0, f
			}
		}
		return w, 0, nil
	case isa.ModeImm:
		return word.Int(op.Imm), 0, nil
	default:
		ref, f := n.resolveMem(ctx, op)
		if f != nil {
			return 0, 0, f
		}
		var w word.Word
		if ref.queue {
			w = n.Queues[ref.pri].WordAt(int(ref.addr))
		} else {
			w, _ = n.Mem.Read(ref.addr) // bounds already checked
		}
		if !raw {
			if f := presence(w, consuming); f != nil {
				f.Addr = ref.addr
				return 0, 0, f
			}
		}
		return w, n.loadCost(ref), nil
	}
}

// exec interprets one instruction.
func (n *Node) exec(ctx *Context, in isa.Instr) execResult {
	t := &n.Cfg.Timing
	next := ctx.IP + 1
	cat := n.region

	switch in.Op {
	case isa.NOP:
		return n.res(1, cat, next)

	case isa.MOVE:
		w, extra, f := n.readOperand(ctx, in.B, false, false)
		if f != nil {
			return execResult{fault: f}
		}
		n.writeReg(ctx, in.A, w)
		return n.res(1+extra, cat, next)

	case isa.ST:
		if !in.B.IsMem() {
			return faultRes(FaultBadInstr, -1, 0)
		}
		ref, f := n.resolveMem(ctx, in.B)
		if f != nil {
			return execResult{fault: f}
		}
		if ref.queue {
			return faultRes(FaultBadTag, ref.addr, ctx.Regs[in.B.Reg])
		}
		// Stores move all 36 bits; writing a cfut word is how software
		// creates presence slots, so no presence check applies.
		w := n.readReg(ctx, in.A)
		if err := n.Mem.Write(ref.addr, w); err != nil {
			return faultRes(FaultBounds, ref.addr, w)
		}
		extra := t.ImemStore
		if !ref.internal {
			extra = t.EmemStore
		}
		return n.res(1+extra, cat, next)

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.LSH, isa.ASH:
		a := n.readReg(ctx, in.A)
		if f := presence(a, true); f != nil {
			return execResult{fault: f}
		}
		b, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		var v int32
		x, y := a.Data(), b.Data()
		switch in.Op {
		case isa.ADD:
			v = x + y
		case isa.SUB:
			v = x - y
		case isa.MUL:
			v = x * y
			extra += t.Mul
		case isa.DIV:
			if y == 0 {
				return faultRes(FaultBadInstr, -1, b)
			}
			v = x / y
			extra += t.DivMod
		case isa.MOD:
			if y == 0 {
				return faultRes(FaultBadInstr, -1, b)
			}
			v = x % y
			extra += t.DivMod
		case isa.AND:
			v = x & y
		case isa.OR:
			v = x | y
		case isa.XOR:
			v = x ^ y
		case isa.LSH:
			v = shiftL(x, y)
		case isa.ASH:
			v = shiftA(x, y)
		}
		n.writeReg(ctx, in.A, word.Int(v))
		return n.res(1+extra, cat, next)

	case isa.NOT, isa.NEG:
		a := n.readReg(ctx, in.A)
		if f := presence(a, true); f != nil {
			return execResult{fault: f}
		}
		v := a.Data()
		if in.Op == isa.NOT {
			v = ^v
		} else {
			v = -v
		}
		n.writeReg(ctx, in.A, word.Int(v))
		return n.res(1, cat, next)

	case isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE:
		a := n.readReg(ctx, in.A)
		if f := presence(a, true); f != nil {
			return execResult{fault: f}
		}
		b, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		var r bool
		x, y := a.Data(), b.Data()
		switch in.Op {
		case isa.EQ:
			r = x == y
		case isa.NE:
			r = x != y
		case isa.LT:
			r = x < y
		case isa.LE:
			r = x <= y
		case isa.GT:
			r = x > y
		case isa.GE:
			r = x >= y
		}
		n.writeReg(ctx, in.A, word.Bool(r))
		return n.res(1+extra, cat, next)

	case isa.BR:
		return n.res(1+t.BranchTaken, cat, in.B.Imm)

	case isa.BT, isa.BF:
		a := n.readReg(ctx, in.A)
		if f := presence(a, true); f != nil {
			return execResult{fault: f}
		}
		taken := a.Truthy() == (in.Op == isa.BT)
		if taken {
			return n.res(1+t.BranchTaken, cat, in.B.Imm)
		}
		return n.res(1, cat, next)

	case isa.BSR:
		n.writeReg(ctx, in.A, word.IP(next))
		return n.res(1+t.BranchTaken, cat, in.B.Imm)

	case isa.JMP:
		b, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		return n.res(1+t.BranchTaken+extra, cat, b.Data())

	case isa.SUSPEND:
		n.EndThread(n.cur)
		return n.res(1, stats.CatSync, next)

	case isa.HALT:
		n.halted = true
		n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Halt,
			A: ctx.IP})
		return n.res(1, cat, next)

	case isa.SEND, isa.SEND2, isa.SENDE, isa.SEND2E,
		isa.SEND1, isa.SEND21, isa.SENDE1, isa.SEND2E1:
		return n.execSend(ctx, in)

	case isa.ENTER:
		key := n.readReg(ctx, in.A)
		if f := presence(key, true); f != nil {
			return execResult{fault: f}
		}
		val, extra, f := n.readOperand(ctx, in.B, false, false)
		if f != nil {
			return execResult{fault: f}
		}
		n.Xl.Enter(key, val)
		return n.res(t.Enter+extra, stats.CatXlate, next)

	case isa.XLATE:
		key, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		v, ok := n.Xl.Lookup(key)
		if !ok {
			return execResult{cost: t.Xlate + extra, fault: &Fault{Kind: FaultXlateMiss, Addr: -1, Val: key}}
		}
		n.writeReg(ctx, in.A, v)
		return n.res(t.Xlate+extra, stats.CatXlate, next)

	case isa.PROBE:
		key, extra, f := n.readOperand(ctx, in.B, false, false)
		if f != nil {
			return execResult{fault: f}
		}
		_, ok := n.Xl.Probe(key)
		n.writeReg(ctx, in.A, word.Bool(ok))
		return n.res(t.Xlate+extra, stats.CatXlate, next)

	case isa.RTAG:
		w, extra, f := n.readOperand(ctx, in.B, false, true)
		if f != nil {
			return execResult{fault: f}
		}
		n.writeReg(ctx, in.A, word.Int(int32(w.Tag())))
		return n.res(1+extra, cat, next)

	case isa.ISCF:
		w, extra, f := n.readOperand(ctx, in.B, false, true)
		if f != nil {
			return execResult{fault: f}
		}
		n.writeReg(ctx, in.A, word.Bool(w.IsCfut()))
		return n.res(1+extra, cat, next)

	case isa.TRAP:
		svc, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		return execResult{cost: extra, fault: &Fault{Kind: FaultTrap, Addr: -1, Val: svc}}

	case isa.WTAG:
		b, extra, f := n.readOperand(ctx, in.B, true, false)
		if f != nil {
			return execResult{fault: f}
		}
		old := n.readReg(ctx, in.A) // raw: retagging never faults
		n.writeReg(ctx, in.A, old.WithTag(word.Tag(b.Data()&0xF)))
		return n.res(1+extra, cat, next)

	default:
		return faultRes(FaultBadInstr, -1, 0)
	}
}

// execSend implements the SEND family: words accumulate into a building
// buffer; the ending variants validate and hand the message to the
// network, stalling with a send fault while injection capacity is
// lacking (network back-pressure).
func (n *Node) execSend(ctx *Context, in isa.Instr) execResult {
	pri := in.Op.SendPriority()
	next := ctx.IP + 1
	b := n.building[n.cur][pri]

	// A retried ending send has already appended its words (the message
	// is complete and waiting for injection capacity).
	complete := len(b) > 0 && in.Op.SendEnds() && n.pendingLen[n.cur][pri] > 0
	var extra int32
	if !complete {
		if len(b) >= 1+n.Cfg.MaxMsgWords {
			return faultRes(FaultBadTag, -1, word.Int(int32(len(b))))
		}
		if in.Op.SendWords() == 2 {
			a := n.readReg(ctx, in.A)
			if f := presence(a, false); f != nil {
				return execResult{fault: f}
			}
			b = append(b, a)
		}
		w, ex, f := n.readOperand(ctx, in.B, false, false)
		if f != nil {
			return execResult{fault: f}
		}
		extra = ex
		b = append(b, w)
		n.building[n.cur][pri] = b
		if in.Op.SendEnds() {
			if f := validateMessage(b); f != nil {
				n.building[n.cur][pri] = b[:0]
				return execResult{fault: f}
			}
			if n.Net.NodeFromWord(b[0]) < 0 {
				n.building[n.cur][pri] = b[:0]
				return execResult{fault: &Fault{Kind: FaultBadTag, Addr: -1, Val: b[0]}}
			}
			n.pendingLen[n.cur][pri] = len(b) - 1
		}
	}
	if !in.Op.SendEnds() {
		return n.res(1+extra, stats.CatComm, next)
	}

	// Injection attempt.
	payload := len(b) - 1
	if n.Net.OutboxFree(n.ID, pri) < payload {
		n.Stats.SendFaults++
		n.Stats.SendFaultCycles++
		return n.res(1, stats.CatComm, ctx.IP) // stall and retry
	}
	x, y, z := b[0].NodeXYZ()
	// Injection is deferred by the ending send's operand latency: a word
	// served from external memory cannot be on the wire before it is
	// read. The message (and its payload buffer) is leased from the
	// network's recycling pool; the network reclaims it at delivery.
	m := network.NewMessage()
	m.DestX, m.DestY, m.DestZ = int8(x), int8(y), int8(z)
	m.Pri, m.Src = int8(pri), int32(n.ID)
	m.Words = append(m.Words, b[1:]...)
	n.Net.Inject(n.ID, m, extra)
	n.Stats.MsgsSent[pri]++
	n.Stats.WordsSent[pri] += uint64(payload)
	n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Send,
		A: int32(n.Net.NodeFromWord(b[0])), B: int32(payload)})
	n.building[n.cur][pri] = b[:0]
	n.pendingLen[n.cur][pri] = 0
	return n.res(1+extra, stats.CatComm, next)
}

// validateMessage checks a complete building buffer: destination word,
// then a header whose length covers the payload.
func validateMessage(b []word.Word) *Fault {
	if len(b) < 2 {
		return &Fault{Kind: FaultBadTag, Addr: -1, Val: word.Int(int32(len(b)))}
	}
	dest := b[0]
	if dest.Tag() != word.TagNode {
		return &Fault{Kind: FaultBadTag, Addr: -1, Val: dest}
	}
	hdr := b[1]
	if hdr.Tag() != word.TagMsg || hdr.HeaderLen() != len(b)-1 {
		return &Fault{Kind: FaultBadTag, Addr: -1, Val: hdr}
	}
	return nil
}

func shiftL(x, by int32) int32 {
	switch {
	case by >= 32 || by <= -32:
		return 0
	case by >= 0:
		return int32(uint32(x) << uint(by))
	default:
		return int32(uint32(x) >> uint(-by))
	}
}

func shiftA(x, by int32) int32 {
	switch {
	case by >= 32:
		return 0
	case by >= 0:
		return int32(uint32(x) << uint(by))
	case by <= -32:
		return x >> 31
	default:
		return x >> uint(-by)
	}
}
