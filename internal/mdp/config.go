// Package mdp implements the Message-Driven Processor core: an
// instruction-level, cycle-counted interpreter with the MDP's
// communication, synchronization, and naming mechanisms.
//
// Timing follows the paper's published rules: most instructions take one
// cycle with register operands and two when one operand is in internal
// memory; external memory adds the DRAM latency; a task is dispatched for
// the message at the head of the queue in four cycles; send instructions
// inject up to two words per cycle. Faults (presence tags, xlate misses,
// send back-pressure, queue overflow) either stall-and-retry in hardware
// or trap to system software supplied by package rt.
package mdp

// Timing collects the cycle-cost knobs. The defaults reproduce the
// paper's cycle arithmetic; ablation benchmarks vary them.
type Timing struct {
	// ImemLoad is the extra cost of reading an operand from internal
	// memory (total 2 cycles for a one-cycle instruction).
	ImemLoad int32
	// EmemLoad is the extra cost of reading an operand from external
	// DRAM. The remote-read server observes 8 cycles per word served
	// from external memory versus 2 from internal, fixing this at 7.
	EmemLoad int32
	// ImemStore is the extra cost of ST to internal memory. Relocating
	// a queue word to internal memory takes at least 3 cycles (2-cycle
	// queue read + 1-cycle store), fixing this at 0.
	ImemStore int32
	// EmemStore is the extra cost of ST to external memory (6-cycle
	// total store, per the 6-cycle relocation cost the paper reports).
	EmemStore int32
	// QueueLoad is the extra cost of reading the message via A3 (the
	// queue lives in on-chip memory).
	QueueLoad int32
	// BranchTaken is the extra cost of a taken branch (pipeline refill
	// and instruction-alignment loss).
	BranchTaken int32
	// Mul and DivMod are the extra cycles of multiply and divide.
	Mul    int32
	DivMod int32
	// Xlate is the total cost of a successful XLATE ("a successful
	// xlate takes three cycles"); Enter of an ENTER.
	Xlate int32
	Enter int32
	// Dispatch is the cost of creating a task for the message at the
	// head of the queue ("a task is dispatched to handle it in four
	// processor cycles").
	Dispatch int32
	// FaultVector is the hardware cost of vectoring to a fault handler,
	// chosen so a presence-tag read failure costs 6 cycles before any
	// software policy (Table 2).
	FaultVector int32
	// EmemFetch is the per-instruction penalty when code executes from
	// external memory (two instructions per fetched word), reproducing
	// the "fewer than 2 MIPS with code and data external" observation.
	EmemFetch int32
}

// DefaultTiming returns the paper-calibrated costs.
func DefaultTiming() Timing {
	return Timing{
		ImemLoad:    1,
		EmemLoad:    7,
		ImemStore:   0,
		EmemStore:   5,
		QueueLoad:   1,
		BranchTaken: 2,
		Mul:         1,
		DivMod:      11,
		Xlate:       3,
		Enter:       2,
		Dispatch:    4,
		FaultVector: 4,
		EmemFetch:   3,
	}
}

// ClockHz is the MDP clock rate: 12.5 MHz (derived from a 25 MHz input
// clock). Used to convert cycle counts to the paper's microsecond and
// bits-per-second figures.
const ClockHz = 12.5e6

// CyclesToMicros converts a cycle count to microseconds at ClockHz.
func CyclesToMicros(cycles float64) float64 { return cycles / ClockHz * 1e6 }

// SoftQueueConfig models the system-level queue-overflow fault handler
// the paper describes for N-Queens: when the priority-0 hardware queue
// rises above a threshold, software relocates the head message into an
// external-memory buffer; relocated messages dispatch from there (their
// operands then pay DRAM latency) ahead of newer hardware-queue
// messages. "It is relatively expensive and is intended to be used for
// transient traffic overruns rather than as a general task management
// mechanism."
type SoftQueueConfig struct {
	Enable bool
	// ThresholdWords triggers relocation when the queue holds at least
	// this many words (default: capacity minus 32).
	ThresholdWords int
	// CostPerMsg is the software overhead per relocation, on top of the
	// per-word external-memory stores (default 20 cycles).
	CostPerMsg int32
	// BufWords sizes the external-memory ring holding relocated
	// messages (default 4096 words, placed at the top of memory).
	BufWords int
}

// Config describes one node's processor options.
type Config struct {
	Timing Timing
	// CodeInEmem places the program image in external memory, applying
	// the EmemFetch penalty to every instruction.
	CodeInEmem bool
	// MaxMsgWords bounds a single message's payload; SENDs beyond it
	// fault. Must not exceed the network's injection buffer or the
	// sender would wedge.
	MaxMsgWords int
	// SoftQueue enables the software queue-overflow handler.
	SoftQueue SoftQueueConfig
}

// DefaultMaxMsgWords bounds message payloads; the applications use
// messages of at most 16 words.
const DefaultMaxMsgWords = 24

func (c Config) withDefaults() Config {
	if c.Timing == (Timing{}) {
		c.Timing = DefaultTiming()
	}
	if c.MaxMsgWords == 0 {
		c.MaxMsgWords = DefaultMaxMsgWords
	}
	return c
}
