package mdp

import (
	"fmt"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// FaultKind classifies processor faults that trap to system software.
type FaultKind uint8

const (
	// FaultCfut: a consuming read touched a cfut-tagged word.
	FaultCfut FaultKind = iota
	// FaultFut: an arithmetic or branching use touched a fut-tagged
	// word (futures may be copied but not consumed).
	FaultFut
	// FaultXlateMiss: XLATE found no entry for the key.
	FaultXlateMiss
	// FaultBounds: a memory access fell outside the node's address
	// space, a segment descriptor's extent, or the current message.
	FaultBounds
	// FaultBadTag: an operand had a type the instruction cannot use
	// (e.g. indexing through a non-address register, SENDing a message
	// with no destination word).
	FaultBadTag
	// FaultBadInstr: an undefined or malformed instruction.
	FaultBadInstr
	// FaultQueueOverflow: raised by the runtime's overflow machinery
	// when a hardware queue fills and software must relocate messages.
	FaultQueueOverflow
	// FaultTrap: an explicit TRAP instruction; Val holds the service
	// number.
	FaultTrap
)

var faultNames = [...]string{
	"cfut", "fut", "xlate-miss", "bounds", "bad-tag", "bad-instr", "queue-overflow", "trap",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault%d", uint8(k))
}

// Fault carries the trap state handed to system software.
type Fault struct {
	Kind  FaultKind
	Addr  int32     // memory address involved, or -1
	Val   word.Word // offending word (cfut word, failed key, ...)
	IP    int32     // code address of the faulting instruction
	Level int       // execution level that faulted
	Instr isa.Instr // the faulting instruction
}

// Error renders the fault for diagnostics.
func (f Fault) Error() string {
	return fmt.Sprintf("mdp: %s fault at ip=%d level=%d addr=%d val=%s (%s)",
		f.Kind, f.IP, f.Level, f.Addr, f.Val, f.Instr)
}

// FaultAction tells the processor how to resume after software service.
type FaultAction uint8

const (
	// ActRetry re-executes the faulting instruction (e.g. after the
	// handler re-entered an evicted translation).
	ActRetry FaultAction = iota
	// ActAdvance resumes at the next instruction (the handler completed
	// the instruction's effect itself).
	ActAdvance
	// ActSuspend ends the faulting thread: the runtime saved what it
	// needed and will restart the computation later.
	ActSuspend
	// ActResume continues with whatever context the handler installed
	// (registers and IP untouched by the processor) — used when system
	// software restores a saved thread into the current level.
	ActResume
	// ActHalt stops the node, recording the fault as fatal.
	ActHalt
)

// FaultFn is the system-software trap entry. It returns the cycles the
// software service consumed (charged to the appropriate category) and
// how to resume. A nil FaultFn halts the node on any fault.
type FaultFn func(n *Node, f Fault) (serviceCycles int32, act FaultAction)
