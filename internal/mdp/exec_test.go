package mdp_test

import (
	"strings"
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/mem"
	"jmachine/internal/word"
)

// runProg runs an arbitrary program's "main" on a 1-node machine.
func runProg(t *testing.T, b *asm.Builder, setup func(m *machine.Machine)) *machine.Machine {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	if setup != nil {
		setup(m)
	}
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100000); err != nil {
		t.Fatal(err)
	}
	return m
}

func bgRegs(m *machine.Machine) *[8]word.Word {
	return &m.Nodes[0].Ctx(mdp.LvlBG).Regs
}

func TestArithmeticSemantics(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 7).
		Mul(isa.R0, asm.Imm(-3)). // -21
		MoveI(isa.R1, -21).
		Div(isa.R1, asm.Imm(4)). // -5 (Go truncation)
		MoveI(isa.R2, 21).
		Mod(isa.R2, asm.Imm(4)). // 1
		MoveI(isa.R3, 1).
		Lsh(isa.R3, asm.Imm(10)). // 1024
		Ash(isa.R3, asm.Imm(-4)). // 64
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if r[isa.R0].Data() != -21 || r[isa.R1].Data() != -5 || r[isa.R2].Data() != 1 || r[isa.R3].Data() != 64 {
		t.Errorf("regs = %v %v %v %v", r[isa.R0], r[isa.R1], r[isa.R2], r[isa.R3])
	}
}

func TestShiftEdgeCases(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, -8).
		Ash(isa.R0, asm.Imm(-1)). // arithmetic: -4
		MoveI(isa.R1, -8).
		Lsh(isa.R1, asm.Imm(-1)). // logical: large positive
		MoveI(isa.R2, 1).
		Lsh(isa.R2, asm.Imm(40)). // over-shift: 0
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if r[isa.R0].Data() != -4 {
		t.Errorf("ASH -8 >> 1 = %v", r[isa.R0])
	}
	if r[isa.R1].Data() != int32(uint32(0xFFFFFFF8)>>1) {
		t.Errorf("LSH -8 >> 1 = %v", r[isa.R1])
	}
	if r[isa.R2].Data() != 0 {
		t.Errorf("over-shift = %v", r[isa.R2])
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 5).
		Div(isa.R0, asm.Imm(0)).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 1000); err == nil || !strings.Contains(err.Error(), "bad-instr") {
		t.Fatalf("expected bad-instr fault, got %v", err)
	}
}

func TestXlateEnterProbeInstructions(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 99).
		Wtag(isa.R0, asm.Imm(int32(word.TagPtr))). // key
		MoveI(isa.R1, 4321).
		Enter(isa.R0, asm.R(isa.R1)).
		Probe(isa.R2, asm.R(isa.R0)). // true
		Xlate(isa.A0, asm.R(isa.R0)).
		MoveI(isa.R3, 98).
		Wtag(isa.R3, asm.Imm(int32(word.TagPtr))).
		Probe(isa.R3, asm.R(isa.R3)). // false (unknown key)
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if !r[isa.R2].Truthy() {
		t.Error("PROBE of entered key false")
	}
	if r[isa.A0].Data() != 4321 {
		t.Errorf("XLATE = %v", r[isa.A0])
	}
	if r[isa.R3].Truthy() {
		t.Error("PROBE of unknown key true")
	}
}

func TestSegmentDescriptorAddressing(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Move(isa.R0, asm.Mem(isa.A0, 2)). // via descriptor
		MoveI(isa.R1, 3).
		Move(isa.R2, asm.MemR(isa.A0, isa.R1)). // indexed via descriptor
		Halt()
	m := runProg(t, b, func(m *machine.Machine) {
		m.Nodes[0].Mem.Write(300, word.Int(10))
		m.Nodes[0].Mem.Write(302, word.Int(12))
		m.Nodes[0].Mem.Write(303, word.Int(13))
		m.Nodes[0].Ctx(mdp.LvlBG).Regs[isa.A0] = mem.Seg(300, 8)
	})
	r := bgRegs(m)
	if r[isa.R0].Data() != 12 || r[isa.R2].Data() != 13 {
		t.Errorf("segment reads = %v %v", r[isa.R0], r[isa.R2])
	}
}

func TestPriority1SendAndHandler(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Send1(asm.R(isa.NNR)).
		MoveHdr(isa.R1, "p1h", 2).
		Send2E1(isa.R1, asm.Imm(55)).
		Suspend()
	b.Label("p1h").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		MoveI(isa.A0, 64).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	m := runProg(t, b, nil)
	got, _ := m.Nodes[0].Mem.Read(64)
	if got.Data() != 55 {
		t.Errorf("P1 handler argument = %v", got)
	}
	if m.Stats.Nodes[0].MsgsSent[1] != 1 {
		t.Errorf("P1 msgs sent = %d", m.Stats.Nodes[0].MsgsSent[1])
	}
}

func TestMessageBoundsFault(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("h").
		Move(isa.R0, asm.Mem(isa.A3, 5)). // beyond the 2-word message
		Suspend()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	q := m.Nodes[0].Queues[0]
	q.Push(word.MsgHeader(p.Entry("h"), 2))
	q.Push(word.Int(1))
	m.StepN(20)
	if err := m.FatalErr(); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("expected bounds fault, got %v", err)
	}
}

func TestQlenSpecialRegister(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Move(isa.R0, asm.R(isa.QLEN)).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	// Queue an incomplete message so nothing dispatches but words are
	// buffered.
	m.Nodes[0].Queues[0].Push(word.MsgHeader(0, 3))
	m.Nodes[0].Queues[0].Push(word.Int(1))
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := bgRegs(m)[isa.R0].Data(); got != 2 {
		t.Errorf("QLEN = %d, want 2", got)
	}
}

func TestJmpThroughIPWord(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 64).
		Move(isa.R0, asm.Mem(isa.A0, 0)). // IP-tagged target
		Jmp(asm.R(isa.R0)).
		Halt(). // skipped
		Label("tail").
		MoveI(isa.R2, 77).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].Mem.Write(64, word.IP(p.Entry("tail")))
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := bgRegs(m)[isa.R2].Data(); got != 77 {
		t.Errorf("JMP did not reach tail: R2 = %d", got)
	}
}

func TestXlateCostThreeCycles(t *testing.T) {
	// "A successful xlate takes three cycles."
	b := asm.NewBuilder()
	b.Label("main").
		Xlate(isa.A0, asm.R(isa.R0)).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].Xl.Enter(word.Int(0), word.Int(5))
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 4 { // 3 for XLATE + 1 for HALT
		t.Errorf("XLATE+HALT took %d cycles, want 4", m.Cycle())
	}
}

func TestShiftExtremes(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, -5).
		Ash(isa.R0, asm.Imm(-40)). // deep arithmetic right: sign
		MoveI(isa.R1, 123).
		Ash(isa.R1, asm.Imm(40)). // over-shift left: 0
		MoveI(isa.R2, 3).
		Ash(isa.R2, asm.Imm(4)). // plain left: 48
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if r[isa.R0].Data() != -1 {
		t.Errorf("ASH -5 >> 40 = %v, want -1", r[isa.R0])
	}
	if r[isa.R1].Data() != 0 {
		t.Errorf("ASH 123 << 40 = %v, want 0", r[isa.R1])
	}
	if r[isa.R2].Data() != 48 {
		t.Errorf("ASH 3 << 4 = %v", r[isa.R2])
	}
}

func TestWritesToSpecialRegistersDiscarded(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.ZERO, 99). // discarded
		Move(isa.R0, asm.R(isa.ZERO)).
		MoveI(isa.NNR, 7). // discarded
		Move(isa.R1, asm.R(isa.NNR)).
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if r[isa.R0].Data() != 0 {
		t.Errorf("ZERO readable as %v after write", r[isa.R0])
	}
	if r[isa.R1].Tag() != word.TagNode {
		t.Errorf("NNR corrupted by write: %v", r[isa.R1])
	}
}

func TestNotAndLogic(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 0).
		Not(isa.R0). // -1
		MoveI(isa.R1, 6).
		And(isa.R1, asm.Imm(3)). // 2
		Or(isa.R1, asm.Imm(8)).  // 10
		Xor(isa.R1, asm.Imm(2)). // 8
		Halt()
	m := runProg(t, b, nil)
	r := bgRegs(m)
	if r[isa.R0].Data() != -1 || r[isa.R1].Data() != 8 {
		t.Errorf("logic results: %v %v", r[isa.R0], r[isa.R1])
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := mdp.FaultCfut; k <= mdp.FaultTrap; k++ {
		if k.String() == "" {
			t.Errorf("fault %d has empty name", k)
		}
	}
	f := mdp.Fault{Kind: mdp.FaultBounds, Addr: 7, IP: 3}
	if !strings.Contains(f.Error(), "bounds") {
		t.Errorf("fault error = %q", f.Error())
	}
}
