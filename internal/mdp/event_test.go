package mdp

// White-box tests for the event-horizon interface: NextEvent's wake
// predictions, SkipTo's byte-identical bulk accounting, and the Busy()
// truth table the scheduler's quiescence detection rests on. These run
// inside the package so node states (stall, frozen, softQ) can be set
// directly instead of being coaxed out of instruction sequences.

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/mem"
	"jmachine/internal/network"
	"jmachine/internal/queue"
	"jmachine/internal/stats"
	"jmachine/internal/word"
	"jmachine/internal/xlate"
)

// newTestNode builds a standalone node on a 1×1×1 mesh. The machine
// package normally does this wiring; tests here need raw field access.
func newTestNode(t *testing.T) *Node {
	t.Helper()
	b := asm.NewBuilder()
	b.Label("main").Nop().Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	qs := [2]*queue.Queue{queue.New(64), queue.New(64)}
	net, err := network.New(network.Config{DimX: 1, DimY: 1, DimZ: 1}, [][2]*queue.Queue{qs})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(mem.Config{})
	return NewNode(0, Config{}, m, xlate.New(4, 2), qs, net, p, stats.NewNode())
}

func TestBusyTruthTable(t *testing.T) {
	cases := []struct {
		name string
		set  func(n *Node)
		want bool
	}{
		{"fresh idle node", func(n *Node) {}, false},
		{"stalled", func(n *Node) { n.stall = 3; n.stallCat = stats.CatComp }, true},
		{"running background ctx", func(n *Node) { n.ctx[LvlBG].Running = true }, true},
		{"queued hardware message", func(n *Node) {
			n.Queues[0].Push(word.MsgHeader(0, 1))
		}, true},
		{"softQ only", func(n *Node) {
			n.softQ = append(n.softQ, softMsg{addr: 100, words: 1})
		}, true},
		{"frozen with nothing pending", func(n *Node) { n.SetFrozen(true) }, false},
		{"frozen hides nothing: queued message", func(n *Node) {
			n.SetFrozen(true)
			n.Queues[0].Push(word.MsgHeader(0, 1))
		}, true},
		{"halted masks everything", func(n *Node) {
			n.Queues[0].Push(word.MsgHeader(0, 1))
			n.ctx[LvlBG].Running = true
			n.halted = true
		}, false},
	}
	for _, tc := range cases {
		n := newTestNode(t)
		tc.set(n)
		if got := n.Busy(); got != tc.want {
			t.Errorf("%s: Busy() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNextEventPredictions(t *testing.T) {
	cases := []struct {
		name string
		set  func(n *Node)
		want func(n *Node) int64
	}{
		{"idle node never wakes by itself", func(n *Node) {},
			func(n *Node) int64 { return NoEvent }},
		{"frozen node waits for the unfreeze hook", func(n *Node) { n.SetFrozen(true) },
			func(n *Node) int64 { return NoEvent }},
		{"halted node is done", func(n *Node) { n.halted = true },
			func(n *Node) int64 { return NoEvent }},
		// The final stall cycle is an event: stall hits zero and Busy()
		// can flip that cycle, so the node must step it individually.
		{"stalled node wakes for its last stall cycle",
			func(n *Node) { n.stall = 5; n.stallCat = stats.CatComm },
			func(n *Node) int64 { return n.cycle + 5 }},
		{"running ctx is live every cycle", func(n *Node) { n.ctx[LvlP0].Running = true },
			func(n *Node) int64 { return n.cycle + 1 }},
		{"queued message is live every cycle", func(n *Node) {
			n.Queues[1].Push(word.MsgHeader(0, 1))
		}, func(n *Node) int64 { return n.cycle + 1 }},
		{"relocated message is live every cycle", func(n *Node) {
			n.softQ = append(n.softQ, softMsg{addr: 100, words: 1})
		}, func(n *Node) int64 { return n.cycle + 1 }},
	}
	for _, tc := range cases {
		n := newTestNode(t)
		n.cycle = 1000
		tc.set(n)
		if got, want := n.NextEvent(), tc.want(n); got != want {
			t.Errorf("%s: NextEvent() = %d, want %d", tc.name, got, want)
		}
	}
}

// TestSkipToMatchesStepping is the accounting half of the digest
// contract: for a node with no external input, SkipTo(target) must land
// on exactly the state that stepping cycle by cycle produces — same
// cycle counter, same stall remainder, same per-category stats.
func TestSkipToMatchesStepping(t *testing.T) {
	shapes := []struct {
		name string
		set  func(n *Node)
	}{
		{"idle", func(n *Node) {}},
		{"frozen", func(n *Node) { n.SetFrozen(true) }},
		{"stall shorter than the skip", func(n *Node) { n.stall = 4; n.stallCat = stats.CatSync }},
		{"stall longer than the skip", func(n *Node) { n.stall = 40; n.stallCat = stats.CatComm }},
		{"frozen while stalled charges idle, not the stall category",
			func(n *Node) { n.stall = 6; n.stallCat = stats.CatComm; n.SetFrozen(true) }},
	}
	const span = 12
	for _, tc := range shapes {
		stepped := newTestNode(t)
		skipped := newTestNode(t)
		tc.set(stepped)
		tc.set(skipped)
		for i := 0; i < span; i++ {
			stepped.Step()
		}
		skipped.SkipTo(skipped.cycle + span)
		if stepped.cycle != skipped.cycle || stepped.stall != skipped.stall {
			t.Errorf("%s: stepped (cycle=%d stall=%d) vs skipped (cycle=%d stall=%d)",
				tc.name, stepped.cycle, stepped.stall, skipped.cycle, skipped.stall)
		}
		if stepped.Stats.Cycles != skipped.Stats.Cycles {
			t.Errorf("%s: stats diverged:\n  stepped: %v\n  skipped: %v",
				tc.name, stepped.Stats.Cycles, skipped.Stats.Cycles)
		}
	}
}

func TestSkipToEdgeCases(t *testing.T) {
	n := newTestNode(t)
	n.cycle = 50
	n.SkipTo(50) // target == cycle: no-op
	n.SkipTo(10) // target in the past: no-op
	if n.cycle != 50 {
		t.Errorf("no-op SkipTo moved the clock to %d", n.cycle)
	}
	n.halted = true
	n.SkipTo(90)
	if n.cycle != 50 {
		t.Errorf("SkipTo advanced a halted node to %d", n.cycle)
	}
	if n.Stats.Cycles[stats.CatIdle] != 0 {
		t.Errorf("halted SkipTo charged %d idle cycles", n.Stats.Cycles[stats.CatIdle])
	}
}

// Bulk instruction execution must never be skipped: a runnable node's
// NextEvent is always cycle+1, so the scheduler cannot legally SkipTo
// past real work. This pins the invariant the fast path relies on.
func TestNextEventNeverSkipsRunnableWork(t *testing.T) {
	n := newTestNode(t)
	n.StartBackground(n.Prog.Entry("main"))
	for !n.halted {
		if ne := n.NextEvent(); ne != n.cycle+1 {
			t.Fatalf("runnable node at cycle %d predicted wake at %d", n.cycle, ne)
		}
		n.Step()
	}
}
