// Compiled execution tier: the contract between the interpreter and
// the ahead-of-time translated handler code in internal/compiled.
//
// The translator (internal/compiled, fed by asm.Translate's CFG
// recovery) emits one specialized Go closure per instruction. At an
// instruction boundary the node first offers the boundary to the
// compiled tier (runCompiled); the closure either executes the
// instruction natively — byte-identically to the interpreter — or
// bails (ok=false) having mutated nothing, in which case the
// interpreter executes that boundary instead. Bail reasons are the
// scheduler-visible operations: the SEND family (network injection and
// back-pressure), SUSPEND/HALT/TRAP, any condition that would fault,
// and RGN writes. Dispatch, fault service, freeze/kill, and checkpoint
// capture never enter runCompiled at all — they happen outside
// execOne — so the interpreter remains the only code that performs
// them (docs/COMPILED.md describes the tier contract).
//
// # Instruction fusion and the segmented charge plan
//
// Beyond removing the interpreter's per-instruction dispatch, the
// compiled tier executes whole straightline runs eagerly: when the
// machine can prove that no scheduler decision, hook, observation, or
// network delivery can land between two instruction boundaries, the
// second instruction executes in the same host call as the first
// ("fusion"). Its cycle charges are NOT applied eagerly: each fused
// instruction contributes one segment (cycles, category) to a charge
// plan that Step and SkipTo consume one simulated cycle at a time, so
// the cumulative per-category statistics equal the reference
// interpreter's at EVERY cycle, and (stall, stallCat) collapse to the
// reference scalar representation as soon as only the final
// instruction's tail remains. Any still-segmented tail is folded into
// StateDigest, so a contract violation surfaces as a digest mismatch
// rather than silent divergence.
//
// Fusion is admitted under two rules, both decided from state that is
// identical in sequential and sharded runs:
//
//   - P1 rule: the node is running a priority-1 thread and the
//     software overflow queue is disabled. The P1-running scheduler
//     case wins every inner boundary regardless of queue arrivals, and
//     only bailing operations can end the thread, so the window may
//     extend to the machine's published fuse limit. Instructions that
//     read delivery-queue occupancy (QLEN) do not fuse under this rule
//     (their value could change mid-window); they execute solo at
//     their real boundary.
//   - Quiet rule: the coordinator certified the network quiet at this
//     cycle's network/processor phase boundary (FuseCtl.QuietCycle).
//     A message enqueued at or after that point cannot complete a word
//     into any delivery queue before fuseQuietWindow cycles elapse, so
//     inner boundaries are admitted within that lookahead of the
//     earliest cycle at which any node could inject: the machine's
//     published send horizon (FuseCtl.SendHorizon), computed from the
//     per-instruction send-distance certificates the static verifier
//     proves (CompiledProgram.SendDist, asm.Certs). Without
//     certificates the horizon degenerates to the current cycle and
//     the rule is the fixed seven-cycle window; a certified send-free
//     image has no horizon at all and the window extends to the full
//     limit.
//
// The machine bounds every window with FuseCtl.Limit: the run loop's
// cap and every cycle hook's event horizon (exclusive), exactly the
// bound the event-horizon fast path uses for bulk skips. Observations
// — digests, run-loop conditions, watchdog scans, checkpoint captures
// — therefore always happen at cycles where the fused state has
// collapsed to the reference representation.
package mdp

import (
	"jmachine/internal/stats"
	"jmachine/internal/word"
)

// InstrFn is one compiled MDP instruction. It executes the instruction
// against ctx (which belongs to n's current level) and reports the
// interpreter-identical cycle cost, statistics category, and next IP.
// off is the instruction's boundary offset from the node's current
// cycle: 0 for the boundary instruction, positive for fused
// instructions whose architectural boundary is cycle+off (CYC reads
// use it). quiet reports whether the network was certified quiet for
// this cycle (the quiet fusion rule); closures reading
// delivery-arrival-dependent state (QLEN) must bail when off > 0 and
// the certification is absent. A closure that returns ok=false must
// have mutated NOTHING: the interpreter (for off == 0) or the node's
// real boundary (for off > 0) will execute the instruction instead.
type InstrFn func(n *Node, ctx *Context, off int32, quiet bool) (cost int32, cat stats.Cat, next int32, ok bool)

// CompiledProgram is a translated program image: one closure per code
// address, nil where the translator declined (instructions that always
// bail compile to nil rather than a closure that always says no).
type CompiledProgram struct {
	Fns []InstrFn
	// SendDist is the per-instruction send-distance certificate
	// (asm.Certs.SendDist): a proven lower bound on the instruction
	// boundaries retired, starting from one about to execute that
	// instruction, before any effect can reach the network — with
	// asm.InfDist meaning no path sends at all. It covers every code
	// address, reachable or not. The machine folds it over every
	// runnable context and every queued activation to publish
	// FuseCtl.SendHorizon; nil disables the horizon (the quiet rule
	// falls back to its fixed window).
	SendDist []int32
}

// FuseCtl is the machine-owned fusion control block, shared by every
// node through a pointer. The machine's coordinator writes it at
// points ordered before the processor phase (the worker-release send
// or the network-phase barrier), so shard workers read stable values.
type FuseCtl struct {
	// Limit is the highest cycle at which a fused (non-boundary)
	// instruction may start: min(run-loop cap, every hook horizon - 1).
	// A limit at or below the current cycle disables fusion, leaving
	// single-instruction compiled execution, which is exact per
	// boundary.
	Limit int64
	// QuietCycle names the cycle for which the coordinator certified
	// Net.Quiet() at the network/processor phase boundary; any other
	// value (stale cycles included) means "not certified".
	QuietCycle int64
	// SendHorizon is the earliest cycle at which any node could inject
	// a message, per the send-distance certificates: the machine folds
	// CompiledProgram.SendDist over every runnable context's IP and
	// every queued activation's handler entry whenever it certifies the
	// network quiet. Deliveries lag injections by fuseQuietWindow, so
	// the quiet rule admits fused boundaries through
	// SendHorizon+fuseQuietWindow-1. NoEvent (nothing can ever send)
	// lifts the cap entirely; values at or below the current cycle
	// leave the fixed quiet window unchanged. Only meaningful when
	// QuietCycle matches the current cycle — the machine refreshes both
	// together.
	SendHorizon int64
}

// fuseQuietWindow is the quiet rule's lookahead: after a
// quiet-certified phase boundary at cycle c, no network activity can
// complete a word into (or otherwise alter) a delivery queue before
// cycle c+7, so fused boundaries are admitted at c+1..c+6. Derivation
// from internal/network, taking the self-send with zero launch latency
// and no checksum as the minimum: quiet counts outbox-queued messages
// (actMsgs), so the earliest new message is enqueued by a SEND in the
// processor phase of cycle e >= c; feedInjection streams one phit per
// cycle starting with the network phase of e+1, so wire phit k enters
// its buffer at e+1+k; stepRouter skips phits that arrived this cycle
// (head.arrived >= cyc), so phit k retires at e+2+k at the earliest;
// and the first phit that completes a word into a delivery queue is
// wire phit 5 (two destination phits, two framing phits, then the odd
// phit of the first payload word — phitRef.payloadWord), which
// therefore retires no earlier than cycle e+7 >= c+7. Launch latency,
// checksum phits, and mesh hops only push delivery later.
const fuseQuietWindow = 7

// fuseSeg is one charge-plan segment: left simulated cycles charged to
// cat. The active plan is fuseSegs[fuseHead:]; invariants while
// active: at least two segments remain, stall equals the sum of the
// remaining lefts, and stallCat mirrors the head segment's category.
type fuseSeg struct {
	left int32
	cat  stats.Cat
}

// SetCompiled installs (or, with nil, removes) the compiled program
// tier on this node. fuse is the machine's shared fusion control
// block; a nil fuse keeps the tier exact-per-boundary with no fusion
// (unit tests drive nodes without a machine this way).
func (n *Node) SetCompiled(cp *CompiledProgram, fuse *FuseCtl) {
	n.compiled = cp
	n.fuse = fuse
	n.fuseSegs = n.fuseSegs[:0]
	n.fuseHead = 0
}

// CompiledActive reports whether the compiled tier is installed.
func (n *Node) CompiledActive() bool { return n.compiled != nil }

// FusedInstructions returns the number of instructions this node
// executed as fused (non-boundary) members of compiled windows — a
// diagnostic for benchmarks and the equivalence suite's vacuity guard.
// It is excluded from StateDigest and checkpoints: fusion depth
// depends on host-side scheduling (run caps, hook horizons) that
// results must not.
func (n *Node) FusedInstructions() int64 { return n.fusedInstrs }

// Fusion-window end reasons, indexing FusionStats.End: why the fusion
// loop stopped extending a window.
const (
	FuseEndLimit       = iota // the window reached FuseCtl.Limit (or its quiet cap)
	FuseEndRange              // next IP left the code segment
	FuseEndNotCompiled        // next instruction has no closure (bail-set member)
	FuseEndBailed             // next instruction's closure bailed (fault path, stale queue read)
	NumFuseEndReasons
)

// FuseEndReasonNames names the FusionStats.End indices, for reports.
var FuseEndReasonNames = [NumFuseEndReasons]string{
	"limit", "ip-range", "not-compiled", "bailed",
}

// FusionStats aggregates the compiled tier's boundary and window
// accounting for one node. Like FusedInstructions, every field is
// excluded from StateDigest and checkpoints: the counts depend on
// host-side scheduling (run caps, hook horizons, shard phasing) that
// simulated results must not.
type FusionStats struct {
	// Boundaries counts instruction boundaries offered to the compiled
	// tier (runCompiled calls).
	Boundaries int64
	// InterpNoClosure and InterpBailed count boundaries handed back to
	// the interpreter: no closure for the IP (bail-set member,
	// unreachable code, IP out of range) vs. a closure that bailed
	// (fault path, send back-pressure state, stale queue read).
	InterpNoClosure int64
	InterpBailed    int64
	// NoLicense counts compiled boundaries executed exactly (no fusion
	// license: limit reached, or neither the P1 nor the quiet rule
	// held).
	NoLicense int64
	// Windows counts fusion windows entered (licensed boundaries);
	// Fused counts instructions executed as non-boundary members, so
	// the mean window length is (Windows+Fused)/Windows.
	Windows int64
	Fused   int64
	// End histograms why each window stopped extending, by FuseEnd*.
	End [NumFuseEndReasons]int64
}

// Add accumulates other into s.
func (s *FusionStats) Add(o FusionStats) {
	s.Boundaries += o.Boundaries
	s.InterpNoClosure += o.InterpNoClosure
	s.InterpBailed += o.InterpBailed
	s.NoLicense += o.NoLicense
	s.Windows += o.Windows
	s.Fused += o.Fused
	for i := range s.End {
		s.End[i] += o.End[i]
	}
}

// FusionStats returns this node's compiled-tier accounting.
func (n *Node) FusionStats() FusionStats {
	s := n.fuseStats
	s.Fused = n.fusedInstrs
	return s
}

// NNR returns the Node Number Register (this node's router address).
// Exported for the compiled tier's register-read closures.
func (n *Node) NNR() word.Word { return n.nnr }

// RegionCat returns the current statistics-region category (CatComp,
// or CatNNR while an RGN write has redirected attribution). Exported
// for the compiled tier.
func (n *Node) RegionCat() stats.Cat { return n.region }

// runCompiled offers the current instruction boundary to the compiled
// tier. It returns false — having changed nothing — when the boundary
// must be interpreted (no closure, or the closure bailed); on success
// it has executed one instruction plus any fusable successors and
// charged the first cycle, with the remainder scheduled as a stall
// (plus a charge plan when more than one instruction fused).
func (n *Node) runCompiled() bool {
	cp := n.compiled
	ctx := &n.ctx[n.cur]
	n.fuseStats.Boundaries++
	if ctx.IP < 0 || int(ctx.IP) >= len(cp.Fns) {
		n.fuseStats.InterpNoClosure++
		return false // interpreter raises the fatal IP diagnostic
	}
	fn := cp.Fns[ctx.IP]
	if fn == nil {
		n.fuseStats.InterpNoClosure++
		return false
	}
	quiet := n.fuse != nil && n.fuse.QuietCycle == n.cycle
	cost, cat, next, ok := fn(n, ctx, 0, quiet)
	if !ok {
		n.fuseStats.InterpBailed++
		return false
	}
	ctx.IP = next
	n.Stats.CountInstr()
	if n.Cfg.CodeInEmem {
		cost += n.Cfg.Timing.EmemFetch
	}

	limit := n.cycle // no machine: exact per-boundary, no fusion
	if n.fuse != nil {
		limit = n.fuse.Limit
	}
	if limit > n.cycle+(1<<30) {
		// Send-free windows reach the run loop's whole horizon; keep the
		// window's cost accumulators (off, stall) within int32.
		limit = n.cycle + (1 << 30)
	}
	p1 := n.cur == LvlP1 && ctx.Running && !n.Cfg.SoftQueue.Enable
	if limit <= n.cycle || !(p1 || quiet) {
		n.fuseStats.NoLicense++
		n.chargeFirst(cost, cat)
		return true
	}
	if !p1 {
		// Quiet rule: no message can complete a word into a delivery
		// queue before fuseQuietWindow cycles after the earliest possible
		// injection. The machine publishes that injection bound as
		// SendHorizon (folding the send-distance certificates over every
		// runnable context and queued activation); without certificates
		// it is at most the current cycle and this is the fixed
		// seven-cycle window. A send-free image publishes NoEvent and the
		// cap disappears — externals are already fenced by Limit.
		base := n.cycle
		if h := n.fuse.SendHorizon; h > base {
			base = h
		}
		if base > n.cycle+(1<<30) {
			base = n.cycle + (1 << 30) // keep the cap arithmetic in range
		}
		if qc := base + fuseQuietWindow - 1; qc < limit {
			limit = qc
		}
	}
	n.fuseStats.Windows++
	endReason := FuseEndLimit

	// Fusion loop: execute successors whose boundaries fall at or
	// before limit, accumulating charge segments. Adjacent segments of
	// the same category coalesce — charging c1 then c2 cycles to one
	// category is cumulative-identical to charging c1+c2 — so a
	// single-category window (the common case) collapses to one segment
	// and from there to the scalar (stall, stallCat) representation,
	// keeping fuseTick/fuseSkip off the hot path entirely.
	fns := cp.Fns
	fetch := int32(0)
	if n.Cfg.CodeInEmem {
		fetch = n.Cfg.Timing.EmemFetch
	}
	segs := append(n.fuseSegs[:0], fuseSeg{left: cost - 1, cat: cat})
	off := cost
	fused := int64(0)
	for n.cycle+int64(off) <= limit {
		ip := ctx.IP
		if ip < 0 || int(ip) >= len(fns) {
			endReason = FuseEndRange
			break
		}
		f2 := fns[ip]
		if f2 == nil {
			endReason = FuseEndNotCompiled
			break
		}
		c2, cat2, nx2, ok2 := f2(n, ctx, off, quiet)
		if !ok2 {
			endReason = FuseEndBailed
			break
		}
		ctx.IP = nx2
		fused++
		c2 += fetch
		if last := &segs[len(segs)-1]; last.cat == cat2 {
			last.left += c2
		} else {
			segs = append(segs, fuseSeg{left: c2, cat: cat2})
		}
		off += c2
	}
	n.fuseStats.End[endReason]++
	n.fuseSegs = segs
	if fused > 0 {
		// Batched: the thread class is loop-invariant (dispatch and
		// suspend both end the window).
		n.Stats.CountInstrN(uint64(fused))
		n.fusedInstrs += fused
	}

	// Charge the boundary cycle and install the plan remainder.
	n.Stats.Add(cat)
	n.stall = off - 1
	n.fuseHead = 0
	if segs[0].left == 0 {
		n.fuseHead = 1 // a one-cycle boundary instruction is fully paid
	}
	if len(segs)-n.fuseHead <= 1 {
		// Zero or one segment left: the scalar (stall, stallCat)
		// representation already covers it — reference-identical state.
		n.stallCat = cat
		if len(segs) > n.fuseHead {
			n.stallCat = segs[n.fuseHead].cat
		}
		n.fuseSegs = segs[:0]
		n.fuseHead = 0
	} else {
		n.stallCat = segs[n.fuseHead].cat
	}
	return true
}

// fuseTick consumes one stall cycle's worth of the charge plan. The
// caller (Step's stall branch) has already charged the cycle to
// stallCat and decremented stall.
func (n *Node) fuseTick() {
	s := &n.fuseSegs[n.fuseHead]
	s.left--
	if s.left > 0 {
		return
	}
	n.fuseHead++
	n.stallCat = n.fuseSegs[n.fuseHead].cat
	if n.fuseHead == len(n.fuseSegs)-1 {
		// Only the final segment remains: collapse to the scalar
		// representation (stall and stallCat now carry it exactly).
		n.fuseSegs = n.fuseSegs[:0]
		n.fuseHead = 0
	}
}

// fuseSkip consumes s stall cycles of the charge plan in bulk,
// charging each segment's cycles to its own category — the SkipTo
// counterpart of fuseTick. s never exceeds the plan's remaining total
// (the caller caps it at the stall counter, which equals it).
func (n *Node) fuseSkip(s int64) {
	for s > 0 && n.fuseHead < len(n.fuseSegs) {
		seg := &n.fuseSegs[n.fuseHead]
		t := int64(seg.left)
		if t > s {
			t = s
		}
		n.Stats.AddN(seg.cat, t)
		seg.left -= int32(t)
		s -= t
		if seg.left == 0 {
			n.fuseHead++
		}
	}
	if n.fuseHead < len(n.fuseSegs) {
		n.stallCat = n.fuseSegs[n.fuseHead].cat
		if n.fuseHead == len(n.fuseSegs)-1 {
			n.fuseSegs = n.fuseSegs[:0]
			n.fuseHead = 0
		}
	} else {
		// Plan fully consumed (s reached the final segment's end): the
		// final category is already in stallCat only if the last
		// segment was entered; set it explicitly to be exact.
		if len(n.fuseSegs) > 0 {
			n.stallCat = n.fuseSegs[len(n.fuseSegs)-1].cat
		}
		n.fuseSegs = n.fuseSegs[:0]
		n.fuseHead = 0
	}
}

// fuseDigest folds any still-segmented charge-plan tail into the node
// digest. At every legal observation cycle the plan has collapsed and
// this contributes nothing, keeping digests comparable with the
// interpreter; a fusion-contract violation therefore shows up as a
// digest mismatch instead of silently passing.
func (n *Node) fuseDigest(h uint64) uint64 {
	for i := n.fuseHead; i < len(n.fuseSegs); i++ {
		h = mix(h, uint64(uint32(n.fuseSegs[i].left))|uint64(n.fuseSegs[i].cat)<<32)
	}
	return h
}
