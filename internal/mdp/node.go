package mdp

import (
	"fmt"
	"math"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/mem"
	"jmachine/internal/network"
	"jmachine/internal/queue"
	"jmachine/internal/stats"
	"jmachine/internal/trace"
	"jmachine/internal/word"
	"jmachine/internal/xlate"
)

// Execution levels. The MDP provides three distinct register sets so
// that priority-1 messages can interrupt priority-0 threads, and a
// background level runs whenever both message queues are empty.
const (
	LvlP0 = iota
	LvlP1
	LvlBG
	NumLevels
)

// Context is one register set: four data registers, four address
// registers, and an instruction pointer.
type Context struct {
	Regs      [8]word.Word
	IP        int32
	Running   bool
	HandlerIP int32 // thread-class key for statistics (-1 = background)
}

// Node is one J-Machine processing node: MDP core plus its memory,
// translation table, message queues, and network attachment.
type Node struct {
	ID      int
	X, Y, Z int
	Cfg     Config
	Mem     *mem.Memory
	Xl      *xlate.Table
	Queues  [2]*queue.Queue
	Net     *network.Network
	Prog    *asm.Program
	Stats   *stats.Node
	// Trace, when non-nil, records dispatches, suspends, sends, and
	// faults for debugging (see package trace).
	Trace *trace.Buffer
	// Watch, when non-nil, receives a copy of every event the node
	// emits, independently of Trace. Unlike Trace it is NOT part of
	// StateDigest, so an attached observer (internal/obs) leaves the
	// digest byte-identical to an unobserved run. The callback runs on
	// the goroutine stepping this node — one per cycle under both
	// engines — and must not touch other nodes' state.
	//jm:digest-exempt observer tap; deliberately outside StateDigest
	Watch func(trace.Event)

	ctx      [NumLevels]Context
	cur      int
	stall    int32
	stallCat stats.Cat
	region   stats.Cat
	// building and pendingLen are indexed [execution level][message
	// priority]: send state belongs to the executing context, so a
	// handler dispatched mid-sequence cannot interleave its words into
	// a preempted thread's half-built message.
	building [NumLevels][2][]word.Word
	// pendingLen is the payload length of a completed message awaiting
	// injection capacity (a retried ending send must not re-append).
	pendingLen [NumLevels][2]int

	// Software overflow queue: relocated priority-0 messages live in an
	// external-memory ring and dispatch from there, oldest first.
	softQ     []softMsg
	softBase  int32
	softWords int
	softAlloc int32 // ring write offset in words
	softUsed  int
	p0Soft    bool // the running P0 thread came from the software queue
	halted    bool
	frozen    bool // chaos fault: clock runs, nothing executes
	killed    bool // chaos fault: frozen forever
	fatal     error
	faultFn   FaultFn
	cycle     int64
	nnr       word.Word

	// Compiled execution tier (see compiled.go): translated closures
	// per code address, the machine's shared fusion control block, and
	// the segmented charge plan of an in-progress fused window.
	compiled *CompiledProgram
	fuse     *FuseCtl
	fuseSegs []fuseSeg
	fuseHead int
	// fusedInstrs counts instructions executed as fused (non-boundary)
	// members of a compiled window. Diagnostic only: not digest-folded
	// and not checkpointed, because fusion depth is a host-side artifact
	// (run-loop cap, hook horizons) that equivalence must not depend on.
	fusedInstrs int64
	// fuseStats is the rest of the compiled tier's boundary/window
	// accounting (see FusionStats); diagnostic only, like fusedInstrs.
	fuseStats FusionStats
	// syncHook, when non-nil, runs before any externally-driven state
	// mutation (freeze, kill, fail, background start) so a scheduler
	// that let the node's clock lag behind the machine can charge the
	// lagged cycles under the node's pre-mutation flags.
	syncHook func()
}

// NoEvent is NextEvent's "never": the node cannot create work on its
// own — only an external push (a network delivery, a chaos thaw, a
// background start) can make it runnable again.
const NoEvent = int64(math.MaxInt64)

// NewNode wires up a node. The program image is shared (code is
// identical on every node, as in the real machine's loaders).
func NewNode(id int, cfg Config, m *mem.Memory, xl *xlate.Table,
	queues [2]*queue.Queue, net *network.Network, prog *asm.Program,
	st *stats.Node) *Node {
	x, y, z := net.NodeCoords(id)
	n := &Node{
		ID: id, X: x, Y: y, Z: z,
		Cfg: cfg.withDefaults(), Mem: m, Xl: xl, Queues: queues,
		Net: net, Prog: prog, Stats: st,
		region: stats.CatComp,
		nnr:    word.Node(x, y, z),
	}
	for l := range n.ctx {
		n.ctx[l].HandlerIP = -1
	}
	if sq := &n.Cfg.SoftQueue; sq.Enable {
		if sq.BufWords == 0 {
			sq.BufWords = 4096
		}
		if sq.ThresholdWords == 0 {
			sq.ThresholdWords = queues[0].Cap() - 32
			if sq.ThresholdWords < 8 {
				sq.ThresholdWords = 8
			}
		}
		if sq.CostPerMsg == 0 {
			sq.CostPerMsg = 20
		}
		n.softWords = sq.BufWords
		n.softBase = int32(m.Size() - sq.BufWords)
	}
	return n
}

// softMsg locates one relocated message in the external-memory ring.
type softMsg struct {
	addr  int32
	words int
}

// SetFaultFn installs the system-software trap entry.
func (n *Node) SetFaultFn(fn FaultFn) { n.faultFn = fn }

// SetSyncHook installs the pre-mutation catch-up callback (see the
// syncHook field). Owned by internal/machine's event-horizon scheduler.
func (n *Node) SetSyncHook(fn func()) { n.syncHook = fn }

// sync runs the catch-up hook ahead of an external mutation.
func (n *Node) sync() {
	if n.syncHook != nil {
		n.syncHook()
	}
}

// NextEvent returns the earliest cycle at which the node can next do
// work that Step must simulate individually: the next cycle if it is
// runnable or dispatchable, the cycle after its stall retires if it is
// mid-operation, and NoEvent when it is idle (or frozen, or halted)
// with nothing pending. Every cycle strictly before the returned one
// is, from this node's perspective, bulk-chargeable via SkipTo.
func (n *Node) NextEvent() int64 {
	if n.halted || n.frozen {
		return NoEvent
	}
	if n.stall > 0 {
		// The final stall cycle (cycle+stall) is stepped individually,
		// not skipped: it retires the counter in live state, so a
		// between-cycles Busy() probe at that cycle reads exactly what
		// the reference loop would.
		return n.cycle + int64(n.stall)
	}
	if n.ctx[LvlP0].Running || n.ctx[LvlP1].Running || n.ctx[LvlBG].Running ||
		n.Queues[0].HeadReady() || n.Queues[1].HeadReady() || len(n.softQ) > 0 {
		return n.cycle + 1
	}
	return NoEvent
}

// SendBound returns the earliest cycle at which this node could inject
// a message into the network, folding the installed send-distance
// certificates (CompiledProgram.SendDist) over every runnable context
// and every buffered activation; NoEvent means it provably cannot
// without external input. The machine publishes the mesh-wide minimum
// as FuseCtl.SendHorizon whenever it certifies the network quiet.
//
// Soundness notes. An instruction boundary can occur no earlier than
// cycle+stall+1 (the stall's final cycle only retires the counter), and
// that floor is invariant under SkipTo: a parked node's lagging clock
// only lowers the bound, never raises it. A queued or relocated
// activation pays at least one dispatch boundary before its handler's
// first instruction. Partially-arrived messages need not be considered
// because the caller only consults the bound when the network is
// certified quiet — nothing is in flight or arriving. Frozen and halted
// nodes cannot execute; every path that changes that (thaw, kill, fail,
// background start, host injection) runs the sync hook or bumps the
// machine's wake sequence, which invalidates the cached horizon.
func (n *Node) SendBound() int64 {
	if n.halted || n.frozen {
		return NoEvent
	}
	cp := n.compiled
	if cp == nil || cp.SendDist == nil {
		// No certificates: the node could send at its next boundary.
		return n.cycle
	}
	dist := cp.SendDist
	floor := n.cycle + int64(n.stall) + 1
	best := NoEvent
	consider := func(ip int32, extra int64) {
		if ip < 0 || int(ip) >= len(dist) {
			// Outside the code segment: execution would halt the node,
			// but take the conservative immediate bound anyway.
			if b := floor + extra; b < best {
				best = b
			}
			return
		}
		if d := dist[ip]; d < asm.InfDist {
			if b := floor + extra + int64(d); b < best {
				best = b
			}
		}
	}
	for l := range n.ctx {
		if n.ctx[l].Running {
			consider(n.ctx[l].IP, 0)
		}
	}
	for pri := 0; pri < 2; pri++ {
		n.Queues[pri].ForEachHeader(func(hdr word.Word) {
			if hdr.Tag() == word.TagMsg {
				consider(hdr.HeaderIP(), 1)
			}
			// Malformed headers halt the node at dispatch: no send.
		})
	}
	for _, sm := range n.softQ {
		if hdr, err := n.Mem.Read(sm.addr); err == nil && hdr.Tag() == word.TagMsg {
			consider(hdr.HeaderIP(), 1)
		}
	}
	return best
}

// SkipTo advances the node's clock to target, charging the skipped
// cycles byte-identically to target-cycle individual Step calls: a
// frozen node charges idle (its stall counter is preserved, exactly as
// Step leaves it), a stalled node retires stall cycles under the
// operation's category, and any remainder is idle. The caller must not
// skip past the node's NextEvent — cycles from there on need real
// stepping.
func (n *Node) SkipTo(target int64) {
	if n.halted || target <= n.cycle {
		return
	}
	d := target - n.cycle
	n.cycle = target
	if n.frozen {
		n.Stats.AddN(stats.CatIdle, d)
		return
	}
	if n.stall > 0 {
		s := int64(n.stall)
		if s > d {
			s = d
		}
		n.stall -= int32(s)
		if len(n.fuseSegs) > 0 {
			n.fuseSkip(s)
		} else {
			n.Stats.AddN(n.stallCat, s)
		}
		d -= s
	}
	if d > 0 {
		n.Stats.AddN(stats.CatIdle, d)
	}
}

// emit routes one trace event to the debug ring and the observer tap.
// Both paths are nil-check cheap when disabled.
func (n *Node) emit(e trace.Event) {
	n.Trace.Add(e)
	//jm:digest-exempt-ok write-only tap: the callback observes the event stream and cannot return state into the node
	if n.Watch != nil {
		n.Watch(e) //jm:digest-exempt-ok same tap, call through the pointer just nil-checked
	}
}

// Cycle returns the node's local cycle count.
func (n *Node) Cycle() int64 { return n.cycle }

// Halted reports whether the node has stopped (HALT or fatal fault).
func (n *Node) Halted() bool { return n.halted }

// Fatal returns the error that halted the node, if any.
func (n *Node) Fatal() error { return n.fatal }

// SetFrozen freezes or thaws the node: a frozen node's clock advances
// but it executes nothing — its router and queues stay alive, so
// traffic keeps arriving while the processor is wedged (the failure
// mode whose consequences the paper's critique discusses). A killed
// node cannot be thawed.
func (n *Node) SetFrozen(v bool) {
	if n.killed {
		return
	}
	n.sync()
	n.frozen = v
}

// Frozen reports whether the node is currently frozen.
func (n *Node) Frozen() bool { return n.frozen }

// Kill freezes the node permanently (chaos node-death fault). Unlike a
// fatal fault the machine keeps running: the wedge must be detected by
// the progress watchdog or survived by the reliable-delivery runtime.
func (n *Node) Kill() {
	n.sync()
	n.frozen = true
	n.killed = true
}

// Killed reports whether the node was killed.
func (n *Node) Killed() bool { return n.killed }

// Fail halts the node with an externally-diagnosed error (used by the
// reliable-delivery runtime to surface delivery failures as node
// faults, which RunWhile's fatal scan then reports).
func (n *Node) Fail(err error) {
	n.sync()
	n.haltFatal(err)
}

// SoftQueueLen returns the number of messages relocated to the software
// overflow ring and not yet dispatched.
func (n *Node) SoftQueueLen() int { return len(n.softQ) }

// Level returns the currently selected execution level.
func (n *Node) Level() int { return n.cur }

// Ctx exposes an execution context to system software.
func (n *Node) Ctx(level int) *Context { return &n.ctx[level] }

// Busy reports whether the node has any work: a runnable context, a
// pending message, or a multi-cycle instruction in progress.
func (n *Node) Busy() bool {
	if n.halted {
		return false
	}
	return n.stall > 0 ||
		n.ctx[LvlP0].Running || n.ctx[LvlP1].Running || n.ctx[LvlBG].Running ||
		n.Queues[0].HeadReady() || n.Queues[1].HeadReady() || len(n.softQ) > 0
}

// StartBackground makes the background context runnable at code address
// ip. The machine boot sequence uses it to seed driver threads.
func (n *Node) StartBackground(ip int32) {
	n.sync()
	n.ctx[LvlBG].IP = ip
	n.ctx[LvlBG].Running = true
	n.ctx[LvlBG].HandlerIP = -1
}

// EndThread terminates the thread at level, consuming its message if it
// was a handler. System software uses it to suspend faulting threads.
func (n *Node) EndThread(level int) {
	n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Suspend,
		A: n.ctx[level].IP, B: int32(level)})
	n.ctx[level].Running = false
	n.PopCurrentMessage(level)
}

// PopCurrentMessage consumes the message that invoked the thread at
// level — from the hardware queue, or from the software overflow ring
// when the thread was dispatched from a relocated message.
func (n *Node) PopCurrentMessage(level int) {
	if level == LvlP0 {
		if n.p0Soft {
			n.p0Soft = false
			n.softQ = n.softQ[1:]
			return
		}
		n.Queues[0].Pop()
	} else if level == LvlP1 {
		n.Queues[1].Pop()
	}
}

// haltFatal stops the node with a diagnostic.
func (n *Node) haltFatal(err error) {
	n.halted = true
	n.fatal = err
}

// Step advances the node one clock cycle.
func (n *Node) Step() {
	if n.halted {
		return
	}
	n.cycle++
	if n.frozen {
		n.Stats.Add(stats.CatIdle)
		return
	}
	if n.stall > 0 {
		n.stall--
		n.Stats.Add(n.stallCat)
		if len(n.fuseSegs) > 0 {
			n.fuseTick()
		}
		return
	}
	// Software overflow handling runs at instruction boundaries, ahead
	// of scheduling: a too-full queue has its head message relocated to
	// external memory.
	if n.Cfg.SoftQueue.Enable && n.relocateOverflow() {
		return
	}
	// Scheduling at an instruction boundary: a runnable priority-1
	// thread wins; otherwise a pending priority-1 message dispatches
	// (interrupting priority 0); then priority 0 — relocated messages
	// first, oldest first — then background.
	switch {
	case n.ctx[LvlP1].Running:
		n.switchTo(LvlP1)
	case n.Queues[1].HeadReady():
		n.dispatch(LvlP1)
		return
	case n.ctx[LvlP0].Running:
		n.switchTo(LvlP0)
	case len(n.softQ) > 0:
		n.dispatchSoft()
		return
	case n.Queues[0].HeadReady():
		n.dispatch(LvlP0)
		return
	case n.ctx[LvlBG].Running:
		n.switchTo(LvlBG)
	default:
		n.Stats.Add(stats.CatIdle)
		return
	}
	n.execOne()
}

// relocateOverflow moves the priority-0 head message into the
// external-memory ring when the hardware queue is above threshold,
// consuming this cycle plus the relocation's cost. Relocation uses
// fixed MaxMsgWords slots; a full ring falls back to hardware
// back-pressure.
func (n *Node) relocateOverflow() bool {
	q := n.Queues[0]
	sq := &n.Cfg.SoftQueue
	if q.Used() < sq.ThresholdWords || !q.HeadReady() {
		return false
	}
	slots := n.softWords / n.Cfg.MaxMsgWords
	if len(n.softQ) >= slots {
		return false // ring full: let the network hold the rest
	}
	words := q.HeadLen()
	if words > n.Cfg.MaxMsgWords {
		return false // oversized frame: leave it to back-pressure
	}
	slot := n.softAlloc
	n.softAlloc = (n.softAlloc + 1) % int32(slots)
	addr := n.softBase + slot*int32(n.Cfg.MaxMsgWords)
	for i := 0; i < words; i++ {
		if err := n.Mem.Write(addr+int32(i), q.WordAt(i)); err != nil {
			n.haltFatal(fmt.Errorf("mdp: node %d overflow buffer write: %w", n.ID, err))
			return true
		}
	}
	q.Pop()
	n.softQ = append(n.softQ, softMsg{addr: addr, words: words})
	n.Stats.OverflowFaults++
	n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Fault,
		A: int32(FaultQueueOverflow), B: int32(words)})
	cost := sq.CostPerMsg + int32(words)*(1+n.Cfg.Timing.EmemStore)
	n.chargeFirst(cost, stats.CatSync)
	return true
}

// dispatchSoft creates a task for the oldest relocated message: A3 is a
// segment descriptor over the external-memory copy, so the handler's
// message reads pay DRAM latency — the expense the paper warns about.
func (n *Node) dispatchSoft() {
	sm := n.softQ[0]
	hdr, err := n.Mem.Read(sm.addr)
	if err != nil || hdr.Tag() != word.TagMsg {
		n.haltFatal(fmt.Errorf("mdp: node %d relocated header corrupt: %v", n.ID, hdr))
		return
	}
	ip := hdr.HeaderIP()
	if ip < 0 || int(ip) >= len(n.Prog.Instrs) {
		n.haltFatal(fmt.Errorf("mdp: node %d relocated dispatch to %d", n.ID, ip))
		return
	}
	ctx := &n.ctx[LvlP0]
	ctx.IP = ip
	ctx.Running = true
	ctx.HandlerIP = ip
	ctx.Regs[isa.A3] = mem.Seg(sm.addr, sm.words)
	n.p0Soft = true
	n.cur = LvlP0
	n.Stats.BeginThread(ip, sm.words)
	n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Dispatch,
		A: ip, B: int32(sm.words)})
	n.chargeFirst(n.Cfg.Timing.Dispatch, stats.CatSync)
}

func (n *Node) switchTo(level int) {
	if n.cur != level {
		n.cur = level
		n.Stats.SetCurrent(n.ctx[level].HandlerIP)
	}
}

// dispatch creates a task for the head message at the queue feeding
// level: the Instruction Pointer is loaded from the message header, A3
// is set to address the message, and execution begins — four cycles.
func (n *Node) dispatch(level int) {
	pri := 0
	if level == LvlP1 {
		pri = 1
	}
	q := n.Queues[pri]
	hdr := q.WordAt(0)
	ip := hdr.HeaderIP()
	if hdr.Tag() != word.TagMsg || ip < 0 || int(ip) >= len(n.Prog.Instrs) {
		n.haltFatal(fmt.Errorf("mdp: node %d dispatched malformed header %s", n.ID, hdr))
		return
	}
	ctx := &n.ctx[level]
	ctx.IP = ip
	ctx.Running = true
	ctx.HandlerIP = ip
	ctx.Regs[isa.A3] = word.New(word.TagMsg, int32(pri))
	n.cur = level
	n.Stats.BeginThread(ip, q.HeadLen())
	n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Dispatch,
		A: ip, B: int32(q.HeadLen())})
	n.chargeFirst(n.Cfg.Timing.Dispatch, stats.CatSync)
}

// chargeFirst charges the first cycle of a multi-cycle operation now and
// schedules the remainder as stall cycles.
func (n *Node) chargeFirst(cost int32, cat stats.Cat) {
	n.Stats.Add(cat)
	n.stall = cost - 1
	n.stallCat = cat
}

// execOne executes the instruction at the current context's IP,
// performing fault service if needed, and charges its cycles.
func (n *Node) execOne() {
	if n.compiled != nil && n.runCompiled() {
		return
	}
	ctx := &n.ctx[n.cur]
	if ctx.IP < 0 || int(ctx.IP) >= len(n.Prog.Instrs) {
		n.haltFatal(fmt.Errorf("mdp: node %d IP %d outside program", n.ID, ctx.IP))
		return
	}
	in := n.Prog.Instrs[ctx.IP]
	res := n.exec(ctx, in)
	if n.halted {
		return
	}
	cost, cat := res.cost, res.cat
	if res.fault != nil {
		f := *res.fault
		f.IP = ctx.IP
		f.Level = n.cur
		f.Instr = in
		cost += n.Cfg.Timing.FaultVector
		switch f.Kind {
		case FaultCfut, FaultFut:
			cat = stats.CatSync
			n.Stats.CfutFaults++
		case FaultXlateMiss:
			cat = stats.CatXlate
			n.Stats.XlateFaults++
		case FaultTrap:
			cat = stats.CatSync
		}
		n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Fault,
			A: int32(f.Kind), B: f.IP})
		if n.faultFn == nil {
			n.haltFatal(f)
			return
		}
		service, act := n.faultFn(n, f)
		cost += service
		switch act {
		case ActRetry:
			// IP unchanged; the instruction re-executes.
		case ActAdvance:
			ctx.IP++
		case ActResume:
			// System software installed a context; leave IP alone. The
			// Resume event marks the restored thread for span
			// reconstruction (internal/obs).
			n.emit(trace.Event{Cycle: n.cycle, Node: int32(n.ID), Kind: trace.Resume,
				A: ctx.IP, B: int32(n.cur)})
		case ActSuspend:
			n.EndThread(n.cur)
		case ActHalt:
			n.haltFatal(f)
			return
		}
	} else {
		ctx.IP = res.nextIP
		n.Stats.CountInstr()
	}
	if n.Cfg.CodeInEmem {
		cost += n.Cfg.Timing.EmemFetch
	}
	n.chargeFirst(cost, cat)
}
