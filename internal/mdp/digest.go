package mdp

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the node's complete architectural state — register
// contexts, send buffers, software queue, fault/halt flags, memory,
// translation table, delivery queues, statistics, and trace — into a
// running 64-bit digest, for the engine equivalence suite.
func (n *Node) StateDigest(h uint64) uint64 {
	for l := range n.ctx {
		c := &n.ctx[l]
		for _, r := range c.Regs {
			h = mix(h, uint64(r))
		}
		var run uint64
		if c.Running {
			run = 1
		}
		h = mix(h, uint64(uint32(c.IP))|uint64(uint32(c.HandlerIP))<<32)
		h = mix(h, run)
	}
	h = mix(h, uint64(n.cur)|uint64(uint32(n.stall))<<32)
	h = mix(h, uint64(n.stallCat)|uint64(n.region)<<8)
	if len(n.fuseSegs) > 0 {
		h = n.fuseDigest(h)
	}
	for l := range n.building {
		for v := 0; v < 2; v++ {
			h = mix(h, uint64(len(n.building[l][v]))|uint64(n.pendingLen[l][v])<<32)
			for _, w := range n.building[l][v] {
				h = mix(h, uint64(w))
			}
		}
	}
	h = mix(h, uint64(len(n.softQ))|uint64(n.softUsed)<<32)
	for _, sm := range n.softQ {
		h = mix(h, uint64(uint32(sm.addr))|uint64(sm.words)<<32)
	}
	h = mix(h, uint64(uint32(n.softAlloc)))
	var flags uint64
	if n.p0Soft {
		flags |= 1
	}
	if n.halted {
		flags |= 2
	}
	if n.frozen {
		flags |= 4
	}
	if n.killed {
		flags |= 8
	}
	if n.fatal != nil {
		flags |= 16
		for _, b := range n.fatal.Error() {
			h = mix(h, uint64(b))
		}
	}
	h = mix(h, flags)
	h = mix(h, uint64(n.cycle))
	h = mix(h, uint64(n.nnr))
	h = n.Mem.StateDigest(h)
	h = n.Xl.StateDigest(h)
	h = n.Queues[0].StateDigest(h)
	h = n.Queues[1].StateDigest(h)
	h = n.Stats.StateDigest(h)
	h = n.Trace.StateDigest(h)
	return h
}
