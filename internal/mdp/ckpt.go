package mdp

import (
	"errors"
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/stats"
	"jmachine/internal/word"
)

// SaveState serializes the node's complete architectural state — the
// same field set StateDigest folds — plus its memory, translation
// table, delivery queues, statistics, and trace ring. Configuration
// (Cfg, Prog, coordinates) is rebuilt by the restoring process and
// only cross-checked here.
func (n *Node) SaveState(e *wire.Encoder) {
	for l := range n.ctx {
		c := &n.ctx[l]
		for _, r := range c.Regs {
			e.U64(uint64(r))
		}
		e.I32(c.IP)
		e.Bool(c.Running)
		e.I32(c.HandlerIP)
	}
	e.Int(n.cur)
	e.I32(n.stall)
	e.U8(uint8(n.stallCat))
	e.U8(uint8(n.region))
	for l := range n.building {
		for v := 0; v < 2; v++ {
			e.Int(len(n.building[l][v]))
			for _, w := range n.building[l][v] {
				e.U64(uint64(w))
			}
			e.Int(n.pendingLen[l][v])
		}
	}
	e.Int(len(n.softQ))
	for _, sm := range n.softQ {
		e.I32(sm.addr)
		e.Int(sm.words)
	}
	e.I32(n.softAlloc)
	e.Int(n.softUsed)
	e.Bool(n.p0Soft)
	e.Bool(n.halted)
	e.Bool(n.frozen)
	e.Bool(n.killed)
	if n.fatal != nil {
		e.Bool(true)
		e.String(n.fatal.Error())
	} else {
		e.Bool(false)
	}
	e.I64(n.cycle)
	e.U64(uint64(n.nnr))

	n.Mem.SaveState(e)
	n.Xl.SaveState(e)
	n.Queues[0].SaveState(e)
	n.Queues[1].SaveState(e)
	n.Stats.SaveState(e)
	n.Trace.SaveState(e)
}

// RestoreState rebuilds the node in place. A fatal error is restored
// as a fresh error with the identical message — the digest folds only
// the message text, and every consumer treats the error as opaque.
func (n *Node) RestoreState(d *wire.Decoder) error {
	for l := range n.ctx {
		c := &n.ctx[l]
		for r := range c.Regs {
			c.Regs[r] = word.Word(d.U64())
		}
		c.IP = d.I32()
		c.Running = d.Bool()
		c.HandlerIP = d.I32()
	}
	n.cur = d.Int()
	if n.cur < 0 || n.cur >= NumLevels {
		return fmt.Errorf("mdp: checkpoint level %d out of range", n.cur)
	}
	n.stall = d.I32()
	n.stallCat = stats.Cat(d.U8())
	n.region = stats.Cat(d.U8())
	for l := range n.building {
		for v := 0; v < 2; v++ {
			cnt := d.Count(8)
			buf := n.building[l][v][:0]
			for i := 0; i < cnt; i++ {
				buf = append(buf, word.Word(d.U64()))
			}
			n.building[l][v] = buf
			n.pendingLen[l][v] = d.Int()
		}
	}
	sq := d.Count(12)
	n.softQ = n.softQ[:0]
	for i := 0; i < sq; i++ {
		n.softQ = append(n.softQ, softMsg{addr: d.I32(), words: d.Int()})
	}
	n.softAlloc = d.I32()
	n.softUsed = d.Int()
	n.p0Soft = d.Bool()
	n.halted = d.Bool()
	n.frozen = d.Bool()
	n.killed = d.Bool()
	n.fatal = nil
	if d.Bool() {
		n.fatal = errors.New(d.String())
	}
	n.cycle = d.I64()
	// A checkpoint is always captured at a cycle where any fused
	// window's charge plan has collapsed to the scalar (stall,
	// stallCat) pair serialized above, so the plan itself is never on
	// the wire; clear any live remnant in the node being overwritten.
	n.fuseSegs = n.fuseSegs[:0]
	n.fuseHead = 0
	if nnr := word.Word(d.U64()); nnr != n.nnr {
		return fmt.Errorf("mdp: checkpoint node address %x != configured %x (topology mismatch)", nnr, n.nnr)
	}
	if err := d.Err(); err != nil {
		return err
	}

	if err := n.Mem.RestoreState(d); err != nil {
		return fmt.Errorf("node %d: %w", n.ID, err)
	}
	if err := n.Xl.RestoreState(d); err != nil {
		return fmt.Errorf("node %d: %w", n.ID, err)
	}
	for pri := 0; pri < 2; pri++ {
		if err := n.Queues[pri].RestoreState(d); err != nil {
			return fmt.Errorf("node %d pri %d: %w", n.ID, pri, err)
		}
	}
	if err := n.Stats.RestoreState(d); err != nil {
		return fmt.Errorf("node %d: %w", n.ID, err)
	}
	if err := n.Trace.RestoreState(d); err != nil {
		return fmt.Errorf("node %d: %w", n.ID, err)
	}
	return d.Err()
}
