package mdp_test

import (
	"strings"
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/stats"
	"jmachine/internal/word"
)

// run1 builds a single-node machine, runs the program's "main" in the
// background context until HALT, and returns the machine.
func run1(t *testing.T, build func(b *asm.Builder)) *machine.Machine {
	t.Helper()
	b := asm.NewBuilder()
	b.Label("main")
	build(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100000); err != nil {
		t.Fatal(err)
	}
	return m
}

// cyclesFor measures the cycle cost of the built code (excluding the
// trailing HALT's single cycle).
func cyclesFor(t *testing.T, build func(b *asm.Builder)) int64 {
	t.Helper()
	m := run1(t, func(b *asm.Builder) {
		build(b)
		b.Halt()
	})
	return m.Cycle() - 1
}

func TestRegisterOpTiming(t *testing.T) {
	// "Most instructions can operate in one cycle if both operands are
	// in registers."
	got := cyclesFor(t, func(b *asm.Builder) {
		b.MoveI(isa.R0, 5).
			MoveI(isa.R1, 7).
			Add(isa.R0, asm.R(isa.R1)).
			Sub(isa.R0, asm.Imm(2)).
			Xor(isa.R0, asm.R(isa.R0))
	})
	if got != 5 {
		t.Errorf("5 register instructions took %d cycles", got)
	}
}

func TestInternalMemoryOperandTiming(t *testing.T) {
	// "...and in two cycles if one operand is in internal memory."
	got := cyclesFor(t, func(b *asm.Builder) {
		b.MoveI(isa.A0, 100). // 1
					MoveI(isa.R0, 3).               // 1
					St(isa.R0, asm.Mem(isa.A0, 0)). // 1 (store to SRAM)
					Add(isa.R0, asm.Mem(isa.A0, 0)) // 2 (SRAM operand)
	})
	if got != 5 {
		t.Errorf("sequence took %d cycles, want 5", got)
	}
}

func TestExternalMemoryTiming(t *testing.T) {
	// External DRAM: loads 8 cycles, stores 6 (the remote-read server's
	// 8-cycles-per-word external figure and the 6-cycle relocation).
	emem := int32(5000) // beyond the 4K SRAM
	got := cyclesFor(t, func(b *asm.Builder) {
		b.Move(isa.A0, asm.Imm(emem)). // 1
						MoveI(isa.R0, 3).               // 1
						St(isa.R0, asm.Mem(isa.A0, 0)). // 6
						Add(isa.R0, asm.Mem(isa.A0, 0)) // 8
	})
	if got != 16 {
		t.Errorf("sequence took %d cycles, want 16", got)
	}
}

func TestBranchTiming(t *testing.T) {
	// Taken branches cost 3 cycles (pipeline refill); untaken 1.
	got := cyclesFor(t, func(b *asm.Builder) {
		b.MoveI(isa.R0, 0). // 1
					Bt(isa.R0, "skip"). // 1 (not taken)
					MoveI(isa.R1, 1).   // 1
					Label("skip").
					Br("end").        // 3 (taken)
					MoveI(isa.R2, 9). // skipped
					Label("end")
	})
	if got != 6 {
		t.Errorf("branch sequence took %d cycles, want 6", got)
	}
}

func TestPeakRateIsOneInstructionPerCycle(t *testing.T) {
	// Peak execution rate: 12.5 MIPS at 12.5 MHz = 1 instruction/cycle.
	const n = 100
	m := run1(t, func(b *asm.Builder) {
		for i := 0; i < n; i++ {
			b.MoveI(isa.R0, int32(i&7))
		}
		b.Halt()
	})
	if got := m.Cycle() - 1; got != n {
		t.Errorf("%d reg instructions took %d cycles", n, got)
	}
	// HALT stops the node before being counted as retired.
	if instrs := m.Stats.Instrs(); instrs != n {
		t.Errorf("retired %d instructions, want %d", instrs, n)
	}
}

func TestExternalCodePenalty(t *testing.T) {
	// With code and data in external memory the machine runs at fewer
	// than 2 MIPS — i.e. well over 6 cycles per instruction on average
	// when data is external too; pure register code pays the fetch
	// penalty alone.
	b := asm.NewBuilder()
	b.Label("main")
	for i := 0; i < 50; i++ {
		b.MoveI(isa.R0, 1)
	}
	b.Halt()
	p := b.MustAssemble()
	cfg := machine.Grid(1, 1, 1)
	cfg.MDP.CodeInEmem = true
	m := machine.MustNew(cfg, p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 100000); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(m.Cycle()) / 51
	if perInstr < 3.5 || perInstr > 5 {
		t.Errorf("external-code rate = %.2f cycles/instr", perInstr)
	}
}

func TestSubroutineLinkage(t *testing.T) {
	m := run1(t, func(b *asm.Builder) {
		b.MoveI(isa.R0, 10).
			Bsr(isa.R3, "double").
			Bsr(isa.R3, "double").
			Halt().
			Label("double").
			Add(isa.R0, asm.R(isa.R0)).
			Jmp(asm.R(isa.R3))
	})
	if got := m.Nodes[0].Ctx(mdp.LvlBG).Regs[isa.R0].Data(); got != 40 {
		t.Errorf("R0 = %d, want 40", got)
	}
}

func TestTagInstructions(t *testing.T) {
	m := run1(t, func(b *asm.Builder) {
		b.MoveI(isa.R0, 77).
			Wtag(isa.R0, asm.Imm(int32(word.TagSym))).
			Rtag(isa.R1, asm.R(isa.R0)).
			Iscf(isa.R2, asm.R(isa.R0)).
			Halt()
	})
	regs := m.Nodes[0].Ctx(mdp.LvlBG).Regs
	if regs[isa.R0].Tag() != word.TagSym || regs[isa.R0].Data() != 77 {
		t.Errorf("WTAG result = %v", regs[isa.R0])
	}
	if regs[isa.R1].Data() != int32(word.TagSym) {
		t.Errorf("RTAG = %v", regs[isa.R1])
	}
	if regs[isa.R2].Truthy() {
		t.Errorf("ISCF on sym = %v", regs[isa.R2])
	}
}

func TestDispatchRunsHandler(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("idle").Nop().Br("idle")
	b.Label("handler").
		Move(isa.R0, asm.Mem(isa.A3, 1)). // message argument
		MoveI(isa.A0, 64).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Suspend()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	n := m.Nodes[0]
	// Host-inject a message.
	q := n.Queues[0]
	q.Push(word.MsgHeader(p.Entry("handler"), 2))
	q.Push(word.Int(123))
	m.StepN(30)
	if got, _ := n.Mem.Read(64); got.Data() != 123 {
		t.Errorf("handler did not store argument: %v", got)
	}
	if q.HeadReady() || q.Used() != 0 {
		t.Error("SUSPEND did not consume the message")
	}
	if n.Stats.Threads != 1 {
		t.Errorf("threads dispatched = %d", n.Stats.Threads)
	}
	h := n.Stats.Handler(p.Entry("handler"))
	if h == nil || h.Invocations != 1 || h.Instrs != 4 {
		t.Errorf("handler stats = %+v", h)
	}
}

func TestDispatchCostFourCycles(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("handler").Suspend()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	n := m.Nodes[0]
	n.Queues[0].Push(word.MsgHeader(p.Entry("handler"), 1))
	m.StepN(5) // 4 dispatch + 1 SUSPEND
	if n.Stats.Cycles[stats.CatSync] != 5 {
		t.Errorf("sync cycles = %d, want 5", n.Stats.Cycles[stats.CatSync])
	}
	if n.Busy() {
		t.Error("node still busy after handler finished")
	}
}

func TestPriority1Preempts(t *testing.T) {
	b := asm.NewBuilder()
	// A long-running P0 handler; the P1 handler stamps memory.
	b.Label("p0").MoveI(isa.R0, 200).
		Label("p0.loop").Sub(isa.R0, asm.Imm(1)).Bt(isa.R0, "p0.loop").
		MoveI(isa.A0, 65).MoveI(isa.R1, 1).St(isa.R1, asm.Mem(isa.A0, 0)).
		Suspend()
	b.Label("p1").
		MoveI(isa.A0, 64).MoveI(isa.R1, 1).St(isa.R1, asm.Mem(isa.A0, 0)).
		Suspend()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	n := m.Nodes[0]
	n.Queues[0].Push(word.MsgHeader(p.Entry("p0"), 1))
	m.StepN(20) // P0 thread is mid-loop
	n.Queues[1].Push(word.MsgHeader(p.Entry("p1"), 1))
	m.StepN(20)
	w64, _ := n.Mem.Read(64)
	w65, _ := n.Mem.Read(65)
	if !w64.Truthy() {
		t.Error("P1 handler did not run while P0 was active")
	}
	if w65.Truthy() {
		t.Error("P0 finished before P1 ran: no preemption observed")
	}
	if err := m.RunWhile(func(*machine.Machine) bool {
		w, _ := n.Mem.Read(65)
		return !w.Truthy()
	}, 2000); err != nil {
		t.Fatalf("P0 thread never resumed: %v", err)
	}
}

func TestCfutReadFaultsFatallyWithoutRuntime(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 64).
		Move(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].Mem.FillCfut(64, 1)
	m.Nodes[0].StartBackground(p.Entry("main"))
	err := m.RunUntilHalt(0, 1000)
	if err == nil || !strings.Contains(err.Error(), "cfut") {
		t.Fatalf("expected cfut fatal fault, got %v", err)
	}
}

func TestFutCopyableButNotConsumable(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 64).
		Move(isa.R0, asm.Mem(isa.A0, 0)). // copying a fut is legal
		Add(isa.R1, asm.R(isa.R0)).       // consuming it faults
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].Mem.Write(64, word.Fut(5))
	m.Nodes[0].StartBackground(p.Entry("main"))
	err := m.RunUntilHalt(0, 1000)
	if err == nil || !strings.Contains(err.Error(), "fut") {
		t.Fatalf("expected fut fatal fault, got %v", err)
	}
}

func TestSegmentBoundsFault(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Move(isa.R0, asm.Mem(isa.A0, 3)). // beyond the 2-word segment
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	n := m.Nodes[0]
	ctx := n.Ctx(mdp.LvlBG)
	ctx.Regs[isa.A0] = word.New(word.TagAddr, 2<<20|100) // seg base 100 len 2
	n.StartBackground(p.Entry("main"))
	err := m.RunUntilHalt(0, 1000)
	if err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("expected bounds fault, got %v", err)
	}
}

func TestSendEndToEnd(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 64).
		Send(asm.Mem(isa.A0, 0)). // dest word preloaded
		MoveHdr(isa.R1, "sink", 3).
		Send(asm.R(isa.R1)).
		MoveI(isa.R0, 41).
		Send2E(isa.R0, asm.Imm(42)).
		Halt()
	b.Label("sink").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Move(isa.R1, asm.Mem(isa.A3, 2)).
		Add(isa.R0, asm.R(isa.R1)).
		MoveI(isa.A0, 70).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Suspend()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(2, 1, 1), p)
	m.Nodes[0].Mem.Write(64, word.Node(1, 0, 0))
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.RunQuiescent(1000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[1].Mem.Read(70)
	if got.Data() != 83 {
		t.Errorf("remote sum = %v, want 83", got)
	}
	if m.Stats.Nodes[0].MsgsSent[0] != 1 || m.Stats.Nodes[0].WordsSent[0] != 3 {
		t.Errorf("send stats = %+v", m.Stats.Nodes[0].MsgsSent)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Send(asm.R(isa.NNR)). // to self
		MoveHdr(isa.R1, "sink", 2).
		Send2E(isa.R1, asm.Imm(7)).
		Suspend() // background ends; handler will run
	b.Label("sink").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		MoveI(isa.A0, 64).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(64)
	if got.Data() != 7 {
		t.Errorf("self-send payload = %v", got)
	}
}

func TestSendFaultBackpressure(t *testing.T) {
	// A tiny outbox forces send faults: the sender stalls but the
	// messages all eventually leave.
	b := asm.NewBuilder()
	b.Label("main").MoveI(isa.R2, 8).
		Label("loop").
		Send(asm.R(isa.NNR)).
		MoveHdr(isa.R1, "sink", 6).
		Send(asm.R(isa.R1)).
		Send(asm.R(isa.ZERO)).
		Send(asm.R(isa.ZERO)).
		Send(asm.R(isa.ZERO)).
		Send2E(isa.R0, asm.R(isa.ZERO)).
		Sub(isa.R2, asm.Imm(1)).
		Bt(isa.R2, "loop").
		Halt()
	b.Label("sink").Suspend()
	p := b.MustAssemble()
	cfg := machine.Grid(1, 1, 1)
	cfg.Net.OutboxWords = 8
	m := machine.MustNew(cfg, p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 10000); err != nil {
		t.Fatal(err)
	}
	if err := m.RunQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	st := m.Stats.Nodes[0]
	if st.MsgsSent[0] != 8 {
		t.Errorf("sent %d messages, want 8", st.MsgsSent[0])
	}
	if st.SendFaults == 0 {
		t.Error("expected send faults with an 8-word outbox")
	}
}

func TestMalformedMessageFaults(t *testing.T) {
	// Message without a destination-node word faults at SENDE.
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 5).
		SendE(asm.R(isa.R0)). // 1-word "message": no dest, no header
		Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	m.Nodes[0].StartBackground(p.Entry("main"))
	err := m.RunUntilHalt(0, 1000)
	if err == nil || !strings.Contains(err.Error(), "bad-tag") {
		t.Fatalf("expected bad-tag fault, got %v", err)
	}
}

func TestSpecialRegisters(t *testing.T) {
	m := run1(t, func(b *asm.Builder) {
		b.Move(isa.R0, asm.R(isa.NNR)).
			Move(isa.R1, asm.R(isa.PRI)).
			Move(isa.R2, asm.R(isa.ZERO)).
			Halt()
	})
	regs := m.Nodes[0].Ctx(mdp.LvlBG).Regs
	if regs[isa.R0].Tag() != word.TagNode {
		t.Errorf("NNR tag = %v", regs[isa.R0].Tag())
	}
	if regs[isa.R1].Data() != 2 { // background level
		t.Errorf("PRI = %v", regs[isa.R1])
	}
	if regs[isa.R2].Data() != 0 {
		t.Errorf("ZERO = %v", regs[isa.R2])
	}
}

func TestRegionMarkerAttribution(t *testing.T) {
	m := run1(t, func(b *asm.Builder) {
		b.MoveI(isa.RGN, int32(stats.CatNNR)).
			MoveI(isa.R0, 1).
			MoveI(isa.R1, 2).
			MoveI(isa.RGN, 0).
			MoveI(isa.R2, 3).
			Halt()
	})
	st := m.Stats.Nodes[0]
	// The two MOVEs inside the region plus the closing RGN write are
	// attributed to NNR.
	if st.Cycles[stats.CatNNR] != 3 {
		t.Errorf("NNR cycles = %d, want 3", st.Cycles[stats.CatNNR])
	}
}

func TestIdleAttribution(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").Halt()
	p := b.MustAssemble()
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	// Never started: every cycle is idle.
	m.StepN(50)
	if got := m.Stats.Nodes[0].Cycles[stats.CatIdle]; got != 50 {
		t.Errorf("idle cycles = %d", got)
	}
}

func TestSoftQueueOverflowRelocatesAndReplays(t *testing.T) {
	// A burst of messages beyond the hardware queue's threshold is
	// relocated to external memory and replayed in order, ahead of
	// newer hardware-queue arrivals.
	b := asm.NewBuilder()
	b.Label("idle").Nop().Br("idle")
	b.Label("handler").
		Move(isa.R0, asm.Mem(isa.A3, 1)). // sequence number
		MoveI(isa.A0, 200).
		Move(isa.R1, asm.Mem(isa.A0, 0)). // write cursor
		MoveI(isa.A1, 210).
		Add(isa.A1, asm.R(isa.R1)).
		St(isa.R0, asm.Mem(isa.A1, 0)). // record arrival order
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A0, 0)).
		Suspend()
	p := b.MustAssemble()
	cfg := machine.Grid(1, 1, 1)
	cfg.QueueCap = [2]int{16, 64} // tiny: 4 four-word messages
	cfg.MDP.SoftQueue = mdp.SoftQueueConfig{Enable: true, ThresholdWords: 8}
	m := machine.MustNew(cfg, p)
	n := m.Nodes[0]
	// Host-push 3 messages back to back; the third pushes occupancy to
	// the threshold, forcing relocations before dispatch catches up.
	const msgs = 4
	for i := 0; i < msgs; i++ {
		n.Queues[0].Push(word.MsgHeader(p.Entry("handler"), 4))
		n.Queues[0].Push(word.Int(int32(i)))
		n.Queues[0].Push(word.Int(0))
		n.Queues[0].Push(word.Int(0))
	}
	m.StepN(600)
	if n.Stats.OverflowFaults == 0 {
		t.Fatal("no overflow relocations happened")
	}
	cursor, _ := n.Mem.Read(200)
	if cursor.Data() != msgs {
		t.Fatalf("handled %d of %d messages", cursor.Data(), msgs)
	}
	for i := 0; i < msgs; i++ {
		got, _ := n.Mem.Read(210 + int32(i))
		if got.Data() != int32(i) {
			t.Errorf("arrival %d = %d: replay out of order", i, got.Data())
		}
	}
	if n.Busy() {
		t.Error("node still busy after replay")
	}
}

func TestSoftQueueRingWraparound(t *testing.T) {
	// The overflow ring has softWords/MaxMsgWords fixed slots and a
	// modular write cursor. Repeated overflow bursts push the cursor
	// through several full revolutions; relocation and dispatch order
	// must survive the wrap (a stale slot reused too early would replay
	// an old message and break the sequence).
	b := asm.NewBuilder()
	b.Label("idle").Nop().Br("idle")
	b.Label("handler").
		Move(isa.R0, asm.Mem(isa.A3, 1)). // sequence number
		MoveI(isa.A0, 200).
		Move(isa.R1, asm.Mem(isa.A0, 0)). // write cursor
		MoveI(isa.A1, 210).
		Add(isa.A1, asm.R(isa.R1)).
		St(isa.R0, asm.Mem(isa.A1, 0)). // record arrival order
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A0, 0)).
		Suspend()
	p := b.MustAssemble()
	cfg := machine.Grid(1, 1, 1)
	cfg.QueueCap = [2]int{16, 64}
	cfg.MDP.MaxMsgWords = 8
	// BufWords 32 / MaxMsgWords 8 = 4 ring slots.
	cfg.MDP.SoftQueue = mdp.SoftQueueConfig{Enable: true, ThresholdWords: 8, BufWords: 32}
	m := machine.MustNew(cfg, p)
	n := m.Nodes[0]
	const slots = 4
	const bursts, per = 4, 4
	seq := 0
	for burst := 0; burst < bursts; burst++ {
		// Each burst fills the hardware queue (16 words = 4 messages),
		// forcing ~3 relocations before dispatch catches up.
		for i := 0; i < per; i++ {
			n.Queues[0].Push(word.MsgHeader(p.Entry("handler"), 4))
			n.Queues[0].Push(word.Int(int32(seq)))
			n.Queues[0].Push(word.Int(0))
			n.Queues[0].Push(word.Int(0))
			seq++
		}
		m.StepN(800) // drain completely between bursts
	}
	if n.Stats.OverflowFaults <= slots {
		t.Fatalf("only %d relocations: the %d-slot ring never wrapped",
			n.Stats.OverflowFaults, slots)
	}
	cursor, _ := n.Mem.Read(200)
	if int(cursor.Data()) != seq {
		t.Fatalf("handled %d of %d messages", cursor.Data(), seq)
	}
	for i := 0; i < seq; i++ {
		got, _ := n.Mem.Read(210 + int32(i))
		if int(got.Data()) != i {
			t.Errorf("arrival %d = %d: replay out of order across the wrap", i, got.Data())
		}
	}
	if n.Busy() {
		t.Error("node still busy after replay")
	}
}
