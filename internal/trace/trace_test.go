package trace

import (
	"strings"
	"testing"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Add(Event{Cycle: 1})
	if b.Len() != 0 || b.Dropped() != 0 || b.Events() != nil {
		t.Error("nil buffer misbehaved")
	}
}

func TestRingRetainsNewest(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{Cycle: int64(i), Kind: Send})
	}
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Errorf("event %d cycle = %d", i, e.Cycle)
		}
	}
	if b.Dropped() != 6 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestFilterAndDump(t *testing.T) {
	b := New(16)
	b.Add(Event{Cycle: 1, Kind: Dispatch, A: 7})
	b.Add(Event{Cycle: 2, Kind: Send, A: 3, B: 2})
	b.Add(Event{Cycle: 3, Kind: Dispatch, A: 9})
	if got := b.Filter(Dispatch); len(got) != 2 || got[1].A != 9 {
		t.Errorf("filter = %v", got)
	}
	d := b.Dump()
	if !strings.Contains(d, "dispatch") || !strings.Contains(d, "send") {
		t.Errorf("dump = %q", d)
	}
}

func TestKindNames(t *testing.T) {
	if Dispatch.String() != "dispatch" || Fault.String() != "fault" {
		t.Error("kind names wrong")
	}
}
