package trace

import (
	"strings"
	"testing"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Add(Event{Cycle: 1})
	if b.Len() != 0 || b.Dropped() != 0 || b.Events() != nil {
		t.Error("nil buffer misbehaved")
	}
}

func TestRingRetainsNewest(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{Cycle: int64(i), Kind: Send})
	}
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Errorf("event %d cycle = %d", i, e.Cycle)
		}
	}
	if b.Dropped() != 6 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

// TestWrapBoundaryCycleOrder covers the overwrite boundary explicitly:
// at exactly capacity, one past it, and after the write index has
// lapped the ring multiple times, the events read back out must be the
// newest window in strict cycle order with no seam at the wrap point.
func TestWrapBoundaryCycleOrder(t *testing.T) {
	const capEvents = 5
	for _, total := range []int{capEvents - 1, capEvents, capEvents + 1, capEvents + 2, 3*capEvents + 2} {
		b := New(capEvents)
		for i := 0; i < total; i++ {
			b.Add(Event{Cycle: int64(i), Kind: Mark, A: int32(i)})
		}
		want := total
		if want > capEvents {
			want = capEvents
		}
		ev := b.Events()
		if len(ev) != want || b.Len() != want {
			t.Fatalf("total=%d: retained %d events (Len %d), want %d", total, len(ev), b.Len(), want)
		}
		first := int64(total - want)
		for i, e := range ev {
			if e.Cycle != first+int64(i) {
				t.Errorf("total=%d: event %d cycle = %d, want %d (wrap seam out of order)",
					total, i, e.Cycle, first+int64(i))
			}
			if i > 0 && e.Cycle <= ev[i-1].Cycle {
				t.Errorf("total=%d: cycle order broken at %d: %d after %d",
					total, i, e.Cycle, ev[i-1].Cycle)
			}
		}
		wantDropped := uint64(0)
		if total > capEvents {
			wantDropped = uint64(total - capEvents)
		}
		if b.Dropped() != wantDropped {
			t.Errorf("total=%d: dropped = %d, want %d", total, b.Dropped(), wantDropped)
		}
	}
}

// TestExactCapacity pins the retention window to the requested
// capacity: the ring must wrap at exactly capEvents, not at whatever
// larger capacity the allocator's size-class rounding hands back.
func TestExactCapacity(t *testing.T) {
	for _, capEvents := range []int{1, 3, 5, 100} {
		b := New(capEvents)
		if b.Cap() != capEvents {
			t.Fatalf("New(%d).Cap() = %d", capEvents, b.Cap())
		}
		for i := 0; i < capEvents; i++ {
			b.Add(Event{Cycle: int64(i)})
		}
		if b.Dropped() != 0 {
			t.Errorf("cap=%d: dropped %d before the ring was full", capEvents, b.Dropped())
		}
		b.Add(Event{Cycle: int64(capEvents)})
		if b.Dropped() != 1 {
			t.Errorf("cap=%d: event %d did not overwrite (dropped=%d)",
				capEvents, capEvents, b.Dropped())
		}
		if ev := b.Events(); ev[0].Cycle != 1 || ev[len(ev)-1].Cycle != int64(capEvents) {
			t.Errorf("cap=%d: window [%d..%d], want [1..%d]",
				capEvents, ev[0].Cycle, ev[len(ev)-1].Cycle, capEvents)
		}
	}
}

// TestTailAcrossWrap reads a tail that straddles the overwrite boundary.
func TestTailAcrossWrap(t *testing.T) {
	b := New(4)
	for i := 0; i < 6; i++ {
		b.Add(Event{Cycle: int64(i)})
	}
	tail := b.Tail(3)
	if len(tail) != 3 || tail[0].Cycle != 3 || tail[2].Cycle != 5 {
		t.Errorf("tail = %v", tail)
	}
}

func TestFilterAndDump(t *testing.T) {
	b := New(16)
	b.Add(Event{Cycle: 1, Kind: Dispatch, A: 7})
	b.Add(Event{Cycle: 2, Kind: Send, A: 3, B: 2})
	b.Add(Event{Cycle: 3, Kind: Dispatch, A: 9})
	if got := b.Filter(Dispatch); len(got) != 2 || got[1].A != 9 {
		t.Errorf("filter = %v", got)
	}
	d := b.Dump()
	if !strings.Contains(d, "dispatch") || !strings.Contains(d, "send") {
		t.Errorf("dump = %q", d)
	}
}

func TestKindNames(t *testing.T) {
	if Dispatch.String() != "dispatch" || Fault.String() != "fault" {
		t.Error("kind names wrong")
	}
}
