package trace

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the retained events (oldest first) and drop count
// into a running 64-bit digest, for the engine equivalence suite.
// Nil-safe like every Buffer method.
func (b *Buffer) StateDigest(h uint64) uint64 {
	if b == nil {
		return mix(h, 0)
	}
	h = mix(h, uint64(b.count)|b.dropped<<32)
	for i := 0; i < b.count; i++ {
		e := b.At(i)
		h = mix(h, uint64(e.Cycle))
		h = mix(h, uint64(uint32(e.Node))|uint64(e.Kind)<<32)
		h = mix(h, uint64(uint32(e.A))|uint64(uint32(e.B))<<32)
	}
	return h
}
