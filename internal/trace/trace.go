// Package trace records machine-level events — dispatches, suspends,
// sends, faults — into per-node ring buffers for debugging simulated
// MDP programs. Tracing is off unless a buffer is attached, and the
// hot paths pay only a nil check.
//
// The real J-Machine had no such facility; the paper's critique wishes
// it had ("including statistics collection hardware in the machine
// design would have greatly simplified ... the measurement collection
// process").
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

const (
	// Dispatch: a task was created for a message (A = handler IP,
	// B = message words).
	Dispatch Kind = iota
	// Resume: a suspended thread was restored (A = IP).
	Resume
	// Suspend: the running thread ended (A = IP reached).
	Suspend
	// Send: a message was injected (A = destination node, B = words).
	Send
	// Fault: a processor fault was serviced (A = fault kind, B = IP).
	Fault
	// Halt: the node stopped (A = IP).
	Halt
	// Mark: an application-defined annotation.
	Mark
)

var kindNames = [...]string{
	"dispatch", "resume", "suspend", "send", "fault", "halt", "mark",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one trace record.
type Event struct {
	Cycle int64
	Node  int32
	Kind  Kind
	A, B  int32
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] n%03d %-8s a=%d b=%d", e.Cycle, e.Node, e.Kind, e.A, e.B)
}

// Buffer is a fixed-capacity event ring. A nil *Buffer is a valid,
// disabled sink: all methods are nil-safe.
//
// The ring is tracked with explicit indices — next is the slot of the
// oldest retained event once the ring is full, count the number
// retained — rather than len/cap tricks: a slice allocated with a
// requested capacity can receive more from the allocator's size-class
// rounding, which would silently move the wrap boundary and make the
// retention window (and Dropped accounting) depend on the runtime
// instead of the requested capacity.
//
// Concurrency: each Buffer is single-writer — events are added only by
// the owning node's Step, which runs on one goroutine per cycle under
// both the sequential loop and the parallel engine's node phase.
// Readers (dumps, digests) run on the coordinator between cycles.
type Buffer struct {
	events    []Event // ring storage; nil until the first event lands
	capEvents int     // exact ring capacity
	next      int     // oldest retained slot once full; 0 while filling
	count     int     // retained events
	dropped   uint64
}

// New returns a buffer holding the most recent cap events. The ring
// storage is allocated on the first Add: on large meshes most nodes in
// a traced run never log anything, and an untouched ring costs nothing.
func New(capEvents int) *Buffer {
	if capEvents <= 0 {
		capEvents = 4096
	}
	return &Buffer{capEvents: capEvents}
}

// Add records an event (nil-safe no-op when the buffer is nil). Once
// the ring is full each new event overwrites the oldest.
func (b *Buffer) Add(e Event) {
	if b == nil {
		return
	}
	if b.events == nil {
		b.events = make([]Event, b.capEvents)
	}
	if b.count < b.capEvents {
		// Filling: next stays 0, so slot count is the write position.
		b.events[(b.next+b.count)%b.capEvents] = e
		b.count++
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % b.capEvents
	b.dropped++
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return b.count
}

// Cap returns the ring capacity in events.
func (b *Buffer) Cap() int {
	if b == nil {
		return 0
	}
	return b.capEvents
}

// At returns retained event i, where 0 is the oldest. It must only be
// called with 0 <= i < Len().
func (b *Buffer) At(i int) Event {
	return b.events[(b.next+i)%b.capEvents]
}

// Dropped returns how many older events the ring overwrote.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil || b.count == 0 {
		return nil
	}
	out := make([]Event, 0, b.count)
	out = append(out, b.events[b.next:b.next+min(b.count, b.capEvents-b.next)]...)
	if rest := b.count - (b.capEvents - b.next); rest > 0 {
		out = append(out, b.events[:rest]...)
	}
	return out
}

// Tail returns the most recent k retained events, oldest first (all of
// them when fewer than k are retained). Nil-safe.
func (b *Buffer) Tail(k int) []Event {
	evs := b.Events()
	if k < 0 {
		k = 0
	}
	if len(evs) > k {
		evs = evs[len(evs)-k:]
	}
	return evs
}

// Filter returns the retained events of one kind, oldest first.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders every retained event, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	if d := b.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "(%d earlier events dropped)\n", d)
	}
	return sb.String()
}
