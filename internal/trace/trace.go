// Package trace records machine-level events — dispatches, suspends,
// sends, faults — into per-node ring buffers for debugging simulated
// MDP programs. Tracing is off unless a buffer is attached, and the
// hot paths pay only a nil check.
//
// The real J-Machine had no such facility; the paper's critique wishes
// it had ("including statistics collection hardware in the machine
// design would have greatly simplified ... the measurement collection
// process").
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

const (
	// Dispatch: a task was created for a message (A = handler IP,
	// B = message words).
	Dispatch Kind = iota
	// Resume: a suspended thread was restored (A = IP).
	Resume
	// Suspend: the running thread ended (A = IP reached).
	Suspend
	// Send: a message was injected (A = destination node, B = words).
	Send
	// Fault: a processor fault was serviced (A = fault kind, B = IP).
	Fault
	// Halt: the node stopped (A = IP).
	Halt
	// Mark: an application-defined annotation.
	Mark
)

var kindNames = [...]string{
	"dispatch", "resume", "suspend", "send", "fault", "halt", "mark",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one trace record.
type Event struct {
	Cycle int64
	Node  int32
	Kind  Kind
	A, B  int32
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] n%03d %-8s a=%d b=%d", e.Cycle, e.Node, e.Kind, e.A, e.B)
}

// Buffer is a fixed-capacity event ring. A nil *Buffer is a valid,
// disabled sink: all methods are nil-safe.
//
// Concurrency: each Buffer is single-writer — events are added only by
// the owning node's Step, which runs on one goroutine per cycle under
// both the sequential loop and the parallel engine's node phase.
// Readers (dumps, digests) run on the coordinator between cycles.
type Buffer struct {
	events  []Event
	next    int
	wrapped bool
	dropped uint64
}

// New returns a buffer holding the most recent cap events.
func New(capEvents int) *Buffer {
	if capEvents <= 0 {
		capEvents = 4096
	}
	return &Buffer{events: make([]Event, 0, capEvents)}
}

// Add records an event (nil-safe no-op when the buffer is nil).
func (b *Buffer) Add(e Event) {
	if b == nil {
		return
	}
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % cap(b.events)
	b.wrapped = true
	b.dropped++
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Dropped returns how many older events the ring overwrote.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	if !b.wrapped {
		out := make([]Event, len(b.events))
		copy(out, b.events)
		return out
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Tail returns the most recent k retained events, oldest first (all of
// them when fewer than k are retained). Nil-safe.
func (b *Buffer) Tail(k int) []Event {
	evs := b.Events()
	if k < 0 {
		k = 0
	}
	if len(evs) > k {
		evs = evs[len(evs)-k:]
	}
	return evs
}

// Filter returns the retained events of one kind, oldest first.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders every retained event, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	if d := b.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "(%d earlier events dropped)\n", d)
	}
	return sb.String()
}
