package trace

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
)

// SaveState serializes the ring: capacity (verified on restore), the
// retained events in logical oldest-first order, and the drop count.
// Nil-safe like every Buffer method — a node without tracing writes an
// absent marker.
func (b *Buffer) SaveState(e *wire.Encoder) {
	if b == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(b.capEvents)
	e.Int(b.count)
	e.U64(b.dropped)
	for i := 0; i < b.count; i++ {
		ev := b.At(i)
		e.I64(ev.Cycle)
		e.I32(ev.Node)
		e.U8(uint8(ev.Kind))
		e.I32(ev.A)
		e.I32(ev.B)
	}
}

// RestoreState rebuilds the ring with the retained events rebased to
// slot zero; the digest and all readers address events logically from
// the oldest, so the physical rotation is unobservable. The receiver
// may be nil only if the checkpoint was taken without tracing.
func (b *Buffer) RestoreState(d *wire.Decoder) error {
	present := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if !present {
		if b != nil {
			return fmt.Errorf("trace: machine has tracing attached but checkpoint has none")
		}
		return nil
	}
	if b == nil {
		return fmt.Errorf("trace: checkpoint has tracing but machine has none attached")
	}
	if c := d.Int(); c != b.capEvents {
		return fmt.Errorf("trace: checkpoint ring capacity %d != configured %d", c, b.capEvents)
	}
	count := d.Int()
	if count < 0 || count > b.capEvents {
		return fmt.Errorf("trace: checkpoint count %d out of range", count)
	}
	b.next = 0
	b.count = count
	b.dropped = d.U64()
	if count == 0 {
		b.events = nil // restore an untouched ring to its lazy state
		return d.Err()
	}
	if b.events == nil {
		b.events = make([]Event, b.capEvents)
	}
	for i := 0; i < count; i++ {
		b.events[i] = Event{
			Cycle: d.I64(),
			Node:  d.I32(),
			Kind:  Kind(d.U8()),
			A:     d.I32(),
			B:     d.I32(),
		}
	}
	for i := count; i < b.capEvents; i++ {
		b.events[i] = Event{}
	}
	return d.Err()
}
