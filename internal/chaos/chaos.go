// Package chaos is a deterministic, seeded fault injector for the
// simulated J-Machine. A Campaign schedules faults — link stalls,
// in-flight message corruption, node freezes and kills, queue-capacity
// squeezes — at exact cycles; attached to a machine, the Injector
// applies them through the network's and nodes' fault hooks. The same
// campaign against the same machine configuration reproduces the same
// run byte-for-byte, so a failure found by a random campaign is a
// regression test by construction.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"jmachine/internal/machine"
	"jmachine/internal/network"
)

// Kind classifies a scheduled fault.
type Kind uint8

const (
	// LinkStall blocks one router output port (Port; network.PortLocal
	// stalls delivery and injection) for Duration cycles.
	LinkStall Kind = iota
	// CorruptMsg arms a transient bit flip at a node's network
	// interface: the next message the node injects carries Word/Mask
	// in-flight corruption.
	CorruptMsg
	// NodeFreeze stops a node's processor for Duration cycles; its
	// router and queues stay alive (clock or thermal stall).
	NodeFreeze
	// NodeKill stops a node's processor permanently.
	NodeKill
	// QueueSqueeze limits a delivery queue (priority Pri) to CapWords
	// words for Duration cycles (partial buffer failure).
	QueueSqueeze
)

var kindNames = [...]string{"stall", "corrupt", "freeze", "kill", "squeeze"}

// String names the kind (the campaign text format's verb).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one scheduled fault.
type Event struct {
	Kind     Kind
	Cycle    int64 // machine cycle at which the fault begins
	Node     int
	Port     int    // LinkStall: router output port (0-6)
	Duration int64  // LinkStall/NodeFreeze/QueueSqueeze: cycles active
	Word     int    // CorruptMsg: payload word index to flip
	Mask     uint32 // CorruptMsg: XOR mask (0 means the default single-bit flip)
	CapWords int    // QueueSqueeze: squeezed capacity in words
	Pri      int    // QueueSqueeze: which priority queue
}

// DefaultMask is the corruption applied when an Event leaves Mask zero:
// a single-bit flip in the data field.
const DefaultMask = 0x4

// String renders the event in the campaign text format.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d:node=%d", e.Kind, e.Cycle, e.Node)
	switch e.Kind {
	case LinkStall:
		fmt.Fprintf(&b, ",port=%d,dur=%d", e.Port, e.Duration)
	case CorruptMsg:
		fmt.Fprintf(&b, ",word=%d", e.Word)
		if e.Mask != 0 {
			fmt.Fprintf(&b, ",mask=%d", e.Mask)
		}
	case NodeFreeze:
		fmt.Fprintf(&b, ",dur=%d", e.Duration)
	case QueueSqueeze:
		fmt.Fprintf(&b, ",cap=%d,dur=%d", e.CapWords, e.Duration)
		if e.Pri != 0 {
			fmt.Fprintf(&b, ",pri=%d", e.Pri)
		}
	}
	return b.String()
}

// Campaign is a named, seeded schedule of faults.
type Campaign struct {
	Name   string
	Seed   uint64 // generator seed, recorded for reproduction
	Events []Event
}

// splitmix64 is the deterministic generator behind RandomCampaign: tiny,
// well-mixed, and identical on every platform.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (s *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// RandomCampaign generates n faults over the first maxCycle cycles of a
// nodes-node machine. The same (seed, nodes, maxCycle, n) always yields
// the same campaign.
func RandomCampaign(seed uint64, nodes int, maxCycle int64, n int) Campaign {
	g := splitmix64(seed)
	c := Campaign{Name: fmt.Sprintf("random-%d", seed), Seed: seed}
	for i := 0; i < n; i++ {
		e := Event{
			Cycle: 1 + int64(g.next()%uint64(maxCycle)),
			Node:  g.intn(nodes),
		}
		switch g.intn(5) {
		case 0:
			e.Kind = LinkStall
			e.Port = g.intn(network.NumPorts)
			e.Duration = 16 + int64(g.intn(512))
		case 1:
			e.Kind = CorruptMsg
			e.Word = g.intn(4)
			e.Mask = uint32(1) << g.intn(30)
		case 2:
			e.Kind = NodeFreeze
			e.Duration = 64 + int64(g.intn(4096))
		case 3:
			// Kills are rare in random campaigns: a dead node usually
			// makes completion impossible, which is a different study
			// than degradation under transient faults. Downgrade to a
			// long freeze.
			e.Kind = NodeFreeze
			e.Duration = 4096 + int64(g.intn(8192))
		case 4:
			e.Kind = QueueSqueeze
			e.CapWords = 8 + g.intn(56)
			e.Duration = 256 + int64(g.intn(4096))
			e.Pri = g.intn(2)
		}
		c.Events = append(c.Events, e)
	}
	sortEvents(c.Events)
	return c
}

// sortEvents orders a schedule by cycle, breaking ties by node then
// kind, so application order is deterministic regardless of input
// order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Cycle != evs[j].Cycle {
			return evs[i].Cycle < evs[j].Cycle
		}
		if evs[i].Node != evs[j].Node {
			return evs[i].Node < evs[j].Node
		}
		return evs[i].Kind < evs[j].Kind
	})
}

// activeStall is one in-force link stall.
type activeStall struct {
	node, port int
	until      int64 // first cycle the link runs again
}

// expiry is a scheduled fault end: a thaw or a squeeze restore.
type expiry struct {
	cycle int64
	node  int
	pri   int // QueueSqueeze only
	kind  Kind
}

// Injector applies a campaign to a machine.
type Injector struct {
	m        *machine.Machine
	campaign Campaign
	events   []Event // sorted copy
	next     int     // index of the next unapplied event

	stalls   []activeStall
	expiries []expiry
	// armed holds each node's queued corruption, FIFO, indexed by node
	// id. A slice rather than a map: under the parallel engine each
	// shard consumes its own nodes' entries concurrently during the
	// node phase, which is safe for disjoint slice elements but would
	// race on a shared map header. Arming happens in tick, on the
	// coordinator, before the phases start.
	armed [][]Event

	// Applied counters, by kind.
	applied  [5]uint64
	corrupts uint64 // corruptions actually consumed by an injection (atomic)
}

// Attach installs the campaign's hooks on a machine. It must be called
// before the run starts; events whose cycle has already passed are
// skipped. The injector claims the network's stall hook (SetStallFn).
func Attach(m *machine.Machine, c Campaign) *Injector {
	inj := &Injector{
		m:        m,
		campaign: c,
		events:   append([]Event(nil), c.Events...),
		armed:    make([][]Event, len(m.Nodes)),
	}
	sortEvents(inj.events)
	m.AddCycleHook(inj.tick, inj.horizon) //jm:horizon next scheduled campaign event bounds tick's next effect
	m.Net.SetStallFn(inj.stall)
	m.Net.AddInjectFn(inj.onInject)
	return inj
}

// horizon declares tick's event horizon to the machine's fast path:
// the earliest cycle at which a scheduled fault fires or an active
// fault expires. Link-stall pruning is excluded deliberately — it is
// unobservable garbage collection (stall consults s.until itself), and
// the stall hook is only reachable while the network is stepping,
// which the machine never skips. Always > now between cycles: tick has
// already applied everything due at the current cycle.
func (inj *Injector) horizon(now int64) int64 {
	t := machine.NoEvent
	if inj.next < len(inj.events) {
		if c := inj.events[inj.next].Cycle; c < t {
			t = c
		}
	}
	for _, ex := range inj.expiries {
		if ex.cycle < t {
			t = ex.cycle
		}
	}
	return t
}

// tick applies events scheduled at or before this cycle and expires
// finished faults.
func (inj *Injector) tick(cycle int64) {
	for inj.next < len(inj.events) && inj.events[inj.next].Cycle <= cycle {
		inj.apply(inj.events[inj.next], cycle)
		inj.next++
	}
	if len(inj.stalls) > 0 {
		kept := inj.stalls[:0]
		for _, s := range inj.stalls {
			if cycle < s.until {
				kept = append(kept, s)
			}
		}
		inj.stalls = kept
	}
	if len(inj.expiries) == 0 {
		return
	}
	kept := inj.expiries[:0]
	for _, ex := range inj.expiries {
		if ex.cycle > cycle {
			kept = append(kept, ex)
			continue
		}
		switch ex.kind {
		case NodeFreeze:
			inj.m.Nodes[ex.node].SetFrozen(false)
		case QueueSqueeze:
			inj.m.Nodes[ex.node].Queues[ex.pri].SetLimit(0)
		}
	}
	inj.expiries = kept
}

// apply puts one event into force.
func (inj *Injector) apply(e Event, cycle int64) {
	if e.Node < 0 || e.Node >= len(inj.m.Nodes) {
		return
	}
	inj.applied[e.Kind]++
	switch e.Kind {
	case LinkStall:
		inj.stalls = append(inj.stalls, activeStall{
			node: e.Node, port: e.Port, until: cycle + e.Duration,
		})
	case CorruptMsg:
		inj.armed[e.Node] = append(inj.armed[e.Node], e)
	case NodeFreeze:
		inj.m.Nodes[e.Node].SetFrozen(true)
		inj.expiries = append(inj.expiries, expiry{
			cycle: cycle + e.Duration, node: e.Node, kind: NodeFreeze,
		})
	case NodeKill:
		inj.m.Nodes[e.Node].Kill()
	case QueueSqueeze:
		pri := e.Pri & 1
		inj.m.Nodes[e.Node].Queues[pri].SetLimit(e.CapWords)
		inj.expiries = append(inj.expiries, expiry{
			cycle: cycle + e.Duration, node: e.Node, pri: pri, kind: QueueSqueeze,
		})
	}
}

// stall is the network's link-fault oracle.
func (inj *Injector) stall(node, port int, cycle int64) bool {
	for i := range inj.stalls {
		s := &inj.stalls[i]
		if s.node == node && s.port == port && cycle < s.until {
			return true
		}
	}
	return false
}

// onInject consumes armed corruption: the node's next injected message
// (control traffic excluded) carries the scheduled bit flip.
func (inj *Injector) onInject(node int, m *network.Message, cycle int64) {
	if node < 0 || node >= len(inj.armed) {
		return
	}
	q := inj.armed[node]
	if len(q) == 0 || m.Ctl {
		return
	}
	e := q[0]
	inj.armed[node] = q[1:]
	mask := e.Mask
	if mask == 0 {
		mask = DefaultMask
	}
	w := e.Word
	if w >= len(m.Words) {
		w = len(m.Words) - 1
	}
	if w < 0 {
		w = 0
	}
	m.CorruptWord = int32(w)
	m.CorruptMask = mask
	atomic.AddUint64(&inj.corrupts, 1)
}

// Applied returns how many events of kind k have been put into force.
func (inj *Injector) Applied(k Kind) uint64 { return inj.applied[k] }

// CorruptionsConsumed returns how many armed corruptions were actually
// stamped onto a message.
func (inj *Injector) CorruptionsConsumed() uint64 {
	return atomic.LoadUint64(&inj.corrupts)
}

// ArmedRemaining returns corruptions armed but not yet consumed (the
// target node never sent again).
func (inj *Injector) ArmedRemaining() int {
	n := 0
	for _, q := range inj.armed {
		n += len(q)
	}
	return n
}

// Report renders a deterministic one-line-per-kind summary.
func (inj *Injector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q seed=%d events=%d applied=%d\n",
		inj.campaign.Name, inj.campaign.Seed, len(inj.events), inj.next)
	for k := LinkStall; k <= QueueSqueeze; k++ {
		if inj.applied[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %d\n", k, inj.applied[k])
	}
	fmt.Fprintf(&b, "  corruptions consumed=%d armed-remaining=%d\n",
		inj.corrupts, inj.ArmedRemaining())
	return b.String()
}
