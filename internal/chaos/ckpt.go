package chaos

import (
	"fmt"
	"sync/atomic"

	"jmachine/internal/ckpt/wire"
)

// Checkpoint section for the injector. The campaign itself is not
// serialized — the restoring process reconstructs it (same seed, same
// generator) and the codec verifies a fingerprint of the schedule; what
// is serialized is the cursor and every in-force fault: active link
// stalls, scheduled thaws and squeeze restores, armed corruption, and
// the applied counters. Frozen/killed processors and squeezed queue
// limits live in the machine section.

const chaosFormat = 1

// fingerprint folds the sorted schedule's rendered events, so a
// checkpoint cannot be restored under a different campaign.
func (inj *Injector) fingerprint() uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	mix(uint64(len(inj.events)))
	for _, e := range inj.events {
		for _, b := range []byte(e.String()) {
			mix(uint64(b))
		}
		mix(0xff)
	}
	return h
}

func saveEvent(e *wire.Encoder, ev Event) {
	e.U8(uint8(ev.Kind))
	e.I64(ev.Cycle)
	e.Int(ev.Node)
	e.Int(ev.Port)
	e.I64(ev.Duration)
	e.Int(ev.Word)
	e.U32(ev.Mask)
	e.Int(ev.CapWords)
	e.Int(ev.Pri)
}

func restoreEvent(d *wire.Decoder) Event {
	return Event{
		Kind:     Kind(d.U8()),
		Cycle:    d.I64(),
		Node:     d.Int(),
		Port:     d.Int(),
		Duration: d.I64(),
		Word:     d.Int(),
		Mask:     d.U32(),
		CapWords: d.Int(),
		Pri:      d.Int(),
	}
}

// CkptName names the injector's checkpoint section.
func (inj *Injector) CkptName() string { return "chaos" }

// CkptSave serializes the injector's dynamic state.
func (inj *Injector) CkptSave(e *wire.Encoder) {
	e.U32(chaosFormat)
	e.U64(inj.fingerprint())
	e.Int(inj.next)
	e.Int(len(inj.stalls))
	for _, s := range inj.stalls {
		e.Int(s.node)
		e.Int(s.port)
		e.I64(s.until)
	}
	e.Int(len(inj.expiries))
	for _, ex := range inj.expiries {
		e.I64(ex.cycle)
		e.Int(ex.node)
		e.Int(ex.pri)
		e.U8(uint8(ex.kind))
	}
	for _, q := range inj.armed {
		e.Int(len(q))
		for _, ev := range q {
			saveEvent(e, ev)
		}
	}
	for _, v := range inj.applied {
		e.U64(v)
	}
	e.U64(atomic.LoadUint64(&inj.corrupts))
}

// CkptRestore rebuilds the injector's dynamic state; the attached
// campaign must render to the same schedule the checkpoint was taken
// under.
func (inj *Injector) CkptRestore(d *wire.Decoder) error {
	if f := d.U32(); f != chaosFormat {
		return fmt.Errorf("chaos: checkpoint section format %d, want %d", f, chaosFormat)
	}
	if fp := d.U64(); fp != inj.fingerprint() {
		return fmt.Errorf("chaos: checkpoint campaign fingerprint %016x != attached campaign %016x", fp, inj.fingerprint())
	}
	inj.next = d.Int()
	if inj.next < 0 || inj.next > len(inj.events) {
		return fmt.Errorf("chaos: checkpoint cursor %d out of range (%d events)", inj.next, len(inj.events))
	}
	nStalls := d.Count(16)
	inj.stalls = inj.stalls[:0]
	for i := 0; i < nStalls; i++ {
		inj.stalls = append(inj.stalls, activeStall{node: d.Int(), port: d.Int(), until: d.I64()})
	}
	nExp := d.Count(17)
	inj.expiries = inj.expiries[:0]
	for i := 0; i < nExp; i++ {
		inj.expiries = append(inj.expiries, expiry{cycle: d.I64(), node: d.Int(), pri: d.Int(), kind: Kind(d.U8())})
	}
	for node := range inj.armed {
		nq := d.Count(41)
		q := inj.armed[node][:0]
		for i := 0; i < nq; i++ {
			q = append(q, restoreEvent(d))
		}
		inj.armed[node] = q
	}
	for k := range inj.applied {
		inj.applied[k] = d.U64()
	}
	atomic.StoreUint64(&inj.corrupts, d.U64())
	return d.Err()
}
