package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseCampaign reads the semicolon-separated campaign text format:
//
//	seed=7;name=demo;freeze@1000:node=5,dur=4000;corrupt@500:node=0,word=1,mask=16
//
// Each fault clause is kind@cycle:key=value,... with kinds stall,
// corrupt, freeze, kill, squeeze (see Event.String for the keys each
// kind takes). Whitespace around clauses is ignored. Campaign.String
// round-trips through ParseCampaign.
func ParseCampaign(s string) (Campaign, error) {
	var c Campaign
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.HasPrefix(clause, "seed="):
			v, err := strconv.ParseUint(clause[len("seed="):], 10, 64)
			if err != nil {
				return c, fmt.Errorf("chaos: bad seed %q", clause)
			}
			c.Seed = v
		case strings.HasPrefix(clause, "name="):
			c.Name = clause[len("name="):]
		default:
			e, err := parseEvent(clause)
			if err != nil {
				return c, err
			}
			c.Events = append(c.Events, e)
		}
	}
	sortEvents(c.Events)
	return c, nil
}

// parseEvent reads one kind@cycle:key=value,... clause.
func parseEvent(s string) (Event, error) {
	var e Event
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return e, fmt.Errorf("chaos: clause %q lacks @cycle", s)
	}
	kind, ok := kindByName(s[:at])
	if !ok {
		return e, fmt.Errorf("chaos: unknown fault kind %q", s[:at])
	}
	e.Kind = kind
	rest := s[at+1:]
	colon := strings.IndexByte(rest, ':')
	cycStr := rest
	args := ""
	if colon >= 0 {
		cycStr, args = rest[:colon], rest[colon+1:]
	}
	cyc, err := strconv.ParseInt(cycStr, 10, 64)
	if err != nil {
		return e, fmt.Errorf("chaos: bad cycle in %q", s)
	}
	e.Cycle = cyc
	for _, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return e, fmt.Errorf("chaos: bad argument %q in %q", kv, s)
		}
		key := kv[:eq]
		v, err := strconv.ParseInt(kv[eq+1:], 10, 64)
		if err != nil {
			return e, fmt.Errorf("chaos: bad value in %q", kv)
		}
		switch key {
		case "node":
			e.Node = int(v)
		case "port":
			e.Port = int(v)
		case "dur":
			e.Duration = v
		case "word":
			e.Word = int(v)
		case "mask":
			e.Mask = uint32(v)
		case "cap":
			e.CapWords = int(v)
		case "pri":
			e.Pri = int(v)
		default:
			return e, fmt.Errorf("chaos: unknown key %q in %q", key, s)
		}
	}
	return e, nil
}

// kindByName resolves a campaign verb.
func kindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// String renders the campaign in the text format ParseCampaign reads.
func (c Campaign) String() string {
	var parts []string
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	if c.Name != "" {
		parts = append(parts, "name="+c.Name)
	}
	for _, e := range c.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}
