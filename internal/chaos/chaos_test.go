package chaos

import (
	"reflect"
	"testing"
)

func TestParseCampaignRoundTrip(t *testing.T) {
	src := "name=acceptance;seed=7;" +
		"corrupt@1:node=0,word=1,mask=16;" +
		"stall@500:node=3,port=2,dur=200;" +
		"freeze@1000:node=5,dur=4000;" +
		"squeeze@2000:node=2,cap=8,pri=0,dur=1000;" +
		"kill@9000:node=6"
	c, err := ParseCampaign(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "acceptance" || c.Seed != 7 || len(c.Events) != 5 {
		t.Fatalf("parsed %q seed=%d events=%d", c.Name, c.Seed, len(c.Events))
	}
	// String() must re-parse to the identical campaign.
	c2, err := ParseCampaign(c.String())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, c.String())
	}
	if !reflect.DeepEqual(c, c2) {
		t.Errorf("round trip changed the campaign:\n%#v\n%#v", c, c2)
	}
}

func TestParseCampaignErrors(t *testing.T) {
	bad := []string{
		"explode@5:node=1",      // unknown kind
		"freeze@x:node=1",       // bad cycle
		"freeze@5:node=1,dur=y", // bad value
		"freeze@5:wat",          // malformed pair
		"seed=notanumber",
	}
	for _, s := range bad {
		if _, err := ParseCampaign(s); err == nil {
			t.Errorf("ParseCampaign(%q) accepted", s)
		}
	}
}

func TestRandomCampaignDeterministic(t *testing.T) {
	a := RandomCampaign(42, 8, 50_000, 6)
	b := RandomCampaign(42, 8, 50_000, 6)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different campaigns")
	}
	c := RandomCampaign(43, 8, 50_000, 6)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical campaigns")
	}
	// Generated campaigns must survive the text format.
	parsed, err := ParseCampaign(a.String())
	if err != nil {
		t.Fatalf("generated campaign does not parse: %v\n%s", err, a.String())
	}
	if !reflect.DeepEqual(a, parsed) {
		t.Error("generated campaign changed across text round trip")
	}
}

func TestRandomCampaignEventsInHorizon(t *testing.T) {
	c := RandomCampaign(9, 27, 10_000, 12)
	if len(c.Events) != 12 {
		t.Fatalf("got %d events, want 12", len(c.Events))
	}
	last := int64(-1)
	for _, e := range c.Events {
		if e.Cycle < 0 || e.Cycle > 10_000 {
			t.Errorf("event outside horizon: %s", e)
		}
		if e.Node < 0 || e.Node >= 27 {
			t.Errorf("event outside machine: %s", e)
		}
		if e.Cycle < last {
			t.Errorf("events not sorted by cycle: %s after %d", e, last)
		}
		last = e.Cycle
	}
}
