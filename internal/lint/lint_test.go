package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"jmachine/internal/lint"
)

// wantRe matches the expectation markers in fixture sources:
//
//	for k := range m { // want JML003
//	x := f() /* want JML001 JML002 */
var wantRe = regexp.MustCompile(`want ((?:JML\d{3})(?:\s+JML\d{3})*)`)

// fixtures maps each fixture module under testdata/src to the suite.
// Every fixture runs ALL analyzers, so a fixture also proves the other
// five analyzers stay silent on its code.
var fixtures = []string{"jml001", "jml002", "jml003", "jml004", "jml005", "jml006"}

func TestFixtures(t *testing.T) {
	for _, name := range fixtures {
		name := name
		t.Run(name, func(t *testing.T) { runFixture(t, name) })
	}
}

func runFixture(t *testing.T, name string) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.LoadDirs(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range lint.Run(prog, lint.Analyzers()) {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		got = append(got, rel+":"+strconv.Itoa(d.Pos.Line)+": "+d.Code)
	}
	want := expectations(t, dir)
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fixture %s: diagnostics do not match the // want markers\ngot:\n  %s\nwant:\n  %s",
			name, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// expectations collects every "want CODE..." marker under dir as
// "relfile:line: CODE" strings, one per code.
func expectations(t *testing.T, dir string) []string {
	var want []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, code := range strings.Fields(m[1]) {
				want = append(want, rel+":"+strconv.Itoa(i+1)+": "+code)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRepoClean asserts the real tree lints clean: every violation is
// either fixed or carries its suppression annotation with a rationale.
// This is the same check CI runs via cmd/jm-lint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo typecheck is not short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.LoadDirs(filepath.Join(root, "internal") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run(prog, lint.Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestAnalyzerRoster pins the suite: each diagnostic code is
// implemented exactly once and resolvable by name and by code.
func TestAnalyzerRoster(t *testing.T) {
	wantCodes := []string{"JML001", "JML002", "JML003", "JML004", "JML005", "JML006"}
	as := lint.Analyzers()
	if len(as) != len(wantCodes) {
		t.Fatalf("got %d analyzers, want %d", len(as), len(wantCodes))
	}
	for i, a := range as {
		if a.Code != wantCodes[i] {
			t.Errorf("analyzer %d: code %s, want %s", i, a.Code, wantCodes[i])
		}
		if lint.AnalyzerByName(a.Name) != a || lint.AnalyzerByName(a.Code) != a {
			t.Errorf("analyzer %s not resolvable by name/code", a.Name)
		}
	}
}
