package lint

import (
	"go/ast"
	"go/types"
)

// funcNode is one function body in the call graph: a declared function
// or method, or a function literal.
type funcNode struct {
	pkg  *Package
	obj  *types.Func   // nil for literals
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	name string        // "(*Machine).Step", "StateDigest", "func literal"

	callees []*funcNode

	// hookArg marks a function passed to a hook-registration call
	// (AddCycleFn, AddDeliverFn, SetSyncHook, ...): it will run once
	// per cycle or per replayed event on the determinism-critical path.
	hookArg bool
}

// body returns the function's statement block (nil for bodiless decls).
func (fn *funcNode) body() *ast.BlockStmt {
	if fn.lit != nil {
		return fn.lit.Body
	}
	if fn.decl != nil {
		return fn.decl.Body
	}
	return nil
}

// pos returns a representative node for reporting.
func (fn *funcNode) node() ast.Node {
	if fn.lit != nil {
		return fn.lit
	}
	return fn.decl
}

// hookRegistrars are the functions whose func-typed arguments become
// per-cycle hooks or replayed event callbacks: anything handed to them
// executes on the determinism-critical path (ordered hook replay,
// cycle hooks on the coordinator, per-node taps).
var hookRegistrars = map[string]bool{
	"AddCycleFn":      true,
	"AddCycleHook":    true,
	"AddDeliverFn":    true,
	"AddDropFn":       true,
	"AddInjectFn":     true,
	"SetFilterFn":     true,
	"SetStallFn":      true,
	"SetWakeFn":       true,
	"SetSyncHook":     true,
	"SetFaultFn":      true,
	"RegisterService": true,
}

// callGraph is the static call graph over every loaded package.
// Resolution is conservative in the directions that matter here:
// method calls through interfaces fan out to every loaded
// implementation, taking a function's value (without calling it) adds
// an edge, and a function literal is an edge from its enclosing
// function. Calls through plain func values (fields, variables) are
// not resolved — the hook-registration roots cover the targets that
// matter for determinism.
type callGraph struct {
	prog  *Program
	nodes map[*types.Func]*funcNode
	lits  map[*ast.FuncLit]*funcNode
	all   []*funcNode

	// pendingHookLits holds literals seen as hook-registration
	// arguments before their own node exists (the enclosing CallExpr is
	// visited first); the FuncLit case of addEdges consumes it.
	pendingHookLits map[*ast.FuncLit]bool

	digestReach map[*funcNode]bool // memo for digestReachable
	stepReach   map[*funcNode]bool // memo for stepReachable
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *callGraph {
	if p.graph != nil {
		return p.graph
	}
	g := &callGraph{
		prog:            p,
		nodes:           make(map[*types.Func]*funcNode),
		lits:            make(map[*ast.FuncLit]*funcNode),
		pendingHookLits: make(map[*ast.FuncLit]bool),
	}
	// Pass 1: one node per declared function.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fn := &funcNode{pkg: pkg, obj: obj, decl: fd, name: funcName(obj)}
				g.nodes[obj] = fn
				g.all = append(g.all, fn)
			}
		}
	}
	// Pass 2: edges.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				g.addEdges(g.nodes[obj], pkg, fd.Body)
			}
		}
	}
	p.graph = g
	return g
}

func funcName(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + "." + obj.Name()
	}
	return obj.Name()
}

// addEdges walks one function body, creating literal nodes and edges.
func (g *callGraph) addEdges(from *funcNode, pkg *Package, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fn := &funcNode{pkg: pkg, lit: n, name: "func literal", hookArg: g.pendingHookLits[n]}
			g.lits[n] = fn
			g.all = append(g.all, fn)
			from.callees = append(from.callees, fn)
			g.addEdges(fn, pkg, n.Body)
			return false // addEdges recursed already
		case *ast.CallExpr:
			g.addCallEdges(from, pkg, n)
		case *ast.Ident:
			// Taking a function's value: conservative edge.
			if obj, ok := pkg.Info.Uses[n].(*types.Func); ok {
				if to := g.nodes[obj]; to != nil {
					from.callees = append(from.callees, to)
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
				if to := g.resolve(obj); to != nil {
					from.callees = append(from.callees, to)
				} else {
					from.callees = append(from.callees, g.implementers(obj)...)
				}
			}
		}
		return true
	})
}

// addCallEdges records hook-argument roots for calls to the known
// registration functions (the callee edge itself is added by the
// Ident/SelectorExpr cases of addEdges).
func (g *callGraph) addCallEdges(from *funcNode, pkg *Package, call *ast.CallExpr) {
	name := calleeName(call)
	if !hookRegistrars[name] {
		return
	}
	for _, arg := range call.Args {
		if lit, ok := unparen(arg).(*ast.FuncLit); ok {
			g.pendingHookLits[lit] = true // node created when the walk reaches it
			continue
		}
		if fn := g.funcFor(pkg, arg); fn != nil {
			fn.hookArg = true
		}
	}
}

// funcFor resolves an expression to the function node it denotes, when
// it statically denotes one (identifier, method value, or literal).
func (g *callGraph) funcFor(pkg *Package, e ast.Expr) *funcNode {
	switch e := e.(type) {
	case *ast.FuncLit:
		return g.lits[e]
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return g.nodes[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return g.resolve(obj)
		}
	case *ast.ParenExpr:
		return g.funcFor(pkg, e.X)
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeName extracts the bare name of a call's callee expression.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// resolve maps a *types.Func to its node, if its body is loaded.
func (g *callGraph) resolve(obj *types.Func) *funcNode { return g.nodes[obj] }

// implementers resolves an interface method to every loaded concrete
// method that may satisfy it.
func (g *callGraph) implementers(m *types.Func) []*funcNode {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*funcNode
	for _, fn := range g.all {
		if fn.obj == nil || fn.obj.Name() != m.Name() {
			continue
		}
		fsig, ok := fn.obj.Type().(*types.Signature)
		if !ok || fsig.Recv() == nil {
			continue
		}
		recv := fsig.Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, fn)
		}
	}
	return out
}

// reachable returns every function reachable from the nodes selected
// by root (following the conservative edge set).
func (g *callGraph) reachable(root func(*funcNode) bool) map[*funcNode]bool {
	seen := make(map[*funcNode]bool)
	var stack []*funcNode
	for _, fn := range g.all {
		if root(fn) {
			seen[fn] = true
			stack = append(stack, fn)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range fn.callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// declLine returns the source line of the function's declaration.
func (g *callGraph) declLine(fn *funcNode) int {
	return g.prog.Fset.Position(fn.node().Pos()).Line
}

// annotated reports whether the function's declaration line carries the
// given annotation.
func (fn *funcNode) annotated(prog *Program, key string) bool {
	f := fn.pkg.fileOf(fn.node())
	if f == nil {
		return false
	}
	line := prog.Fset.Position(fn.node().Pos()).Line
	return fn.pkg.Notes[f].Has(line, key, false)
}
