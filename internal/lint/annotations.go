package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation is one //jm: marker comment. The analyzers use them in
// two directions: required declarations (//jm:pins, //jm:horizon,
// //jm:wallclock) that must be present at certain call sites, and
// suppressions (//jm:maporder, //jm:digest-exempt-ok) that silence a
// diagnostic at a site whose determinism has been argued by hand.
// Every annotation takes a free-form rationale after the keyword; an
// empty rationale is rejected by the analyzers that require one.
type Annotation struct {
	Key       string // "pins", "horizon", "wallclock", "maporder", ...
	Rationale string
	Line      int
}

// Annotations indexes a file's //jm: comments by the source line they
// govern: the annotation's own line and the next source line, so both
// trailing and preceding placement work:
//
//	m.AddCycleHook(fn, hz) //jm:horizon next scheduled fault
//
//	//jm:pins observer must see every cycle
//	m.AddCycleFn(fn)
type Annotations map[int][]Annotation

// parseAnnotations extracts the //jm: markers of one file.
func parseAnnotations(fset *token.FileSet, f *ast.File) Annotations {
	notes := make(Annotations)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//jm:")
			if !ok {
				continue
			}
			key, rationale, _ := strings.Cut(strings.TrimSpace(text), " ")
			pos := fset.Position(c.Pos())
			a := Annotation{Key: key, Rationale: strings.TrimSpace(rationale), Line: pos.Line}
			// An annotation governs its own line (trailing placement)
			// and the next line (preceding placement), like nolint.
			notes[pos.Line] = append(notes[pos.Line], a)
			notes[pos.Line+1] = append(notes[pos.Line+1], a)
		}
	}
	return notes
}

// Has reports whether line carries an annotation with the key (and a
// non-empty rationale when requireRationale is set).
func (a Annotations) Has(line int, key string, requireRationale bool) bool {
	for _, n := range a[line] {
		if n.Key == key && (!requireRationale || n.Rationale != "") {
			return true
		}
	}
	return false
}

// find returns the first annotation with key on line.
func (a Annotations) find(line int, key string) (Annotation, bool) {
	for _, n := range a[line] {
		if n.Key == key {
			return n, true
		}
	}
	return Annotation{}, false
}
