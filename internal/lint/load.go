// Package lint is jm-lint: a static-analysis suite enforcing the
// repo's determinism invariants on the simulation packages.
//
// The headline guarantee of the engine work (docs/ENGINE.md,
// docs/PERF.md) — byte-identical StateDigest and trace output across
// shard counts and stepping modes — is easy to break silently: one
// `range` over a map in a digest or hook-replay path, one wall-clock
// read feeding simulation state, one goroutine spawned inside a
// per-cycle step path. The runtime equivalence sweeps only catch a
// divergence when a test happens to exercise it; the analyzers here
// catch the pattern at compile time.
//
// The suite is built directly on go/parser and go/types (the container
// image carries no golang.org/x/tools, so the go/analysis machinery is
// reimplemented in miniature): Load type-checks the target packages —
// resolving the module's own imports from the repository and the
// standard library from GOROOT source, fully offline — and the
// analyzers in this package walk the typed syntax. cmd/jm-lint is the
// driver; docs/LINT.md describes each diagnostic and its suppression
// annotation.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("jmachine/internal/mdp")
	Dir   string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	// Notes holds the parsed //jm: annotations of every file, keyed by
	// the line the annotation applies to.
	Notes map[*ast.File]Annotations
}

// Program is a set of packages loaded together: analyzers that follow
// calls across package boundaries (reachability from digest or step
// roots) see the whole set at once.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // target packages, sorted by import path

	byPath map[string]*Package
	graph  *callGraph          // built lazily by CallGraph
	exempt map[*types.Var]bool // built lazily by exemptFields
}

// Loader type-checks packages without the go command or the network:
// module-local import paths resolve against the repository, everything
// else against GOROOT/src. The zero Loader is not usable; use NewLoader.
type Loader struct {
	fset    *token.FileSet
	modPath string // module path from go.mod ("jmachine")
	modDir  string // module root directory
	goroot  string
	ctxt    build.Context

	pkgs    map[string]*types.Package // completed type-checked imports
	loading map[string]bool           // import-cycle guard
	typed   map[string]*Package       // full syntax+info, target packages only
}

// NewLoader returns a loader rooted at the module directory modDir.
func NewLoader(modDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Module resolution is done by this loader, not go/build: keep
	// go/build in plain directory mode so no go command is invoked.
	ctxt.GOPATH = ""
	// Type-check the pure-Go shape of the standard library: cgo files
	// reference _C_ types that only exist after cgo preprocessing, and
	// packages with cgo fallbacks (net, os/user) build without them.
	ctxt.CgoEnabled = false
	return &Loader{
		fset:    token.NewFileSet(),
		modPath: modPath,
		modDir:  modDir,
		goroot:  runtime.GOROOT(),
		ctxt:    ctxt,
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
		typed:   make(map[string]*Package),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// dirFor maps an import path to the directory holding its source.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.modPath {
		return l.modDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modDir, filepath.FromSlash(rest)), nil
	}
	dir := filepath.Join(l.goroot, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	// Standard-library dependencies vendored into GOROOT (net/http →
	// golang.org/x/crypto/... and friends) live under src/vendor.
	vdir := filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(vdir); err == nil && fi.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (module %s, offline loader)", path, l.modPath)
}

// Import implements types.Importer for the checker: every dependency —
// module-local or standard library — is type-checked from source.
// Module-local packages keep their full syntax and type info on the
// first check, whether they arrive as an import or as a Load target:
// a path must map to exactly one *types.Package or identical types
// from different check passes would not be identical.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	full := path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
	pkg, tp, err := l.check(path, full)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	if full {
		l.typed[path] = tp
	}
	return pkg, nil
}

// check parses and type-checks one package. When full is set the
// syntax and type info are retained for analysis.
func (l *Loader) check(path string, full bool) (*types.Package, *Package, error) {
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect via the returned error only
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	if !full {
		return pkg, nil, nil
	}
	tp := &Package{
		Path:  path,
		Dir:   dir,
		Pkg:   pkg,
		Info:  info,
		Files: files,
		Notes: make(map[*ast.File]Annotations),
	}
	for _, f := range files {
		tp.Notes[f] = parseAnnotations(l.fset, f)
	}
	return pkg, tp, nil
}

// Load type-checks the named target packages (import paths relative to
// the module, e.g. "internal/mdp", or absolute "jmachine/internal/mdp")
// and returns them as one Program.
func (l *Loader) Load(paths ...string) (*Program, error) {
	prog := &Program{Fset: l.fset, byPath: make(map[string]*Package)}
	for _, p := range paths {
		if !strings.HasPrefix(p, l.modPath) {
			p = l.modPath + "/" + strings.TrimPrefix(p, "./")
		}
		if _, done := prog.byPath[p]; done {
			continue
		}
		if _, err := l.Import(p); err != nil {
			return nil, err
		}
		tp := l.typed[p]
		if tp == nil {
			return nil, fmt.Errorf("lint: %s is not a module-local package", p)
		}
		prog.byPath[p] = tp
		prog.Pkgs = append(prog.Pkgs, tp)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadDirs resolves directories (as given on a command line, possibly
// with /... wildcards) to package paths and loads them.
func (l *Loader) LoadDirs(patterns ...string) (*Program, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(dir string) {
		rel, err := filepath.Rel(l.modDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		if !hasGoFiles(dir) {
			return
		}
		p := l.modPath
		if rel != "." {
			p += "/" + filepath.ToSlash(rel)
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.modDir, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	return l.Load(paths...)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && !e.IsDir() {
			return true
		}
	}
	return false
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// SinglePackageProgram wraps one externally type-checked package as a
// Program, for drivers (the go vet unit protocol) that analyze one
// package at a time. Cross-package reachability degrades to the
// package at hand; the standalone multi-package load is authoritative.
func SinglePackageProgram(fset *token.FileSet, path, dir string, pkg *types.Package, info *types.Info, files []*ast.File) *Program {
	tp := &Package{
		Path:  path,
		Dir:   dir,
		Pkg:   pkg,
		Info:  info,
		Files: files,
		Notes: make(map[*ast.File]Annotations),
	}
	for _, f := range files {
		tp.Notes[f] = parseAnnotations(fset, f)
	}
	return &Program{
		Fset:   fset,
		Pkgs:   []*Package{tp},
		byPath: map[string]*Package{path: tp},
	}
}
