package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Code    string // "JML001" ... — stable, documented in docs/LINT.md
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
}

// Analyzer is one determinism check. Run inspects a single package but
// receives the whole Program, so checks that follow calls across
// package boundaries (reachability from digest or step roots) see
// every loaded package at once.
type Analyzer struct {
	Name string // short name usable on a command line ("maporder")
	Code string // diagnostic code prefix ("JML003")
	Doc  string
	Run  func(prog *Program, pkg *Package, report func(ast.Node, string))
}

// Analyzers is the jm-lint suite, in diagnostic-code order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		RandAnalyzer,
		MapOrderAnalyzer,
		StepConcurrencyAnalyzer,
		HookDeclAnalyzer,
		DigestExemptAnalyzer,
	}
}

// AnalyzerByName returns the analyzer with the given short name or
// code, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name || a.Code == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every package of prog and returns the
// findings sorted by position. Diagnostics suppressed by annotations
// never appear: suppression is the analyzers' own business, so a
// suppressed site costs an annotation with a rationale, not a flag.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			a := a
			report := func(n ast.Node, msg string) {
				diags = append(diags, Diagnostic{
					Pos:     prog.Fset.Position(n.Pos()),
					Code:    a.Code,
					Message: msg,
				})
			}
			a.Run(prog, pkg, report)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
	return diags
}

// notesFor returns the annotations of the file containing pos.
func (pkg *Package) notesFor(f *ast.File) Annotations { return pkg.Notes[f] }

// fileOf returns the *ast.File of pkg containing node n.
func (pkg *Package) fileOf(n ast.Node) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= n.Pos() && n.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}

// suppressed reports whether node n's line (in its file) carries the
// given suppression annotation with a rationale.
func (pkg *Package) suppressed(fset *token.FileSet, n ast.Node, key string) bool {
	f := pkg.fileOf(n)
	if f == nil {
		return false
	}
	line := fset.Position(n.Pos()).Line
	return pkg.Notes[f].Has(line, key, true)
}
