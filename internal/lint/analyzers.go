package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---- shared root sets -------------------------------------------------

// stepRootNames are the methods that advance simulation time: anything
// they (transitively) call runs on the per-cycle critical path, where
// scheduling must stay deterministic and host-side concurrency is the
// engine's exclusive business.
var stepRootNames = map[string]bool{
	"Step":          true,
	"StepN":         true,
	"StepCycle":     true,
	"StepNodeRange": true,
	"SkipTo":        true,
}

// digestRoot selects functions whose output must be bit-identical
// across shard counts and stepping modes: digest computations, hook
// callbacks (replayed in a defined order and therefore part of the
// observable trace), and anything marked //jm:trace-root.
func (g *callGraph) digestRoot(fn *funcNode) bool {
	if fn.hookArg {
		return true
	}
	if fn.obj != nil && (fn.obj.Name() == "StateDigest" || fn.obj.Name() == "Digest") {
		return true
	}
	return fn.annotated(g.prog, "trace-root")
}

// stepRoot selects functions on the per-cycle critical path: the
// stepping entry points plus every registered hook (hooks run inside
// the step loop).
func (g *callGraph) stepRoot(fn *funcNode) bool {
	if fn.hookArg {
		return true
	}
	return fn.obj != nil && stepRootNames[fn.obj.Name()] && isMethod(fn.obj)
}

func isMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// digestReachable / stepReachable memoize the two closures.
func (g *callGraph) digestReachable() map[*funcNode]bool {
	if g.digestReach == nil {
		g.digestReach = g.reachable(g.digestRoot)
	}
	return g.digestReach
}

func (g *callGraph) stepReachable() map[*funcNode]bool {
	if g.stepReach == nil {
		g.stepReach = g.reachable(g.stepRoot)
	}
	return g.stepReach
}

// inspectPkg walks every function body of pkg that is in the given
// reachable set, handing each node to visit along with its funcNode.
func inspectReachable(prog *Program, pkg *Package, reach map[*funcNode]bool, visit func(fn *funcNode, n ast.Node)) {
	g := prog.CallGraph()
	for _, fn := range g.all {
		if fn.pkg != pkg || !reach[fn] {
			continue
		}
		body := fn.body()
		if body == nil {
			continue
		}
		fn := fn
		ast.Inspect(body, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			// Nested literals are their own graph nodes; they are
			// visited when their own node is in the set.
			if _, ok := n.(*ast.FuncLit); ok && n != fn.node() {
				return false
			}
			visit(fn, n)
			return true
		})
	}
}

// ---- JML001: wall-clock reads ----------------------------------------

// WallclockAnalyzer flags time.Now / time.Since / time.Until in
// non-test simulation code. Wall-clock time feeding simulation state is
// the canonical determinism leak; the bench packages legitimately
// measure host rates, so a read annotated //jm:wallclock <rationale> is
// sanctioned.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Code: "JML001",
	Doc:  "time.Now/Since/Until requires a //jm:wallclock rationale outside tests",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				switch obj.Name() {
				case "Now", "Since", "Until":
				default:
					return true
				}
				if pkg.suppressed(prog.Fset, sel, "wallclock") {
					return true
				}
				report(sel, fmt.Sprintf("time.%s in simulation code: wall-clock time is nondeterministic; annotate the line //jm:wallclock <why> if this is a host-rate probe", obj.Name()))
				return true
			})
		}
	},
}

// ---- JML002: unseeded math/rand --------------------------------------

// RandAnalyzer flags draws from math/rand's global source. The global
// source is seeded per-process, so any value it produces varies run to
// run. Constructing an explicitly seeded generator (rand.New,
// rand.NewSource, rand.NewZipf) is fine and is the required pattern.
var RandAnalyzer = &Analyzer{
	Name: "rand",
	Code: "JML002",
	Doc:  "math/rand global-source draws are nondeterministic; use rand.New(rand.NewSource(seed))",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				if isMethod(obj) { // methods on an explicit *rand.Rand are fine
					return true
				}
				switch obj.Name() {
				case "New", "NewSource", "NewZipf": // constructors, not draws
					return true
				}
				if pkg.suppressed(prog.Fset, sel, "rand-ok") {
					return true
				}
				report(sel, fmt.Sprintf("rand.%s draws from the process-global source: seed an explicit generator with rand.New(rand.NewSource(seed)) instead", obj.Name()))
				return true
			})
		}
	},
}

// ---- JML003: map iteration on digest/trace paths ---------------------

// MapOrderAnalyzer flags `range` over a map in any function reachable
// from a digest, trace, or hook-replay root. Go randomizes map
// iteration order per run, so such a range makes the digest or trace
// depend on the iteration schedule. Sites that collect-then-sort (or
// otherwise argue order-independence) carry //jm:maporder <rationale>.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Code: "JML003",
	Doc:  "range over map in a digest/trace/hook-replay path is order-nondeterministic",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		reach := prog.CallGraph().digestReachable()
		inspectReachable(prog, pkg, reach, func(fn *funcNode, n ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if pkg.suppressed(prog.Fset, rng, "maporder") {
				return
			}
			report(rng, fmt.Sprintf("map iteration in %s, which is reachable from a digest/trace root: iteration order is randomized; sort the keys or annotate //jm:maporder <why order cannot leak>", fn.name))
		})
	},
}

// ---- JML004: host concurrency on the step path -----------------------

// StepConcurrencyAnalyzer flags goroutine spawns and channel operations
// in functions reachable from Step/SkipTo (and from registered hooks)
// outside internal/engine. The engine owns all host-side parallelism
// and keeps it deterministic by sharded replay; anywhere else, a `go`
// statement or channel op on the per-cycle path introduces scheduling
// nondeterminism the replay cannot see.
var StepConcurrencyAnalyzer = &Analyzer{
	Name: "stepconc",
	Code: "JML004",
	Doc:  "goroutine/channel use on the per-cycle step path outside internal/engine",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		if strings.HasSuffix(pkg.Path, "/internal/engine") {
			return
		}
		reach := prog.CallGraph().stepReachable()
		inspectReachable(prog, pkg, reach, func(fn *funcNode, n ast.Node) {
			var what string
			switch n := n.(type) {
			case *ast.GoStmt:
				what = "goroutine spawn"
			case *ast.SendStmt:
				what = "channel send"
			case *ast.SelectStmt:
				what = "select"
			case *ast.UnaryExpr:
				if n.Op != token.ARROW {
					return
				}
				what = "channel receive"
			default:
				return
			}
			if pkg.suppressed(prog.Fset, n, "conc-ok") {
				return
			}
			report(n, fmt.Sprintf("%s in %s, which is reachable from a step path: host concurrency outside internal/engine breaks replay determinism", what, fn.name))
		})
	},
}

// ---- JML005: undeclared cycle hooks ----------------------------------

// HookDeclAnalyzer requires every AddCycleFn call site to carry
// //jm:pins <rationale> (the hook pins the event horizon: SkipTo can
// no longer leap over idle regions) and every AddCycleHook call site to
// carry //jm:horizon <rationale> (why the declared horizon bounds the
// hook's next effect). The annotations force the horizon cost of a
// hook to be argued where it is incurred.
var HookDeclAnalyzer = &Analyzer{
	Name: "hookdecl",
	Code: "JML005",
	Doc:  "AddCycleFn needs //jm:pins, AddCycleHook needs //jm:horizon, with rationale",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		for _, f := range pkg.Files {
			var stack []*ast.FuncDecl
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok {
					stack = append(stack, fd)
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				var key string
				switch name {
				case "AddCycleFn":
					key = "pins"
				case "AddCycleHook":
					key = "horizon"
				default:
					return true
				}
				// The registrar's own (wrapper) implementation is the
				// mechanism, not a use: a method named AddCycleFn that
				// forwards to the engine does not need the annotation.
				if len(stack) > 0 && stack[len(stack)-1].Name.Name == name {
					return true
				}
				if pkg.suppressed(prog.Fset, call, key) {
					return true
				}
				report(call, fmt.Sprintf("%s call site must declare its horizon cost: annotate //jm:%s <rationale>", name, key))
				return true
			})
		}
	},
}

// ---- JML006: digest-exempt fields read on step paths -----------------

// DigestExemptAnalyzer tracks struct fields marked //jm:digest-exempt
// (state deliberately excluded from StateDigest, e.g. observer taps)
// and flags reads of those fields in functions reachable from the step
// path. A digest-exempt field that feeds back into stepping would make
// two runs with identical digests diverge. Writes are fine; a
// sanctioned read carries //jm:digest-exempt-ok <rationale>.
var DigestExemptAnalyzer = &Analyzer{
	Name: "digestexempt",
	Code: "JML006",
	Doc:  "//jm:digest-exempt fields must not be read on Step/SkipTo paths",
	Run: func(prog *Program, pkg *Package, report func(ast.Node, string)) {
		exempt := prog.exemptFields()
		if len(exempt) == 0 {
			return
		}
		reach := prog.CallGraph().stepReachable()
		// Assignment targets are visited before their operands in the
		// same walk, so recording them here lets the selector case
		// below skip writes.
		writes := make(map[*ast.SelectorExpr]bool)
		inspectReachable(prog, pkg, reach, func(fn *funcNode, n ast.Node) {
			// A write (selector as assignment LHS) is allowed.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
				return
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return
			}
			s, ok := pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || !exempt[v] {
				return
			}
			if pkg.suppressed(prog.Fset, sel, "digest-exempt-ok") {
				return
			}
			report(sel, fmt.Sprintf("read of digest-exempt field %s.%s in %s, which is reachable from a step path: exempt state must not influence stepping; annotate //jm:digest-exempt-ok <why> if it provably cannot", s.Recv().String(), v.Name(), fn.name))
		})
	},
}

// exemptFields collects every struct field whose declaration carries
// //jm:digest-exempt, across all loaded packages.
func (p *Program) exemptFields() map[*types.Var]bool {
	if p.exempt != nil {
		return p.exempt
	}
	p.exempt = make(map[*types.Var]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			notes := pkg.Notes[f]
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					line := p.Fset.Position(field.Pos()).Line
					if !notes.Has(line, "digest-exempt", false) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							p.exempt[v] = true
						}
					}
				}
				return true
			})
		}
	}
	return p.exempt
}
