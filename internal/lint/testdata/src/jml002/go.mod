module jml002

go 1.21
