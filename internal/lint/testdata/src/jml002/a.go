// Package jml002 is a jm-lint fixture: global math/rand source (JML002).
package jml002

import "math/rand"

// Bad: draws from the process-global source.
func shuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want JML002
}

func pickBad(n int) int { return rand.Intn(n) } // want JML002

// Good: an explicitly seeded generator; constructors and methods on
// the generator are fine.
func pickGood(n int) int {
	r := rand.New(rand.NewSource(3))
	return r.Intn(n)
}
