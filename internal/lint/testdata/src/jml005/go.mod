module jml005

go 1.21
