// Package jml005 is a jm-lint fixture: undeclared cycle hooks (JML005).
package jml005

type Machine struct{}

func (m *Machine) AddCycleFn(fn func(int64))                    {}
func (m *Machine) AddCycleHook(fn func(int64), hz func() int64) {}

func horizon() int64 { return 0 }

// Bad: hook registrations without their horizon-cost declarations.
func installBad(m *Machine) {
	m.AddCycleFn(func(int64) {})            // want JML005
	m.AddCycleHook(func(int64) {}, horizon) // want JML005
}

// Bad: the annotation alone, with no rationale, is not a declaration.
func installBare(m *Machine) {
	m.AddCycleFn(func(int64) {}) /* want JML005 */ //jm:pins
}

// Good: annotated call sites, trailing or preceding.
func installGood(m *Machine) {
	m.AddCycleFn(func(int64) {}) //jm:pins fixture hook samples every cycle
	//jm:horizon fixture hook's next effect is bounded by horizon()
	m.AddCycleHook(func(int64) {}, horizon)
}

// Good: a forwarding wrapper named like the registrar is the
// mechanism, not a use.
type Wrapper struct{ m *Machine }

func (w *Wrapper) AddCycleFn(fn func(int64)) { w.m.AddCycleFn(fn) }
