// Package engine stands in for the real internal/engine: the one place
// host concurrency on the step path is allowed.
package engine

type Shard struct{ ch chan int }

// Step uses channels on the step path — exempt inside internal/engine.
func (s *Shard) Step() {
	go func() { s.ch <- 1 }()
	<-s.ch
}

func Run() {}
