module jml004

go 1.21
