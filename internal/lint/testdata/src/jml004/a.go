// Package jml004 is a jm-lint fixture: host concurrency on the
// per-cycle step path (JML004).
package jml004

import "jml004/internal/engine"

type Node struct {
	ch   chan int
	done chan struct{}
}

// Bad: the step path spawns goroutines and touches channels.
func (n *Node) Step() {
	go n.work() // want JML004
	n.ch <- 1   // want JML004
	<-n.done    // want JML004
	select {    // want JML004
	case v := <-n.ch: // want JML004
		_ = v
	default:
	}
}

// Bad: reachable from SkipTo through a helper.
func (n *Node) SkipTo(target int64) { n.drain() }

func (n *Node) drain() {
	<-n.ch // want JML004
}

func (n *Node) work() {}

// Good: the same constructs off the step path (host-side harness).
func Harness(n *Node) {
	go n.work()
	n.ch <- 1
	<-n.done
}

// Good: internal/engine owns deterministic host parallelism.
var _ = engine.Run
