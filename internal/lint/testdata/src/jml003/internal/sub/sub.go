// Package sub proves JML003 reachability crosses package boundaries.
package sub

// Helper is called from jml003.(*Digester).Digest, a digest root.
func Helper(m map[int]int) uint64 {
	var h uint64
	for k := range m { // want JML003
		h += uint64(k)
	}
	return h
}
