// Package jml003 is a jm-lint fixture: map iteration on digest, trace,
// and hook-replay paths (JML003).
package jml003

import "jml003/internal/sub"

type Digester struct {
	counts map[int]int
}

// Bad: a digest root ranging a map directly.
func (d *Digester) StateDigest() uint64 {
	var h uint64
	for k, v := range d.counts { // want JML003
		h += uint64(k) * uint64(v)
	}
	return h
}

// Bad: reachable from the digest root through a helper, and through a
// package boundary.
func (d *Digester) Digest() uint64 {
	return d.helper() + sub.Helper(d.counts) + d.sorted()
}

func (d *Digester) helper() uint64 {
	var h uint64
	for k := range d.counts { // want JML003
		h += uint64(k)
	}
	return h
}

// Good: collect-then-sort with the suppression and its rationale.
func (d *Digester) sorted() uint64 {
	var h uint64
	for k := range d.counts { //jm:maporder keys feed a sort below; fixture
		h += uint64(k)
	}
	return h
}

// Good: not reachable from any digest/trace/hook root.
func unrooted(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Bad: a function registered as a hook runs on the replay path.
type machine struct{}

func (machine) AddDeliverFn(fn func(map[int]int)) {}

func install(m machine) {
	m.AddDeliverFn(func(seen map[int]int) {
		for k := range seen { // want JML003
			_ = k
		}
	})
}

// Bad: //jm:trace-root marks an explicit trace-output root.
//
//jm:trace-root fixture: emits deterministic trace bytes
func flush(spans map[int]string) {
	for _, s := range spans { // want JML003
		_ = s
	}
}
