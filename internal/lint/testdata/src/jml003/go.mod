module jml003

go 1.21
