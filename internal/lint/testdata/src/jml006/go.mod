module jml006

go 1.21
