// Package jml006 is a jm-lint fixture: digest-exempt fields read on
// step paths (JML006).
package jml006

type Event struct{ Cycle int64 }

type Node struct {
	cycle int64
	// Watch is the observer tap, deliberately outside the digest.
	//jm:digest-exempt observer tap; fixture
	Watch func(Event)
}

// Bad: the step path reads the exempt field.
func (n *Node) Step() {
	n.cycle++
	if n.Watch != nil { // want JML006
		n.Watch(Event{n.cycle}) // want JML006
	}
}

// Bad: reachable from SkipTo through a helper.
func (n *Node) SkipTo(target int64) { n.emit() }

func (n *Node) emit() {
	n.Watch(Event{n.cycle}) // want JML006
}

// Good: writes on the step path are allowed (installing the tap).
func (n *Node) StepN(k int) {
	n.Watch = nil
}

// Good: the sanctioned read carries the rationale.
func (n *Node) StepCycle() {
	//jm:digest-exempt-ok write-only tap; fixture
	if n.Watch != nil {
		n.Watch(Event{n.cycle}) //jm:digest-exempt-ok same tap
	}
}

// Good: reads off the step path are fine.
func Inspect(n *Node) bool { return n.Watch != nil }
