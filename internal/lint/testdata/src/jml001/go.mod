module jml001

go 1.21
