// Package jml001 is a jm-lint fixture: wall-clock reads (JML001).
package jml001

import "time"

// Bad: raw wall-clock reads in simulation code.
func rate() float64 {
	start := time.Now() // want JML001
	work()
	return time.Since(start).Seconds() // want JML001
}

func deadline(t time.Time) bool {
	return time.Until(t) < 0 // want JML001
}

// Good: the sanctioned host-rate probe pattern.
func probedRate() float64 {
	start := time.Now() //jm:wallclock host-rate probe for the fixture
	work()
	return time.Since(start).Seconds() //jm:wallclock host-rate probe
}

// Good: annotation on the preceding line also governs the call.
func probedRate2() time.Time {
	//jm:wallclock fixture probe
	return time.Now()
}

// Good: time package use that does not read the clock.
func pause() { time.Sleep(time.Millisecond) }

// Bad: an annotation without a rationale does not sanction the read.
func bareAnnotation() time.Time {
	return time.Now() /* want JML001 */ //jm:wallclock
}

func work() {}
