package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// call issues one API request and decodes the JSON response into out.
func call(t *testing.T, srv *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPAPI(t *testing.T) {
	g, err := NewManager(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()

	var health map[string]string
	if code := call(t, srv, "GET", "/v1/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, health)
	}

	// Create a kv session with tracing on.
	var created struct {
		ID   string `json:"id"`
		Spec Spec   `json:"spec"`
	}
	spec := Spec{Workload: "kv", Nodes: 4, Keys: 16, Gateways: 2, Trace: true, MetricsEvery: 64}
	if code := call(t, srv, "POST", "/v1/sessions", spec, &created); code != 201 {
		t.Fatalf("create: code=%d", code)
	}
	if created.Spec.Budget == 0 {
		t.Error("create did not return the normalized spec")
	}
	id := created.ID

	// Bad spec is rejected.
	if code := call(t, srv, "POST", "/v1/sessions", Spec{Workload: "kv", Nodes: 5}, nil); code != 400 {
		t.Errorf("bad spec: code=%d, want 400", code)
	}

	// Step, then kv ops, then digest.
	var stepped struct {
		Cycle int64 `json:"cycle"`
	}
	if code := call(t, srv, "POST", "/v1/sessions/"+id+"/step", map[string]int64{"cycles": 100}, &stepped); code != 200 || stepped.Cycle < 100 {
		t.Fatalf("step: code=%d cycle=%d", code, stepped.Cycle)
	}
	var kvResp struct {
		Results []KVResult `json:"results"`
	}
	ops := map[string]any{"ops": []KVOp{{Op: "put", Key: 2, Value: 7}}}
	if code := call(t, srv, "POST", "/v1/sessions/"+id+"/kv", ops, &kvResp); code != 200 || len(kvResp.Results) != 1 {
		t.Fatalf("kv: code=%d results=%v", code, kvResp.Results)
	}
	if kvResp.Results[0].Version != 1 {
		t.Errorf("put version = %d, want 1", kvResp.Results[0].Version)
	}
	var dig struct {
		Cycle  int64  `json:"cycle"`
		Digest string `json:"digest"`
	}
	if code := call(t, srv, "GET", "/v1/sessions/"+id+"/digest", nil, &dig); code != 200 || len(dig.Digest) != 16 {
		t.Fatalf("digest: code=%d %+v", code, dig)
	}

	// Timeline and metrics stream non-empty prefixes.
	for _, ep := range []string{"timeline", "metrics"} {
		resp, err := srv.Client().Get(srv.URL + "/v1/sessions/" + id + "/" + ep)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || buf.Len() == 0 {
			t.Errorf("%s: code=%d len=%d", ep, resp.StatusCode, buf.Len())
		}
		if ep == "timeline" && !strings.Contains(buf.String(), "traceEvents") {
			t.Errorf("timeline is not a Perfetto stream: %.80s", buf.String())
		}
	}

	// Snapshot and statz respond.
	if code := call(t, srv, "GET", "/v1/sessions/"+id+"/snapshot", nil, &map[string]any{}); code != 200 {
		t.Errorf("snapshot: code=%d", code)
	}
	var st Stats
	if code := call(t, srv, "GET", "/v1/statz", nil, &st); code != 200 || st.Sessions != 1 {
		t.Errorf("statz: code=%d %+v", code, st)
	}

	// List shows the session; delete removes it; 404 afterwards.
	var list struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if code := call(t, srv, "GET", "/v1/sessions", nil, &list); code != 200 || len(list.Sessions) != 1 {
		t.Fatalf("list: code=%d %+v", code, list)
	}
	if code := call(t, srv, "DELETE", "/v1/sessions/"+id, nil, nil); code != 200 {
		t.Fatalf("delete: code=%d", code)
	}
	if code := call(t, srv, "GET", "/v1/sessions/"+id, nil, nil); code != 404 {
		t.Errorf("get after delete: code=%d, want 404", code)
	}
	if code := call(t, srv, "GET", "/v1/sessions/nope/digest", nil, nil); code != 404 {
		t.Errorf("unknown id: code=%d, want 404", code)
	}
}

// TestHTTPSessionDeterminism drives two sessions through the same op
// stream over real HTTP from concurrent clients and cross-checks the
// digests against the in-process replay.
func TestHTTPSessionDeterminism(t *testing.T) {
	g, err := NewManager(t.TempDir(), 1) // churn: one resident slot
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()

	spec := Spec{Workload: "kv", Nodes: 4, Keys: 16, Gateways: 2}
	ids := make([]string, 2)
	for i := range ids {
		var created struct {
			ID string `json:"id"`
		}
		if code := call(t, srv, "POST", "/v1/sessions", spec, &created); code != 201 {
			t.Fatalf("create: code=%d", code)
		}
		ids[i] = created.ID
	}
	ops := GenOps(99, 16, 16)
	var reqs []ReplayReq
	for i := 0; i < len(ops); i += 4 {
		reqs = append(reqs, ReplayReq{Ops: ops[i : i+4]})
	}
	done := make(chan error, len(ids))
	for _, id := range ids {
		go func(id string) {
			for _, req := range reqs {
				data, _ := json.Marshal(map[string]any{"ops": req.Ops})
				resp, err := srv.Client().Post(
					srv.URL+"/v1/sessions/"+id+"/kv", "application/json", bytes.NewReader(data))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					done <- fmt.Errorf("kv on %s: status %d", id, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(id)
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_, want, err := Replay(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		var dig struct {
			Digest string `json:"digest"`
		}
		if code := call(t, srv, "GET", "/v1/sessions/"+id+"/digest", nil, &dig); code != 200 {
			t.Fatalf("digest: code=%d", code)
		}
		if dig.Digest != fmt.Sprintf("%016x", want) {
			t.Errorf("session %s digest %s, want %016x", id, dig.Digest, want)
		}
	}
}
