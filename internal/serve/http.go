package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
)

// NewHandler builds the HTTP/JSON API over a Manager. All endpoints
// are rooted at /v1; see docs/SERVE.md for the reference.
func NewHandler(g *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Stat())
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s, err := g.Create(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"id": s.ID, "spec": s.Spec})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": g.List()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		withSession(g, w, r, func(s *Session) (any, error) {
			cycle, digest, err := s.Digest()
			if err != nil {
				return nil, err
			}
			return map[string]any{
				"id": s.ID, "spec": s.Spec, "cycle": cycle,
				"digest": fmt.Sprintf("%016x", digest),
				"quiescent": s.m.Quiescent(),
			}, nil
		})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.Delete(r.PathValue("id")); err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Cycles int64 `json:"cycles"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		withSession(g, w, r, func(s *Session) (any, error) {
			cycle, err := s.StepCycles(req.Cycles)
			if err != nil {
				return nil, err
			}
			return map[string]any{"cycle": cycle}, nil
		})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/run", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Budget int64 `json:"budget"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		withSession(g, w, r, func(s *Session) (any, error) {
			cycle, quiescent, err := s.Run(req.Budget)
			if err != nil {
				return nil, err
			}
			return map[string]any{"cycle": cycle, "quiescent": quiescent}, nil
		})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/kv", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []KVOp `json:"ops"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		withSession(g, w, r, func(s *Session) (any, error) {
			results, err := s.KVApply(req.Ops)
			if err != nil {
				return nil, err
			}
			return map[string]any{"results": results, "cycle": s.m.Cycle()}, nil
		})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		withSession(g, w, r, func(s *Session) (any, error) {
			if err := s.Checkpoint(); err != nil {
				return nil, err
			}
			return map[string]string{"status": "checkpointed"}, nil
		})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/digest", func(w http.ResponseWriter, r *http.Request) {
		withSession(g, w, r, func(s *Session) (any, error) {
			cycle, digest, err := s.Digest()
			if err != nil {
				return nil, err
			}
			return map[string]any{"cycle": cycle, "digest": fmt.Sprintf("%016x", digest)}, nil
		})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		withSession(g, w, r, func(s *Session) (any, error) {
			return s.Snapshot()
		})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		streamObsFile(g, w, r, (*Session).TimelinePath, "application/json")
	})
	mux.HandleFunc("GET /v1/sessions/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		streamObsFile(g, w, r, (*Session).MetricsPath, "application/jsonl")
	})
	return mux
}

// withSession acquires the session (restoring it if evicted), runs fn
// under its lock, and writes the JSON result.
func withSession(g *Manager, w http.ResponseWriter, r *http.Request, fn func(*Session) (any, error)) {
	s, release, err := g.Acquire(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	v, err := fn(s)
	release()
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// streamObsFile syncs the session's observability sinks and serves the
// on-disk stream. The sync happens under the session lock; the file
// read happens after release, so a long download never blocks the
// simulation (the served bytes are a consistent prefix).
func streamObsFile(g *Manager, w http.ResponseWriter, r *http.Request, path func(*Session) string, contentType string) {
	s, release, err := g.Acquire(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	p := path(s)
	if p == "" {
		release()
		writeErr(w, http.StatusNotFound, errors.New("sink not enabled for this session"))
		return
	}
	err = s.SyncObs()
	release()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	data, err := os.ReadFile(p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNoSession):
		return http.StatusNotFound
	case errors.Is(err, ErrNotResident):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
