package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Manager owns the session registry: creation, LRU eviction to disk
// when more sessions exist than may stay resident, transparent restore
// on the next touch, crash recovery from the session directory, and
// checkpoint-all on graceful shutdown.
//
// Lock order is Manager.mu before Session.mu, never the reverse; a
// session op never calls back into the manager. Acquire releases
// Manager.mu before returning, so sessions step concurrently — the mu
// only serializes registry changes.
type Manager struct {
	dir         string
	maxResident int

	mu       sync.Mutex
	sessions map[string]*Session
	clock    int64 // LRU counter: bumped on every touch
	nextID   int
}

// DefaultMaxResident bounds in-memory sessions when NewManager is
// given 0.
const DefaultMaxResident = 8

// NewManager opens (creating if needed) the session directory and
// recovers every session checkpointed in it: each subdirectory with a
// spec.json re-registers as a non-resident session that restores on
// first touch, so a killed daemon resumes where it stood.
func NewManager(dir string, maxResident int) (*Manager, error) {
	if maxResident <= 0 {
		maxResident = DefaultMaxResident
	}
	g := &Manager{dir: dir, maxResident: maxResident, sessions: make(map[string]*Session)}
	if dir == "" {
		return g, nil // ephemeral: sessions live and die in memory
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		specPath := filepath.Join(dir, id, "spec.json")
		data, err := os.ReadFile(specPath)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // not a session directory
			}
			return nil, err
		}
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("recover %s: %w", specPath, err)
		}
		s := newSession(id, spec, filepath.Join(dir, id))
		if _, err := os.Stat(s.ckptPath()); err != nil {
			return nil, fmt.Errorf("recover %s: no checkpoint: %w", id, err)
		}
		g.sessions[id] = s
		if n, ok := strings.CutPrefix(id, "s"); ok {
			if v, err := strconv.Atoi(n); err == nil && v >= g.nextID {
				g.nextID = v + 1
			}
		}
	}
	return g, nil
}

// Dir returns the session directory ("" when ephemeral).
func (g *Manager) Dir() string { return g.dir }

// Create registers and builds a new session. The spec is normalized,
// persisted, and the session's cycle-zero checkpoint is written before
// Create returns — from that point on the session survives a crash.
func (g *Manager) Create(spec Spec) (*Session, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	id := fmt.Sprintf("s%06d", g.nextID)
	g.nextID++
	dir := ""
	if g.dir != "" {
		dir = filepath.Join(g.dir, id)
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, err
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, "spec.json"), data, 0o666); err != nil {
			return nil, err
		}
	}
	s := newSession(id, spec, dir)
	g.clock++
	s.lastUsed = g.clock
	g.evictOverflowLocked(s)
	s.mu.Lock()
	err = s.start(false)
	s.mu.Unlock()
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	g.sessions[id] = s
	return s, nil
}

// ErrNoSession reports an unknown session ID.
var ErrNoSession = errors.New("no such session")

// Acquire returns session id locked and resident, restoring it from
// its checkpoint if it was evicted. The caller must invoke the release
// function when done. Other sessions keep serving concurrently.
func (g *Manager) Acquire(id string) (*Session, func(), error) {
	g.mu.Lock()
	s, ok := g.sessions[id]
	if !ok {
		g.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	g.clock++
	s.lastUsed = g.clock
	g.mu.Unlock()

	s.mu.Lock()
	if !s.resident {
		// Make room, then restore. Taking g.mu while holding s.mu
		// cannot deadlock: the eviction sweep only ever TryLocks
		// session mutexes, so no g.mu holder blocks on s.mu.
		g.mu.Lock()
		g.evictOverflowLocked(s)
		g.mu.Unlock()
		if err := s.start(true); err != nil {
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("restore %s: %w", id, err)
		}
	}
	return s, s.mu.Unlock, nil
}

// evictOverflowLocked checkpoints and tears down least-recently-used
// resident sessions until admitting `next` keeps the resident count at
// maxResident. Sessions busy serving a request are skipped (TryLock),
// so the cap is a target, not a hard ceiling. Caller holds g.mu.
func (g *Manager) evictOverflowLocked(next *Session) {
	skip := make(map[*Session]bool)
	for {
		resident := 0
		var victim *Session
		for _, s := range g.sessions {
			if s == next || !s.residentHint() {
				continue
			}
			resident++
			if skip[s] {
				continue
			}
			if victim == nil || s.lastUsed < victim.lastUsed {
				victim = s
			}
		}
		if resident < g.maxResident || victim == nil {
			return
		}
		if !victim.mu.TryLock() {
			// Mid-request: leave it alone rather than stall the
			// registry; try the next-least-recent candidate.
			skip[victim] = true
			continue
		}
		victim.suspend()
		victim.mu.Unlock()
	}
}

// residentHint reads residency without the session lock — good enough
// for victim selection (the TryLock re-checks under the lock).
func (s *Session) residentHint() bool {
	if !s.mu.TryLock() {
		return true // busy serving ⇒ resident
	}
	r := s.resident
	s.mu.Unlock()
	return r
}

// SessionInfo is one row of List.
type SessionInfo struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Resident bool   `json:"resident"`
	Cycle    int64  `json:"cycle"`
	Requests int64  `json:"requests"`
	Restores int64  `json:"restores"`
}

// List reports every registered session, most recently used first.
func (g *Manager) List() []SessionInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	type row struct {
		info SessionInfo
		used int64
	}
	rows := make([]row, 0, len(g.sessions))
	for _, s := range g.sessions { //jm:maporder rows are sorted below
		rows = append(rows, row{
			info: SessionInfo{
				ID:       s.ID,
				Workload: s.Spec.Workload,
				Nodes:    s.Spec.Nodes,
				Resident: s.residentHint(),
				Cycle:    s.cycle.Load(),
				Requests: s.requests.Load(),
				Restores: s.restores.Load(),
			},
			used: s.lastUsed,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].used != rows[j].used {
			return rows[i].used > rows[j].used
		}
		return rows[i].info.ID < rows[j].info.ID
	})
	out := make([]SessionInfo, len(rows))
	for i, r := range rows {
		out[i] = r.info
	}
	return out
}

// Delete tears the session down and removes its directory.
func (g *Manager) Delete(id string) error {
	g.mu.Lock()
	s, ok := g.sessions[id]
	if ok {
		delete(g.sessions, id)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	s.mu.Lock()
	s.teardown()
	s.mu.Unlock()
	if s.dir != "" {
		return os.RemoveAll(s.dir)
	}
	return nil
}

// Shutdown checkpoints every resident session and evicts it, leaving
// the directory ready for the next daemon to recover. Returns the
// first error but keeps going.
func (g *Manager) Shutdown() error {
	g.mu.Lock()
	all := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions { //jm:maporder suspend order does not matter
		all = append(all, s)
	}
	g.mu.Unlock()
	var first error
	for _, s := range all {
		s.mu.Lock()
		if err := s.suspend(); err != nil && first == nil {
			first = err
		}
		s.mu.Unlock()
	}
	return first
}

// Stats summarizes the registry for the statz endpoint.
type Stats struct {
	Sessions    int   `json:"sessions"`
	Resident    int   `json:"resident"`
	MaxResident int   `json:"max_resident"`
	Requests    int64 `json:"requests"`
	Restores    int64 `json:"restores"`
}

// Stat reports registry-wide counters.
func (g *Manager) Stat() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{Sessions: len(g.sessions), MaxResident: g.maxResident}
	for _, s := range g.sessions { //jm:maporder commutative sums
		if s.residentHint() {
			st.Resident++
		}
		st.Requests += s.requests.Load()
		st.Restores += s.restores.Load()
	}
	return st
}
