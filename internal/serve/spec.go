// Package serve hosts many independent simulated J-Machines behind an
// HTTP/JSON API — the multi-tenant serving experiment of ROADMAP item
// 3. Each session is one machine with its own engine shards, runtime,
// and observability sinks; sessions persist through internal/ckpt
// (periodic checkpoints, LRU eviction to disk under memory pressure,
// transparent restore on the next request, checkpoint-all on graceful
// shutdown).
//
// The layering rule that makes this safe: the service layer is fully
// concurrent (one HTTP request per goroutine), but every machine is
// owned by exactly one session and every session op runs under that
// session's mutex, between machine cycles, on whichever goroutine
// holds it. The simulation core itself never sees concurrency beyond
// what internal/engine already proves deterministic, so a session's
// final StateDigest depends only on its own request stream — never on
// how many neighbours it shares the daemon with (the equivalence tests
// pin this).
package serve

import (
	"errors"
	"fmt"

	"jmachine/internal/cst"
)

// Spec declares a session: what machine to build, which workload to
// load into it, and which persistence/observability layers to attach.
// It is written to the session directory verbatim and is everything
// needed to rebuild the machine after an eviction or a daemon crash.
type Spec struct {
	// Workload is "kv" (the distributed key-value/RPC service built on
	// the cst object runtime) or "jlang" (a compiled jlang program).
	Workload string `json:"workload"`
	// Nodes is the machine size (kv requires a power of two).
	Nodes int `json:"nodes"`
	// Shards > 1 steps the machine with the parallel engine; results
	// are byte-identical either way.
	Shards int `json:"shards,omitempty"`
	// Reference disables the event-horizon fast path.
	Reference bool `json:"reference,omitempty"`
	// Watchdog is the progress-watchdog window in cycles (0 = off).
	Watchdog int64 `json:"watchdog,omitempty"`
	// Budget is the per-request cycle budget (default 4,000,000).
	Budget int64 `json:"budget,omitempty"`

	// Source is the jlang program text (workload "jlang").
	Source string `json:"source,omitempty"`
	// Entry is the boot function (default "main").
	Entry string `json:"entry,omitempty"`
	// StartAll boots Entry on every node instead of node 0 only.
	StartAll bool `json:"start_all,omitempty"`

	// Keys is the kv key-space size (default 64).
	Keys int `json:"keys,omitempty"`
	// Gateways is how many nodes accept kv requests (default
	// min(4, Nodes)). Requests round-robin across them by sequence
	// number, so the request stream alone fixes the trajectory.
	Gateways int `json:"gateways,omitempty"`

	// Trace streams a Perfetto timeline to the session directory.
	Trace bool `json:"trace,omitempty"`
	// MetricsEvery samples JSONL metric snapshots every N cycles
	// (0 = off).
	MetricsEvery int `json:"metrics_every,omitempty"`

	// CkptEvery is the periodic checkpoint interval in cycles
	// (0 = ckpt.DefaultEvery). Checkpoints are also written after
	// every mutating request, on eviction, and on graceful shutdown.
	CkptEvery int64 `json:"ckpt_every,omitempty"`
}

// DefaultBudget is the per-request cycle budget when Spec.Budget is 0.
const DefaultBudget = 4_000_000

// Normalize fills defaults and validates, returning the effective spec.
func (s Spec) Normalize() (Spec, error) {
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.Budget <= 0 {
		s.Budget = DefaultBudget
	}
	switch s.Workload {
	case "kv":
		if s.Nodes&(s.Nodes-1) != 0 {
			return s, fmt.Errorf("kv workload requires a power-of-two node count, got %d", s.Nodes)
		}
		if s.Keys <= 0 {
			s.Keys = 64
		}
		if s.Keys > cst.KVKeyBase {
			return s, fmt.Errorf("keys %d exceeds the key-space limit %d", s.Keys, cst.KVKeyBase)
		}
		if s.Gateways <= 0 {
			s.Gateways = 4
		}
		if s.Gateways > s.Nodes {
			s.Gateways = s.Nodes
		}
	case "jlang":
		if s.Source == "" {
			return s, errors.New("jlang workload requires source")
		}
		if s.Entry == "" {
			s.Entry = "main"
		}
	default:
		return s, fmt.Errorf("unknown workload %q (want kv or jlang)", s.Workload)
	}
	return s, nil
}
