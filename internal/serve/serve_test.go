package serve

import (
	"sync"
	"testing"
)

func kvSpec(nodes, keys, gateways int) Spec {
	return Spec{Workload: "kv", Nodes: nodes, Keys: keys, Gateways: gateways}
}

const jlangSrc = `
	var out;
	func main() {
		out = (3 + 4) * 5;
		halt();
	}
`

func TestSpecNormalize(t *testing.T) {
	if _, err := (Spec{Workload: "kv", Nodes: 6}).Normalize(); err == nil {
		t.Error("non-power-of-two kv node count accepted")
	}
	if _, err := (Spec{Workload: "jlang"}).Normalize(); err == nil {
		t.Error("jlang without source accepted")
	}
	if _, err := (Spec{Workload: "weird"}).Normalize(); err == nil {
		t.Error("unknown workload accepted")
	}
	s, err := (Spec{Workload: "kv", Nodes: 8}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Keys == 0 || s.Gateways == 0 || s.Budget == 0 {
		t.Errorf("defaults not filled: %+v", s)
	}
}

func TestKVSessionServesOps(t *testing.T) {
	g, err := NewManager(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Create(kvSpec(4, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	apply := func(ops []KVOp) []KVResult {
		t.Helper()
		sess, release, err := g.Acquire(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		res, err := sess.KVApply(ops)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Two batches: ops within one batch race through the mesh (that is
	// the workload's point), but a batch only returns once every reply
	// landed, so batch boundaries order the put before the get.
	res := apply([]KVOp{{Op: "put", Key: 3, Value: 42}})
	res = append(res, apply([]KVOp{{Op: "get", Key: 3}})...)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	bySeq := map[int32]KVResult{}
	for _, r := range res {
		bySeq[r.Seq] = r
	}
	if got := bySeq[1]; got.Value != 42 || got.Version != 1 {
		t.Errorf("get returned value=%d version=%d, want 42/1", got.Value, got.Version)
	}
	for _, r := range res {
		if r.Latency <= 0 {
			t.Errorf("seq %d: latency %d, want > 0", r.Seq, r.Latency)
		}
	}
	// Different gateways serve consecutive seqs.
	if bySeq[0].Gateway == bySeq[1].Gateway {
		t.Errorf("seqs 0,1 both via gateway %d, want rotation", bySeq[0].Gateway)
	}
}

// TestEvictRestoreContinuity forces eviction churn and checks that a
// restored session continues exactly where it stopped: same digest
// trajectory as a never-evicted replay of the same op stream.
func TestEvictRestoreContinuity(t *testing.T) {
	g, err := NewManager(t.TempDir(), 1) // one resident slot: every switch evicts
	if err != nil {
		t.Fatal(err)
	}
	spec := kvSpec(4, 16, 2)
	a, err := g.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ops := GenOps(7, 16, 24)
	var reqs []ReplayReq
	for i := 0; i < len(ops); i += 4 {
		batch := ops[i : i+4]
		reqs = append(reqs, ReplayReq{Ops: batch})
		// Alternating sessions forces each request to restore from the
		// checkpoint the previous one wrote.
		for _, id := range []string{a.ID, b.ID} {
			sess, release, err := g.Acquire(id)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.KVApply(batch); err != nil {
				release()
				t.Fatal(err)
			}
			release()
		}
	}
	_, want, err := Replay(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		sess, release, err := g.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := sess.Digest()
		restores := sess.restores.Load()
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("session %s digest %016x, want %016x", id, got, want)
		}
		if restores == 0 {
			t.Errorf("session %s was never evicted; test exercised nothing", id)
		}
	}
}

// TestConcurrentSessionDeterminism is the tentpole invariant: N
// sessions running the same workload concurrently — with eviction
// churn from a small residency cap — each produce exactly the digest
// of a standalone run. Run under -race in CI.
func TestConcurrentSessionDeterminism(t *testing.T) {
	const sessions = 8
	g, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := kvSpec(8, 32, 4)
	ids := make([]string, sessions)
	for i := range ids {
		s, err := g.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID
	}
	ops := GenOps(42, 32, 40)
	var reqs []ReplayReq
	for i := 0; i < len(ops); i += 8 {
		reqs = append(reqs, ReplayReq{Ops: ops[i : i+8]})
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for _, req := range reqs {
				sess, release, err := g.Acquire(id)
				if err != nil {
					errs[i] = err
					return
				}
				_, err = sess.KVApply(req.Ops)
				release()
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", ids[i], err)
		}
	}
	_, want, err := Replay(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		sess, release, err := g.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := sess.Digest()
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("session %s digest %016x, want standalone %016x", id, got, want)
		}
	}
}

// TestCrashRecovery drops the manager without Shutdown — exactly what
// kill -9 leaves behind — and recovers the directory with a fresh one.
// Every session must come back at its last committed request with an
// identical digest.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	g, err := NewManager(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := kvSpec(4, 16, 2)
	ops := GenOps(3, 16, 12)
	digests := map[string]uint64{}
	for i := 0; i < 3; i++ {
		s, err := g.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		sess, release, err := g.Acquire(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.KVApply(ops[:4*(i+1)]); err != nil {
			t.Fatal(err)
		}
		_, d, err := sess.Digest()
		release()
		if err != nil {
			t.Fatal(err)
		}
		digests[s.ID] = d
	}
	// No Shutdown: the on-disk state is whatever the per-request
	// commits left. A fresh manager must recover all three.
	g2, err := NewManager(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g2.List()); got != 3 {
		t.Fatalf("recovered %d sessions, want 3", got)
	}
	for id, want := range digests {
		sess, release, err := g2.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := sess.Digest()
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("recovered %s digest %016x, want %016x", id, got, want)
		}
	}
	// New sessions must not collide with recovered IDs.
	s4, err := g2.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := digests[s4.ID]; ok {
		t.Errorf("new session reused recovered ID %s", s4.ID)
	}
}

func TestJlangSession(t *testing.T) {
	g, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Create(Spec{Workload: "jlang", Nodes: 2, Source: jlangSrc})
	if err != nil {
		t.Fatal(err)
	}
	sess, release, err := g.Acquire(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, quiescent, err := sess.Run(0)
	if err != nil {
		release()
		t.Fatal(err)
	}
	_, want, err := sess.Digest()
	release()
	if err != nil {
		t.Fatal(err)
	}
	if !quiescent {
		t.Error("jlang program did not quiesce within budget")
	}
	_, got, err := Replay(Spec{Workload: "jlang", Nodes: 2, Source: jlangSrc}, []ReplayReq{{Run: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("served digest %016x, standalone %016x", want, got)
	}
}

func TestShutdownThenRecover(t *testing.T) {
	dir := t.TempDir()
	g, err := NewManager(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := kvSpec(4, 8, 2)
	s, err := g.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	sess, release, err := g.Acquire(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.KVApply([]KVOp{{Op: "put", Key: 1, Value: 9}}); err != nil {
		t.Fatal(err)
	}
	_, want, _ := sess.Digest()
	release()
	if err := g.Shutdown(); err != nil {
		t.Fatal(err)
	}
	g2, err := NewManager(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	sess, release, err = g2.Acquire(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := sess.Digest()
	release()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("digest after shutdown/recover %016x, want %016x", got, want)
	}
}

func TestDeleteSession(t *testing.T) {
	g, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Create(kvSpec(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Delete(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Acquire(s.ID); err == nil {
		t.Error("acquired a deleted session")
	}
	if err := g.Delete(s.ID); err == nil {
		t.Error("double delete succeeded")
	}
}
