package serve

import (
	"fmt"
	"math/rand"
)

// GenOps returns a deterministic kv op stream: same seed, keys, and
// count ⇒ same ops, forever. jm-load generates its traffic with this
// and the verification path regenerates the identical stream to replay
// standalone, so "zero digest divergence" is checkable without
// recording anything.
func GenOps(seed int64, keys, n int) []KVOp {
	rng := rand.New(rand.NewSource(seed)) //jm:determinism seeded per stream, never the global source
	ops := make([]KVOp, n)
	for i := range ops {
		key := int32(rng.Intn(keys))
		// 50/50 read/write mix; a put's value encodes its position so
		// replies are checkable.
		if rng.Intn(2) == 0 {
			ops[i] = KVOp{Op: "put", Key: key, Value: int32(i + 1)}
		} else {
			ops[i] = KVOp{Op: "get", Key: key}
		}
	}
	return ops
}

// ReplayReq is one request of a session's recorded stream: exactly one
// of Ops, Step, or Run is meaningful per entry (Ops when non-empty,
// else Step when positive, else Run).
type ReplayReq struct {
	Ops  []KVOp
	Step int64
	Run  int64
}

// Replay executes a session's request stream in-process — no HTTP, no
// checkpointing, no observability — and returns the final cycle and
// StateDigest. Because every persistence and observability layer is
// digest-neutral and a session's trajectory depends only on its own
// request stream, this must equal the digest the daemon reports after
// serving the same stream, no matter how many concurrent tenants it
// hosted or how often the session was evicted and restored in between.
func Replay(spec Spec, reqs []ReplayReq) (int64, uint64, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return 0, 0, err
	}
	spec.Trace = false
	spec.MetricsEvery = 0
	s := newSession("replay", spec, "")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.start(false); err != nil {
		return 0, 0, err
	}
	defer s.teardown()
	for i, req := range reqs {
		switch {
		case len(req.Ops) > 0:
			if _, err := s.KVApply(req.Ops); err != nil {
				return 0, 0, fmt.Errorf("replay req %d: %w", i, err)
			}
		case req.Step > 0:
			if _, err := s.StepCycles(req.Step); err != nil {
				return 0, 0, fmt.Errorf("replay req %d: %w", i, err)
			}
		default:
			if _, _, err := s.Run(req.Run); err != nil {
				return 0, 0, fmt.Errorf("replay req %d: %w", i, err)
			}
		}
	}
	cycle, digest, err := s.Digest()
	if err != nil {
		return 0, 0, err
	}
	return cycle, digest, nil
}
