package serve

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"jmachine/internal/asm"
	"jmachine/internal/ckpt"
	"jmachine/internal/ckpt/wire"
	"jmachine/internal/cst"
	"jmachine/internal/engine"
	"jmachine/internal/jlang"
	"jmachine/internal/machine"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Session is one hosted machine. All simulation access goes through mu
// — the machine only ever steps on the goroutine holding it, so the
// fully concurrent HTTP layer above cannot perturb the deterministic
// core below.
type Session struct {
	ID   string
	Spec Spec // normalized

	mu       sync.Mutex
	resident bool
	m        *machine.Machine
	r        *rt.Runtime
	eng      *engine.Engine
	layers   *ckpt.Layers
	rec      *obs.Recorder
	obsBufs  []*bufio.Writer
	obsFiles []*os.File
	kv       *kvDriver

	dir      string       // session directory ("" = ephemeral: no ckpt, no obs)
	lastUsed int64        // manager's LRU clock; guarded by the manager's mu
	cycle    atomic.Int64 // last observed cycle, for lock-free listings
	requests atomic.Int64 // mutating requests served
	restores atomic.Int64 // evict/restore round-trips survived
}

func newSession(id string, spec Spec, dir string) *Session {
	return &Session{ID: id, Spec: spec, dir: dir}
}

func (s *Session) ckptPath() string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, "state.ckpt")
}

// TimelinePath is the on-disk Perfetto timeline ("" when tracing is
// off or the session is ephemeral).
func (s *Session) TimelinePath() string {
	if s.dir == "" || !s.Spec.Trace {
		return ""
	}
	return filepath.Join(s.dir, "perfetto.json")
}

// MetricsPath is the on-disk JSONL metric-snapshot stream.
func (s *Session) MetricsPath() string {
	if s.dir == "" || s.Spec.MetricsEvery <= 0 {
		return ""
	}
	return filepath.Join(s.dir, "metrics.jsonl")
}

// start builds the machine from the spec and — when resume is set —
// restores the session checkpoint over it. Mirrors the command-line
// restore contract (docs/CHECKPOINT.md): the workload's start-up runs
// first so the layer stack matches the one that saved, then
// layers.PreRun rewinds the state. Caller holds s.mu.
func (s *Session) start(resume bool) error {
	spec := s.Spec
	var savers []ckpt.Saver
	switch spec.Workload {
	case "kv":
		p := cst.BuildKVProgram()
		m, err := machine.New(machine.GridForNodes(spec.Nodes), p)
		if err != nil {
			return err
		}
		r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
		for id := range m.Nodes {
			cst.SetupKVNode(r, m, id, spec.Keys)
		}
		s.m, s.r = m, r
		s.kv = newKVDriver(p, spec.Gateways)
		savers = []ckpt.Saver{r, s.kv}
	case "jlang":
		c, err := jlang.Compile(spec.Source)
		if err != nil {
			return fmt.Errorf("compile: %w", err)
		}
		if !c.Program.HasLabel(spec.Entry) {
			return fmt.Errorf("program has no func %s()", spec.Entry)
		}
		m, err := machine.New(machine.GridForNodes(spec.Nodes), c.Program)
		if err != nil {
			return err
		}
		r := rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
		if spec.StartAll {
			rt.StartAll(m, c.Program, spec.Entry)
		} else {
			rt.StartNode(m, c.Program, 0, spec.Entry)
		}
		s.m, s.r = m, r
		savers = []ckpt.Saver{r}
	default:
		return fmt.Errorf("unknown workload %q", spec.Workload)
	}
	if spec.Reference {
		s.m.SetFastPath(false)
	}
	if spec.Watchdog > 0 {
		s.m.SetWatchdog(spec.Watchdog)
	}
	if err := s.attachObs(); err != nil {
		s.teardown()
		return err
	}
	s.layers = ckpt.Flags{Path: s.ckptPath(), Every: spec.CkptEvery, Resume: resume}.Attach(s.m, savers...)
	if err := s.layers.PreRun(); err != nil {
		s.teardown()
		return fmt.Errorf("session %s: %w", s.ID, err)
	}
	if spec.Shards > 1 {
		s.eng = engine.Attach(s.m, spec.Shards)
	}
	s.resident = true
	s.cycle.Store(s.m.Cycle())
	if resume {
		s.restores.Add(1)
	}
	return nil
}

// attachObs opens the trace/metric sinks in the session directory.
// Files are recreated per residency: a restored session's timeline
// restarts at the restore point (the checkpoint holds simulation
// state, not observability history).
func (s *Session) attachObs() error {
	cfg := obs.Config{}
	open := func(path string) (*bufio.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		s.obsFiles = append(s.obsFiles, f)
		b := bufio.NewWriterSize(f, 1<<16)
		s.obsBufs = append(s.obsBufs, b)
		return b, nil
	}
	if p := s.TimelinePath(); p != "" {
		w, err := open(p)
		if err != nil {
			return err
		}
		cfg.Perfetto = w
		cfg.SampleEvery = 64
	}
	if p := s.MetricsPath(); p != "" {
		w, err := open(p)
		if err != nil {
			return err
		}
		cfg.Metrics = w
		cfg.MetricsEvery = s.Spec.MetricsEvery
	}
	if cfg.Perfetto == nil && cfg.Metrics == nil {
		return nil
	}
	if len(s.m.Nodes) > 0 && s.m.Nodes[0].Prog != nil {
		cfg.HandlerName = obs.HandlerNames(s.m.Nodes[0].Prog.Labels)
	}
	s.rec = obs.Attach(s.m, cfg)
	return nil
}

// teardown releases the machine and every attached layer. Caller holds
// s.mu. The session stays registered; start can rebuild it.
func (s *Session) teardown() {
	s.eng.Stop()
	s.rec.Close()
	for _, b := range s.obsBufs {
		b.Flush()
	}
	for _, f := range s.obsFiles {
		f.Close()
	}
	s.obsBufs, s.obsFiles = nil, nil
	s.eng, s.rec, s.layers = nil, nil, nil
	s.m, s.r, s.kv = nil, nil, nil
	s.resident = false
}

// suspend checkpoints the session and evicts it from memory. Caller
// holds s.mu.
func (s *Session) suspend() error {
	if !s.resident {
		return nil
	}
	err := s.layers.WriteNow()
	s.teardown()
	return err
}

// commit checkpoints after a mutating request so a killed daemon
// resumes at exactly the last completed request. Caller holds s.mu.
func (s *Session) commit() error {
	s.cycle.Store(s.m.Cycle())
	s.requests.Add(1)
	return s.layers.WriteNow()
}

// ErrNotResident is returned by ops on an evicted session; the manager
// restores before dispatching, so a caller seeing this bypassed it.
var ErrNotResident = errors.New("session not resident")

// StepCycles advances the machine n cycles.
func (s *Session) StepCycles(n int64) (int64, error) {
	if !s.resident {
		return 0, ErrNotResident
	}
	if n <= 0 {
		return s.m.Cycle(), nil
	}
	if max := s.Spec.Budget; n > max {
		n = max
	}
	s.m.StepN(n)
	if err := s.m.FatalErr(); err != nil {
		return s.m.Cycle(), err
	}
	return s.m.Cycle(), s.commit()
}

// Run steps until quiescence or the budget expires; reports whether the
// machine went quiescent.
func (s *Session) Run(budget int64) (int64, bool, error) {
	if !s.resident {
		return 0, false, ErrNotResident
	}
	if budget <= 0 || budget > s.Spec.Budget {
		budget = s.Spec.Budget
	}
	err := s.m.RunQuiescent(budget)
	var lim machine.ErrCycleLimit
	if errors.As(err, &lim) {
		err = nil // budget exhaustion is a normal outcome, not a fault
	}
	if err != nil {
		return s.m.Cycle(), false, err
	}
	return s.m.Cycle(), s.m.Quiescent(), s.commit()
}

// Digest reports the current cycle and StateDigest.
func (s *Session) Digest() (int64, uint64, error) {
	if !s.resident {
		return 0, 0, ErrNotResident
	}
	return s.m.Cycle(), s.m.StateDigest(), nil
}

// Snapshot returns the machine-wide metric snapshot.
func (s *Session) Snapshot() (obs.Snapshot, error) {
	if !s.resident {
		return obs.Snapshot{}, ErrNotResident
	}
	return obs.TakeSnapshot(s.m), nil
}

// Checkpoint forces an immediate checkpoint write.
func (s *Session) Checkpoint() error {
	if !s.resident {
		return ErrNotResident
	}
	return s.layers.WriteNow()
}

// SyncObs drains the observability sinks to disk so the timeline and
// metrics endpoints can stream a consistent mid-run prefix.
func (s *Session) SyncObs() error {
	if !s.resident {
		return ErrNotResident
	}
	if err := s.rec.Sync(); err != nil {
		return err
	}
	for _, b := range s.obsBufs {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// KVOp is one key-value request.
type KVOp struct {
	Op    string `json:"op"` // "put" or "get"
	Key   int32  `json:"key"`
	Value int32  `json:"value,omitempty"`
}

// KVResult is the reply to one KVOp.
type KVResult struct {
	Seq     int32 `json:"seq"`
	Gateway int   `json:"gateway"`
	Value   int32 `json:"value"`
	Version int32 `json:"version"`
	// Latency is mesh round-trip time in machine cycles: injection at
	// the gateway to the reply landing in its mailbox.
	Latency int64 `json:"latency_cycles"`
}

// KVApply injects a batch of kv requests and runs the machine until
// every reply lands. The trajectory — and therefore the StateDigest —
// is a pure function of the accumulated op stream: gateways rotate by
// sequence number and injection cycles are determined by queue
// back-pressure alone.
func (s *Session) KVApply(ops []KVOp) ([]KVResult, error) {
	if !s.resident {
		return nil, ErrNotResident
	}
	if s.kv == nil {
		return nil, errors.New("not a kv session")
	}
	if len(ops) == 0 {
		return nil, nil
	}
	if max := cst.KVMailRecords * s.kv.gateways; len(ops) > max {
		return nil, fmt.Errorf("batch of %d exceeds mailbox capacity %d", len(ops), max)
	}
	res, err := s.kv.apply(s.m, s.Spec, ops)
	if err != nil {
		return res, err
	}
	return res, s.commit()
}

// kvDriver is the host side of the kv workload: it assigns sequence
// numbers, rotates gateways, and tracks each gateway's consumed
// mailbox cursor. It persists as its own checkpoint section so a
// restored session keeps numbering exactly where it stopped.
type kvDriver struct {
	prog     *asm.Program
	gateways int
	nextSeq  int32
	consumed []int32 // per-gateway replies already harvested
}

func newKVDriver(p *asm.Program, gateways int) *kvDriver {
	return &kvDriver{prog: p, gateways: gateways, consumed: make([]int32, gateways)}
}

func (k *kvDriver) CkptName() string { return "serve.kv" }

func (k *kvDriver) CkptSave(e *wire.Encoder) {
	e.I32(k.nextSeq)
	e.Int(len(k.consumed))
	for _, c := range k.consumed {
		e.I32(c)
	}
}

func (k *kvDriver) CkptRestore(d *wire.Decoder) error {
	seq := d.I32()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(k.consumed) {
		return fmt.Errorf("checkpoint has %d gateways, session has %d", n, len(k.consumed))
	}
	cons := make([]int32, n)
	for i := range cons {
		cons[i] = d.I32()
	}
	if err := d.Err(); err != nil {
		return err
	}
	k.nextSeq = seq
	k.consumed = cons
	return nil
}

func (k *kvDriver) apply(m *machine.Machine, spec Spec, ops []KVOp) ([]KVResult, error) {
	type pending struct {
		gw       int
		injected int64
	}
	inflight := make(map[int32]pending, len(ops))
	expect := make([]int32, k.gateways)
	for _, op := range ops {
		if op.Key < 0 || int(op.Key) >= spec.Keys {
			return nil, fmt.Errorf("key %d outside key space [0,%d)", op.Key, spec.Keys)
		}
		seq := k.nextSeq
		gw := int(seq) % k.gateways
		var msg []word.Word
		switch op.Op {
		case "put":
			msg = cst.KVPutMsg(k.prog, op.Key, op.Value, seq)
		case "get":
			msg = cst.KVGetMsg(k.prog, op.Key, seq)
		default:
			return nil, fmt.Errorf("unknown op %q (want put or get)", op.Op)
		}
		if err := injectRetry(m, gw, msg, spec.Budget); err != nil {
			return nil, err
		}
		k.nextSeq++
		inflight[seq] = pending{gw: gw, injected: m.Cycle()}
		expect[gw]++
	}
	// Run until every gateway's mailbox cursor covers this batch.
	err := m.RunWhile(func(m *machine.Machine) bool {
		for gw := 0; gw < k.gateways; gw++ {
			if cst.KVMailCursor(m, gw) < k.consumed[gw]+expect[gw] {
				return true
			}
		}
		return false
	}, spec.Budget)
	if err != nil {
		return nil, fmt.Errorf("kv batch: %w", err)
	}
	results := make([]KVResult, 0, len(ops))
	for gw := 0; gw < k.gateways; gw++ {
		if expect[gw] == 0 {
			continue
		}
		for _, rep := range cst.KVHarvest(m, gw, k.consumed[gw], k.consumed[gw]+expect[gw]) {
			p, ok := inflight[rep.Seq]
			if !ok {
				return nil, fmt.Errorf("gateway %d delivered unknown seq %d", gw, rep.Seq)
			}
			results = append(results, KVResult{
				Seq:     rep.Seq,
				Gateway: p.gw,
				Value:   rep.Value,
				Version: rep.Version,
				Latency: int64(rep.Cycle) - p.injected,
			})
		}
		k.consumed[gw] += expect[gw]
	}
	return results, nil
}

// injectRetry pushes msg into gateway gw's priority-0 queue, stepping
// the machine to drain back-pressure when the queue is full.
func injectRetry(m *machine.Machine, gw int, msg []word.Word, budget int64) error {
	start := m.Cycle()
	for !m.Inject(gw, 0, msg) {
		if m.Cycle()-start > budget {
			return fmt.Errorf("gateway %d queue never drained in %d cycles", gw, budget)
		}
		m.StepN(16)
		if err := m.FatalErr(); err != nil {
			return err
		}
	}
	return nil
}
