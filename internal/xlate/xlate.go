// Package xlate models the MDP's hardware name-translation table.
//
// The MDP supports a global namespace with name-translation instructions:
// virtual-physical pairs are inserted with ENTER and extracted with XLATE.
// A successful XLATE takes three cycles; a miss faults to system software.
// The hardware table is a bounded set-associative cache, so entries can be
// evicted and must be re-insertable by the fault handler — this is what
// makes the low xlate miss ratios of Table 5 meaningful.
package xlate

import "jmachine/internal/word"

// Geometry of the translation table. The MDP's table held on the order of
// a few hundred entries; two-way associativity reproduces the
// eviction-on-conflict behaviour the CST runtime must tolerate.
const (
	DefaultSets = 128
	DefaultWays = 2
)

// Table is one node's name-translation cache.
type Table struct {
	sets int
	ways int
	// keys/vals/valid are sets×ways, row-major. lru holds the way to
	// evict next for each set (strict LRU for 2 ways).
	keys  []word.Word
	vals  []word.Word
	valid []bool
	lru   []uint8

	hits      uint64
	misses    uint64
	inserts   uint64
	evictions uint64
}

// New returns a table with the given geometry; zero values select the
// defaults.
func New(sets, ways int) *Table {
	if sets <= 0 {
		sets = DefaultSets
	}
	if ways <= 0 {
		ways = DefaultWays
	}
	n := sets * ways
	return &Table{
		sets:  sets,
		ways:  ways,
		keys:  make([]word.Word, n),
		vals:  make([]word.Word, n),
		valid: make([]bool, n),
		lru:   make([]uint8, sets),
	}
}

func (t *Table) set(key word.Word) int {
	// Keys are full tagged words: two names differing only in tag are
	// distinct, exactly as on the MDP.
	h := uint64(key)
	h ^= h >> 17
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(t.sets))
}

// Enter inserts or replaces the pair (key → val), evicting the
// least-recently-used way on conflict.
func (t *Table) Enter(key, val word.Word) {
	t.inserts++
	s := t.set(key)
	base := s * t.ways
	// Replace an existing entry for the key, else fill an invalid way.
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.keys[base+w] == key {
			t.vals[base+w] = val
			t.touch(s, w)
			return
		}
	}
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] {
			t.keys[base+w] = key
			t.vals[base+w] = val
			t.valid[base+w] = true
			t.touch(s, w)
			return
		}
	}
	w := int(t.lru[s]) % t.ways
	t.evictions++
	t.keys[base+w] = key
	t.vals[base+w] = val
	t.touch(s, w)
}

// Lookup translates key. ok is false on a miss, which the processor turns
// into a fault serviced by system software.
func (t *Table) Lookup(key word.Word) (val word.Word, ok bool) {
	s := t.set(key)
	base := s * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.keys[base+w] == key {
			t.hits++
			t.touch(s, w)
			return t.vals[base+w], true
		}
	}
	t.misses++
	return 0, false
}

// Probe is Lookup without statistics or LRU side effects (the PROBE
// instruction and fault handlers use it).
func (t *Table) Probe(key word.Word) (val word.Word, ok bool) {
	s := t.set(key)
	base := s * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.keys[base+w] == key {
			return t.vals[base+w], true
		}
	}
	return 0, false
}

// Invalidate removes key from the table if present.
func (t *Table) Invalidate(key word.Word) {
	s := t.set(key)
	base := s * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.keys[base+w] == key {
			t.valid[base+w] = false
			return
		}
	}
}

// touch records way w of set s as most recently used.
func (t *Table) touch(s, w int) {
	if t.ways == 2 {
		t.lru[s] = uint8(1 - w)
		return
	}
	t.lru[s] = uint8((w + 1) % t.ways)
}

// Stats reports accumulated counters: hits, misses, inserts, evictions.
type Stats struct {
	Hits, Misses, Inserts, Evictions uint64
}

// Stats returns the table's counters.
func (t *Table) Stats() Stats {
	return Stats{Hits: t.hits, Misses: t.misses, Inserts: t.inserts, Evictions: t.evictions}
}

// MissRatio returns misses/(hits+misses), or 0 with no traffic.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}
