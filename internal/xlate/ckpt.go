package xlate

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/word"
)

// SaveState serializes the translation table: geometry (verified on
// restore), every way's key/value/valid triple, the per-set LRU state,
// and the counters.
func (t *Table) SaveState(e *wire.Encoder) {
	e.Int(t.sets)
	e.Int(t.ways)
	for i := range t.keys {
		e.U64(uint64(t.keys[i]))
		e.U64(uint64(t.vals[i]))
		e.Bool(t.valid[i])
	}
	for _, w := range t.lru {
		e.U8(w)
	}
	e.U64(t.hits)
	e.U64(t.misses)
	e.U64(t.inserts)
	e.U64(t.evictions)
}

// RestoreState rebuilds the table in place.
func (t *Table) RestoreState(d *wire.Decoder) error {
	if s, w := d.Int(), d.Int(); s != t.sets || w != t.ways {
		return fmt.Errorf("xlate: checkpoint geometry %d×%d != configured %d×%d", s, w, t.sets, t.ways)
	}
	for i := range t.keys {
		t.keys[i] = word.Word(d.U64())
		t.vals[i] = word.Word(d.U64())
		t.valid[i] = d.Bool()
	}
	for i := range t.lru {
		t.lru[i] = d.U8()
	}
	t.hits = d.U64()
	t.misses = d.U64()
	t.inserts = d.U64()
	t.evictions = d.U64()
	return d.Err()
}
