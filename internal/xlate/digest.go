package xlate

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the translation table's entries, LRU state, and
// counters into a running 64-bit digest, for the engine equivalence
// suite.
func (t *Table) StateDigest(h uint64) uint64 {
	for i := range t.keys {
		var v uint64
		if t.valid[i] {
			v = 1
		}
		h = mix(h, v)
		h = mix(h, uint64(t.keys[i]))
		h = mix(h, uint64(t.vals[i]))
	}
	for _, w := range t.lru {
		h = mix(h, uint64(w))
	}
	h = mix(h, t.hits)
	h = mix(h, t.misses)
	h = mix(h, t.inserts)
	h = mix(h, t.evictions)
	return h
}
