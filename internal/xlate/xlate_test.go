package xlate

import (
	"testing"
	"testing/quick"

	"jmachine/internal/word"
)

func TestEnterLookup(t *testing.T) {
	tb := New(0, 0)
	k := word.New(word.TagPtr, 42)
	v := word.New(word.TagAddr, 1000)
	tb.Enter(k, v)
	got, ok := tb.Lookup(k)
	if !ok || got != v {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := tb.Lookup(word.New(word.TagPtr, 43)); ok {
		t.Error("lookup of absent key succeeded")
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestKeysDistinguishedByTag(t *testing.T) {
	tb := New(0, 0)
	tb.Enter(word.New(word.TagPtr, 7), word.Int(1))
	tb.Enter(word.New(word.TagSym, 7), word.Int(2))
	if v, ok := tb.Lookup(word.New(word.TagPtr, 7)); !ok || v.Data() != 1 {
		t.Error("ptr-tagged key lost")
	}
	if v, ok := tb.Lookup(word.New(word.TagSym, 7)); !ok || v.Data() != 2 {
		t.Error("sym-tagged key lost")
	}
}

func TestReplaceExisting(t *testing.T) {
	tb := New(0, 0)
	k := word.New(word.TagPtr, 1)
	tb.Enter(k, word.Int(10))
	tb.Enter(k, word.Int(20))
	if v, _ := tb.Lookup(k); v.Data() != 20 {
		t.Errorf("replacement lost: %v", v)
	}
}

func TestEvictionOnConflict(t *testing.T) {
	// A 1-set, 2-way table: the third distinct key must evict the LRU.
	tb := New(1, 2)
	k1 := word.New(word.TagPtr, 1)
	k2 := word.New(word.TagPtr, 2)
	k3 := word.New(word.TagPtr, 3)
	tb.Enter(k1, word.Int(1))
	tb.Enter(k2, word.Int(2))
	tb.Lookup(k1) // k2 becomes LRU
	tb.Enter(k3, word.Int(3))
	if _, ok := tb.Probe(k2); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := tb.Probe(k1); !ok {
		t.Error("MRU entry evicted")
	}
	if tb.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tb.Stats().Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	tb := New(0, 0)
	k := word.New(word.TagPtr, 5)
	tb.Enter(k, word.Int(1))
	tb.Invalidate(k)
	if _, ok := tb.Probe(k); ok {
		t.Error("invalidated key still present")
	}
	tb.Invalidate(k) // idempotent
}

func TestProbeHasNoSideEffects(t *testing.T) {
	tb := New(0, 0)
	tb.Probe(word.New(word.TagPtr, 9))
	s := tb.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("probe affected stats: %+v", s)
	}
}

func TestLookupAfterManyInsertsProperty(t *testing.T) {
	// Whatever was most recently entered for a key is returned by an
	// immediate lookup, regardless of eviction history.
	f := func(keys []int32) bool {
		tb := New(8, 2)
		for _, k := range keys {
			kw := word.New(word.TagPtr, k)
			tb.Enter(kw, word.Int(k^0x5A5A))
			v, ok := tb.Lookup(kw)
			if !ok || v.Data() != k^0x5A5A {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissRatio(t *testing.T) {
	s := Stats{Hits: 99, Misses: 1}
	if r := s.MissRatio(); r != 0.01 {
		t.Errorf("MissRatio = %v", r)
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty MissRatio should be 0")
	}
}
