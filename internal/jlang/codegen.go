package jlang

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/mem"
	"jmachine/internal/rt"
)

// Code generation. Like the original J compiler ("the J compiler
// currently produces inefficient code"), this one favours simplicity:
// expressions evaluate into R0 with intermediates spilled to frame
// temporaries, every variable access re-materializes its address, and
// functions use static frames (recursion is rejected). Hand-tuned
// assembly can be linked alongside for critical sequences, exactly as
// the paper's applications did.

// Compiled is a compiled program plus its symbol information.
type Compiled struct {
	Program *asm.Program
	// Globals maps each global variable to its word address.
	Globals map[string]int32
	// Funcs and Handlers list the defined entry labels.
	Funcs    []string
	Handlers []string
}

// Entry returns the code address of a function or handler.
func (c *Compiled) Entry(name string) int32 { return c.Program.Entry(name) }

// Compile compiles source and links the runtime library.
func Compile(src string) (*Compiled, error) {
	b := asm.NewBuilder()
	info, err := CompileInto(b, src)
	if err != nil {
		return nil, err
	}
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	info.Program = p
	return info, nil
}

// CompileInto emits the program into an existing builder (for linking
// with hand-written assembly); the caller appends rt.BuildLib and
// assembles.
func CompileInto(b *asm.Builder, src string) (*Compiled, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	g := &gen{
		b:        b,
		globals:  make(map[string]*symbol),
		funcs:    make(map[string]*FuncDecl),
		frames:   make(map[string]*frame),
		imemNext: rt.AppBase,
		ememNext: int32(mem.DefaultImemWords),
	}
	if err := g.declare(file); err != nil {
		return nil, err
	}
	if err := g.checkRecursion(); err != nil {
		return nil, err
	}
	all := append(append([]*FuncDecl{}, file.Funcs...), file.Handlers...)
	for _, fn := range all {
		if err := g.genFunc(fn); err != nil {
			return nil, err
		}
	}
	out := &Compiled{Globals: make(map[string]int32)}
	for name, s := range g.globals {
		out.Globals[name] = s.addr
	}
	for _, fn := range file.Funcs {
		out.Funcs = append(out.Funcs, fn.Name)
	}
	for _, fn := range file.Handlers {
		out.Handlers = append(out.Handlers, fn.Name)
	}
	return out, nil
}

// symbol is a storage location (global, param, local, or temp).
type symbol struct {
	addr  int32
	size  int32 // 0 = scalar
	array bool
}

// frame is one function's static activation record.
type frame struct {
	fn    *FuncDecl
	slots map[string]*symbol
	base  int32
	// link slot is base+0; params and locals follow; temps grow above.
	tempBase int32
	tempSP   int32
	tempMax  int32
}

const maxTemps = 24

type gen struct {
	b        *asm.Builder
	globals  map[string]*symbol
	funcs    map[string]*FuncDecl
	frames   map[string]*frame
	imemNext int32
	ememNext int32
	cur      *frame
	labelSeq int
	// term is true while the most recently emitted statement ended its
	// control path (return, halt(), suspend()). Codegen consults it to
	// avoid emitting unreachable jumps and epilogues, which the static
	// verifier (internal/asm.Check) would flag as ASM004 dead code.
	term bool
}

// declare allocates globals and frames, and registers functions.
func (g *gen) declare(f *File) error {
	for _, d := range f.Globals {
		if _, dup := g.globals[d.Name]; dup {
			return errf(d.Line, 1, "global %q redeclared", d.Name)
		}
		words := d.Size
		if words == 0 {
			words = 1
		}
		s := &symbol{size: d.Size, array: d.Size > 0}
		if d.External {
			s.addr = g.ememNext
			g.ememNext += words
		} else {
			s.addr = g.imemNext
			g.imemNext += words
		}
		g.globals[d.Name] = s
	}
	all := append(append([]*FuncDecl{}, f.Funcs...), f.Handlers...)
	for _, fn := range all {
		if _, dup := g.funcs[fn.Name]; dup {
			return errf(fn.Line, 1, "function %q redeclared", fn.Name)
		}
		if isBuiltin(fn.Name) {
			return errf(fn.Line, 1, "%q is a builtin", fn.Name)
		}
		g.funcs[fn.Name] = fn
	}
	// Lay out every function's static frame up front so calls can
	// address callee parameter slots directly.
	for _, fn := range all {
		fr, err := g.buildFrame(fn)
		if err != nil {
			return err
		}
		g.frames[fn.Name] = fr
	}
	if g.imemNext >= int32(mem.DefaultImemWords) {
		return errf(1, 1, "internal-memory globals and frames overflow on-chip SRAM (%d words)", g.imemNext)
	}
	return nil
}

// buildFrame allocates one function's activation record: link slot,
// parameters, locals, then the temporary spill stack.
func (g *gen) buildFrame(fn *FuncDecl) (*frame, *Error) {
	fr := &frame{fn: fn, slots: make(map[string]*symbol), base: g.imemNext}
	next := fr.base
	next++ // link slot
	for _, p := range fn.Params {
		if _, dup := fr.slots[p]; dup {
			return nil, errf(fn.Line, 1, "parameter %q repeated", p)
		}
		fr.slots[p] = &symbol{addr: next}
		next++
	}
	for _, l := range fn.Locals {
		if _, dup := fr.slots[l.Name]; dup {
			return nil, errf(l.Line, 1, "local %q redeclared", l.Name)
		}
		words := l.Size
		if words == 0 {
			words = 1
		}
		fr.slots[l.Name] = &symbol{addr: next, size: l.Size, array: l.Size > 0}
		next += words
	}
	fr.tempBase = next
	next += maxTemps
	g.imemNext = next
	return fr, nil
}

// checkRecursion rejects call cycles: frames are static.
func (g *gen) checkRecursion() error {
	color := make(map[string]int) // 0 white, 1 grey, 2 black
	var visit func(name string, line int) error
	visit = func(name string, line int) error {
		switch color[name] {
		case 1:
			return errf(line, 1, "recursive call involving %q (frames are static)", name)
		case 2:
			return nil
		}
		color[name] = 1
		fn := g.funcs[name]
		var walkStmts func([]Stmt) error
		var walkExpr func(Expr) error
		walkExpr = func(e Expr) error {
			switch x := e.(type) {
			case *BinExpr:
				if err := walkExpr(x.L); err != nil {
					return err
				}
				return walkExpr(x.R)
			case *UnExpr:
				return walkExpr(x.X)
			case *VarRef:
				if x.Index != nil {
					return walkExpr(x.Index)
				}
			case *CallExpr:
				for _, a := range x.Args {
					if err := walkExpr(a); err != nil {
						return err
					}
				}
				if _, user := g.funcs[x.Name]; user {
					return visit(x.Name, x.Line)
				}
			}
			return nil
		}
		walkStmts = func(ss []Stmt) error {
			for _, s := range ss {
				switch st := s.(type) {
				case *AssignStmt:
					if st.Target.Index != nil {
						if err := walkExpr(st.Target.Index); err != nil {
							return err
						}
					}
					if err := walkExpr(st.Value); err != nil {
						return err
					}
				case *IfStmt:
					if err := walkExpr(st.Cond); err != nil {
						return err
					}
					if err := walkStmts(st.Then); err != nil {
						return err
					}
					if err := walkStmts(st.Else); err != nil {
						return err
					}
				case *WhileStmt:
					if err := walkExpr(st.Cond); err != nil {
						return err
					}
					if err := walkStmts(st.Body); err != nil {
						return err
					}
				case *ExprStmt:
					if err := walkExpr(st.X); err != nil {
						return err
					}
				case *ReturnStmt:
					if st.Value != nil {
						if err := walkExpr(st.Value); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}
		if err := walkStmts(fn.Body); err != nil {
			return err
		}
		color[name] = 2
		return nil
	}
	for name, fn := range g.funcs {
		if err := visit(name, fn.Line); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s.L%d", g.cur.fn.Name, g.labelSeq)
}

// genFunc emits one function's body against its preallocated frame.
func (g *gen) genFunc(fn *FuncDecl) error {
	fr := g.frames[fn.Name]
	g.cur = fr

	g.b.Label(fn.Name)
	g.term = false
	switch {
	case fn.Handler:
		// Unpack message words 1..n into parameter slots.
		for i, p := range fn.Params {
			g.b.Move(isa.R0, asm.Mem(isa.A3, int32(1+i)))
			g.storeScalar(fr.slots[p].addr)
		}
	case fn.Name == "main":
		// main is a boot entry, dispatched rather than called: there is
		// no return link in R3 to save.
	default:
		// Save the return link.
		g.b.MoveI(isa.A0, fr.base)
		g.b.St(isa.R3, asm.Mem(isa.A0, 0))
	}
	if err := g.genStmts(fn.Body); err != nil {
		return err
	}
	if !g.term {
		g.emitReturn(fn)
	}
	g.cur = nil
	return nil
}

// emitReturn ends a function (restore link, jump), a handler (suspend),
// or main (halt: a boot entry has no caller to return to).
func (g *gen) emitReturn(fn *FuncDecl) {
	g.term = true
	if fn.Handler {
		g.b.Suspend()
		return
	}
	if fn.Name == "main" {
		g.b.Halt()
		return
	}
	g.b.MoveI(isa.A0, g.cur.base)
	g.b.Move(isa.R3, asm.Mem(isa.A0, 0))
	g.b.Jmp(asm.R(isa.R3))
}

func (g *gen) genStmts(ss []Stmt) error {
	for _, s := range ss {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s Stmt) error {
	g.term = false
	switch st := s.(type) {
	case *AssignStmt:
		return g.genAssign(st)
	case *ExprStmt:
		return g.genExpr(st.X)
	case *ReturnStmt:
		if st.Value != nil {
			if err := g.genExpr(st.Value); err != nil {
				return err
			}
		}
		g.emitReturn(g.cur.fn)
		return nil
	case *IfStmt:
		elseL, endL := g.label("else"), g.label("end")
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.b.Bf(isa.R0, elseL)
		if err := g.genStmts(st.Then); err != nil {
			return err
		}
		if !g.term {
			g.b.Br(endL)
		}
		g.b.Label(elseL)
		g.term = false
		if err := g.genStmts(st.Else); err != nil {
			return err
		}
		g.b.Label(endL)
		g.term = false
		return nil
	case *WhileStmt:
		topL, endL := g.label("loop"), g.label("end")
		g.b.Label(topL)
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.b.Bf(isa.R0, endL)
		if err := g.genStmts(st.Body); err != nil {
			return err
		}
		if !g.term {
			g.b.Br(topL)
		}
		g.b.Label(endL)
		g.term = false
		return nil
	}
	return errf(0, 0, "unhandled statement %T", s)
}

// lookup resolves a name to storage (frame first, then globals).
func (g *gen) lookup(name string, line int) (*symbol, *Error) {
	if s, ok := g.cur.slots[name]; ok {
		return s, nil
	}
	if s, ok := g.globals[name]; ok {
		return s, nil
	}
	return nil, errf(line, 1, "undefined variable %q", name)
}

// storeScalar stores R0 to a word address (clobbers A0).
func (g *gen) storeScalar(addr int32) {
	g.b.MoveI(isa.A0, addr)
	g.b.St(isa.R0, asm.Mem(isa.A0, 0))
}

// loadScalar loads a word address into R0 (clobbers A0).
func (g *gen) loadScalar(addr int32) {
	g.b.MoveI(isa.A0, addr)
	g.b.Move(isa.R0, asm.Mem(isa.A0, 0))
}

// Temporaries: a per-function spill stack in the frame.

func (g *gen) pushTemp(line int) (int32, *Error) {
	fr := g.cur
	if fr.tempSP >= maxTemps {
		return 0, errf(line, 1, "expression too deep in %q (more than %d live temporaries)", fr.fn.Name, maxTemps)
	}
	addr := fr.tempBase + fr.tempSP
	fr.tempSP++
	if fr.tempSP > fr.tempMax {
		fr.tempMax = fr.tempSP
	}
	g.storeScalar(addr)
	return addr, nil
}

func (g *gen) popTemp() { g.cur.tempSP-- }

// genAssign evaluates the value, then stores to the target.
func (g *gen) genAssign(st *AssignStmt) error {
	sym, err := g.lookup(st.Target.Name, st.Line)
	if err != nil {
		return err
	}
	if st.Target.Index == nil {
		if sym.array {
			return errf(st.Line, 1, "cannot assign to array %q", st.Target.Name)
		}
		if err := g.genExpr(st.Value); err != nil {
			return err
		}
		g.storeScalar(sym.addr)
		return nil
	}
	if !sym.array {
		return errf(st.Line, 1, "%q is not an array", st.Target.Name)
	}
	// Evaluate index, spill, evaluate value, store via [A1+R1].
	if err := g.genExpr(st.Target.Index); err != nil {
		return err
	}
	tmp, terr := g.pushTemp(st.Line)
	if terr != nil {
		return terr
	}
	if err := g.genExpr(st.Value); err != nil {
		return err
	}
	g.b.MoveI(isa.A1, tmp)
	g.b.Move(isa.R1, asm.Mem(isa.A1, 0))
	g.popTemp()
	g.b.MoveI(isa.A1, sym.addr)
	g.b.St(isa.R0, asm.MemR(isa.A1, isa.R1))
	return nil
}

// genExpr evaluates e into R0.
func (g *gen) genExpr(e Expr) error {
	switch x := e.(type) {
	case *NumLit:
		g.b.MoveI(isa.R0, x.Value)
		return nil

	case *VarRef:
		sym, err := g.lookup(x.Name, x.Line)
		if err != nil {
			return err
		}
		if x.Index == nil {
			if sym.array {
				g.b.MoveI(isa.R0, sym.addr) // array name = base address
				return nil
			}
			g.loadScalar(sym.addr)
			return nil
		}
		if !sym.array {
			return errf(x.Line, 1, "%q is not an array", x.Name)
		}
		if err := g.genExpr(x.Index); err != nil {
			return err
		}
		g.b.MoveI(isa.A1, sym.addr)
		g.b.Move(isa.R0, asm.MemR(isa.A1, isa.R0))
		return nil

	case *UnExpr:
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case tokMinus:
			g.b.Neg(isa.R0)
		case tokBang:
			g.b.Eq(isa.R0, asm.Imm(0))
		}
		return nil

	case *BinExpr:
		return g.genBin(x)

	case *CallExpr:
		return g.genCall(x)
	}
	return errf(0, 0, "unhandled expression %T", e)
}

// genBin evaluates a binary operator; && and || short-circuit.
func (g *gen) genBin(x *BinExpr) error {
	if x.Op == tokAndAnd || x.Op == tokOrOr {
		endL := g.label("sc")
		if err := g.genExpr(x.L); err != nil {
			return err
		}
		g.b.Ne(isa.R0, asm.Imm(0)) // normalize to 0/1
		if x.Op == tokAndAnd {
			g.b.Bf(isa.R0, endL)
		} else {
			g.b.Bt(isa.R0, endL)
		}
		if err := g.genExpr(x.R); err != nil {
			return err
		}
		g.b.Ne(isa.R0, asm.Imm(0))
		g.b.Label(endL)
		return nil
	}

	if err := g.genExpr(x.L); err != nil {
		return err
	}
	tmp, terr := g.pushTemp(x.Line)
	if terr != nil {
		return terr
	}
	if err := g.genExpr(x.R); err != nil {
		return err
	}
	g.b.Move(isa.R1, asm.R(isa.R0))
	g.b.MoveI(isa.A1, tmp)
	g.b.Move(isa.R0, asm.Mem(isa.A1, 0))
	g.popTemp()

	op := asm.R(isa.R1)
	switch x.Op {
	case tokPlus:
		g.b.Add(isa.R0, op)
	case tokMinus:
		g.b.Sub(isa.R0, op)
	case tokStar:
		g.b.Mul(isa.R0, op)
	case tokSlash:
		g.b.Div(isa.R0, op)
	case tokPercent:
		g.b.Mod(isa.R0, op)
	case tokAmp:
		g.b.And(isa.R0, op)
	case tokPipe:
		g.b.Or(isa.R0, op)
	case tokCaret:
		g.b.Xor(isa.R0, op)
	case tokShl:
		g.b.Lsh(isa.R0, op)
	case tokShr:
		g.b.Neg(isa.R1)
		g.b.Ash(isa.R0, op)
	case tokEq:
		g.b.Eq(isa.R0, op)
	case tokNe:
		g.b.Ne(isa.R0, op)
	case tokLt:
		g.b.Lt(isa.R0, op)
	case tokLe:
		g.b.Le(isa.R0, op)
	case tokGt:
		g.b.Gt(isa.R0, op)
	case tokGe:
		g.b.Ge(isa.R0, op)
	default:
		return errf(x.Line, 1, "unhandled operator %s", x.Op)
	}
	return nil
}
