package jlang

// Recursive-descent parser.

type parser struct {
	toks []token
	pos  int
}

// Parse parses a compilation unit.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.peek().kind != tokEOF {
		switch p.peek().kind {
		case tokVar:
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, v)
		case tokFunc:
			fn, err := p.funcDecl(false)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		case tokHandler:
			fn, err := p.funcDecl(true)
			if err != nil {
				return nil, err
			}
			f.Handlers = append(f.Handlers, fn)
		default:
			t := p.peek()
			return nil, errf(t.line, t.col, "expected declaration, got %s", t.kind)
		}
	}
	return f, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, *Error) {
	t := p.peek()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, got %s", k, t.kind)
	}
	return p.advance(), nil
}

// varDecl: "var" ident ("[" number "]")? ("@" "emem")? ";"
func (p *parser) varDecl() (*VarDecl, *Error) {
	kw, _ := p.expect(tokVar)
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.text, Line: kw.line}
	if p.peek().kind == tokLBracket {
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		if n.num <= 0 {
			return nil, errf(n.line, n.col, "array size must be positive")
		}
		d.Size = n.num
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokAt {
		p.advance()
		place, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch place.text {
		case "emem":
			d.External = true
		case "imem":
		default:
			return nil, errf(place.line, place.col, "unknown placement %q (use imem or emem)", place.text)
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// funcDecl: ("func"|"handler") ident "(" params ")" block
func (p *parser) funcDecl(handler bool) (*FuncDecl, *Error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Handler: handler, Line: kw.line}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRParen {
		param, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, param.text)
		if p.peek().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // ')'
	body, locals, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	fn.Locals = locals
	return fn, nil
}

// block: "{" (varDecl | stmt)* "}" — local declarations may appear
// anywhere in the block and scope to the whole function (C89 style
// hoisting, which is how Tuned J code reads).
func (p *parser) block() ([]Stmt, []*VarDecl, *Error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, nil, err
	}
	var stmts []Stmt
	var locals []*VarDecl
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokVar {
			d, err := p.varDecl()
			if err != nil {
				return nil, nil, err
			}
			if d.External {
				return nil, nil, errf(d.Line, 1, "locals cannot be placed in external memory")
			}
			locals = append(locals, d)
			continue
		}
		s, nested, err := p.stmt()
		if err != nil {
			return nil, nil, err
		}
		locals = append(locals, nested...)
		stmts = append(stmts, s)
	}
	p.advance() // '}'
	return stmts, locals, nil
}

func (p *parser) stmt() (Stmt, []*VarDecl, *Error) {
	t := p.peek()
	switch t.kind {
	case tokIf:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, nil, err
		}
		then, locals, err := p.block()
		if err != nil {
			return nil, nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.line}
		if p.peek().kind == tokElse {
			p.advance()
			els, more, err := p.block()
			if err != nil {
				return nil, nil, err
			}
			st.Else = els
			locals = append(locals, more...)
		}
		return st, locals, nil

	case tokWhile:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, nil, err
		}
		body, locals, err := p.block()
		if err != nil {
			return nil, nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, locals, nil

	case tokReturn:
		p.advance()
		st := &ReturnStmt{Line: t.line}
		if p.peek().kind != tokSemi {
			v, err := p.expr()
			if err != nil {
				return nil, nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, nil, err
		}
		return st, nil, nil

	case tokIdent:
		// Assignment or expression statement.
		if p.peek2().kind == tokAssign || p.peek2().kind == tokLBracket {
			return p.assignOrIndexed()
		}
		x, err := p.expr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, nil, err
		}
		return &ExprStmt{X: x, Line: t.line}, nil, nil
	}
	return nil, nil, errf(t.line, t.col, "expected statement, got %s", t.kind)
}

// assignOrIndexed parses `name = e;`, `name[idx] = e;`, or an
// expression statement that merely indexes.
func (p *parser) assignOrIndexed() (Stmt, []*VarDecl, *Error) {
	name := p.advance()
	var index Expr
	if p.peek().kind == tokLBracket {
		p.advance()
		ix, err := p.expr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, nil, err
		}
		index = ix
	}
	if p.peek().kind != tokAssign {
		return nil, nil, errf(name.line, name.col, "expected '=' after %s", name.text)
	}
	p.advance()
	v, err := p.expr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, nil, err
	}
	return &AssignStmt{
		Target: &LValue{Name: name.text, Index: index, Line: name.line},
		Value:  v,
		Line:   name.line,
	}, nil, nil
}

// Expression grammar, lowest precedence first:
//
//	or:    and ("||" and)*
//	and:   cmp ("&&" cmp)*
//	cmp:   bits (( == != < <= > >= ) bits)?
//	bits:  shift (( & | ^ ) shift)*
//	shift: add (( << >> ) add)*
//	add:   mul (( + - ) mul)*
//	mul:   unary (( * / % ) unary)*
//	unary: ( - ! )? primary
func (p *parser) expr() (Expr, *Error) { return p.binary(0) }

var precLevels = [][]tokKind{
	{tokOrOr},
	{tokAndAnd},
	{tokEq, tokNe, tokLt, tokLe, tokGt, tokGe},
	{tokAmp, tokPipe, tokCaret},
	{tokShl, tokShr},
	{tokPlus, tokMinus},
	{tokStar, tokSlash, tokPercent},
}

func (p *parser) binary(level int) (Expr, *Error) {
	if level >= len(precLevels) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		match := false
		for _, op := range precLevels[level] {
			if k == op {
				match = true
				break
			}
		}
		if !match {
			return left, nil
		}
		opTok := p.advance()
		right, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: opTok.kind, L: left, R: right, Line: opTok.line}
	}
}

func (p *parser) unary() (Expr, *Error) {
	t := p.peek()
	if t.kind == tokMinus || t.kind == tokBang {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.kind, X: x, Line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, *Error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &NumLit{Value: t.num, Line: t.line}, nil
	case tokLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokIdent:
		p.advance()
		switch p.peek().kind {
		case tokLParen:
			p.advance()
			call := &CallExpr{Name: t.text, Line: t.line}
			for p.peek().kind != tokRParen {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.peek().kind == tokComma {
					p.advance()
				}
			}
			p.advance() // ')'
			return call, nil
		case tokLBracket:
			p.advance()
			ix, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &VarRef{Name: t.text, Index: ix, Line: t.line}, nil
		default:
			return &VarRef{Name: t.text, Line: t.line}, nil
		}
	}
	return nil, errf(t.line, t.col, "expected expression, got %s", t.kind)
}
