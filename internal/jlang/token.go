// Package jlang implements a compiler for a small "Tuned J"-style
// language targeting the simulated MDP.
//
// The paper's system-level language, J, "extends a per-node ANSI C
// environment with a small number of additional constructs for remote
// function invocation and synchronization"; three of the four
// macro-benchmarks were written in it (with hand tuning). This package
// provides a working subset in that spirit:
//
//   - per-node globals (scalars and arrays, placeable in internal or
//     external memory), functions, and message handlers;
//   - integers, arrays, arithmetic, comparisons, logic, if/else and
//     while control flow;
//   - the machine's mechanisms as builtins: send(dest, handler, args...)
//     for remote invocation, mynode()/nodeof(id), suspend(), halt(),
//     cycles(), and nodes().
//
// Programs are compiled to the same assembler (package asm) the
// hand-written applications use, so compiled and tuned code can be
// linked into one image — exactly how Tuned J was used: compiler output
// with hand-tuned critical sequences.
package jlang

import "fmt"

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString

	// Punctuation.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi

	// Operators.
	tokAssign // =
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokAmp    // &
	tokPipe   // |
	tokCaret  // ^
	tokShl    // <<
	tokShr    // >>
	tokEq     // ==
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokAndAnd // &&
	tokOrOr   // ||
	tokBang   // !
	tokAt     // @ (placement annotation)

	// Keywords.
	tokVar
	tokFunc
	tokHandler
	tokIf
	tokElse
	tokWhile
	tokReturn
)

var keywords = map[string]tokKind{
	"var":     tokVar,
	"func":    tokFunc,
	"handler": tokHandler,
	"if":      tokIf,
	"else":    tokElse,
	"while":   tokWhile,
	"return":  tokReturn,
}

var kindNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokComma: "','", tokSemi: "';'",
	tokAssign: "'='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPercent: "'%'", tokAmp: "'&'", tokPipe: "'|'",
	tokCaret: "'^'", tokShl: "'<<'", tokShr: "'>>'", tokEq: "'=='",
	tokNe: "'!='", tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
	tokAndAnd: "'&&'", tokOrOr: "'||'", tokBang: "'!'", tokAt: "'@'",
	tokVar: "'var'", tokFunc: "'func'", tokHandler: "'handler'",
	tokIf: "'if'", tokElse: "'else'", tokWhile: "'while'", tokReturn: "'return'",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	num  int32
	line int
	col  int
}

// Error is a compile error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
