package jlang

// Program AST.

// File is a parsed compilation unit.
type File struct {
	Globals  []*VarDecl
	Funcs    []*FuncDecl
	Handlers []*FuncDecl
}

// VarDecl declares a global or local variable. Size 0 means a scalar;
// otherwise an array of Size words. External places the storage in
// off-chip memory (the `@emem` annotation).
type VarDecl struct {
	Name     string
	Size     int32
	External bool
	Line     int
}

// FuncDecl is a function or message handler. Handlers receive their
// parameters from the invoking message's words 1..n.
type FuncDecl struct {
	Name    string
	Params  []string
	Locals  []*VarDecl
	Body    []Stmt
	Handler bool
	Line    int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// AssignStmt stores Value into Target (a variable or array element).
type AssignStmt struct {
	Target *LValue
	Value  Expr
	Line   int
}

// IfStmt with optional else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt loops while Cond is non-zero.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// ReturnStmt returns from the current function, optionally with a value
// (functions return in R0).
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
}

func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ExprStmt) stmt()   {}
func (*ReturnStmt) stmt() {}

// LValue names a storable location: a scalar or an indexed array slot.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Line  int
}

// Expr is an expression node.
type Expr interface{ expr() }

// NumLit is an integer literal.
type NumLit struct {
	Value int32
	Line  int
}

// VarRef reads a scalar variable; with Index non-nil, an array element.
// A bare array name evaluates to its base address.
type VarRef struct {
	Name  string
	Index Expr
	Line  int
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   tokKind
	L, R Expr
	Line int
}

// UnExpr applies unary minus or logical not.
type UnExpr struct {
	Op   tokKind
	X    Expr
	Line int
}

// CallExpr invokes a user function or a builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumLit) expr()   {}
func (*VarRef) expr()   {}
func (*BinExpr) expr()  {}
func (*UnExpr) expr()   {}
func (*CallExpr) expr() {}
