package jlang

import "strconv"

// lexer produces tokens from source text.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextByte() byte {
	c := l.peekByte()
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// next returns the next token.
func (l *lexer) next() (token, *Error) {
	for {
		for isSpace(l.peekByte()) {
			l.nextByte()
		}
		// Comments: // to end of line, /* ... */.
		if l.peekByte() == '/' && l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '/':
				for l.peekByte() != 0 && l.peekByte() != '\n' {
					l.nextByte()
				}
				continue
			case '*':
				startLine, startCol := l.line, l.col
				l.nextByte()
				l.nextByte()
				for {
					if l.peekByte() == 0 {
						return token{}, errf(startLine, startCol, "unterminated comment")
					}
					if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
						l.nextByte()
						l.nextByte()
						break
					}
					l.nextByte()
				}
				continue
			}
		}
		break
	}

	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	c := l.peekByte()
	switch {
	case c == 0:
		return mk(tokEOF, ""), nil
	case isDigit(c):
		start := l.pos
		for isDigit(l.peekByte()) ||
			(l.pos == start+1 && l.src[start] == '0' && (l.peekByte() == 'x' || l.peekByte() == 'X')) ||
			(l.pos > start+1 && l.src[start] == '0' && (l.src[start+1]|0x20) == 'x' && isHex(l.peekByte())) {
			l.nextByte()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil || v > 1<<31-1 || v < -(1<<31) {
			return token{}, errf(line, col, "bad number %q", text)
		}
		t := mk(tokNumber, text)
		t.num = int32(v)
		return t, nil
	case isLetter(c):
		start := l.pos
		for isLetter(l.peekByte()) || isDigit(l.peekByte()) {
			l.nextByte()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return mk(k, text), nil
		}
		return mk(tokIdent, text), nil
	}

	l.nextByte()
	two := func(second byte, k2, k1 tokKind) token {
		if l.peekByte() == second {
			l.nextByte()
			return mk(k2, "")
		}
		return mk(k1, "")
	}
	switch c {
	case '(':
		return mk(tokLParen, ""), nil
	case ')':
		return mk(tokRParen, ""), nil
	case '{':
		return mk(tokLBrace, ""), nil
	case '}':
		return mk(tokRBrace, ""), nil
	case '[':
		return mk(tokLBracket, ""), nil
	case ']':
		return mk(tokRBracket, ""), nil
	case ',':
		return mk(tokComma, ""), nil
	case ';':
		return mk(tokSemi, ""), nil
	case '+':
		return mk(tokPlus, ""), nil
	case '-':
		return mk(tokMinus, ""), nil
	case '*':
		return mk(tokStar, ""), nil
	case '/':
		return mk(tokSlash, ""), nil
	case '%':
		return mk(tokPercent, ""), nil
	case '^':
		return mk(tokCaret, ""), nil
	case '@':
		return mk(tokAt, ""), nil
	case '&':
		return two('&', tokAndAnd, tokAmp), nil
	case '|':
		return two('|', tokOrOr, tokPipe), nil
	case '=':
		return two('=', tokEq, tokAssign), nil
	case '!':
		return two('=', tokNe, tokBang), nil
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			return mk(tokShl, ""), nil
		}
		return two('=', tokLe, tokLt), nil
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			return mk(tokShr, ""), nil
		}
		return two('=', tokGe, tokGt), nil
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c|0x20) >= 'a' && (c|0x20) <= 'f'
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
