package jlang

import (
	"strings"
	"testing"
	"testing/quick"

	"jmachine/internal/asm"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// runJ compiles source, boots node 0 at "main" on an n-node machine,
// runs to HALT, and returns the machine plus symbol addresses.
func runJ(t *testing.T, src string, nodes int) (*machine.Machine, *Compiled) {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := machine.New(machine.GridForNodes(nodes), c.Program)
	if err != nil {
		t.Fatal(err)
	}
	rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
	rt.StartNode(m, c.Program, 0, "main")
	if err := m.RunUntilHalt(0, 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, c
}

// global reads a compiled global from node id.
func global(t *testing.T, m *machine.Machine, c *Compiled, node int, name string) int32 {
	t.Helper()
	addr, ok := c.Globals[name]
	if !ok {
		t.Fatalf("no global %q", name)
	}
	w, err := m.Nodes[node].Mem.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	return w.Data()
}

func TestArithmeticAndGlobals(t *testing.T) {
	m, c := runJ(t, `
		var out;
		func main() {
			out = (3 + 4) * 5 - 18 / 3 % 4;
			halt();
		}
	`, 1)
	if got := global(t, m, c, 0, "out"); got != 33 { // 35 - (6%4)=2
		t.Errorf("out = %d, want 33", got)
	}
}

func TestControlFlowAndLocals(t *testing.T) {
	m, c := runJ(t, `
		var sum; var evens;
		func main() {
			var i;
			i = 0;
			while (i < 10) {
				sum = sum + i;
				if (i % 2 == 0) {
					evens = evens + 1;
				} else {
					evens = evens;
				}
				i = i + 1;
			}
			halt();
		}
	`, 1)
	if got := global(t, m, c, 0, "sum"); got != 45 {
		t.Errorf("sum = %d", got)
	}
	if got := global(t, m, c, 0, "evens"); got != 5 {
		t.Errorf("evens = %d", got)
	}
}

func TestArraysInternalAndExternal(t *testing.T) {
	m, c := runJ(t, `
		var a[8];
		var big[100] @emem;
		var total;
		func main() {
			var i;
			i = 0;
			while (i < 8) { a[i] = i * i; i = i + 1; }
			i = 0;
			while (i < 100) { big[i] = i; i = i + 1; }
			total = a[3] + a[7] + big[99];
			halt();
		}
	`, 1)
	if got := global(t, m, c, 0, "total"); got != 9+49+99 {
		t.Errorf("total = %d", got)
	}
	// Placement: a in SRAM, big in DRAM.
	if addr := c.Globals["a"]; !m.Nodes[0].Mem.IsInternal(addr) {
		t.Error("a not in internal memory")
	}
	if addr := c.Globals["big"]; m.Nodes[0].Mem.IsInternal(addr) {
		t.Error("big not in external memory")
	}
}

func TestFunctionsAndReturn(t *testing.T) {
	m, c := runJ(t, `
		var out;
		func sq(x) { return x * x; }
		func sumsq(a, b) { return sq(a) + sq(b); }
		func main() {
			out = sumsq(3, 4);
			halt();
		}
	`, 1)
	if got := global(t, m, c, 0, "out"); got != 25 {
		t.Errorf("out = %d", got)
	}
}

func TestRecursionRejected(t *testing.T) {
	_, err := Compile(`
		func f(x) { return g(x); }
		func g(x) { return f(x); }
		func main() { halt(); }
	`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("expected recursion error, got %v", err)
	}
}

func TestLogicalOperatorsShortCircuit(t *testing.T) {
	// The right side of && must not execute when the left is false:
	// side effect via function call.
	m, c := runJ(t, `
		var touched; var r1; var r2;
		func touch() { touched = touched + 1; return 1; }
		func main() {
			r1 = 0 && touch();
			r2 = 1 || touch();
			halt();
		}
	`, 1)
	if got := global(t, m, c, 0, "touched"); got != 0 {
		t.Errorf("short-circuit failed: touched = %d", got)
	}
	if global(t, m, c, 0, "r1") != 0 || global(t, m, c, 0, "r2") != 1 {
		t.Error("logical results wrong")
	}
}

func TestMessagePassingBetweenNodes(t *testing.T) {
	// Node 0 sends each worker a pair to add; workers reply to node 0,
	// which accumulates and halts when all replies arrive.
	m, c := runJ(t, `
		var acc; var got; var want;
		handler addpair(a, b, from) {
			send(from, reply, a + b);
			suspend();
		}
		handler reply(v) {
			acc = acc + v;
			got = got + 1;
			if (got == want) { halt(); }
			suspend();
		}
		func main() {
			var i;
			want = nodes() - 1;
			i = 1;
			while (i < nodes()) {
				send(nodeaddr(i), addpair, i, 10 * i, mynode());
				i = i + 1;
			}
			suspend();
		}
	`, 8)
	// acc = sum over i=1..7 of 11i = 11*28.
	if got := global(t, m, c, 0, "acc"); got != 11*28 {
		t.Errorf("acc = %d, want %d", got, 11*28)
	}
}

func TestBarrierBuiltin(t *testing.T) {
	c, err := Compile(`
		var phase;
		func main() {
			barinit();
			barrier();
			phase = 1;
			barrier();
			phase = 2;
			if (myid() == 0) { halt(); }
			suspend();
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.GridForNodes(4), c.Program)
	rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
	rt.StartAll(m, c.Program, "main")
	if err := m.RunUntilHalt(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for id := range m.Nodes {
		w, _ := m.Nodes[id].Mem.Read(c.Globals["phase"])
		if w.Data() != 2 {
			t.Errorf("node %d phase = %d", id, w.Data())
		}
	}
}

func TestCompiledExpressionProperty(t *testing.T) {
	// Compiled arithmetic agrees with Go for arbitrary operand values.
	f := func(a, b int16, cc uint8) bool {
		cv := int32(cc%30) + 1
		src := `
			var x; var y; var z; var out;
			func main() {
				out = (x + y) * 2 - z + (x & y | 15) + (y << 2) + (x >> 3);
				halt();
			}
		`
		c, err := Compile(src)
		if err != nil {
			return false
		}
		m := machine.MustNew(machine.Grid(1, 1, 1), c.Program)
		rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
		av, bv := int32(a), int32(b)
		m.Nodes[0].Mem.Write(c.Globals["x"], word.Int(av))
		m.Nodes[0].Mem.Write(c.Globals["y"], word.Int(bv))
		m.Nodes[0].Mem.Write(c.Globals["z"], word.Int(cv))
		rt.StartNode(m, c.Program, 0, "main")
		if err := m.RunUntilHalt(0, 100000); err != nil {
			return false
		}
		want := (av+bv)*2 - cv + (av&bv | 15) + (bv << 2) + (av >> 3)
		w, _ := m.Nodes[0].Mem.Read(c.Globals["out"])
		return w.Data() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`var x; var x;`, "redeclared"},
		{`func main() { y = 1; }`, "undefined variable"},
		{`func main() { foo(); }`, "undefined function"},
		{`var a[4]; func main() { a = 1; halt(); }`, "cannot assign to array"},
		{`var s; func main() { s[0] = 1; halt(); }`, "is not an array"},
		{`func halt() { }`, "builtin"},
		{`func main() { send(1, main); }`, "not a handler"},
		{`handler h(a) {suspend();} func main() { send(mynode(), h); }`, "argument"},
		{`func main() { if (1) { } `, "expected"},
		{`func main() { x(1 + ); }`, "expected expression"},
		{`func main() { 1 + 2; }`, "expected statement"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("x1 = 0x10 << 2; // comment\n/* block */ y")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tokIdent, tokAssign, tokNumber, tokShl, tokNumber, tokSemi, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[2].num != 16 {
		t.Errorf("hex literal = %d", toks[2].num)
	}
}

func TestUnterminatedCommentError(t *testing.T) {
	if _, err := lexAll("/* nope"); err == nil {
		t.Fatal("expected error")
	}
}

// TestCompiledProgramsCheckClean runs the static MDP verifier over
// compiled programs covering every codegen shape: terminated and
// fall-through functions, branches with and without else, loops,
// handlers, and the boot entry. Guards against the compiler emitting
// dead epilogues or reading the unset boot link register.
func TestCompiledProgramsCheckClean(t *testing.T) {
	srcs := map[string]string{
		"fall_off_main": `
			var x;
			func main() { x = 1; }`,
		"explicit_return_everywhere": `
			var x;
			func f(a) { if (a > 0) { return a; } return 0 - a; }
			func main() { x = f(0 - 3); halt(); }`,
		"loop_and_halt_in_branch": `
			var n;
			func main() {
				n = 0;
				while (n < 4) {
					n = n + 1;
					if (n == 3) { halt(); }
				}
				halt();
			}`,
		"handler_and_send": `
			var got;
			handler recv(v) { got = v; halt(); }
			func main() { send(mynode(), recv, 7); suspend(); }`,
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			c, err := Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, f := range asm.Check(c.Program, rt.CheckAllowances()...) {
				t.Errorf("%s: %s", name, f)
			}
		})
	}
}
