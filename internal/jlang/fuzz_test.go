package jlang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Differential testing: generate random expression programs, compile and
// run them on the simulated machine, and compare against direct Go
// evaluation of the same AST.

// exprGen builds random expressions over variables x0..x3 with a Go
// evaluator alongside.
type exprGen struct {
	r    *rand.Rand
	vars [4]int32
}

// gen returns source text and the expected value. Division and modulo
// guard against zero and the int32-min/-1 overflow trap by generated
// construction (divisors are non-zero literals).
func (g *exprGen) gen(depth int) (string, int32) {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(3) {
		case 0:
			v := int32(g.r.Intn(2001) - 1000)
			return fmt.Sprintf("%d", v), v
		default:
			i := g.r.Intn(4)
			return fmt.Sprintf("x%d", i), g.vars[i]
		}
	}
	ls, lv := g.gen(depth - 1)
	switch g.r.Intn(12) {
	case 0:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		d := int32(g.r.Intn(99) + 1)
		return fmt.Sprintf("(%s / %d)", ls, d), lv / d
	case 4:
		d := int32(g.r.Intn(99) + 1)
		return fmt.Sprintf("(%s %% %d)", ls, d), lv % d
	case 5:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s & %s)", ls, rs), lv & rv
	case 6:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s | %s)", ls, rs), lv | rv
	case 7:
		rs, rv := g.gen(depth - 1)
		return fmt.Sprintf("(%s ^ %s)", ls, rs), lv ^ rv
	case 8:
		sh := g.r.Intn(8)
		return fmt.Sprintf("(%s << %d)", ls, sh), int32(uint32(lv) << uint(sh))
	case 9:
		sh := g.r.Intn(8)
		return fmt.Sprintf("(%s >> %d)", ls, sh), lv >> uint(sh)
	case 10:
		rs, rv := g.gen(depth - 1)
		b := int32(0)
		if lv < rv {
			b = 1
		}
		return fmt.Sprintf("(%s < %s)", ls, rs), b
	default:
		return fmt.Sprintf("(-%s)", ls), -lv
	}
}

func TestRandomExpressionsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 40; trial++ {
		g := &exprGen{r: r}
		for i := range g.vars {
			g.vars[i] = int32(r.Intn(4001) - 2000)
		}
		src, want := g.gen(4)
		prog := fmt.Sprintf(`
			var x0; var x1; var x2; var x3; var out;
			func main() { out = %s; halt(); }
		`, src)
		c, err := Compile(prog)
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, src, err)
		}
		m := machine.MustNew(machine.Grid(1, 1, 1), c.Program)
		rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
		for i, v := range g.vars {
			m.Nodes[0].Mem.Write(c.Globals[fmt.Sprintf("x%d", i)], word.Int(v))
		}
		rt.StartNode(m, c.Program, 0, "main")
		if err := m.RunUntilHalt(0, 500_000); err != nil {
			t.Fatalf("trial %d: run %q: %v", trial, src, err)
		}
		got, _ := m.Nodes[0].Mem.Read(c.Globals["out"])
		if got.Data() != want {
			t.Fatalf("trial %d: %s with %v = %d, want %d", trial, src, g.vars, got.Data(), want)
		}
	}
}

// TestRandomLoopsDifferential generates counting loops with random
// bodies and checks the accumulated result.
func TestRandomLoopsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := int32(r.Intn(40) + 1)
		mul := int32(r.Intn(7) - 3)
		add := int32(r.Intn(100))
		src := fmt.Sprintf(`
			var out;
			func main() {
				var i;
				i = 0;
				while (i < %d) {
					out = out + i * %d + %d;
					i = i + 1;
				}
				halt();
			}
		`, n, mul, add)
		var want int32
		for i := int32(0); i < n; i++ {
			want += i*mul + add
		}
		c, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.MustNew(machine.Grid(1, 1, 1), c.Program)
		rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
		rt.StartNode(m, c.Program, 0, "main")
		if err := m.RunUntilHalt(0, 500_000); err != nil {
			t.Fatal(err)
		}
		got, _ := m.Nodes[0].Mem.Read(c.Globals["out"])
		if got.Data() != want {
			t.Fatalf("trial %d (n=%d mul=%d add=%d): got %d want %d",
				trial, n, mul, add, got.Data(), want)
		}
	}
}

func TestDeepExpressionRejectedCleanly(t *testing.T) {
	// An expression requiring more than maxTemps live temporaries must
	// produce a compile error, not corrupt code.
	expr := "x"
	for i := 0; i < 30; i++ {
		expr = "(1 + " + expr + ")" // left operand spills while right nests
	}
	// Build a right-leaning tree instead, which holds temps:
	deep := "x"
	for i := 0; i < 30; i++ {
		deep = "(" + deep + " + 1)"
	}
	_ = expr
	src := "var x; var out; func main() { out = " + deepNest(30) + "; halt(); }"
	_, err := Compile(src)
	if err != nil && !strings.Contains(err.Error(), "too deep") {
		t.Fatalf("unexpected error kind: %v", err)
	}
	// Either it compiles (shallow temp usage) or errors cleanly; both
	// are acceptable — what matters is no panic and no silent
	// miscompilation, which the differential tests cover.
}

// deepNest builds an expression that keeps n temporaries live.
func deepNest(n int) string {
	if n == 0 {
		return "x"
	}
	return "(1 + " + deepNest(n-1) + ")"
}
