package jlang

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/rt"
)

// Builtins expose the machine's mechanisms, mirroring J's "small number
// of additional constructs for remote function invocation and
// synchronization".
var builtins = map[string]struct{ args int }{
	"send":     {-1}, // send(dest, handlerName, args...)
	"mynode":   {0},  // this node's router address word
	"myid":     {0},  // this node's linear index
	"nodes":    {0},  // machine size
	"nodeaddr": {1},  // linear index -> router address word
	"cycles":   {0},  // cycle counter (instrumentation)
	"suspend":  {0},
	"halt":     {0},
	"barinit":  {0},
	"barrier":  {0},
}

func isBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// genCall compiles user calls and builtins; the result, if any, is in R0.
func (g *gen) genCall(x *CallExpr) error {
	if fn, ok := g.funcs[x.Name]; ok {
		return g.genUserCall(x, fn)
	}
	spec, ok := builtins[x.Name]
	if !ok {
		return errf(x.Line, 1, "undefined function %q", x.Name)
	}
	if spec.args >= 0 && len(x.Args) != spec.args {
		return errf(x.Line, 1, "%s takes %d argument(s), got %d", x.Name, spec.args, len(x.Args))
	}

	switch x.Name {
	case "mynode":
		g.b.Move(isa.R0, asm.R(isa.NNR))
	case "myid":
		g.loadScalar(rt.AddrNodeID)
	case "nodes":
		g.loadScalar(rt.AddrNumNodes)
	case "cycles":
		g.b.Move(isa.R0, asm.R(isa.CYC))
	case "suspend":
		g.b.Suspend()
		g.term = true
	case "halt":
		g.b.Halt()
		g.term = true
	case "barinit":
		g.b.Bsr(isa.R3, rt.LBarInit)
	case "barrier":
		g.b.Bsr(isa.R3, rt.LBarrier)
	case "nodeaddr":
		if err := g.genExpr(x.Args[0]); err != nil {
			return err
		}
		g.b.Bsr(isa.R3, rt.LId2Node)
	case "send":
		return g.genSend(x)
	}
	return nil
}

// genSend compiles send(dest, handlerName, args...): a complete message
// [header, args...] to the node whose router address dest evaluates to.
func (g *gen) genSend(x *CallExpr) error {
	if len(x.Args) < 2 {
		return errf(x.Line, 1, "send needs a destination and a handler")
	}
	href, ok := x.Args[1].(*VarRef)
	if !ok || href.Index != nil {
		return errf(x.Line, 1, "send's second argument must name a handler")
	}
	target, ok := g.funcs[href.Name]
	if !ok || !target.Handler {
		return errf(x.Line, 1, "%q is not a handler", href.Name)
	}
	args := x.Args[2:]
	if len(target.Params) != len(args) {
		return errf(x.Line, 1, "handler %q takes %d argument(s), got %d",
			href.Name, len(target.Params), len(args))
	}

	// Evaluate destination and arguments left to right into temps.
	if err := g.genExpr(x.Args[0]); err != nil {
		return err
	}
	destT, terr := g.pushTemp(x.Line)
	if terr != nil {
		return terr
	}
	temps := make([]int32, len(args))
	for i, a := range args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		t, terr := g.pushTemp(x.Line)
		if terr != nil {
			return terr
		}
		temps[i] = t
	}

	g.b.MoveI(isa.A1, destT)
	g.b.Send(asm.Mem(isa.A1, 0))
	g.b.MoveHdr(isa.R1, href.Name, 1+len(args))
	if len(args) == 0 {
		g.b.SendE(asm.R(isa.R1))
	} else {
		g.b.Send(asm.R(isa.R1))
		for i, t := range temps {
			g.b.MoveI(isa.A1, t)
			if i == len(temps)-1 {
				g.b.SendE(asm.Mem(isa.A1, 0))
			} else {
				g.b.Send(asm.Mem(isa.A1, 0))
			}
		}
	}
	for range temps {
		g.popTemp()
	}
	g.popTemp() // destT
	return nil
}

// genUserCall evaluates arguments, copies them into the callee's frame,
// and branches with R3 linkage. Values never live in registers across
// the call, so only the link needs saving — which every function does
// at entry.
func (g *gen) genUserCall(x *CallExpr, fn *FuncDecl) error {
	if len(x.Args) != len(fn.Params) {
		return errf(x.Line, 1, "%q takes %d argument(s), got %d", fn.Name, len(fn.Params), len(x.Args))
	}
	callee := g.frames[fn.Name]
	temps := make([]int32, len(x.Args))
	for i, a := range x.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		t, terr := g.pushTemp(x.Line)
		if terr != nil {
			return terr
		}
		temps[i] = t
	}
	for i, t := range temps {
		g.b.MoveI(isa.A1, t)
		g.b.Move(isa.R0, asm.Mem(isa.A1, 0))
		g.storeScalar(callee.slots[fn.Params[i]].addr)
	}
	for range temps {
		g.popTemp()
	}
	g.b.Bsr(isa.R3, fn.Name)
	return nil
}
