// Package cst is a miniature Concurrent-Smalltalk/COSMOS runtime for the
// simulated J-Machine, providing the execution style the paper's TSP
// benchmark was written in:
//
//   - There are no procedure calls per se; all calls become message
//     invocations, either on the local node or a remote node.
//   - Data structures are objects referred to by global virtual names
//     that must be translated (XLATE) at every use.
//   - No priority-1 messages are sent: long-running task threads instead
//     suspend periodically (the "null procedure call") so that pending
//     messages — bound updates, work requests — can be processed.
//   - Incomplete work is redistributed to balance load: idle nodes send
//     work-requesting messages round-robin and receive task grants.
//
// The package owns the worker-object layout and the message-driven
// scheduler (sched/grant/request/nowork handlers); the application
// supplies the task-processing code via a label.
package cst

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mem"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Global object names. Names are node-local translations of globally
// agreed IDs: every node maps MatrixKey to its local replica, WorkerKey
// to its own worker object — the global-namespace pattern CST used for
// distributed objects.
var (
	MatrixKey = word.New(word.TagPtr, 1)
	WorkerKey = word.New(word.TagPtr, 2)
)

// Application memory layout (offsets from rt.AppBase). The runtime owns
// these; applications address them relative to A1 = rt.AppBase.
const (
	App = rt.AppBase

	OffMatrixKey = 0 // XLATE key for the matrix/shared object
	OffWorkerKey = 1 // XLATE key for this node's worker object
	OffN         = 2 // application constant (problem size)
	OffFull      = 3 // application constant (bitmask)
	OffNodesMask = 4 // numNodes-1
	OffMyID      = 5 // this node's linear id

	// The active task record / context frame (4 words). CST kept
	// context frames in objects; the active frame is node-private here
	// since the running task is never stealable.
	OffRec = 8 // 8,9,10,11

	OffYieldCtr = 12 // countdown to the next voluntary suspension
	OffYieldK   = 13 // reset value
	OffCurSeq   = 14 // sequence number of the task being processed
	OffScratch  = 15 // broadcast loop counter etc.
	OffTotal    = 16 // node 0: total tasks
	OffDone     = 17 // node 0: completed tasks

	// NodeTable is the absolute address of the router-address table.
	NodeTable = 3300
)

// Worker-object layout (offsets within the worker segment). Slots 0-3
// belong to the application (TSP keeps its bound in slot 0).
const (
	WkApp0       = 0
	WkStackCount = 4 // stealable task records
	WkVictim     = 5 // next node to ask for work
	WkAttempts   = 6 // consecutive refusals (dormant at numNodes-1)
	// WkBusy guards the active task frame: a task slice may be
	// suspended awaiting its continuation message, and the scheduler
	// must not start another task over it.
	WkBusy   = 7
	WkFrames = 8  // application frame area (16 levels × 4 words)
	WkStack  = 72 // task records, 4 words each
)

// Handler labels.
const (
	LSched   = "cst.sched"   // pop a local task or request work
	LCont    = "cst.cont"    // resume a suspended task slice
	LRequest = "cst.request" // a work-requesting message
	LGrant   = "cst.grant"   // a granted task record
	LNoWork  = "cst.nowork"  // a refusal
	LHalt    = "cst.halt"
)

// Config ties the scheduler to the application's code labels.
type Config struct {
	// TaskEntry is the task-processing message handler. The scheduler
	// invokes it with a 5-word method-invocation message — [header,
	// rec0..rec3] — sent to the local node (all calls become message
	// invocations). The handler should begin with EmitTaskPrologue,
	// which unpacks the record, and must eventually either yield
	// (EmitYield) or finish (EmitFinish).
	TaskEntry string
}

// InvokeWords is the length of a task-invocation message.
const InvokeWords = 5

// BuildScheduler emits the message-driven scheduler. Applications call
// it once while assembling their program, before rt.BuildLib.
func BuildScheduler(b *asm.Builder, cfg Config) {
	// cst.sched: [hdr] — if the local stack has a task, pop it and
	// invoke it with a method-invocation message to the local node;
	// otherwise ask the current victim for work. A suspended task slice
	// owns the active frame, so a busy worker just drops the wakeup —
	// the running task reschedules when it finishes.
	b.Label(LSched).
		MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A2, WkBusy)).
		Bt(isa.R0, "cst.sched.busy").
		Move(isa.R0, asm.Mem(isa.A2, WkStackCount)).
		Bf(isa.R0, "cst.sched.steal").
		// Pop the top record (count-1) and send it as an invocation.
		MoveI(isa.R1, 1).
		St(isa.R1, asm.Mem(isa.A2, WkBusy)).
		Sub(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A2, WkStackCount)).
		Lsh(isa.R0, asm.Imm(2)).
		Add(isa.R0, asm.Imm(WkStack)).
		Send(asm.R(isa.NNR)).
		MoveHdr(isa.R1, cfg.TaskEntry, InvokeWords).
		Send(asm.R(isa.R1))
	for k := 0; k < 3; k++ {
		b.Move(isa.R1, asm.MemR(isa.A2, isa.R0)).
			Send(asm.R(isa.R1)).
			Add(isa.R0, asm.Imm(1))
	}
	b.Move(isa.R1, asm.MemR(isa.A2, isa.R0)).
		SendE(asm.R(isa.R1)).
		Suspend()

	b.Label("cst.sched.busy").
		Suspend()

	// Steal path: ask the victim node for work, skipping ourselves.
	b.Label("cst.sched.steal").
		Move(isa.R0, asm.Mem(isa.A2, WkVictim)).
		Ne(isa.R0, asm.Mem(isa.A1, OffMyID)).
		Bt(isa.R0, "cst.sched.ask").
		Move(isa.R0, asm.Mem(isa.A2, WkVictim)).
		Add(isa.R0, asm.Imm(1)).
		And(isa.R0, asm.Mem(isa.A1, OffNodesMask)).
		St(isa.R0, asm.Mem(isa.A2, WkVictim)).
		Label("cst.sched.ask").
		Move(isa.R0, asm.Mem(isa.A2, WkVictim)).
		MoveI(isa.RGN, 4).
		Add(isa.R0, asm.Imm(NodeTable)).
		Move(isa.A0, asm.R(isa.R0)).
		Send(asm.Mem(isa.A0, 0)).
		MoveI(isa.RGN, 0).
		MoveHdr(isa.R1, LRequest, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.NNR)).
		Suspend()

	// cst.request: [hdr, requesterNode] — grant a stacked task or
	// refuse. Only excess work is granted: an idle node keeps its last
	// stacked task (its own scheduling message is already in flight for
	// it; granting it away would let two idle nodes pass a single task
	// back and forth indefinitely).
	b.Label(LRequest).
		MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A2, WkStackCount)).
		Bf(isa.R0, "cst.request.refuse").
		Move(isa.R1, asm.Mem(isa.A2, WkBusy)).
		Bt(isa.R1, "cst.request.grant").
		Move(isa.R1, asm.R(isa.R0)).
		Gt(isa.R1, asm.Imm(1)).
		Bf(isa.R1, "cst.request.refuse").
		Label("cst.request.grant").
		Sub(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A2, WkStackCount)).
		Lsh(isa.R0, asm.Imm(2)).
		Add(isa.R0, asm.Imm(WkStack)).
		Send(asm.Mem(isa.A3, 1)).
		MoveHdr(isa.R1, LGrant, 5).
		Send(asm.R(isa.R1))
	for k := 0; k < 3; k++ {
		b.Move(isa.R1, asm.MemR(isa.A2, isa.R0)).
			Send(asm.R(isa.R1)).
			Add(isa.R0, asm.Imm(1))
	}
	b.Move(isa.R1, asm.MemR(isa.A2, isa.R0)).
		SendE(asm.R(isa.R1)).
		Suspend().
		Label("cst.request.refuse").
		Send(asm.Mem(isa.A3, 1)).
		MoveHdr(isa.R1, LNoWork, 1).
		SendE(asm.R(isa.R1)).
		Suspend()

	// cst.grant: [hdr, rec0..rec3] — push the record and reschedule.
	b.Label(LGrant).
		MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A2, WkStackCount)).
		Move(isa.R2, asm.R(isa.R0)).
		Add(isa.R2, asm.Imm(1)).
		St(isa.R2, asm.Mem(isa.A2, WkStackCount)).
		St(isa.ZERO, asm.Mem(isa.A2, WkAttempts)).
		Lsh(isa.R0, asm.Imm(2)).
		Add(isa.R0, asm.Imm(WkStack)).
		MoveI(isa.R3, 1) // message word index
	for k := 0; k < 4; k++ {
		b.Move(isa.R1, asm.MemR(isa.A3, isa.R3)).
			St(isa.R1, asm.MemR(isa.A2, isa.R0)).
			Add(isa.R0, asm.Imm(1)).
			Add(isa.R3, asm.Imm(1))
	}
	emitSchedToSelf(b)
	b.Suspend()

	// cst.nowork: [hdr] — advance the victim; go dormant after a full
	// fruitless round (stacks only shrink, so no work can reappear).
	b.Label(LNoWork).
		MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey)).
		Move(isa.R0, asm.Mem(isa.A2, WkVictim)).
		Add(isa.R0, asm.Imm(1)).
		And(isa.R0, asm.Mem(isa.A1, OffNodesMask)).
		St(isa.R0, asm.Mem(isa.A2, WkVictim)).
		Move(isa.R0, asm.Mem(isa.A2, WkAttempts)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A2, WkAttempts)).
		Lt(isa.R0, asm.Mem(isa.A1, OffNodesMask)).
		Bf(isa.R0, "cst.nowork.dormant")
	emitSchedToSelf(b)
	b.Label("cst.nowork.dormant").
		Suspend()

	// cst.cont: [hdr] — resume the active task slice after a voluntary
	// suspension (the "null procedure call"). The task state lives in
	// the object world, so resuming is re-entering the task code.
	b.Label(LCont).
		MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey)).
		Move(isa.R1, asm.Mem(isa.A1, OffYieldK)).
		St(isa.R1, asm.Mem(isa.A1, OffYieldCtr)).
		Br(cfg.TaskEntry + ".resume")

	// cst.halt: [hdr].
	b.Label(LHalt).
		Halt()
}

// emitSchedToSelf emits the send of a 1-word cst.sched message to the
// local node (clobbers R1).
func emitSchedToSelf(b *asm.Builder) {
	b.Send(asm.R(isa.NNR)).
		MoveHdr(isa.R1, LSched, 1).
		SendE(asm.R(isa.R1))
}

// EmitTaskPrologue emits the standard opening of a task-invocation
// handler: establish A1 = App and A2 = the worker descriptor, unpack the
// record from the message ([A3+1..3] → OffRec.., [A3+4] → OffCurSeq),
// and reset the yield counter. Clobbers R0.
func EmitTaskPrologue(b *asm.Builder) {
	b.MoveI(isa.A1, App).
		Xlate(isa.A2, asm.Mem(isa.A1, OffWorkerKey))
	for k := int32(0); k < 3; k++ {
		b.Move(isa.R0, asm.Mem(isa.A3, 1+k)).
			MoveI(isa.A0, App+OffRec+k).
			St(isa.R0, asm.Mem(isa.A0, 0))
	}
	b.Move(isa.R0, asm.Mem(isa.A3, 4)).
		MoveI(isa.A0, App+OffCurSeq).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Move(isa.R0, asm.Mem(isa.A1, OffYieldK)).
		MoveI(isa.A0, App+OffYieldCtr).
		St(isa.R0, asm.Mem(isa.A0, 0))
}

// EmitYield emits the periodic voluntary suspension: reschedule the
// slice with a continuation message to self and end the thread.
// Clobbers R1.
func EmitYield(b *asm.Builder) {
	b.Send(asm.R(isa.NNR)).
		MoveHdr(isa.R1, LCont, 1).
		SendE(asm.R(isa.R1)).
		Suspend()
}

// EmitFinish emits the task epilogue: release the active frame,
// reschedule via cst.sched, and end the thread. Requires A2 = the
// worker descriptor; clobbers R1.
func EmitFinish(b *asm.Builder) {
	b.St(isa.ZERO, asm.Mem(isa.A2, WkBusy))
	emitSchedToSelf(b)
	b.Suspend()
}

// SetupNode publishes a node's worker and shared objects and fills the
// runtime's memory-map fields. workerBase/workerLen and matrixBase/
// matrixLen locate the two objects in node memory (internal memory for
// both, as CST pinned hot objects).
func SetupNode(r *rt.Runtime, m *machine.Machine, id int,
	workerBase int32, workerLen int, matrixBase int32, matrixLen int) {
	n := m.Nodes[id]
	r.DefineName(id, WorkerKey, mem.Seg(workerBase, workerLen))
	r.DefineName(id, MatrixKey, mem.Seg(matrixBase, matrixLen))
	must(n.Mem.Write(App+OffMatrixKey, MatrixKey))
	must(n.Mem.Write(App+OffWorkerKey, WorkerKey))
	must(n.Mem.Write(App+OffNodesMask, word.Int(int32(m.NumNodes()-1))))
	must(n.Mem.Write(App+OffMyID, word.Int(int32(id))))
	must(n.Mem.Write(App+OffScratch, word.Int(0)))
	for i := 0; i < m.NumNodes(); i++ {
		must(n.Mem.Write(NodeTable+int32(i), m.Net.NodeWord(i)))
	}
	// Start each node's scheduler with a boot message.
	prog := progEntry(m, LSched)
	n.Queues[0].Push(word.MsgHeader(prog, 1))
}

func progEntry(m *machine.Machine, label string) int32 {
	// All nodes share the program; reach it through any node.
	return m.Nodes[0].Prog.Entry(label)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// PushTask appends a 4-word task record onto a node's worker stack
// (host-side initial distribution; the paper distributes the initial
// subpath tasks evenly over all nodes).
func PushTask(m *machine.Machine, id int, workerBase int32, rec [4]int32) {
	mem := m.Nodes[id].Mem
	cntW, err := mem.Read(workerBase + WkStackCount)
	must(err)
	cnt := cntW.Data()
	for k, v := range rec {
		must(mem.Write(workerBase+WkStack+4*cnt+int32(k), word.Int(v)))
	}
	must(mem.Write(workerBase+WkStackCount, word.Int(cnt+1)))
}
