package cst_test

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/cst"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

const (
	workerBase = 1024
	counter    = cst.App + 24 // per-node task tally
	accum      = cst.App + 25 // sum of task payloads
)

// buildCounterProgram: each task record carries a value in word 0; the
// task adds it to an accumulator and finishes.
func buildCounterProgram() *asm.Program {
	b := asm.NewBuilder()
	b.Label("task")
	cst.EmitTaskPrologue(b)
	b.Move(isa.R0, asm.Mem(isa.A1, cst.OffRec)).
		MoveI(isa.A0, accum).
		Add(isa.R0, asm.Mem(isa.A0, 0)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		MoveI(isa.A0, counter).
		Move(isa.R0, asm.Mem(isa.A0, 0)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Label("task.resume") // unused: the task never yields
	cst.EmitFinish(b)
	cst.BuildScheduler(b, cst.Config{TaskEntry: "task"})
	rt.BuildLib(b)
	return b.MustAssemble()
}

func setup(t *testing.T, nodes, tasksPerNode int) (*machine.Machine, *rt.Runtime) {
	t.Helper()
	p := buildCounterProgram()
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	workerLen := cst.WkStack + 4*(tasksPerNode*nodes+2)
	for id := range m.Nodes {
		cst.SetupNode(r, m, id, workerBase, workerLen, 2048, 16)
	}
	return m, r
}

func TestSchedulerRunsLocalTasks(t *testing.T) {
	m, _ := setup(t, 2, 3)
	total := int32(0)
	seq := int32(0)
	for id := 0; id < 2; id++ {
		for k := 0; k < 3; k++ {
			v := int32(10*id + k + 1)
			cst.PushTask(m, id, workerBase, [4]int32{v, 0, 0, seq})
			total += v
			seq++
		}
	}
	if err := m.RunQuiescent(500_000); err != nil {
		t.Fatal(err)
	}
	var done, sum int32
	for _, n := range m.Nodes {
		c, _ := n.Mem.Read(counter)
		a, _ := n.Mem.Read(accum)
		done += c.Data()
		sum += a.Data()
	}
	if done != 6 {
		t.Errorf("tasks completed = %d, want 6", done)
	}
	if sum != total {
		t.Errorf("accumulated %d, want %d", sum, total)
	}
}

func TestWorkStealingBalances(t *testing.T) {
	// All tasks start on node 0 of a 4-node machine; stealing must
	// spread them so every task completes and at least one other node
	// does work.
	m, _ := setup(t, 4, 8)
	const tasks = 24
	for i := 0; i < tasks; i++ {
		cst.PushTask(m, 0, workerBase, [4]int32{1, 0, 0, int32(i)})
	}
	if err := m.RunQuiescent(2_000_000); err != nil {
		t.Fatal(err)
	}
	var done int32
	others := 0
	for id, n := range m.Nodes {
		c, _ := n.Mem.Read(counter)
		done += c.Data()
		if id != 0 && c.Data() > 0 {
			others++
		}
	}
	if done != tasks {
		t.Errorf("tasks completed = %d, want %d", done, tasks)
	}
	if others == 0 {
		t.Error("no work was stolen")
	}
}

func TestDormancyTerminates(t *testing.T) {
	// No tasks at all: schedulers probe for work, collect refusals, and
	// go dormant; the machine must quiesce.
	m, _ := setup(t, 4, 1)
	if err := m.RunQuiescent(500_000); err != nil {
		t.Fatal(err)
	}
}

func TestPushTaskLayout(t *testing.T) {
	m, _ := setup(t, 1, 4)
	cst.PushTask(m, 0, workerBase, [4]int32{7, 8, 9, 10})
	cst.PushTask(m, 0, workerBase, [4]int32{11, 12, 13, 14})
	cnt, _ := m.Nodes[0].Mem.Read(workerBase + cst.WkStackCount)
	if cnt.Data() != 2 {
		t.Fatalf("stack count = %d", cnt.Data())
	}
	w, _ := m.Nodes[0].Mem.Read(workerBase + cst.WkStack + 4 + 2)
	if w.Data() != 13 {
		t.Errorf("second record word 2 = %v", w)
	}
}

func TestSetupPublishesNames(t *testing.T) {
	m, r := setup(t, 1, 1)
	n := m.Nodes[0]
	if v, ok := n.Xl.Probe(cst.WorkerKey); !ok || v.Tag() != word.TagAddr {
		t.Errorf("worker name = %v, %v", v, ok)
	}
	if _, ok := n.Xl.Probe(cst.MatrixKey); !ok {
		t.Error("matrix name missing")
	}
	if r.NameCount(0) != 2 {
		t.Errorf("names = %d", r.NameCount(0))
	}
}
