package cst_test

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/cst"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

func setupKV(t *testing.T, nodes, keys int) (*machine.Machine, *asm.Program) {
	t.Helper()
	p := cst.BuildKVProgram()
	m, err := machine.New(machine.GridForNodes(nodes), p)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	for id := range m.Nodes {
		cst.SetupKVNode(r, m, id, keys)
	}
	return m, p
}

// inject pushes msg into gateway gw's priority-0 queue, stepping the
// machine until the queue has room.
func inject(t *testing.T, m *machine.Machine, gw int, msg []word.Word) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		if m.Inject(gw, 0, msg) {
			return
		}
		m.StepN(16)
	}
	t.Fatalf("gateway %d queue never drained", gw)
}

func TestKVPutGetRoundTrip(t *testing.T) {
	const nodes, keys = 4, 16
	m, p := setupKV(t, nodes, keys)

	// Put value 100+k to every key, then get them all back, all through
	// gateway 0. Replies land in gateway 0's mailbox ring.
	seq := int32(0)
	for k := int32(0); k < keys; k++ {
		inject(t, m, 0, cst.KVPutMsg(p, k, 100+k, seq))
		seq++
	}
	for k := int32(0); k < keys; k++ {
		inject(t, m, 0, cst.KVGetMsg(p, k, seq))
		seq++
	}
	if err := m.RunWhile(func(m *machine.Machine) bool {
		return cst.KVMailCursor(m, 0) < seq
	}, 2_000_000); err != nil {
		t.Fatalf("replies never arrived: %v (got %d of %d)", err, cst.KVMailCursor(m, 0), seq)
	}

	got := map[int32]cst.KVReply{}
	for _, rep := range cst.KVHarvest(m, 0, 0, seq) {
		got[rep.Seq] = rep
	}
	if len(got) != int(seq) {
		t.Fatalf("harvested %d distinct seqs, want %d", len(got), seq)
	}
	for k := int32(0); k < keys; k++ {
		put, get := got[k], got[keys+k]
		if put.Value != 100+k || put.Version != 1 {
			t.Errorf("put key %d: reply value=%d version=%d, want %d/1", k, put.Value, put.Version, 100+k)
		}
		if get.Value != 100+k || get.Version != 1 {
			t.Errorf("get key %d: value=%d version=%d, want %d/1", k, get.Value, get.Version, 100+k)
		}
		if get.Cycle <= 0 {
			t.Errorf("get key %d: arrival cycle %d, want > 0", k, get.Cycle)
		}
	}
}

func TestKVVersionsAdvance(t *testing.T) {
	m, p := setupKV(t, 2, 4)
	for i := int32(0); i < 3; i++ {
		inject(t, m, 1, cst.KVPutMsg(p, 3, 50+i, i))
	}
	if err := m.RunWhile(func(m *machine.Machine) bool {
		return cst.KVMailCursor(m, 1) < 3
	}, 1_000_000); err != nil {
		t.Fatal(err)
	}
	reps := cst.KVHarvest(m, 1, 0, 3)
	max := int32(0)
	for _, rep := range reps {
		if rep.Version > max {
			max = rep.Version
		}
	}
	if max != 3 {
		t.Errorf("final version %d after 3 puts, want 3", max)
	}
}

// TestKVDigestDeterminism drives an identical KV op sequence through
// the sequential reference loop and the sharded engine: the injection
// points are cycle-determined, so the final StateDigest must match
// bit-for-bit. This is the invariant jm-serve's concurrency rests on.
func TestKVDigestDeterminism(t *testing.T) {
	const nodes, keys = 8, 32
	run := func(shards int, fast bool) uint64 {
		m, p := setupKV(t, nodes, keys)
		m.SetFastPath(fast)
		var eng *engine.Engine
		if shards > 1 {
			eng = engine.Attach(m, shards)
			defer eng.Stop()
		}
		seq := int32(0)
		for k := int32(0); k < keys; k++ {
			gw := int(k) % nodes
			inject(t, m, gw, cst.KVPutMsg(p, k, 7*k, seq))
			seq++
			inject(t, m, gw, cst.KVGetMsg(p, k, seq))
			seq++
		}
		if err := m.RunQuiescent(4_000_000); err != nil {
			t.Fatal(err)
		}
		return m.StateDigest()
	}
	want := run(1, false)
	for _, tc := range []struct {
		shards int
		fast   bool
	}{{1, true}, {2, true}, {4, false}, {4, true}} {
		if got := run(tc.shards, tc.fast); got != want {
			t.Errorf("shards=%d fast=%v digest %016x, want %016x", tc.shards, tc.fast, got, want)
		}
	}
}

// TestKVAsmCheck sweeps the static MDP verifier over the KV service
// program: every handler must pass ASM001..8.
func TestKVAsmCheck(t *testing.T) {
	for _, f := range asm.Check(cst.BuildKVProgram(), rt.CheckAllowances()...) {
		t.Errorf("%s", f)
	}
}
