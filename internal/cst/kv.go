// Distributed key-value/RPC workload on the CST object runtime.
//
// This is the serving shape of the J-Machine's message-driven dispatch
// (PAPER.md §2: message arrival creates a task in under a microsecond),
// cast as a modern KV backend: every key is a globally-named object
// whose ID must be translated (XLATE) at the owning node on every use —
// exactly a KV service's lookup path. A request enters the machine at a
// gateway node (the host pushes it into the hardware message queue, the
// way a network interface would), the gateway forwards it one hop to
// the key's owner, the owner translates the global ID to its local
// segment and performs the operation, and the reply returns to the
// gateway, which timestamps it into a mailbox ring the host harvests.
//
// Requests and replies are ordinary priority-0 messages; queue
// back-pressure, mesh contention, and xlate-miss faults behave exactly
// as in the paper's applications. The whole exchange is deterministic:
// a fixed request sequence injected at fixed cycles reproduces the
// machine's StateDigest bit-for-bit.
package cst

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mem"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// KV node-memory layout. Constants are word addresses in each node's
// internal memory unless noted; the store lives in external memory
// (DRAM — a KV working set does not fit on-chip).
const (
	// KVApp is the base of the KV runtime's node-local words.
	KVApp = rt.AppBase

	KVOffNodesMask  = 0 // numNodes-1 (node count must be a power of two)
	KVOffMailCursor = 1 // replies landed on this gateway so far
	KVOffMyID       = 2 // this node's linear id

	// KVMailBase is the reply-mailbox ring: KVMailRecords records of
	// KVMailRecWords words each — [seq, value, version, arrivalCycle].
	KVMailBase     = 128
	KVMailRecords  = 128 // power of two (the handler masks the cursor)
	KVMailRecWords = 4

	// KVStoreBase is the first external-memory word of the key store;
	// each key owns a 2-word record [value, version].
	KVStoreBase = 8192

	// KVKeyBase offsets global key IDs: key k's object name is
	// (TagPtr, KVKeyBase|k). A multiple of every supported node count,
	// so owner(k) = k & mask holds for the raw ID too.
	KVKeyBase = 1 << 16
)

// KV handler labels.
const (
	LKVGGet = "kv.gget" // gateway: [hdr, key, seq] — forward a get
	LKVGPut = "kv.gput" // gateway: [hdr, key, value, seq] — forward a put
	LKVGet  = "kv.get"  // owner: [hdr, key, seq, replyAddr]
	LKVPut  = "kv.put"  // owner: [hdr, key, value, seq, replyAddr]
	LKVRep  = "kv.rep"  // gateway: [hdr, seq, value, version] — mailbox
)

// BuildKV emits the KV service handlers. Callers append rt.BuildLib
// (the fault and restore handlers) and assemble.
func BuildKV(b *asm.Builder) {
	// kv.gget: [hdr, key, seq] — look up the owner's router address in
	// the node table and forward a 4-word get carrying our own router
	// address (NNR) as the reply destination.
	b.Label(LKVGGet).
		MoveI(isa.A1, KVApp).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		And(isa.R0, asm.Mem(isa.A1, KVOffNodesMask)).
		Add(isa.R0, asm.Imm(NodeTable)).
		Move(isa.A0, asm.R(isa.R0)).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, LKVGet, 4).
		Send(asm.R(isa.R1)).
		Send(asm.Mem(isa.A3, 1)).
		Send(asm.Mem(isa.A3, 2)).
		SendE(asm.R(isa.NNR)).
		Suspend()

	// kv.gput: [hdr, key, value, seq] — forward a 5-word put.
	b.Label(LKVGPut).
		MoveI(isa.A1, KVApp).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		And(isa.R0, asm.Mem(isa.A1, KVOffNodesMask)).
		Add(isa.R0, asm.Imm(NodeTable)).
		Move(isa.A0, asm.R(isa.R0)).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, LKVPut, 5).
		Send(asm.R(isa.R1)).
		Send(asm.Mem(isa.A3, 1)).
		Send(asm.Mem(isa.A3, 2)).
		Send(asm.Mem(isa.A3, 3)).
		SendE(asm.R(isa.NNR)).
		Suspend()

	// kv.get: [hdr, key, seq, replyAddr] — rebuild the global ID from
	// the integer key, XLATE it to the local store segment, and reply
	// [seq, value, version].
	b.Label(LKVGet).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Or(isa.R0, asm.Imm(KVKeyBase)).
		Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
		Xlate(isa.A2, asm.R(isa.R0)).
		Send(asm.Mem(isa.A3, 3)).
		MoveHdr(isa.R1, LKVRep, 4).
		Send(asm.R(isa.R1)).
		Send(asm.Mem(isa.A3, 2)).
		Send(asm.Mem(isa.A2, 0)).
		SendE(asm.Mem(isa.A2, 1)).
		Suspend()

	// kv.put: [hdr, key, value, seq, replyAddr] — store the value, bump
	// the version, reply [seq, storedValue, newVersion].
	b.Label(LKVPut).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Or(isa.R0, asm.Imm(KVKeyBase)).
		Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
		Xlate(isa.A2, asm.R(isa.R0)).
		Move(isa.R1, asm.Mem(isa.A3, 2)).
		St(isa.R1, asm.Mem(isa.A2, 0)).
		Move(isa.R2, asm.Mem(isa.A2, 1)).
		Add(isa.R2, asm.Imm(1)).
		St(isa.R2, asm.Mem(isa.A2, 1)).
		Send(asm.Mem(isa.A3, 4)).
		MoveHdr(isa.R1, LKVRep, 4).
		Send(asm.R(isa.R1)).
		Send(asm.Mem(isa.A3, 3)).
		Send(asm.Mem(isa.A2, 0)).
		SendE(asm.Mem(isa.A2, 1)).
		Suspend()

	// kv.rep: [hdr, seq, value, version] — append to the mailbox ring
	// with the arrival cycle (CYC), then advance the cursor. The host
	// harvests records it has not yet consumed; it must drain within
	// KVMailRecords replies or the ring wraps over unread records.
	b.Label(LKVRep).
		MoveI(isa.A1, KVApp).
		Move(isa.R0, asm.Mem(isa.A1, KVOffMailCursor)).
		Move(isa.R2, asm.R(isa.R0)).
		And(isa.R2, asm.Imm(KVMailRecords-1)).
		Lsh(isa.R2, asm.Imm(2)).
		Add(isa.R2, asm.Imm(KVMailBase)).
		Move(isa.A0, asm.R(isa.R2)).
		Move(isa.R1, asm.Mem(isa.A3, 1)).
		St(isa.R1, asm.Mem(isa.A0, 0)).
		Move(isa.R1, asm.Mem(isa.A3, 2)).
		St(isa.R1, asm.Mem(isa.A0, 1)).
		Move(isa.R1, asm.Mem(isa.A3, 3)).
		St(isa.R1, asm.Mem(isa.A0, 2)).
		Move(isa.R1, asm.R(isa.CYC)).
		St(isa.R1, asm.Mem(isa.A0, 3)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A1, KVOffMailCursor)).
		Suspend()
}

// BuildKVProgram assembles the complete KV service program (handlers
// plus the runtime library).
func BuildKVProgram() *asm.Program {
	b := asm.NewBuilder()
	BuildKV(b)
	rt.BuildLib(b)
	return b.MustAssemble()
}

// KVKeyWord returns key k's global object name.
func KVKeyWord(k int32) word.Word {
	return word.New(word.TagPtr, KVKeyBase|k)
}

// KVOwner returns the node owning key k on an n-node machine (n must be
// a power of two).
func KVOwner(k int32, n int) int { return int(k) & (n - 1) }

// SetupKVNode initializes node id for the KV service: the node-local
// constants, the router-address table, a zeroed mailbox ring, and —
// for every key this node owns — a published global name mapping the
// key's ID to its 2-word store record in external memory. keys is the
// machine-wide key-space size.
func SetupKVNode(r *rt.Runtime, m *machine.Machine, id, keys int) {
	n := m.Nodes[id]
	numNodes := m.NumNodes()
	must(n.Mem.Write(KVApp+KVOffNodesMask, word.Int(int32(numNodes-1))))
	must(n.Mem.Write(KVApp+KVOffMailCursor, word.Int(0)))
	must(n.Mem.Write(KVApp+KVOffMyID, word.Int(int32(id))))
	for i := 0; i < numNodes; i++ {
		must(n.Mem.Write(NodeTable+int32(i), m.Net.NodeWord(i)))
	}
	for i := int32(0); i < KVMailRecords*KVMailRecWords; i++ {
		must(n.Mem.Write(KVMailBase+i, word.Int(0)))
	}
	for k := id; k < keys; k += numNodes {
		slot := int32(k / numNodes)
		base := KVStoreBase + 2*slot
		r.DefineName(id, KVKeyWord(int32(k)), mem.Seg(base, 2))
		must(n.Mem.Write(base, word.Int(0)))
		must(n.Mem.Write(base+1, word.Int(0)))
	}
}

// KVGetMsg builds the host-injected gateway message for a get.
func KVGetMsg(p *asm.Program, key, seq int32) []word.Word {
	return []word.Word{
		word.MsgHeader(p.Entry(LKVGGet), 3),
		word.Int(key), word.Int(seq),
	}
}

// KVPutMsg builds the host-injected gateway message for a put.
func KVPutMsg(p *asm.Program, key, value, seq int32) []word.Word {
	return []word.Word{
		word.MsgHeader(p.Entry(LKVGPut), 4),
		word.Int(key), word.Int(value), word.Int(seq),
	}
}

// KVReply is one harvested mailbox record.
type KVReply struct {
	Seq     int32
	Value   int32
	Version int32
	Cycle   int32 // arrival cycle at the gateway (CYC timestamp)
}

// KVMailCursor reads how many replies have landed on gateway gw.
func KVMailCursor(m *machine.Machine, gw int) int32 {
	w, err := m.Nodes[gw].Mem.Read(KVApp + KVOffMailCursor)
	must(err)
	return w.Data()
}

// KVHarvest reads mailbox records [from, to) from gateway gw. The
// caller must keep to-from within KVMailRecords (the ring's capacity).
func KVHarvest(m *machine.Machine, gw int, from, to int32) []KVReply {
	mm := m.Nodes[gw].Mem
	out := make([]KVReply, 0, to-from)
	for i := from; i < to; i++ {
		base := KVMailBase + KVMailRecWords*(i%KVMailRecords)
		rd := func(off int32) int32 {
			w, err := mm.Read(base + off)
			must(err)
			return w.Data()
		}
		out = append(out, KVReply{Seq: rd(0), Value: rd(1), Version: rd(2), Cycle: rd(3)})
	}
	return out
}
