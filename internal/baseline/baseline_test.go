package baseline

import "testing"

func TestTable1PublishedMatchesPaper(t *testing.T) {
	rows := Table1Published()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot checks against the paper's Table 1.
	if rows[0].Machine != "nCUBE/2 (Vendor)" || rows[0].MicrosPer != 160.0 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if !rows[1].Blocking {
		t.Error("CM-5 vendor row must be flagged blocking")
	}
	if rows[4].CyclesPer != 109 {
		t.Errorf("CM-5 Active cycles = %v", rows[4].CyclesPer)
	}
	jm := Table1JMachinePaper()
	if jm.CyclesPer != 11 || jm.CyclesByte != 0.5 {
		t.Errorf("J-Machine paper row = %+v", jm)
	}
	// The paper's claim: one to two orders of magnitude.
	if rows[0].CyclesPer/jm.CyclesPer < 100 {
		t.Error("vendor overhead should be ≥2 orders of magnitude worse")
	}
	if rows[4].CyclesPer/jm.CyclesPer < 9 {
		t.Error("best Active Messages overhead should be ≈1 order of magnitude worse")
	}
}

func TestTable3PublishedMatchesPaper(t *testing.T) {
	rows := Table3Published()
	byNodes := map[int]BarrierRow{}
	for _, r := range rows {
		byNodes[r.Nodes] = r
	}
	if byNodes[2].Micros["J"] != 4.4 || byNodes[512].Micros["J"] != 27.4 {
		t.Error("J column endpoints wrong")
	}
	if byNodes[2].Micros["EM4"] != 2.7 {
		t.Error("EM4 row wrong")
	}
	if _, ok := byNodes[128].Micros["KSR"]; ok {
		t.Error("KSR has no 128-node figure in the paper")
	}
	if byNodes[64].Micros["KSR"] != 847 || byNodes[64].Micros["IPSC/860"] != 3587 {
		t.Error("64-node KSR/iPSC figures wrong")
	}
	if _, ok := byNodes[64].Micros["Delta"]; ok {
		t.Error("Delta has no 64-node figure in the paper")
	}
	// J-Machine barrier is 1-2 orders of magnitude faster than the
	// microprocessor-based machines at every common size.
	for _, n := range []int{2, 4, 8, 16} {
		j := byNodes[n].Micros["J"]
		for _, other := range []string{"KSR", "IPSC/860", "Delta"} {
			if v, ok := byNodes[n].Micros[other]; ok && v/j < 10 {
				t.Errorf("%s at %d nodes only %.1fx slower", other, n, v/j)
			}
		}
	}
}

func TestTable3MachinesOrder(t *testing.T) {
	m := Table3Machines()
	if len(m) != 5 || m[0] != "EM4" || m[1] != "J" {
		t.Errorf("machines = %v", m)
	}
}
