// Package baseline carries the published cost figures for the
// contemporary multicomputers the paper compares against. The paper
// itself compares the J-Machine to numbers reported in the literature —
// vendor message libraries, tuned Active Message implementations, and
// barrier timings from Oak Ridge technical reports — rather than to
// machines its authors ran, so this reproduction does the same: these
// constants regenerate the comparison rows of Table 1 and Table 3, while
// the J-Machine rows are measured on the simulator.
package baseline

// MessageOverhead models one machine's one-way message cost (Table 1):
// t_s is the sum of the fixed overheads of send and receive; t_b the
// injection overhead per byte. Cycles columns are derived from the
// machine's clock.
type MessageOverhead struct {
	Machine    string
	MicrosPer  float64 // µs per message (t_s)
	MicrosByte float64 // µs per byte (t_b)
	CyclesPer  float64 // cycles per message
	CyclesByte float64 // cycles per byte
	Blocking   bool    // the CM-5 vendor figure is a blocking send/receive
	Measured   bool    // true for rows measured on this simulator
}

// Table1Published returns the published rows of Table 1, in the paper's
// order ([6], [17]).
func Table1Published() []MessageOverhead {
	return []MessageOverhead{
		{Machine: "nCUBE/2 (Vendor)", MicrosPer: 160.0, MicrosByte: 0.45, CyclesPer: 3200, CyclesByte: 9},
		{Machine: "CM-5 (Vendor)", MicrosPer: 86.0, MicrosByte: 0.12, CyclesPer: 2838, CyclesByte: 4, Blocking: true},
		{Machine: "DELTA (Vendor)", MicrosPer: 72.0, MicrosByte: 0.08, CyclesPer: 2880, CyclesByte: 3},
		{Machine: "nCUBE/2 (Active)", MicrosPer: 23.0, MicrosByte: 0.45, CyclesPer: 460, CyclesByte: 9},
		{Machine: "CM-5 (Active)", MicrosPer: 3.3, MicrosByte: 0.12, CyclesPer: 109, CyclesByte: 4},
	}
}

// Table1JMachinePaper returns the paper's measured J-Machine row, for
// paper-vs-measured comparisons.
func Table1JMachinePaper() MessageOverhead {
	return MessageOverhead{
		Machine: "J-Machine", MicrosPer: 0.9, MicrosByte: 0.04,
		CyclesPer: 11, CyclesByte: 0.5,
	}
}

// BarrierRow is one machine-size row of Table 3 (microseconds per
// software barrier).
type BarrierRow struct {
	Nodes  int
	Micros map[string]float64 // machine name -> µs (absent = not reported)
}

// Table3Machines lists the comparison columns in the paper's order.
func Table3Machines() []string {
	return []string{"EM4", "J", "KSR", "IPSC/860", "Delta"}
}

// Table3Published returns the published barrier timings ([6], [7],
// [14]), including the paper's J-Machine column for reference.
func Table3Published() []BarrierRow {
	rows := []struct {
		nodes                    int
		em4, j, ksr, ipsc, delta float64
	}{
		{2, 2.7, 4.4, 60, 111, 109},
		{4, 3.6, 6.5, 90, 234, 248},
		{8, 4.7, 8.7, 180, 381, 473},
		{16, 5.4, 11.7, 260, 546, 923},
		{32, 0, 14.4, 525, 692, 1816},
		{64, 7.4, 16.5, 847, 3587, 0},
		{128, 0, 20.7, 0, 0, 0},
		{256, 0, 24.4, 0, 0, 0},
		{512, 0, 27.4, 0, 0, 0},
	}
	out := make([]BarrierRow, len(rows))
	for i, r := range rows {
		m := make(map[string]float64)
		add := func(name string, v float64) {
			if v != 0 {
				m[name] = v
			}
		}
		add("EM4", r.em4)
		add("J", r.j)
		add("KSR", r.ksr)
		add("IPSC/860", r.ipsc)
		add("Delta", r.delta)
		out[i] = BarrierRow{Nodes: r.nodes, Micros: m}
	}
	return out
}
