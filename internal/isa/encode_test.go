package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeOne(t *testing.T) {
	cases := []Instr{
		{Op: NOP},
		{Op: MOVE, A: R0, B: RegOp(R1)},
		{Op: MOVE, A: A3, B: ImmOp(15)},
		{Op: MOVE, A: R2, B: ImmOp(-16)},
		{Op: MOVE, A: R2, B: ImmOp(100000)},   // long immediate
		{Op: MOVE, A: R2, B: ImmOp(-100000)},  // long negative immediate
		{Op: ADD, A: R0, B: MemOp(A1, 7)},     // short offset
		{Op: ADD, A: R0, B: MemOp(A1, 8)},     // long offset
		{Op: SUB, A: R3, B: MemOp(A0, 40000)}, // long offset
		{Op: MUL, A: R1, B: MemRegOp(A2, R3)},
		{Op: SENDE, B: RegOp(NNR)},
		{Op: XLATE, A: A0, B: RegOp(R0)},
		{Op: TRAP, B: ImmOp(2)},
	}
	for _, in := range cases {
		bits, ext, hasExt, err := EncodeOne(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, usedExt, err := DecodeOne(bits, ext)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if usedExt != hasExt {
			t.Errorf("%v: ext flag mismatch enc=%v dec=%v", in, hasExt, usedExt)
		}
		if !reflect.DeepEqual(got, in) {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestEncodeRejectsBadOperands(t *testing.T) {
	bad := []Instr{
		{Op: MOVE, A: R0, B: MemOp(R1, 0)},     // memory via data register
		{Op: ADD, A: R0, B: MemRegOp(A0, A1)},  // index must be R0-R3
		{Op: NumOps, A: R0, B: RegOp(R0)},      // invalid opcode
		{Op: MOVE, A: NumRegs, B: RegOp(R0)},   // invalid register
		{Op: MOVE, A: R0, B: RegOp(NumRegs)},   // invalid operand register
		{Op: MOVE, A: R0, B: Operand{Mode: 9}}, // invalid mode
	}
	for _, in := range bad {
		if _, _, _, err := EncodeOne(in); err == nil {
			t.Errorf("encode %v: expected error", in)
		}
	}
}

// randInstr produces a random valid instruction.
func randInstr(r *rand.Rand) Instr {
	in := Instr{
		Op: Op(r.Intn(int(NumOps))),
		A:  Reg(r.Intn(NumRegs)),
	}
	switch r.Intn(4) {
	case 0:
		in.B = RegOp(Reg(r.Intn(NumRegs)))
	case 1:
		in.B = ImmOp(int32(r.Uint32()))
	case 2:
		in.B = MemOp(A0+Reg(r.Intn(4)), int32(r.Intn(1<<16)))
	case 3:
		in.B = MemRegOp(A0+Reg(r.Intn(4)), Reg(r.Intn(4)))
	}
	return in
}

func TestEncodeDecodeProgramProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		prog := make([]Instr, int(n)%64)
		for i := range prog {
			prog[i] = randInstr(r)
		}
		im, err := Encode(prog)
		if err != nil {
			return false
		}
		got, err := Decode(im)
		if err != nil {
			return false
		}
		if len(prog) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, prog)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodePacking(t *testing.T) {
	// Two short instructions share one word.
	prog := []Instr{
		{Op: ADD, A: R0, B: RegOp(R1)},
		{Op: SUB, A: R2, B: ImmOp(3)},
	}
	im, err := Encode(prog)
	if err != nil {
		t.Fatal(err)
	}
	if im.Len() != 1 {
		t.Errorf("two short instructions should pack into 1 word, got %d", im.Len())
	}
	if im.Addrs[0] != (SlotAddr{0, 0}) || im.Addrs[1] != (SlotAddr{0, 1}) {
		t.Errorf("slot addrs = %v", im.Addrs)
	}

	// A long-immediate instruction occupies a word pair.
	prog = []Instr{
		{Op: MOVE, A: R0, B: ImmOp(1 << 20)},
	}
	im, err = Encode(prog)
	if err != nil {
		t.Fatal(err)
	}
	if im.Len() != 2 {
		t.Errorf("extended instruction should need 2 words, got %d", im.Len())
	}
	if !im.Words[1].IsExt() || im.Words[1].ExtValue() != 1<<20 {
		t.Errorf("extension word wrong: %v", im.Words[1])
	}
}

func TestOpHelpers(t *testing.T) {
	if !SEND2E.IsSend() || MOVE.IsSend() {
		t.Error("IsSend misclassifies")
	}
	if SEND1.SendPriority() != 1 || SEND.SendPriority() != 0 {
		t.Error("SendPriority wrong")
	}
	if SEND2.SendWords() != 2 || SENDE.SendWords() != 1 {
		t.Error("SendWords wrong")
	}
	if !SENDE1.SendEnds() || SEND21.SendEnds() == false && false {
		t.Error("SendEnds wrong for SENDE1")
	}
	if SEND.SendEnds() || !SEND2E.SendEnds() {
		t.Error("SendEnds wrong")
	}
	if !BR.IsBranch() || ADD.IsBranch() {
		t.Error("IsBranch wrong")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: ADD, A: R0, B: MemOp(A1, 3)}
	if got := in.String(); got != "ADD R0, [A1+3]" {
		t.Errorf("String = %q", got)
	}
	if got := (Instr{Op: SUSPEND}).String(); got != "SUSPEND" {
		t.Errorf("String = %q", got)
	}
}
