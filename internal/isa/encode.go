// 17-bit instruction encoding.
//
// The MDP packs two 17-bit instructions into each 36-bit memory word. This
// file implements that encoding faithfully enough to round-trip every
// instruction the assembler can produce:
//
//	bits 16-11  opcode (6 bits)
//	bits 10-7   register A (4 bits)
//	bits  6-5   operand B mode (2 bits)
//	bits  4-0   operand B payload (5 bits)
//
// Payload layout by mode:
//
//	mode 0 (reg):     payload 0-15 name a register. Payload 16 escapes to
//	                  a long immediate held in an extension word; payloads
//	                  20-23 escape to [A(payload-20) + long offset].
//	mode 1 (imm):     payload is a signed 5-bit constant (-16..15).
//	mode 2 (mem):     payload = areg(2 bits)<<3 | offset(3 bits), i.e.
//	                  [A0-A3 + 0..7].
//	mode 3 (memreg):  payload = areg(2 bits)<<2 | idx(2 bits), i.e.
//	                  [A0-A3 + R0-R3].
//
// An instruction that needs an extension (long immediate or long offset)
// must begin a word: it occupies slot 0, slot 1 holds a NOP, and the next
// code word carries the 32-bit constant. The interpreter executes decoded
// instructions directly; the encoded image is used for code-size
// accounting, loading, and round-trip verification.
package isa

import "fmt"

// CodeWord is one 36-bit instruction word: two 17-bit slots (slot 0 in
// bits 0-16, slot 1 in bits 17-33) or a 32-bit extension constant flagged
// by extMark.
type CodeWord uint64

const (
	slotBits = 17
	slotMask = 1<<slotBits - 1
	// extMark flags a code word holding an extension constant rather
	// than two instruction slots (bit 35, outside both slots).
	extMark CodeWord = 1 << 35

	escLongImm = 16 // mode-0 payload escape: long immediate follows
	escLongMem = 20 // payloads 20-23: [A(payload-20) + long offset]
)

// Slot extracts slot s (0 or 1) from a code word.
func (c CodeWord) Slot(s int) uint32 {
	return uint32(c >> (slotBits * uint(s)) & slotMask)
}

// IsExt reports whether the code word holds an extension constant.
func (c CodeWord) IsExt() bool { return c&extMark != 0 }

// ExtValue returns the 32-bit constant held by an extension word.
func (c CodeWord) ExtValue() int32 { return int32(uint32(c)) }

func extWord(v int32) CodeWord { return extMark | CodeWord(uint32(v)) }

func packSlots(s0, s1 uint32) CodeWord {
	return CodeWord(s0&slotMask) | CodeWord(s1&slotMask)<<slotBits
}

// EncodeOne encodes a single instruction into its 17-bit form, reporting
// whether an extension word is required and its value.
func EncodeOne(in Instr) (bits uint32, ext int32, hasExt bool, err error) {
	if in.Op >= NumOps {
		return 0, 0, false, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.A >= NumRegs {
		return 0, 0, false, fmt.Errorf("isa: invalid register %d", in.A)
	}
	bits = uint32(in.Op)<<11 | uint32(in.A)<<7
	b := in.B
	switch b.Mode {
	case ModeReg:
		if b.Reg >= NumRegs {
			return 0, 0, false, fmt.Errorf("isa: invalid operand register %d", b.Reg)
		}
		bits |= 0<<5 | uint32(b.Reg)
	case ModeImm:
		if b.NeedsExt() {
			bits |= 0<<5 | escLongImm
			return bits, b.Imm, true, nil
		}
		bits |= 1<<5 | uint32(b.Imm)&0x1F
	case ModeMem:
		if !b.Reg.IsAddr() {
			return 0, 0, false, fmt.Errorf("isa: memory operand needs address register, got %s", b.Reg)
		}
		a := uint32(b.Reg - A0)
		if b.NeedsExt() {
			bits |= 0<<5 | (escLongMem + a)
			return bits, b.Imm, true, nil
		}
		bits |= 2<<5 | a<<3 | uint32(b.Imm)&0x7
	case ModeMemReg:
		if !b.Reg.IsAddr() {
			return 0, 0, false, fmt.Errorf("isa: memory operand needs address register, got %s", b.Reg)
		}
		if b.Idx > R3 {
			return 0, 0, false, fmt.Errorf("isa: index register must be R0-R3, got %s", b.Idx)
		}
		bits |= 3<<5 | uint32(b.Reg-A0)<<2 | uint32(b.Idx)
	default:
		return 0, 0, false, fmt.Errorf("isa: invalid operand mode %d", b.Mode)
	}
	return bits, 0, false, nil
}

// DecodeOne decodes a 17-bit instruction. ext supplies the extension
// constant for escaped encodings (ignored otherwise); needExt reports
// whether it was consumed.
func DecodeOne(bits uint32, ext int32) (in Instr, needExt bool, err error) {
	op := Op(bits >> 11 & 0x3F)
	if op >= NumOps {
		return Instr{}, false, fmt.Errorf("isa: invalid opcode %d", op)
	}
	in.Op = op
	in.A = Reg(bits >> 7 & 0xF)
	mode := bits >> 5 & 0x3
	payload := bits & 0x1F
	switch mode {
	case 0:
		switch {
		case payload < NumRegs:
			in.B = RegOp(Reg(payload))
		case payload == escLongImm:
			in.B = ImmOp(ext)
			needExt = true
		case payload >= escLongMem && payload < escLongMem+4:
			in.B = MemOp(A0+Reg(payload-escLongMem), ext)
			needExt = true
		default:
			return Instr{}, false, fmt.Errorf("isa: invalid register payload %d", payload)
		}
	case 1:
		v := int32(payload)
		if v >= 16 {
			v -= 32 // sign-extend 5 bits
		}
		in.B = ImmOp(v)
	case 2:
		in.B = MemOp(A0+Reg(payload>>3&0x3), int32(payload&0x7))
	case 3:
		in.B = MemRegOp(A0+Reg(payload>>2&0x3), Reg(payload&0x3))
	}
	return in, needExt, nil
}

// SlotAddr locates an instruction within an encoded image.
type SlotAddr struct {
	Word int // index of the code word
	Slot int // 0 or 1
}

// Image is an encoded program: packed code words plus the slot address of
// each instruction, in program order.
type Image struct {
	Words []CodeWord
	Addrs []SlotAddr
}

// Len returns the image size in 36-bit words.
func (im *Image) Len() int { return len(im.Words) }

// padBits fills unused slots (alignment before extended instructions and
// trailing half-words). It deliberately uses an invalid opcode so padding
// can never be confused with a program's own NOPs; Decode elides it.
const padBits = uint32(NumOps) << 11

// Encode packs a program into code words. Instructions requiring an
// extension word are aligned to slot 0 with a NOP filling slot 1.
func Encode(prog []Instr) (*Image, error) {
	im := &Image{Addrs: make([]SlotAddr, len(prog))}
	var pend uint32 // slot-0 bits awaiting a slot-1 partner
	havePend := false
	flush := func(s1 uint32) {
		im.Words = append(im.Words, packSlots(pend, s1))
		havePend = false
	}
	for i, in := range prog {
		bits, ext, hasExt, err := EncodeOne(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, in, err)
		}
		if hasExt {
			if havePend {
				flush(padBits) // close the open word first
			}
			im.Addrs[i] = SlotAddr{Word: len(im.Words), Slot: 0}
			im.Words = append(im.Words, packSlots(bits, padBits), extWord(ext))
			continue
		}
		if havePend {
			im.Addrs[i] = SlotAddr{Word: len(im.Words), Slot: 1}
			flush(bits)
		} else {
			im.Addrs[i] = SlotAddr{Word: len(im.Words), Slot: 0}
			pend = bits
			havePend = true
		}
	}
	if havePend {
		flush(padBits)
	}
	return im, nil
}

// Decode unpacks an encoded image back into the instruction sequence,
// eliding the padding slots Encode inserted: Decode(Encode(p))
// round-trips p exactly.
func Decode(im *Image) ([]Instr, error) {
	var prog []Instr
	for w := 0; w < len(im.Words); w++ {
		cw := im.Words[w]
		if cw.IsExt() {
			return nil, fmt.Errorf("isa: unexpected extension word at %d", w)
		}
		var ext int32
		if w+1 < len(im.Words) && im.Words[w+1].IsExt() {
			ext = im.Words[w+1].ExtValue()
		}
		in0, used, err := DecodeOne(cw.Slot(0), ext)
		if err != nil {
			return nil, fmt.Errorf("word %d slot 0: %w", w, err)
		}
		prog = append(prog, in0)
		if used {
			w++ // skip the extension word; slot 1 is padding
			continue
		}
		if s1 := cw.Slot(1); s1 != padBits {
			in1, used1, err := DecodeOne(s1, 0)
			if err != nil {
				return nil, fmt.Errorf("word %d slot 1: %w", w, err)
			}
			if used1 {
				return nil, fmt.Errorf("word %d slot 1: extension from slot 1 is not encodable", w)
			}
			prog = append(prog, in1)
		}
	}
	return prog, nil
}
