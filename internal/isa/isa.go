// Package isa defines the instruction set of the Message-Driven Processor
// as modelled by this reproduction.
//
// The MDP encodes two 17-bit instructions in each 36-bit word. Most
// instructions are two-operand: a register destination A and a general
// operand B that may name a register, a short immediate, or a memory
// location addressed through one of the address registers. Reading one
// operand from memory is permitted (and costs an extra cycle from internal
// memory), which reduces access pressure on the small register file.
//
// The special instructions are the ones the paper evaluates: the SEND
// family for message injection (up to 2 words per cycle), SUSPEND for
// ending a message handler, ENTER/XLATE for the global namespace, and the
// tag instructions (RTAG/WTAG) that interact with the presence tags used
// for synchronization.
package isa

import "fmt"

// Op is an MDP opcode.
type Op uint8

// Opcodes. Arithmetic and comparison instructions compute A ← A op B.
const (
	NOP Op = iota
	// MOVE copies operand B into register A.
	MOVE
	// ST stores register A into the memory location named by operand B.
	ST

	// ADD through ASH compute A ← A op B.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	// LSH shifts A left by B (negative B shifts right logically).
	LSH
	// ASH shifts A left by B arithmetically (negative B shifts right).
	ASH
	// NOT complements register A (operand B unused).
	NOT
	// NEG negates register A (operand B unused).
	NEG

	// EQ through GE compute A ← bool(A op B).
	EQ
	NE
	LT
	LE
	GT
	GE

	// BR branches unconditionally to the label in operand B.
	BR
	// BT branches to B if register A is truthy (non-zero data).
	BT
	// BF branches to B if register A is falsy (zero data).
	BF
	// BSR branches to B, leaving the return address in register A as an
	// IP-tagged word. Paired with JMP for subroutine linkage.
	BSR
	// JMP jumps to the code address held in operand B.
	JMP

	// SUSPEND ends the current thread. For a message handler the message
	// is consumed and the processor dispatches the next one.
	SUSPEND
	// HALT stops the node entirely (simulator control, used by the
	// single-node base cases and at the end of applications).
	HALT

	// SEND injects one word (operand B) into the network at priority 0.
	// The first word of a message names the destination node; it is
	// consumed by the network and not delivered.
	SEND
	// SEND2 injects two words (registers A then operand B) in one cycle.
	SEND2
	// SENDE injects operand B and marks the end of the message.
	SENDE
	// SEND2E injects register A then operand B and ends the message.
	SEND2E
	// SEND1, SEND21, SENDE1, SEND2E1 are the priority-1 variants.
	SEND1
	SEND21
	SENDE1
	SEND2E1

	// ENTER inserts the pair (key register A, value operand B) into the
	// name-translation table.
	ENTER
	// XLATE looks up operand B in the translation table and places the
	// translation in register A. A miss raises a fault handled by system
	// software. A successful XLATE takes three cycles.
	XLATE
	// PROBE sets register A to a boolean: whether B translates without
	// faulting.
	PROBE

	// RTAG reads the 4-bit tag of operand B into register A as an int.
	RTAG
	// WTAG replaces the tag of register A with the low bits of operand B.
	WTAG
	// ISCF sets register A to whether operand B carries the cfut
	// presence tag, without faulting (the tag-test used by synchronizing
	// writers; Table 2's 4-cycle tagged write depends on it).
	ISCF

	// TRAP transfers to system software with service number B (register
	// state is visible to the handler). The MDP reached its runtime the
	// same way: a hardware vector into privileged code.
	TRAP

	// NumOps is the number of defined opcodes.
	NumOps
)

var opNames = [NumOps]string{
	"NOP", "MOVE", "ST",
	"ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR", "LSH", "ASH",
	"NOT", "NEG",
	"EQ", "NE", "LT", "LE", "GT", "GE",
	"BR", "BT", "BF", "BSR", "JMP",
	"SUSPEND", "HALT",
	"SEND", "SEND2", "SENDE", "SEND2E",
	"SEND1", "SEND21", "SENDE1", "SEND2E1",
	"ENTER", "XLATE", "PROBE",
	"RTAG", "WTAG", "ISCF", "TRAP",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsSend reports whether the opcode is one of the SEND family.
func (o Op) IsSend() bool { return o >= SEND && o <= SEND2E1 }

// SendPriority returns the network priority (0 or 1) of a SEND-family
// opcode.
func (o Op) SendPriority() int {
	if o >= SEND1 {
		return 1
	}
	return 0
}

// SendWords returns how many words a SEND-family opcode injects.
func (o Op) SendWords() int {
	switch o {
	case SEND2, SEND2E, SEND21, SEND2E1:
		return 2
	default:
		return 1
	}
}

// SendEnds reports whether the SEND-family opcode terminates the message.
func (o Op) SendEnds() bool {
	switch o {
	case SENDE, SEND2E, SENDE1, SEND2E1:
		return true
	default:
		return false
	}
}

// IsBranch reports whether the opcode may redirect control flow.
func (o Op) IsBranch() bool {
	switch o {
	case BR, BT, BF, BSR, JMP:
		return true
	default:
		return false
	}
}

// Reg names one of the sixteen register codes available to instructions.
// Each priority level has four general data registers (R0-R3) and four
// address registers (A0-A3). Codes 8 and up name special registers shared
// by all priority levels.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	A0
	A1
	A2
	A3
	// NNR is the Node Number Register: this node's router address as a
	// node-tagged word. Converting linear node indices to router
	// addresses ("NNR calculations") is a measurable cost in Figure 6.
	NNR
	// QLEN reads the current priority-0 queue occupancy in words. It
	// supports the flow-control experiments from the paper's critique.
	QLEN
	// PRI reads the current execution priority (0, 1, or 2=background).
	PRI
	// ZERO always reads as integer zero; writes are discarded.
	ZERO
	// CYC reads the low 32 bits of the node cycle counter. The real MDP
	// lacked one — the paper's critique calls the omission out — so this
	// register is a simulator extension used only by instrumentation.
	CYC
	// RGN is a write-only statistics region marker (simulator
	// instrumentation, standing in for the paper's hand-placed
	// counters). Writing stats.CatNNR directs subsequent compute cycles
	// to the "NNR Calc" bucket of Figure 6; writing 0 restores normal
	// attribution.
	RGN

	// NumRegs is the size of the register code space (4 bits).
	NumRegs = 16
)

var regNames = [NumRegs]string{
	"R0", "R1", "R2", "R3", "A0", "A1", "A2", "A3",
	"NNR", "QLEN", "PRI", "ZERO", "CYC", "RGN", "r14", "r15",
}

// String returns the assembler name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// IsAddr reports whether the register is one of the address registers.
func (r Reg) IsAddr() bool { return r >= A0 && r <= A3 }

// IsSpecial reports whether the register is a shared special register.
func (r Reg) IsSpecial() bool { return r >= NNR }

// Mode describes how operand B names its value.
type Mode uint8

const (
	// ModeReg reads a register.
	ModeReg Mode = iota
	// ModeImm is an immediate constant. Constants outside the 5-bit
	// short range occupy an extension word in the instruction stream.
	ModeImm
	// ModeMem reads memory at [Areg + offset]. Offsets outside the
	// 3-bit short range occupy an extension word.
	ModeMem
	// ModeMemReg reads memory at [Areg + Ridx].
	ModeMemReg
)

// Operand is the decoded form of an instruction's B operand.
type Operand struct {
	Mode Mode
	Reg  Reg   // ModeReg: the register; ModeMem/ModeMemReg: the address register
	Idx  Reg   // ModeMemReg: the data register supplying the index
	Imm  int32 // ModeImm: the constant; ModeMem: the offset
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Mode: ModeReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int32) Operand { return Operand{Mode: ModeImm, Imm: v} }

// MemOp returns a memory operand [a + offset].
func MemOp(a Reg, offset int32) Operand {
	return Operand{Mode: ModeMem, Reg: a, Imm: offset}
}

// MemRegOp returns a memory operand [a + idx].
func MemRegOp(a, idx Reg) Operand {
	return Operand{Mode: ModeMemReg, Reg: a, Idx: idx}
}

// IsMem reports whether the operand reads or writes memory.
func (o Operand) IsMem() bool { return o.Mode == ModeMem || o.Mode == ModeMemReg }

// NeedsExt reports whether the operand requires an extension word in the
// encoded instruction stream (long immediates and long offsets).
func (o Operand) NeedsExt() bool {
	switch o.Mode {
	case ModeImm:
		return o.Imm < -16 || o.Imm > 15
	case ModeMem:
		return o.Imm < 0 || o.Imm > 7
	default:
		return false
	}
}

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Mode {
	case ModeReg:
		return o.Reg.String()
	case ModeImm:
		return fmt.Sprintf("#%d", o.Imm)
	case ModeMem:
		return fmt.Sprintf("[%s+%d]", o.Reg, o.Imm)
	case ModeMemReg:
		return fmt.Sprintf("[%s+%s]", o.Reg, o.Idx)
	}
	return "?"
}

// Instr is a decoded MDP instruction.
type Instr struct {
	Op Op
	A  Reg
	B  Operand
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case NOP, SUSPEND, HALT:
		return i.Op.String()
	case BR, JMP:
		return fmt.Sprintf("%s %s", i.Op, i.B)
	case NOT, NEG:
		return fmt.Sprintf("%s %s", i.Op, i.A)
	default:
		return fmt.Sprintf("%s %s, %s", i.Op, i.A, i.B)
	}
}
