package asm

import (
	"fmt"
	"sort"

	"jmachine/internal/isa"
)

// This file is the front end of the compiled execution tier
// (internal/compiled, docs/COMPILED.md). The static verifier already
// recovers everything a translator needs — handler entry points from
// the MoveHdr idiom, a CFG with successor edges and in-degrees — so
// Translate re-runs those passes and repackages the result as basic
// blocks, gated on a clean Check: a program the verifier rejects is
// never handed to the closure emitter.

// Block is one straight-line run of instructions: control enters only
// at Start and leaves only after End-1 (to Succs, or to the dispatcher
// when the last instruction ends the thread).
type Block struct {
	Start int32   // first instruction index
	End   int32   // one past the last instruction index
	Succs []int32 // successor block Start addresses, ascending
}

// Translation is the basic-block view of an assembled program.
type Translation struct {
	Prog   *Program
	Blocks []Block
	// BlockAt maps an instruction index to the index of its containing
	// block in Blocks.
	BlockAt []int32
	// Entries are the handler entry addresses the translation was
	// rooted at: recovered MoveHdr headers plus labels nothing branches
	// or falls through to (host-dispatched handlers), ascending.
	Entries []int32
	// Reachable marks the instructions some entry can reach. The
	// emitter compiles only reachable code; anything else stays on the
	// interpreter, which is where undefined behaviour belongs.
	Reachable []bool
	// Certs are the effect/resource certificates (effects.go): the
	// per-instruction send-distance table the fusion controller consults
	// and the per-handler resource bounds.
	Certs *Certs
}

// ErrFindings is returned by Translate when the program fails the
// static verifier; the findings that gated it are attached.
type ErrFindings struct {
	Findings []Finding
}

func (e *ErrFindings) Error() string {
	return fmt.Sprintf("asm: translate: program fails static verification (%d findings, first: %s)",
		len(e.Findings), e.Findings[0])
}

// Translate verifies p and recovers its basic-block structure. The
// allowances are the same suppressions Check accepts; a program with
// any remaining finding is rejected, so the compiled tier only ever
// sees code the verifier passed.
func Translate(p *Program, allow ...Allowance) (*Translation, error) {
	if fs := Check(p, allow...); len(fs) > 0 {
		return nil, &ErrFindings{Findings: fs}
	}
	c := &checker{p: p, labelAt: labelIndex(p)}
	c.recoverHeaders()
	c.buildCFG()
	c.certify()

	n := len(p.Instrs)
	tr := &Translation{Prog: p, Certs: c.eff.certs}
	if n == 0 {
		return tr, nil
	}

	// Entry points: recovered headers, plus labels with no intra-program
	// predecessor (dispatched by host-built headers), mirroring the
	// seeding of the checker's dataflow.
	entrySet := make(map[int32]bool, len(c.entries))
	for addr := range c.entries {
		entrySet[addr] = true
	}
	for _, addr := range p.Labels {
		if int(addr) < n && c.preds[addr] == 0 && !c.entries[addr] {
			entrySet[addr] = true
		}
	}
	if len(entrySet) == 0 {
		entrySet[0] = true
	}
	for addr := range entrySet {
		tr.Entries = append(tr.Entries, addr)
	}
	sort.Slice(tr.Entries, func(i, j int) bool { return tr.Entries[i] < tr.Entries[j] })

	// Reachability from the entries over the checker's edges.
	tr.Reachable = make([]bool, n)
	work := append([]int32(nil), tr.Entries...)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if tr.Reachable[i] {
			continue
		}
		tr.Reachable[i] = true
		for _, s := range c.succs[i] {
			if !tr.Reachable[s] {
				work = append(work, s)
			}
		}
	}

	// Block boundaries: entries, labels, branch targets, and the
	// instruction after any control transfer — the same leader set the
	// verifier's block scan uses, plus the entry roots.
	leader := make([]bool, n)
	leader[0] = true
	for addr := range entrySet {
		leader[addr] = true
	}
	for _, addr := range p.Labels {
		if int(addr) < n {
			leader[addr] = true
		}
	}
	for i, in := range p.Instrs {
		for _, s := range c.succs[i] {
			if s != int32(i+1) {
				leader[s] = true
			}
		}
		ends := in.Op.IsBranch() || in.Op == isa.SUSPEND || in.Op == isa.HALT
		if ends && i+1 < n {
			leader[i+1] = true
		}
	}

	tr.BlockAt = make([]int32, n)
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		b := Block{Start: int32(start), End: int32(end)}
		for _, s := range c.succs[end-1] {
			b.Succs = append(b.Succs, s)
		}
		sort.Slice(b.Succs, func(i, j int) bool { return b.Succs[i] < b.Succs[j] })
		idx := int32(len(tr.Blocks))
		tr.Blocks = append(tr.Blocks, b)
		for i := start; i < end; i++ {
			tr.BlockAt[i] = idx
		}
		start = end
	}
	return tr, nil
}
