package asm

import (
	"fmt"
	"sort"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// This file is the static verifier over assembled MDP programs: the
// second layer of the jm-lint suite (docs/LINT.md). The simulator
// reports a handler's mistakes only when a run happens to reach them —
// an undefined register read, a SEND arity that disagrees with the
// header built by MoveHdr, or a consumed cfut slot all surface as
// mid-run faults. Check finds the same classes before any cycle is
// simulated, from the decoded instruction stream alone.
//
// Diagnostic codes:
//
//	ASM001  register read before any definition on a handler path
//	ASM002  SEND message length disagrees with its MoveHdr declaration
//	ASM003  consuming a register just tagged cfut/fut (faults at run time)
//	ASM004  unreachable code after an unconditional control transfer
//	ASM005  control can fall off the end of the program
//	ASM006  branch target malformed or outside the code segment
//	ASM007  message still open (no ending SEND) at SUSPEND/HALT
//	ASM008  instruction faults unconditionally (bad ST operand, ÷0)
//	ASM009  SEND inside a loop with no varying exit condition
//	ASM010  cross-priority blind store to a shared static address
//	ASM011  handler send cycle that amplifies traffic per activation
//	ASM012  allowance that suppressed no finding (stale suppression)
//
// ASM009–ASM011 come from the effect certifier in effects.go; ASM012
// from the allowance filter below.

// Finding is one static-verifier diagnostic.
type Finding struct {
	Code  string // "ASM001" ... "ASM012"
	Addr  int32  // instruction index, -1 for program-level findings
	Label string // nearest label at or before Addr, "" if none
	Msg   string

	// Handler names the handler region containing Addr (the entry at or
	// nearest before it, by address) and HandlerOff is the instruction
	// index within that handler; Handler is "" and HandlerOff -1 when
	// the finding has no instruction address or the program no entries.
	Handler    string
	HandlerOff int32
}

func (f Finding) String() string {
	at := fmt.Sprintf("@%d", f.Addr)
	switch {
	case f.Handler != "" && f.HandlerOff >= 0:
		at = fmt.Sprintf("%s+%d%s", f.Handler, f.HandlerOff, at)
	case f.Label != "":
		at = fmt.Sprintf("%s%s", f.Label, at)
	}
	return fmt.Sprintf("%s: %s: %s", at, f.Code, f.Msg)
}

// Allowance suppresses findings of one code under one label, the asm
// layer's equivalent of a //jm: suppression comment. The rationale is
// required and carried for documentation.
type Allowance struct {
	Code      string
	Label     string // nearest-label scope the allowance covers
	Rationale string
}

// Check statically verifies an assembled program and returns its
// findings sorted by address. Findings matched by an allowance (same
// code, same nearest label, non-empty rationale) are dropped; an
// allowance that drops nothing is itself reported as ASM012 (ASM012
// findings cannot be suppressed).
func Check(p *Program, allow ...Allowance) []Finding {
	c := &checker{p: p, labelAt: labelIndex(p)}
	c.recoverHeaders()
	c.buildCFG()
	c.certify()       // effect/resource certificates (effects.go)
	c.checkFlow()     // ASM001, reachability seeds
	c.checkBlocks()   // ASM002, ASM003, ASM007, ASM008
	c.checkLayout()   // ASM004, ASM005
	c.checkBranches() // ASM006
	c.checkEffects()  // ASM009, ASM010, ASM011
	used := make([]bool, len(allow))
	kept := c.findings[:0]
	for _, f := range c.findings {
		if i := allowanceFor(f, allow); i >= 0 {
			used[i] = true
		} else {
			kept = append(kept, f)
		}
	}
	c.findings = kept
	for i, a := range allow {
		if !used[i] && a.Rationale != "" {
			c.reportStale(a) // ASM012
		}
	}
	c.attributeHandlers()
	out := c.findings
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// allowanceFor returns the index of the first allowance matching the
// finding, or -1.
func allowanceFor(f Finding, allow []Allowance) int {
	for i, a := range allow {
		if a.Code == f.Code && a.Label == f.Label && a.Rationale != "" {
			return i
		}
	}
	return -1
}

// sendSuppression reports the codes whose allowances a send-free
// certificate makes provably stale.
func sendSuppression(code string) bool {
	switch code {
	case "ASM002", "ASM007", "ASM009", "ASM011":
		return true
	}
	return false
}

// reportStale appends the ASM012 finding for an allowance that
// suppressed nothing.
func (c *checker) reportStale(a Allowance) {
	addr := int32(-1)
	if la, ok := c.p.Labels[a.Label]; ok {
		addr = la
	}
	msg := fmt.Sprintf("allowance for %s under %q suppressed no finding; remove the stale suppression", a.Code, a.Label)
	if addr >= 0 && c.eff.certs != nil && sendSuppression(a.Code) {
		if h := c.eff.certs.Handler(addr); h != nil && h.SendDist >= InfDist {
			msg += " (the handler is certified send-free)"
		}
	}
	c.findings = append(c.findings, Finding{Code: "ASM012", Addr: addr, Label: a.Label, Msg: msg})
}

// checker carries the per-program analysis state.
type checker struct {
	p       *Program
	labelAt map[int32]string // address -> label (first if several)

	// headers holds MoveHdr-built message headers recovered from the
	// instruction stream: instruction index of the MOVE -> header word.
	headers map[int]word.Word
	// entries are handler entry addresses named by recovered headers.
	entries map[int32]bool

	succs [][]int32 // CFG successor lists, by instruction index
	preds []int     // in-degree (fall-through and branch edges)

	eff effectState // certificates and send-graph state (effects.go)

	findings []Finding
}

func labelIndex(p *Program) map[int32]string {
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic pick when labels share an address
	at := make(map[int32]string, len(names))
	for _, name := range names {
		if _, taken := at[p.Labels[name]]; !taken {
			at[p.Labels[name]] = name
		}
	}
	return at
}

// nearestLabel names the label at or before addr.
func (c *checker) nearestLabel(addr int32) string {
	for a := addr; a >= 0; a-- {
		if name, ok := c.labelAt[a]; ok {
			return name
		}
	}
	return ""
}

func (c *checker) report(code string, addr int32, format string, args ...any) {
	label := ""
	if addr >= 0 {
		label = c.nearestLabel(addr)
	}
	c.findings = append(c.findings, Finding{
		Code: code, Addr: addr, Label: label,
		Msg: fmt.Sprintf(format, args...),
	})
}

// recoverHeaders finds the MoveHdr idiom in the assembled stream —
// MOVE r, #imm immediately followed by WTAG r, #TagMsg — and decodes
// the packed header constant back into (handler IP, message length).
// These are the handler entry points and declared arities the rest of
// the verifier checks against.
func (c *checker) recoverHeaders() {
	c.headers = make(map[int]word.Word)
	c.entries = make(map[int32]bool)
	ins := c.p.Instrs
	for i := 0; i+1 < len(ins); i++ {
		mv, wt := ins[i], ins[i+1]
		if mv.Op != isa.MOVE || mv.B.Mode != isa.ModeImm {
			continue
		}
		if wt.Op != isa.WTAG || wt.A != mv.A ||
			wt.B.Mode != isa.ModeImm || word.Tag(wt.B.Imm&0xF) != word.TagMsg {
			continue
		}
		hdr := word.New(word.TagMsg, mv.B.Imm)
		c.headers[i] = hdr
		ip := hdr.HeaderIP()
		if ip < 0 || int(ip) >= len(ins) {
			c.report("ASM006", int32(i),
				"message header names handler IP %d outside the code segment (%d instructions)", ip, len(ins))
			continue
		}
		c.entries[ip] = true
	}
}

// buildCFG records successor edges and in-degrees for every
// instruction. BSR is treated as a call: control reaches both the
// subroutine and (on return) the following instruction.
func (c *checker) buildCFG() {
	n := len(c.p.Instrs)
	c.succs = make([][]int32, n)
	c.preds = make([]int, n)
	edge := func(from int, to int32) {
		if to >= 0 && int(to) < n {
			c.succs[from] = append(c.succs[from], to)
			c.preds[to]++
		}
	}
	for i, in := range c.p.Instrs {
		next := int32(i + 1)
		switch in.Op {
		case isa.BR:
			if in.B.Mode == isa.ModeImm {
				edge(i, in.B.Imm)
			}
		case isa.BT, isa.BF:
			if in.B.Mode == isa.ModeImm {
				edge(i, in.B.Imm)
			}
			edge(i, next)
		case isa.BSR:
			if in.B.Mode == isa.ModeImm {
				edge(i, in.B.Imm)
			}
			edge(i, next)
		case isa.JMP:
			if in.B.Mode == isa.ModeImm {
				edge(i, in.B.Imm)
			}
			// A register JMP is a subroutine return: no static successor.
		case isa.SUSPEND, isa.HALT:
			// Thread ends.
		default:
			edge(i, next)
		}
	}
}

// Register sets are 16-bit masks indexed by isa.Reg.
const (
	specialsMask = uint16(1<<isa.NNR | 1<<isa.QLEN | 1<<isa.PRI |
		1<<isa.ZERO | 1<<isa.CYC | 1<<isa.RGN)
	// entryMask is the register state at handler dispatch: A3 addresses
	// the message; everything else is whatever the previous thread left.
	entryMask = specialsMask | uint16(1)<<isa.A3
	allMask   = ^uint16(0)
)

// reads returns the registers an instruction reads; writes the register
// it defines (or -1).
func reads(in isa.Instr) (mask uint16) {
	operand := func(op isa.Operand) {
		switch op.Mode {
		case isa.ModeReg:
			mask |= 1 << op.Reg
		case isa.ModeMem:
			mask |= 1 << op.Reg
		case isa.ModeMemReg:
			mask |= 1<<op.Reg | 1<<op.Idx
		}
	}
	switch in.Op {
	case isa.NOP, isa.SUSPEND, isa.HALT, isa.BR:
	case isa.MOVE, isa.XLATE, isa.PROBE, isa.RTAG, isa.ISCF:
		operand(in.B)
	case isa.NOT, isa.NEG:
		mask |= 1 << in.A
	case isa.BT, isa.BF:
		mask |= 1 << in.A
	case isa.BSR:
		// Writes the link register; reads nothing.
	case isa.JMP, isa.TRAP, isa.SEND, isa.SENDE, isa.SEND1, isa.SENDE1:
		operand(in.B)
	case isa.SEND2, isa.SEND2E, isa.SEND21, isa.SEND2E1:
		mask |= 1 << in.A
		operand(in.B)
	case isa.ST, isa.ENTER, isa.WTAG:
		mask |= 1 << in.A
		operand(in.B)
	default: // arithmetic and comparisons: A op B
		mask |= 1 << in.A
		operand(in.B)
	}
	return mask
}

func writesReg(in isa.Instr) int {
	switch in.Op {
	case isa.MOVE, isa.NOT, isa.NEG, isa.BSR, isa.XLATE, isa.PROBE,
		isa.RTAG, isa.WTAG, isa.ISCF,
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.LSH, isa.ASH,
		isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE:
		return int(in.A)
	}
	return -1
}

// checkFlow runs a forward must-defined dataflow from every handler
// entry (recovered headers, plus labels no instruction branches or
// falls through to — entry points dispatched by host-built headers) and
// reports reads of registers no path has defined (ASM001).
func (c *checker) checkFlow() {
	ins := c.p.Instrs
	n := len(ins)
	if n == 0 {
		return
	}
	in := make([]uint16, n) // must-defined at instruction entry
	seen := make([]bool, n) // visited by the dataflow at all
	for i := range in {
		in[i] = allMask // ⊤ for the intersection meet
	}
	var work []int32
	seed := func(addr int32) {
		in[addr] &= entryMask
		if !seen[addr] {
			seen[addr] = true
		}
		work = append(work, addr)
	}
	for addr := range c.entries {
		seed(addr)
	}
	for _, addr := range c.p.Labels {
		if int(addr) < n && c.preds[addr] == 0 && !c.entries[addr] {
			if c.eff.subr[addr] {
				// A subroutine contract (effects.go): entered by BSR/JMP
				// from code outside this image with caller-provided
				// registers, not by a message dispatch — make no claim
				// about the register file, like the BSR return edge.
				if !seen[addr] {
					seen[addr] = true
				}
				work = append(work, addr)
				continue
			}
			seed(addr)
		}
	}
	if len(work) == 0 {
		seed(0) // no labels at all: treat address 0 as the entry
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		instr := ins[i]
		out := in[i]
		if w := writesReg(instr); w >= 0 {
			out |= uint16(1) << w
		}
		for _, s := range c.succs[i] {
			flow := out
			if instr.Op == isa.BSR && s == i+1 {
				// After the called subroutine returns, make no claim
				// about registers: everything counts as defined, so
				// only genuinely path-independent bugs are reported.
				flow = allMask
			}
			if !seen[s] || in[s]&flow != in[s] {
				seen[s] = true
				in[s] &= flow
				work = append(work, s)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			continue
		}
		if undef := reads(ins[i]) &^ in[i]; undef != 0 {
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if undef&(1<<r) != 0 {
					c.report("ASM001", int32(i),
						"%s reads %s, which no path from a handler entry defines", ins[i], r)
				}
			}
		}
	}
}

// blockValue is what the per-block scan knows about one register.
type blockValue struct {
	isHeader bool
	header   word.Word
	tag      word.Tag // TagCfut / TagFut when future-tagged, else 0
	at       int32    // instruction that established this state
}

// checkBlocks scans each straight-line region (between labels, branch
// targets, and control transfers) tracking MoveHdr constants, presence
// tags, and the send buffer, reporting ASM002, ASM003, ASM007, ASM008.
func (c *checker) checkBlocks() {
	ins := c.p.Instrs
	boundary := make([]bool, len(ins)+1)
	boundary[0] = true
	for _, addr := range c.p.Labels {
		if int(addr) < len(boundary) {
			boundary[addr] = true
		}
	}
	for i, in := range ins {
		for _, s := range c.succs[i] {
			if s != int32(i+1) {
				boundary[s] = true // branch target starts a block
			}
		}
		if in.Op.IsBranch() || in.Op == isa.SUSPEND || in.Op == isa.HALT {
			boundary[i+1] = true
		}
	}

	var regs map[isa.Reg]blockValue
	type sendState struct {
		open     bool
		words    int   // words injected so far, including the destination
		declared int   // header-declared payload length; -1 = untraceable
		declAt   int32 // instruction that supplied the header word
		known    bool  // header word traced to a MoveHdr constant
	}
	var send [2]sendState // per network priority

	resetBlock := func() {
		regs = make(map[isa.Reg]blockValue)
		send[0] = sendState{}
		send[1] = sendState{}
	}
	resetBlock()

	for i, in := range ins {
		if boundary[i] {
			resetBlock()
		}

		// ASM008: instructions that cannot execute without faulting.
		switch {
		case in.Op == isa.ST && !in.B.IsMem():
			c.report("ASM008", int32(i), "%s: ST requires a memory operand; this always faults", in)
		case (in.Op == isa.DIV || in.Op == isa.MOD) && in.B.Mode == isa.ModeImm && in.B.Imm == 0:
			c.report("ASM008", int32(i), "%s: division by constant zero always faults", in)
		}

		// ASM003: consuming a register that was just future-tagged.
		for _, r := range readRegs(in) {
			v, tracked := regs[r]
			if !tracked || v.tag == 0 {
				continue
			}
			if presenceSafe(in, r) {
				continue
			}
			if v.tag == word.TagFut && !consuming(in, r) {
				continue // fut words may be copied, only consumption faults
			}
			c.report("ASM003", int32(i),
				"%s reads %s while it carries the %s presence tag set at @%d; this faults at run time",
				in, r, v.tag, v.at)
		}

		// ASM002 / ASM007: send-sequence bookkeeping.
		if in.Op.IsSend() {
			pri := in.Op.SendPriority()
			s := &send[pri]
			if !s.open {
				*s = sendState{open: true}
			}
			prev := s.words
			s.words += in.Op.SendWords()
			// The second injected word (slot 1, after the destination)
			// is the message header: resolve the register that supplies
			// it, if this instruction covers slot 1.
			if prev <= 1 && s.words >= 2 && !s.known && s.declared == 0 {
				var src isa.Reg
				have := false
				if in.Op.SendWords() == 2 && prev == 1 {
					src, have = in.A, true // slots: prev=dest, A=header
				} else if in.B.Mode == isa.ModeReg {
					src, have = in.B.Reg, true // B lands in slot 1
				}
				if have {
					if v, ok := regs[src]; ok && v.isHeader {
						s.declared = int(v.header.HeaderLen())
						s.declAt = v.at
						s.known = true
					}
				}
				if !s.known {
					s.declared = -1 // header word untraceable: skip ASM002
				}
			}
			if in.Op.SendEnds() {
				if s.words < 2 {
					c.report("ASM002", int32(i),
						"message ends after %d word(s); every message needs a destination and a header", s.words)
				} else if s.known && s.words-1 != s.declared {
					c.report("ASM002", int32(i),
						"message sends %d payload words but its header (built at @%d) declares %d",
						s.words-1, s.declAt, s.declared)
				}
				*s = sendState{}
			}
		}

		// ASM007: a thread may not end with a half-built message. The
		// building buffer is per level, so nothing else will finish it.
		if in.Op == isa.SUSPEND || in.Op == isa.HALT {
			for pri := range send {
				if send[pri].open {
					c.report("ASM007", int32(i),
						"%s with a priority-%d message still open (no ending SEND)", in.Op, pri)
				}
			}
		}

		// Track register state for the next instruction in the block.
		if w := writesReg(in); w >= 0 {
			r := isa.Reg(w)
			switch {
			case in.Op == isa.WTAG && in.B.Mode == isa.ModeImm:
				switch tag := word.Tag(in.B.Imm & 0xF); tag {
				case word.TagCfut, word.TagFut:
					regs[r] = blockValue{tag: tag, at: int32(i)}
				case word.TagMsg:
					// The closing WTAG of a MoveHdr: the register now
					// holds the recovered header constant.
					if hdr, ok := c.headers[i-1]; ok {
						regs[r] = blockValue{isHeader: true, header: hdr, at: int32(i - 1)}
					} else {
						regs[r] = blockValue{}
					}
				default:
					regs[r] = blockValue{}
				}
			default:
				regs[r] = blockValue{}
			}
		}
	}
}

// readRegs lists the registers an instruction reads (unpacked form of
// reads, for per-register reporting).
func readRegs(in isa.Instr) []isa.Reg {
	mask := reads(in)
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if mask&(1<<r) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// presenceSafe reports whether the instruction may touch a
// future-tagged register r without faulting: ST stores all 36 bits to
// create presence slots, WTAG retags, RTAG and ISCF inspect the tag.
func presenceSafe(in isa.Instr, r isa.Reg) bool {
	switch in.Op {
	case isa.ST, isa.WTAG:
		return in.A == r
	case isa.RTAG, isa.ISCF:
		return in.B.Mode == isa.ModeReg && in.B.Reg == r
	}
	return false
}

// consuming reports whether the instruction's read of r is a consuming
// read (faults on fut as well as cfut) rather than a copy.
func consuming(in isa.Instr, r isa.Reg) bool {
	switch in.Op {
	case isa.MOVE:
		return false
	case isa.SEND, isa.SENDE, isa.SEND1, isa.SENDE1,
		isa.SEND2, isa.SEND2E, isa.SEND21, isa.SEND2E1:
		return false // send copies words into the message
	}
	return true
}

// checkLayout reports dead instructions after unconditional transfers
// (ASM004) and control falling off the end of the program (ASM005).
func (c *checker) checkLayout() {
	ins := c.p.Instrs
	if len(ins) == 0 {
		return
	}
	for i := 1; i < len(ins); i++ {
		prev := ins[i-1].Op
		ends := prev == isa.BR || prev == isa.SUSPEND || prev == isa.HALT ||
			(prev == isa.JMP)
		if !ends {
			continue
		}
		if _, labeled := c.labelAt[int32(i)]; labeled {
			continue
		}
		if c.entries[int32(i)] || c.preds[i] > 0 {
			continue
		}
		c.report("ASM004", int32(i),
			"unreachable: follows %s and is neither labeled nor branched to", prev)
	}
	last := ins[len(ins)-1].Op
	switch last {
	case isa.BR, isa.JMP, isa.SUSPEND, isa.HALT:
	default:
		c.report("ASM005", int32(len(ins)-1),
			"control falls off the end of the program after %s", last)
	}
}

// checkBranches validates branch operands: label-style branches must
// carry immediate targets inside the code segment (ASM006).
func (c *checker) checkBranches() {
	n := int32(len(c.p.Instrs))
	for i, in := range c.p.Instrs {
		switch in.Op {
		case isa.BR, isa.BT, isa.BF, isa.BSR:
			if in.B.Mode != isa.ModeImm {
				c.report("ASM006", int32(i),
					"%s: branch operand must be an immediate code address", in)
				continue
			}
			if in.B.Imm < 0 || in.B.Imm >= n {
				c.report("ASM006", int32(i),
					"%s: branch target %d outside the code segment (%d instructions)", in, in.B.Imm, n)
			}
		case isa.JMP:
			if in.B.Mode == isa.ModeImm && (in.B.Imm < 0 || in.B.Imm >= n) {
				c.report("ASM006", int32(i),
					"%s: jump target %d outside the code segment (%d instructions)", in, in.B.Imm, n)
			}
		}
	}
}
