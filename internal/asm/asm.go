// Package asm provides a programmatic assembler for MDP programs.
//
// Programs for the simulated J-Machine — message handlers, system
// routines, and the macro-benchmark applications — are written in Go
// against a Builder that emits decoded isa.Instr values, resolves labels,
// and produces a Program whose handlers can be named in message headers.
//
// Code addresses are instruction indices within the assembled program.
// The encoded two-per-word image (isa.Encode) is attached for code-size
// accounting and to decide internal- versus external-memory placement.
package asm

import (
	"fmt"
	"sort"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// fixup defers an operand immediate until labels resolve: the
// instruction's B.Imm becomes wrap(label address). Branches use the
// identity; header constants pack the address into a message header.
type fixup struct {
	label string
	wrap  func(addr int32) int32
}

// Builder accumulates instructions and labels for one program.
type Builder struct {
	instrs []isa.Instr
	labels map[string]int32
	fixups map[int]fixup // instruction index -> unresolved B.Imm
	errs   []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int32),
		fixups: make(map[int]fixup),
	}
}

// Here returns the code address of the next instruction to be emitted.
func (b *Builder) Here() int32 { return int32(len(b.instrs)) }

// Label defines name at the current position. Redefinition is an error
// reported by Assemble.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: label %q redefined", name))
		return b
	}
	b.labels[name] = b.Here()
	return b
}

// I emits a raw instruction.
func (b *Builder) I(op isa.Op, a isa.Reg, operand isa.Operand) *Builder {
	b.instrs = append(b.instrs, isa.Instr{Op: op, A: a, B: operand})
	return b
}

func (b *Builder) branch(op isa.Op, a isa.Reg, label string) *Builder {
	b.fixups[len(b.instrs)] = fixup{label: label}
	return b.I(op, a, isa.ImmOp(0))
}

// Operand constructors re-exported for terse call sites.

// R returns a register operand.
func R(r isa.Reg) isa.Operand { return isa.RegOp(r) }

// Imm returns an immediate operand.
func Imm(v int32) isa.Operand { return isa.ImmOp(v) }

// Mem returns a [a+offset] memory operand.
func Mem(a isa.Reg, off int32) isa.Operand { return isa.MemOp(a, off) }

// MemR returns a [a+idx] memory operand.
func MemR(a, idx isa.Reg) isa.Operand { return isa.MemRegOp(a, idx) }

// Data movement.

// Move emits MOVE a ← src.
func (b *Builder) Move(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.MOVE, a, src) }

// MoveI emits MOVE a ← #v.
func (b *Builder) MoveI(a isa.Reg, v int32) *Builder { return b.I(isa.MOVE, a, Imm(v)) }

// St emits ST: mem[dst] ← a.
func (b *Builder) St(a isa.Reg, dst isa.Operand) *Builder { return b.I(isa.ST, a, dst) }

// Arithmetic: a ← a op src.

func (b *Builder) Add(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.ADD, a, src) }
func (b *Builder) Sub(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.SUB, a, src) }
func (b *Builder) Mul(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.MUL, a, src) }
func (b *Builder) Div(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.DIV, a, src) }
func (b *Builder) Mod(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.MOD, a, src) }
func (b *Builder) And(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.AND, a, src) }
func (b *Builder) Or(a isa.Reg, src isa.Operand) *Builder  { return b.I(isa.OR, a, src) }
func (b *Builder) Xor(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.XOR, a, src) }
func (b *Builder) Lsh(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.LSH, a, src) }
func (b *Builder) Ash(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.ASH, a, src) }
func (b *Builder) Not(a isa.Reg) *Builder                  { return b.I(isa.NOT, a, isa.Operand{}) }
func (b *Builder) Neg(a isa.Reg) *Builder                  { return b.I(isa.NEG, a, isa.Operand{}) }

// Comparisons: a ← bool(a op src).

func (b *Builder) Eq(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.EQ, a, src) }
func (b *Builder) Ne(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.NE, a, src) }
func (b *Builder) Lt(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.LT, a, src) }
func (b *Builder) Le(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.LE, a, src) }
func (b *Builder) Gt(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.GT, a, src) }
func (b *Builder) Ge(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.GE, a, src) }

// Control flow.

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) *Builder { return b.branch(isa.BR, 0, label) }

// Bt branches to label when register a is truthy.
func (b *Builder) Bt(a isa.Reg, label string) *Builder { return b.branch(isa.BT, a, label) }

// Bf branches to label when register a is falsy.
func (b *Builder) Bf(a isa.Reg, label string) *Builder { return b.branch(isa.BF, a, label) }

// Bsr branches to label leaving the return address in link.
func (b *Builder) Bsr(link isa.Reg, label string) *Builder { return b.branch(isa.BSR, link, label) }

// Jmp jumps to the code address in src (subroutine return).
func (b *Builder) Jmp(src isa.Operand) *Builder { return b.I(isa.JMP, 0, src) }

// Suspend ends the current thread.
func (b *Builder) Suspend() *Builder { return b.I(isa.SUSPEND, 0, isa.Operand{}) }

// Halt stops the node.
func (b *Builder) Halt() *Builder { return b.I(isa.HALT, 0, isa.Operand{}) }

// Nop emits a NOP.
func (b *Builder) Nop() *Builder { return b.I(isa.NOP, 0, isa.Operand{}) }

// Message injection, priority 0.

func (b *Builder) Send(src isa.Operand) *Builder              { return b.I(isa.SEND, 0, src) }
func (b *Builder) Send2(a isa.Reg, src isa.Operand) *Builder  { return b.I(isa.SEND2, a, src) }
func (b *Builder) SendE(src isa.Operand) *Builder             { return b.I(isa.SENDE, 0, src) }
func (b *Builder) Send2E(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.SEND2E, a, src) }

// Message injection, priority 1.

func (b *Builder) Send1(src isa.Operand) *Builder              { return b.I(isa.SEND1, 0, src) }
func (b *Builder) Send21(a isa.Reg, src isa.Operand) *Builder  { return b.I(isa.SEND21, a, src) }
func (b *Builder) SendE1(src isa.Operand) *Builder             { return b.I(isa.SENDE1, 0, src) }
func (b *Builder) Send2E1(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.SEND2E1, a, src) }

// Naming and tags.

// Enter inserts (key, value) into the translation table.
func (b *Builder) Enter(key isa.Reg, val isa.Operand) *Builder { return b.I(isa.ENTER, key, val) }

// Xlate translates src, placing the result in a; faults on a miss.
func (b *Builder) Xlate(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.XLATE, a, src) }

// Probe sets a to whether src translates without faulting.
func (b *Builder) Probe(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.PROBE, a, src) }

// Rtag reads the tag of src into a.
func (b *Builder) Rtag(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.RTAG, a, src) }

// Wtag sets the tag of a from the value of src.
func (b *Builder) Wtag(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.WTAG, a, src) }

// Iscf sets a to whether src carries the cfut tag, without faulting.
func (b *Builder) Iscf(a isa.Reg, src isa.Operand) *Builder { return b.I(isa.ISCF, a, src) }

// Trap transfers to system software service svc.
func (b *Builder) Trap(svc int32) *Builder { return b.I(isa.TRAP, 0, Imm(svc)) }

// MoveHdr loads register a with a complete message-header word for the
// handler at label and a message of msgLen words: a MOVE of the packed
// header data (resolved at assembly) followed by a WTAG to MSG. Costs
// two instructions, matching how tuned MDP code built header constants.
func (b *Builder) MoveHdr(a isa.Reg, label string, msgLen int) *Builder {
	b.fixups[len(b.instrs)] = fixup{
		label: label,
		wrap: func(addr int32) int32 {
			return word.MsgHeader(addr, msgLen).Data()
		},
	}
	b.I(isa.MOVE, a, Imm(0))
	return b.Wtag(a, Imm(int32(word.TagMsg)))
}

// SendMsg is a macro emitting a complete message: destination, then each
// word, ending the message on the last. At least one body word is
// required (every message begins with its header word).
func (b *Builder) SendMsg(dest isa.Operand, words ...isa.Operand) *Builder {
	if len(words) == 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: SendMsg requires at least a header word"))
		return b
	}
	b.Send(dest)
	for _, w := range words[:len(words)-1] {
		b.Send(w)
	}
	return b.SendE(words[len(words)-1])
}

// Assemble resolves labels and produces the finished Program.
func (b *Builder) Assemble() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	instrs := make([]isa.Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for idx, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q (instruction %d)", fx.label, idx)
		}
		if fx.wrap != nil {
			target = fx.wrap(target)
		}
		instrs[idx].B = isa.ImmOp(target)
	}
	image, err := isa.Encode(instrs)
	if err != nil {
		return nil, fmt.Errorf("asm: encode: %w", err)
	}
	labels := make(map[string]int32, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Instrs: instrs, Labels: labels, Image: image}, nil
}

// MustAssemble is Assemble that panics on error, for statically-known
// programs built at init time.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

// Program is an assembled MDP program.
type Program struct {
	Instrs []isa.Instr
	Labels map[string]int32
	Image  *isa.Image
}

// Entry returns the code address of a label, for use in message headers.
func (p *Program) Entry(label string) int32 {
	addr, ok := p.Labels[label]
	if !ok {
		panic(fmt.Sprintf("asm: no label %q", label))
	}
	return addr
}

// HasLabel reports whether the program defines label.
func (p *Program) HasLabel(label string) bool {
	_, ok := p.Labels[label]
	return ok
}

// CodeWords returns the program size in 36-bit memory words.
func (p *Program) CodeWords() int { return p.Image.Len() }

// Listing renders a human-readable disassembly with labels.
func (p *Program) Listing() string {
	byAddr := make(map[int32][]string)
	for name, addr := range p.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	var out []byte
	for i, in := range p.Instrs {
		names := byAddr[int32(i)]
		sort.Strings(names)
		for _, n := range names {
			out = append(out, fmt.Sprintf("%s:\n", n)...)
		}
		out = append(out, fmt.Sprintf("%5d\t%s\n", i, in)...)
	}
	return string(out)
}
