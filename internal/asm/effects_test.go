package asm

import (
	"strings"
	"testing"

	"jmachine/internal/isa"
)

// TestCheckEffects builds one minimal program per send-graph diagnostic
// — positive and negative — and asserts exactly the expected findings.
func TestCheckEffects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
		want  []string // expected codes, in address order
	}{
		{
			// A send inside a loop whose only exit is... nothing: the
			// loop is unconditional, so once entered it sends forever.
			name: "ASM009_unbounded_send_loop",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Suspend()
				b.Label("main")
				b.MoveI(isa.R0, 0)
				b.Label("loop")
				b.MoveHdr(isa.R1, "h", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(7))
				return b.Br("loop")
			},
			want: []string{"ASM009"},
		},
		{
			// The same loop with a counted exit: the BT leaving the loop
			// tests a register the loop writes, so the trip count varies.
			name: "ASM009_counted_send_loop_clean",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Suspend()
				b.Label("main")
				b.MoveI(isa.R0, 4)
				b.Label("loop")
				b.MoveHdr(isa.R1, "h", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(7))
				b.Sub(isa.R0, Imm(1))
				b.Bt(isa.R0, "loop")
				return b.Suspend()
			},
			want: nil,
		},
		{
			// A priority-1 handler blindly stores to a word priority-0
			// code also stores: a preempting activation can lose an update.
			name: "ASM010_cross_priority_blind_store",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("main")
				b.MoveI(isa.A0, 100)
				b.Move(isa.R0, Mem(isa.A0, 0))
				b.Add(isa.R0, Imm(1))
				b.St(isa.R0, Mem(isa.A0, 0))
				b.MoveHdr(isa.R1, "tick", 2)
				b.Send1(R(isa.NNR))
				b.Send1(R(isa.R1))
				b.SendE1(Imm(0))
				b.Suspend()
				b.Label("tick")
				b.MoveI(isa.A0, 100)
				b.MoveI(isa.R0, 5)
				b.St(isa.R0, Mem(isa.A0, 0))
				return b.Suspend()
			},
			want: []string{"ASM010"},
		},
		{
			// Read-modify-write on the priority-1 side is not a blind
			// store; the lost-update interleaving needs a blind one.
			name: "ASM010_rmw_clean",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("main")
				b.MoveI(isa.A0, 100)
				b.Move(isa.R0, Mem(isa.A0, 0))
				b.Add(isa.R0, Imm(1))
				b.St(isa.R0, Mem(isa.A0, 0))
				b.MoveHdr(isa.R1, "tick", 2)
				b.Send1(R(isa.NNR))
				b.Send1(R(isa.R1))
				b.SendE1(Imm(0))
				b.Suspend()
				b.Label("tick")
				b.MoveI(isa.A0, 100)
				b.Move(isa.R0, Mem(isa.A0, 0))
				b.Add(isa.R0, Imm(5))
				b.St(isa.R0, Mem(isa.A0, 0))
				return b.Suspend()
			},
			want: nil,
		},
		{
			// Indexed stores have no statically-known absolute address;
			// the clobber check does not guess.
			name: "ASM010_indexed_store_clean",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("main")
				b.MoveI(isa.A0, 100)
				b.Move(isa.R0, Mem(isa.A0, 0))
				b.Add(isa.R0, Imm(1))
				b.St(isa.R0, Mem(isa.A0, 0))
				b.MoveHdr(isa.R1, "tick", 2)
				b.Send1(R(isa.NNR))
				b.Send1(R(isa.R1))
				b.SendE1(Imm(0))
				b.Suspend()
				b.Label("tick")
				b.MoveI(isa.A0, 100)
				b.MoveI(isa.R2, 0)
				b.MoveI(isa.R0, 5)
				b.St(isa.R0, MemR(isa.A0, isa.R2))
				return b.Suspend()
			},
			want: nil,
		},
		{
			// ha and hb form a send cycle and ha unconditionally injects
			// two messages into it per activation: traffic amplifies
			// without bound, deadlocking a full-queue mesh.
			name: "ASM011_amplifying_send_cycle",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("ha")
				b.MoveHdr(isa.R1, "hb", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(1))
				b.MoveHdr(isa.R2, "hb", 2)
				b.SendMsg(R(isa.NNR), R(isa.R2), Imm(2))
				b.Suspend()
				b.Label("hb")
				b.MoveHdr(isa.R1, "ha", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(3))
				return b.Suspend()
			},
			want: []string{"ASM011"},
		},
		{
			// A one-for-one ping-pong is a cycle but conserves messages:
			// no amplification, no finding.
			name: "ASM011_pingpong_clean",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("ha")
				b.MoveHdr(isa.R1, "hb", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(1))
				b.Suspend()
				b.Label("hb")
				b.MoveHdr(isa.R1, "ha", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(3))
				return b.Suspend()
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := assemble(t, tc.build())
			got := Check(p)
			if len(got) != len(tc.want) {
				t.Fatalf("findings:\n%s\nwant codes %v", render(got), tc.want)
			}
			for i := range got {
				if got[i].Code != tc.want[i] {
					t.Fatalf("finding %d = %s, want %s\n%s", i, got[i].Code, tc.want[i], render(got))
				}
			}
		})
	}
}

// TestCertifySendDistances pins the per-instruction send-distance table:
// zero on the SEND itself, counting up backwards from it, infinite on
// code from which no path sends.
func TestCertifySendDistances(t *testing.T) {
	b := NewBuilder()
	b.Label("quiet")
	b.MoveI(isa.R0, 1)
	b.Suspend()
	b.Label("send")
	b.MoveHdr(isa.R1, "quiet", 2)
	b.SendMsg(R(isa.NNR), R(isa.R1), Imm(9))
	b.Suspend()
	p := assemble(t, b)
	c := Certify(p)

	if d := c.SendDist[p.Entry("quiet")]; d != InfDist {
		t.Errorf("quiet entry: SendDist = %d, want InfDist", d)
	}
	// MoveHdr expands to two instructions; the first SEND is two past
	// the entry, so the entry itself is distance 2.
	if d := c.SendDist[p.Entry("send")]; d != 2 {
		t.Errorf("send entry: SendDist = %d, want 2", d)
	}
	if d := c.SendDist[p.Entry("send")+2]; d != 0 {
		t.Errorf("SEND instruction: SendDist = %d, want 0", d)
	}
}

// TestCertifyHandlerCert pins the per-handler resource certificate
// fields and the entry lookup.
func TestCertifyHandlerCert(t *testing.T) {
	b := NewBuilder()
	b.Label("quiet")
	b.MoveI(isa.R0, 1)
	b.Suspend()
	b.Label("send")
	b.MoveHdr(isa.R1, "quiet", 2)
	b.SendMsg(R(isa.NNR), R(isa.R1), Imm(9))
	b.Suspend()
	p := assemble(t, b)
	c := Certify(p)

	if len(c.Handlers) != 2 {
		t.Fatalf("got %d handler certs, want 2", len(c.Handlers))
	}
	q, s := c.Handlers[0], c.Handlers[1]
	if q.Label != "quiet" || s.Label != "send" {
		t.Fatalf("handlers = %q, %q; want quiet, send", q.Label, s.Label)
	}
	if q.SendDist != InfDist || q.MaxMsgWords != 0 || q.MinSends != 0 || q.MaxSends != 0 || len(q.Targets) != 0 {
		t.Errorf("quiet cert not send-free: %+v", q)
	}
	if !q.Pri[0] || q.Pri[1] {
		t.Errorf("quiet is targeted by a priority-0 send: Pri = %v", q.Pri)
	}
	if s.MaxMsgWords != 3 {
		t.Errorf("send MaxMsgWords = %d, want 3 (dest + header + payload)", s.MaxMsgWords)
	}
	if s.MinSends != 1 || s.MaxSends != 1 {
		t.Errorf("send Min/MaxSends = %d/%d, want 1/1", s.MinSends, s.MaxSends)
	}
	// The open-message peak is the words buffered before the ending
	// SEND completes the message: dest + header.
	if s.MaxOpenWords != 2 {
		t.Errorf("send MaxOpenWords = %d, want 2", s.MaxOpenWords)
	}
	if len(s.Targets) != 1 || s.Targets[0] != p.Entry("quiet") {
		t.Errorf("send Targets = %v, want [%d]", s.Targets, p.Entry("quiet"))
	}
	if s.Subroutine || q.Subroutine {
		t.Error("message handlers must not classify as subroutines")
	}

	// Lookup maps an interior address to its handler, and addresses
	// before the first entry to nil.
	if h := c.Handler(p.Entry("send") + 1); h == nil || h.Entry != p.Entry("send") {
		t.Errorf("Handler(send+1) = %+v, want the send cert", h)
	}
	if h := c.Handler(-1); h != nil {
		t.Errorf("Handler(-1) = %+v, want nil", h)
	}
}

// TestCertifySubroutineContract: an orphan label whose region returns
// via a register JMP and never suspends is a register-contract
// subroutine — checked with caller-provided registers (no ASM001 for
// reading them) and marked in its certificate.
func TestCertifySubroutineContract(t *testing.T) {
	b := NewBuilder()
	b.Label("h")
	b.MoveI(isa.R0, 1)
	b.Suspend()
	b.Label("ret")
	b.Add(isa.R2, Imm(1)) // R2 is the caller's, not dispatch-defined
	b.Jmp(R(isa.R3))      // return through the caller's link register
	p := assemble(t, b)

	if got := Check(p); len(got) != 0 {
		t.Errorf("subroutine-contract entry should check clean:\n%s", render(got))
	}
	c := Certify(p)
	var ret *HandlerCert
	for i := range c.Handlers {
		if c.Handlers[i].Label == "ret" {
			ret = &c.Handlers[i]
		}
	}
	if ret == nil {
		t.Fatal("no certificate for the subroutine entry")
	}
	if !ret.Subroutine {
		t.Error("orphan register-JMP region should classify as a subroutine")
	}
	// The register JMP is a dynamic escape hatch: distance 1 from the
	// entry (one instruction retires before it).
	if ret.SendDist != 1 {
		t.Errorf("subroutine SendDist = %d, want 1", ret.SendDist)
	}
}

// TestCheckHandlerAttribution: findings carry the owning handler and
// the instruction offset within it, and String renders both.
func TestCheckHandlerAttribution(t *testing.T) {
	b := NewBuilder()
	b.Label("h")
	b.MoveI(isa.R0, 0)
	b.Add(isa.R1, Imm(1)) // ASM001: R1 undefined
	b.Suspend()
	p := assemble(t, b)

	got := Check(p)
	if len(got) != 1 {
		t.Fatalf("findings:\n%s\nwant exactly one ASM001", render(got))
	}
	f := got[0]
	if f.Handler != "h" || f.HandlerOff != 1 {
		t.Errorf("attribution = %q+%d, want h+1", f.Handler, f.HandlerOff)
	}
	if s := f.String(); !strings.HasPrefix(s, "h+1@1: ASM001:") {
		t.Errorf("String() = %q, want h+1@1: ASM001: prefix", s)
	}
}
