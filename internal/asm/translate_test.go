package asm

import (
	"errors"
	"testing"

	"jmachine/internal/isa"
)

// translate is Translate with a test-fatal on unexpected rejection.
func translate(t *testing.T, b *Builder, allow ...Allowance) *Translation {
	t.Helper()
	p := assemble(t, b)
	tr, err := Translate(p, allow...)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	return tr
}

// checkInvariants asserts the structural contract every Translation
// promises the closure emitter: blocks partition the instruction
// space, BlockAt is consistent, successors and entries land on block
// starts, and the reachable set is closed under successor edges.
func checkInvariants(t *testing.T, tr *Translation) {
	t.Helper()
	n := len(tr.Prog.Instrs)
	starts := make(map[int32]bool, len(tr.Blocks))
	next := int32(0)
	for bi, b := range tr.Blocks {
		if b.Start != next || b.End <= b.Start {
			t.Fatalf("block %d spans [%d,%d), want start %d", bi, b.Start, b.End, next)
		}
		next = b.End
		starts[b.Start] = true
		for i := b.Start; i < b.End; i++ {
			if tr.BlockAt[i] != int32(bi) {
				t.Errorf("BlockAt[%d] = %d, want %d", i, tr.BlockAt[i], bi)
			}
		}
	}
	if next != int32(n) {
		t.Fatalf("blocks cover [0,%d), want [0,%d)", next, n)
	}
	for bi, b := range tr.Blocks {
		for _, s := range b.Succs {
			if !starts[s] {
				t.Errorf("block %d successor %d is not a block start", bi, s)
			}
		}
	}
	for i, e := range tr.Entries {
		if !starts[e] {
			t.Errorf("entry %d is not a block start", e)
		}
		if i > 0 && tr.Entries[i-1] >= e {
			t.Errorf("entries not ascending: %v", tr.Entries)
		}
	}
	for i := 0; i < n; i++ {
		if !tr.Reachable[i] {
			continue
		}
		for _, s := range succsOf(tr, int32(i)) {
			if !tr.Reachable[s] {
				t.Errorf("reachable %d has unreachable successor %d", i, s)
			}
		}
	}
}

// succsOf returns instruction i's outgoing edges as the translation
// sees them: block-internal fall-through, or the block's successor set
// for the final instruction.
func succsOf(tr *Translation, i int32) []int32 {
	b := tr.Blocks[tr.BlockAt[i]]
	if i < b.End-1 {
		return []int32{i + 1}
	}
	return b.Succs
}

func blockOf(t *testing.T, tr *Translation, start int32) Block {
	t.Helper()
	for _, b := range tr.Blocks {
		if b.Start == start {
			return b
		}
	}
	t.Fatalf("no block starts at %d (blocks: %+v)", start, tr.Blocks)
	return Block{}
}

func eqSlice(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTranslateSelfLoop: a two-instruction loop body whose branch
// targets its own block start must list itself among its successors,
// and a one-instruction branch-to-self must form a minimal self-loop
// block.
func TestTranslateSelfLoop(t *testing.T) {
	b := NewBuilder()
	b.Label("main").MoveI(isa.R0, 5)
	b.Label("loop").
		Sub(isa.R0, Imm(1)).
		Bt(isa.R0, "loop").
		Halt()
	tr := translate(t, b)
	checkInvariants(t, tr)
	loop := blockOf(t, tr, 1)
	if loop.End != 3 {
		t.Errorf("loop block spans [%d,%d), want [1,3)", loop.Start, loop.End)
	}
	if !eqSlice(loop.Succs, []int32{1, 3}) {
		t.Errorf("loop succs = %v, want [1 3]", loop.Succs)
	}

	b2 := NewBuilder()
	b2.Label("main").MoveI(isa.R0, 1)
	b2.Label("spin").Bt(isa.R0, "spin").Halt()
	tr2 := translate(t, b2)
	checkInvariants(t, tr2)
	spin := blockOf(t, tr2, 1)
	if spin.End != 2 || !eqSlice(spin.Succs, []int32{1, 2}) {
		t.Errorf("spin block [%d,%d) succs %v, want [1,2) [1 2]", spin.Start, spin.End, spin.Succs)
	}
}

// TestTranslateBranchToEntry: a backward branch to address 0 gives the
// entry block an intra-program predecessor, so the label no longer
// qualifies as a zero-pred root — the fallback must still root the
// translation at 0 and keep the whole loop reachable.
func TestTranslateBranchToEntry(t *testing.T) {
	b := NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 1).
		Sub(isa.R0, Imm(1)).
		Bt(isa.R0, "main").
		Halt()
	tr := translate(t, b)
	checkInvariants(t, tr)
	if !eqSlice(tr.Entries, []int32{0}) {
		t.Errorf("entries = %v, want [0]", tr.Entries)
	}
	for i := range tr.Prog.Instrs {
		if !tr.Reachable[i] {
			t.Errorf("instruction %d unreachable", i)
		}
	}
}

// TestTranslateRecursiveHandler: a MoveHdr-recovered handler whose body
// branches back to its own entry — the entry is both a header root and
// a branch target, and must appear exactly once in Entries.
func TestTranslateRecursiveHandler(t *testing.T) {
	b := NewBuilder()
	b.Label("main").
		MoveHdr(isa.R3, "h", 1).
		MoveI(isa.R0, 0).
		SendMsg(R(isa.R0), R(isa.R3)).
		Halt()
	b.Label("h").
		MoveI(isa.R0, 2).
		Sub(isa.R0, Imm(1)).
		Bt(isa.R0, "h").
		Suspend()
	tr := translate(t, b)
	checkInvariants(t, tr)
	h := tr.Prog.Entry("h")
	if !eqSlice(tr.Entries, []int32{0, h}) {
		t.Errorf("entries = %v, want [0 %d]", tr.Entries, h)
	}
	if !tr.Reachable[h] {
		t.Error("handler entry unreachable")
	}
	// The branch back into the handler makes h's entry block a branch
	// target too: the body block must carry the edge.
	body := blockOf(t, tr, h)
	found := false
	for _, s := range body.Succs {
		if s == h {
			found = true
		}
	}
	if !found {
		t.Errorf("handler body succs %v missing back edge to %d", body.Succs, h)
	}
}

// TestTranslateFallThroughOnly: a labelled region reached only by
// falling off the previous block is NOT an entry (it has a
// predecessor) but must be reachable, in its own block, with the
// fall-through edge recorded.
func TestTranslateFallThroughOnly(t *testing.T) {
	b := NewBuilder()
	b.Label("main").MoveI(isa.R0, 1)
	b.Label("tail").
		Add(isa.R0, Imm(1)).
		Halt()
	tr := translate(t, b)
	checkInvariants(t, tr)
	if !eqSlice(tr.Entries, []int32{0}) {
		t.Errorf("entries = %v, want [0]", tr.Entries)
	}
	tail := tr.Prog.Entry("tail")
	if !tr.Reachable[tail] {
		t.Error("fall-through label unreachable")
	}
	main := blockOf(t, tr, 0)
	if main.End != tail || !eqSlice(main.Succs, []int32{tail}) {
		t.Errorf("main block [%d,%d) succs %v, want fall-through to %d",
			main.Start, main.End, main.Succs, tail)
	}
}

// TestTranslateOrphanLabelIsEntry: a label nothing references is a
// host-dispatched thread root (machine tests StartBackground at such
// labels) and must be rooted as an entry.
func TestTranslateOrphanLabelIsEntry(t *testing.T) {
	b := NewBuilder()
	b.Label("main").MoveI(isa.R0, 1).Halt()
	b.Label("aux").MoveI(isa.R1, 2).Halt()
	tr := translate(t, b)
	checkInvariants(t, tr)
	aux := tr.Prog.Entry("aux")
	if !eqSlice(tr.Entries, []int32{0, aux}) {
		t.Errorf("entries = %v, want [0 %d]", tr.Entries, aux)
	}
	if !tr.Reachable[aux] || !tr.Reachable[aux+1] {
		t.Error("orphan-label thread unreachable")
	}
}

// TestTranslateGatesOnFindings: a program the verifier rejects never
// reaches block recovery; the findings ride along on the error, and
// the matching allowance reopens the gate.
func TestTranslateGatesOnFindings(t *testing.T) {
	b := NewBuilder()
	b.Label("main").
		Add(isa.R0, Imm(1)). // read before def: ASM001
		Halt()
	p := assemble(t, b)
	_, err := Translate(p)
	if err == nil {
		t.Fatal("verifier-rejected program translated")
	}
	var ef *ErrFindings
	if !errors.As(err, &ef) {
		t.Fatalf("error type %T, want *ErrFindings", err)
	}
	if len(ef.Findings) == 0 || ef.Findings[0].Code != "ASM001" {
		t.Fatalf("findings = %v", ef.Findings)
	}
	tr, err := Translate(p, Allowance{Code: "ASM001", Label: "main", Rationale: "test gate"})
	if err != nil {
		t.Fatalf("allowance did not reopen the gate: %v", err)
	}
	checkInvariants(t, tr)
}

// TestTranslateEmptyProgram: the degenerate empty image translates to
// an empty (but non-nil) Translation.
func TestTranslateEmptyProgram(t *testing.T) {
	p := assemble(t, NewBuilder())
	tr, err := Translate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 0 || len(tr.Entries) != 0 || len(tr.Reachable) != 0 {
		t.Errorf("empty program produced %+v", tr)
	}
}
