package asm

import (
	"fmt"
	"sort"
	"strings"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// This file is the effect and resource certifier: a whole-program
// abstract interpretation over the checker's CFG that proves, per
// handler, how soon and how much a dispatched activation can talk to
// the network. The certificates feed two consumers:
//
//   - the compiled execution tier (asm.Translate → internal/compiled →
//     mdp.CompiledProgram.SendDist): a per-instruction lower bound on
//     the instructions retired before the first possible network
//     injection lets the machine compute a dynamic send horizon and
//     extend quiet-rule fusion windows far past the fixed 7-cycle
//     lookahead, even in images that send elsewhere;
//   - four diagnostics over the cross-handler send graph: ASM009
//     (unbounded send loop), ASM010 (cross-priority clobber of shared
//     static state), ASM011 (amplifying handler send cycle that can
//     deadlock a full-queue mesh), ASM012 (stale allowance — reported
//     from Check's allowance filter using these certificates).
//
// Soundness of the send-distance bound. dist[i] is a lower bound on
// the number of instruction boundaries retired, starting from a
// boundary about to execute instruction i, before any effect can leave
// the thread for the network. Effect points are distance 0:
//
//   - the SEND family (the injection itself);
//   - TRAP (system-software services may enqueue local messages —
//     rt.pushLocal — or resume a suspended context at an arbitrary IP);
//   - a register-target JMP (the target is dynamic, so any code,
//     including a SEND, may be next).
//
// Every other instruction is 1 + the minimum over its CFG successors;
// SUSPEND and HALT end the thread (the machine separately accounts for
// what dispatches next), so paths through them contribute nothing.
// Fault service cannot escape this bound: ActRetry re-executes the same
// instruction, ActAdvance is the fall-through edge, ActSuspend ends the
// thread, and ActResume is only reachable from a TRAP — which is
// already distance 0.

// InfDist is the send-distance value for "send-free": no path from
// here reaches an effect point. It is small enough that sums with
// instruction counts and cycle offsets cannot overflow int32.
const InfDist = int32(1) << 28

// HandlerCert is the per-handler effect and resource certificate.
type HandlerCert struct {
	Entry int32  // entry address
	Label string // label at the entry, "" if unnamed

	// Subroutine marks a register-contract entry: a label nothing in
	// the image references that ends in a register JMP — a library
	// subroutine linked but not called here, entered (if ever) with
	// caller-provided registers rather than a message dispatch.
	Subroutine bool

	// Pri records the dispatch priorities this handler was observed at:
	// the priorities of traced sends naming it, or priority 0 for
	// host-dispatched entries nothing sends to.
	Pri [2]bool

	// SendDist is the minimum number of instructions any activation
	// retires before its first possible network effect (InfDist =
	// certified send-free).
	SendDist int32

	// MaxMsgWords is the longest statically-traced complete message the
	// handler can inject, in words including the destination; 0 when it
	// sends nothing traceable.
	MaxMsgWords int

	// MaxOpenWords is the peak length of a half-built message across
	// the handler's reachable code, per the block-local scan; -1 when a
	// loop makes it unbounded.
	MaxOpenWords int

	// MinSends and MaxSends bound the complete messages injected per
	// activation, assuming fault-free execution. MaxSends is -1 when a
	// send sits inside a reachable CFG cycle (unbounded).
	MinSends int
	MaxSends int

	// Targets are the handler entries this handler's traced sends
	// dispatch, ascending and distinct.
	Targets []int32
}

// Certs is the whole-program certificate set.
type Certs struct {
	// SendDist is the per-instruction send-distance table (see the file
	// comment); it covers every instruction, reachable or not, because
	// a register JMP can dynamically reach any address.
	SendDist []int32
	// Handlers are the per-entry certificates, ascending by entry.
	Handlers []HandlerCert
}

// Handler returns the certificate whose entry is at or nearest before
// addr, or nil when the program has no entries at or before it.
func (c *Certs) Handler(addr int32) *HandlerCert {
	i := sort.Search(len(c.Handlers), func(i int) bool { return c.Handlers[i].Entry > addr })
	if i == 0 {
		return nil
	}
	return &c.Handlers[i-1]
}

// Certify computes the effect/resource certificates for a program
// without running the full verifier. Check and Translate compute the
// same certificates as part of their passes.
func Certify(p *Program) *Certs {
	c := &checker{p: p, labelAt: labelIndex(p)}
	c.recoverHeaders()
	c.buildCFG()
	c.certify()
	return c.eff.certs
}

// sendSite is one statically-recovered complete send (an ending SEND).
type sendSite struct {
	instr  int32
	pri    int
	words  int   // message words including the destination, -1 untraced
	target int32 // recovered handler entry, -1 untraced
}

// storeSite is one store through a statically-known absolute address.
type storeSite struct {
	instr int32
	addr  int32
	blind bool // no load of the same address earlier in the block
}

// effectState is the certifier's working state, attached to checker.
type effectState struct {
	certs     *Certs
	subr      map[int32]bool // entry -> subroutine-classified
	entryAddr []int32        // all entries, ascending
	sites     []sendSite
	stores    []storeSite
	siteAt    map[int32]*sendSite // instr -> site
	openPeak  [][2]int            // per instruction: block-local open-send peak
}

// isEffect reports the distance-0 instructions: network injection and
// the two dynamic escape hatches (TRAP services, register jumps).
func isEffect(in isa.Instr) bool {
	if in.Op.IsSend() || in.Op == isa.TRAP {
		return true
	}
	return in.Op == isa.JMP && in.B.Mode != isa.ModeImm
}

// certify runs every certificate pass. recoverHeaders and buildCFG
// must have run.
func (c *checker) certify() {
	c.eff.certs = &Certs{SendDist: c.sendDistances()}
	c.classifyEntries()
	c.scanSites()
	for _, e := range c.eff.entryAddr {
		c.eff.certs.Handlers = append(c.eff.certs.Handlers, c.handlerCert(e))
	}
}

// sendDistances computes the per-instruction send-distance table by
// fixpoint over the CFG: values start at InfDist and only decrease, so
// reverse sweeps converge in at most longest-path iterations.
func (c *checker) sendDistances() []int32 {
	ins := c.p.Instrs
	n := len(ins)
	dist := make([]int32, n)
	for i := range dist {
		if isEffect(ins[i]) {
			dist[i] = 0
		} else {
			dist[i] = InfDist
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if dist[i] == 0 {
				continue
			}
			best := InfDist
			for _, s := range c.succs[i] {
				if d := dist[s]; d < best {
					best = d
				}
			}
			if best < InfDist {
				best++
			}
			if best < dist[i] {
				dist[i] = best
				changed = true
			}
		}
	}
	return dist
}

// classifyEntries fixes the entry list (recovered headers plus orphan
// labels, mirroring checkFlow's seeding) and classifies orphan labels
// whose reachable region ends in register JMPs and never suspends as
// subroutine contracts: library code linked but not called, entered
// with caller-provided registers, not by a message dispatch.
func (c *checker) classifyEntries() {
	n := len(c.p.Instrs)
	c.eff.subr = make(map[int32]bool)
	set := make(map[int32]bool, len(c.entries))
	for a := range c.entries {
		set[a] = true
	}
	for _, a := range c.p.Labels {
		if int(a) < n && c.preds[a] == 0 && !c.entries[a] {
			set[a] = true
			if c.subroutineShaped(a) {
				c.eff.subr[a] = true
			}
		}
	}
	if len(set) == 0 && n > 0 {
		set[0] = true
	}
	c.eff.entryAddr = c.eff.entryAddr[:0]
	for a := range set {
		c.eff.entryAddr = append(c.eff.entryAddr, a)
	}
	sort.Slice(c.eff.entryAddr, func(i, j int) bool { return c.eff.entryAddr[i] < c.eff.entryAddr[j] })
}

// subroutineShaped reports whether the region reachable from addr
// returns via a register JMP on some path and never reaches SUSPEND: a
// message handler ends its thread with SUSPEND, a subroutine returns.
func (c *checker) subroutineShaped(addr int32) bool {
	seen := make(map[int32]bool)
	work := []int32{addr}
	hasReturn := false
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		in := c.p.Instrs[i]
		switch in.Op {
		case isa.SUSPEND:
			return false
		case isa.JMP:
			if in.B.Mode != isa.ModeImm {
				hasReturn = true
			}
		}
		work = append(work, c.succs[i]...)
	}
	return hasReturn
}

// scanSites re-runs the block-local value tracking (the same leader set
// checkBlocks uses) to recover complete send sites — priority, traced
// target handler, message length — absolute-address stores for the
// cross-priority clobber check, and the per-instruction open-send peak.
func (c *checker) scanSites() {
	ins := c.p.Instrs
	n := len(ins)
	c.eff.sites = nil
	c.eff.stores = nil
	c.eff.siteAt = make(map[int32]*sendSite)
	c.eff.openPeak = make([][2]int, n)

	boundary := make([]bool, n+1)
	boundary[0] = true
	for _, addr := range c.p.Labels {
		if int(addr) < len(boundary) {
			boundary[addr] = true
		}
	}
	for i, in := range ins {
		for _, s := range c.succs[i] {
			if s != int32(i+1) {
				boundary[s] = true
			}
		}
		if in.Op.IsBranch() || in.Op == isa.SUSPEND || in.Op == isa.HALT {
			boundary[i+1] = true
		}
	}

	hdrRegs := make(map[isa.Reg]word.Word) // MoveHdr-built header constants
	addrRegs := make(map[isa.Reg]int32)    // MoveI-built absolute addresses
	loaded := make(map[int32]bool)         // block-local loads by address
	var open [2]int                        // block-local open-send words
	var target [2]int32
	var known [2]bool
	reset := func() {
		hdrRegs = make(map[isa.Reg]word.Word)
		addrRegs = make(map[isa.Reg]int32)
		loaded = make(map[int32]bool)
		open = [2]int{}
		target = [2]int32{-1, -1}
		known = [2]bool{}
	}
	reset()

	for i, in := range ins {
		if boundary[i] {
			reset()
		}

		// Absolute-address loads and stores (MoveI base + Mem offset).
		if base, ok := addrRegs[in.B.Reg]; ok && in.B.Mode == isa.ModeMem {
			addr := base + in.B.Imm
			switch in.Op {
			case isa.MOVE:
				loaded[addr] = true
			case isa.ST:
				c.eff.stores = append(c.eff.stores, storeSite{
					instr: int32(i), addr: addr, blind: !loaded[addr],
				})
			}
		}

		if in.Op.IsSend() {
			pri := in.Op.SendPriority()
			prev := open[pri]
			open[pri] += in.Op.SendWords()
			if prev <= 1 && open[pri] >= 2 && !known[pri] {
				// This instruction supplies slot 1: the message header.
				var src isa.Reg
				have := false
				if in.Op.SendWords() == 2 && prev == 1 {
					src, have = in.A, true
				} else if in.B.Mode == isa.ModeReg {
					src, have = in.B.Reg, true
				}
				if have {
					if hdr, ok := hdrRegs[src]; ok {
						target[pri] = hdr.HeaderIP()
						known[pri] = true
					}
				}
			}
			if in.Op.SendEnds() {
				site := sendSite{instr: int32(i), pri: pri, words: open[pri], target: -1}
				if known[pri] {
					if t := target[pri]; t >= 0 && int(t) < n {
						site.target = t
					}
				}
				c.eff.sites = append(c.eff.sites, site)
				open[pri] = 0
				target[pri] = -1
				known[pri] = false
			}
		}
		c.eff.openPeak[i] = open

		// Track register state for the rest of the block.
		if w := writesReg(in); w >= 0 {
			r := isa.Reg(w)
			delete(hdrRegs, r)
			delete(addrRegs, r)
			switch {
			case in.Op == isa.MOVE && in.B.Mode == isa.ModeImm:
				addrRegs[r] = in.B.Imm
			case in.Op == isa.WTAG && in.B.Mode == isa.ModeImm &&
				word.Tag(in.B.Imm&0xF) == word.TagMsg:
				if hdr, ok := c.headers[i-1]; ok && i > 0 && in.A == ins[i-1].A {
					hdrRegs[r] = hdr
				}
			}
		}
	}
	for i := range c.eff.sites {
		c.eff.siteAt[c.eff.sites[i].instr] = &c.eff.sites[i]
	}
}

// reachableFrom marks the instructions reachable from addr.
func (c *checker) reachableFrom(addr int32) []bool {
	seen := make([]bool, len(c.p.Instrs))
	work := []int32{addr}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		work = append(work, c.succs[i]...)
	}
	return seen
}

// handlerCert assembles one entry's certificate.
func (c *checker) handlerCert(entry int32) HandlerCert {
	cert := HandlerCert{
		Entry:      entry,
		Label:      c.labelAt[entry],
		Subroutine: c.eff.subr[entry],
		SendDist:   c.eff.certs.SendDist[entry],
	}
	reach := c.reachableFrom(entry)
	targets := make(map[int32]bool)
	for _, s := range c.eff.sites {
		if !reach[s.instr] {
			continue
		}
		if s.words > cert.MaxMsgWords {
			cert.MaxMsgWords = s.words
		}
		if s.target >= 0 {
			targets[s.target] = true
		}
	}
	for t := range targets {
		cert.Targets = append(cert.Targets, t)
	}
	sort.Slice(cert.Targets, func(i, j int) bool { return cert.Targets[i] < cert.Targets[j] })
	for i, peak := range c.eff.openPeak {
		if !reach[i] {
			continue
		}
		for pri := 0; pri < 2; pri++ {
			if peak[pri] > cert.MaxOpenWords {
				cert.MaxOpenWords = peak[pri]
			}
		}
	}
	cert.MinSends = c.minSendsFrom(entry, nil)
	cert.MaxSends = c.maxSendsFrom(entry, reach)
	// Dispatch priorities: traced senders' priorities, else host (P0).
	for _, s := range c.eff.sites {
		if s.target == entry {
			cert.Pri[s.pri] = true
		}
	}
	if !cert.Pri[0] && !cert.Pri[1] {
		cert.Pri[0] = true
	}
	return cert
}

// minSendsFrom is the minimum number of complete sends any fault-free
// path from entry retires before the thread ends. When inSet is
// non-nil, only sends whose traced target is in the set count (the
// ASM011 cycle-amplification weight).
func (c *checker) minSendsFrom(entry int32, inSet map[int32]bool) int {
	ins := c.p.Instrs
	n := len(ins)
	const inf = int32(1) << 28
	weight := func(i int32) int32 {
		if !ins[i].Op.IsSend() || !ins[i].Op.SendEnds() {
			return 0
		}
		if inSet == nil {
			return 1
		}
		if s := c.eff.siteAt[i]; s != nil && s.target >= 0 && inSet[s.target] {
			return 1
		}
		return 0
	}
	val := make([]int32, n)
	for i := range val {
		val[i] = inf
	}
	// Relax to fixpoint: terminal instructions (no successors) cost
	// their own weight; everything else is weight + min over successors.
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			v := weight(int32(i))
			if len(c.succs[i]) > 0 {
				best := inf
				for _, s := range c.succs[i] {
					if val[s] < best {
						best = val[s]
					}
				}
				if best == inf {
					v = inf
				} else {
					v += best
				}
			}
			if v < val[i] {
				val[i] = v
				changed = true
			}
		}
	}
	if val[entry] >= inf {
		return 0
	}
	return int(val[entry])
}

// maxSendsFrom bounds the complete sends per activation from entry:
// the longest path over the SCC condensation, or -1 (unbounded) when a
// reachable cycle contains an ending send.
func (c *checker) maxSendsFrom(entry int32, reach []bool) int {
	ins := c.p.Instrs
	comp, nComp := c.cfgSCC()
	cyclic := make([]bool, nComp)
	size := make([]int, nComp)
	for i := range ins {
		size[comp[i]]++
	}
	for i := range ins {
		for _, s := range c.succs[i] {
			if comp[s] == comp[i] {
				cyclic[comp[i]] = true
			}
		}
	}
	weight := make([]int, nComp)
	for i, in := range ins {
		if !reach[i] {
			continue
		}
		if in.Op.IsSend() && in.Op.SendEnds() {
			if cyclic[comp[i]] || size[comp[i]] > 1 {
				return -1
			}
			weight[comp[i]]++
		}
	}
	// Longest path on the condensation DAG from entry's component,
	// restricted to reachable code: memoized DFS (acyclic by SCC).
	compSuccs := make(map[int32]map[int32]bool)
	for i := range ins {
		if !reach[i] {
			continue
		}
		for _, s := range c.succs[i] {
			if comp[s] != comp[i] {
				m := compSuccs[comp[i]]
				if m == nil {
					m = make(map[int32]bool)
					compSuccs[comp[i]] = m
				}
				m[comp[s]] = true
			}
		}
	}
	memo := make(map[int32]int)
	var longest func(cc int32) int
	longest = func(cc int32) int {
		if v, ok := memo[cc]; ok {
			return v
		}
		best := 0
		for s := range compSuccs[cc] {
			if v := longest(s); v > best {
				best = v
			}
		}
		v := weight[cc] + best
		memo[cc] = v
		return v
	}
	return longest(comp[entry])
}

// cfgSCC computes strongly connected components of the instruction CFG
// (iterative Tarjan). Returns the component index per instruction and
// the component count.
func (c *checker) cfgSCC() ([]int32, int) {
	n := len(c.p.Instrs)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var nComp int32
	next := int32(0)
	type frame struct {
		v  int32
		si int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: int32(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(c.succs[f.v]) {
				w := c.succs[f.v][f.si]
				f.si++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp, int(nComp)
}

// checkEffects reports the send-graph diagnostics: ASM009 (unbounded
// send loop), ASM010 (cross-priority blind store), ASM011 (amplifying
// handler send cycle). certify must have run.
func (c *checker) checkEffects() {
	c.checkSendLoops()
	c.checkPriorityClobbers()
	c.checkSendCycles()
}

// checkSendLoops reports ASM009: a SEND inside a CFG cycle whose every
// exit test is loop-invariant (no conditional branch leaving the cycle
// tests a register the cycle writes) cannot stop sending.
func (c *checker) checkSendLoops() {
	ins := c.p.Instrs
	comp, nComp := c.cfgSCC()
	cyclic := make([]bool, nComp)
	size := make([]int, nComp)
	for i := range ins {
		size[comp[i]]++
		for _, s := range c.succs[i] {
			if comp[s] == comp[i] {
				cyclic[comp[i]] = true
			}
		}
	}
	firstSend := make([]int32, nComp)
	for i := range firstSend {
		firstSend[i] = -1
	}
	written := make([]uint16, nComp) // registers the SCC writes
	bounded := make([]bool, nComp)
	for i, in := range ins {
		cc := comp[i]
		if !cyclic[cc] && size[cc] <= 1 {
			continue
		}
		if in.Op.IsSend() && firstSend[cc] == -1 {
			firstSend[cc] = int32(i)
		}
		if w := writesReg(in); w >= 0 {
			written[cc] |= uint16(1) << w
		}
	}
	for i, in := range ins {
		cc := comp[i]
		if in.Op != isa.BT && in.Op != isa.BF {
			continue
		}
		exits := false
		for _, s := range c.succs[i] {
			if comp[s] != cc {
				exits = true
			}
		}
		if exits && written[cc]&(uint16(1)<<in.A) != 0 {
			bounded[cc] = true
		}
	}
	for cc := 0; cc < nComp; cc++ {
		if firstSend[cc] >= 0 && !bounded[cc] {
			c.report("ASM009", firstSend[cc],
				"SEND inside a loop with no varying exit condition: no conditional branch leaving the loop tests a register the loop writes, so once entered it sends forever")
		}
	}
}

// entryClasses returns, for every entry, its dispatch-priority class:
// the priorities of traced sends naming it, defaulting to priority 0
// for host-dispatched entries. Subroutine-classified entries get no
// class of their own — their code is attributed to callers by
// reachability.
func (c *checker) entryClasses() map[int32][2]bool {
	cls := make(map[int32][2]bool, len(c.eff.entryAddr))
	for _, cert := range c.eff.certs.Handlers {
		if cert.Subroutine {
			continue
		}
		cls[cert.Entry] = cert.Pri
	}
	return cls
}

// checkPriorityClobbers reports ASM010: a handler dispatched at
// priority 1 blindly stores (no read-modify-write) to a statically-
// known absolute address that priority-0-level code also stores.
// Because priority 1 preempts priority 0 between any two instructions,
// the interleaved activations can lose one side's update.
func (c *checker) checkPriorityClobbers() {
	if len(c.eff.stores) == 0 {
		return
	}
	type access struct {
		p0, p1           bool // any store reachable from the class
		p0Blind, p1Blind int32
	}
	byAddr := make(map[int32]*access)
	for entry, pri := range c.entryClasses() {
		reach := c.reachableFrom(entry)
		for _, st := range c.eff.stores {
			if !reach[st.instr] {
				continue
			}
			a := byAddr[st.addr]
			if a == nil {
				a = &access{p0Blind: -1, p1Blind: -1}
				byAddr[st.addr] = a
			}
			if pri[0] {
				a.p0 = true
				if st.blind && a.p0Blind == -1 {
					a.p0Blind = st.instr
				}
			}
			if pri[1] {
				a.p1 = true
				if st.blind && a.p1Blind == -1 {
					a.p1Blind = st.instr
				}
			}
		}
	}
	addrs := make([]int32, 0, len(byAddr))
	for addr := range byAddr {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		a := byAddr[addr]
		if a.p1Blind >= 0 && a.p0 {
			c.report("ASM010", a.p1Blind,
				"priority-1 handler blindly stores to address %d, which priority-0 code also stores: the handlers share this word without a read-modify-write, so a preempting activation can lose an update", addr)
		}
	}
}

// checkSendCycles reports ASM011: handlers on a send-graph cycle that
// unconditionally inject two or more messages into the cycle per
// activation amplify traffic without bound — on a mesh with full
// delivery queues the back-pressured sends deadlock against the very
// messages they would consume.
func (c *checker) checkSendCycles() {
	// Handler send graph over traced targets.
	adj := make(map[int32][]int32)
	for _, cert := range c.eff.certs.Handlers {
		adj[cert.Entry] = cert.Targets
	}
	// SCCs of the handler graph (tiny: simple Kosaraju-style via
	// repeated DFS is overkill — reuse label propagation by Tarjan on a
	// dense relabeling).
	idx := make(map[int32]int)
	var nodes []int32
	for _, cert := range c.eff.certs.Handlers {
		idx[cert.Entry] = len(nodes)
		nodes = append(nodes, cert.Entry)
	}
	n := len(nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next, nComp := 0, 0
	type frame struct {
		v, si int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := adj[nodes[f.v]]
			if f.si < len(succ) {
				wEntry := succ[f.si]
				f.si++
				w, ok := idx[wEntry]
				if !ok {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	// A component is a cycle when it has >1 member or a self edge.
	for cc := 0; cc < nComp; cc++ {
		members := make(map[int32]bool)
		for i, c2 := range comp {
			if c2 == cc {
				members[nodes[i]] = true
			}
		}
		cyclic := len(members) > 1
		if !cyclic {
			for e := range members {
				for _, t := range adj[e] {
					if t == e {
						cyclic = true
					}
				}
			}
		}
		if !cyclic {
			continue
		}
		names := make([]string, 0, len(members))
		for e := range members {
			names = append(names, c.entryName(e))
		}
		sort.Strings(names)
		for e := range members {
			if min := c.minSendsFrom(e, members); min >= 2 {
				c.report("ASM011", e,
					"handler is on a send cycle (%s) and unconditionally injects %d messages into it per activation: the amplification can deadlock a full-queue mesh",
					strings.Join(names, " → "), min)
			}
		}
	}
}

// entryName names an entry for diagnostics: its label, or @addr.
func (c *checker) entryName(addr int32) string {
	if name, ok := c.labelAt[addr]; ok {
		return name
	}
	return fmt.Sprintf("@%d", addr)
}

// attributeHandlers fills each finding's Handler and HandlerOff from
// the entry at or nearest before its address (the handler region the
// instruction belongs to, by address).
func (c *checker) attributeHandlers() {
	if c.eff.certs == nil {
		return
	}
	for i := range c.findings {
		f := &c.findings[i]
		if f.Addr < 0 {
			f.HandlerOff = -1
			continue
		}
		if h := c.eff.certs.Handler(f.Addr); h != nil {
			f.Handler = c.entryName(h.Entry)
			f.HandlerOff = f.Addr - h.Entry
		} else {
			f.HandlerOff = -1
		}
	}
}
