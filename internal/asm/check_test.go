package asm

import (
	"strings"
	"testing"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// codes extracts the diagnostic codes of a finding list.
func codes(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Code)
	}
	return out
}

func assemble(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCheckNegative builds one minimal offending program per
// diagnostic code and asserts exactly the expected findings fire.
func TestCheckNegative(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
		want  []string // expected codes, in address order
	}{
		{
			name: "ASM001_read_before_def",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Add(isa.R0, Imm(1)) // R0 never defined on this path
				return b.Suspend()
			},
			want: []string{"ASM001"},
		},
		{
			name: "ASM001_clean_when_defined_or_dispatch_reg",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.MoveI(isa.R0, 0)
				b.Add(isa.R0, Imm(1))
				b.Move(isa.R1, Mem(isa.A3, 1)) // A3 is defined at dispatch
				return b.Suspend()
			},
			want: nil,
		},
		{
			name: "ASM001_branch_join_requires_both_paths",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Move(isa.R0, Mem(isa.A3, 1))
				b.Bf(isa.R0, "skip") // defines R1 on one path only
				b.MoveI(isa.R1, 7)
				b.Label("skip")
				b.Add(isa.R1, Imm(1)) // R1 may be undefined here
				return b.Suspend()
			},
			want: []string{"ASM001"},
		},
		{
			name: "ASM002_arity_mismatch",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Suspend()
				b.Label("main")
				b.MoveHdr(isa.R1, "h", 2) // declares a 2-word payload
				b.Send(R(isa.NNR))        // destination
				b.Send(R(isa.R1))         // header
				b.Send(Imm(10))           // payload word 2
				b.SendE(Imm(11))          // payload word 3 — one too many
				return b.Suspend()
			},
			want: []string{"ASM002"},
		},
		{
			name: "ASM002_arity_match_is_clean",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Suspend()
				b.Label("main")
				b.MoveHdr(isa.R1, "h", 2)
				b.SendMsg(R(isa.NNR), R(isa.R1), Imm(10))
				return b.Suspend()
			},
			want: nil,
		},
		{
			name: "ASM002_message_too_short",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("main")
				b.SendE(R(isa.NNR)) // one word: no room for dest + header
				return b.Suspend()
			},
			want: []string{"ASM002"},
		},
		{
			name: "ASM003_consume_cfut",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.MoveI(isa.R0, 0)
				b.MoveI(isa.R1, 0)
				b.Wtag(isa.R0, Imm(int32(word.TagCfut)))
				b.Add(isa.R1, R(isa.R0)) // consuming a cfut faults
				return b.Suspend()
			},
			want: []string{"ASM003"},
		},
		{
			name: "ASM003_copy_cfut_also_faults",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.MoveI(isa.R0, 0)
				b.Wtag(isa.R0, Imm(int32(word.TagCfut)))
				b.Move(isa.R1, R(isa.R0)) // even a copy faults on cfut
				return b.Suspend()
			},
			want: []string{"ASM003"},
		},
		{
			name: "ASM003_fut_copy_ok_store_ok",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.MoveI(isa.R0, 0)
				b.MoveI(isa.A0, 100)
				b.Wtag(isa.A0, Imm(int32(word.TagAddr)))
				b.Wtag(isa.R0, Imm(int32(word.TagFut)))
				b.Move(isa.R1, R(isa.R0)) // fut may be copied
				b.St(isa.R0, Mem(isa.A0, 0))
				return b.Suspend()
			},
			want: nil,
		},
		{
			name: "ASM004_dead_code_after_br",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Br("end")
				b.Nop() // unreachable, unlabeled
				b.Label("end")
				return b.Suspend()
			},
			want: []string{"ASM004"},
		},
		{
			name: "ASM005_fall_off_end",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				return b.MoveI(isa.R0, 1)
			},
			want: []string{"ASM005"},
		},
		{
			name: "ASM006_branch_out_of_range",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Jmp(Imm(99))
				return b.Suspend()
			},
			// The jump target is bogus (ASM006) and the following
			// SUSPEND is unreachable (ASM004).
			want: []string{"ASM006", "ASM004"},
		},
		{
			name: "ASM007_open_message_at_suspend",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.Send(R(isa.NNR))
				b.Send(Imm(3)) // message never ended
				return b.Suspend()
			},
			want: []string{"ASM007"},
		},
		{
			name: "ASM008_bad_st_and_div_zero",
			build: func() *Builder {
				b := NewBuilder()
				b.Label("h")
				b.MoveI(isa.R0, 6)
				b.St(isa.R0, Imm(5)) // ST needs a memory operand
				b.Div(isa.R0, Imm(0))
				return b.Suspend()
			},
			want: []string{"ASM008", "ASM008"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := assemble(t, tc.build())
			got := Check(p)
			if len(got) != len(tc.want) {
				t.Fatalf("findings:\n%s\nwant codes %v", render(got), tc.want)
			}
			for i := range got {
				if got[i].Code != tc.want[i] {
					t.Fatalf("finding %d = %s, want %s\n%s", i, got[i].Code, tc.want[i], render(got))
				}
			}
		})
	}
}

func render(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  " + f.String() + "\n")
	}
	if sb.Len() == 0 {
		return "  (none)"
	}
	return sb.String()
}

// TestCheckAllowance verifies the suppression mechanism: same code and
// label with a rationale drops the finding; a missing rationale or a
// different label does not.
func TestCheckAllowance(t *testing.T) {
	b := NewBuilder()
	b.Label("h")
	b.Add(isa.R0, Imm(1))
	b.Suspend()
	p := assemble(t, b)

	if got := Check(p, Allowance{Code: "ASM001", Label: "h", Rationale: "test"}); len(got) != 0 {
		t.Errorf("allowance with rationale should drop the finding:\n%s", render(got))
	}
	if got := Check(p, Allowance{Code: "ASM001", Label: "h"}); len(got) != 1 {
		t.Errorf("allowance without rationale must not suppress:\n%s", render(got))
	}
	got := Check(p, Allowance{Code: "ASM001", Label: "other", Rationale: "r"})
	if len(got) != 2 {
		t.Fatalf("allowance for another label must not suppress, and is itself stale:\n%s", render(got))
	}
	if got[0].Code != "ASM012" || got[0].Label != "other" {
		t.Errorf("stale allowance should surface as ASM012 under its own label, got %s", got[0])
	}
	if got[1].Code != "ASM001" {
		t.Errorf("original finding should survive, got %s", got[1])
	}
}

// TestCheckStaleAllowance pins ASM012: an allowance that suppresses
// nothing is reported, at the allowance's label when it exists, and a
// used allowance is not.
func TestCheckStaleAllowance(t *testing.T) {
	b := NewBuilder()
	b.Label("h")
	b.Move(isa.R0, Imm(1))
	b.Suspend()
	p := assemble(t, b)

	got := Check(p, Allowance{Code: "ASM007", Label: "h", Rationale: "obsolete"})
	if len(got) != 1 || got[0].Code != "ASM012" || got[0].Addr != 0 {
		t.Fatalf("stale allowance on a clean program should yield exactly ASM012 at its label:\n%s", render(got))
	}
	if !strings.Contains(got[0].Msg, "send-free") {
		t.Errorf("ASM007 allowance on a certified send-free handler should say so: %s", got[0].Msg)
	}
	// A label the program doesn't define still reports, addressless.
	got = Check(p, Allowance{Code: "ASM001", Label: "ghost", Rationale: "r"})
	if len(got) != 1 || got[0].Code != "ASM012" || got[0].Addr != -1 {
		t.Fatalf("stale allowance under an unknown label should report at addr -1:\n%s", render(got))
	}
}

// TestCheckFindingString pins the rendered form used by jm-jc -check.
func TestCheckFindingString(t *testing.T) {
	f := Finding{Code: "ASM001", Addr: 4, Label: "h", Msg: "m"}
	if got := f.String(); got != "h@4: ASM001: m" {
		t.Errorf("String() = %q", got)
	}
}
