package asm

import (
	"strings"
	"testing"

	"jmachine/internal/isa"
	"jmachine/internal/word"
)

func TestLabelsAndBranches(t *testing.T) {
	b := NewBuilder()
	b.Label("start").
		MoveI(isa.R0, 3).
		Label("loop").
		Sub(isa.R0, Imm(1)).
		Bt(isa.R0, "loop").
		Br("end").
		Nop().
		Label("end").
		Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry("start") != 0 {
		t.Errorf("start = %d", p.Entry("start"))
	}
	// The Bt targets "loop" = instruction 1.
	if got := p.Instrs[2].B.Imm; got != 1 {
		t.Errorf("Bt target = %d", got)
	}
	// The Br targets "end" = instruction 5.
	if got := p.Instrs[3].B.Imm; got != 5 {
		t.Errorf("Br target = %d", got)
	}
	if !p.HasLabel("loop") || p.HasLabel("nope") {
		t.Error("HasLabel wrong")
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Br("nowhere")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Fatalf("expected redefinition error, got %v", err)
	}
}

func TestMoveHdrResolvesHeader(t *testing.T) {
	b := NewBuilder()
	b.MoveHdr(isa.R1, "handler", 5).
		Halt().
		Label("handler").
		Suspend()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// Instruction 0 is the MOVE of the packed header data; reconstruct
	// the word and verify its fields.
	hdr := word.New(word.TagMsg, p.Instrs[0].B.Imm)
	if hdr.HeaderIP() != p.Entry("handler") {
		t.Errorf("header IP = %d, want %d", hdr.HeaderIP(), p.Entry("handler"))
	}
	if hdr.HeaderLen() != 5 {
		t.Errorf("header len = %d", hdr.HeaderLen())
	}
	// Instruction 1 must be the WTAG to MSG.
	if p.Instrs[1].Op != isa.WTAG || p.Instrs[1].B.Imm != int32(word.TagMsg) {
		t.Errorf("second instruction = %v", p.Instrs[1])
	}
}

func TestSendMsgMacro(t *testing.T) {
	b := NewBuilder()
	b.SendMsg(R(isa.NNR), R(isa.R0), R(isa.R1), R(isa.R2))
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ops := []isa.Op{isa.SEND, isa.SEND, isa.SEND, isa.SENDE}
	for i, op := range ops {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
}

func TestSendMsgRequiresBody(t *testing.T) {
	b := NewBuilder()
	b.SendMsg(R(isa.NNR))
	if _, err := b.Assemble(); err == nil {
		t.Fatal("expected error for empty SendMsg")
	}
}

func TestListingShowsLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("entry").Nop().Label("tail").Halt()
	p := b.MustAssemble()
	l := p.Listing()
	if !strings.Contains(l, "entry:") || !strings.Contains(l, "tail:") {
		t.Errorf("listing missing labels:\n%s", l)
	}
	if !strings.Contains(l, "NOP") || !strings.Contains(l, "HALT") {
		t.Errorf("listing missing instructions:\n%s", l)
	}
}

func TestCodeWordsAccounting(t *testing.T) {
	b := NewBuilder()
	// Two short instructions pack into one 36-bit word.
	b.Add(isa.R0, R(isa.R1)).Sub(isa.R2, Imm(1))
	p := b.MustAssemble()
	if p.CodeWords() != 1 {
		t.Errorf("code words = %d", p.CodeWords())
	}
}

func TestEntryPanicsOnMissing(t *testing.T) {
	p := NewBuilder().MustAssemble()
	defer func() {
		if recover() == nil {
			t.Error("Entry of missing label did not panic")
		}
	}()
	p.Entry("missing")
}

func TestEveryEmitterProducesItsOpcode(t *testing.T) {
	b := NewBuilder()
	b.Label("l")
	b.Move(isa.R0, R(isa.R1))
	b.MoveI(isa.R0, 1)
	b.St(isa.R0, Mem(isa.A0, 0))
	b.Add(isa.R0, R(isa.R1))
	b.Sub(isa.R0, R(isa.R1))
	b.Mul(isa.R0, R(isa.R1))
	b.Div(isa.R0, R(isa.R1))
	b.Mod(isa.R0, R(isa.R1))
	b.And(isa.R0, R(isa.R1))
	b.Or(isa.R0, R(isa.R1))
	b.Xor(isa.R0, R(isa.R1))
	b.Lsh(isa.R0, R(isa.R1))
	b.Ash(isa.R0, R(isa.R1))
	b.Not(isa.R0)
	b.Neg(isa.R0)
	b.Eq(isa.R0, R(isa.R1))
	b.Ne(isa.R0, R(isa.R1))
	b.Lt(isa.R0, R(isa.R1))
	b.Le(isa.R0, R(isa.R1))
	b.Gt(isa.R0, R(isa.R1))
	b.Ge(isa.R0, R(isa.R1))
	b.Br("l")
	b.Bt(isa.R0, "l")
	b.Bf(isa.R0, "l")
	b.Bsr(isa.R3, "l")
	b.Jmp(R(isa.R3))
	b.Suspend()
	b.Halt()
	b.Nop()
	b.Send(R(isa.R0))
	b.Send2(isa.R0, R(isa.R1))
	b.SendE(R(isa.R0))
	b.Send2E(isa.R0, R(isa.R1))
	b.Send1(R(isa.R0))
	b.Send21(isa.R0, R(isa.R1))
	b.SendE1(R(isa.R0))
	b.Send2E1(isa.R0, R(isa.R1))
	b.Enter(isa.R0, R(isa.R1))
	b.Xlate(isa.A0, R(isa.R0))
	b.Probe(isa.R0, R(isa.R1))
	b.Rtag(isa.R0, R(isa.R1))
	b.Wtag(isa.R0, Imm(1))
	b.Iscf(isa.R0, R(isa.R1))
	b.Trap(1)
	b.I(isa.NOP, 0, Imm(0))
	p := b.MustAssemble()
	want := []isa.Op{
		isa.MOVE, isa.MOVE, isa.ST,
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.LSH, isa.ASH, isa.NOT, isa.NEG,
		isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE,
		isa.BR, isa.BT, isa.BF, isa.BSR, isa.JMP,
		isa.SUSPEND, isa.HALT, isa.NOP,
		isa.SEND, isa.SEND2, isa.SENDE, isa.SEND2E,
		isa.SEND1, isa.SEND21, isa.SENDE1, isa.SEND2E1,
		isa.ENTER, isa.XLATE, isa.PROBE,
		isa.RTAG, isa.WTAG, isa.ISCF, isa.TRAP, isa.NOP,
	}
	if len(p.Instrs) != len(want) {
		t.Fatalf("emitted %d instructions, want %d", len(p.Instrs), len(want))
	}
	for i, op := range want {
		if p.Instrs[i].Op != op {
			t.Errorf("instruction %d = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
	// The image round-trips through the bit-level encoding.
	decoded, err := isa.Decode(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(p.Instrs) {
		t.Errorf("decode length %d, want %d", len(decoded), len(p.Instrs))
	}
}

func TestMemOperandConstructors(t *testing.T) {
	if op := Mem(isa.A2, 5); !op.IsMem() || op.Reg != isa.A2 || op.Imm != 5 {
		t.Errorf("Mem = %+v", op)
	}
	if op := MemR(isa.A1, isa.R2); op.Mode != isa.ModeMemReg || op.Idx != isa.R2 {
		t.Errorf("MemR = %+v", op)
	}
}
