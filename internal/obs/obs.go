package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"jmachine/internal/machine"
	"jmachine/internal/network"
	"jmachine/internal/stats"
	"jmachine/internal/trace"
)

// Config selects what the recorder captures and where it streams.
// Either sink may be nil; with both nil Attach is a no-op that returns
// a nil Recorder (itself safe to Close).
type Config struct {
	// Perfetto receives the Chrome trace-event JSON timeline.
	Perfetto io.Writer
	// Metrics receives one Snapshot per line (JSONL).
	Metrics io.Writer

	// SampleEvery is the period, in cycles, of per-node counter samples
	// on the Perfetto timeline (queue depths, router occupancy, cycle
	// attribution). 0 defaults to 64; negative disables sampling.
	SampleEvery int
	// MetricsEvery is the period of machine-wide snapshots on the
	// Metrics sink. 0 defaults to SampleEvery's resolved value.
	MetricsEvery int

	// PerLink adds a counter track per mesh input link (seven ports per
	// node) — verbose, but it is the per-channel occupancy view.
	PerLink bool

	// HandlerName, when non-nil, names handler spans from their entry
	// IP (typically from asm.Program labels).
	HandlerName func(ip int32) string
}

// flowEvent is a network delivery or drop, captured by value at hook
// time: Message objects are reused on retransmission, so no pointer is
// retained.
type flowEvent struct {
	cycle  int64
	node   int32
	src    int32
	pri    int8
	words  int16
	drop   bool
	reason network.DropReason
}

// Recorder taps one machine. Its lifecycle is Attach → (machine runs) →
// Close; Close drains staged events, ends the timeline, and detaches
// the node taps.
//
// Determinism: the recorder never mutates machine state. Per-node
// events are staged by the digest-exempt mdp.Node.Watch tap into a slot
// owned by that node's stepping goroutine (exactly one writer per cycle
// under both engines); network flows arrive via the deliver/drop hooks,
// which the sharded engine replays single-threaded in sequential sweep
// order at commit. The cycle hook then drains everything on the
// coordinating goroutine at the start of the next cycle, in an order —
// samples, then ascending node id, then flow replay order — that
// depends only on the simulation, not on the shard count. The exported
// timeline is therefore byte-identical across engines and shard counts,
// and machine.StateDigest() is byte-identical with the recorder on or
// off.
type Recorder struct {
	m   *machine.Machine
	cfg Config

	pw   *PerfettoWriter
	menc *json.Encoder

	perNode [][]trace.Event // staged node events; slot i written only by node i's stepper
	flows   []flowEvent     // staged network events; written only on the coordinator

	lastSampled int64 // most recent sampled cycle, -1 before any
	lastSnap    int64
	events      uint64 // node events exported
	netEvents   uint64
	samples     uint64
	snaps       uint64
	closed      bool
	err         error
}

var linkNames = [network.NumPorts]string{"xp", "xm", "yp", "ym", "zp", "zm", "local"}

// HandlerNames builds a span-name resolver from assembler labels
// (asm.Program.Labels). When several labels share an address the
// lexicographically smallest wins, keeping the timeline deterministic.
func HandlerNames(labels map[string]int32) func(ip int32) string {
	byIP := make(map[int32]string, len(labels))
	for name, ip := range labels {
		if cur, ok := byIP[ip]; !ok || name < cur {
			byIP[ip] = name
		}
	}
	return func(ip int32) string { return byIP[ip] }
}

// Attach installs the recorder's taps on m. At most one recorder may be
// attached to a machine at a time (a second Attach displaces the
// first's node taps). Returns nil when cfg has no sink.
func Attach(m *machine.Machine, cfg Config) *Recorder {
	if cfg.Perfetto == nil && cfg.Metrics == nil {
		return nil
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 64
	}
	if cfg.MetricsEvery == 0 {
		cfg.MetricsEvery = cfg.SampleEvery
	}
	r := &Recorder{
		m:           m,
		cfg:         cfg,
		perNode:     make([][]trace.Event, m.NumNodes()),
		lastSampled: -1,
		lastSnap:    -1,
	}
	if cfg.Perfetto != nil {
		r.pw = NewPerfetto(cfg.Perfetto)
		r.pw.SetHandlerNames(cfg.HandlerName)
	}
	if cfg.Metrics != nil {
		r.menc = json.NewEncoder(cfg.Metrics)
	}
	for i := range m.Nodes {
		slot := &r.perNode[i]
		m.Nodes[i].Watch = func(e trace.Event) { *slot = append(*slot, e) }
	}
	m.Net.AddDeliverFn(func(node int, msg *network.Message, cycle int64) {
		if r.closed {
			return
		}
		r.flows = append(r.flows, flowEvent{
			cycle: cycle, node: int32(node), src: msg.Src, pri: msg.Pri,
			words: int16(len(msg.Words)),
		})
	})
	m.Net.AddDropFn(func(node int, msg *network.Message, reason network.DropReason, cycle int64) {
		if r.closed {
			return
		}
		r.flows = append(r.flows, flowEvent{
			cycle: cycle, node: int32(node), src: msg.Src, pri: msg.Pri,
			words: int16(len(msg.Words)), drop: true, reason: reason,
		})
	})
	//jm:pins the recorder samples every cycle by design; recording runs accept the pinned horizon
	m.AddCycleFn(func(cycle int64) {
		if r.closed {
			return
		}
		// Cycle hooks fire after the counter advances and before the
		// stepper, so everything staged belongs to cycles < cycle.
		r.drain(cycle - 1)
	})
	return r
}

// drain exports everything staged through the end of cycle `through`.
// Runs on the coordinating goroutine only.
func (r *Recorder) drain(through int64) {
	if r.cfg.SampleEvery > 0 && through >= 0 && through%int64(r.cfg.SampleEvery) == 0 &&
		through != r.lastSampled && r.pw != nil {
		r.sample(through)
	}
	if r.menc != nil && r.cfg.MetricsEvery > 0 && through >= 0 &&
		through%int64(r.cfg.MetricsEvery) == 0 && through != r.lastSnap {
		r.snapshot(through)
	}
	for i := range r.perNode {
		if r.pw != nil {
			for _, e := range r.perNode[i] {
				r.pw.Event(e)
				r.events++
			}
		} else {
			r.events += uint64(len(r.perNode[i]))
		}
		r.perNode[i] = r.perNode[i][:0]
	}
	if r.pw != nil {
		for _, f := range r.flows {
			name := fmt.Sprintf("deliver←n%03d", f.src)
			args := map[string]any{"words": f.words, "pri": f.pri}
			if f.drop {
				name = "drop " + f.reason.String()
				args["src"] = f.src
			}
			r.pw.Instant(f.cycle, f.node, tidNet, name, args)
		}
	}
	r.netEvents += uint64(len(r.flows))
	r.flows = r.flows[:0]
}

// sample emits one round of per-node counter tracks at ts. Reads
// exported state only.
func (r *Recorder) sample(ts int64) {
	r.lastSampled = ts
	r.samples++
	for i, n := range r.m.Nodes {
		node := int32(i)
		r.pw.Counter(ts, node, "queue (words)", map[string]any{
			"p0": n.Queues[0].Used(), "p1": n.Queues[1].Used(),
		})
		r.pw.Counter(ts, node, "router (phits)", map[string]any{
			"phits": r.m.Net.RouterOcc(i),
		})
		r.pw.Counter(ts, node, "outbox (msgs)", map[string]any{
			"p0": r.m.Net.OutboxDepth(i, 0), "p1": r.m.Net.OutboxDepth(i, 1),
		})
		cats := make(map[string]any, stats.NumCats)
		for c := stats.Cat(0); c < stats.NumCats; c++ {
			cats[c.String()] = n.Stats.Cycles[c]
		}
		r.pw.Counter(ts, node, "cycles by cat", cats)
		if r.cfg.PerLink {
			links := make(map[string]any, network.NumPorts)
			for p := 0; p < network.NumPorts; p++ {
				links[linkNames[p]] = r.m.Net.LinkOcc(i, p)
			}
			r.pw.Counter(ts, node, "links (phits)", links)
		}
	}
}

func (r *Recorder) snapshot(ts int64) {
	r.lastSnap = ts
	r.snaps++
	if err := r.menc.Encode(takeSnapshot(r.m, ts)); err != nil && r.err == nil {
		r.err = err
	}
}

// Stats reports what the recorder exported.
type RecorderStats struct {
	NodeEvents uint64
	NetEvents  uint64
	Samples    uint64
	Snapshots  uint64
	Timeline   int // Perfetto trace-event objects
}

// Stats returns export counts so far. Nil-safe.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	s := RecorderStats{
		NodeEvents: r.events, NetEvents: r.netEvents,
		Samples: r.samples, Snapshots: r.snaps,
	}
	if r.pw != nil {
		s.Timeline = r.pw.Count()
	}
	return s
}

// Sync drains everything staged through the current cycle to the
// configured writers without closing them, so a live service can serve
// the on-disk timeline mid-run (Perfetto's JSON reader tolerates the
// missing terminator). Recording continues afterwards. Like Close it
// must run between cycles on the coordinating goroutine. Callers that
// buffer the sinks flush their own writers after Sync returns.
// Nil-safe; a no-op after Close.
func (r *Recorder) Sync() error {
	if r == nil || r.closed {
		if r == nil {
			return nil
		}
		return r.err
	}
	r.drain(r.m.Cycle())
	return r.err
}

// Close drains any staged events from the final cycle, emits a closing
// sample and snapshot, terminates the timeline, and detaches the node
// taps. Safe to call more than once and on a nil Recorder.
func (r *Recorder) Close() error {
	if r == nil || r.closed {
		if r == nil {
			return nil
		}
		return r.err
	}
	now := r.m.Cycle()
	r.drain(now)
	// Always record the final state, even off-period.
	if r.pw != nil && r.lastSampled != now && r.cfg.SampleEvery > 0 {
		r.sample(now)
	}
	if r.menc != nil && r.lastSnap != now && r.cfg.MetricsEvery > 0 {
		r.snapshot(now)
	}
	r.closed = true
	for i := range r.m.Nodes {
		r.m.Nodes[i].Watch = nil
	}
	if r.pw != nil {
		if err := r.pw.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}
