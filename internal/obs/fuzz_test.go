package obs_test

// FuzzTraceExport drives the Perfetto exporter with arbitrary event
// sequences — including ones replayed through a small ring buffer, so
// wrap-reordered windows are covered — and requires that it never
// panics and always terminates into valid JSON.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"jmachine/internal/obs"
	"jmachine/internal/trace"
)

// decodeEvents turns fuzz bytes into a deterministic event sequence:
// 8-byte records of cycle delta, node, kind, and payload.
func decodeEvents(data []byte) []trace.Event {
	var evs []trace.Event
	var cycle int64
	for len(data) >= 8 {
		rec := data[:8]
		data = data[8:]
		// Signed deltas exercise backwards time without unbounded values.
		cycle += int64(int8(rec[0]))
		evs = append(evs, trace.Event{
			Cycle: cycle,
			Node:  int32(int8(rec[1])),
			Kind:  trace.Kind(rec[2] % 10), // includes out-of-range kinds
			A:     int32(int16(binary.LittleEndian.Uint16(rec[3:5]))),
			B:     int32(int16(binary.LittleEndian.Uint16(rec[5:7]))),
		})
	}
	return evs
}

func FuzzTraceExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 10, 0, 3, 0, 0})
	// A dispatch/suspend pair on one node, then a dangling resume.
	f.Add([]byte{
		1, 0, 0, 40, 0, 2, 0, 0,
		2, 0, 2, 40, 0, 0, 0, 0,
		1, 5, 1, 60, 0, 1, 0, 0,
	})
	// Enough records to lap a small ring several times.
	lap := make([]byte, 0, 40*8)
	for i := 0; i < 40; i++ {
		lap = append(lap, byte(i), byte(i%7), byte(i%8), byte(i), 0, byte(i), 0, 0)
	}
	f.Add(lap)

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeEvents(data)

		// Direct export of the raw sequence.
		var direct bytes.Buffer
		w := obs.NewPerfetto(&direct)
		for _, e := range evs {
			w.Event(e)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("direct export: %v", err)
		}
		if !json.Valid(direct.Bytes()) {
			t.Fatalf("direct export is not valid JSON:\n%s", direct.String())
		}

		// Export of the ring-retained window: the wrap boundary must not
		// corrupt the exporter either.
		ring := trace.New(7)
		for _, e := range evs {
			ring.Add(e)
		}
		var wrapped bytes.Buffer
		w2 := obs.NewPerfetto(&wrapped)
		w2.SetHandlerNames(func(ip int32) string { return "" }) // empty names fall back
		for _, e := range ring.Events() {
			w2.Event(e)
		}
		w2.Counter(3, -1, "fuzz", map[string]any{"v": len(evs)})
		w2.Instant(-5, 2, 9, "x", nil)
		if err := w2.Close(); err != nil {
			t.Fatalf("ring export: %v", err)
		}
		if !json.Valid(wrapped.Bytes()) {
			t.Fatalf("ring export is not valid JSON:\n%s", wrapped.String())
		}
	})
}
