package obs

import (
	"jmachine/internal/machine"
	"jmachine/internal/stats"
)

// Snapshot is one machine-wide metric sample, serialised as a JSON
// line. All counters are cumulative since reset; the in-flight gauges
// (queue/router/outbox occupancy) are the state at Cycle's end.
type Snapshot struct {
	Cycle int64 `json:"cycle"`
	Nodes int   `json:"nodes"`

	Instrs  uint64 `json:"instrs"`
	Threads uint64 `json:"threads"`

	InjectedMsgs   uint64 `json:"injected_msgs"`
	InjectedWords  uint64 `json:"injected_words"`
	DeliveredMsgs  uint64 `json:"delivered_msgs"`
	DeliveredWords uint64 `json:"delivered_words"`
	PhitHops       uint64 `json:"phit_hops"`
	ReturnedMsgs   uint64 `json:"returned_msgs"`
	Retransmits    uint64 `json:"retransmits"`
	DroppedMsgs    uint64 `json:"dropped_msgs"`
	CorruptDrops   uint64 `json:"corrupt_drops"`
	DupDrops       uint64 `json:"dup_drops"`

	SendFaults    uint64 `json:"send_faults"`
	XlateFaults   uint64 `json:"xlate_faults"`
	WatchdogTrips uint64 `json:"watchdog_trips"`

	// CyclesByCat is the Figure 6 attribution, keyed by category name
	// (comp/comm/sync/xlate/nnr/idle).
	CyclesByCat map[string]int64 `json:"cycles_by_cat"`

	// Progress mirrors the watchdog's forward-progress signature, so a
	// live metrics tail shows the same signal the watchdog trips on.
	Progress machine.ProgressCounters `json:"progress"`

	// In-flight gauges.
	QueueWords  [2]int `json:"queue_words"` // buffered words machine-wide, per priority
	RouterPhits int    `json:"router_phits"`
	OutboxMsgs  int    `json:"outbox_msgs"`
}

// TakeSnapshot reads the machine's current metric state. It only reads
// exported state and must run on the coordinating goroutine between
// cycles (as the recorder does); it never perturbs the digest.
func TakeSnapshot(m *machine.Machine) Snapshot {
	return takeSnapshot(m, m.Cycle())
}

func takeSnapshot(m *machine.Machine, cycle int64) Snapshot {
	ns := m.Net.Stats()
	s := Snapshot{
		Cycle:          cycle,
		Nodes:          m.NumNodes(),
		Instrs:         m.Stats.Instrs(),
		Threads:        m.Stats.Threads(),
		DeliveredMsgs:  ns.DeliveredMsgs[0] + ns.DeliveredMsgs[1],
		DeliveredWords: ns.DeliveredWords[0] + ns.DeliveredWords[1],
		PhitHops:       ns.PhitHops,
		ReturnedMsgs:   ns.ReturnedMsgs,
		Retransmits:    ns.Retransmits,
		DroppedMsgs:    ns.DroppedMsgs,
		CorruptDrops:   ns.CorruptDrops,
		DupDrops:       ns.DupDrops,
		SendFaults:     m.Stats.SendFaults(),
		XlateFaults:    m.Stats.XlateFaults(),
		WatchdogTrips:  m.WatchdogTrips,
		CyclesByCat:    make(map[string]int64, stats.NumCats),
		Progress:       m.Progress(),
	}
	for c := stats.Cat(0); c < stats.NumCats; c++ {
		s.CyclesByCat[c.String()] = m.Stats.Cycles(c)
	}
	for i, sn := range m.Stats.Nodes {
		s.InjectedMsgs += sn.MsgsSent[0] + sn.MsgsSent[1]
		s.InjectedWords += sn.WordsSent[0] + sn.WordsSent[1]
		node := m.Nodes[i]
		s.QueueWords[0] += node.Queues[0].Used()
		s.QueueWords[1] += node.Queues[1].Used()
		s.RouterPhits += m.Net.RouterOcc(i)
		s.OutboxMsgs += m.Net.OutboxDepth(i, 0) + m.Net.OutboxDepth(i, 1)
	}
	return s
}
