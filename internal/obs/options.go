package obs

import (
	"bufio"
	"fmt"
	"os"
	"sync/atomic"

	"jmachine/internal/machine"
)

// Options is the file-backed configuration experiments thread through
// (bench.Options.Obs, jm-trace flags). A nil *Options disables
// observability entirely; the attach path then costs one nil check.
type Options struct {
	// PerfettoPath receives the timeline; MetricsPath the JSONL
	// snapshots. Empty disables that sink.
	PerfettoPath string
	MetricsPath  string

	// Every is the sampling period in cycles for both counter samples
	// and snapshots (0 = default of 64, negative = events only).
	Every int

	// PerLink adds per-mesh-link occupancy counter tracks.
	PerLink bool

	// HandlerName optionally names handler spans from their entry IP.
	HandlerName func(ip int32) string

	seq atomic.Int32 // machines attached so far, for output-file suffixes
}

// pathFor returns the k-th output path for base: the first machine gets
// base itself, later ones base.2, base.3, … so campaigns that build
// several machines don't overwrite each other's traces.
func pathFor(base string, k int32) string {
	if base == "" || k <= 1 {
		return base
	}
	return fmt.Sprintf("%s.%d", base, k)
}

// AttachTo opens the configured sinks and attaches a Recorder to m.
// The returned stop function drains, closes the files, and reports the
// first error; it is never nil. A nil receiver (observability off)
// returns a no-op stop.
func (o *Options) AttachTo(m *machine.Machine) func() error {
	if o == nil || (o.PerfettoPath == "" && o.MetricsPath == "") {
		return func() error { return nil }
	}
	k := o.seq.Add(1)
	var files []*os.File
	var bufs []*bufio.Writer
	openSink := func(path string) (*bufio.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		b := bufio.NewWriterSize(f, 1<<16)
		bufs = append(bufs, b)
		return b, nil
	}
	closeAll := func() error {
		var first error
		for _, b := range bufs {
			if err := b.Flush(); err != nil && first == nil {
				first = err
			}
		}
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	cfg := Config{
		SampleEvery: o.Every,
		PerLink:     o.PerLink,
		HandlerName: o.HandlerName,
	}
	if cfg.HandlerName == nil && len(m.Nodes) > 0 && m.Nodes[0].Prog != nil {
		// Name handler spans from the program's own labels by default.
		cfg.HandlerName = HandlerNames(m.Nodes[0].Prog.Labels)
	}
	if o.PerfettoPath != "" {
		w, err := openSink(pathFor(o.PerfettoPath, k))
		if err != nil {
			closeAll()
			return func() error { return err }
		}
		cfg.Perfetto = w
	}
	if o.MetricsPath != "" {
		w, err := openSink(pathFor(o.MetricsPath, k))
		if err != nil {
			closeAll()
			return func() error { return err }
		}
		cfg.Metrics = w
	}
	r := Attach(m, cfg)
	return func() error {
		err := r.Close()
		if cerr := closeAll(); err == nil {
			err = cerr
		}
		return err
	}
}
