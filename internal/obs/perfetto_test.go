package obs_test

// Golden-file and schema-shape coverage for the Perfetto exporter. The
// golden trace is a seeded 8-node pingpong: any change to the exporter
// output format — or to the simulator's event stream — shows up as a
// byte diff. Regenerate deliberately with:
//
//	go test ./internal/obs/ -run TestPerfettoGolden -update
//
// The schema check is format-level: every trace event must carry
// ph/ts/pid/tid, and every counter track's timestamps must be monotone,
// so the file loads in ui.perfetto.dev without warnings.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/obs"
	"jmachine/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun produces the golden workload's timeline and metrics bytes.
func goldenRun(t *testing.T) (perfetto, metrics []byte) {
	t.Helper()
	dir := t.TempDir()
	o := &obs.Options{
		PerfettoPath: filepath.Join(dir, "t.json"),
		MetricsPath:  filepath.Join(dir, "m.jsonl"),
		Every:        8,
		PerLink:      true,
	}
	res, err := bench.PingCampaign(chaos.Campaign{}, bench.ResilienceConfig{
		Nodes:  8,
		Budget: 100_000,
		Obs:    o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("golden pingpong did not complete: %v", res.Err)
	}
	pb, err := os.ReadFile(o.PerfettoPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	return pb, mb
}

func TestPerfettoGolden(t *testing.T) {
	pb, mb := goldenRun(t)
	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"pingpong.golden.json", pb},
		{"pingpong.golden.jsonl", mb},
	} {
		path := filepath.Join("testdata", g.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s: output differs from golden file (len %d vs %d); regenerate with -update if the change is intended",
				g.name, len(g.got), len(want))
		}
	}
}

// checkTraceShape validates format-level invariants of a trace-event
// document and returns the parsed events.
func checkTraceShape(t *testing.T, doc []byte) []map[string]json.RawMessage {
	t.Helper()
	if !json.Valid(doc) {
		t.Fatal("document is not valid JSON")
	}
	var top struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &top); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	type track struct {
		pid  int64
		name string
	}
	lastTs := make(map[track]int64)
	opens, closes := 0, 0
	for i, ev := range top.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		var ph string
		var ts, pid int64
		if err := json.Unmarshal(ev["ph"], &ph); err != nil || ph == "" {
			t.Fatalf("event %d: bad ph (%v)", i, err)
		}
		if err := json.Unmarshal(ev["ts"], &ts); err != nil {
			t.Fatalf("event %d: bad ts (%v)", i, err)
		}
		if err := json.Unmarshal(ev["pid"], &pid); err != nil {
			t.Fatalf("event %d: bad pid (%v)", i, err)
		}
		switch ph {
		case "B":
			opens++
		case "E":
			closes++
		case "C":
			var name string
			if err := json.Unmarshal(ev["name"], &name); err != nil || name == "" {
				t.Fatalf("counter event %d without a name", i)
			}
			k := track{pid: pid, name: name}
			if prev, ok := lastTs[k]; ok && ts < prev {
				t.Errorf("counter track %v not monotone: ts %d after %d", k, ts, prev)
			}
			lastTs[k] = ts
		}
	}
	if opens != closes {
		t.Errorf("unbalanced spans: %d B vs %d E", opens, closes)
	}
	return top.TraceEvents
}

func TestPerfettoSchemaShape(t *testing.T) {
	pb, mb := goldenRun(t)
	events := checkTraceShape(t, pb)
	// The 8-node run must show all three track families.
	var counters, spans, instants int
	for _, ev := range events {
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		switch ph {
		case "C":
			counters++
		case "B":
			spans++
		case "i":
			instants++
		}
	}
	if counters == 0 || spans == 0 || instants == 0 {
		t.Errorf("track families missing: counters=%d spans=%d instants=%d",
			counters, spans, instants)
	}
	// Every metrics line is one valid Snapshot with a monotone cycle.
	lines := bytes.Split(bytes.TrimSpace(mb), []byte("\n"))
	var prev int64 = -1
	for i, line := range lines {
		var s obs.Snapshot
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("metrics line %d: %v", i, err)
		}
		if s.Cycle <= prev {
			t.Errorf("metrics line %d: cycle %d not increasing after %d", i, s.Cycle, prev)
		}
		prev = s.Cycle
		if s.Nodes != 8 {
			t.Errorf("metrics line %d: nodes = %d", i, s.Nodes)
		}
	}
}

// TestPerfettoUnbalanced feeds a pathological event sequence — resumes
// without dispatches, suspends of nothing, out-of-order cycles — and
// requires a loadable document with balanced spans.
func TestPerfettoUnbalanced(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewPerfetto(&buf)
	evs := []trace.Event{
		{Cycle: 10, Node: 3, Kind: trace.Suspend, A: 1},
		{Cycle: 11, Node: 3, Kind: trace.Resume, A: 40},
		{Cycle: 12, Node: 3, Kind: trace.Dispatch, A: 50, B: 3}, // implicit close
		{Cycle: 5, Node: 3, Kind: trace.Dispatch, A: 60, B: 2},  // time goes backwards
		{Cycle: 2, Node: 4, Kind: trace.Halt, A: 9},
		{Cycle: 3, Node: 5, Kind: trace.Dispatch, A: 70, B: 1}, // left open at Close
	}
	for _, e := range evs {
		w.Event(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	checkTraceShape(t, buf.Bytes())
}

func TestHandlerNamesDeterministic(t *testing.T) {
	labels := map[string]int32{"zeta": 8, "alpha": 8, "beta": 16}
	fn := obs.HandlerNames(labels)
	if got := fn(8); got != "alpha" {
		t.Errorf("ip 8 → %q, want the lexicographically smallest label", got)
	}
	if got := fn(16); got != "beta" {
		t.Errorf("ip 16 → %q", got)
	}
	if got := fn(99); got != "" {
		t.Errorf("unknown ip → %q, want empty", got)
	}
}
