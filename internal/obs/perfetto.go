// Package obs is the observability layer: it streams per-node trace
// events and per-cycle counter samples into Chrome/Perfetto trace-event
// JSON, and periodic machine-wide metric snapshots into JSON lines.
//
// The design constraint that shapes everything here is determinism:
// attaching an observer must leave machine.StateDigest() byte-identical
// to an unobserved run, under both the sequential loop and the sharded
// engine at any shard count. The recorder therefore only *reads*
// machine state, stages per-node events behind the digest-exempt
// mdp.Node.Watch tap, and drains everything on the coordinating
// goroutine between cycles (see obs.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"jmachine/internal/mdp"
	"jmachine/internal/trace"
)

// Thread-track ids within each node's process group.
const (
	tidMDP = 0 // processor spans and instants
	tidNet = 1 // network delivery/drop instants
)

// pfEvent is one Chrome trace-event object. Fields follow the
// trace-event format that ui.perfetto.dev and chrome://tracing load.
type pfEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// PerfettoWriter streams trace events as they arrive, holding no event
// backlog: each call marshals one object and appends it to the JSON
// array. The output is valid JSON after every completed call — Close
// only terminates the array, so even a truncated file is one missing
// brace away from loadable.
//
// Timestamps are simulation cycles (the viewer's "us" unit reads as
// cycles). One process per node; tid 0 carries MDP handler spans, tid 1
// network delivery instants, and counter tracks hang off the process.
type PerfettoWriter struct {
	w      io.Writer
	err    error
	n      int             // events emitted, for the trailing comma and reporting
	open   map[int32]int64 // node → cycle of the currently open span
	seen   map[int32]bool  // nodes with metadata already emitted
	nameFn func(ip int32) string
	lastTs int64
}

// NewPerfetto starts a trace-event stream on w.
func NewPerfetto(w io.Writer) *PerfettoWriter {
	p := &PerfettoWriter{
		w:    w,
		open: make(map[int32]int64),
		seen: make(map[int32]bool),
	}
	p.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	return p
}

// SetHandlerNames installs a resolver from handler entry IP to a
// human-readable span name (typically built from asm.Program labels).
func (p *PerfettoWriter) SetHandlerNames(fn func(ip int32) string) { p.nameFn = fn }

// Err returns the first write or encoding error, if any.
func (p *PerfettoWriter) Err() error { return p.err }

// Count returns the number of trace-event objects emitted so far.
func (p *PerfettoWriter) Count() int { return p.n }

func (p *PerfettoWriter) raw(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

func (p *PerfettoWriter) emit(e pfEvent) {
	if p.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		p.err = err
		return
	}
	if p.n > 0 {
		p.raw(",\n")
	}
	p.raw(string(b))
	p.n++
}

// meta emits the process/thread naming metadata for a node the first
// time it appears.
func (p *PerfettoWriter) metaFor(node int32) {
	if p.seen[node] {
		return
	}
	p.seen[node] = true
	p.emit(pfEvent{Name: "process_name", Ph: "M", Pid: node, Tid: tidMDP,
		Args: map[string]any{"name": fmt.Sprintf("node %03d", node)}})
	p.emit(pfEvent{Name: "thread_name", Ph: "M", Pid: node, Tid: tidMDP,
		Args: map[string]any{"name": "mdp"}})
	p.emit(pfEvent{Name: "thread_name", Ph: "M", Pid: node, Tid: tidNet,
		Args: map[string]any{"name": "net"}})
}

func (p *PerfettoWriter) spanName(ip int32) string {
	if p.nameFn != nil {
		if s := p.nameFn(ip); s != "" {
			return s
		}
	}
	return fmt.Sprintf("h@%d", ip)
}

// closeSpan ends the open span on a node's mdp track, if any. Spans are
// closed at ts, clamped so a malformed event sequence (fuzzing, ring
// wrap) cannot end a span before it began.
func (p *PerfettoWriter) closeSpan(node int32, ts int64) {
	begin, ok := p.open[node]
	if !ok {
		return
	}
	delete(p.open, node)
	if ts < begin {
		ts = begin
	}
	p.emit(pfEvent{Ph: "E", Ts: ts, Pid: node, Tid: tidMDP})
}

// Event translates one node trace event into timeline objects:
// Dispatch/Resume open handler spans, Suspend/Halt close them, and
// Send/Fault/Mark/Halt drop instants on the track. Any event sequence
// is accepted — unbalanced begins/ends are repaired, never fatal.
func (p *PerfettoWriter) Event(e trace.Event) {
	p.metaFor(e.Node)
	if e.Cycle > p.lastTs {
		p.lastTs = e.Cycle
	}
	switch e.Kind {
	case trace.Dispatch:
		p.closeSpan(e.Node, e.Cycle)
		p.open[e.Node] = e.Cycle
		p.emit(pfEvent{Name: p.spanName(e.A), Ph: "B", Ts: e.Cycle, Pid: e.Node, Tid: tidMDP,
			Args: map[string]any{"msg_words": e.B}})
	case trace.Resume:
		p.closeSpan(e.Node, e.Cycle)
		p.open[e.Node] = e.Cycle
		p.emit(pfEvent{Name: "resume " + p.spanName(e.A), Ph: "B", Ts: e.Cycle, Pid: e.Node, Tid: tidMDP,
			Args: map[string]any{"level": e.B}})
	case trace.Suspend:
		p.closeSpan(e.Node, e.Cycle)
	case trace.Halt:
		p.closeSpan(e.Node, e.Cycle)
		p.instant(e.Cycle, e.Node, tidMDP, "halt", nil)
	case trace.Send:
		p.instant(e.Cycle, e.Node, tidMDP, fmt.Sprintf("send→n%03d", e.A),
			map[string]any{"words": e.B})
	case trace.Fault:
		p.instant(e.Cycle, e.Node, tidMDP, "fault "+mdp.FaultKind(uint8(e.A)).String(),
			map[string]any{"ip": e.B})
	case trace.Mark:
		p.instant(e.Cycle, e.Node, tidMDP, fmt.Sprintf("mark(%d,%d)", e.A, e.B), nil)
	default:
		p.instant(e.Cycle, e.Node, tidMDP, e.Kind.String(), nil)
	}
}

func (p *PerfettoWriter) instant(ts int64, pid, tid int32, name string, args map[string]any) {
	p.emit(pfEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args})
}

// Instant drops a thread-scoped instant on an arbitrary track; the
// recorder uses it for network delivery and drop events.
func (p *PerfettoWriter) Instant(ts int64, pid, tid int32, name string, args map[string]any) {
	p.metaFor(pid)
	if ts > p.lastTs {
		p.lastTs = ts
	}
	p.instant(ts, pid, tid, name, args)
}

// Counter emits one sample on a counter track. Multiple series render
// stacked when args carries several values.
func (p *PerfettoWriter) Counter(ts int64, pid int32, name string, series map[string]any) {
	p.metaFor(pid)
	if ts > p.lastTs {
		p.lastTs = ts
	}
	p.emit(pfEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tidMDP, Args: series})
}

// Close ends any spans still open (at the latest timestamp observed)
// and terminates the JSON document. The writer must not be used after.
// The emitted JSON is golden-tested byte-for-byte, so everything below
// must stay order-deterministic.
//
//jm:trace-root timeline bytes are part of the deterministic trace output
func (p *PerfettoWriter) Close() error {
	// Deterministic order: ascending node id.
	for len(p.open) > 0 {
		var minNode int32
		first := true
		for n := range p.open { //jm:maporder min-select loop: the minimum is order-independent
			if first || n < minNode {
				minNode, first = n, false
			}
		}
		p.closeSpan(minNode, p.lastTs)
	}
	p.raw("]}\n")
	return p.err
}
