package compiled_test

// FuzzCompiledVsInterpreter: differential fuzzing of the compiled tier
// against the interpreter oracle. Fuzz bytes drive a generator that
// emits handler programs from the same instruction vocabulary the
// runtime library and the six workloads use; programs that pass the
// static verifier (the same asm.Check gate Compile enforces) then run
// on an interpreter machine and a compiled machine in lockstep — once
// per-cycle with fusion pinned off and once in fused StepN batches —
// failing on any digest, cycle, or fault divergence. Seeds come from
// handcrafted selector streams covering every generator production and
// from the opcode streams of the real corpus: the rt library and the
// application kernels.

import (
	"errors"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/rt"
	"jmachine/internal/trace"
	"jmachine/internal/word"
)

// genRegs is the register set the generator mutates. A0 (scratch base)
// and A1 (destination node word) are set once in the prologue and
// never clobbered, so memory and send productions always have valid
// operands — keeping generated programs inside the Check-clean domain
// by construction.
var genRegs = [...]isa.Reg{isa.R0, isa.R1, isa.R2}

// genTags are the tags the WTAG production may write. TagMsg is
// excluded: a header word built outside the MoveHdr idiom is exactly
// what the verifier's ASM002 exists to reject. Cfut and Fut stay in —
// a later consuming read faults, which is a bail path worth fuzzing.
var genTags = [...]word.Tag{word.TagInt, word.TagIP, word.TagCfut, word.TagFut}

// genProdCount is the number of generator productions (fuzz selector
// modulus).
const genProdCount = 25

// genProg turns fuzz bytes into a handler program: a fixed prologue
// defining every register the productions read, up to 60 generated
// instructions (two bytes each: production selector and argument), a
// store-and-halt epilogue at "end" (the forward-branch target), and a
// "sink" message handler so send productions have a receiver.
func genProg(data []byte) *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, 1).
		MoveI(isa.R1, 2).
		MoveI(isa.R2, 3).
		MoveI(isa.A0, 64).
		MoveI(isa.A1, 100).
		Move(isa.A1, asm.Mem(isa.A1, 0)) // node word seeded by the rig
	for i := 0; i+1 < len(data) && i < 120; i += 2 {
		op, arg := data[i], data[i+1]
		sel := int(op) % genProdCount
		rk := genRegs[int(op/genProdCount)%len(genRegs)]
		rj := genRegs[int(arg)%len(genRegs)]
		v := int32(arg % 16)
		switch sel {
		case 0:
			b.Nop()
		case 1:
			b.MoveI(rk, v)
		case 2:
			b.Add(rk, asm.Imm(v))
		case 3:
			b.Sub(rk, asm.R(rj))
		case 4:
			b.Mul(rk, asm.Imm(v))
		case 5:
			b.Div(rk, asm.Imm(v+1)) // nonzero; MOD below covers ÷0
		case 6:
			b.Mod(rk, asm.R(rj)) // rj may hold zero: deterministic fault
		case 7:
			b.Xor(rk, asm.R(rj))
		case 8:
			b.Lsh(rk, asm.Imm(v%8))
		case 9:
			b.Ash(rk, asm.Imm(-(v % 8)))
		case 10:
			b.Eq(rk, asm.R(rj))
		case 11:
			b.Lt(rk, asm.Imm(v))
		case 12:
			b.Not(rk)
		case 13:
			b.Neg(rk)
		case 14:
			b.Move(rk, asm.Mem(isa.A0, v%8))
		case 15:
			b.St(rk, asm.Mem(isa.A0, v%8))
		case 16:
			b.Rtag(rk, asm.R(rj))
		case 17:
			b.Iscf(rk, asm.R(rj))
		case 18:
			b.Wtag(rk, asm.Imm(int32(genTags[v%4])))
		case 19:
			b.Enter(rk, asm.R(rj))
		case 20:
			b.Xlate(rk, asm.R(rj)) // misses fault deterministically
		case 21:
			b.Probe(rk, asm.R(rj))
		case 22:
			b.Bt(rk, "end")
		case 23:
			b.Bf(rk, "end")
		case 24:
			b.MoveHdr(isa.R3, "sink", 2).
				SendMsg(asm.R(isa.A1), asm.R(isa.R3), asm.R(rk))
		}
	}
	b.Label("end").
		St(isa.R0, asm.Mem(isa.A0, 1)).
		St(isa.R1, asm.Mem(isa.A0, 2)).
		St(isa.R2, asm.Mem(isa.A0, 3)).
		Halt()
	b.Label("sink").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Suspend()
	return b.MustAssemble()
}

// fuzzDiff is the differential body: generate, gate on the verifier,
// and run both lockstep regimes. Inputs the verifier rejects are
// outside the compiled tier's domain (Compile refuses them too) and
// skip rather than fail.
func fuzzDiff(t *testing.T, data []byte) {
	p := genProg(data)
	if _, err := asm.Translate(p); err != nil {
		var ef *asm.ErrFindings
		if errors.As(err, &ef) {
			t.Skip("generated program outside the Check-clean domain")
		}
		t.Fatal(err)
	}
	setup := func(m *machine.Machine) {
		if err := m.Nodes[0].Mem.Write(100, m.Net.NodeWord(1)); err != nil {
			panic(err)
		}
		m.Nodes[0].StartBackground(p.Entry("main"))
	}
	// Per-cycle stepping with fusion pinned off, digests compared on a
	// stride: any cycle is a legal observation point in this regime, and
	// the stride buys fuzz throughput (the per-cycle gold check lives in
	// TestBailBoundaries).
	itp, cpl := buildPair(t, machine.Grid(2, 1, 1), p, setup)
	for i := 0; i < 320; i++ {
		itp.Step()
		cpl.Step()
		if i%16 == 15 {
			compare(t, itp, cpl, "fuzz stepLock")
		}
	}
	compare(t, itp, cpl, "fuzz stepLock end")
	itp2, cpl2 := buildPair(t, machine.Grid(2, 1, 1), p, setup)
	batchLock(t, itp2, cpl2, 320)
}

// opcodeSeed projects a real program onto the generator's input
// alphabet: each instruction contributes its opcode and A-register
// bytes, so the seed inherits the corpus program's instruction mix.
func opcodeSeed(p *asm.Program) []byte {
	var out []byte
	for _, in := range p.Instrs {
		out = append(out, byte(in.Op), byte(in.A))
	}
	return out
}

// rtLibProgram assembles just the runtime library (plus a trivial
// main), the other half of the issue's seeding corpus.
func rtLibProgram() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").Halt()
	rt.BuildLib(b)
	return b.MustAssemble()
}

// fuzzSeeds loads the shared seed corpus: every generator production,
// the handcrafted stress streams, and the opcode streams of the real
// corpus (rt library and application kernels).
func fuzzSeeds(f *testing.F) {
	var all []byte
	for sel := 0; sel < genProdCount; sel++ {
		all = append(all, byte(sel), byte(sel*7+3))
	}
	f.Add(all)
	f.Add([]byte{})
	f.Add([]byte{24, 0, 24, 1, 0, 0, 24, 2}) // send-heavy
	f.Add([]byte{6, 0, 20, 1, 18, 2, 15, 3}) // fault-heavy: mod, xlate, wtag
	for _, p := range []*asm.Program{
		rtLibProgram(),
		lcs.BuildProgram(),
		radix.BuildProgram(),
		nqueens.BuildProgram(),
		tsp.BuildProgram(),
	} {
		f.Add(opcodeSeed(p))
	}
}

func FuzzCompiledVsInterpreter(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(fuzzDiff)
}

// fuzzCertifier is the certificate-soundness body: the same generated
// programs, run on a plain interpreter machine with only the
// send-distance table installed (no closures, so every boundary is
// interpreted), checking the certifier's dynamic claim against the
// observed traffic. Node.SendBound promises "no injection before cycle
// b absent external input"; node 0 receives nothing in this rig, so
// each per-cycle bound is a standing promise and the running maximum
// must never be overtaken by an actual send — the exact monotonicity
// the machine's cached SendHorizon relies on during a quiet streak.
func fuzzCertifier(t *testing.T, data []byte) {
	p := genProg(data)
	tr, err := asm.Translate(p)
	if err != nil {
		var ef *asm.ErrFindings
		if errors.As(err, &ef) {
			t.Skip("generated program outside the Check-clean domain")
		}
		t.Fatal(err)
	}
	m, err := machine.New(machine.Grid(2, 1, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	bufs := m.EnableTrace(4096)
	if err := m.Nodes[0].Mem.Write(100, m.Net.NodeWord(1)); err != nil {
		t.Fatal(err)
	}
	m.Nodes[0].SetCompiled(&mdp.CompiledProgram{SendDist: tr.Certs.SendDist}, nil)
	m.Nodes[0].StartBackground(p.Entry("main"))

	promise := int64(-1 << 62)
	seen := 0
	for i := 0; i < 400; i++ {
		if b := m.Nodes[0].SendBound(); b < promise {
			t.Fatalf("cycle %d: SendBound regressed from %d to %d with no external input",
				m.Cycle(), promise, b)
		} else {
			promise = b
		}
		m.Step()
		ev := bufs[0].Events()
		for _, e := range ev[seen:] {
			if e.Kind == trace.Send && e.Cycle < promise {
				t.Fatalf("node 0 injected at cycle %d, but the certificate bound promised >= %d",
					e.Cycle, promise)
			}
		}
		seen = len(ev)
		if m.FatalErr() != nil {
			// No rt fault policy is attached, so a serviced fault without
			// a handler is a legal terminal state (as in fuzzDiff): the
			// node is dead and provably sends nothing more.
			break
		}
	}
}

// FuzzCertifier drives fuzzCertifier from the shared corpus: the
// effect certifier's send-distance tables are checked for dynamic
// soundness on the same program distribution the differential fuzz
// uses for execution equivalence.
func FuzzCertifier(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(fuzzCertifier)
}
