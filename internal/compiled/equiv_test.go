package compiled_test

// The compiled tier's differential contract: a machine with the
// compiled handler tier installed must be byte-identical to the pure
// interpreter — same StateDigest at every observation point, same
// workload results, same cycle counts, same observability trace bytes —
// across the full execution matrix: {reference, fast-path} stepping ×
// shard counts {1, 2, 4, 7} × chaos campaigns. The interpreter run is
// always the oracle; any closure that mis-times, mis-charges, or
// mutates on a bail path shows up as a digest mismatch.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/compiled"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/network"
	"jmachine/internal/obs"
	"jmachine/internal/rt"
)

// shardCounts is the sweep the contract requires; 7 mis-divides the
// 8-node mesh on purpose.
func shardCounts(t *testing.T) []int {
	if testing.Short() {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 7}
}

// tierCase is one point of the execution matrix.
type tierCase struct {
	compiled  bool
	reference bool
	shards    int
}

// matrix returns the interpreter oracle point followed by every
// compiled-tier point to compare against it.
func matrix(t *testing.T) []tierCase {
	cases := []tierCase{{compiled: false}}
	for _, ref := range []bool{false, true} {
		for _, k := range append([]int{0}, shardCounts(t)...) {
			cases = append(cases, tierCase{compiled: true, reference: ref, shards: k})
		}
	}
	return cases
}

// appOut is a comparable summary of an application run.
type appOut struct {
	vals   [2]int64
	cycles int64
	digest uint64
}

// tierSetup returns an app Setup hook installing the compiled tier and
// the parallel engine per tc, plus the stop function.
func tierSetup(t *testing.T, tc tierCase) (func(*machine.Machine, *rt.Runtime), func()) {
	t.Helper()
	var eng *engine.Engine
	setup := func(m *machine.Machine, _ *rt.Runtime) {
		if tc.reference {
			m.SetFastPath(false)
		}
		if tc.compiled {
			if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
				t.Fatalf("compiled.Attach: %v", err)
			}
		}
		if tc.shards > 1 {
			eng = engine.Attach(m, tc.shards)
		}
	}
	return setup, func() { eng.Stop() }
}

// appEquiv runs one application across the matrix and requires every
// compiled point to match the interpreter oracle exactly.
func appEquiv(t *testing.T, name string, run func(tc tierCase) (appOut, error)) {
	t.Helper()
	var want appOut
	for i, tc := range matrix(t) {
		got, err := run(tc)
		if err != nil {
			t.Fatalf("%s %+v: %v", name, tc, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s %+v diverged from interpreter:\n  oracle:   %+v\n  compiled: %+v", name, tc, want, got)
		}
	}
}

func TestEquivLCS(t *testing.T) {
	appEquiv(t, "lcs", func(tc tierCase) (appOut, error) {
		p := lcs.Params{LenA: 32, LenB: 48, Seed: 1}
		setup, stop := tierSetup(t, tc)
		p.Setup = setup
		defer stop()
		r, err := lcs.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Length), 0},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEquivRadix(t *testing.T) {
	appEquiv(t, "radix", func(tc tierCase) (appOut, error) {
		p := radix.Params{Keys: 128, Bits: 12, Seed: 2}
		setup, stop := tierSetup(t, tc)
		p.Setup = setup
		defer stop()
		r, err := radix.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		var sum int64
		for i, v := range r.Sorted {
			sum += int64(i+1) * int64(v)
		}
		return appOut{
			vals:   [2]int64{sum, int64(len(r.Sorted))},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEquivNQueens(t *testing.T) {
	appEquiv(t, "nqueens", func(tc tierCase) (appOut, error) {
		p := nqueens.Params{N: 5, SplitDepth: 2}
		setup, stop := tierSetup(t, tc)
		p.Setup = setup
		defer stop()
		r, err := nqueens.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Solutions), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

func TestEquivTSP(t *testing.T) {
	appEquiv(t, "tsp", func(tc tierCase) (appOut, error) {
		p := tsp.Params{Cities: 6, Seed: 3}
		setup, stop := tierSetup(t, tc)
		p.Setup = setup
		defer stop()
		r, err := tsp.Run(8, p)
		if err != nil {
			return appOut{}, err
		}
		return appOut{
			vals:   [2]int64{int64(r.Best), int64(r.Tasks)},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}, nil
	})
}

// --- micro-benchmark campaigns under chaos ---------------------------

// campSum is a comparable summary of a campaign run.
type campSum struct {
	completed bool
	errStr    string
	cycles    int64
	value     int64
	trips     uint64
	net       network.Stats
	digest    uint64
}

func campSumOf(r *bench.CampaignResult) campSum {
	s := campSum{
		completed: r.Completed,
		cycles:    r.Cycles,
		value:     r.Value,
		trips:     r.WatchdogTrips,
		net:       r.Net,
		digest:    r.StateDigest,
	}
	if r.Err != nil {
		s.errStr = r.Err.Error()
	}
	return s
}

func campaignEquiv(t *testing.T, name string, run func(tc tierCase) (*bench.CampaignResult, error)) {
	t.Helper()
	var want campSum
	for i, tc := range matrix(t) {
		res, err := run(tc)
		if err != nil {
			t.Fatalf("%s %+v: %v", name, tc, err)
		}
		got := campSumOf(res)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s %+v diverged from interpreter:\n  oracle:   %+v\n  compiled: %+v", name, tc, want, got)
		}
	}
}

// TestEquivPingChaos runs the ping micro-benchmark under seeded random
// fault schedules with the full resilience stack: chaos stalls,
// freezes, corruptions, checksum drops and retransmissions must land on
// the same cycles with the compiled tier on.
func TestEquivPingChaos(t *testing.T) {
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		camp := chaos.RandomCampaign(seed, 8, 4000, 4)
		campaignEquiv(t, camp.Name+"/ping", func(tc tierCase) (*bench.CampaignResult, error) {
			return bench.PingCampaign(camp, bench.ResilienceConfig{
				Nodes:     8,
				Checksum:  true,
				RTS:       true,
				Reliable:  true,
				Watchdog:  50_000,
				Budget:    300_000,
				Shards:    tc.shards,
				Reference: tc.reference,
				Compiled:  tc.compiled,
			})
		})
	}
}

// TestEquivBarrierChaos is the barrier analogue of TestEquivPingChaos.
func TestEquivBarrierChaos(t *testing.T) {
	seeds := []uint64{4, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		camp := chaos.RandomCampaign(seed, 8, 4000, 3)
		campaignEquiv(t, camp.Name+"/barrier", func(tc tierCase) (*bench.CampaignResult, error) {
			return bench.BarrierCampaign(camp, bench.ResilienceConfig{
				Nodes:     8,
				Checksum:  true,
				RTS:       true,
				Reliable:  true,
				Watchdog:  50_000,
				Budget:    300_000,
				Shards:    tc.shards,
				Reference: tc.reference,
				Compiled:  tc.compiled,
			}, 2)
		})
	}
}

// --- observability byte-equality -------------------------------------
//
// With the recorder attached the machine is pinned (no fusion), so this
// sweep proves the per-boundary compiled execution leaves the exported
// timeline and metrics streams byte-identical to the interpreter's.
// The digest sweeps above cover the fused regime, where no recorder
// can observe mid-window state by construction.

type obsFiles struct {
	perfetto []byte
	metrics  []byte
}

func newObsOptions(t *testing.T) (*obs.Options, func() obsFiles) {
	t.Helper()
	dir := t.TempDir()
	o := &obs.Options{
		PerfettoPath: filepath.Join(dir, "t.json"),
		MetricsPath:  filepath.Join(dir, "m.jsonl"),
		Every:        64,
	}
	read := func() obsFiles {
		pb, err := os.ReadFile(o.PerfettoPath)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(o.MetricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return obsFiles{perfetto: pb, metrics: mb}
	}
	return o, read
}

// TestEquivObservedPing compares observation bytes between interpreter
// and compiled runs over the chaos ping campaign.
func TestEquivObservedPing(t *testing.T) {
	camp := chaos.RandomCampaign(1, 8, 4000, 4)
	run := func(tc tierCase, o *obs.Options) campSum {
		res, err := bench.PingCampaign(camp, bench.ResilienceConfig{
			Nodes:     8,
			Checksum:  true,
			RTS:       true,
			Reliable:  true,
			Watchdog:  50_000,
			Budget:    300_000,
			Shards:    tc.shards,
			Reference: tc.reference,
			Compiled:  tc.compiled,
			Obs:       o,
		})
		if err != nil {
			t.Fatalf("obs/ping %+v: %v", tc, err)
		}
		return campSumOf(res)
	}
	refOpts, refRead := newObsOptions(t)
	want := run(tierCase{}, refOpts)
	ref := refRead()
	for _, tc := range matrix(t)[1:] {
		o, read := newObsOptions(t)
		if got := run(tc, o); got != want {
			t.Errorf("obs/ping %+v: summary diverged:\n  oracle:   %+v\n  compiled: %+v", tc, want, got)
		}
		files := read()
		if !bytes.Equal(files.perfetto, ref.perfetto) {
			t.Errorf("obs/ping %+v: timeline bytes differ from interpreter", tc)
		}
		if !bytes.Equal(files.metrics, ref.metrics) {
			t.Errorf("obs/ping %+v: metrics bytes differ from interpreter", tc)
		}
	}
}

// TestEquivObservedLCS covers the application path with the recorder
// attached through the Setup hook.
func TestEquivObservedLCS(t *testing.T) {
	base := lcs.Params{LenA: 32, LenB: 48, Seed: 1}
	run := func(tc tierCase, o *obs.Options) appOut {
		var eng *engine.Engine
		stopObs := func() error { return nil }
		p := base
		p.Setup = func(m *machine.Machine, _ *rt.Runtime) {
			if tc.reference {
				m.SetFastPath(false)
			}
			if tc.compiled {
				if err := compiled.Attach(m, rt.CheckAllowances()...); err != nil {
					t.Fatalf("compiled.Attach: %v", err)
				}
			}
			stopObs = o.AttachTo(m)
			if tc.shards > 1 {
				eng = engine.Attach(m, tc.shards)
			}
		}
		r, err := lcs.Run(8, p)
		eng.Stop()
		if cerr := stopObs(); cerr != nil {
			t.Fatalf("obs close: %v", cerr)
		}
		if err != nil {
			t.Fatalf("obs/lcs %+v: %v", tc, err)
		}
		return appOut{
			vals:   [2]int64{int64(r.Length), 0},
			cycles: r.Cycles,
			digest: r.M.StateDigest(),
		}
	}
	refOpts, refRead := newObsOptions(t)
	want := run(tierCase{}, refOpts)
	ref := refRead()
	for _, tc := range matrix(t)[1:] {
		o, read := newObsOptions(t)
		if got := run(tc, o); got != want {
			t.Errorf("obs/lcs %+v: summary diverged:\n  oracle:   %+v\n  compiled: %+v", tc, want, got)
		}
		files := read()
		if !bytes.Equal(files.perfetto, ref.perfetto) {
			t.Errorf("obs/lcs %+v: timeline bytes differ from interpreter", tc)
		}
		if !bytes.Equal(files.metrics, ref.metrics) {
			t.Errorf("obs/lcs %+v: metrics bytes differ from interpreter", tc)
		}
	}
}
