package compiled

// White-box tests for the pure translation helpers: the arithmetic,
// comparison, shift, presence, and operand-admissibility functions the
// closures are built from. These mirror the interpreter's semantics
// directly (same edge cases as mdp's exec switch), so a drift here is a
// semantic bug even before the differential suite catches it at the
// machine level.

import (
	"testing"

	"jmachine/internal/isa"
	"jmachine/internal/mdp"
	"jmachine/internal/word"
)

func TestPresenceOK(t *testing.T) {
	for _, tc := range []struct {
		w         word.Word
		consuming bool
		want      bool
	}{
		{word.Int(7), true, true},
		{word.Int(7), false, true},
		{word.Cfut(1), true, false},
		{word.Cfut(1), false, false},
		{word.Fut(1), true, false},
		{word.Fut(1), false, true}, // copies move futures legally
		{word.IP(42), true, true},
	} {
		if got := presenceOK(tc.w, tc.consuming); got != tc.want {
			t.Errorf("presenceOK(%v, consuming=%v) = %v, want %v", tc.w, tc.consuming, got, tc.want)
		}
	}
}

func TestALUEval(t *testing.T) {
	tm0 := mdp.DefaultTiming()
	tm := &tm0
	for _, tc := range []struct {
		op       isa.Op
		x, y     int32
		v, extra int32
		ok       bool
	}{
		{isa.ADD, 3, 4, 7, 0, true},
		{isa.SUB, 3, 4, -1, 0, true},
		{isa.MUL, 3, 4, 12, tm.Mul, true},
		{isa.DIV, 12, 4, 3, tm.DivMod, true},
		{isa.DIV, 12, 0, 0, 0, false},
		{isa.MOD, 14, 4, 2, tm.DivMod, true},
		{isa.MOD, 14, 0, 0, 0, false},
		{isa.AND, 0b1100, 0b1010, 0b1000, 0, true},
		{isa.OR, 0b1100, 0b1010, 0b1110, 0, true},
		{isa.XOR, 0b1100, 0b1010, 0b0110, 0, true},
		{isa.LSH, 1, 4, 16, 0, true},
		{isa.LSH, 16, -4, 1, 0, true},
		{isa.ASH, -16, -2, -4, 0, true},
	} {
		v, extra, ok := aluEval(tc.op, tc.x, tc.y, tm)
		if v != tc.v || extra != tc.extra || ok != tc.ok {
			t.Errorf("aluEval(%v, %d, %d) = (%d, %d, %v), want (%d, %d, %v)",
				tc.op, tc.x, tc.y, v, extra, ok, tc.v, tc.extra, tc.ok)
		}
	}
}

func TestCmpEval(t *testing.T) {
	for _, tc := range []struct {
		op   isa.Op
		x, y int32
		want bool
	}{
		{isa.EQ, 3, 3, true},
		{isa.EQ, 3, 4, false},
		{isa.NE, 3, 4, true},
		{isa.LT, 3, 4, true},
		{isa.LT, 4, 4, false},
		{isa.LE, 4, 4, true},
		{isa.GT, 5, 4, true},
		{isa.GE, 4, 4, true},
		{isa.GE, 3, 4, false},
	} {
		if got := cmpEval(tc.op, tc.x, tc.y); got != tc.want {
			t.Errorf("cmpEval(%v, %d, %d) = %v, want %v", tc.op, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestShifts(t *testing.T) {
	for _, tc := range []struct {
		name        string
		fn          func(x, by int32) int32
		x, by, want int32
	}{
		{"L pos", shiftL, 1, 4, 16},
		{"L neg", shiftL, -1, 1, -2},
		{"L right", shiftL, 16, -4, 1},
		{"L logical right", shiftL, -1, -28, 15},
		{"L over", shiftL, 99, 32, 0},
		{"L under", shiftL, 99, -32, 0},
		{"A pos", shiftA, -3, 2, -12},
		{"A right", shiftA, -16, -2, -4}, // arithmetic: sign extends
		{"A over", shiftA, 99, 32, 0},
		{"A under neg", shiftA, -99, -32, -1},
		{"A under pos", shiftA, 99, -32, 0},
	} {
		if got := tc.fn(tc.x, tc.by); got != tc.want {
			t.Errorf("shift %s: (%d, %d) = %d, want %d", tc.name, tc.x, tc.by, got, tc.want)
		}
	}
}

func TestMemOperandOK(t *testing.T) {
	for _, tc := range []struct {
		b    isa.Operand
		want bool
	}{
		{isa.Operand{Mode: isa.ModeImm, Imm: 3}, true}, // non-memory: vacuously fine
		{isa.Operand{Mode: isa.ModeMem, Reg: isa.A0, Imm: 1}, true},
		{isa.Operand{Mode: isa.ModeMem, Reg: isa.NNR}, false},
		{isa.Operand{Mode: isa.ModeMemReg, Reg: isa.A0, Idx: isa.R1}, true},
		{isa.Operand{Mode: isa.ModeMemReg, Reg: isa.A0, Idx: isa.QLEN}, false},
	} {
		if got := memOperandOK(tc.b); got != tc.want {
			t.Errorf("memOperandOK(%+v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}
