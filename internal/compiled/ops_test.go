package compiled_test

// Instruction-zoo differential test: a looping send-free program that
// exercises every ALU op in every operand mode the translator
// specializes (immediate, register, memory, indexed memory), the
// comparison family, NOT/NEG, and special-register reads, stepped in
// lockstep against the interpreter. The zoo complements the workload
// equivalence suite: workloads concentrate on a few hot ops, while the
// zoo forces one of each through the compiled closures.

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/word"
)

func buildOpZooProgram() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 256). // scratch base (TagInt addressing)
		MoveI(isa.R3, 0).   // loop counter
		Label("loop").
		// Immediate forms, including the multi-cycle ops.
		MoveI(isa.R0, 1000).
		Add(isa.R0, asm.Imm(7)).
		Mul(isa.R0, asm.Imm(3)).
		Div(isa.R0, asm.Imm(5)).
		Mod(isa.R0, asm.Imm(97)).
		Xor(isa.R0, asm.Imm(0x55)).
		Or(isa.R0, asm.Imm(0x100)).
		Lsh(isa.R0, asm.Imm(2)).
		Ash(isa.R0, asm.Imm(-1)).
		// Register forms.
		MoveI(isa.R1, 9).
		Mul(isa.R0, asm.R(isa.R1)).
		Div(isa.R0, asm.R(isa.R1)).
		Mod(isa.R0, asm.R(isa.R1)).
		Xor(isa.R0, asm.R(isa.R1)).
		Lsh(isa.R0, asm.R(isa.R1)).
		Not(isa.R0).
		Neg(isa.R0).
		// Memory forms against the seeded scratch words, plus a store.
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Add(isa.R0, asm.Mem(isa.A0, 1)).
		Mul(isa.R0, asm.Mem(isa.A0, 2)).
		Div(isa.R0, asm.Mem(isa.A0, 2)).
		Mod(isa.R0, asm.Mem(isa.A0, 3)).
		Xor(isa.R0, asm.Mem(isa.A0, 1)).
		Or(isa.R0, asm.Mem(isa.A0, 3)).
		Lsh(isa.R0, asm.Mem(isa.A0, 4)).
		Ash(isa.R0, asm.Mem(isa.A0, 5)).
		// Indexed memory (register offset).
		MoveI(isa.R2, 3).
		Add(isa.R0, asm.MemR(isa.A0, isa.R2)).
		Sub(isa.R0, asm.MemR(isa.A0, isa.R2)).
		// Comparison family: immediate, register, and memory operands.
		Eq(isa.R0, asm.Imm(12)).
		Ne(isa.R0, asm.R(isa.R1)).
		Lt(isa.R0, asm.Imm(5)).
		Le(isa.R0, asm.R(isa.R1)).
		Gt(isa.R0, asm.Mem(isa.A0, 1)).
		Ge(isa.R0, asm.Imm(0)).
		// Special-register reads through MOVE.
		Move(isa.R0, asm.R(isa.CYC)).
		Move(isa.R1, asm.R(isa.PRI)).
		Move(isa.R0, asm.R(isa.QLEN)).
		Move(isa.R1, asm.R(isa.NNR)).
		St(isa.R1, asm.Mem(isa.A0, 6)).
		// Loop forever; the counter makes successive iterations differ.
		Add(isa.R3, asm.Imm(1)).
		St(isa.R3, asm.Mem(isa.A0, 7)).
		Bt(isa.R3, "loop").
		Halt()
	return b.MustAssemble()
}

func seedOpZoo(m *machine.Machine) {
	for id, n := range m.Nodes {
		for i := int32(0); i < 8; i++ {
			n.Mem.Write(256+i, word.Int(int32(id)+i+2))
		}
	}
	entry := m.Node(0).Prog.Entry("main")
	for _, n := range m.Nodes {
		n.StartBackground(entry)
	}
}

// TestOpZooEquiv locks the zoo loop against the interpreter per-cycle
// (Step, fusion pinned) and per-batch (StepN, fusion active — the
// program is send-free, so the windows run under the no-send
// certificate).
func TestOpZooEquiv(t *testing.T) {
	itp, cpl := buildPair(t, machine.GridForNodes(2), buildOpZooProgram(), seedOpZoo)
	stepLock(t, itp, cpl, 300)
	batchLock(t, itp, cpl, 3000)
	if cpl.FusedInstructions() == 0 {
		t.Error("no instructions fused; the zoo never reached the compiled tier's fusion path")
	}
}
