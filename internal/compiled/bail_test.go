package compiled_test

// Bail-out boundary tests: one case per reason the compiled tier hands
// a boundary back to the interpreter — faults (presence, divide,
// translation miss), SUSPEND, an open SEND, dispatch, freeze/kill, and
// checkpoint capture at a SnapshotCycle. Each case drives an
// interpreter machine and a compiled machine through the event twice:
// cycle-by-cycle with Step (fusion pinned off — the per-boundary
// contract, digests compared at EVERY cycle including the event
// cycle itself) and in StepN batches (fusion active, digests compared
// at each batch end — the only cycles at which a fused window has
// provably collapsed to the reference representation). The file ends
// with the vacuity guards: tests proving fusion actually engages under
// both admission rules, so the equivalence suite is not silently
// passing on the never-fused path.

import (
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/ckpt"
	"jmachine/internal/compiled"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/word"
)

// buildPair constructs the interpreter reference and the
// compiled-tier machine from the same config and program, applying
// setup (memory seeding, thread starts, hooks, injections) to both.
func buildPair(t *testing.T, cfg machine.Config, p *asm.Program, setup func(*machine.Machine), allow ...asm.Allowance) (itp, cpl *machine.Machine) {
	t.Helper()
	itp = machine.MustNew(cfg, p)
	cpl = machine.MustNew(cfg, p)
	if err := compiled.Attach(cpl, allow...); err != nil {
		t.Fatalf("compiled.Attach: %v", err)
	}
	if setup != nil {
		setup(itp)
		setup(cpl)
	}
	return itp, cpl
}

// compare fails the test when the two machines disagree on cycle,
// state digest, or surfaced fatal error.
func compare(t *testing.T, itp, cpl *machine.Machine, when string) {
	t.Helper()
	if ic, cc := itp.Cycle(), cpl.Cycle(); ic != cc {
		t.Fatalf("%s: cycle %d (interpreter) != %d (compiled)", when, ic, cc)
	}
	if id, cd := itp.StateDigest(), cpl.StateDigest(); id != cd {
		t.Fatalf("%s (cycle %d): digest %#x (interpreter) != %#x (compiled)",
			when, itp.Cycle(), id, cd)
	}
	ie, ce := itp.FatalErr(), cpl.FatalErr()
	switch {
	case (ie == nil) != (ce == nil):
		t.Fatalf("%s: fatal mismatch: interpreter %v, compiled %v", when, ie, ce)
	case ie != nil && ie.Error() != ce.Error():
		t.Fatalf("%s: fatal text mismatch: %q != %q", when, ie, ce)
	}
}

// stepLock advances both machines one public Step at a time. Step pins
// the fusion limit to the next cycle, so the compiled machine is exact
// per boundary and the digests must agree at every single cycle —
// before, during, and after the bail event.
func stepLock(t *testing.T, itp, cpl *machine.Machine, cycles int64) {
	t.Helper()
	for i := int64(0); i < cycles; i++ {
		itp.Step()
		cpl.Step()
		compare(t, itp, cpl, "stepLock")
	}
}

// batchLock advances both machines in StepN batches of varied sizes.
// Inside a batch the compiled machine may run ahead within fused
// windows; every StepN return is a legal observation point, so the
// digests must agree there.
func batchLock(t *testing.T, itp, cpl *machine.Machine, total int64) {
	t.Helper()
	sizes := []int64{1, 3, 8, 64}
	for done, i := int64(0), 0; done < total; i++ {
		n := sizes[i%len(sizes)]
		if done+n > total {
			n = total - done
		}
		itp.StepN(n)
		cpl.StepN(n)
		done += n
		compare(t, itp, cpl, "batchLock")
	}
}

type bailCase struct {
	name      string
	cfg       machine.Config
	prog      func() *asm.Program
	setup     func(*machine.Machine)
	cycles    int64
	wantFatal bool
	// allow suppresses verifier findings a case provokes deliberately
	// (the gate itself is tested by TestAttachGatesOnVerifier).
	allow []asm.Allowance
}

// faultSchedule is a deterministic freeze/unfreeze/kill timeline
// attached identically to both machines, mirroring what the chaos
// injector does during campaigns.
type faultSchedule struct {
	m                      *machine.Machine
	freeze, unfreeze, kill int64
	next                   int
}

func (f *faultSchedule) events() []int64 { return []int64{f.freeze, f.unfreeze, f.kill} }

func (f *faultSchedule) tick(cycle int64) {
	ev := f.events()
	for f.next < len(ev) && ev[f.next] <= cycle {
		switch f.next {
		case 0:
			f.m.Nodes[0].SetFrozen(true)
		case 1:
			f.m.Nodes[0].SetFrozen(false)
		case 2:
			f.m.Nodes[0].Kill()
		}
		f.next++
	}
}

func (f *faultSchedule) horizon(now int64) int64 {
	ev := f.events()
	if f.next < len(ev) {
		return ev[f.next]
	}
	return machine.NoEvent
}

// countdownProg busy-loops a register down from n — enough straight
// line and branching to keep a node executing across fault events.
func countdownProg(n int32) *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").MoveI(isa.R0, n)
	b.Label("loop").
		Sub(isa.R0, asm.Imm(1)).
		Bt(isa.R0, "loop").
		Halt()
	return b.MustAssemble()
}

// accProg is the inject-handler workload: add the payload word into an
// accumulator at address 64, then suspend.
func accProg() *asm.Program {
	b := asm.NewBuilder()
	b.Label("acc").
		MoveI(isa.A0, 64).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A0, 0)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Suspend()
	return b.MustAssemble()
}

func bailCases() []bailCase {
	return []bailCase{
		{
			// A consuming load hits a cfut with no fault handler: the
			// closure must bail without touching the register, then the
			// interpreter raises the (fatal) presence fault.
			name: "fault-presence",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.A0, 64).
					Move(isa.R0, asm.Mem(isa.A0, 0)).
					Halt()
				return b.MustAssemble()
			},
			setup: func(m *machine.Machine) {
				m.Nodes[0].Mem.FillCfut(64, 1)
				m.Nodes[0].StartBackground(0)
			},
			cycles:    40,
			wantFatal: true,
		},
		{
			// Divide by zero: the closure reads both operands, sees the
			// zero, and bails before writing anything.
			name: "fault-div-zero",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.R0, 7).
					MoveI(isa.R1, 0).
					Div(isa.R0, asm.R(isa.R1)).
					Halt()
				return b.MustAssemble()
			},
			setup:     func(m *machine.Machine) { m.Nodes[0].StartBackground(0) },
			cycles:    40,
			wantFatal: true,
		},
		{
			// XLATE with no binding: the compiled tier probes first
			// (pure), bails on the miss, and the interpreter's Lookup
			// takes the single miss count and raises the fault.
			name: "fault-xlate-miss",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.R0, 5).
					Xlate(isa.R1, asm.R(isa.R0)).
					Halt()
				return b.MustAssemble()
			},
			setup:     func(m *machine.Machine) { m.Nodes[0].StartBackground(0) },
			cycles:    40,
			wantFatal: true,
		},
		{
			// SUSPEND ends each handler activation; with three queued
			// messages the node suspends and redispatches repeatedly.
			name:  "suspend-dispatch",
			cfg:   machine.GridForNodes(4),
			prog:  accProg,
			setup: injectMessages(0, 3),
			// Long enough to drain all three activations and go idle.
			cycles: 120,
		},
		{
			// Priority-1 arrivals preempt the running priority-0
			// handler: dispatch and level switching stay interpreted
			// while the handler bodies run compiled.
			name: "dispatch-priorities",
			cfg:  machine.GridForNodes(4),
			prog: accProg,
			setup: func(m *machine.Machine) {
				p := accProg()
				hdr := word.MsgHeader(p.Entry("acc"), 2)
				for i := 0; i < 2; i++ {
					if !m.Inject(1, 0, []word.Word{hdr, word.Int(5)}) {
						panic("inject refused")
					}
					if !m.Inject(1, 1, []word.Word{hdr, word.Int(9)}) {
						panic("inject refused")
					}
				}
			},
			cycles: 160,
		},
		{
			// An open SEND sequence: every SEND-family instruction
			// bails, the message crosses the mesh (network no longer
			// quiet), and the sink node dispatches and suspends.
			name: "open-send",
			cfg:  machine.Grid(2, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.A0, 64).
					Move(isa.R1, asm.Mem(isa.A0, 0)).
					MoveHdr(isa.R2, "sink", 2).
					MoveI(isa.R3, 9).
					SendMsg(asm.R(isa.R1), asm.R(isa.R2), asm.R(isa.R3)).
					MoveI(isa.R0, 21).
					Add(isa.R0, asm.Imm(21)).
					Halt()
				b.Label("sink").
					Move(isa.R0, asm.Mem(isa.A3, 1)).
					Suspend()
				return b.MustAssemble()
			},
			setup: func(m *machine.Machine) {
				if err := m.Nodes[0].Mem.Write(64, m.Net.NodeWord(1)); err != nil {
					panic(err)
				}
				m.Nodes[0].StartBackground(0)
			},
			cycles: 120,
		},
		{
			// Special-register reads (NNR, QLEN, PRI, ZERO, CYC), a
			// discarded special write, the shifter's negative and
			// overlong distances, an IP-tagged address register, and the
			// presence-tag family over a fut — ending on the consuming
			// fut read, which faults.
			name: "specials-shifts-fut",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.R0, 3).
					Move(isa.R1, asm.R(isa.NNR)).
					Move(isa.R2, asm.R(isa.QLEN)).
					Add(isa.R0, asm.R(isa.PRI)).
					Add(isa.R0, asm.R(isa.ZERO)).
					Move(isa.R2, asm.R(isa.CYC)).
					Move(isa.CYC, asm.R(isa.R0)).
					MoveI(isa.A2, 64).
					Wtag(isa.A2, asm.Imm(int32(word.TagIP))).
					Move(isa.R2, asm.Mem(isa.A2, 1)).
					MoveI(isa.R0, -6).
					Lsh(isa.R0, asm.Imm(3)).
					Lsh(isa.R0, asm.Imm(-2)).
					Lsh(isa.R0, asm.Imm(40)).
					MoveI(isa.R0, -64).
					Ash(isa.R0, asm.Imm(-3)).
					Ash(isa.R0, asm.Imm(2)).
					Ash(isa.R0, asm.Imm(-35)).
					MoveI(isa.R1, 9).
					Wtag(isa.R1, asm.Imm(int32(word.TagFut))).
					Rtag(isa.R2, asm.R(isa.R1)).
					Iscf(isa.R2, asm.R(isa.R1)).
					Move(isa.R2, asm.R(isa.R1)). // non-consuming: a fut copies legally
					Add(isa.R0, asm.R(isa.R1)).  // consuming: faults on the fut
					Halt()
				return b.MustAssemble()
			},
			setup:     func(m *machine.Machine) { m.Nodes[0].StartBackground(0) },
			cycles:    60,
			wantFatal: true,
			allow: []asm.Allowance{{
				Code: "ASM003", Label: "main",
				Rationale: "deliberate guaranteed presence fault exercising the consuming-read bail",
			}},
		},
		{
			// An address shifted past the memory size: the closure's
			// bounds check bails, the interpreter raises the fault.
			name: "fault-mem-bounds",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.A0, 9000).
					Lsh(isa.A0, asm.Imm(4)).
					Move(isa.R0, asm.Mem(isa.A0, 0)).
					Halt()
				return b.MustAssemble()
			},
			setup:     func(m *machine.Machine) { m.Nodes[0].StartBackground(0) },
			cycles:    40,
			wantFatal: true,
		},
		{
			// RGN writes are the one special-register destination that
			// bails (the interpreter owns statistics-region switching);
			// the cycles between the two writes attribute differently
			// and the digests must still agree.
			name: "region-write",
			cfg:  machine.Grid(1, 1, 1),
			prog: func() *asm.Program {
				b := asm.NewBuilder()
				b.Label("main").
					MoveI(isa.R0, 1).
					Move(isa.RGN, asm.Imm(1)).
					Add(isa.R0, asm.Imm(2)).
					Mul(isa.R0, asm.Imm(3)).
					Move(isa.RGN, asm.Imm(0)).
					Add(isa.R0, asm.Imm(4)).
					Halt()
				return b.MustAssemble()
			},
			setup:  func(m *machine.Machine) { m.Nodes[0].StartBackground(0) },
			cycles: 30,
		},
		{
			// Freeze, thaw, then kill node 0 mid-loop from a cycle hook
			// with a declared horizon — fusion stays legal between
			// events, and the externally-driven mutations land on
			// identical cycles in both machines.
			name: "freeze-kill",
			cfg:  machine.Grid(2, 1, 1),
			prog: func() *asm.Program { return countdownProg(300) },
			setup: func(m *machine.Machine) {
				m.Nodes[0].StartBackground(0)
				f := &faultSchedule{m: m, freeze: 40, unfreeze: 80, kill: 120}
				m.AddCycleHook(f.tick, f.horizon) //jm:horizon next scheduled fault event bounds tick's next effect
			},
			cycles: 200,
		},
	}
}

// injectMessages returns a setup injecting n accumulator messages into
// the given node at priority 0 and starting nothing else.
func injectMessages(node, n int) func(*machine.Machine) {
	return func(m *machine.Machine) {
		p := accProg()
		msg := []word.Word{word.MsgHeader(p.Entry("acc"), 2), word.Int(5)}
		for i := 0; i < n; i++ {
			if !m.Inject(node, 0, msg) {
				panic("inject refused")
			}
		}
	}
}

func TestBailBoundaries(t *testing.T) {
	for _, tc := range bailCases() {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog()
			t.Run("per-cycle", func(t *testing.T) {
				itp, cpl := buildPair(t, tc.cfg, p, tc.setup, tc.allow...)
				stepLock(t, itp, cpl, tc.cycles)
				if (itp.FatalErr() != nil) != tc.wantFatal {
					t.Errorf("wantFatal=%v, got %v", tc.wantFatal, itp.FatalErr())
				}
			})
			t.Run("fused-batches", func(t *testing.T) {
				itp, cpl := buildPair(t, tc.cfg, p, tc.setup, tc.allow...)
				batchLock(t, itp, cpl, tc.cycles)
				if (itp.FatalErr() != nil) != tc.wantFatal {
					t.Errorf("wantFatal=%v, got %v", tc.wantFatal, itp.FatalErr())
				}
			})
		})
	}
}

// TestBailResumeCycleExact pins the interpreter-resume contract to
// absolute cycle numbers: the compiled machine must reach quiescence
// (every suspend, dispatch, and send retired) on exactly the cycle the
// reference interpreter does.
func TestBailResumeCycleExact(t *testing.T) {
	p := accProg()
	itp, cpl := buildPair(t, machine.GridForNodes(4), p, injectMessages(2, 3))
	if err := itp.RunQuiescent(10_000); err != nil {
		t.Fatal(err)
	}
	if err := cpl.RunQuiescent(10_000); err != nil {
		t.Fatal(err)
	}
	compare(t, itp, cpl, "quiescent")
	w, err := cpl.Nodes[2].Mem.Read(64)
	if err != nil {
		t.Fatal(err)
	}
	if w.Data() != 15 {
		t.Errorf("accumulator = %d, want 15", w.Data())
	}
}

// TestBailCheckpointCapture runs both machines with the periodic
// checkpoint writer attached (the SnapshotCycle boundary the issue
// names): captures must happen on identical cycles and produce
// byte-identical checkpoint files, proving fused windows always
// collapse before the writer's hook observes the machine.
func TestBailCheckpointCapture(t *testing.T) {
	dir := t.TempDir()
	p := accProg()
	paths := map[*machine.Machine]string{}
	var writers []*ckpt.Checkpointer
	itp, cpl := buildPair(t, machine.GridForNodes(4), p, injectMessages(1, 3))
	for i, m := range []*machine.Machine{itp, cpl} {
		path := filepath.Join(dir, []string{"itp.ckpt", "cpl.ckpt"}[i])
		paths[m] = path
		writers = append(writers, ckpt.AttachWriter(m, path, 32))
	}
	itp.StepN(200)
	cpl.StepN(200)
	compare(t, itp, cpl, "after run")
	if w0, w1 := writers[0].Writes(), writers[1].Writes(); w0 != w1 || w0 == 0 {
		t.Fatalf("checkpoint writes: interpreter %d, compiled %d", w0, w1)
	}
	for _, w := range writers {
		if w.Err() != nil {
			t.Fatal(w.Err())
		}
	}
	a, err := os.ReadFile(paths[itp])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[cpl])
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("checkpoint files differ: %d vs %d bytes", len(a), len(b))
	}
}

// straightlineProg: one register initialization followed by adds —
// a pure straight-line block for the fusion-engagement guards.
func straightlineProg(adds int) *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").MoveI(isa.R0, 0)
	for i := 0; i < adds; i++ {
		b.Add(isa.R0, asm.Imm(1))
	}
	b.Halt()
	return b.MustAssemble()
}

// TestFusionEngagesQuiet proves the quiet rule actually fuses: a
// background thread on an idle network, driven through StepN (the run
// loops' path — the public Step pins fusion off), must retire several
// instructions as fused window members, while the digest still matches
// the interpreter at the StepN boundary.
func TestFusionEngagesQuiet(t *testing.T) {
	p := straightlineProg(24)
	itp, cpl := buildPair(t, machine.Grid(1, 1, 1), p, func(m *machine.Machine) {
		m.Nodes[0].StartBackground(0)
	})
	itp.StepN(40)
	cpl.StepN(40)
	compare(t, itp, cpl, "after StepN")
	if got := cpl.FusedInstructions(); got < 8 {
		t.Errorf("quiet-rule fusion retired %d instructions, want >= 8 — the equivalence suite would be vacuous", got)
	}
	if itp.FusedInstructions() != 0 {
		t.Errorf("interpreter machine reports fused instructions")
	}
}

// TestFusionEngagesP1 proves the P1 rule fuses deeply: a priority-1
// handler owns the scheduler at inner boundaries, so its straight-line
// body may fuse to the run cap rather than the 4-cycle quiet window.
func TestFusionEngagesP1(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("work").Move(isa.R0, asm.Mem(isa.A3, 1))
	for i := 0; i < 14; i++ {
		b.Add(isa.R0, asm.Imm(1))
	}
	b.Suspend()
	p := b.MustAssemble()
	itp, cpl := buildPair(t, machine.Grid(1, 1, 1), p, func(m *machine.Machine) {
		msg := []word.Word{word.MsgHeader(p.Entry("work"), 2), word.Int(1)}
		if !m.Inject(0, 1, msg) {
			t.Fatal("inject refused")
		}
	})
	itp.StepN(100)
	cpl.StepN(100)
	compare(t, itp, cpl, "after StepN")
	if got := cpl.FusedInstructions(); got < 10 {
		t.Errorf("P1-rule fusion retired %d instructions, want >= 10", got)
	}
}

// TestAttachGatesOnVerifier: Attach must refuse a program the static
// verifier rejects — the machine then stays interpreter-only.
func TestAttachGatesOnVerifier(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main").
		Add(isa.R0, asm.Imm(1)). // read before def: ASM001
		Halt()
	m := machine.MustNew(machine.Grid(1, 1, 1), b.MustAssemble())
	if err := compiled.Attach(m); err == nil {
		t.Fatal("verifier-rejected program attached")
	}
	if m.CompiledActive() {
		t.Error("compiled tier active after failed Attach")
	}
}

// TestStepNeverFuses documents the pinned-limit contract: the public
// single-cycle Step grants no fusion window, so compiled execution
// stays exact per boundary (what stepLock relies on).
func TestStepNeverFuses(t *testing.T) {
	p := straightlineProg(24)
	_, cpl := buildPair(t, machine.Grid(1, 1, 1), p, func(m *machine.Machine) {
		m.Nodes[0].StartBackground(0)
	})
	for i := 0; i < 40; i++ {
		cpl.Step()
	}
	if got := cpl.FusedInstructions(); got != 0 {
		t.Errorf("Step fused %d instructions, want 0", got)
	}
}
