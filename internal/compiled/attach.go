package compiled

import (
	"fmt"

	"jmachine/internal/asm"
	"jmachine/internal/machine"
)

// Attach compiles the program every node of m runs and installs the
// result as the machine's compiled tier. The allowances are forwarded
// to the static-verifier gate. Attaching never changes results — the
// equivalence suite proves digests and traces byte-identical with the
// tier on or off — so callers treat it exactly like the parallel
// engine: a wall-clock knob.
func Attach(m *machine.Machine, allow ...asm.Allowance) error {
	if m.NumNodes() == 0 {
		return fmt.Errorf("compiled: machine has no nodes")
	}
	cp, err := Compile(m.Node(0).Prog, allow...)
	if err != nil {
		return err
	}
	m.SetCompiled(cp)
	return nil
}
