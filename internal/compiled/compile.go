// Package compiled is the ahead-of-time execution tier for MDP handler
// programs: it translates an assembled, statically verified program
// (asm.Translate, docs/COMPILED.md) into one specialized Go closure per
// instruction and installs the result on a machine's nodes. The
// interpreter (internal/mdp) remains the semantic oracle: every closure
// either executes its instruction byte-identically — same register,
// memory, translation-table, statistics, and timing effects — or bails
// having mutated nothing, handing the boundary back to the interpreter.
//
// The bail set is exactly the operations whose effects reach beyond the
// executing thread: the SEND family (network injection, back-pressure
// retries, trace events), SUSPEND/HALT/TRAP, writes to the RGN
// statistics register, every condition the interpreter would turn into
// a fault (presence tags, bounds, translation misses, division by
// zero), and reads of delivery-queue state at fused offsets where that
// state could lag (QLEN and message-relative operands when the network
// is not certified quiet). Dispatch, fault service, freeze/kill, and
// checkpoint capture live outside the instruction boundary entirely and
// are untouched.
package compiled

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/mdp"
	"jmachine/internal/mem"
	"jmachine/internal/stats"
	"jmachine/internal/word"
)

// Compile verifies and translates a program into a compiled image. The
// allowances are the asm.Check suppressions the program needs (e.g.
// rt.CheckAllowances for anything linking the runtime library); a
// program the verifier rejects is not translated. Instructions the
// tier declines — bail-set members and unreachable code — get a nil
// slot, which the node treats as "always interpret".
func Compile(p *asm.Program, allow ...asm.Allowance) (*mdp.CompiledProgram, error) {
	tr, err := asm.Translate(p, allow...)
	if err != nil {
		return nil, err
	}
	fns := make([]mdp.InstrFn, len(p.Instrs))
	for _, b := range tr.Blocks {
		if !tr.Reachable[b.Start] {
			continue // undefined behaviour stays on the interpreter
		}
		for i := b.Start; i < b.End; i++ {
			fns[i] = compileInstr(p.Instrs[i], i)
		}
	}
	// The send-distance certificate covers every instruction, reachable
	// or not: it licenses fusion windows past the quiet rule's fixed
	// lookahead, so it must hold for anything the machine could
	// conceivably execute (effects.go computes it over the full stream).
	return &mdp.CompiledProgram{Fns: fns, SendDist: tr.Certs.SendDist}, nil
}

// presenceOK reports whether a word passes the presence check: cfut
// always faults, fut faults only for consuming reads (mirrors
// mdp.presence, which builds the fault the interpreter will re-derive
// after the bail).
func presenceOK(w word.Word, consuming bool) bool {
	switch w.Tag() {
	case word.TagCfut:
		return false
	case word.TagFut:
		return !consuming
	}
	return true
}

// readSpecial reads a shared special register. QLEN is the one special
// whose value tracks network deliveries, so at a fused offset it is
// only admissible under the quiet certification; everything else is
// constant across a fused window (PRI because dispatch bails, RGN
// because RGN writes bail, CYC by adding the offset).
func readSpecial(n *mdp.Node, r isa.Reg, off int32, quiet bool) (word.Word, bool) {
	switch r {
	case isa.NNR:
		return n.NNR(), true
	case isa.QLEN:
		if off > 0 && !quiet {
			return 0, false
		}
		return word.Int(int32(n.Queues[0].Used())), true
	case isa.PRI:
		switch n.Level() {
		case mdp.LvlP1:
			return word.Int(1), true
		case mdp.LvlBG:
			return word.Int(2), true
		default:
			return word.Int(0), true
		}
	case isa.CYC:
		return word.Int(int32(n.Cycle() + int64(off))), true
	case isa.RGN:
		return word.Int(int32(n.RegionCat())), true
	default: // ZERO and reserved codes
		return word.Int(0), true
	}
}

// memRef mirrors the interpreter's resolved memory operand.
type memRef struct {
	queue    bool
	pri      int
	addr     int32
	internal bool
}

// resolveMem resolves a memory operand exactly as the interpreter does,
// with two extra bail conditions: any outcome the interpreter would
// fault on, and message-relative references at fused offsets without
// the quiet certification (the head message's bounds and words track
// deliveries). The operand's registers are < 8 — compileInstr declines
// anything else.
func resolveMem(n *mdp.Node, ctx *mdp.Context, op isa.Operand, off int32, quiet bool) (memRef, bool) {
	o := op.Imm
	if op.Mode == isa.ModeMemReg {
		idx := ctx.Regs[op.Idx]
		if !presenceOK(idx, true) {
			return memRef{}, false
		}
		o = idx.Data()
	}
	return resolveMemOff(n, ctx.Regs[op.Reg], o, off, quiet)
}

// resolveMemOff is resolveMem with the offset already read: the common
// immediate-offset form calls it directly with scalar arguments, which
// profiles measurably cheaper than passing the operand struct.
func resolveMemOff(n *mdp.Node, base word.Word, o, off int32, quiet bool) (memRef, bool) {
	switch base.Tag() {
	case word.TagMsg:
		if off > 0 && !quiet {
			return memRef{}, false
		}
		pri := int(base.Data() & 1)
		q := n.Queues[pri]
		if !q.HeadReady() || o < 0 || int(o) >= q.HeadLen() {
			return memRef{}, false // FaultBounds on the interpreter
		}
		return memRef{queue: true, pri: pri, addr: o}, true
	case word.TagAddr:
		// mem.SegAddr's bounds check, without its error construction
		// (which keeps this function out of the inliner's budget).
		if o < 0 || int(o) >= mem.SegLen(base) {
			return memRef{}, false
		}
		addr := mem.SegBase(base) + o
		return memRef{addr: addr, internal: n.Mem.IsInternal(addr)}, true
	case word.TagInt, word.TagIP:
		addr := base.Data() + o
		if addr < 0 || int(addr) >= n.Mem.Size() {
			return memRef{}, false
		}
		return memRef{addr: addr, internal: n.Mem.IsInternal(addr)}, true
	default: // cfut, fut, and untyped bases all fault
		return memRef{}, false
	}
}

func loadCost(n *mdp.Node, ref memRef) int32 {
	t := &n.Cfg.Timing
	switch {
	case ref.queue:
		return t.QueueLoad
	case ref.internal:
		return t.ImemLoad
	default:
		return t.EmemLoad
	}
}

// operandFn is a specialized reader for one instruction's B operand:
// value, extra access cycles, ok=false to bail.
type operandFn func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (word.Word, int32, bool)

// compileOperand specializes the interpreter's readOperand for one
// operand at translation time: immediates become captured constants,
// direct register reads skip the mode switch, memory modes keep the
// full resolution path.
func compileOperand(b isa.Operand, consuming, raw bool) operandFn {
	switch b.Mode {
	case isa.ModeImm:
		w := word.Int(b.Imm)
		return func(*mdp.Node, *mdp.Context, int32, bool) (word.Word, int32, bool) {
			return w, 0, true
		}
	case isa.ModeReg:
		r := b.Reg
		if r < 8 {
			if raw {
				return func(_ *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (word.Word, int32, bool) {
					return ctx.Regs[r], 0, true
				}
			}
			return func(_ *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (word.Word, int32, bool) {
				w := ctx.Regs[r]
				if !presenceOK(w, consuming) {
					return 0, 0, false
				}
				return w, 0, true
			}
		}
		// Specials always read as plain tagged values, never presence
		// faults; QLEN's fused-offset rule lives in readSpecial.
		return func(n *mdp.Node, _ *mdp.Context, off int32, quiet bool) (word.Word, int32, bool) {
			w, ok := readSpecial(n, r, off, quiet)
			return w, 0, ok
		}
	default:
		op := b
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (word.Word, int32, bool) {
			ref, ok := resolveMem(n, ctx, op, off, quiet)
			if !ok {
				return 0, 0, false
			}
			var w word.Word
			if ref.queue {
				w = n.Queues[ref.pri].WordAt(int(ref.addr))
			} else {
				w, _ = n.Mem.Read(ref.addr) // bounds already checked
			}
			if !raw && !presenceOK(w, consuming) {
				return 0, 0, false
			}
			return w, loadCost(n, ref), true
		}
	}
}

// regReadFn reads one instruction's A register (value, ok=false bails).
type regReadFn func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (word.Word, bool)

func compileRegRead(r isa.Reg, consuming, raw bool) regReadFn {
	if r < 8 {
		if raw {
			return func(_ *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (word.Word, bool) {
				return ctx.Regs[r], true
			}
		}
		return func(_ *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (word.Word, bool) {
			w := ctx.Regs[r]
			if !presenceOK(w, consuming) {
				return 0, false
			}
			return w, true
		}
	}
	return func(n *mdp.Node, _ *mdp.Context, off int32, quiet bool) (word.Word, bool) {
		return readSpecial(n, r, off, quiet)
	}
}

// regWriteFn stores an instruction result; nil means the destination is
// not compilable (RGN, whose write redirects statistics attribution —
// a bail-set member so the interpreter stays the only writer).
type regWriteFn func(ctx *mdp.Context, w word.Word)

func compileRegWrite(r isa.Reg) regWriteFn {
	if r < 8 {
		return func(ctx *mdp.Context, w word.Word) { ctx.Regs[r] = w }
	}
	if r == isa.RGN {
		return nil
	}
	// Writes to the remaining specials are discarded, as in writeReg.
	return func(*mdp.Context, word.Word) {}
}

// memOperandOK reports whether a memory operand's registers are within
// the architectural file. The interpreter indexes ctx.Regs with them
// unchecked, so an out-of-range register must stay on the interpreter
// to reproduce its behaviour exactly.
func memOperandOK(b isa.Operand) bool {
	if !b.IsMem() {
		return true
	}
	if b.Reg >= 8 {
		return false
	}
	return b.Mode != isa.ModeMemReg || b.Idx < 8
}

// aluEval computes one ALU result plus its extra cycle cost; ok=false
// for division by zero (FaultBadInstr on the interpreter).
func aluEval(op isa.Op, x, y int32, t *mdp.Timing) (v, extra int32, ok bool) {
	switch op {
	case isa.ADD:
		v = x + y
	case isa.SUB:
		v = x - y
	case isa.MUL:
		v, extra = x*y, t.Mul
	case isa.DIV:
		if y == 0 {
			return 0, 0, false
		}
		v, extra = x/y, t.DivMod
	case isa.MOD:
		if y == 0 {
			return 0, 0, false
		}
		v, extra = x%y, t.DivMod
	case isa.AND:
		v = x & y
	case isa.OR:
		v = x | y
	case isa.XOR:
		v = x ^ y
	case isa.LSH:
		v = shiftL(x, y)
	case isa.ASH:
		v = shiftA(x, y)
	}
	return v, extra, true
}

// compileALUImm is the flat ALU fast path for an architectural-register
// destination and an immediate operand: one closure, no nested operand
// readers. The single-cycle ops get per-op closures with the arithmetic
// inline — aluEval's op switch is beyond the inliner's budget, and its
// call shows up in profiles at the same order as the arithmetic itself.
// Returns nil for division by a zero immediate (the interpreter's
// unconditional fault path keeps the boundary).
func compileALUImm(in isa.Instr, next int32) mdp.InstrFn {
	ra, y, op := in.A, in.B.Imm, in.Op
	if (op == isa.DIV || op == isa.MOD) && y == 0 {
		return nil
	}
	aluImm := func(eval func(x int32) int32) mdp.InstrFn {
		return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
			w := ctx.Regs[ra]
			if t := w.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
				return 0, 0, 0, false
			}
			ctx.Regs[ra] = word.Int(eval(w.Data()))
			return 1, n.RegionCat(), next, true
		}
	}
	switch op {
	case isa.ADD:
		return aluImm(func(x int32) int32 { return x + y })
	case isa.SUB:
		return aluImm(func(x int32) int32 { return x - y })
	case isa.AND:
		return aluImm(func(x int32) int32 { return x & y })
	case isa.OR:
		return aluImm(func(x int32) int32 { return x | y })
	case isa.XOR:
		return aluImm(func(x int32) int32 { return x ^ y })
	case isa.LSH:
		return aluImm(func(x int32) int32 { return shiftL(x, y) })
	case isa.ASH:
		return aluImm(func(x int32) int32 { return shiftA(x, y) })
	}
	return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
		w := ctx.Regs[ra]
		if t := w.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
			return 0, 0, 0, false
		}
		v, extra, ok := aluEval(op, w.Data(), y, &n.Cfg.Timing)
		if !ok {
			return 0, 0, 0, false
		}
		ctx.Regs[ra] = word.Int(v)
		return 1 + extra, n.RegionCat(), next, true
	}
}

// compileALUReg is compileALUImm's register-operand counterpart.
func compileALUReg(in isa.Instr, next int32) mdp.InstrFn {
	ra, rb, op := in.A, in.B.Reg, in.Op
	aluReg := func(eval func(x, y int32) int32) mdp.InstrFn {
		return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
			a := ctx.Regs[ra]
			if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
				return 0, 0, 0, false
			}
			b := ctx.Regs[rb]
			if t := b.Tag(); t == word.TagCfut || t == word.TagFut {
				return 0, 0, 0, false
			}
			ctx.Regs[ra] = word.Int(eval(a.Data(), b.Data()))
			return 1, n.RegionCat(), next, true
		}
	}
	switch op {
	case isa.ADD:
		return aluReg(func(x, y int32) int32 { return x + y })
	case isa.SUB:
		return aluReg(func(x, y int32) int32 { return x - y })
	case isa.AND:
		return aluReg(func(x, y int32) int32 { return x & y })
	case isa.OR:
		return aluReg(func(x, y int32) int32 { return x | y })
	case isa.XOR:
		return aluReg(func(x, y int32) int32 { return x ^ y })
	case isa.LSH:
		return aluReg(shiftL)
	case isa.ASH:
		return aluReg(shiftA)
	}
	return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
		a := ctx.Regs[ra]
		if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
			return 0, 0, 0, false
		}
		b := ctx.Regs[rb]
		if t := b.Tag(); t == word.TagCfut || t == word.TagFut {
			return 0, 0, 0, false
		}
		v, extra, ok := aluEval(op, a.Data(), b.Data(), &n.Cfg.Timing)
		if !ok {
			return 0, 0, 0, false
		}
		ctx.Regs[ra] = word.Int(v)
		return 1 + extra, n.RegionCat(), next, true
	}
}

// compileALUMem is the memory-operand ALU fast path: resolveMem called
// directly, no operand-closure indirection. The immediate-offset form
// additionally gets the scalar-argument resolver and, for single-cycle
// ops, an inline eval function instead of the aluEval switch.
func compileALUMem(in isa.Instr, next int32) mdp.InstrFn {
	ra, op, bop := in.A, in.B, in.Op
	if op.Mode == isa.ModeMem {
		var eval func(x, y int32) int32
		switch bop {
		case isa.ADD:
			eval = func(x, y int32) int32 { return x + y }
		case isa.SUB:
			eval = func(x, y int32) int32 { return x - y }
		case isa.AND:
			eval = func(x, y int32) int32 { return x & y }
		case isa.OR:
			eval = func(x, y int32) int32 { return x | y }
		case isa.XOR:
			eval = func(x, y int32) int32 { return x ^ y }
		case isa.LSH:
			eval = shiftL
		case isa.ASH:
			eval = shiftA
		}
		if eval != nil {
			breg, bimm := op.Reg, op.Imm
			return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
				a := ctx.Regs[ra]
				if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
					return 0, 0, 0, false
				}
				ref, ok := resolveMemOff(n, ctx.Regs[breg], bimm, off, quiet)
				if !ok {
					return 0, 0, 0, false
				}
				var b word.Word
				if ref.queue {
					b = n.Queues[ref.pri].WordAt(int(ref.addr))
				} else {
					b, _ = n.Mem.Read(ref.addr) // bounds already checked
				}
				if t := b.Tag(); t == word.TagCfut || t == word.TagFut {
					return 0, 0, 0, false
				}
				ctx.Regs[ra] = word.Int(eval(a.Data(), b.Data()))
				return 1 + loadCost(n, ref), n.RegionCat(), next, true
			}
		}
	}
	return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
		a := ctx.Regs[ra]
		if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
			return 0, 0, 0, false
		}
		ref, ok := resolveMem(n, ctx, op, off, quiet)
		if !ok {
			return 0, 0, 0, false
		}
		var b word.Word
		if ref.queue {
			b = n.Queues[ref.pri].WordAt(int(ref.addr))
		} else {
			b, _ = n.Mem.Read(ref.addr) // bounds already checked
		}
		if t := b.Tag(); t == word.TagCfut || t == word.TagFut {
			return 0, 0, 0, false
		}
		v, extra, ok := aluEval(bop, a.Data(), b.Data(), &n.Cfg.Timing)
		if !ok {
			return 0, 0, 0, false
		}
		ctx.Regs[ra] = word.Int(v)
		return 1 + extra + loadCost(n, ref), n.RegionCat(), next, true
	}
}

// cmpEval computes one comparison result.
func cmpEval(op isa.Op, x, y int32) bool {
	switch op {
	case isa.EQ:
		return x == y
	case isa.NE:
		return x != y
	case isa.LT:
		return x < y
	case isa.LE:
		return x <= y
	case isa.GT:
		return x > y
	default: // GE
		return x >= y
	}
}

// compileCmpImm and compileCmpReg are the comparison fast paths.
func compileCmpImm(in isa.Instr, next int32) mdp.InstrFn {
	ra, y, op := in.A, in.B.Imm, in.Op
	return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
		w := ctx.Regs[ra]
		if t := w.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
			return 0, 0, 0, false
		}
		ctx.Regs[ra] = word.Bool(cmpEval(op, w.Data(), y))
		return 1, n.RegionCat(), next, true
	}
}

func compileCmpReg(in isa.Instr, next int32) mdp.InstrFn {
	ra, rb, op := in.A, in.B.Reg, in.Op
	return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
		a := ctx.Regs[ra]
		if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
			return 0, 0, 0, false
		}
		b := ctx.Regs[rb]
		if t := b.Tag(); t == word.TagCfut || t == word.TagFut {
			return 0, 0, 0, false
		}
		ctx.Regs[ra] = word.Bool(cmpEval(op, a.Data(), b.Data()))
		return 1, n.RegionCat(), next, true
	}
}

// compileInstr translates one instruction, or returns nil for bail-set
// members. Costs and categories replicate mdp.Node.exec exactly; the
// EmemFetch surcharge for code in external memory is added by the node,
// as it is for the interpreter.
func compileInstr(in isa.Instr, ip int32) mdp.InstrFn {
	next := ip + 1
	if !memOperandOK(in.B) {
		return nil
	}
	switch in.Op {
	case isa.NOP:
		return func(n *mdp.Node, _ *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
			return 1, n.RegionCat(), next, true
		}

	case isa.MOVE:
		// Flat fast paths for architectural-register destinations: no
		// nested operand closures on the hot path (the fig3-compute
		// profile shows the indirect calls costing as much as the work).
		if in.A < 8 {
			ra := in.A
			switch {
			case in.B.Mode == isa.ModeImm:
				w := word.Int(in.B.Imm)
				return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
					ctx.Regs[ra] = w
					return 1, n.RegionCat(), next, true
				}
			case in.B.Mode == isa.ModeReg && in.B.Reg < 8:
				rb := in.B.Reg
				return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
					w := ctx.Regs[rb]
					if w.Tag() == word.TagCfut { // copies move fut legally
						return 0, 0, 0, false
					}
					ctx.Regs[ra] = w
					return 1, n.RegionCat(), next, true
				}
			case in.B.Mode == isa.ModeMem:
				breg, bimm := in.B.Reg, in.B.Imm
				return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
					ref, ok := resolveMemOff(n, ctx.Regs[breg], bimm, off, quiet)
					if !ok {
						return 0, 0, 0, false
					}
					var w word.Word
					if ref.queue {
						w = n.Queues[ref.pri].WordAt(int(ref.addr))
					} else {
						w, _ = n.Mem.Read(ref.addr) // bounds already checked
					}
					if w.Tag() == word.TagCfut {
						return 0, 0, 0, false
					}
					ctx.Regs[ra] = w
					return 1 + loadCost(n, ref), n.RegionCat(), next, true
				}
			case in.B.IsMem():
				op := in.B
				return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
					ref, ok := resolveMem(n, ctx, op, off, quiet)
					if !ok {
						return 0, 0, 0, false
					}
					var w word.Word
					if ref.queue {
						w = n.Queues[ref.pri].WordAt(int(ref.addr))
					} else {
						w, _ = n.Mem.Read(ref.addr) // bounds already checked
					}
					if w.Tag() == word.TagCfut {
						return 0, 0, 0, false
					}
					ctx.Regs[ra] = w
					return 1 + loadCost(n, ref), n.RegionCat(), next, true
				}
			}
		}
		readB := compileOperand(in.B, false, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			w, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			write(ctx, w)
			return 1 + extra, n.RegionCat(), next, true
		}

	case isa.ST:
		if !in.B.IsMem() {
			return nil // unconditional FaultBadInstr
		}
		op := in.B
		if in.A < 8 {
			ra := in.A
			return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
				ref, ok := resolveMem(n, ctx, op, off, quiet)
				if !ok || ref.queue { // queue stores fault (FaultBadTag)
					return 0, 0, 0, false
				}
				if n.Mem.Write(ref.addr, ctx.Regs[ra]) != nil { // stores move all 36 bits
					return 0, 0, 0, false
				}
				extra := n.Cfg.Timing.ImemStore
				if !ref.internal {
					extra = n.Cfg.Timing.EmemStore
				}
				return 1 + extra, n.RegionCat(), next, true
			}
		}
		readA := compileRegRead(in.A, false, true) // stores move all 36 bits
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			ref, ok := resolveMem(n, ctx, op, off, quiet)
			if !ok || ref.queue { // queue stores fault (FaultBadTag)
				return 0, 0, 0, false
			}
			w, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			if n.Mem.Write(ref.addr, w) != nil {
				return 0, 0, 0, false
			}
			extra := n.Cfg.Timing.ImemStore
			if !ref.internal {
				extra = n.Cfg.Timing.EmemStore
			}
			return 1 + extra, n.RegionCat(), next, true
		}

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.LSH, isa.ASH:
		if in.A < 8 {
			if in.B.Mode == isa.ModeImm {
				if fn := compileALUImm(in, next); fn != nil {
					return fn
				}
				return nil // division by a zero immediate: always faults
			}
			if in.B.Mode == isa.ModeReg && in.B.Reg < 8 {
				return compileALUReg(in, next)
			}
			if in.B.IsMem() {
				return compileALUMem(in, next)
			}
		}
		readA := compileRegRead(in.A, true, false)
		readB := compileOperand(in.B, true, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		op := in.Op
		divides := op == isa.DIV || op == isa.MOD
		var opExtra func(t *mdp.Timing) int32
		switch op {
		case isa.MUL:
			opExtra = func(t *mdp.Timing) int32 { return t.Mul }
		case isa.DIV, isa.MOD:
			opExtra = func(t *mdp.Timing) int32 { return t.DivMod }
		}
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			a, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			b, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			x, y := a.Data(), b.Data()
			if divides && y == 0 {
				return 0, 0, 0, false // FaultBadInstr
			}
			var v int32
			switch op {
			case isa.ADD:
				v = x + y
			case isa.SUB:
				v = x - y
			case isa.MUL:
				v = x * y
			case isa.DIV:
				v = x / y
			case isa.MOD:
				v = x % y
			case isa.AND:
				v = x & y
			case isa.OR:
				v = x | y
			case isa.XOR:
				v = x ^ y
			case isa.LSH:
				v = shiftL(x, y)
			case isa.ASH:
				v = shiftA(x, y)
			}
			if opExtra != nil {
				extra += opExtra(&n.Cfg.Timing)
			}
			write(ctx, word.Int(v))
			return 1 + extra, n.RegionCat(), next, true
		}

	case isa.NOT, isa.NEG:
		readA := compileRegRead(in.A, true, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		not := in.Op == isa.NOT
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			a, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			v := a.Data()
			if not {
				v = ^v
			} else {
				v = -v
			}
			write(ctx, word.Int(v))
			return 1, n.RegionCat(), next, true
		}

	case isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE:
		if in.A < 8 {
			if in.B.Mode == isa.ModeImm {
				return compileCmpImm(in, next)
			}
			if in.B.Mode == isa.ModeReg && in.B.Reg < 8 {
				return compileCmpReg(in, next)
			}
		}
		readA := compileRegRead(in.A, true, false)
		readB := compileOperand(in.B, true, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		op := in.Op
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			a, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			b, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			var r bool
			x, y := a.Data(), b.Data()
			switch op {
			case isa.EQ:
				r = x == y
			case isa.NE:
				r = x != y
			case isa.LT:
				r = x < y
			case isa.LE:
				r = x <= y
			case isa.GT:
				r = x > y
			case isa.GE:
				r = x >= y
			}
			write(ctx, word.Bool(r))
			return 1 + extra, n.RegionCat(), next, true
		}

	case isa.BR:
		target := in.B.Imm
		return func(n *mdp.Node, _ *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
			return 1 + n.Cfg.Timing.BranchTaken, n.RegionCat(), target, true
		}

	case isa.BT, isa.BF:
		target := in.B.Imm
		want := in.Op == isa.BT
		if in.A < 8 {
			ra := in.A
			return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
				a := ctx.Regs[ra]
				if t := a.Tag(); t == word.TagCfut || t == word.TagFut { // consuming read
					return 0, 0, 0, false
				}
				if a.Truthy() == want {
					return 1 + n.Cfg.Timing.BranchTaken, n.RegionCat(), target, true
				}
				return 1, n.RegionCat(), next, true
			}
		}
		readA := compileRegRead(in.A, true, false)
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			a, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			if a.Truthy() == want {
				return 1 + n.Cfg.Timing.BranchTaken, n.RegionCat(), target, true
			}
			return 1, n.RegionCat(), next, true
		}

	case isa.BSR:
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		link := word.IP(next)
		target := in.B.Imm
		return func(n *mdp.Node, ctx *mdp.Context, _ int32, _ bool) (int32, stats.Cat, int32, bool) {
			write(ctx, link)
			return 1 + n.Cfg.Timing.BranchTaken, n.RegionCat(), target, true
		}

	case isa.JMP:
		readB := compileOperand(in.B, true, false)
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			b, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			return 1 + n.Cfg.Timing.BranchTaken + extra, n.RegionCat(), b.Data(), true
		}

	case isa.ENTER:
		readA := compileRegRead(in.A, true, false)
		readB := compileOperand(in.B, false, false)
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			key, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			val, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			n.Xl.Enter(key, val)
			return n.Cfg.Timing.Enter + extra, stats.CatXlate, next, true
		}

	case isa.XLATE:
		readB := compileOperand(in.B, true, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			key, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			// Probe first: a miss must bail with the table untouched so
			// the interpreter's Lookup performs the miss-path counter
			// update exactly once; a hit re-runs as Lookup for the
			// identical hit-counter and LRU effects.
			if _, hit := n.Xl.Probe(key); !hit {
				return 0, 0, 0, false // FaultXlateMiss
			}
			v, _ := n.Xl.Lookup(key)
			write(ctx, v)
			return n.Cfg.Timing.Xlate + extra, stats.CatXlate, next, true
		}

	case isa.PROBE:
		readB := compileOperand(in.B, false, false)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			key, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			_, hit := n.Xl.Probe(key)
			write(ctx, word.Bool(hit))
			return n.Cfg.Timing.Xlate + extra, stats.CatXlate, next, true
		}

	case isa.RTAG, isa.ISCF:
		readB := compileOperand(in.B, false, true)
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		rtag := in.Op == isa.RTAG
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			w, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			if rtag {
				write(ctx, word.Int(int32(w.Tag())))
			} else {
				write(ctx, word.Bool(w.IsCfut()))
			}
			return 1 + extra, n.RegionCat(), next, true
		}

	case isa.WTAG:
		readB := compileOperand(in.B, true, false)
		readA := compileRegRead(in.A, false, true) // retagging never faults
		write := compileRegWrite(in.A)
		if write == nil {
			return nil
		}
		return func(n *mdp.Node, ctx *mdp.Context, off int32, quiet bool) (int32, stats.Cat, int32, bool) {
			b, extra, ok := readB(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			old, ok := readA(n, ctx, off, quiet)
			if !ok {
				return 0, 0, 0, false
			}
			write(ctx, old.WithTag(word.Tag(b.Data()&0xF)))
			return 1 + extra, n.RegionCat(), next, true
		}

	default:
		// SEND family, SUSPEND, HALT, TRAP, and undefined opcodes:
		// scheduler- or network-visible, interpreter only.
		return nil
	}
}

// shiftL and shiftA replicate the interpreter's shift semantics.
func shiftL(x, by int32) int32 {
	switch {
	case by >= 32 || by <= -32:
		return 0
	case by >= 0:
		return int32(uint32(x) << uint(by))
	default:
		return int32(uint32(x) >> uint(-by))
	}
}

func shiftA(x, by int32) int32 {
	switch {
	case by >= 32:
		return 0
	case by >= 0:
		return int32(uint32(x) << uint(by))
	case by <= -32:
		return x >> 31
	default:
		return x >> uint(-by)
	}
}
