package compiled_test

// Send-distance certificate tests. A program whose handlers are all
// certified send-free publishes an unbounded send horizon, licensing
// the compiled tier to extend fusion windows to the full run-loop
// horizon instead of the 7-cycle quiet window. These tests pin down
// (a) the per-instruction certificate itself — infinite distance
// exactly on instructions from which no path reaches a SEND, zero on
// the sends themselves — and (b) the differential contract under the
// giant windows it enables, including the nastiest external edge: host
// Inject between run loops, which must land on the same cycle in both
// tiers even though the compiled machine executed thousands of
// boundaries eagerly.

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/compiled"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/word"
)

// buildNoSendProgram is an endless send-free compute loop exercising
// the shapes the compiled tier specializes — stores, indexed loads,
// immediate ALU ops, branches — plus a send-free message handler so
// host-injected traffic has somewhere to dispatch.
func buildNoSendProgram(withSend bool) *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 128).
		MoveI(isa.R2, 0).
		Label("loop").
		Move(isa.R0, asm.Mem(isa.A0, 0)).
		Add(isa.R0, asm.Imm(1)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Move(isa.R1, asm.MemR(isa.A0, isa.R2)).
		Add(isa.R1, asm.Mem(isa.A0, 1)).
		Add(isa.R2, asm.Imm(1)).
		And(isa.R2, asm.Imm(7)).
		Bt(isa.R0, "loop").
		Halt()
	// acc: [hdr, payload] — fold the payload into an accumulator.
	b.Label("acc").
		MoveI(isa.A1, 64).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A1, 0)).
		St(isa.R0, asm.Mem(isa.A1, 0)).
		Suspend()
	if withSend {
		// An unreachable echo handler: nothing ever invokes it, but its
		// SEND must still void the certificate.
		b.Label("echo").
			Send1(asm.Mem(isa.A3, 1)).
			SendE1(asm.R(isa.ZERO)).
			Suspend()
	}
	return b.MustAssemble()
}

// seedNoSend gives every node a distinct memory image so digests are
// sensitive to any cross-node mixup, and primes the accumulator and
// the indexed-load table.
func seedNoSend(m *machine.Machine) {
	for id, n := range m.Nodes {
		n.Mem.Write(64, word.Int(0))
		for i := int32(0); i < 8; i++ {
			n.Mem.Write(128+i, word.Int(int32(id)*100+i+1))
		}
	}
	p := m.Node(0).Prog
	entry := p.Entry("main")
	for _, n := range m.Nodes {
		n.StartBackground(entry)
	}
}

// TestNoSendCertificate: the certificate is per-instruction — every
// instruction of the send-free build carries an infinite send
// distance, and adding a SEND handler zeroes the distance only there:
// the compute loop and acc handler keep their infinite distances, the
// per-handler improvement over the old whole-image NoSend flag.
func TestNoSendCertificate(t *testing.T) {
	cp, err := compiled.Compile(buildNoSendProgram(false))
	if err != nil {
		t.Fatalf("compile send-free: %v", err)
	}
	for ip, d := range cp.SendDist {
		if d < asm.InfDist {
			t.Errorf("send-free image: SendDist[%d] = %d, want InfDist", ip, d)
		}
	}
	p := buildNoSendProgram(true)
	cp, err = compiled.Compile(p)
	if err != nil {
		t.Fatalf("compile with unreachable send: %v", err)
	}
	if d := cp.SendDist[p.Entry("echo")]; d != 0 {
		t.Errorf("SEND instruction: SendDist = %d, want 0", d)
	}
	for _, label := range []string{"main", "loop", "acc"} {
		if d := cp.SendDist[p.Entry(label)]; d < asm.InfDist {
			t.Errorf("send-free handler %q: SendDist = %d, want InfDist", label, d)
		}
	}
}

// TestNoSendWindowEquivalence drives both tiers through StepN batches
// large enough that the certificate's unbounded windows dominate —
// thousands of boundaries fused per window, far past the 7-cycle quiet
// cap — and requires digest equality at every observation point.
func TestNoSendWindowEquivalence(t *testing.T) {
	itp, cpl := buildPair(t, machine.GridForNodes(8), buildNoSendProgram(false), seedNoSend)
	sizes := []int64{1, 777, 5000, 3, 2048, 64, 5000}
	for _, n := range sizes {
		itp.StepN(n)
		cpl.StepN(n)
		compare(t, itp, cpl, "nosend batch")
	}
	// Vacuity guard: the windows must actually have fused nearly every
	// retired instruction, not fallen back to per-boundary execution.
	total, fused := int64(0), cpl.FusedInstructions()
	for _, n := range cpl.Nodes {
		total += int64(n.Stats.Instrs)
	}
	if total == 0 || float64(fused) < 0.9*float64(total) {
		t.Errorf("fused %d of %d instructions; no-send windows did not engage", fused, total)
	}
}

// TestNoSendInjectEquivalence exercises the external-mutation fence:
// the host injects messages between run loops while the compiled
// machine is fusing whole-horizon windows. Injection can only land
// after the previous loop's cap — which every fused boundary respects —
// so delivery, dispatch, and the handler's stores must hit the same
// cycles in both tiers.
func TestNoSendInjectEquivalence(t *testing.T) {
	p := buildNoSendProgram(false)
	itp, cpl := buildPair(t, machine.GridForNodes(8), p, seedNoSend)
	hdr := word.MsgHeader(p.Entry("acc"), 2)
	for i, n := range []int64{400, 1500, 9, 2500} {
		msg := []word.Word{hdr, word.Int(int32(i + 1))}
		node := (i * 3) % 8
		if ok1, ok2 := itp.Inject(node, 0, msg), cpl.Inject(node, 0, msg); !ok1 || !ok2 {
			t.Fatalf("inject %d refused: interpreter=%v compiled=%v", i, ok1, ok2)
		}
		itp.StepN(n)
		cpl.StepN(n)
		compare(t, itp, cpl, "nosend inject")
	}
	w, err := cpl.Nodes[0].Mem.Read(64)
	if err != nil {
		t.Fatal(err)
	}
	if w.Data() != 1 {
		t.Errorf("node 0 accumulator = %d, want 1 (first injected payload)", w.Data())
	}
}
