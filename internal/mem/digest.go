package mem

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the node's memory into a running 64-bit digest for
// the engine equivalence suite. The fold is sparse and position-keyed —
// geometry, then (address, word) for every non-zero word in ascending
// address order — so it is independent of which pages happen to be
// materialized: a page of explicit zeros digests identically to an
// unallocated one. The mix is not affine, so the dense every-word fold
// used before paging could not skip zero runs; the sparse fold trades
// digest-value compatibility with pre-paging baselines (digests are only
// ever compared within a run) for O(touched words) cost.
func (m *Memory) StateDigest(h uint64) uint64 {
	h = mix(h, uint64(m.size)|uint64(m.imemWords)<<32)
	for pi, pg := range m.pages {
		if pg == nil {
			continue
		}
		base := uint64(pi) << pageShift
		for i, w := range pg {
			if w != 0 {
				h = mix(h, base+uint64(i))
				h = mix(h, uint64(w))
			}
		}
	}
	return h
}
