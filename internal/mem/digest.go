package mem

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds every tagged word of the node's memory into a
// running 64-bit digest, for the engine equivalence suite.
func (m *Memory) StateDigest(h uint64) uint64 {
	h = mix(h, uint64(len(m.words))|uint64(m.imemWords)<<32)
	for _, w := range m.words {
		h = mix(h, uint64(w))
	}
	return h
}
