package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"jmachine/internal/word"
)

func TestDefaults(t *testing.T) {
	m := New(Config{})
	if m.ImemWords() != DefaultImemWords {
		t.Errorf("ImemWords = %d", m.ImemWords())
	}
	if m.Size() != DefaultImemWords+DefaultEmemWords {
		t.Errorf("Size = %d", m.Size())
	}
}

func TestInternalBoundary(t *testing.T) {
	m := New(Config{ImemWords: 16, EmemWords: 16})
	if !m.IsInternal(0) || !m.IsInternal(15) {
		t.Error("SRAM misclassified")
	}
	if m.IsInternal(16) || m.IsInternal(-1) {
		t.Error("DRAM or negative misclassified as internal")
	}
}

func TestReadWrite(t *testing.T) {
	m := New(Config{ImemWords: 8, EmemWords: 8})
	w := word.New(word.TagSym, 77)
	if err := m.Write(3, w); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(3)
	if err != nil || got != w {
		t.Fatalf("Read = %v, %v", got, err)
	}
	if _, err := m.Read(16); !errors.Is(err, ErrBounds) {
		t.Error("out-of-range read did not fault")
	}
	if err := m.Write(-1, w); !errors.Is(err, ErrBounds) {
		t.Error("negative write did not fault")
	}
}

func TestLoadAndFillCfut(t *testing.T) {
	m := New(Config{ImemWords: 8, EmemWords: 8})
	ws := []word.Word{word.Int(1), word.Int(2), word.Int(3)}
	if err := m.Load(2, ws); err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		got, _ := m.Read(int32(2 + i))
		if got != w {
			t.Errorf("word %d = %v", i, got)
		}
	}
	if err := m.Load(14, ws); !errors.Is(err, ErrBounds) {
		t.Error("overlong load did not fault")
	}
	if err := m.FillCfut(0, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0)
	if !got.IsCfut() {
		t.Error("FillCfut did not tag")
	}
	if err := m.FillCfut(15, 2); !errors.Is(err, ErrBounds) {
		t.Error("overlong FillCfut did not fault")
	}
}

func TestSegmentDescriptors(t *testing.T) {
	d := Seg(1000, 16)
	if SegBase(d) != 1000 || SegLen(d) != 16 {
		t.Fatalf("descriptor fields: base=%d len=%d", SegBase(d), SegLen(d))
	}
	if d.Tag() != word.TagAddr {
		t.Errorf("descriptor tag = %v", d.Tag())
	}
	addr, err := SegAddr(d, 15)
	if err != nil || addr != 1015 {
		t.Errorf("SegAddr(15) = %d, %v", addr, err)
	}
	if _, err := SegAddr(d, 16); err == nil {
		t.Error("index == length did not fault")
	}
	if _, err := SegAddr(d, -1); err == nil {
		t.Error("negative index did not fault")
	}
}

func TestSegProperty(t *testing.T) {
	f := func(base int32, length uint16, idx int32) bool {
		b := base & SegMaxBase
		l := int(length) % (SegMaxLen + 1)
		d := Seg(b, l)
		if SegBase(d) != b || SegLen(d) != l {
			return false
		}
		addr, err := SegAddr(d, idx)
		if idx >= 0 && int(idx) < l {
			return err == nil && addr == b+idx
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
