package mem

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/word"
)

// SaveState serializes the memory image run-length encoded: node
// memories are dominated by long runs of identical words (untouched
// zeroed DRAM, cfut-filled frames), so a (count, word) stream is far
// smaller than the raw image while staying byte-exact.
func (m *Memory) SaveState(e *wire.Encoder) {
	e.Int(len(m.words))
	e.Int(m.imemWords)
	i := 0
	for i < len(m.words) {
		j := i + 1
		for j < len(m.words) && m.words[j] == m.words[i] {
			j++
		}
		e.U32(uint32(j - i))
		e.U64(uint64(m.words[i]))
		i = j
	}
}

// RestoreState rebuilds the memory image in place (the node and its
// segment descriptors alias the backing array). The configured
// geometry must match the checkpoint exactly.
func (m *Memory) RestoreState(d *wire.Decoder) error {
	if n := d.Int(); n != len(m.words) {
		return fmt.Errorf("mem: checkpoint size %d words != configured %d", n, len(m.words))
	}
	if iw := d.Int(); iw != m.imemWords {
		return fmt.Errorf("mem: checkpoint imem %d words != configured %d", iw, m.imemWords)
	}
	at := 0
	for at < len(m.words) {
		run := int(d.U32())
		w := word.Word(d.U64())
		if err := d.Err(); err != nil {
			return err
		}
		if run <= 0 || at+run > len(m.words) {
			return fmt.Errorf("mem: checkpoint run of %d words overflows image at %d", run, at)
		}
		for i := 0; i < run; i++ {
			m.words[at+i] = w
		}
		at += run
	}
	return d.Err()
}
