package mem

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/word"
)

// runEnd returns the first address after at whose word differs from v,
// fast-forwarding across whole unmaterialized pages when v is zero so
// the encoder stays O(materialized words) on sparse images.
func (m *Memory) runEnd(at int, v word.Word) int {
	j := at + 1
	for j < m.size {
		pg := m.pages[j>>pageShift]
		if pg == nil {
			if v != 0 {
				return j
			}
			j = (j>>pageShift + 1) << pageShift
			continue
		}
		if pg[j&pageMask] != v {
			return j
		}
		j++
	}
	return m.size
}

// SaveState serializes the memory image run-length encoded: node
// memories are dominated by long runs of identical words (untouched
// zeroed DRAM, cfut-filled frames), so a (count, word) stream is far
// smaller than the raw image while staying byte-exact. Runs are maximal
// over the logical image, so the encoding is independent of page
// materialization — a lazily zero page and an explicit one serialize
// identically.
func (m *Memory) SaveState(e *wire.Encoder) {
	e.Int(m.size)
	e.Int(m.imemWords)
	i := 0
	for i < m.size {
		v := m.get(i)
		j := m.runEnd(i, v)
		e.U32(uint32(j - i))
		e.U64(uint64(v))
		i = j
	}
}

// RestoreState rebuilds the memory image from the checkpoint, dropping
// every materialized page first so zero runs restore to lazy pages. The
// configured geometry must match the checkpoint exactly.
func (m *Memory) RestoreState(d *wire.Decoder) error {
	if n := d.Int(); n != m.size {
		return fmt.Errorf("mem: checkpoint size %d words != configured %d", n, m.size)
	}
	if iw := d.Int(); iw != m.imemWords {
		return fmt.Errorf("mem: checkpoint imem %d words != configured %d", iw, m.imemWords)
	}
	for i := range m.pages {
		m.pages[i] = nil
	}
	at := 0
	for at < m.size {
		run := int(d.U32())
		w := word.Word(d.U64())
		if err := d.Err(); err != nil {
			return err
		}
		if run <= 0 || at+run > m.size {
			return fmt.Errorf("mem: checkpoint run of %d words overflows image at %d", run, at)
		}
		if w != 0 {
			for i := 0; i < run; i++ {
				m.set(at+i, w)
			}
		}
		at += run
	}
	return d.Err()
}
